(* The reproduction harness: regenerates every figure and theorem-level
   claim of "On the Liveness of Transactional Memory" (PODC 2012) and
   prints paper-vs-measured verdicts, then runs bechamel timing benches.

   See EXPERIMENTS.md for the experiment index (F1..F16, T1..T3, Z1..Z2,
   P1..P2) and DESIGN.md for the design. *)

open Tm_history
module Reg = Tm_impl.Registry

let failures = ref 0

let check name ~paper ~measured =
  let ok = paper = measured in
  if not ok then incr failures;
  Fmt.pr "  %-58s paper=%-6b measured=%-6b %s@." name paper measured
    (if ok then "OK" else "MISMATCH")

let check_int name ~paper ~measured =
  let ok = paper = measured in
  if not ok then incr failures;
  Fmt.pr "  %-58s paper=%-6d measured=%-6d %s@." name paper measured
    (if ok then "OK" else "MISMATCH")

let section id title = Fmt.pr "@.=== %s: %s ===@." id title

(* ------------------------------------------------------------------ *)
(* F1: Figure 1 — the scenario is opaque and realizable; repeated forever
   it starves p1. *)

let f1 () =
  section "F1" "Figure 1: the local-progress dilemma scenario";
  check "fig1 is opaque" ~paper:true
    ~measured:(Tm_safety.Opacity.is_opaque Figures.fig1);
  check "fig1 is strictly serializable" ~paper:true
    ~measured:(Tm_safety.Serializability.is_strictly_serializable Figures.fig1);
  (* Realizability: the adversary's first round against Fgp reproduces
     Figure 1 exactly. *)
  let entry = Option.get (Reg.find "fgp") in
  let r =
    Tm_adversary.Adversary.run ~rounds:1 entry Tm_adversary.Adversary.Algorithm_1
  in
  let prefix n h =
    History.of_events (List.filteri (fun i _ -> i < n) (History.events h))
  in
  check "adversary round 1 vs fgp = fig1" ~paper:true
    ~measured:
      (History.equal
         (prefix (History.length Figures.fig1)
            r.Tm_adversary.Adversary.history)
         Figures.fig1)

(* ------------------------------------------------------------------ *)
(* F2: Figure 2 — the process-class inclusion diagram, checked on every
   lasso figure and its rotations/unrollings. *)

let f2 () =
  section "F2" "Figure 2: process-class taxonomy inclusions";
  let variants l =
    [
      l;
      Lasso.rotate l;
      Lasso.rotate (Lasso.rotate l);
      Lasso.unroll_cycle_into_stem l;
    ]
  in
  let lassos = List.concat_map (fun (_, l) -> variants l) Figures.all_lassos in
  let ok =
    List.for_all
      (fun l ->
        List.for_all
          (fun p ->
            let imp a b = (not a) || b in
            let open Tm_liveness.Process_class in
            imp (crashes l p) (is_pending l p)
            && imp (crashes l p) (is_faulty l p)
            && imp (is_parasitic l p) (is_pending l p)
            && imp (is_parasitic l p) (is_faulty l p)
            && imp (is_starving l p) (is_pending l p)
            && imp (is_starving l p) (is_correct l p)
            && imp (not (is_pending l p)) (is_correct l p)
            && is_correct l p <> is_faulty l p)
          (Lasso.procs l))
      lassos
  in
  check
    (Fmt.str "all inclusion arrows hold on %d lasso variants"
       (List.length lassos))
    ~paper:true ~measured:ok

(* ------------------------------------------------------------------ *)
(* F3/F4/F8: safety verdicts of the example histories. *)

let f3_f4_f8 () =
  section "F3/F4/F8" "safety verdicts of the example histories";
  check "fig3 opaque" ~paper:false
    ~measured:(Tm_safety.Opacity.is_opaque Figures.fig3);
  check "fig3 strictly serializable" ~paper:false
    ~measured:(Tm_safety.Serializability.is_strictly_serializable Figures.fig3);
  check "fig4 opaque" ~paper:false
    ~measured:(Tm_safety.Opacity.is_opaque Figures.fig4);
  check "fig4 strictly serializable" ~paper:true
    ~measured:(Tm_safety.Serializability.is_strictly_serializable Figures.fig4);
  List.iter
    (fun v ->
      check
        (Fmt.str "fig8 (terminating adversary suffix, v=%d) opaque" v)
        ~paper:false
        ~measured:(Tm_safety.Opacity.is_opaque (Figures.fig8 ~v)))
    [ 0; 1; 5 ]

(* ------------------------------------------------------------------ *)
(* F5..F14: liveness verdicts of the infinite histories. *)

let liveness_figures () =
  section "F5-F14" "liveness verdicts of the infinite histories";
  let expect name l (local, global, solo, nb, bi) =
    let v = Tm_liveness.Property.verdict l in
    check (name ^ " local progress") ~paper:local
      ~measured:v.Tm_liveness.Property.local;
    check (name ^ " global progress") ~paper:global
      ~measured:v.Tm_liveness.Property.global;
    check (name ^ " solo progress") ~paper:solo
      ~measured:v.Tm_liveness.Property.solo;
    check (name ^ " respects nonblocking") ~paper:nb
      ~measured:v.Tm_liveness.Property.nonblocking_ok;
    check (name ^ " respects biprogressing") ~paper:bi
      ~measured:v.Tm_liveness.Property.biprogressing_ok
  in
  expect "fig5" Figures.fig5 (true, true, true, true, true);
  expect "fig6" Figures.fig6 (false, true, true, true, false);
  expect "fig7" Figures.fig7 (true, true, true, true, true);
  expect "fig9" Figures.fig9 (false, false, false, false, true);
  expect "fig10" Figures.fig10 (false, true, true, true, false);
  expect "fig12" Figures.fig12 (false, false, false, false, true);
  expect "fig13" Figures.fig13 (false, true, true, true, false);
  expect "fig14" Figures.fig14 (false, false, false, false, true);
  check "fig7: p1 crashes" ~paper:true
    ~measured:(Tm_liveness.Process_class.crashes Figures.fig7 1);
  check "fig7: p2 parasitic" ~paper:true
    ~measured:(Tm_liveness.Process_class.is_parasitic Figures.fig7 2);
  check "fig7: p3 runs alone and progresses" ~paper:true
    ~measured:
      (Tm_liveness.Process_class.runs_alone Figures.fig7 3
      && Tm_liveness.Process_class.makes_progress Figures.fig7 3);
  check "fig12: p1 parasitic" ~paper:true
    ~measured:(Tm_liveness.Process_class.is_parasitic Figures.fig12 1)

(* ------------------------------------------------------------------ *)
(* F15: the 10-state Fgp automaton. *)

type fgp_action = A_invoke of Event.invocation | A_poll

let f15 () =
  section "F15" "Figure 15: Fgp with one process, one binary t-variable";
  let cfg = Tm_impl.Tm_intf.config ~nprocs:1 ~ntvars:1 () in
  let exploration =
    Tm_automaton.Explorer.reachable
      ~make:(fun () -> Tm_impl.Fgp.create cfg)
      ~snapshot:Tm_impl.Fgp.state
      ~actions:(fun t ->
        match Tm_impl.Fgp.pending t 1 with
        | Some _ -> [ A_poll ]
        | None ->
            [
              A_invoke (Event.Read 0);
              A_invoke (Event.Write (0, 0));
              A_invoke (Event.Write (0, 1));
              A_invoke Event.Try_commit;
            ])
      ~apply:(fun t a ->
        match a with
        | A_invoke inv -> Tm_impl.Fgp.invoke t 1 inv
        | A_poll -> ignore (Tm_impl.Fgp.poll t 1))
      ()
  in
  check_int "reachable states" ~paper:10
    ~measured:(List.length exploration.Tm_automaton.Explorer.states);
  Fmt.pr "  states:@.";
  List.iteri
    (fun i (s, _) -> Fmt.pr "    s%-2d %a@." (i + 1) Tm_impl.Fgp.pp_state s)
    exploration.Tm_automaton.Explorer.states

(* ------------------------------------------------------------------ *)
(* F16: the example history Hex of Fgp, replayed. *)

let f16 () =
  section "F16" "Figure 16: the example history Hex of Fgp";
  let cfg = Tm_impl.Tm_intf.config ~nprocs:3 ~ntvars:2 () in
  let t = Tm_impl.Fgp.create cfg in
  let h = ref History.empty in
  let invoke p inv =
    Tm_impl.Fgp.invoke t p inv;
    h := History.append !h (Event.Inv (p, inv))
  in
  let poll p =
    match Tm_impl.Fgp.poll t p with
    | Some r -> h := History.append !h (Event.Res (p, r))
    | None -> ()
  in
  let x = 0 and y = 1 in
  invoke 1 (Event.Read x);
  poll 1;
  invoke 2 (Event.Write (y, 1));
  invoke 1 (Event.Write (x, 1));
  poll 1;
  invoke 1 Event.Try_commit;
  poll 1;
  poll 2;
  invoke 3 (Event.Read y);
  poll 3;
  invoke 3 (Event.Write (y, 1));
  poll 3;
  invoke 1 (Event.Read y);
  poll 1;
  invoke 3 Event.Try_commit;
  poll 3;
  invoke 1 Event.Try_commit;
  poll 1;
  invoke 2 (Event.Read y);
  poll 2;
  invoke 2 (Event.Read x);
  poll 2;
  invoke 2 Event.Try_commit;
  poll 2;
  check "replayed history equals Figure 16" ~paper:true
    ~measured:(History.equal !h Figures.fig16);
  check "Hex is opaque" ~paper:true ~measured:(Tm_safety.Opacity.is_opaque !h)

(* ------------------------------------------------------------------ *)
(* T1: Theorem 1 — the adversary starves p1 against every responsive TM,
   and blocks against blocking TMs. *)

let t1 () =
  section "T1" "Theorem 1: opacity + local progress is impossible";
  List.iter
    (fun (alg, alg_name) ->
      Fmt.pr "  -- %s --@." alg_name;
      List.iter
        (fun entry ->
          let r = Tm_adversary.Adversary.run ~rounds:30 entry alg in
          if r.Tm_adversary.Adversary.blocked then
            (* Withholding responses is an escape open only to blocking
               TMs. *)
            check
              (Fmt.str "%-16s blocks (allowed: blocking TM)"
                 entry.Reg.entry_name)
              ~paper:true
              ~measured:(not entry.Reg.responsive)
          else if r.Tm_adversary.Adversary.winner_starved then
            (* A TM without global progress starves even the winner — the
               Figure 9/12 outcome, produced by the quiescent strawman and
               by the priority Fgp (the suspended victim is its top
               priority). *)
            check
              (Fmt.str "%-16s starves everyone (quiescent/priority)"
                 entry.Reg.entry_name)
              ~paper:true
              ~measured:
                (List.mem entry.Reg.entry_name
                   [ "quiescent"; "fgp-priority" ])
          else
            check
              (Fmt.str "%-16s p1 never commits" entry.Reg.entry_name)
              ~paper:true
              ~measured:
                ((not r.Tm_adversary.Adversary.terminated)
                && r.Tm_adversary.Adversary.victim_commits = 0
                && r.Tm_adversary.Adversary.winner_commits >= 30))
        Reg.all)
    [
      (Tm_adversary.Adversary.Algorithm_1, "Algorithm 1");
      (Tm_adversary.Adversary.Algorithm_2, "Algorithm 2");
    ]

(* ------------------------------------------------------------------ *)
(* T2: Lemma 1 / Theorem 2 — the n-process generalization. *)

let t2 () =
  section "T2" "Lemma 1 / Theorem 2: n-process generalization";
  List.iter
    (fun n ->
      List.iter
        (fun tm_name ->
          let entry = Option.get (Reg.find tm_name) in
          let r =
            Tm_adversary.Adversary.General.run ~rounds:15 ~nprocs:n entry
          in
          let victims_starve =
            (not r.Tm_adversary.Adversary.General.any_victim_committed)
            && r.Tm_adversary.Adversary.General.commits.(n) >= 15
          in
          check
            (Fmt.str "n=%d vs %-16s %d victims starve, winner commits" n
               tm_name (n - 1))
            ~paper:true ~measured:victims_starve)
        [ "fgp"; "tl2"; "ostm" ])
    [ 2; 3; 5; 8 ]

(* ------------------------------------------------------------------ *)
(* T3: Theorem 3 — Fgp ensures opacity and global progress. *)

(* Exhaustive bounded model check: every schedule of the given depth, each
   history screened by the linear-time monitor with fallback to the exact
   checker. *)
let sweep_non_opaque entry ~depth =
  let bad = ref 0 and checked = ref 0 in
  Tm_sim.Sweep.Exhaustive.run entry ~nprocs:2 ~ntvars:1
    ~invocations:[ Event.Read 0; Event.Write (0, 1); Event.Try_commit ]
    ~depth
    ~on_history:(fun h _ ->
      incr checked;
      match Tm_safety.Monitor.run h with
      | Tm_safety.Monitor.Accepted -> ()
      | Tm_safety.Monitor.No_witness _ ->
          if not (Tm_safety.Opacity.is_opaque h) then incr bad);
  (!checked, !bad)

let t3 () =
  section "T3" "Theorem 3: Fgp ensures opacity and global progress";
  let entry = Option.get (Reg.find "fgp") in
  (* (a) opacity under many random faulty schedules. *)
  let opaque_runs = ref 0 in
  let total_runs = 60 in
  for seed = 1 to total_runs do
    let fates =
      match seed mod 4 with
      | 0 -> []
      | 1 -> [ (1, Tm_sim.Runner.Crash_at 30) ]
      | 2 -> [ (1, Tm_sim.Runner.Parasitic_from 30) ]
      | _ ->
          [
            (1, Tm_sim.Runner.Crash_at 50);
            (2, Tm_sim.Runner.Parasitic_from 20);
          ]
    in
    let spec =
      Tm_sim.Runner.spec ~nprocs:3 ~ntvars:2 ~steps:200 ~seed
        ~sched:Tm_sim.Runner.Uniform ~fates ()
    in
    let o = Tm_sim.Runner.run entry spec in
    if Tm_safety.Opacity.is_opaque o.Tm_sim.Runner.history then
      incr opaque_runs
  done;
  check_int "random faulty runs opaque (of 60)" ~paper:total_runs
    ~measured:!opaque_runs;
  (* (b) exhaustive opacity over every schedule up to a bounded depth, two
     processes, one binary t-variable — for Fgp and the rest of the
     responsive zoo. *)
  List.iter
    (fun (name, depth) ->
      let entry' = Option.get (Reg.find name) in
      let checked, bad = sweep_non_opaque entry' ~depth in
      Fmt.pr "  %-16s exhaustive depth-%d sweep: %6d histories@." name depth
        checked;
      check_int (Fmt.str "%s non-opaque histories" name) ~paper:0
        ~measured:bad)
    [
      ("fgp", 9); ("tl2", 8); ("tinystm", 8); ("tinystm-ext", 8);
      ("swisstm", 8); ("dstm-aggressive", 8); ("ostm", 8); ("norec", 8);
      ("mvstm", 8); ("quiescent", 8); ("twopl", 8); ("fgp-priority", 8);
    ];
  (* (c) global progress: in long faulty runs, some correct process keeps
     committing. *)
  let spec =
    Tm_sim.Runner.spec ~nprocs:4 ~ntvars:2 ~steps:6000 ~seed:3
      ~sched:Tm_sim.Runner.Uniform
      ~fates:
        [
          (1, Tm_sim.Runner.Crash_at 100); (2, Tm_sim.Runner.Parasitic_from 100);
        ]
      ()
  in
  let o = Tm_sim.Runner.run entry spec in
  check "some correct process commits unboundedly" ~paper:true
    ~measured:(o.Tm_sim.Runner.commits.(3) + o.Tm_sim.Runner.commits.(4) > 50)

(* ------------------------------------------------------------------ *)
(* Z1: the Section-3.2.3 solo-progress matrix. *)

let z1 () =
  section "Z1" "Section 3.2.3: solo progress under faults";
  let solo ?(sched = Tm_sim.Runner.Round_robin) entry fate =
    let spec =
      Tm_sim.Runner.spec ~nprocs:2 ~ntvars:1 ~steps:4000 ~seed:1 ~sched
        ~fates:[ (1, fate) ]
        ()
    in
    (Tm_sim.Runner.run entry spec).Tm_sim.Runner.commits.(2) >= 10
  in
  let expectations =
    (* name, healthy, crash-after-write, crash-mid-commit, parasite *)
    [
      ("global-lock", true, false, false, false);
      ("fgp", true, true, true, true);
      ("tl2", true, true, false, true);
      ("tinystm", true, false, false, false);
      ("tinystm-ext", true, false, false, false);
      ("swisstm", true, false, false, false);
      ("dstm-aggressive", true, true, true, false);
      ("dstm-polite-4", true, true, true, true);
      ("dstm-karma", true, true, true, true);
      ("dstm-greedy", true, false, false, false);
      ("ostm", true, true, true, true);
      ("norec", true, true, false, true);
      ("mvstm", true, true, false, true);
      ("quiescent", true, false, false, false);
      ("twopl", true, false, false, false);
      (* fgp-priority is assessed in the FW section: its guarantee is
         priority progress, so the solo-runner criterion does not apply *)
    ]
  in
  List.iter
    (fun (name, h, c, m, p) ->
      let entry = Option.get (Reg.find name) in
      let depth =
        match name with "tl2" | "ostm" | "norec" | "mvstm" -> 2 | _ -> 0
      in
      check (name ^ " healthy") ~paper:h
        ~measured:
          (solo ~sched:Tm_sim.Runner.Uniform entry Tm_sim.Runner.Healthy);
      check (name ^ " crash-after-write") ~paper:c
        ~measured:(solo entry (Tm_sim.Runner.Crash_after_write 1));
      check (name ^ " crash-mid-commit") ~paper:m
        ~measured:(solo entry (Tm_sim.Runner.Crash_mid_commit depth));
      check (name ^ " parasite") ~paper:p
        ~measured:(solo entry (Tm_sim.Runner.Parasitic_from 10)))
    expectations;
  (* Quantitative: random-crash vulnerability window.  One hot t-variable
     and three writes per transaction, so a crash anywhere between the
     first write and the commit response strands encounter-time locks
     (tinystm) while commit-time locking (tl2, norec) is only vulnerable
     inside the commit procedure itself, and revocable/helping designs
     (dstm, ostm) and fgp are never vulnerable. *)
  Fmt.pr "  random-crash stall windows (3-write transactions, one hot \
          t-variable, 40 crash points):@.";
  let inc = Tm_sim.Workload.W_write
      (0, fun reads ->
        (match List.assoc_opt 0 reads with Some v -> v | None -> 0) + 1)
  in
  let hot_workload =
    Tm_sim.Workload.fixed "w3x1" [ [ Tm_sim.Workload.W_read 0; inc; inc; inc ] ]
  in
  List.iter
    (fun name ->
      let entry = Option.get (Reg.find name) in
      let stalls = ref 0 in
      let runner_commits = ref [] in
      for seed = 1 to 40 do
        let crash_step = 20 + (seed * 17 mod 300) in
        let spec =
          Tm_sim.Runner.spec ~nprocs:2 ~ntvars:1 ~steps:4000 ~seed
            ~sched:Tm_sim.Runner.Round_robin ~workload:hot_workload
            ~fates:[ (1, Tm_sim.Runner.Crash_at crash_step) ]
            ()
        in
        let o = Tm_sim.Runner.run entry spec in
        runner_commits := o.Tm_sim.Runner.commits.(2) :: !runner_commits;
        if o.Tm_sim.Runner.commits.(2) < 10 then incr stalls
      done;
      Fmt.pr "    %-18s %2d/40   runner commits: %a@." name !stalls
        Tm_sim.Stats.pp
        (Tm_sim.Stats.of_ints !runner_commits))
    [
      "global-lock"; "fgp"; "tl2"; "tinystm"; "dstm-aggressive"; "ostm";
      "norec";
    ]

(* ------------------------------------------------------------------ *)
(* Z2: the global-lock TM: local progress iff fault-free. *)

let z2 () =
  section "Z2" "Section 1.1/3.2.1: the global-lock TM";
  let entry = Option.get (Reg.find "global-lock") in
  let spec =
    Tm_sim.Runner.spec ~nprocs:4 ~ntvars:1 ~steps:4000 ~seed:2
      ~sched:Tm_sim.Runner.Round_robin ()
  in
  let o = Tm_sim.Runner.run entry spec in
  check "fault-free: zero aborts" ~paper:true
    ~measured:(Tm_sim.Runner.abort_total o = 0);
  check "fault-free: every process commits (local progress)" ~paper:true
    ~measured:
      (List.for_all (fun p -> o.Tm_sim.Runner.commits.(p) >= 10) [ 1; 2; 3; 4 ]);
  let spec_crash =
    Tm_sim.Runner.spec ~nprocs:4 ~ntvars:1 ~steps:4000 ~seed:2
      ~sched:Tm_sim.Runner.Round_robin
      ~fates:[ (1, Tm_sim.Runner.Crash_after_write 1) ]
      ()
  in
  let oc = Tm_sim.Runner.run entry spec_crash in
  check "one crash blocks every other process" ~paper:true
    ~measured:(List.length (Tm_sim.Runner.blocked_procs oc) = 3)

(* ------------------------------------------------------------------ *)
(* FW: the concluding remarks' future-work families — k-progress and
   priority progress — evaluated on a live run via empirical lasso
   detection. *)

let fw () =
  section "FW" "concluding remarks: k-progress and priority progress";
  (* The toggle workload of Figures 5/6 under fgp, round-robin lockstep:
     an exactly periodic run that realizes Figure 6 (p1 commits forever,
     p2 aborts forever). *)
  let toggle =
    Tm_sim.Workload.fixed "toggle"
      [
        [
          Tm_sim.Workload.W_read 0;
          Tm_sim.Workload.W_write
            ( 0,
              fun reads ->
                match List.assoc_opt 0 reads with
                | Some v -> 1 - v
                | None -> 1 );
        ];
      ]
  in
  let entry = Option.get (Reg.find "fgp") in
  let spec =
    Tm_sim.Runner.spec ~nprocs:2 ~ntvars:1 ~steps:400 ~seed:1
      ~sched:Tm_sim.Runner.Round_robin ~workload:toggle ()
  in
  let o = Tm_sim.Runner.run entry spec in
  match Tm_liveness.Empirical.find_lasso o.Tm_sim.Runner.history with
  | None -> check "periodic suffix detected" ~paper:true ~measured:false
  | Some l ->
      check "periodic suffix detected" ~paper:true ~measured:true;
      check "run realizes Figure 6 (global, not local)" ~paper:true
        ~measured:
          (Tm_liveness.Property.global_progress l
          && not (Tm_liveness.Property.local_progress l));
      let k1 = Tm_liveness.Property.k_progress 1 in
      let k2 = Tm_liveness.Property.k_progress 2 in
      check "1-progress holds (= global progress)" ~paper:true
        ~measured:(k1.Tm_liveness.Property.holds l);
      check "2-progress fails (Theorem 2 families)" ~paper:false
        ~measured:(k2.Tm_liveness.Property.holds l);
      check "priority progress holds when the winner is prioritized"
        ~paper:true
        ~measured:
          (Tm_liveness.Property.priority_progress
             ~priority:(fun p -> -p)
             l);
      check "priority progress fails when the loser is prioritized"
        ~paper:false
        ~measured:
          (Tm_liveness.Property.priority_progress ~priority:(fun p -> p) l);
      (* The possibility side: fgp-priority is built to ensure priority
         progress (smaller id = higher priority).  Its round-robin
         lockstep run is exactly periodic; the detected lasso satisfies
         priority progress with the top process never aborted, while
         local progress fails — as Theorem 1 requires it must. *)
      let pentry = Option.get (Reg.find "fgp-priority") in
      let pspec =
        Tm_sim.Runner.spec ~nprocs:2 ~ntvars:1 ~steps:400 ~seed:1
          ~sched:Tm_sim.Runner.Round_robin ~workload:toggle ()
      in
      let po = Tm_sim.Runner.run pentry pspec in
      (match Tm_liveness.Empirical.find_lasso po.Tm_sim.Runner.history with
      | None ->
          check "fgp-priority lockstep run is periodic" ~paper:true
            ~measured:false
      | Some pl ->
          check "fgp-priority lockstep run is periodic" ~paper:true
            ~measured:true;
          check "fgp-priority ensures priority progress" ~paper:true
            ~measured:
              (Tm_liveness.Property.priority_progress
                 ~priority:(fun p -> -p)
                 pl);
          check "fgp-priority does not ensure local progress" ~paper:false
            ~measured:(Tm_liveness.Property.local_progress pl));
      check "fgp-priority never aborts the top process" ~paper:true
        ~measured:(po.Tm_sim.Runner.aborts.(1) = 0)

(* ------------------------------------------------------------------ *)
(* FW2: the second circumvention (§1.3): the TM controls the application
   and re-executes transaction bodies itself. *)

let fw2 () =
  section "FW2"
    "second circumvention: TM-controlled execution (Fetzer-style)";
  let entry = Option.get (Reg.find "fgp") in
  (* Step-level adversarial scheduling starves p2... *)
  let spec =
    Tm_sim.Runner.spec ~nprocs:2 ~ntvars:1 ~steps:2400 ~seed:1
      ~sched:Tm_sim.Runner.Round_robin ()
  in
  let o = Tm_sim.Runner.run entry spec in
  check "step-level lockstep starves p2 under fgp" ~paper:true
    ~measured:(o.Tm_sim.Runner.commits.(2) = 0);
  (* ...but with the TM in control of execution, every submission of every
     process commits: local progress at the submission level. *)
  let c =
    Tm_sim.Controlled.run entry ~nprocs:2 ~ntvars:1 ~submissions:50
      ~workload:(Tm_sim.Workload.counter ~ntvars:1)
      ~seed:1
  in
  check "controlled execution: p1 commits all 50" ~paper:true
    ~measured:(c.Tm_sim.Controlled.committed.(1) = 50);
  check "controlled execution: p2 commits all 50" ~paper:true
    ~measured:(c.Tm_sim.Controlled.committed.(2) = 50);
  check "controlled-execution history opaque (monitor witness)" ~paper:true
    ~measured:
      (match Tm_safety.Monitor.run c.Tm_sim.Controlled.history with
      | Tm_safety.Monitor.Accepted -> true
      | Tm_safety.Monitor.No_witness _ -> false)

(* ------------------------------------------------------------------ *)
(* MV: the remaining proof-case figures (9 and 12), realized live by the
   quiescent strawman; and the multiversion TM's reader guarantee. *)

let mv () =
  section "MV" "Figures 9/12 realized; multiversion readers never abort";
  let quiescent = Option.get (Reg.find "quiescent") in
  (* Figure 9 shape: Algorithm 1, p1 "crashes" after one read, p2 is
     aborted forever. *)
  let r9 =
    Tm_adversary.Adversary.run ~patience:100 ~rounds:10 quiescent
      Tm_adversary.Adversary.Algorithm_1
  in
  check "fig9 shape: p2 starves while p1 sleeps (quiescent)" ~paper:true
    ~measured:
      (r9.Tm_adversary.Adversary.winner_starved
      && History.abort_count r9.Tm_adversary.Adversary.history 2 >= 100
      && History.event_count r9.Tm_adversary.Adversary.history 1 = 2);
  (* Figure 12 shape: Algorithm 2, p1 becomes parasitic. *)
  let r12 =
    Tm_adversary.Adversary.run ~patience:40 ~rounds:3 quiescent
      Tm_adversary.Adversary.Algorithm_2
  in
  let h12 = r12.Tm_adversary.Adversary.history in
  check "fig12 shape: p1 parasitic, p2 starves (quiescent)" ~paper:true
    ~measured:
      (r12.Tm_adversary.Adversary.winner_starved
      && History.abort_count h12 1 = 0
      && History.try_commit_count h12 1 = 0
      && History.event_count h12 1 > 50
      && History.commit_count h12 2 = 0);
  (* Multiversion: a read-only process never aborts under write fire from
     the others (per-process workload override), while TL2 aborts the same
     reader constantly. *)
  let mvstm = Option.get (Reg.find "mvstm") in
  let spec =
    Tm_sim.Runner.spec ~nprocs:3 ~ntvars:2 ~steps:3000 ~seed:4
      ~sched:Tm_sim.Runner.Uniform
      ~workload:(Tm_sim.Workload.counter ~ntvars:2)
      ~workload_overrides:[ (1, Tm_sim.Workload.read_only ~ntvars:2 ~reads:3) ]
      ()
  in
  let o = Tm_sim.Runner.run mvstm spec in
  check "mvstm: the read-only process never aborts under write fire"
    ~paper:true
    ~measured:(o.Tm_sim.Runner.aborts.(1) = 0);
  let o_tl2 = Tm_sim.Runner.run (Option.get (Reg.find "tl2")) spec in
  check "tl2: the same reader aborts repeatedly" ~paper:true
    ~measured:(o_tl2.Tm_sim.Runner.aborts.(1) > 20);
  (* ... and yet Theorem 1 still holds against it (checked in T1). *)
  let radv =
    Tm_adversary.Adversary.run ~rounds:20 mvstm
      Tm_adversary.Adversary.Algorithm_1
  in
  check "mvstm: the adversary still starves p1" ~paper:true
    ~measured:
      (radv.Tm_adversary.Adversary.victim_commits = 0
      && radv.Tm_adversary.Adversary.winner_commits >= 20)

(* ------------------------------------------------------------------ *)
(* FW3: exact liveness verdicts on one fixed adversarial schedule — the
   toggle workload (Figures 5/6) under round-robin lockstep.  Runs are
   deterministic and exactly periodic, so Empirical.find_lasso gives the
   *decided* verdict of each TM's infinite behaviour on this schedule:
   some TMs alternate fairly (local progress on this schedule), others
   serve one process forever (global only), realizing Figure 5 vs
   Figure 6 live. *)

let fw3 () =
  section "FW3"
    "exact verdicts on the toggle lockstep schedule (fig 5 vs fig 6 live)";
  let toggle =
    Tm_sim.Workload.fixed "toggle"
      [
        [
          Tm_sim.Workload.W_read 0;
          Tm_sim.Workload.W_write
            ( 0,
              fun reads ->
                match List.assoc_opt 0 reads with
                | Some v -> 1 - v
                | None -> 1 );
        ];
      ]
  in
  Fmt.pr "    %-18s %-10s %-8s %-8s %s@." "TM" "periodic" "local" "global"
    "commits p1/p2";
  let fgp_local = ref true in
  let any_local = ref false in
  List.iter
    (fun entry ->
      let spec =
        Tm_sim.Runner.spec ~nprocs:2 ~ntvars:1 ~steps:600 ~seed:1
          ~sched:Tm_sim.Runner.Round_robin ~workload:toggle ()
      in
      let o = Tm_sim.Runner.run entry spec in
      let commits =
        Fmt.str "%d/%d" o.Tm_sim.Runner.commits.(1) o.Tm_sim.Runner.commits.(2)
      in
      match Tm_liveness.Empirical.find_lasso o.Tm_sim.Runner.history with
      | None -> Fmt.pr "    %-18s %-10s %-8s %-8s %s@."
          entry.Reg.entry_name "no" "-" "-" commits
      | Some l ->
          let v = Tm_liveness.Property.verdict l in
          if entry.Reg.entry_name = "fgp" then
            fgp_local := v.Tm_liveness.Property.local;
          if v.Tm_liveness.Property.local then any_local := true;
          Fmt.pr "    %-18s %-10s %-8b %-8b %s@." entry.Reg.entry_name "yes"
            v.Tm_liveness.Property.local v.Tm_liveness.Property.global
            commits)
    Reg.all;
  check "fgp realizes Figure 6 on this schedule (global, not local)"
    ~paper:false ~measured:!fgp_local;
  check "some TM realizes Figure 5 on this schedule (local progress)"
    ~paper:true ~measured:!any_local

(* ------------------------------------------------------------------ *)
(* OQ: the paper's open question — "determine precisely the strongest
   liveness property that can be ensured by a TM".  We cannot answer it,
   but we can map the empirical frontier: for each TM, which property of
   the local > global > solo chain survives every adversarial scenario we
   can throw at it (faults, adversary, lockstep).  Bounded runs only ever
   falsify, so the verdicts are "falsified" vs "not falsified here". *)

let oq () =
  section "OQ" "open question: the strongest unfalsified property per TM";
  Fmt.pr "    %-18s %-22s %-22s %s@." "TM" "local" "global" "solo";
  List.iter
    (fun entry ->
      let name = entry.Reg.entry_name in
      (* local: the Theorem-1 adversary falsifies it for every TM (the
         victim is correct and starves), whatever the outcome mode. *)
      let local = "falsified (Thm 1)" in
      (* global: falsified when a scenario leaves every correct process
         without progress: a blocked or winner-starved adversary run, or
         the solo matrix's runner starving while the faulty process is
         crashed (hence not correct). *)
      let adv =
        Tm_adversary.Adversary.run ~rounds:20 entry
          Tm_adversary.Adversary.Algorithm_1
      in
      let solo entry fate =
        let spec =
          Tm_sim.Runner.spec ~nprocs:2 ~ntvars:1 ~steps:4000 ~seed:1
            ~sched:Tm_sim.Runner.Round_robin
            ~fates:[ (1, fate) ]
            ()
        in
        (Tm_sim.Runner.run entry spec).Tm_sim.Runner.commits.(2) >= 10
      in
      let depth =
        match name with "tl2" | "ostm" | "norec" | "mvstm" -> 2 | _ -> 0
      in
      let crash_ok =
        solo entry (Tm_sim.Runner.Crash_after_write 1)
        && solo entry (Tm_sim.Runner.Crash_mid_commit depth)
      in
      let para_ok = solo entry (Tm_sim.Runner.Parasitic_from 10) in
      let global_falsified =
        adv.Tm_adversary.Adversary.blocked
        || adv.Tm_adversary.Adversary.winner_starved
        || not crash_ok
        (* a crashed p1 is faulty, so a starving p2 falsifies global *)
      in
      let global = if global_falsified then "falsified" else "not falsified" in
      let solo_verdict =
        if crash_ok && para_ok then "not falsified" else "falsified"
      in
      Fmt.pr "    %-18s %-22s %-22s %s@." name local global solo_verdict)
    Reg.all;
  (* The frontier the paper proves and the zoo realizes: local progress is
     impossible (every row), global progress is achievable (fgp, ostm
     survive everything we have), and in between the lock-based designs
     keep only conditional solo progress. *)
  let survives name =
    let entry = Option.get (Reg.find name) in
    let adv =
      Tm_adversary.Adversary.run ~rounds:20 entry
        Tm_adversary.Adversary.Algorithm_1
    in
    (not adv.Tm_adversary.Adversary.blocked)
    && not adv.Tm_adversary.Adversary.winner_starved
  in
  check "fgp's global progress survives the adversary" ~paper:true
    ~measured:(survives "fgp");
  check "ostm's global progress survives the adversary" ~paper:true
    ~measured:(survives "ostm")

(* ------------------------------------------------------------------ *)
(* P2a: contention-manager ablation / contention sweep. *)

let ablation () =
  section "P2a" "ablation: commits by contention level (3 procs, 4000 steps)";
  Fmt.pr "    %-18s %6s %6s %6s@." "TM" "x1" "x4" "x16";
  List.iter
    (fun entry ->
      let commits ntvars =
        let spec =
          Tm_sim.Runner.spec ~nprocs:3 ~ntvars ~steps:4000 ~seed:7
            ~sched:Tm_sim.Runner.Uniform ()
        in
        Tm_sim.Runner.commit_total (Tm_sim.Runner.run entry spec)
      in
      Fmt.pr "    %-18s %6d %6d %6d@." entry.Reg.entry_name (commits 1)
        (commits 4) (commits 16))
    Reg.all

(* ------------------------------------------------------------------ *)
(* P2c: scheduler ablation — the scheduler is part of the adversary, and
   it shows: deterministic lockstep starves processes that random or
   quantum scheduling lets through. *)

let scheduler_ablation () =
  section "P2c" "ablation: scheduler (commits / min per-process commits)";
  Fmt.pr "    %-18s %16s %16s %16s@." "TM" "round-robin" "uniform"
    "quantum-25";
  let run entry sched =
    let spec =
      Tm_sim.Runner.spec ~nprocs:3 ~ntvars:2 ~steps:4000 ~seed:11 ~sched ()
    in
    let o = Tm_sim.Runner.run entry spec in
    let per = Array.to_list o.Tm_sim.Runner.commits |> List.tl in
    (Tm_sim.Runner.commit_total o, List.fold_left min max_int per)
  in
  List.iter
    (fun entry ->
      let t1, m1 = run entry Tm_sim.Runner.Round_robin in
      let t2, m2 = run entry Tm_sim.Runner.Uniform in
      let t3, m3 = run entry (Tm_sim.Runner.Quantum 25) in
      Fmt.pr "    %-18s %10d/%-5d %10d/%-5d %10d/%-5d@." entry.Reg.entry_name
        t1 m1 t2 m2 t3 m3)
    Reg.all

(* ------------------------------------------------------------------ *)
(* P2d: abort rate vs transaction length — optimistic designs pay more the
   longer the window between first read and commit; waiting designs trade
   aborts for defers. *)

let abort_rate_ablation () =
  section "P2d" "ablation: abort rate (%) by transaction length";
  Fmt.pr "    %-18s %6s %6s %6s %6s@." "TM" "len2" "len4" "len8" "len16";
  let rate entry len =
    let spec =
      Tm_sim.Runner.spec ~nprocs:3 ~ntvars:4 ~steps:6000 ~seed:13
        ~sched:Tm_sim.Runner.Uniform
        ~workload:(Tm_sim.Workload.read_heavy ~ntvars:4 ~reads:(len - 2))
        ()
    in
    let o = Tm_sim.Runner.run entry spec in
    let c = Tm_sim.Runner.commit_total o and a = Tm_sim.Runner.abort_total o in
    if c + a = 0 then 0. else 100. *. float_of_int a /. float_of_int (c + a)
  in
  List.iter
    (fun entry ->
      Fmt.pr "    %-18s %6.1f %6.1f %6.1f %6.1f@." entry.Reg.entry_name
        (rate entry 2) (rate entry 4) (rate entry 8) (rate entry 16))
    Reg.all

(* ------------------------------------------------------------------ *)
(* P2b: the real multicore STM. *)

let real_stm () =
  section "P2b" "real multicore STM (TL2 over domains): bank throughput";
  let accounts = 16 and initial = 1000 in
  let bank = Tm_stm.Txn_bank.make ~accounts ~initial in
  let workers = 4 and per = 10_000 in
  let t0 = Unix.gettimeofday () in
  List.init workers (fun d ->
      Domain.spawn (fun () ->
          let st = ref (d + 1) in
          let rand bound =
            st := (!st * 1103515245) + 12345;
            abs !st mod bound
          in
          for _ = 1 to per do
            let a = rand accounts in
            let b = (a + 1 + rand (accounts - 1)) mod accounts in
            ignore
              (Tm_stm.Txn_bank.transfer bank ~from_:a ~to_:b
                 ~amount:(1 + rand 5))
          done))
  |> List.iter Domain.join;
  let dt = Unix.gettimeofday () -. t0 in
  let commits, aborts = Tm_stm.Stm.stats () in
  Fmt.pr
    "  %d workers x %d transfers in %.3fs (%.0f/s), commits=%d aborts=%d@."
    workers per dt
    (float_of_int (workers * per) /. dt)
    commits aborts;
  check "money conserved under full concurrency" ~paper:true
    ~measured:(Tm_stm.Txn_bank.total bank = accounts * initial)

(* ------------------------------------------------------------------ *)
(* P3: the paper's footnote 1 (Amdahl), measured on real hardware —
   resilient TMs scale with cores, the global lock cannot.  Each domain
   increments its own t-variable (a disjoint-access-parallel workload). *)

let p3_scaling () =
  section "P3"
    "footnote 1: disjoint-access scaling, TL2 runtime vs global-lock \
     runtime (ops/ms)";
  let iters = 200_000 in
  let measure_tl2 domains =
    let tvars = Array.init domains (fun _ -> Tm_stm.Stm.tvar 0) in
    let t0 = Unix.gettimeofday () in
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for _ = 1 to iters do
              Tm_stm.Stm.atomically (fun () ->
                  Tm_stm.Stm.write tvars.(d) (Tm_stm.Stm.read tvars.(d) + 1))
            done))
    |> List.iter Domain.join;
    let dt = Unix.gettimeofday () -. t0 in
    float_of_int (domains * iters) /. (dt *. 1000.)
  in
  let measure_lock domains =
    let tvars = Array.init domains (fun _ -> Tm_stm.Stm_lock.tvar 0) in
    let t0 = Unix.gettimeofday () in
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for _ = 1 to iters do
              Tm_stm.Stm_lock.atomically (fun () ->
                  Tm_stm.Stm_lock.write tvars.(d)
                    (Tm_stm.Stm_lock.read tvars.(d) + 1))
            done))
    |> List.iter Domain.join;
    let dt = Unix.gettimeofday () -. t0 in
    float_of_int (domains * iters) /. (dt *. 1000.)
  in
  Fmt.pr "    %-10s %12s %12s@." "domains" "tl2-stm" "lock-stm";
  let tl2_1 = ref 0. and tl2_4 = ref 0. in
  let lock_1 = ref 0. and lock_4 = ref 0. in
  List.iter
    (fun d ->
      let a = measure_tl2 d and b = measure_lock d in
      if d = 1 then begin
        tl2_1 := a;
        lock_1 := b
      end;
      if d = 4 then begin
        tl2_4 := a;
        lock_4 := b
      end;
      Fmt.pr "    %-10d %12.0f %12.0f@." d a b)
    [ 1; 2; 4 ];
  let tl2_speedup = !tl2_4 /. !tl2_1 and lock_speedup = !lock_4 /. !lock_1 in
  Fmt.pr "    4-domain speedup: tl2-stm %.2fx, lock-stm %.2fx@." tl2_speedup
    lock_speedup;
  let cores = Domain.recommended_domain_count () in
  if cores >= 4 then
    check "resilient TM scales better than the global lock (footnote 1)"
      ~paper:true
      ~measured:(tl2_speedup > lock_speedup)
  else
    (* Hardware gate: this machine cannot exhibit parallel speedup at all
       (documented substitution — the claim needs >= 4 cores, found
       fewer).  The correctness side is still checked: both runtimes must
       have executed every transaction. *)
    Fmt.pr
      "    only %d core(s) available: parallel speedup not measurable \
       here;@.    skipping the scaling check (see EXPERIMENTS.md, P3)@."
      cores

(* ------------------------------------------------------------------ *)
(* P4: the domain-parallel sweep engine — bit-for-bit determinism across
   job counts, per-TM metrics (abort-cause breakdown), and the parallel
   speedup on multicore hardware. *)

let p4_parallel_sweep () =
  section "P4" "domain-parallel sweep: determinism, metrics, speedup";
  let seeds = List.init 8 (fun i -> i + 1) in
  let configs =
    (* The acceptance grid: every TM in the zoo x 8 seeds, healthy runs
       long enough that a run is real work. *)
    Tm_sim.Sweep.grid
      ~patterns:
        (List.filteri (fun i _ -> i = 0) (Tm_sim.Sweep.fault_patterns ~steps:3000 ()))
      ~seeds ()
  in
  check_int "grid size (16 TMs x 8 seeds)" ~paper:(16 * 8)
    ~measured:(List.length configs);
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let seq, t_seq = time (fun () -> Tm_sim.Sweep.run configs) in
  let par, t_par =
    time (fun () ->
        Tm_sim.Pool.with_pool ~jobs:4 (fun pool ->
            Tm_sim.Sweep.run ~pool configs))
  in
  check "parallel sweep equals sequential sweep byte-for-byte" ~paper:true
    ~measured:(Tm_sim.Sweep.to_json seq = Tm_sim.Sweep.to_json par);
  check "every run's history equals its sequential twin" ~paper:true
    ~measured:
      (List.for_all2
         (fun a b ->
           History.equal a.Tm_sim.Sweep.r_outcome.Tm_sim.Runner.history
             b.Tm_sim.Sweep.r_outcome.Tm_sim.Runner.history)
         seq par);
  Fmt.pr "  %d runs: sequential %.3fs, 4 jobs %.3fs (%.2fx)@."
    (List.length configs) t_seq t_par (t_seq /. t_par);
  let cores = Domain.recommended_domain_count () in
  if cores >= 4 then
    check "4-job sweep is >= 2x faster on >= 4 cores" ~paper:true
      ~measured:(t_seq /. t_par >= 2.0)
  else
    (* Hardware gate: parallel speedup is not measurable on this machine
       (documented substitution — the claim needs >= 4 cores, found
       fewer).  Determinism, which does not need cores, is checked
       above. *)
    Fmt.pr
      "    only %d core(s) available: skipping the speedup check (see \
       EXPERIMENTS.md, P4)@."
      cores;
  Fmt.pr "  per-TM abort-cause breakdown (read/write/commit) over the grid:@.";
  List.iter
    (fun (name, m) ->
      Fmt.pr "    %-18s commits %6d  aborts %6d = %5d/%5d/%5d  commit-lat \
              mean %5.1f ev@."
        name m.Tm_sim.Metrics.commits m.Tm_sim.Metrics.aborts
        m.Tm_sim.Metrics.abort_causes.Tm_sim.Metrics.on_read
        m.Tm_sim.Metrics.abort_causes.Tm_sim.Metrics.on_write
        m.Tm_sim.Metrics.abort_causes.Tm_sim.Metrics.on_commit
        (Tm_sim.Metrics.hist_mean m.Tm_sim.Metrics.commit_latency))
    (Tm_sim.Sweep.by_tm seq)

(* ------------------------------------------------------------------ *)
(* P5: tracing overhead — the flag-off hot path must cost nothing
   measurable, the null sink must stay within noise, and the ring sink
   must stay bounded (drop, not grow).  Wall-clock timings use a
   min-of-3-trials protocol to shave scheduler noise; see
   EXPERIMENTS.md §P5. *)

let p5_trace_overhead () =
  section "P5" "tracing overhead: off vs null sink vs ring sink";
  let iters = 200_000 in
  let v = Tm_stm.Stm.tvar 0 in
  let work () =
    for _ = 1 to iters do
      Tm_stm.Stm.atomically (fun () ->
          Tm_stm.Stm.write v (Tm_stm.Stm.read v + 1))
    done
  in
  let time_once f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let min3 f = List.fold_left min infinity (List.init 3 (fun _ -> time_once f)) in
  work () (* warm-up *);
  let t_off = min3 work in
  Tm_stm.Stm.Trace.start_null ();
  let t_null = min3 work in
  let null_emitted = Tm_stm.Stm.Trace.emitted () in
  Tm_stm.Stm.Trace.stop ();
  (* Read before the ring run below repopulates the registry. *)
  let null_stored = Tm_stm.Stm.Trace.events () in
  let ring_capacity = 4096 in
  Tm_stm.Stm.Trace.start ~capacity:ring_capacity ();
  let t_ring = min3 work in
  Tm_stm.Stm.Trace.stop ();
  let ring_retained = List.length (Tm_stm.Stm.Trace.events ()) in
  let ring_dropped = Tm_stm.Stm.Trace.dropped () in
  let per_txn t = 1e9 *. t /. float_of_int iters in
  (* null_emitted spans the 3 timed trials; t_null is one trial. *)
  let events_per_trial = float_of_int null_emitted /. 3.0 in
  let null_ns_per_event = 1e9 *. (t_null -. t_off) /. events_per_trial in
  Fmt.pr "  %d single-domain increments, min of 3 trials:@." iters;
  Fmt.pr "    tracing off   %.4fs (%5.1f ns/txn)@." t_off (per_txn t_off);
  Fmt.pr
    "    null sink     %.4fs (%5.1f ns/txn, %.2fx, %d events emitted, \
     %.1f ns/event)@."
    t_null (per_txn t_null) (t_null /. t_off) null_emitted null_ns_per_event;
  Fmt.pr
    "    ring sink     %.4fs (%5.1f ns/txn, %.2fx, %d retained / %d \
     dropped)@."
    t_ring (per_txn t_ring) (t_ring /. t_off) ring_retained ring_dropped;
  check "null-sink dispatch cheap per event (< 100 ns/event)" ~paper:true
    ~measured:(null_ns_per_event < 100.0);
  check "null sink counted emissions without storing them" ~paper:true
    ~measured:(null_emitted > 0 && null_stored = []);
  check "ring sink bounded: retains <= capacity and drops the rest"
    ~paper:true
    ~measured:(ring_retained <= ring_capacity && ring_dropped > 0);
  (* The simulator's recorder, for scale (informational): the collector
     allocates per event, so some slowdown is expected and fine — sim
     traces are for bounded forensic runs, not steady-state production. *)
  let entry = Option.get (Reg.find "tl2") in
  let spec =
    Tm_sim.Runner.spec ~nprocs:3 ~ntvars:4 ~steps:2000 ~seed:1
      ~sched:Tm_sim.Runner.Uniform ()
  in
  let t_plain = min3 (fun () -> ignore (Tm_sim.Runner.run entry spec)) in
  let t_traced =
    min3 (fun () ->
        let col = Tm_trace.Sink.collector () in
        ignore
          (Tm_sim.Runner.run
             ~trace:(Tm_trace.Sink.collector_sink col)
             entry spec))
  in
  Fmt.pr "  runner, 2000 steps: untraced %.4fs, traced %.4fs (%.2fx)@."
    t_plain t_traced
    (t_traced /. t_plain)

(* ------------------------------------------------------------------ *)
(* P6: the lint engine — clean corpora really lint clean, the race
   checker turns up nothing on a real contended multicore trace, and the
   analyzers are fast enough to gate CI. *)

let p6_analysis () =
  section "P6" "analysis pass: findings and lint throughput";
  let module An = Tm_analysis in
  let figure_findings =
    List.concat_map
      (fun (name, h) -> An.Engine.run_history ~subject:name h)
      Figures.all_finite
    @ List.concat_map
        (fun (name, l) -> An.Engine.run_lasso ~subject:name l)
        Figures.all_lassos
  in
  check_int "figures corpus findings" ~paper:0
    ~measured:(List.length figure_findings);
  (* A contended multicore run of the real STM, traced and linted. *)
  let n = 4 in
  let accounts = Array.init n (fun _ -> Tm_stm.Stm.tvar 100) in
  Tm_stm.Stm.Trace.start ~capacity:(1 lsl 18) ();
  let worker k () =
    for i = 1 to 2000 do
      let src = (i * (k + 1)) mod n and dst = (i + k) mod n in
      Tm_stm.Stm.atomically (fun () ->
          let v = Tm_stm.Stm.read accounts.(src) in
          Tm_stm.Stm.write accounts.(src) (v - 1);
          Tm_stm.Stm.write accounts.(dst)
            (Tm_stm.Stm.read accounts.(dst) + 1))
    done
  in
  let domains = List.init 4 (fun k -> Domain.spawn (worker k)) in
  List.iter Domain.join domains;
  Tm_stm.Stm.Trace.stop ();
  let events = Tm_stm.Stm.Trace.events () in
  let truncated = Tm_stm.Stm.Trace.dropped () > 0 in
  if truncated then
    Fmt.pr "  (ring truncated; skipping the protocol lint)@."
  else begin
    let t0 = Unix.gettimeofday () in
    let findings = An.Engine.run_trace ~subject:"stm" events in
    let dt = Unix.gettimeofday () -. t0 in
    Fmt.pr "  linted %d trace events in %.3fs (%.0f events/s)@."
      (List.length events) dt
      (float_of_int (List.length events) /. dt);
    check_int "multicore commit-protocol findings" ~paper:0
      ~measured:(List.length findings);
    check "TL2 canonical order: every lock-order edge ascends" ~paper:true
      ~measured:
        (List.for_all (fun (a, b) -> a < b)
           (An.Trace_lint.lock_order_edges events))
  end

(* ------------------------------------------------------------------ *)
(* P7: chaos-hook overhead — the Stm interception points must be free
   when disarmed (one relaxed Atomic.get per potential event, same
   contract as P5's tracing flag) and cheap when armed with a no-op
   handler (< 100 ns per fired event, P5's null-sink bound).  See
   EXPERIMENTS.md §P7. *)

let p7_chaos_overhead () =
  section "P7" "chaos hooks: disarmed vs no-op handler on the Stm hot path";
  let iters = 200_000 in
  let v = Tm_stm.Stm.tvar 0 in
  let work () =
    for _ = 1 to iters do
      Tm_stm.Stm.atomically (fun () ->
          Tm_stm.Stm.write v (Tm_stm.Stm.read v + 1))
    done
  in
  let time_once f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let min3 f = List.fold_left min infinity (List.init 3 (fun _ -> time_once f)) in
  work () (* warm-up *);
  let t_off = min3 work in
  (* Count the interception points one trial fires (a counting handler,
     outside the timed runs). *)
  let fired = Atomic.make 0 in
  Tm_stm.Stm.Chaos.install (fun _ ->
      Atomic.incr fired;
      Tm_stm.Stm.Chaos.Proceed);
  work ();
  let events_per_trial = Atomic.get fired in
  Tm_stm.Stm.Chaos.uninstall ();
  Tm_stm.Stm.Chaos.install (fun _ -> Tm_stm.Stm.Chaos.Proceed);
  let t_armed = min3 work in
  Tm_stm.Stm.Chaos.uninstall ();
  let t_disarmed = min3 work in
  let per_txn t = 1e9 *. t /. float_of_int iters in
  let armed_ns_per_event =
    1e9 *. (t_armed -. t_off) /. float_of_int events_per_trial
  in
  Fmt.pr "  %d single-domain increments, min of 3 trials:@." iters;
  Fmt.pr "    hooks disarmed  %.4fs (%5.1f ns/txn)@." t_off (per_txn t_off);
  Fmt.pr
    "    no-op handler   %.4fs (%5.1f ns/txn, %.2fx, %d points/trial, %.1f \
     ns/event)@."
    t_armed (per_txn t_armed) (t_armed /. t_off) events_per_trial
    armed_ns_per_event;
  Fmt.pr "    uninstalled     %.4fs (%5.1f ns/txn, %.2fx)@." t_disarmed
    (per_txn t_disarmed)
    (t_disarmed /. t_off);
  check "every commit fires lock/validate/pre/post points" ~paper:true
    ~measured:(events_per_trial >= 4 * iters);
  check "armed no-op dispatch cheap per event (< 100 ns/event)" ~paper:true
    ~measured:(armed_ns_per_event < 100.0);
  (* Uninstall must restore the baseline: the disarmed run after the
     armed one stays within noise of the first disarmed run. *)
  check "uninstall restores the disarmed fast path (< 1.5x)" ~paper:true
    ~measured:(t_disarmed /. t_off < 1.5)

(* ------------------------------------------------------------------ *)
(* P8: telemetry overhead — the Stm.Tel probe seam must cost nothing
   measurable while disarmed (one relaxed Atomic.get per potential
   event, the P5/P7 contract), stay under 100 ns/event when armed with
   the real registry-backed probe, and a registry scrape must read
   instruments, not events: its cost cannot grow with the event volume
   the instruments absorbed.  See EXPERIMENTS.md §P8. *)

let p8_telemetry_overhead () =
  section "P8" "telemetry: disarmed vs armed Stm probe, scrape cost";
  let iters = 200_000 in
  let v = Tm_stm.Stm.tvar 0 in
  let work () =
    for _ = 1 to iters do
      Tm_stm.Stm.atomically (fun () ->
          Tm_stm.Stm.write v (Tm_stm.Stm.read v + 1))
    done
  in
  let time_once f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let min3 f = List.fold_left min infinity (List.init 3 (fun _ -> time_once f)) in
  work () (* warm-up *);
  let t_off = min3 work in
  (* Count the probe events one trial fires (a counting probe, outside
     the timed runs). *)
  let fired = Atomic.make 0 in
  Tm_stm.Stm.Tel.install
    {
      Tm_stm.Stm.Tel.now = (fun () -> 0);
      count = (fun _ -> Atomic.incr fired);
      observe = (fun _ _ -> Atomic.incr fired);
    };
  work ();
  let events_per_trial = Atomic.get fired in
  Tm_stm.Stm.Tel.uninstall ();
  (* The real thing: registry-backed counters and ns histograms, the
     monotonic clock included. *)
  let reg = Tm_telemetry.Registry.create () in
  ignore (Tm_telemetry.Stm_probe.install reg);
  let t_armed = min3 work in
  Tm_telemetry.Stm_probe.uninstall ();
  let t_disarmed = min3 work in
  let per_txn t = 1e9 *. t /. float_of_int iters in
  let armed_ns_per_event =
    1e9 *. (t_armed -. t_off) /. float_of_int events_per_trial
  in
  let disarmed_ns_per_event =
    1e9 *. (t_disarmed -. t_off) /. float_of_int events_per_trial
  in
  Fmt.pr "  %d single-domain increments, min of 3 trials:@." iters;
  Fmt.pr "    probe disarmed  %.4fs (%5.1f ns/txn)@." t_off (per_txn t_off);
  Fmt.pr
    "    registry probe  %.4fs (%5.1f ns/txn, %.2fx, %d events/trial, %.1f \
     ns/event)@."
    t_armed (per_txn t_armed) (t_armed /. t_off) events_per_trial
    armed_ns_per_event;
  Fmt.pr "    uninstalled     %.4fs (%5.1f ns/txn, %.2fx, %.1f ns/event)@."
    t_disarmed
    (per_txn t_disarmed)
    (t_disarmed /. t_off) disarmed_ns_per_event;
  check "begin/read/commit and timed phases all fire" ~paper:true
    ~measured:(events_per_trial >= 4 * iters);
  check "disarmed seam costs nothing measurable (< 100 ns/event)"
    ~paper:true
    ~measured:(disarmed_ns_per_event < 100.0);
  check "armed registry probe cheap per event (< 100 ns/event)" ~paper:true
    ~measured:(armed_ns_per_event < 100.0);
  check "uninstall restores the disarmed fast path (< 1.5x)" ~paper:true
    ~measured:(t_disarmed /. t_off < 1.5);
  (* Scrape cost is a function of the registered instruments, not of how
     many events they absorbed: scraping the registry that just took
     ~10^6 events must cost the same as scraping an identical fresh
     one. *)
  let scrapes = 2000 in
  let time_scrapes r =
    min3 (fun () ->
        for i = 1 to scrapes do
          ignore (Tm_telemetry.Registry.scrape r ~ts:i)
        done)
  in
  let fresh = Tm_telemetry.Registry.create () in
  ignore (Tm_telemetry.Stm_probe.register fresh);
  let t_fresh = time_scrapes fresh in
  let t_loaded = time_scrapes reg in
  Fmt.pr
    "  %d scrapes: fresh registry %.4fs (%5.1f us/scrape), after ~%dk \
     events %.4fs (%5.1f us/scrape, %.2fx)@."
    scrapes t_fresh
    (1e6 *. t_fresh /. float_of_int scrapes)
    (3 * events_per_trial / 1000)
    t_loaded
    (1e6 *. t_loaded /. float_of_int scrapes)
    (t_loaded /. t_fresh);
  check "scrape cost independent of absorbed event volume (< 2x)"
    ~paper:true
    ~measured:(t_loaded /. t_fresh < 2.0)

(* ------------------------------------------------------------------ *)
(* P1: bechamel timing benches. *)

let bechamel_benches () =
  section "P1" "bechamel timing benches (ns/run, OLS estimate)";
  let open Bechamel in
  let checker_history ntxns =
    let steps =
      List.concat
        (List.init ntxns (fun i ->
             let p = (i mod 3) + 1 in
             let x = i mod 4 in
             [ History.read p x 0; History.write p x 0; History.commit p ]))
    in
    History.steps steps
  in
  let h20 = checker_history 20 and h60 = checker_history 60 in
  let fig16 = Figures.fig16 in
  let adversary_entry = Option.get (Reg.find "fgp") in
  let sim_entry = Option.get (Reg.find "tl2") in
  let sim_spec =
    Tm_sim.Runner.spec ~nprocs:3 ~ntvars:4 ~steps:500 ~seed:1
      ~sched:Tm_sim.Runner.Uniform ()
  in
  let tests =
    [
      Test.make ~name:"opacity-check-fig16"
        (Staged.stage (fun () -> Tm_safety.Opacity.is_opaque fig16));
      Test.make ~name:"opacity-check-20txn"
        (Staged.stage (fun () -> Tm_safety.Opacity.is_opaque h20));
      Test.make ~name:"opacity-check-60txn"
        (Staged.stage (fun () -> Tm_safety.Opacity.is_opaque h60));
      Test.make ~name:"lint-history-60txn"
        (Staged.stage (fun () ->
             Tm_analysis.Engine.run_history ~subject:"bench" h60));
      Test.make ~name:"liveness-classify-fig7"
        (Staged.stage (fun () -> Tm_liveness.Property.verdict Figures.fig7));
      Test.make ~name:"adversary-round-fgp"
        (Staged.stage (fun () ->
             Tm_adversary.Adversary.run ~rounds:1 adversary_entry
               Tm_adversary.Adversary.Algorithm_1));
      Test.make ~name:"simulate-500-steps-tl2"
        (Staged.stage (fun () -> Tm_sim.Runner.run sim_entry sim_spec));
      Test.make ~name:"fgp-fig15-enumeration"
        (Staged.stage (fun () ->
             let cfg = Tm_impl.Tm_intf.config ~nprocs:1 ~ntvars:1 () in
             Tm_automaton.Explorer.reachable
               ~make:(fun () -> Tm_impl.Fgp.create cfg)
               ~snapshot:Tm_impl.Fgp.state
               ~actions:(fun t ->
                 match Tm_impl.Fgp.pending t 1 with
                 | Some _ -> [ `Poll ]
                 | None ->
                     [
                       `I (Event.Read 0);
                       `I (Event.Write (0, 1));
                       `I Event.Try_commit;
                     ])
               ~apply:(fun t a ->
                 match a with
                 | `I inv -> Tm_impl.Fgp.invoke t 1 inv
                 | `Poll -> ignore (Tm_impl.Fgp.poll t 1))
               ()));
      Test.make ~name:"stm-atomically-increment"
        (let v = Tm_stm.Stm.tvar 0 in
         Staged.stage (fun () ->
             Tm_stm.Stm.atomically (fun () ->
                 Tm_stm.Stm.write v (Tm_stm.Stm.read v + 1))));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"tm" tests) in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, estimate) ->
      match Analyze.OLS.estimates estimate with
      | Some [ ns ] -> Fmt.pr "  %-42s %12.1f ns/run@." name ns
      | Some _ | None -> Fmt.pr "  %-42s (no estimate)@." name)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

(* ------------------------------------------------------------------ *)
(* P9: the Kuznetsov–Ravi separation, measured.  "Why Transactional
   Memory Should Not Be Obstruction-Free" predicts that obstruction-free
   TMs pay a complexity premium over progressive lock-based ones; the
   observable proxy on real hardware is wasted work — aborts per commit
   — under rising contention on a hot conflicting workload.  DSTM's
   total stealing aborts rivals that TL2's per-location vlocks would
   simply have serialized, so its aborts/commit must be at least TL2's
   at the top of the domain ladder.  The full zoo trajectory (all four
   cores across the ladder) is recorded to BENCH_zoo.json
   ([TM_BENCH_ZOO_OUT] overrides the path) as the repo's benchmark
   artifact; the verdict is hardware-gated like P3/P4 — with fewer than
   4 cores the contention the claim needs cannot be produced. *)

let p9_zoo_separation () =
  let module Stm = Tm_stm.Stm in
  section "P9"
    "zoo separation: obstruction-free vs progressive under contention";
  let iters = 20_000 in
  let ladder = [ 1; 2; 4 ] in
  let run_one algo domains =
    Stm.with_algo algo (fun () ->
        let hot = Array.init 2 (fun _ -> Stm.tvar 0) in
        let c0, a0 = Stm.stats () in
        let t0 = Unix.gettimeofday () in
        List.init domains (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to iters do
                  Stm.atomically (fun () ->
                      let a = Stm.read hot.(0) in
                      let b = Stm.read hot.(1) in
                      Stm.write hot.(0) (a + 1);
                      Stm.write hot.(1) (b + 1))
                done))
        |> List.iter Domain.join;
        let dt = Unix.gettimeofday () -. t0 in
        let c1, a1 = Stm.stats () in
        check
          (Fmt.str "%s x%d: every increment committed"
             (Stm.Algo.name algo) domains)
          ~paper:true
          ~measured:
            (Stm.read hot.(0) = domains * iters
            && Stm.read hot.(1) = domains * iters);
        (c1 - c0, a1 - a0, dt))
  in
  let aborts_per_commit (c, a, _) =
    if c = 0 then Float.infinity else float_of_int a /. float_of_int c
  in
  let runs =
    List.concat_map
      (fun algo ->
        List.map
          (fun domains -> (algo, domains, run_one algo domains))
          ladder)
      Stm.Algo.all
  in
  Fmt.pr "    %-12s %-8s %10s %10s %12s %14s@." "algo" "domains" "commits"
    "aborts" "kcommits/s" "aborts/commit";
  List.iter
    (fun (algo, domains, ((c, a, dt) as r)) ->
      Fmt.pr "    %-12s %-8d %10d %10d %12.0f %14.3f@." (Stm.Algo.name algo)
        domains c a
        (float_of_int c /. dt /. 1000.)
        (aborts_per_commit r))
    runs;
  (* The deterministic half of the separation: the complexity premium
     in the read path itself, no contention required.  DSTM's safety
     rests on revalidating the whole read set on every read (total
     stealing makes every read a potential invalidation), so a read-only
     transaction of k reads does O(k^2) validation work; TL2's invisible
     reads are O(1) each, so the same transaction is O(k).  Growing k
     16x must therefore grow DSTM's per-transaction latency by a
     distinctly larger factor than TL2's — on any machine, single
     domain. *)
  let k_small = 4 and k_large = 64 in
  let read_latency_ns algo k =
    Stm.with_algo algo (fun () ->
        let tvs = Array.init k (fun _ -> Stm.tvar 0) in
        let body () =
          Stm.atomically (fun () ->
              Array.iter (fun tv -> ignore (Stm.read tv)) tvs)
        in
        for _ = 1 to 200 do
          body ()
        done;
        let reps = 200_000 / k in
        let t0 = Unix.gettimeofday () in
        for _ = 1 to reps do
          body ()
        done;
        (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int reps)
  in
  let scaling =
    List.map
      (fun algo ->
        let s = read_latency_ns algo k_small
        and l = read_latency_ns algo k_large in
        (algo, s, l, l /. s))
      Stm.Algo.all
  in
  Fmt.pr "    read-only latency by read-set size (single domain):@.";
  Fmt.pr "    %-12s %14s %14s %10s@." "algo"
    (Fmt.str "k=%d (ns)" k_small)
    (Fmt.str "k=%d (ns)" k_large)
    "growth";
  List.iter
    (fun (algo, s, l, g) ->
      Fmt.pr "    %-12s %14.0f %14.0f %9.1fx@." (Stm.Algo.name algo) s l g)
    scaling;
  let growth_of a =
    let _, _, _, g = List.find (fun (x, _, _, _) -> x = a) scaling in
    g
  in
  let dstm_growth = growth_of Stm.Algo.Dstm
  and tl2_growth = growth_of Stm.Algo.Tl2 in
  let complexity_holds = dstm_growth >= 2. *. tl2_growth in
  check
    (Fmt.str
       "dstm read path grows superlinearly vs tl2 (k %d -> %d: %.1fx vs \
        %.1fx)"
       k_small k_large dstm_growth tl2_growth)
    ~paper:true ~measured:complexity_holds;
  let out =
    Option.value ~default:"BENCH_zoo.json" (Sys.getenv_opt "TM_BENCH_ZOO_OUT")
  in
  let cores = Domain.recommended_domain_count () in
  let peak = List.fold_left max 1 ladder in
  let at algo domains =
    let _, _, r =
      List.find (fun (a, d, _) -> a = algo && d = domains) runs
    in
    r
  in
  let dstm_apc = aborts_per_commit (at Stm.Algo.Dstm peak)
  and tl2_apc = aborts_per_commit (at Stm.Algo.Tl2 peak) in
  let holds = dstm_apc >= tl2_apc in
  let oc = open_out out in
  let json =
    Fmt.str
      "{\"experiment\":\"P9\",\"claim\":\"obstruction-free pays at least \
       the progressive abort rate under contention\",\"cores\":%d,\
       \"iters_per_domain\":%d,\"tvars\":2,\"ladder\":[%s],\"runs\":[%s],\
       \"read_scaling\":{\"k_small\":%d,\"k_large\":%d,\"per_algo\":[%s],\
       \"dstm_growth\":%.1f,\"tl2_growth\":%.1f,\"holds\":%b},\
       \"separation\":{\"at_domains\":%d,\"dstm_aborts_per_commit\":%.4f,\
       \"tl2_aborts_per_commit\":%.4f,\"holds\":%b}}"
      cores iters
      (String.concat "," (List.map string_of_int ladder))
      (String.concat ","
         (List.map
            (fun (algo, domains, ((c, a, dt) as r)) ->
              Fmt.str
                "{\"algo\":%S,\"progress\":%S,\"domains\":%d,\
                 \"commits\":%d,\"aborts\":%d,\"wall_s\":%.4f,\
                 \"kcommits_per_s\":%.1f,\"aborts_per_commit\":%.4f}"
                (Stm.Algo.name algo)
                (Stm.Algo.progress_label algo)
                domains c a dt
                (float_of_int c /. dt /. 1000.)
                (aborts_per_commit r))
            runs))
      k_small k_large
      (String.concat ","
         (List.map
            (fun (algo, s, l, g) ->
              Fmt.str
                "{\"algo\":%S,\"ns_small\":%.0f,\"ns_large\":%.0f,\
                 \"growth\":%.1f}"
                (Stm.Algo.name algo) s l g)
            scaling))
      dstm_growth tl2_growth complexity_holds peak dstm_apc tl2_apc holds
  in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Fmt.pr "    trajectory written to %s@." out;
  if cores >= 4 then
    check
      (Fmt.str
         "dstm aborts/commit >= tl2 aborts/commit at %d domains \
          (Kuznetsov-Ravi)"
         peak)
      ~paper:true ~measured:holds
  else
    Fmt.pr
      "    only %d core(s) available: contention separation not \
       measurable here;@.    skipping the separation check (see \
       EXPERIMENTS.md, P9)@."
      cores

(* ------------------------------------------------------------------ *)
(* P10: blame-attribution overhead — the Stm.Blame seam must cost
   nothing measurable while disarmed (decision sites check one atomic
   flag and only on abort paths; the progress watermark adds one
   disarmed load per commit), stay under 100 ns/event when armed with
   a counting sink, and the armed attribution must be truthful: under
   two-domain write-write contention the DSTM core produces Stolen
   edges while TL2 produces none (TL2 has no stealing to attribute).
   See EXPERIMENTS.md §P10. *)

let p10_blame_overhead () =
  let module Stm = Tm_stm.Stm in
  section "P10" "blame: disarmed vs armed attribution seam, stolen edges";
  let iters = 200_000 in
  let v = Stm.tvar 0 in
  let work () =
    for _ = 1 to iters do
      Stm.atomically (fun () -> Stm.write v (Stm.read v + 1))
    done
  in
  let time_once f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let min3 f = List.fold_left min infinity (List.init 3 (fun _ -> time_once f)) in
  work () (* warm-up *);
  let t_off = min3 work in
  (* A counting sink: uncontended single-domain increments produce no
     blame edges, so what fires per commit is the progress watermark —
     the seam's hot-path component. *)
  let fired = Atomic.make 0 in
  Stm.Blame.install
    {
      Stm.Blame.on_event = (fun _ -> Atomic.incr fired);
      on_progress = (fun _ -> Atomic.incr fired);
    };
  work ();
  let events_per_trial = Atomic.get fired in
  let t_armed = min3 work in
  Stm.Blame.uninstall ();
  let t_disarmed = min3 work in
  let per_txn t = 1e9 *. t /. float_of_int iters in
  let armed_ns_per_event =
    1e9 *. (t_armed -. t_off) /. float_of_int events_per_trial
  in
  let disarmed_ns_per_event =
    1e9 *. (t_disarmed -. t_off) /. float_of_int events_per_trial
  in
  Fmt.pr "  %d single-domain increments, min of 3 trials:@." iters;
  Fmt.pr "    seam disarmed   %.4fs (%5.1f ns/txn)@." t_off (per_txn t_off);
  Fmt.pr
    "    counting sink   %.4fs (%5.1f ns/txn, %.2fx, %d events/trial, %.1f \
     ns/event)@."
    t_armed (per_txn t_armed) (t_armed /. t_off) events_per_trial
    armed_ns_per_event;
  Fmt.pr "    uninstalled     %.4fs (%5.1f ns/txn, %.2fx, %.1f ns/event)@."
    t_disarmed (per_txn t_disarmed)
    (t_disarmed /. t_off)
    disarmed_ns_per_event;
  check "every commit ticks the progress watermark" ~paper:true
    ~measured:(events_per_trial >= iters);
  check "disarmed blame seam costs nothing measurable (< 100 ns/event)"
    ~paper:true
    ~measured:(disarmed_ns_per_event < 100.0);
  check "armed counting sink cheap per event (< 100 ns/event)" ~paper:true
    ~measured:(armed_ns_per_event < 100.0);
  check "uninstall restores the disarmed fast path (< 1.5x)" ~paper:true
    ~measured:(t_disarmed /. t_off < 1.5);
  (* Truthful causes: two domains hammering two shared t-variables.
     DSTM acquires eagerly and resolves conflicts by stealing, so the
     blame graph must carry Stolen edges; TL2 has no stealing, so a
     Stolen edge under TL2 would be a lie. *)
  let iters2 = 50_000 in
  let contend algo =
    Stm.with_algo algo (fun () ->
        let reg = Tm_telemetry.Registry.create () in
        let g = Tm_telemetry.Blame_graph.install reg ~domains:2 in
        let hot = Array.init 2 (fun _ -> Stm.tvar 0) in
        List.init 2 (fun d ->
            Domain.spawn (fun () ->
                Stm.Blame.set_self d;
                for _ = 1 to iters2 do
                  Stm.atomically (fun () ->
                      let a = Stm.read hot.(0) in
                      let b = Stm.read hot.(1) in
                      Stm.write hot.(0) (a + 1);
                      Stm.write hot.(1) (b + 1))
                done;
                Stm.Blame.set_self (-1)))
        |> List.iter Domain.join;
        Tm_telemetry.Blame_graph.uninstall ();
        ( List.assoc Stm.Blame.Stolen (Tm_telemetry.Blame_graph.cause_counts g),
          Tm_telemetry.Blame_graph.clock g ))
  in
  (* Steal windows are a few hundred ns wide, so one round can get
     unlucky; accumulate rounds until a steal shows (the TL2 zero is
     exact — no retry needed to trust it). *)
  let rec accumulate algo stolen clock rounds =
    let s, c = contend algo in
    let stolen = stolen + s and clock = clock + c in
    if stolen > 0 || rounds <= 1 then (stolen, clock)
    else accumulate algo stolen clock (rounds - 1)
  in
  let dstm_stolen, dstm_clock = accumulate Stm.Algo.Dstm 0 0 5 in
  let tl2_stolen, tl2_clock = contend Stm.Algo.Tl2 in
  Fmt.pr
    "  2 domains x %d contended increments: dstm %d stolen / %d ticks, tl2 \
     %d stolen / %d ticks@."
    iters2 dstm_stolen dstm_clock tl2_stolen tl2_clock;
  check "dstm attributes its steals (Stolen edges > 0)" ~paper:true
    ~measured:(dstm_stolen > 0);
  check "tl2 shows no Stolen edges (nothing to steal)" ~paper:true
    ~measured:(tl2_stolen = 0);
  let out =
    Option.value ~default:"BENCH_blame.json"
      (Sys.getenv_opt "TM_BENCH_BLAME_OUT")
  in
  let oc = open_out out in
  output_string oc
    (Fmt.str
       "{\"experiment\":\"P10\",\"claim\":\"blame seam free when disarmed, \
        truthful when armed\",\"iters\":%d,\"seam\":{\"baseline_s\":%.4f,\
        \"armed_s\":%.4f,\"uninstalled_s\":%.4f,\"events_per_trial\":%d,\
        \"armed_ns_per_event\":%.1f,\"disarmed_ns_per_event\":%.1f},\
        \"separation\":{\"iters_per_domain\":%d,\"dstm_stolen\":%d,\
        \"tl2_stolen\":%d,\"holds\":%b}}\n"
       iters t_off t_armed t_disarmed events_per_trial armed_ns_per_event
       disarmed_ns_per_event iters2 dstm_stolen tl2_stolen
       (dstm_stolen > 0 && tl2_stolen = 0));
  close_out oc;
  Fmt.pr "    blame numbers written to %s@." out

(* P11: the static analyzer as a gate — tmstatic must find a clean
   checkout clean (zero findings over the whole tree), run in
   interactive time (parsing and checking every scanned file well
   within a CI-friendly bound), and be deterministic (two runs produce
   byte-identical findings JSON).  See EXPERIMENTS.md §P11. *)

let p11_static_analysis () =
  let module Sc = Tm_staticcheck.Checker in
  let module F = Tm_analysis.Finding in
  section "P11" "tmstatic: whole-tree static checks, runtime, determinism";
  match Sc.find_root () with
  | None ->
      check "repo root found from the bench cwd" ~paper:true ~measured:false
  | Some root ->
      let run_once () =
        let t0 = Unix.gettimeofday () in
        let r = Sc.run ~root () in
        (Unix.gettimeofday () -. t0, r)
      in
      ignore (run_once ()) (* warm-up *);
      let t1, r1 = run_once () in
      let t2, r2 = run_once () in
      let t_best = min t1 t2 in
      (match (r1, r2) with
      | Ok a, Ok b ->
          let ja = F.list_to_json a.Sc.findings
          and jb = F.list_to_json b.Sc.findings in
          let errors = List.length (List.filter F.is_error a.Sc.findings) in
          Fmt.pr
            "  %d files scanned in %.3fs (best of 2), %d finding(s), %d \
             error(s)@."
            a.Sc.files_scanned t_best
            (List.length a.Sc.findings)
            errors;
          List.iter (fun f -> Fmt.pr "    %a@." F.pp f) a.Sc.findings;
          check "clean tree has zero error findings" ~paper:true
            ~measured:(errors = 0);
          check "whole-tree check runs in interactive time (< 5 s)"
            ~paper:true ~measured:(t_best < 5.0);
          check "two runs produce byte-identical findings JSON" ~paper:true
            ~measured:(ja = jb);
          check "the scan covers a real tree (>= 10 files)" ~paper:true
            ~measured:(a.Sc.files_scanned >= 10);
          let out =
            Option.value ~default:"BENCH_static.json"
              (Sys.getenv_opt "TM_BENCH_STATIC_OUT")
          in
          let oc = open_out out in
          output_string oc
            (Fmt.str
               "{\"experiment\":\"P11\",\"claim\":\"tmstatic gates the seam \
                discipline: clean tree, interactive runtime, deterministic \
                output\",\"files_scanned\":%d,\"runtime_s\":%.3f,\
                \"findings\":%d,\"errors\":%d,\"deterministic\":%b}\n"
               a.Sc.files_scanned t_best
               (List.length a.Sc.findings)
               errors (ja = jb));
          close_out oc;
          Fmt.pr "    static numbers written to %s@." out
      | Error msg, _ | _, Error msg ->
          Fmt.pr "  static run failed: %s@." msg;
          check "static analyzer runs over the checkout" ~paper:true
            ~measured:false)

(* ------------------------------------------------------------------ *)
(* P12: the serving path.  Four gates: (a) the canonical serve document
   is byte-deterministic across runs; (b) a single-domain run conforms
   to the sequential-map specification exactly (store contents equal to
   folding [Store.spec_op] over the admitted stream); (c) hot-stripe
   flat-combining beats naive one-put-per-transaction commits on
   conflict work (aborts saved) at the top of the domain ladder —
   hardware-gated at 4 cores, since below that the hot stripe produces
   no combining pressure; (d) crash-holding-locks against the serving
   path still
   yields the per-algorithm Figure-2 verdicts.  The full ladder
   (batching on/off x domains) goes to BENCH_serve.json
   ([TM_BENCH_SERVE_OUT] overrides the path). *)

let p12_serve () =
  let module Stm = Tm_stm.Stm in
  let module Store = Tm_serve.Store in
  let module Workload = Tm_serve.Workload in
  let module Server = Tm_serve.Server in
  section "P12" "tmserve: determinism, spec conformance, batching, chaos";
  let mk ?(algo = Stm.Algo.Tl2) ~batching ~domains () =
    (* Few keys and stripes concentrate the Zipf head onto genuinely
       hot stripes — the regime combining exists for. *)
    Server.config ~algo ~clients:20_000 ~ops:4 ~keys:64 ~stripes:4 ~batching
      ~profile:Workload.Write_heavy ~seed:42 ~domains ()
  in
  (* (a) Determinism. *)
  let cfg0 = mk ~batching:true ~domains:4 () in
  let j1 = Server.to_json (Server.run cfg0)
  and j2 = Server.to_json (Server.run cfg0) in
  check "canonical serve document is byte-deterministic" ~paper:true
    ~measured:(String.equal j1 j2);
  (* (b) Sequential-spec conformance: replay one domain's admitted
     stream both through the store and through the plain-array spec. *)
  let conforms =
    let cfg =
      Server.config ~clients:5_000 ~ops:4 ~keys:64 ~stripes:4
        ~batching:false ~profile:Workload.Mixed ~seed:7 ~domains:1 ()
    in
    let wl = Server.workload cfg in
    Stm.with_algo Stm.Algo.Tl2 (fun () ->
        let st = Store.create ~stripes:4 ~keys:64 () in
        let model = Array.make 64 0 in
        Server.iter_requests cfg wl ~domain:0
          ~f:(fun ~client:_ ~index:_ req ~admitted ->
            if admitted then begin
              let ops =
                match req with
                | Workload.Single op -> [ op ]
                | Workload.Txn ops -> ops
              in
              let got = Store.multi st ops in
              let want = List.map (Store.spec_op model) ops in
              assert (got = want)
            end);
        Store.dump st = model)
  in
  check "single-domain serve conforms to the sequential-map spec"
    ~paper:true ~measured:conforms;
  (* (c) Batching ladder, under both the coarse serializer and TL2.
     Both full ladders (batching on/off x domains) go to the trajectory
     file; the hardware-gated verdict is below. *)
  let ladder = [ 1; 2; 4 ] in
  let run_one ~algo ~batching ~domains =
    let cfg = mk ~algo ~batching ~domains () in
    let o = Server.run cfg in
    check
      (Fmt.str "%s x%d %s: journal/conservation invariants"
         (Stm.Algo.name algo) domains
         (if batching then "batched" else "naive"))
      ~paper:true
      ~measured:(o.Server.s_journal_ok && o.Server.s_conserved);
    o
  in
  let runs =
    List.concat_map
      (fun algo ->
        List.concat_map
          (fun domains ->
            List.map
              (fun batching ->
                (algo, domains, batching, run_one ~algo ~batching ~domains))
              [ false; true ])
          ladder)
      [ Stm.Algo.Global_lock; Stm.Algo.Tl2 ]
  in
  let kadm o = float_of_int o.Server.s_admitted /. o.Server.s_wall /. 1000. in
  Fmt.pr "    %-12s %-8s %-8s %10s %10s %10s %8s %12s@." "algo" "domains"
    "batching" "admitted" "commits" "aborts" "flushes" "kadm/s";
  List.iter
    (fun (algo, domains, batching, o) ->
      Fmt.pr "    %-12s %-8d %-8b %10d %10d %10d %8d %12.0f@."
        (Stm.Algo.name algo) domains batching o.Server.s_admitted
        o.Server.s_commits o.Server.s_aborts o.Server.s_flushes (kadm o))
    runs;
  let at ~algo ~batching ~domains =
    let _, _, _, o =
      List.find
        (fun (a, d, b, _) -> a = algo && d = domains && b = batching)
        runs
    in
    o
  in
  (* "Beats naive" is measured in wasted work, the same currency as the
     P9 separation: combining routes every put on a stripe through one
     committer, so the put-put conflict aborts that naive commits pay
     under contention vanish structurally.  Wall throughput is recorded
     alongside but not gated — on shared or overcommitted runners it
     measures the scheduler, not the protocol. *)
  let peak = List.fold_left max 1 ladder in
  let batched = at ~algo:Stm.Algo.Tl2 ~batching:true ~domains:peak
  and naive = at ~algo:Stm.Algo.Tl2 ~batching:false ~domains:peak in
  let batching_holds = batched.Server.s_aborts <= naive.Server.s_aborts in
  let cores = Domain.recommended_domain_count () in
  (* (d) Chaos against the serving path. *)
  let chaos_ok algo =
    match
      Tm_chaos.Plan.make ~algo ~scenario:"crash-holding-locks" ~seed:42
        ~domains:4 ()
    with
    | Error _ -> false
    | Ok plan ->
        let cfg =
          Server.config ~algo ~clients:64 ~ops:4 ~keys:64 ~stripes:4
            ~profile:Workload.Write_heavy ~seed:42 ~domains:4 ()
        in
        (Server.chaos_run plan cfg).Server.k_ok
  in
  let chaos = List.map (fun a -> (a, chaos_ok a)) Stm.Algo.all in
  List.iter
    (fun (algo, ok) ->
      check
        (Fmt.str "crash-holding-locks verdicts hold on the serving path (%s)"
           (Stm.Algo.name algo))
        ~paper:true ~measured:ok)
    chaos;
  let out =
    Option.value ~default:"BENCH_serve.json"
      (Sys.getenv_opt "TM_BENCH_SERVE_OUT")
  in
  let oc = open_out out in
  let json =
    Fmt.str
      "{\"experiment\":\"P12\",\"claim\":\"hot-stripe flat-combining beats \
       naive per-put commits on conflict work under a Zipfian write-heavy \
       load\",\
       \"cores\":%d,\"profile\":\"write-heavy\",\"clients\":20000,\
       \"ops_per_client\":4,\"keys\":64,\"stripes\":4,\"seed\":42,\
       \"ladder\":[%s],\"runs\":[%s],\"determinism\":{\"holds\":%b},\
       \"spec_conformance\":{\"holds\":%b},\"batching\":{\
       \"algo\":\"tl2\",\"at_domains\":%d,\"batched_aborts\":%d,\
       \"naive_aborts\":%d,\
       \"batched_kadm_s\":%.1f,\"naive_kadm_s\":%.1f,\"holds\":%b},\
       \"chaos\":[%s]}"
      cores
      (String.concat "," (List.map string_of_int ladder))
      (String.concat ","
         (List.map
            (fun (algo, domains, batching, o) ->
              Fmt.str
                "{\"algo\":%S,\"domains\":%d,\"batching\":%b,\"requests\":%d,\
                 \"admitted\":%d,\"shed\":%d,\"batched_puts\":%d,\
                 \"wall_s\":%.4f,\"kadm_per_s\":%.1f,\"commits\":%d,\
                 \"aborts\":%d,\"flushes\":%d}"
                (Stm.Algo.name algo) domains batching o.Server.s_requests
                o.Server.s_admitted o.Server.s_shed o.Server.s_batched
                o.Server.s_wall (kadm o) o.Server.s_commits o.Server.s_aborts
                o.Server.s_flushes)
            runs))
      (String.equal j1 j2) conforms peak batched.Server.s_aborts
      naive.Server.s_aborts (kadm batched) (kadm naive) batching_holds
      (String.concat ","
         (List.map
            (fun (algo, ok) ->
              Fmt.str "{\"algo\":%S,\"ok\":%b}" (Stm.Algo.name algo) ok)
            chaos))
  in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Fmt.pr "    trajectory written to %s@." out;
  if cores >= 4 then
    check
      (Fmt.str
         "flat-combining beats naive on conflict work at %d domains \
          (%d vs %d aborts)"
         peak batched.Server.s_aborts naive.Server.s_aborts)
      ~paper:true ~measured:batching_holds
  else
    Fmt.pr
      "    only %d core(s) available: the hot stripe cannot produce \
       combining pressure here;@.    skipping the batching check (see \
       EXPERIMENTS.md, P12)@."
      cores

(* ------------------------------------------------------------------ *)

(* P13: open-loop load observability.  Three claims.  (a) The canonical
   loadcurve document is a pure function of its plan (byte-identical
   across runs; the CLI gate additionally compares across --domains).
   (b) Coordinated omission: against a server stalled by a crash holding
   commit locks, the closed-loop p99 (completed samples only) freezes
   while the open-loop p99 (censored in-flight arrivals folded in) grows
   monotonically with the stall — the exact blindness the recorder
   exists to remove.  (c) On >= 4 cores, the measured knee of the
   global-lock serializer does not exceed tl2's on the conflict-heavy
   profile.  The trajectory goes to BENCH_loadcurve.json
   ([TM_BENCH_LOADCURVE_OUT] overrides the path). *)

let p13_loadcurve () =
  let module Stm = Tm_stm.Stm in
  let module Workload = Tm_serve.Workload in
  let module Server = Tm_serve.Server in
  let module Lc = Tm_serve.Loadcurve in
  let module Lrec = Tm_telemetry.Latency_recorder in
  section "P13" "open-loop loadcurve: determinism, coordinated omission, knee";
  let cores = Domain.recommended_domain_count () in
  let ladder =
    [ 5_000.; 10_000.; 20_000.; 40_000.; 80_000.; 160_000.; 320_000. ]
  in
  let cfg =
    Server.config ~clients:4_000 ~ops:2 ~keys:64
      ~profile:Workload.Mixed ~seed:42 ~domains:1 ()
  in
  (* (a) Determinism of the canonical model. *)
  let curve = Lc.run ~kind:Tm_serve.Arrival.Poisson ~ladder cfg in
  let j1 = Lc.to_json curve
  and j2 = Lc.to_json (Lc.run ~kind:Tm_serve.Arrival.Poisson ~ladder cfg) in
  let deterministic = String.equal j1 j2 in
  check "canonical loadcurve document is byte-deterministic" ~paper:true
    ~measured:deterministic;
  let model_knee = Lc.knee (Lc.curve_xy curve) in
  check "model knee lies inside the swept ladder" ~paper:true
    ~measured:(model_knee > List.hd ladder
              && model_knee < List.nth ladder (List.length ladder - 1));
  (* (b) The coordinated-omission gate: strand the serving path under a
     crash that holds the global serializer, then watch both p99s. *)
  let co_samples =
    match
      Tm_chaos.Plan.make ~algo:Stm.Algo.Global_lock
        ~scenario:"crash-holding-locks" ~seed:42 ~domains:4 ()
    with
    | Error _ -> []
    | Ok plan ->
        let ccfg =
          Server.config ~algo:Stm.Algo.Global_lock ~clients:64 ~ops:4
            ~keys:64 ~stripes:4 ~profile:Workload.Write_heavy ~seed:42
            ~domains:4 ()
        in
        Server.with_chaos_session ~latency:true plan ccfg (fun ses ->
            let r = Option.get (Server.session_latency ses) in
            (* Crash onset is a few hundred ops in (microseconds); after
               the warmup the whole peer set is stranded. *)
            Unix.sleepf 0.08;
            List.map
              (fun _ ->
                let now = Lrec.now_ns () in
                let s =
                  ( Lrec.open_quantile r ~now 0.99,
                    Lrec.closed_quantile r 0.99,
                    Lrec.oldest_age r ~now )
                in
                Unix.sleepf 0.06;
                s)
              [ 0; 1; 2 ])
  in
  let co_open = List.map (fun (o, _, _) -> o) co_samples
  and co_closed = List.map (fun (_, c, _) -> c) co_samples
  and co_ages = List.map (fun (_, _, a) -> a) co_samples in
  let open_grows =
    match co_open with [ o1; o2; o3 ] -> o1 < o2 && o2 < o3 | _ -> false
  in
  let closed_flat =
    match co_closed with [ c1; _; c3 ] -> c1 = c3 | _ -> false
  in
  let ages_grow =
    match co_ages with [ a1; a2; a3 ] -> a1 < a2 && a2 < a3 | _ -> false
  in
  check "stalled server: open-loop p99 grows monotonically" ~paper:true
    ~measured:open_grows;
  check "stalled server: closed-loop p99 stays flat (the blindness)"
    ~paper:true ~measured:closed_flat;
  check "stalled server: oldest in-flight age grows monotonically"
    ~paper:true ~measured:ages_grow;
  (* (c) Measured knees, hardware-gated: on one oversubscribed core the
     spin-paced executors measure the OS scheduler, not the server. *)
  let mladder = [ 25_000.; 50_000.; 100_000.; 200_000.; 400_000. ] in
  let measured_ran = cores >= 4 in
  let knee_of algo =
    let mcfg =
      Server.config ~algo ~clients:4_000 ~ops:2 ~keys:64
        ~profile:Workload.Mixed ~seed:42 ~domains:4 ()
    in
    let ms = Lc.measure ~kind:Tm_serve.Arrival.Poisson ~ladder:mladder mcfg in
    List.iter (fun m -> Fmt.pr "    %s %a@." (Stm.Algo.name algo) Lc.pp_mpoint m) ms;
    Lc.knee (Lc.measure_xy ms)
  in
  let knee_gl, knee_tl2, knee_holds =
    if measured_ran then begin
      let kg = knee_of Stm.Algo.Global_lock in
      let kt = knee_of Stm.Algo.Tl2 in
      (kg, kt, kg <= kt)
    end
    else (0.0, 0.0, true)
  in
  if measured_ran then
    check
      (Fmt.str
         "global-lock knee (%.0f) does not exceed tl2 knee (%.0f) on the \
          conflict-heavy profile"
         knee_gl knee_tl2)
      ~paper:true ~measured:knee_holds
  else
    Fmt.pr
      "    only %d core(s) available: the measured knee would gauge the OS \
       scheduler;@.    skipping the knee check (see EXPERIMENTS.md, P13)@."
      cores;
  let out =
    Option.value ~default:"BENCH_loadcurve.json"
      (Sys.getenv_opt "TM_BENCH_LOADCURVE_OUT")
  in
  let oc = open_out out in
  let ints l = String.concat "," (List.map string_of_int l) in
  let json =
    Fmt.str
      "{\"experiment\":\"P13\",\"claim\":\"open-loop measurement exposes \
       the stalls closed-loop latency hides, and the loadcurve knee orders \
       global-lock at or below tl2 under conflict\",\
       \"cores\":%d,\"profile\":\"mixed\",\"clients\":4000,\
       \"ops_per_client\":2,\"seed\":42,\
       \"determinism\":{\"holds\":%b},\
       \"model\":{\"knee\":%.1f,\"rungs\":[%s]},\
       \"co\":{\"scenario\":\"crash-holding-locks\",\"algo\":\"global-lock\",\
       \"open_p99_ns\":[%s],\"closed_p99_ns\":[%s],\"oldest_age_ns\":[%s],\
       \"open_grows\":%b,\"closed_flat\":%b},\
       \"measured\":{\"ran\":%b,\"ladder\":[%s],\"knee_global_lock\":%.1f,\
       \"knee_tl2\":%.1f,\"holds\":%b}}"
      cores deterministic model_knee
      (String.concat ","
         (List.map
            (fun (p : Lc.point) ->
              Fmt.str
                "{\"rate\":%.1f,\"achieved\":%.1f,\"shed_fraction\":%.6f,\
                 \"sojourn_p99_ns\":%d}"
                p.Lc.p_rate p.Lc.p_achieved (Lc.shed_fraction p)
                p.Lc.p_sojourn.Lc.q99)
            curve.Lc.v_points))
      (ints co_open) (ints co_closed) (ints co_ages) open_grows closed_flat
      measured_ran
      (String.concat "," (List.map (Fmt.str "%.0f") mladder))
      knee_gl knee_tl2 knee_holds
  in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Fmt.pr "    trajectory written to %s@." out

(* ------------------------------------------------------------------ *)

(* Every section of the harness, in run order, keyed for the
   [TM_BENCH_SECTIONS] filter: a comma-separated list of keys runs just
   those sections (e.g. TM_BENCH_SECTIONS=p9 in the CI bench job);
   unset or empty runs everything. *)
let bench_sections : (string * (unit -> unit)) list =
  [
    ("f1", f1);
    ("f2", f2);
    ("f3f4f8", f3_f4_f8);
    ("f5f14", liveness_figures);
    ("f15", f15);
    ("f16", f16);
    ("t1", t1);
    ("t2", t2);
    ("t3", t3);
    ("z1", z1);
    ("z2", z2);
    ("mv", mv);
    ("fw", fw);
    ("fw2", fw2);
    ("fw3", fw3);
    ("oq", oq);
    ("p2a", ablation);
    ("p2c", scheduler_ablation);
    ("p2d", abort_rate_ablation);
    ("p2b", real_stm);
    ("p3", p3_scaling);
    ("p4", p4_parallel_sweep);
    ("p5", p5_trace_overhead);
    ("p6", p6_analysis);
    ("p7", p7_chaos_overhead);
    ("p8", p8_telemetry_overhead);
    ("p9", p9_zoo_separation);
    ("p10", p10_blame_overhead);
    ("p11", p11_static_analysis);
    ("p12", p12_serve);
    ("p13", p13_loadcurve);
    ("bechamel", bechamel_benches);
  ]

let () =
  Fmt.pr
    "Reproduction harness: On the Liveness of Transactional Memory (PODC \
     2012)@.";
  let enabled =
    match Sys.getenv_opt "TM_BENCH_SECTIONS" with
    | None | Some "" -> None
    | Some s ->
        let keys =
          String.split_on_char ',' s
          |> List.map String.trim
          |> List.filter (fun k -> k <> "")
        in
        List.iter
          (fun k ->
            if not (List.mem_assoc k bench_sections) then begin
              Fmt.epr "unknown bench section %S (try: %s)@." k
                (String.concat ", " (List.map fst bench_sections));
              exit 2
            end)
          keys;
        Some keys
  in
  (match enabled with
  | None -> ()
  | Some keys -> Fmt.pr "(sections filtered: %s)@." (String.concat ", " keys));
  List.iter
    (fun (key, run) ->
      match enabled with
      | None -> run ()
      | Some keys -> if List.mem key keys then run ())
    bench_sections;
  Fmt.pr "@.=== SUMMARY ===@.";
  if !failures = 0 then Fmt.pr "all paper-vs-measured checks passed@."
  else Fmt.pr "%d MISMATCHES@." !failures;
  exit (if !failures = 0 then 0 else 1)
