(* The scrape loop: update the liveness gauge, freeze the registry,
   feed every consumer.  Deterministic callers (the simulator, the
   sweep) drive [tick ~ts] themselves on the step clock; [run_live]
   is the wall-clock loop for live workloads. *)

type consumer = Registry.snapshot -> unit

type t = {
  reg : Registry.t;
  clock : unit -> int;
  liveness : Liveness_gauge.t option;
  consumers : consumer list;
  mutable last : Registry.snapshot option;
}

let create ?liveness ?(consumers = []) ?clock reg =
  let clock =
    match clock with
    | Some c -> c
    | None ->
        (* wall-clock milliseconds since sampler creation *)
        let t0 = Unix.gettimeofday () in
        fun () -> int_of_float ((Unix.gettimeofday () -. t0) *. 1e3)
  in
  { reg; clock; liveness; consumers; last = None }

let tick ?ts t =
  let ts = match ts with Some ts -> ts | None -> t.clock () in
  (match t.liveness with Some lg -> ignore (Liveness_gauge.update lg) | None -> ());
  let snap = Registry.scrape t.reg ~ts in
  t.last <- Some snap;
  List.iter (fun f -> f snap) t.consumers;
  snap

let last t = t.last

let run_live ?(stop = fun () -> false) t ~period ~frames ~on_frame =
  let frame = ref 1 in
  while !frame <= frames && not (stop ()) do
    Unix.sleepf period;
    on_frame !frame (tick t);
    incr frame
  done
