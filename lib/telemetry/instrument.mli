(** Cheap, contention-free instruments.

    The write paths are wait-free per shard and allocate nothing:
    counters and histograms are sharded over domains (each writer RMWs
    the atomics of the shard picked from its domain id), so concurrent
    domains do not serialize on one cache line; reading an instrument
    sums its shards.  Shard atomics are kept at least a cache line apart
    by stride-allocating the cell array (the OCaml 5 major heap does not
    move blocks, so the spacing is stable).

    A single-writer instrument (e.g. a per-domain counter the owning
    domain alone increments) should use [~shards:1]: one cell, and
    reading it is one atomic load. *)

val default_shards : int
(** 8. Shard counts are rounded up to a power of two. *)

(** {2 Counters} *)

type counter
(** A monotone sharded counter. *)

val counter : ?shards:int -> unit -> counter
val incr : counter -> unit
val add : counter -> int -> unit

val value : counter -> int
(** Sum over shards.  Not a linearizable snapshot of concurrent
    increments, but never under-reads a quiesced counter and is always
    monotone for monotone updates. *)

(** {2 Gauges} *)

type gauge

val gauge : ?init:int -> unit -> gauge
val set_gauge : gauge -> int -> unit
val gauge_value : gauge -> int

(** {2 Histograms}

    Log2-bucketed, same bucket rule as {!Tm_sim.Metrics}: bucket 0
    counts value 0 (and negatives), bucket [k >= 1] counts
    [\[2^(k-1), 2^k)], the last bucket overflows.  {!hist_buckets}
    buckets cover nanosecond latencies up to about one second. *)

val hist_buckets : int
(** 32. *)

val bucket_of : int -> int
(** The bucket index a value lands in. *)

val bucket_upper : int -> int
(** Inclusive upper bound of a bucket: 0 for bucket 0, [2^k - 1] for
    bucket [k], [max_int] for the overflow bucket. *)

type histogram

val histogram : ?shards:int -> unit -> histogram
val observe : histogram -> int -> unit

val absorb :
  histogram -> buckets:int array -> sum:int -> max_sample:int -> unit
(** Add a pre-bucketed histogram (same log2 bucket rule, possibly fewer
    buckets — e.g. a {!Tm_sim.Metrics.histogram}) into this one.  The
    source's last bucket is an overflow bucket: its samples are only
    known to exceed the source's range, so they are preserved into this
    histogram's own overflow bucket (never folded into the same-index
    range bucket, which would under-read them). *)

type hsnap = {
  buckets : int array;  (** [hist_buckets] summed bucket counts *)
  count : int;
  sum : int;
  max_sample : int;
}
(** A point-in-time summation of a histogram's shards. *)

val hist_snapshot : histogram -> hsnap

val quantile : hsnap -> float -> int
(** [quantile snap q] for [q] in [0, 1]: the inclusive upper bound of
    the bucket holding the rank-[ceil (q * count)] sample, clamped to
    [max_sample] (so quantiles are monotone in [q] and never exceed the
    maximum).  0 for an empty snapshot. *)

val hsnap_mean : hsnap -> float

val pp_hsnap : Format.formatter -> hsnap -> unit
(** One line: p50/p90/p99/max, count and mean; ["(empty)"] when the
    snapshot holds no samples. *)

(** {2 High-resolution histograms}

    Log2 buckets bound the relative error of a reported quantile by a
    factor of 2 — too coarse for the p99.9/p99.99 tail quantiles the
    open-loop latency recorder gates on.  A hires histogram splits
    every log2 decade into {!hires_sub} linear sub-buckets (relative
    error at most [1/hires_sub] = 12.5%): values below {!hires_sub}
    are exact, values at or above [2^hires_log_max] (~18 minutes in
    nanoseconds) overflow.  Same wait-free sharded write path as the
    log2 histograms. *)

val hires_sub : int
(** 8 linear sub-buckets per log2 decade. *)

val hires_log_max : int
(** 40: the first overflowing power of two. *)

val hires_buckets : int
(** 305. *)

val hires_bucket_of : int -> int
(** The hires bucket index a value lands in. *)

val hires_bucket_upper : int -> int
(** Inclusive upper bound of a hires bucket: 0 for bucket 0, [max_int]
    for the overflow bucket; monotone in the index. *)

type hires

val hires : ?shards:int -> unit -> hires
val hires_observe : hires -> int -> unit

val hires_snapshot : hires -> hsnap
(** Same snapshot record as the log2 histograms, with
    [Array.length buckets = hires_buckets]; use {!hires_quantile}
    (never {!quantile}) on it. *)

val hires_quantile : hsnap -> float -> int
(** Like {!quantile} under the hires bucket bounds: the inclusive upper
    bound of the bucket holding the rank-[ceil (q * count)] sample,
    clamped to [max_sample]. *)

val pp_hires_snap : Format.formatter -> hsnap -> unit
(** One line: p50/p90/p99/p99.9/p99.99/max, count and mean. *)
