(** Cheap, contention-free instruments.

    The write paths are wait-free per shard and allocate nothing:
    counters and histograms are sharded over domains (each writer RMWs
    the atomics of the shard picked from its domain id), so concurrent
    domains do not serialize on one cache line; reading an instrument
    sums its shards.  Shard atomics are kept at least a cache line apart
    by stride-allocating the cell array (the OCaml 5 major heap does not
    move blocks, so the spacing is stable).

    A single-writer instrument (e.g. a per-domain counter the owning
    domain alone increments) should use [~shards:1]: one cell, and
    reading it is one atomic load. *)

val default_shards : int
(** 8. Shard counts are rounded up to a power of two. *)

(** {2 Counters} *)

type counter
(** A monotone sharded counter. *)

val counter : ?shards:int -> unit -> counter
val incr : counter -> unit
val add : counter -> int -> unit

val value : counter -> int
(** Sum over shards.  Not a linearizable snapshot of concurrent
    increments, but never under-reads a quiesced counter and is always
    monotone for monotone updates. *)

(** {2 Gauges} *)

type gauge

val gauge : ?init:int -> unit -> gauge
val set_gauge : gauge -> int -> unit
val gauge_value : gauge -> int

(** {2 Histograms}

    Log2-bucketed, same bucket rule as {!Tm_sim.Metrics}: bucket 0
    counts value 0 (and negatives), bucket [k >= 1] counts
    [\[2^(k-1), 2^k)], the last bucket overflows.  {!hist_buckets}
    buckets cover nanosecond latencies up to about one second. *)

val hist_buckets : int
(** 32. *)

val bucket_of : int -> int
(** The bucket index a value lands in. *)

val bucket_upper : int -> int
(** Inclusive upper bound of a bucket: 0 for bucket 0, [2^k - 1] for
    bucket [k], [max_int] for the overflow bucket. *)

type histogram

val histogram : ?shards:int -> unit -> histogram
val observe : histogram -> int -> unit

val absorb :
  histogram -> buckets:int array -> sum:int -> max_sample:int -> unit
(** Add a pre-bucketed histogram (same log2 bucket rule, possibly fewer
    buckets — e.g. a {!Tm_sim.Metrics.histogram}) into this one.  The
    source's overflow bucket is folded into the bucket of the same
    index, which under-reads only values that overflowed the (shorter)
    source histogram. *)

type hsnap = {
  buckets : int array;  (** [hist_buckets] summed bucket counts *)
  count : int;
  sum : int;
  max_sample : int;
}
(** A point-in-time summation of a histogram's shards. *)

val hist_snapshot : histogram -> hsnap

val quantile : hsnap -> float -> int
(** [quantile snap q] for [q] in [0, 1]: the inclusive upper bound of
    the bucket holding the rank-[ceil (q * count)] sample, clamped to
    [max_sample] (so quantiles are monotone in [q] and never exceed the
    maximum).  0 for an empty snapshot. *)

val hsnap_mean : hsnap -> float

val pp_hsnap : Format.formatter -> hsnap -> unit
(** One line: p50/p90/p99/max, count and mean; ["(empty)"] when the
    snapshot holds no samples. *)
