(** A coordinated-omission-free latency recorder.

    Measures request sojourn time from the *scheduled arrival* (the
    open-loop clock), not from dispatch, splitting queueing delay from
    service time; and keeps a per-domain in-flight slot so censored
    requests — dispatched but not completed, e.g. stuck behind a crashed
    lock holder — are visible to scrapes.  {!open_quantile} folds each
    in-flight request of age [A] back in as the [A / interval] stalled
    arrivals it stands for (synthetic samples [A, A - i, A - 2i, ...]),
    the classic coordinated-omission correction: under a stall the
    open-loop p99 grows with the stall while the closed-loop p99
    (completed samples only) stays flat.

    The write paths ({!mark}, {!complete}, {!abandon}) are wait-free and
    allocation-free; slots are single-writer (one per domain). *)

type t

val now_ns : unit -> int
(** Monotonic wall clock in nanoseconds (never used by canonical
    artifacts — measurement only). *)

val create :
  ?registry:Registry.t ->
  ?metric:string ->
  ?interval_ns:int ->
  domains:int ->
  unit ->
  t
(** [create ~domains ()] makes a recorder with one in-flight slot per
    domain.  [interval_ns] (default 1ms) is the expected inter-arrival
    time used by the coordinated-omission correction.  With [?registry],
    registers under the [metric] prefix (default ["tm_latency"]): hires
    histograms [<m>_queueing_ns], [<m>_service_ns], [<m>_sojourn_ns];
    per-domain gauges [<m>_oldest_inflight_age_ns{domain="d"}]; gauges
    [<m>_open_p99_ns] and [<m>_closed_p99_ns] — the gauges are refreshed
    by {!publish}, typically right before a scrape.
    @raise Invalid_argument if [domains < 1] or [interval_ns < 1]. *)

val domains : t -> int
val interval_ns : t -> int

(** {2 Hot path} *)

val mark : t -> int -> sched:int -> unit
(** [mark t d ~sched] records that domain [d] is now serving the request
    scheduled to arrive at [sched] ns. *)

val complete : t -> int -> start:int -> finish:int -> unit
(** [complete t d ~start ~finish] observes queueing ([start - sched]),
    service ([finish - start]) and sojourn ([finish - sched]) for the
    marked request, then clears the slot.  If no request is marked the
    sojourn degrades to service time ([sched := start]). *)

val abandon : t -> int -> unit
(** Clear domain [d]'s slot without observing (e.g. worker shutdown
    between requests). *)

(** {2 Reading} *)

val ages : t -> now:int -> int array
(** Per-domain age of the in-flight request ([0] when idle): the
    starvation gauge. *)

val oldest_age : t -> now:int -> int

val queueing_snapshot : t -> Instrument.hsnap
val service_snapshot : t -> Instrument.hsnap
val sojourn_snapshot : t -> Instrument.hsnap
(** Hires snapshots — read with {!Instrument.hires_quantile}. *)

val closed_quantile : t -> float -> int
(** Sojourn quantile over completed samples only (the closed-loop view a
    naive recorder reports). *)

val open_quantile : t -> now:int -> float -> int
(** Sojourn quantile with every in-flight request folded in under the
    coordinated-omission correction described above.  Monotone in the
    stall: a request stuck behind a dead lock holder drives this up
    every time it is read. *)

val publish : t -> now:int -> unit
(** Refresh the registry gauges (per-domain starvation ages, open/closed
    p99) from the current state.  No-op on the histogram samples, which
    scrape live.  Without a registry, a no-op. *)

val corroborate : ?floor_ns:int -> t -> now:int -> progressing:bool array -> bool
(** [corroborate t ~now ~progressing] cross-checks the recorder against
    an external progress verdict (e.g. {!Tm_liveness.Liveness_gauge}):
    every domain reported non-progressing must have an in-flight request
    older than [floor_ns] (default 0).  A domain the gauge calls stalled
    with an empty or fresh slot means the two monitors disagree.
    @raise Invalid_argument if [progressing] length differs from
    [domains]. *)

(** {2 Summaries} *)

type summary = {
  y_queueing : Instrument.hsnap;
  y_service : Instrument.hsnap;
  y_sojourn : Instrument.hsnap;
  y_open_p99 : int;
  y_closed_p99 : int;
  y_oldest_age : int;
}

val summary : t -> now:int -> summary
val pp_summary : Format.formatter -> summary -> unit
