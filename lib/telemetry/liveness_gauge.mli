(** The Figure-2 class of every domain, as a live metric.

    Each {!update} reads per-domain monotone counters through the
    domain's {!source}, deltas them against the previous update and
    classifies with {!Tm_liveness.Empirical.classify_counters} — the
    chaos watchdog's verdict math applied between consecutive scrapes.
    A domain whose commit counter stalls while its abort counter climbs
    flips to [starving] on the next update; one that stops producing
    operations entirely flips to [crashed].

    Two metrics per domain are registered at {!create}:
    - [<metric>_class{class=...,domain=...}] — a stateset over
      [crashed]/[parasitic]/[starving]/[progressing], exactly the
      classifier's taxonomy;
    - [<metric>_correct{domain=...}] — 1 iff the class is neither
      crashed nor parasitic: the paper's "correct" (Figure 2), which
      deliberately includes starving domains. *)

type source = {
  ops : unit -> int;
  trycs : unit -> int;
  commits : unit -> int;
  aborts : unit -> int;
}
(** Monotone counter readers for one domain. *)

val source :
  ops:(unit -> int) ->
  trycs:(unit -> int) ->
  commits:(unit -> int) ->
  aborts:(unit -> int) ->
  source

val of_counters :
  ops:Instrument.counter ->
  trycs:Instrument.counter ->
  commits:Instrument.counter ->
  aborts:Instrument.counter ->
  source

val states : string array
(** [[| "crashed"; "parasitic"; "starving"; "progressing" |]]. *)

val state_of_cls : Tm_liveness.Process_class.cls -> string
val correct_of_cls : Tm_liveness.Process_class.cls -> int

type t

val create :
  ?metric:string ->
  ?label:string ->
  ?ids:int array ->
  Registry.t ->
  sources:source array ->
  t
(** Registers the per-domain class stateset and correct gauge under
    [metric] (default ["tm_liveness"]); source [d] carries label
    [label="ids.(d)"] (defaults: label ["domain"], ids [0..n-1] — the
    simulator publisher uses [~label:"proc" ~ids:[|1..n|]]).  The
    initial class is [progressing] and the first {!update} classifies
    against all-zero counters. *)

val update : t -> Tm_liveness.Process_class.cls array
(** Read the sources, classify the deltas since the previous
    update/rebase, set the gauges; returns the classes (aliased, do not
    mutate). *)

val update_with : t -> Tm_liveness.Empirical.counters array -> Tm_liveness.Process_class.cls array
(** Like {!update} but with counters the caller already sampled — used
    when the exported classes must agree exactly with a verdict computed
    from the same samples. *)

val rebase : t -> unit
(** Reset the delta baseline to the sources' current values without
    classifying (e.g. after a warmup). *)

val rebase_with : t -> Tm_liveness.Empirical.counters array -> unit

val current : t -> Tm_liveness.Process_class.cls array
(** Classes from the most recent update (aliased). *)
