(* Exporters: OpenMetrics/Prometheus text exposition and JSON-lines
   time series.  Both render a frozen [Registry.snapshot], so output is
   deterministic whenever the scrape values are: registration order for
   metrics, sorted label keys, fixed escaping. *)

let escape_label b s =
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s

let add_labels b labels =
  match labels with
  | [] -> ()
  | labels ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b k;
          Buffer.add_string b "=\"";
          escape_label b v;
          Buffer.add_char b '"')
        labels;
      Buffer.add_char b '}'

let kind_label = function
  | Registry.Counter -> "counter"
  | Registry.Gauge | Registry.State -> "gauge"
  | Registry.Histogram -> "histogram"

(* The state metric's labels carry a placeholder (key, "") slot; expand
   it to (key, state). *)
let state_labels labels st =
  List.map (fun (k, v) -> if v = "" then (k, st) else (k, v)) labels

(* Cumulative [_bucket{le="..."}] lines plus [_sum]/[_count], shared by
   the log2 and hires histograms — only the bucket count and the
   upper-bound rule differ.  Empty hires buckets are skipped (their
   cumulative value equals the previous line's), keeping a 305-bucket
   exposition proportional to the populated decades; the log2 variant
   emits every bucket, as it always has.  Both stay within the strict
   parser's subset, so the round-trip and lax parsers need no change. *)
let add_hist_sample b ~name ~labels ~nbuckets ~upper ~skip_empty
    (h : Instrument.hsnap) =
  let cum = ref 0 in
  for k = 0 to nbuckets - 1 do
    let c = h.Instrument.buckets.(k) in
    cum := !cum + c;
    if (not skip_empty) || c > 0 || k = nbuckets - 1 then begin
      let le =
        if k = nbuckets - 1 then "+Inf" else string_of_int (upper k)
      in
      Buffer.add_string b name;
      Buffer.add_string b "_bucket";
      add_labels b (labels @ [ ("le", le) ]);
      Buffer.add_string b (Fmt.str " %d\n" !cum)
    end
  done;
  Buffer.add_string b
    (Fmt.str "%s_sum%s %d\n" name
       (let lb = Buffer.create 16 in
        add_labels lb labels;
        Buffer.contents lb)
       h.Instrument.sum);
  Buffer.add_string b
    (Fmt.str "%s_count%s %d\n" name
       (let lb = Buffer.create 16 in
        add_labels lb labels;
        Buffer.contents lb)
       h.Instrument.count)

let add_sample b (s : Registry.sample) =
  match s.Registry.s_value with
  | Registry.Num v ->
      Buffer.add_string b s.Registry.s_name;
      add_labels b s.Registry.s_labels;
      Buffer.add_string b (Fmt.str " %d\n" v)
  | Registry.State_of { states; current } ->
      Array.iteri
        (fun i st ->
          Buffer.add_string b s.Registry.s_name;
          add_labels b (state_labels s.Registry.s_labels st);
          Buffer.add_string b (if i = current then " 1\n" else " 0\n"))
        states
  | Registry.Hist h ->
      add_hist_sample b ~name:s.Registry.s_name ~labels:s.Registry.s_labels
        ~nbuckets:Instrument.hist_buckets ~upper:Instrument.bucket_upper
        ~skip_empty:false h
  | Registry.Hires h ->
      add_hist_sample b ~name:s.Registry.s_name ~labels:s.Registry.s_labels
        ~nbuckets:Instrument.hires_buckets
        ~upper:Instrument.hires_bucket_upper ~skip_empty:true h

let to_openmetrics (snap : Registry.snapshot) =
  let b = Buffer.create 4096 in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (s : Registry.sample) ->
      if not (Hashtbl.mem seen s.Registry.s_name) then begin
        Hashtbl.add seen s.Registry.s_name ();
        Buffer.add_string b
          (Fmt.str "# HELP %s %s\n" s.Registry.s_name s.Registry.s_help);
        Buffer.add_string b
          (Fmt.str "# TYPE %s %s\n" s.Registry.s_name
             (kind_label s.Registry.s_kind))
      end;
      add_sample b s)
    snap.Registry.samples;
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

(* ---- a minimal OpenMetrics parser (round-trip tests, greps) ---- *)

type series = {
  se_name : string;
  se_labels : (string * string) list;
  se_value : float;
}

let parse_labels s =
  (* "k=\"v\",k2=\"v2\"" with the writer's escaping *)
  let out = ref [] in
  let n = String.length s in
  let buf = Buffer.create 16 in
  let i = ref 0 in
  while !i < n do
    Buffer.clear buf;
    while !i < n && s.[!i] <> '=' do
      Buffer.add_char buf s.[!i];
      incr i
    done;
    let key = Buffer.contents buf in
    if !i + 1 >= n || s.[!i + 1] <> '"' then failwith "parse_labels: no value";
    i := !i + 2;
    Buffer.clear buf;
    let fin = ref false in
    while not !fin do
      if !i >= n then failwith "parse_labels: unterminated value"
      else if s.[!i] = '\\' && !i + 1 < n then begin
        (match s.[!i + 1] with
        | 'n' -> Buffer.add_char buf '\n'
        | c -> Buffer.add_char buf c);
        i := !i + 2
      end
      else if s.[!i] = '"' then begin
        fin := true;
        incr i;
        if !i < n && s.[!i] = ',' then incr i
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    out := (key, Buffer.contents buf) :: !out
  done;
  List.rev !out

let parse_line line =
  let name_end =
    match String.index_opt line '{' with
    | Some i -> i
    | None -> (
        match String.index_opt line ' ' with
        | Some i -> i
        | None -> String.length line)
  in
  let se_name = String.sub line 0 name_end in
  let rest = String.sub line name_end (String.length line - name_end) in
  let se_labels, vstr =
    if rest <> "" && rest.[0] = '{' then
      match String.rindex_opt rest '}' with
      | Some j ->
          ( parse_labels (String.sub rest 1 (j - 1)),
            String.trim
              (String.sub rest (j + 1) (String.length rest - j - 1)) )
      | None -> failwith "parse_openmetrics: unterminated labels"
    else ([], String.trim rest)
  in
  { se_name; se_labels; se_value = float_of_string vstr }

let parse_openmetrics text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None else Some (parse_line line))

(* The forgiving variant for foreign expositions: every line the strict
   subset does not cover becomes a diagnostic instead of an exception,
   so one exotic sample (exemplars, timestamps, summary types) cannot
   sink a whole scrape. *)
let parse_openmetrics_lax text =
  let series = ref [] and findings = ref [] in
  List.iteri
    (fun k line ->
      let t = String.trim line in
      if t = "" || t.[0] = '#' then ()
      else
        match parse_line t with
        | s -> series := s :: !series
        | exception (Failure m | Invalid_argument m) ->
            findings := Fmt.str "line %d: %S: %s" (k + 1) t m :: !findings)
    (String.split_on_char '\n' text);
  (List.rev !series, List.rev !findings)

(* ---- JSON lines ---- *)

let add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_json_labels b labels =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      add_json_string b k;
      Buffer.add_char b ':';
      add_json_string b v)
    labels;
  Buffer.add_char b '}'

let to_jsonl (snap : Registry.snapshot) =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Fmt.str "{\"ts\":%d,\"samples\":[" snap.Registry.ts);
  List.iteri
    (fun i (s : Registry.sample) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "{\"name\":";
      add_json_string b s.Registry.s_name;
      Buffer.add_string b ",\"labels\":";
      (match s.Registry.s_value with
      | Registry.Num v ->
          add_json_labels b s.Registry.s_labels;
          Buffer.add_string b (Fmt.str ",\"value\":%d" v)
      | Registry.State_of { states; current } ->
          (* drop the placeholder state-key slot; the state goes in its
             own field *)
          add_json_labels b
            (List.filter (fun (_, v) -> v <> "") s.Registry.s_labels);
          Buffer.add_string b ",\"state\":";
          add_json_string b states.(current)
      | Registry.Hist h | Registry.Hires h ->
          (* Hires buckets are sparse (305 slots); encode them as
             [index, count] pairs so a quiet scrape line stays short.
             The log2 variant keeps the dense array it always had. *)
          add_json_labels b s.Registry.s_labels;
          Buffer.add_string b
            (Fmt.str ",\"hist\":{\"count\":%d,\"sum\":%d,\"max\":%d,"
               h.Instrument.count h.Instrument.sum h.Instrument.max_sample);
          (match s.Registry.s_value with
          | Registry.Hires _ ->
              Buffer.add_string b "\"sparse\":[";
              let first = ref true in
              Array.iteri
                (fun k c ->
                  if c > 0 then begin
                    if not !first then Buffer.add_char b ',';
                    first := false;
                    Buffer.add_string b (Fmt.str "[%d,%d]" k c)
                  end)
                h.Instrument.buckets
          | _ ->
              Buffer.add_string b "\"buckets\":[";
              Array.iteri
                (fun k c ->
                  if k > 0 then Buffer.add_char b ',';
                  Buffer.add_string b (string_of_int c))
                h.Instrument.buckets);
          Buffer.add_string b "]}");
      Buffer.add_char b '}')
    snap.Registry.samples;
  Buffer.add_string b "]}";
  Buffer.contents b
