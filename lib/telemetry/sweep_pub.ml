(* Publishing sweep results into a registry.

   Results are published post-hoc, one scrape per run, in canonical
   grid order with the run index as timestamp — never live from the
   pool's worker domains, which would make the time series depend on
   scheduling.  Byte-identical output for every --jobs value follows
   from the sweep engine's own determinism guarantee (equal result
   lists in canonical order). *)

module Sweep = Tm_sim.Sweep
module Metrics = Tm_sim.Metrics

type t = {
  sampler : Sampler.t;
  runs : Instrument.counter;
  commits : Instrument.counter;
  aborts : Instrument.counter;
  invocations : Instrument.counter;
  defers : Instrument.counter;
  faults : Instrument.counter;
  starvations : Instrument.counter;
  events : Instrument.counter;
  steps : Instrument.counter;
  commit_latency : Instrument.histogram;
  retry_depth : Instrument.histogram;
}

let create ?(consumers = []) reg =
  let c name help = Registry.counter reg ~shards:1 ~help name in
  let h name help = Registry.histogram reg ~shards:1 ~help name in
  {
    sampler = Sampler.create ~consumers ~clock:(fun () -> 0) reg;
    runs = c "tm_sweep_runs_total" "Sweep runs published";
    commits = c "tm_sweep_commits_total" "Committed transactions, all runs";
    aborts = c "tm_sweep_aborts_total" "Aborted transactions, all runs";
    invocations = c "tm_sweep_invocations_total" "Invocations, all runs";
    defers = c "tm_sweep_defers_total" "Deferred polls, all runs";
    faults =
      c "tm_sweep_faults_total"
        "Processes looking crashed or parasitic (empirical window reading)";
    starvations =
      c "tm_sweep_starvations_total"
        "Processes looking starving (empirical window reading)";
    events = c "tm_sweep_events_total" "History events, all runs";
    steps = c "tm_sweep_steps_total" "Simulation steps, all runs";
    commit_latency =
      h "tm_sweep_commit_latency_events"
        "Commit latency in history events (merged over runs)";
    retry_depth =
      h "tm_sweep_retry_depth"
        "Consecutive aborts before each commit (merged over runs)";
  }

let absorb_hist h (mh : Metrics.histogram) =
  Instrument.absorb h ~buckets:mh.Metrics.buckets ~sum:mh.Metrics.sum
    ~max_sample:mh.Metrics.max_sample

let publish t ~index (r : Sweep.result) =
  let m = r.Sweep.r_metrics in
  Instrument.incr t.runs;
  Instrument.add t.commits m.Metrics.commits;
  Instrument.add t.aborts m.Metrics.aborts;
  Instrument.add t.invocations m.Metrics.invocations;
  Instrument.add t.defers m.Metrics.defers;
  Instrument.add t.faults m.Metrics.faults;
  Instrument.add t.starvations m.Metrics.starvations;
  Instrument.add t.events m.Metrics.events;
  Instrument.add t.steps m.Metrics.steps;
  absorb_hist t.commit_latency m.Metrics.commit_latency;
  absorb_hist t.retry_depth m.Metrics.retry_depth;
  Sampler.tick ~ts:index t.sampler

let publish_all t results =
  List.iteri (fun i r -> ignore (publish t ~index:i r)) results;
  Sampler.last t.sampler
