(* A coordinated-omission-free latency recorder.

   Closed-loop measurement — latency of completed requests, taken from
   dispatch — is blind to stalls: a server that freezes simply stops
   producing samples, and the recorded distribution stays rosy.  This
   recorder closes both holes:

   - sojourn time is measured from the request's *scheduled arrival*
     (the open-loop clock), not from dispatch, so queueing delay under
     overload is part of the sample, split out from service time;

   - every domain publishes its current in-flight request's scheduled
     arrival in a single-writer slot, so a scrape can see requests that
     have not completed.  The open-loop quantiles fold those censored
     requests in with the classic coordinated-omission correction: an
     in-flight request of age A stands in for the A/interval arrivals
     stalled behind it, contributing synthetic samples A, A - i, A - 2i
     ... — so a stalled server's open-loop p99 grows with the stall
     while its closed-loop p99 (completed samples only) stays flat.

   All three distributions live in hires histograms (linear sub-buckets
   per log2 decade), giving usable p99.9/p99.99 bounds. *)

let now_ns () = Int64.to_int (Monotonic_clock.now ())

(* In-flight slots are single-writer (the owning domain); [idle] marks
   an empty slot. *)
let idle = min_int

type t = {
  domains : int;
  interval : int;  (* expected inter-arrival, ns: the CO correction unit *)
  queueing : Instrument.hires;
  service : Instrument.hires;
  sojourn : Instrument.hires;
  inflight : int Atomic.t array;  (* sched ts of the current request *)
  age_gauges : Instrument.gauge array;  (* set by [publish] *)
  open_p99_gauge : Instrument.gauge option;
  closed_p99_gauge : Instrument.gauge option;
}

let create ?registry ?(metric = "tm_latency") ?(interval_ns = 1_000_000)
    ~domains () =
  if domains < 1 then invalid_arg "Latency_recorder.create: domains < 1";
  if interval_ns < 1 then
    invalid_arg "Latency_recorder.create: interval_ns < 1";
  let shards = domains in
  let hires name help =
    match registry with
    | Some reg -> Registry.hires reg ~shards ~help (metric ^ name)
    | None -> Instrument.hires ~shards ()
  in
  let queueing =
    hires "_queueing_ns" "Scheduled arrival to dispatch (open-loop)"
  in
  let service = hires "_service_ns" "Dispatch to completion" in
  let sojourn =
    hires "_sojourn_ns" "Scheduled arrival to completion (open-loop)"
  in
  let age_gauges =
    Array.init domains (fun d ->
        match registry with
        | Some reg ->
            Registry.gauge reg
              ~labels:[ ("domain", string_of_int d) ]
              ~help:
                "Age of the oldest in-flight request (starvation age; \
                 set at publish time)"
              (metric ^ "_oldest_inflight_age_ns")
        | None -> Instrument.gauge ())
  in
  let p99 name help =
    match registry with
    | Some reg -> Some (Registry.gauge reg ~help (metric ^ name))
    | None -> None
  in
  {
    domains;
    interval = interval_ns;
    queueing;
    service;
    sojourn;
    inflight = Array.init domains (fun _ -> Atomic.make idle);
    age_gauges;
    open_p99_gauge =
      p99 "_open_p99_ns"
        "Censored open-loop sojourn p99 (in-flight ages folded in)";
    closed_p99_gauge =
      p99 "_closed_p99_ns" "Completed-sample sojourn p99 (closed-loop)";
  }

let domains t = t.domains
let interval_ns t = t.interval

let mark t d ~sched = Atomic.set t.inflight.(d) sched
let abandon t d = Atomic.set t.inflight.(d) idle

let complete t d ~start ~finish =
  let sched = Atomic.get t.inflight.(d) in
  let sched = if sched = idle then start else sched in
  Instrument.hires_observe t.queueing (max 0 (start - sched));
  Instrument.hires_observe t.service (max 0 (finish - start));
  Instrument.hires_observe t.sojourn (max 0 (finish - sched));
  Atomic.set t.inflight.(d) idle

let inflight_age t ~now d =
  let sched = Atomic.get t.inflight.(d) in
  if sched = idle then 0 else max 0 (now - sched)

let ages t ~now = Array.init t.domains (inflight_age t ~now)
let oldest_age t ~now = Array.fold_left max 0 (ages t ~now)

let queueing_snapshot t = Instrument.hires_snapshot t.queueing
let service_snapshot t = Instrument.hires_snapshot t.service
let sojourn_snapshot t = Instrument.hires_snapshot t.sojourn

let closed_quantile t q =
  Instrument.hires_quantile (Instrument.hires_snapshot t.sojourn) q

(* Cap the synthetic samples one in-flight request can contribute, so a
   pathological (tiny interval, huge age) fold stays O(cap). *)
let co_cap = 1_000_000

let open_quantile t ~now q =
  let snap = Instrument.hires_snapshot t.sojourn in
  let buckets = Array.copy snap.Instrument.buckets in
  let count = ref snap.Instrument.count in
  let max_sample = ref snap.Instrument.max_sample in
  Array.iter
    (fun slot ->
      let sched = Atomic.get slot in
      if sched <> idle then begin
        let age = max 0 (now - sched) in
        if age > 0 then begin
          max_sample := max !max_sample age;
          let v = ref age and steps = ref 0 in
          while !v > 0 && !steps < co_cap do
            let k = Instrument.hires_bucket_of !v in
            buckets.(k) <- buckets.(k) + 1;
            incr count;
            incr steps;
            v := !v - t.interval
          done
        end
      end)
    t.inflight;
  Instrument.hires_quantile
    {
      Instrument.buckets;
      count = !count;
      sum = snap.Instrument.sum;
      max_sample = !max_sample;
    }
    q

let publish t ~now =
  Array.iteri
    (fun d g -> Instrument.set_gauge g (inflight_age t ~now d))
    t.age_gauges;
  Option.iter
    (fun g -> Instrument.set_gauge g (open_quantile t ~now 0.99))
    t.open_p99_gauge;
  Option.iter
    (fun g -> Instrument.set_gauge g (closed_quantile t 0.99))
    t.closed_p99_gauge

let corroborate ?(floor_ns = 0) t ~now ~progressing =
  if Array.length progressing <> t.domains then
    invalid_arg "Latency_recorder.corroborate: progressing length";
  let ok = ref true in
  Array.iteri
    (fun d prog ->
      if not prog then ok := !ok && inflight_age t ~now d > floor_ns)
    progressing;
  !ok

type summary = {
  y_queueing : Instrument.hsnap;
  y_service : Instrument.hsnap;
  y_sojourn : Instrument.hsnap;
  y_open_p99 : int;
  y_closed_p99 : int;
  y_oldest_age : int;
}

let summary t ~now =
  {
    y_queueing = queueing_snapshot t;
    y_service = service_snapshot t;
    y_sojourn = sojourn_snapshot t;
    y_open_p99 = open_quantile t ~now 0.99;
    y_closed_p99 = closed_quantile t 0.99;
    y_oldest_age = oldest_age t ~now;
  }

let pp_summary ppf y =
  Fmt.pf ppf
    "@[<v>open-loop: queueing %a@,open-loop: service  %a@,open-loop: \
     sojourn  %a@,open-loop: p99 %d ns censored vs %d ns closed-loop \
     (oldest in-flight %d ns)@]"
    Instrument.pp_hires_snap y.y_queueing Instrument.pp_hires_snap
    y.y_service Instrument.pp_hires_snap y.y_sojourn y.y_open_p99
    y.y_closed_p99 y.y_oldest_age
