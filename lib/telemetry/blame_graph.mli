(** The bridge from [Stm.Blame] to the registry: a weighted
    who-aborted-whom digraph with per-edge cause breakdown and
    per-domain progress watermarks.

    One registered counter per (victim, aggressor, cause) cell —
    [tm_blame_events_total{victim,aggressor,cause}] — where either
    identity may be ["unknown"] (an unslotted domain); each cell has a
    unique writer domain ([Stolen] is written by the aggressor,
    everything else by the victim), so cells are unsharded and the emit
    path is one increment plus one clock tick.

    The watermark clock is the graph's own event clock: one tick per
    blame event or commit.  A slot's {!wait_age} — clock distance from
    its last commit — is the starvation signal: it grows without bound
    for a starved slot while peers keep generating events, and resets
    on every commit.  {!refresh} materializes clock, last-commit and
    wait-age into gauges ([tm_blame_clock], [tm_blame_last_commit],
    [tm_blame_wait_age]) so scrapes see them; call it before each
    scrape (the emit path never touches gauges). *)

module Stm = Tm_stm.Stm

type t

val create : Registry.t -> domains:int -> t
(** Register the full (domains+1) x (domains+1) x causes cell matrix,
    per-slot commit counters and watermark gauges in the registry.
    @raise Invalid_argument if [domains < 1]. *)

val sink_of : t -> Stm.Blame.sink

val install : Registry.t -> domains:int -> t
(** [create] + [Stm.Blame.install] of its sink. *)

val uninstall : unit -> unit
(** [Stm.Blame.uninstall] (idempotent). *)

val domains : t -> int

val clock : t -> int
(** Current event-clock value (events + commits so far). *)

(** {2 Graph accessors}

    Identities are plan slots; [-1] is the unknown slot and is a valid
    argument everywhere a victim/aggressor is taken. *)

val edge : t -> victim:int -> aggressor:int -> Stm.Blame.cause -> int

val edge_total : t -> victim:int -> aggressor:int -> int
(** Sum over causes. *)

val victim_total : t -> int -> int
(** Total blame events with the given victim. *)

val edges : t -> (int * int * int) list
(** Non-zero edges as [(victim, aggressor, total)], ordered by
    (victim, aggressor) ascending with the unknown slot first. *)

val edge_causes : t -> victim:int -> aggressor:int -> (Stm.Blame.cause * int) list
(** Non-zero per-cause weights of one edge, in {!Stm.Blame.causes}
    order. *)

val cause_counts : t -> (Stm.Blame.cause * int) list
(** Global per-cause totals (zero counts included), in
    {!Stm.Blame.causes} order. *)

(** {2 Watermarks} *)

val commits : t -> int -> int
val last_commit : t -> int -> int

val wait_age : t -> int -> int
(** [clock t - last_commit t d], clamped at 0. *)

val refresh : t -> unit
(** Materialize clock/last-commit/wait-age into their gauges. *)

(** {2 Deterministic classification}

    Raw edge weights of a real multicore run are not reproducible run
    to run; the verdicts plus wide-margin structure are.  {!classify}
    reduces the graph to exactly that — the byte-comparable form the
    CI determinism gate compares and the analysis [blame] rule
    cross-checks against chaos verdicts:

    - evidence is verdict-first: crashed, parasitic and progressing
      domains get their verdict back (a progressing domain has no
      starvation to attribute, and its small-sample blame profile is
      the nondeterministic part);
    - only starving victims are attributed, and their signal is
      wide-margin by construction: a domain starving behind a stranded
      or held lock collects thousands of blame events per window of
      which the blocking slot owns ~100%, so the 90% dominator test
      separates it cleanly from anything symmetric;
    - a starving victim below {!min_events} events is quiet —
      starvation the seam did not witness (chaos-injected abort storms
      bypass the instrumented decision sites);
    - the shape covers the attributable starving victims only: one
      shared dominator is a star (the stranded-lock signature), mutual
      significant blame among starving victims is a cycle {e existence}
      (the livelock signature — membership is never reported), and no
      starving victims is no shape (the obstruction-free signature
      under crash-holding-locks: everybody steals past the corpse). *)

val min_events : int
val dominator_share : float
val significant_share : float

type evidence =
  | E_crashed  (** verdict says crashed; blame not computed *)
  | E_parasitic  (** verdict says parasitic; blame not computed *)
  | E_progressing  (** verdict says progressing; nothing to attribute *)
  | E_starved_by of int  (** one aggressor holds >= 90% of the blame *)
  | E_contended  (** starving with no dominator (symmetric rivals) *)
  | E_quiet  (** starving with fewer than {!min_events} blame events *)

type shape =
  | Star of int  (** every attributable starving victim shares one dominator *)
  | Cycle  (** mutual significant blame among starving victims exists *)
  | No_shape

val evidence_label : evidence -> string
(** ["crashed"], ["parasitic"], ["progressing"], ["starved-by:N"],
    ["contended"], ["quiet"]. *)

val shape_label : shape -> string
(** ["star:N"], ["cycle"], ["none"]. *)

val classify :
  t ->
  classes:Tm_liveness.Process_class.cls array ->
  shape * evidence array
(** [classify t ~classes] (one Figure-2 class per domain, e.g. the
    chaos verdicts) reduces the graph to its stable shape and
    per-domain evidence.
    @raise Invalid_argument unless [classes] has one entry per
    domain. *)
