(* The bridge from [Stm.Blame] to the registry: a weighted
   who-aborted-whom digraph with per-edge cause histograms, plus
   per-domain progress watermarks.

   Cell layout: [cells.(victim+1).(aggressor+1).(cause)] — index 0 on
   both identity axes is the unknown slot (-1), so no event is ever
   dropped.  Every cell has a unique writer domain (a [Stolen] edge is
   written by the aggressor, every other cause by the victim, and one
   slot is one domain), so the counters are registered with
   [~shards:1] and the emit path is a single unsharded increment.

   The watermark clock is the graph's own event clock — one tick per
   blame event or commit — which is the only cross-domain clock the
   seam itself defines.  [last_commit] is the clock value at a slot's
   most recent commit; its wait age is the distance from the current
   clock, i.e. how many blame-worthy things happened since it last got
   through.  Ages are materialized into gauges by {!refresh} (scrape
   paths are cold; the emit path never touches gauges). *)

module Stm = Tm_stm.Stm

type t = {
  domains : int;
  cells : Instrument.counter array array array;
  commits : Instrument.counter array;  (* per slot, unknown excluded *)
  last_commit : int Atomic.t array;
  clock : int Atomic.t;
  clock_gauge : Instrument.gauge;
  last_commit_gauge : Instrument.gauge array;
  wait_age_gauge : Instrument.gauge array;
}

let ncauses = List.length Stm.Blame.causes
let cause_index c = Stm.Blame.(match c with
  | Read_conflict -> 0
  | Lock_busy -> 1
  | Validation -> 2
  | Stolen -> 3
  | Wait_budget -> 4)

let cause_of_index i = List.nth Stm.Blame.causes i
let slot_label = function -1 -> "unknown" | n -> string_of_int n

let create reg ~domains =
  if domains < 1 then invalid_arg "Blame_graph.create: domains must be >= 1";
  let cells =
    Array.init (domains + 1) (fun vi ->
        Array.init (domains + 1) (fun ai ->
            Array.init ncauses (fun ci ->
                Registry.counter reg ~shards:1
                  ~labels:
                    [
                      ("victim", slot_label (vi - 1));
                      ("aggressor", slot_label (ai - 1));
                      ("cause", Stm.Blame.cause_label (cause_of_index ci));
                    ]
                  ~help:"Blame events by victim, aggressor and cause"
                  "tm_blame_events_total")))
  in
  let commits =
    Array.init domains (fun d ->
        Registry.counter reg ~shards:1
          ~labels:[ ("domain", string_of_int d) ]
          ~help:"Commits per plan slot (the blame progress watermark feed)"
          "tm_blame_commits_total")
  in
  let g name help =
    Array.init domains (fun d ->
        Registry.gauge reg
          ~labels:[ ("domain", string_of_int d) ]
          ~help name)
  in
  {
    domains;
    cells;
    commits;
    last_commit = Array.init domains (fun _ -> Atomic.make 0);
    clock = Atomic.make 0;
    clock_gauge =
      Registry.gauge reg
        ~help:"Blame event clock (one tick per blame event or commit)"
        "tm_blame_clock";
    last_commit_gauge =
      g "tm_blame_last_commit" "Blame-clock value at the slot's last commit";
    wait_age_gauge =
      g "tm_blame_wait_age"
        "Blame-clock ticks since the slot's last commit (at last refresh)";
  }

let idx d = d + 1

let sink_of t =
  {
    Stm.Blame.on_event =
      (fun e ->
        ignore (Atomic.fetch_and_add t.clock 1);
        let vi = if e.Stm.Blame.b_victim >= 0 && e.b_victim < t.domains then idx e.b_victim else 0 in
        let ai = if e.b_aggressor >= 0 && e.b_aggressor < t.domains then idx e.b_aggressor else 0 in
        Instrument.incr t.cells.(vi).(ai).(cause_index e.b_cause));
    on_progress =
      (fun slot ->
        let now = Atomic.fetch_and_add t.clock 1 + 1 in
        if slot >= 0 && slot < t.domains then begin
          Atomic.set t.last_commit.(slot) now;
          Instrument.incr t.commits.(slot)
        end);
  }

let install reg ~domains =
  let t = create reg ~domains in
  Stm.Blame.install (sink_of t);
  t

let uninstall = Stm.Blame.uninstall
let domains t = t.domains
let clock t = Atomic.get t.clock

let edge t ~victim ~aggressor cause =
  Instrument.value t.cells.(idx victim).(idx aggressor).(cause_index cause)

let edge_total t ~victim ~aggressor =
  let row = t.cells.(idx victim).(idx aggressor) in
  Array.fold_left (fun acc c -> acc + Instrument.value c) 0 row

let victim_total t victim =
  let acc = ref 0 in
  for a = -1 to t.domains - 1 do
    acc := !acc + edge_total t ~victim ~aggressor:a
  done;
  !acc

let edges t =
  let out = ref [] in
  for v = t.domains - 1 downto -1 do
    for a = t.domains - 1 downto -1 do
      let n = edge_total t ~victim:v ~aggressor:a in
      if n > 0 then out := (v, a, n) :: !out
    done
  done;
  !out

let edge_causes t ~victim ~aggressor =
  List.filter_map
    (fun c ->
      let n = edge t ~victim ~aggressor c in
      if n > 0 then Some (c, n) else None)
    Stm.Blame.causes

let cause_counts t =
  List.map
    (fun c ->
      let acc = ref 0 in
      for v = -1 to t.domains - 1 do
        for a = -1 to t.domains - 1 do
          acc := !acc + edge t ~victim:v ~aggressor:a c
        done
      done;
      (c, !acc))
    Stm.Blame.causes

let commits t d = Instrument.value t.commits.(d)
let last_commit t d = Atomic.get t.last_commit.(d)
let wait_age t d = max 0 (clock t - last_commit t d)

let refresh t =
  Instrument.set_gauge t.clock_gauge (clock t);
  for d = 0 to t.domains - 1 do
    Instrument.set_gauge t.last_commit_gauge.(d) (last_commit t d);
    Instrument.set_gauge t.wait_age_gauge.(d) (wait_age t d)
  done

(* Classification.  Raw edge weights of a real multicore run are not
   reproducible; what is reproducible is the verdicts plus wide-margin
   structure, and only those are classified here (the gateable,
   byte-comparable form — see DESIGN).  The discipline:

   - evidence is verdict-first: crashed, parasitic and progressing
     domains get their verdict back as evidence.  A progressing domain
     has no starvation to attribute, and whatever small-sample blame
     profile it shows in one window (a handful of aborts, sometimes
     momentarily lopsided) is exactly the nondeterministic part;
   - only {e starving} victims are attributed, and their signal is
     wide-margin by construction: a domain starving behind a stranded
     or held lock burns its whole window on retries, collecting
     thousands of blame events of which the blocking slot owns ~100%,
     so the [dominator_share] (90%) test separates it cleanly from
     anything symmetric (~50/50);
   - a starving victim below [min_events] is [E_quiet] — starvation the
     seam did not witness (e.g. chaos-injected abort storms, which
     bypass the instrumented decision sites);
   - the {e shape} is computed over attributable starving victims only:
     one shared dominator is a [Star] (the stranded-lock signature),
     mutual significant blame among starving victims is a [Cycle] (the
     livelock signature; existence is reported, never membership), and
     no starving victims is [No_shape] (nobody needs an explanation —
     the obstruction-free signature under crash-holding-locks). *)

let min_events = 64
let dominator_share = 0.9
let significant_share = 0.25

type evidence =
  | E_crashed
  | E_parasitic
  | E_progressing
  | E_starved_by of int
  | E_contended
  | E_quiet

type shape = Star of int | Cycle | No_shape

let evidence_label = function
  | E_crashed -> "crashed"
  | E_parasitic -> "parasitic"
  | E_progressing -> "progressing"
  | E_starved_by d -> "starved-by:" ^ slot_label d
  | E_contended -> "contended"
  | E_quiet -> "quiet"

let shape_label = function
  | Star c -> "star:" ^ slot_label c
  | Cycle -> "cycle"
  | No_shape -> "none"

let classify t ~classes =
  let module Pc = Tm_liveness.Process_class in
  if Array.length classes <> t.domains then
    invalid_arg "Blame_graph.classify: one class per domain";
  let total = Array.init t.domains (fun d -> victim_total t d) in
  let starving d =
    match classes.(d) with
    | Pc.Starving -> true
    | Pc.Crashed | Pc.Parasitic | Pc.Progressing -> false
  in
  let active d = starving d && total.(d) >= min_events in
  let dominator d =
    let best = ref (-2) and best_n = ref 0 in
    for a = -1 to t.domains - 1 do
      let n = edge_total t ~victim:d ~aggressor:a in
      if n > !best_n then begin
        best := a;
        best_n := n
      end
    done;
    if
      !best >= -1
      && float_of_int !best_n >= dominator_share *. float_of_int total.(d)
    then Some !best
    else None
  in
  let evidence =
    Array.init t.domains (fun d ->
        match classes.(d) with
        | Pc.Crashed -> E_crashed
        | Pc.Parasitic -> E_parasitic
        | Pc.Progressing -> E_progressing
        | Pc.Starving ->
            if total.(d) < min_events then E_quiet
            else (
              match dominator d with
              | Some a -> E_starved_by a
              | None -> E_contended))
  in
  (* Cycle existence among the active starving victims over significant
     edges — a livelock is starving domains blaming each other. *)
  let significant v a =
    active a && a <> v
    && float_of_int (edge_total t ~victim:v ~aggressor:a)
       >= significant_share *. float_of_int total.(v)
  in
  let cycle_exists () =
    let n = t.domains in
    let state = Array.make n 0 (* 0 unvisited, 1 on stack, 2 done *) in
    let rec dfs v =
      state.(v) <- 1;
      let found = ref false in
      for a = 0 to n - 1 do
        if (not !found) && significant v a then
          if state.(a) = 1 then found := true
          else if state.(a) = 0 && dfs a then found := true
      done;
      if not !found then state.(v) <- 2;
      !found
    in
    let any = ref false in
    for v = 0 to n - 1 do
      if (not !any) && state.(v) = 0 && active v then any := dfs v
    done;
    !any
  in
  let victims = List.filter active (List.init t.domains Fun.id) in
  let shape =
    match victims with
    | [] -> No_shape
    | v0 :: rest -> (
        match dominator v0 with
        | Some c when List.for_all (fun v -> dominator v = Some c) rest ->
            Star c
        | _ -> if cycle_exists () then Cycle else No_shape)
  in
  (shape, evidence)
