(** Publishing a simulator run into a registry, on the step clock.

    Plug {!hook} into {!Tm_sim.Runner.run}'s [?on_event]: per-process
    counters ([tm_sim_proc_events_total], [tm_sim_invocations_total],
    [tm_sim_trycs_total], [tm_sim_commits_total],
    [tm_sim_aborts_total], labelled [proc="p"]) plus a global
    [tm_sim_events_total] are driven by the recorded history events,
    the liveness gauge classifies each process between scrapes, and the
    sampler ticks every [period] events with the event index as the
    snapshot timestamp — no wall clock anywhere, so consumer output
    (e.g. a JSONL time series) is byte-identical across equal runs. *)

type t

val create :
  ?period:int ->
  ?consumers:Sampler.consumer list ->
  nprocs:int ->
  Registry.t ->
  t
(** [period] (default 200) is the scrape interval in history events. *)

val on_event : t -> ts:int -> Tm_history.Event.t -> unit

val hook : t -> ts:int -> Tm_history.Event.t -> unit
(** [on_event] pre-applied, shaped for {!Tm_sim.Runner.run}'s
    [?on_event]. *)

val finish : t -> ts:int -> Registry.snapshot
(** A final scrape at [ts] (normally the history length), regardless of
    the period. *)
