(* A named collection of instruments.

   Registration takes a mutex (it happens at setup time); the hot write
   paths touch only the instruments themselves.  A scrape walks the
   metrics in registration order and freezes every value into a plain
   snapshot, so exporters and dashboards work on immutable data and the
   output ordering is deterministic by construction. *)

type state = { st_states : string array; st_current : int Atomic.t }

let set_state st label =
  let n = Array.length st.st_states in
  let rec find i =
    if i >= n then
      invalid_arg (Fmt.str "Registry.set_state: unknown state %S" label)
    else if String.equal st.st_states.(i) label then i
    else find (i + 1)
  in
  Atomic.set st.st_current (find 0)

let state_current st = st.st_states.(Atomic.get st.st_current)

type instrument =
  | I_counter of Instrument.counter
  | I_gauge of Instrument.gauge
  | I_histogram of Instrument.histogram
  | I_hires of Instrument.hires
  | I_state of state

type metric = {
  m_name : string;
  m_help : string;
  m_labels : (string * string) list;
  m_inst : instrument;
}

type t = { mutable rev_metrics : metric list; mu : Mutex.t }

let create () = { rev_metrics = []; mu = Mutex.create () }

let sort_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let register t ~name ~help ~labels inst =
  let m =
    { m_name = name; m_help = help; m_labels = sort_labels labels; m_inst = inst }
  in
  Mutex.protect t.mu (fun () -> t.rev_metrics <- m :: t.rev_metrics)

let counter t ?shards ?(labels = []) ~help name =
  let c = Instrument.counter ?shards () in
  register t ~name ~help ~labels (I_counter c);
  c

let gauge t ?(labels = []) ?init ~help name =
  let g = Instrument.gauge ?init () in
  register t ~name ~help ~labels (I_gauge g);
  g

let histogram t ?shards ?(labels = []) ~help name =
  let h = Instrument.histogram ?shards () in
  register t ~name ~help ~labels (I_histogram h);
  h

let hires t ?shards ?(labels = []) ~help name =
  let h = Instrument.hires ?shards () in
  register t ~name ~help ~labels (I_hires h);
  h

let state t ?(labels = []) ?init ~key ~states ~help name =
  if Array.length states = 0 then invalid_arg "Registry.state: no states";
  let st = { st_states = states; st_current = Atomic.make 0 } in
  (match init with Some l -> set_state st l | None -> ());
  register t ~name ~help
    ~labels:((key, "") :: labels)
    (I_state st);
  (* The [key] label slot is a placeholder: the exporter expands a state
     metric into one 0/1 sample per state, substituting each state name
     as the [key] label's value. *)
  st

(* ---- scraping ---- *)

type value =
  | Num of int
  | Hist of Instrument.hsnap
  | Hires of Instrument.hsnap
  | State_of of { states : string array; current : int }

type kind = Counter | Gauge | Histogram | State

type sample = {
  s_name : string;
  s_help : string;
  s_kind : kind;
  s_labels : (string * string) list;
  s_value : value;
}

type snapshot = { ts : int; samples : sample list }

let sample_of_metric m =
  let kind, value =
    match m.m_inst with
    | I_counter c -> (Counter, Num (Instrument.value c))
    | I_gauge g -> (Gauge, Num (Instrument.gauge_value g))
    | I_histogram h -> (Histogram, Hist (Instrument.hist_snapshot h))
    | I_hires h -> (Histogram, Hires (Instrument.hires_snapshot h))
    | I_state st ->
        ( State,
          State_of { states = st.st_states; current = Atomic.get st.st_current }
        )
  in
  {
    s_name = m.m_name;
    s_help = m.m_help;
    s_kind = kind;
    s_labels = m.m_labels;
    s_value = value;
  }

let scrape t ~ts =
  let metrics = Mutex.protect t.mu (fun () -> t.rev_metrics) in
  { ts; samples = List.rev_map sample_of_metric metrics }

(* ---- snapshot lookups (dashboards, tests) ---- *)

let state_key labels =
  (* The placeholder inserted by [state]: the label whose value the
     exporter substitutes per state. *)
  List.find_opt (fun (_, v) -> String.equal v "") labels

let find snap ~name ~labels =
  let labels = sort_labels labels in
  List.find_opt
    (fun s ->
      String.equal s.s_name name
      &&
      match s.s_value with
      | State_of _ -> (
          match state_key s.s_labels with
          | Some (k, _) ->
              List.for_all (fun (k', v') -> k' = k || List.mem (k', v') labels)
                s.s_labels
              && List.for_all
                   (fun (k', v') -> k' = k || List.mem (k', v') s.s_labels)
                   labels
          | None -> s.s_labels = labels)
      | Num _ | Hist _ | Hires _ -> s.s_labels = labels)
    snap.samples

let sample_num snap ~name ~labels =
  match find snap ~name ~labels with
  | Some { s_value = Num v; _ } -> Some v
  | Some _ | None -> None

let sample_hist snap ~name ~labels =
  match find snap ~name ~labels with
  | Some { s_value = Hist h; _ } | Some { s_value = Hires h; _ } -> Some h
  | Some _ | None -> None

let sample_state snap ~name ~labels =
  match find snap ~name ~labels with
  | Some { s_value = State_of { states; current }; _ } -> Some states.(current)
  | Some _ | None -> None
