(** Publishing sweep results into a registry.

    Post-hoc and in canonical grid order — one scrape per run with the
    run index as timestamp — never live from the pool's worker domains,
    so the published series inherits the sweep engine's byte-level
    determinism for every [--jobs] value.  Registers cumulative
    [tm_sweep_*_total] counters, and [tm_sweep_commit_latency_events] /
    [tm_sweep_retry_depth] histograms absorbed from each run's
    {!Tm_sim.Metrics.t}. *)

type t

val create : ?consumers:Sampler.consumer list -> Registry.t -> t

val publish : t -> index:int -> Tm_sim.Sweep.result -> Registry.snapshot
(** Accumulate one run's metrics and scrape at [ts = index]. *)

val publish_all : t -> Tm_sim.Sweep.result list -> Registry.snapshot option
(** {!publish} each result at its list index; returns the last
    snapshot (None for an empty sweep). *)
