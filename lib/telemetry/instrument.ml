(* Contention-free instruments.

   Counters and histograms are sharded: a writer picks a shard from its
   domain id and RMWs only that shard's atomics, so concurrent domains
   do not fight over one location; a scrape sums the shards.  OCaml 5
   has no atomic arrays, so a shard is a boxed [Atomic.t]; to keep two
   shards off one cache line the cell array is over-allocated and only
   every [stride]-th element is used.  The filler atomics are live and
   allocated consecutively with the used ones, and the OCaml 5 major
   heap does not move blocks, so used cells stay [stride] blocks
   (>= one cache line) apart for the life of the instrument. *)

let default_shards = 8
let stride = 8

let next_pow2 n =
  let rec go k = if k >= n then k else go (k * 2) in
  go 1

(* ---- counters ---- *)

type counter = { c_cells : int Atomic.t array; c_mask : int }

let counter ?(shards = default_shards) () =
  let shards = next_pow2 (max 1 shards) in
  {
    c_cells = Array.init (shards * stride) (fun _ -> Atomic.make 0);
    c_mask = shards - 1;
  }

let add c n =
  let s = ((Domain.self () :> int) land c.c_mask) * stride in
  ignore (Atomic.fetch_and_add c.c_cells.(s) n)

let incr c = add c 1

let value c =
  let acc = ref 0 in
  let i = ref 0 in
  let n = Array.length c.c_cells in
  while !i < n do
    acc := !acc + Atomic.get c.c_cells.(!i);
    i := !i + stride
  done;
  !acc

(* ---- gauges ---- *)

type gauge = int Atomic.t

let gauge ?(init = 0) () = Atomic.make init
let set_gauge g v = Atomic.set g v
let gauge_value g = Atomic.get g

(* ---- histograms ----

   Log2 buckets, same rule as [Tm_sim.Metrics]: bucket 0 counts value 0
   (and negatives), bucket [k >= 1] counts [2^(k-1), 2^k), the last
   bucket overflows.  32 buckets cover nanosecond latencies up to
   ~2^30 ns (about a second) before overflowing. *)

let hist_buckets = 32

let bucket_of v =
  if v <= 0 then 0
  else
    let rec go k =
      if k >= hist_buckets - 1 || v < 1 lsl k then k else go (k + 1)
    in
    go 1

let bucket_upper k =
  if k <= 0 then 0
  else if k >= hist_buckets - 1 then max_int
  else (1 lsl k) - 1

type hshard = {
  hb : int Atomic.t array;
  hc : int Atomic.t;
  hs : int Atomic.t;
  hm : int Atomic.t;
}

type histogram = { h_shards : hshard array; h_mask : int }

let histogram ?(shards = default_shards) () =
  let shards = next_pow2 (max 1 shards) in
  {
    h_shards =
      Array.init shards (fun _ ->
          {
            hb = Array.init hist_buckets (fun _ -> Atomic.make 0);
            hc = Atomic.make 0;
            hs = Atomic.make 0;
            hm = Atomic.make 0;
          });
    h_mask = shards - 1;
  }

let rec bump_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then bump_max a v

let observe h v =
  let s = h.h_shards.((Domain.self () :> int) land h.h_mask) in
  ignore (Atomic.fetch_and_add s.hb.(bucket_of v) 1);
  ignore (Atomic.fetch_and_add s.hc 1);
  ignore (Atomic.fetch_and_add s.hs (max 0 v));
  bump_max s.hm v

let absorb h ~buckets ~sum ~max_sample =
  let s = h.h_shards.((Domain.self () :> int) land h.h_mask) in
  let n = Array.length buckets in
  let total = ref 0 in
  for k = 0 to n - 1 do
    if buckets.(k) > 0 then begin
      (* Source bucket [k] has the same [2^(k-1), 2^k) range as ours —
         except the source's own last bucket, which is an overflow
         bucket: its samples are only known to be >= 2^(n-2), so they
         must land in our overflow bucket too, not in the same-index
         range bucket (which would under-read them). *)
      let kb =
        if k = n - 1 && n < hist_buckets then hist_buckets - 1
        else if k < hist_buckets then k
        else hist_buckets - 1
      in
      ignore (Atomic.fetch_and_add s.hb.(kb) buckets.(k));
      total := !total + buckets.(k)
    end
  done;
  ignore (Atomic.fetch_and_add s.hc !total);
  ignore (Atomic.fetch_and_add s.hs (max 0 sum));
  bump_max s.hm max_sample

type hsnap = {
  buckets : int array;
  count : int;
  sum : int;
  max_sample : int;
}

let hist_snapshot h =
  let buckets = Array.make hist_buckets 0 in
  let count = ref 0 and sum = ref 0 and max_sample = ref 0 in
  Array.iter
    (fun s ->
      for k = 0 to hist_buckets - 1 do
        buckets.(k) <- buckets.(k) + Atomic.get s.hb.(k)
      done;
      count := !count + Atomic.get s.hc;
      sum := !sum + Atomic.get s.hs;
      max_sample := max !max_sample (Atomic.get s.hm))
    h.h_shards;
  { buckets; count = !count; sum = !sum; max_sample = !max_sample }

let quantile snap q =
  if snap.count = 0 then 0
  else begin
    let rank = int_of_float (ceil (q *. float_of_int snap.count)) in
    let rank = if rank < 1 then 1 else rank in
    let rec go k cum =
      if k >= hist_buckets - 1 then snap.max_sample
      else
        let cum = cum + snap.buckets.(k) in
        if cum >= rank then min (bucket_upper k) snap.max_sample
        else go (k + 1) cum
    in
    go 0 0
  end

let hsnap_mean snap =
  if snap.count = 0 then 0.0
  else float_of_int snap.sum /. float_of_int snap.count

let pp_hsnap ppf snap =
  if snap.count = 0 then Fmt.pf ppf "(empty)"
  else
    Fmt.pf ppf "p50 %d  p90 %d  p99 %d  max %d  (n=%d, mean %.1f)"
      (quantile snap 0.5) (quantile snap 0.9) (quantile snap 0.99)
      snap.max_sample snap.count (hsnap_mean snap)

(* ---- high-resolution histograms ----

   The log2 buckets above cap the relative quantile error at a factor
   of 2 — fine for p50/p99 dashboards, useless for the p99.9/p99.99
   tail the open-loop latency recorder gates on.  The hires variant
   splits every log2 decade into [hires_sub] linear sub-buckets, so the
   relative error of any reported bound is at most 1/[hires_sub]
   (12.5%), while keeping the same wait-free sharded write path. *)

let hires_sub_bits = 3
let hires_sub = 1 lsl hires_sub_bits

(* Majors [hires_sub_bits .. hires_log_max - 1] carry [hires_sub]
   sub-buckets each; values below [hires_sub] are exact; everything at
   or above [2^hires_log_max] (~18 minutes in ns) overflows. *)
let hires_log_max = 40

let hires_buckets =
  hires_sub + ((hires_log_max - hires_sub_bits) * hires_sub) + 1

let log2_floor v =
  let rec go m = if v lsr (m + 1) = 0 then m else go (m + 1) in
  go 0

let hires_bucket_of v =
  if v <= 0 then 0
  else if v < hires_sub then v
  else
    let m = log2_floor v in
    if m >= hires_log_max then hires_buckets - 1
    else (hires_sub * (m - hires_sub_bits)) + (v lsr (m - hires_sub_bits))

let hires_bucket_upper k =
  if k <= 0 then 0
  else if k < hires_sub then k
  else if k >= hires_buckets - 1 then max_int
  else
    let m = (k lsr hires_sub_bits) + hires_sub_bits - 1 in
    let s = k - (hires_sub * (m - hires_sub_bits)) in
    ((s + 1) lsl (m - hires_sub_bits)) - 1

type hires = { r_shards : hshard array; r_mask : int }

let hires ?(shards = default_shards) () =
  let shards = next_pow2 (max 1 shards) in
  {
    r_shards =
      Array.init shards (fun _ ->
          {
            hb = Array.init hires_buckets (fun _ -> Atomic.make 0);
            hc = Atomic.make 0;
            hs = Atomic.make 0;
            hm = Atomic.make 0;
          });
    r_mask = shards - 1;
  }

let hires_observe h v =
  let s = h.r_shards.((Domain.self () :> int) land h.r_mask) in
  ignore (Atomic.fetch_and_add s.hb.(hires_bucket_of v) 1);
  ignore (Atomic.fetch_and_add s.hc 1);
  ignore (Atomic.fetch_and_add s.hs (max 0 v));
  bump_max s.hm v

let hires_snapshot h =
  let buckets = Array.make hires_buckets 0 in
  let count = ref 0 and sum = ref 0 and max_sample = ref 0 in
  Array.iter
    (fun s ->
      for k = 0 to hires_buckets - 1 do
        buckets.(k) <- buckets.(k) + Atomic.get s.hb.(k)
      done;
      count := !count + Atomic.get s.hc;
      sum := !sum + Atomic.get s.hs;
      max_sample := max !max_sample (Atomic.get s.hm))
    h.r_shards;
  { buckets; count = !count; sum = !sum; max_sample = !max_sample }

let hires_quantile snap q =
  if snap.count = 0 then 0
  else begin
    let n = Array.length snap.buckets in
    let rank = int_of_float (ceil (q *. float_of_int snap.count)) in
    let rank = if rank < 1 then 1 else rank in
    let rec go k cum =
      if k >= n - 1 then snap.max_sample
      else
        let cum = cum + snap.buckets.(k) in
        if cum >= rank then min (hires_bucket_upper k) snap.max_sample
        else go (k + 1) cum
    in
    go 0 0
  end

let pp_hires_snap ppf snap =
  if snap.count = 0 then Fmt.pf ppf "(empty)"
  else
    Fmt.pf ppf
      "p50 %d  p90 %d  p99 %d  p99.9 %d  p99.99 %d  max %d  (n=%d, mean %.1f)"
      (hires_quantile snap 0.5) (hires_quantile snap 0.9)
      (hires_quantile snap 0.99)
      (hires_quantile snap 0.999)
      (hires_quantile snap 0.9999)
      snap.max_sample snap.count (hsnap_mean snap)
