(* Publishing a simulator run into a registry, on the step clock.

   The runner's [?on_event] hook calls [on_event] with the history-event
   index as timestamp; counters are updated per event and the sampler
   ticks every [period] events, so the resulting JSONL time series is a
   pure function of the history — byte-identical across equal runs.
   Everything is single-domain (the simulator is sequential), hence
   [~shards:1] instruments. *)

module Ev = Tm_history.Event

type t = {
  period : int;
  sampler : Sampler.t;
  events : Instrument.counter;
  p_events : Instrument.counter array;  (* index = proc, slot 0 unused *)
  p_invs : Instrument.counter array;
  p_trycs : Instrument.counter array;
  p_commits : Instrument.counter array;
  p_aborts : Instrument.counter array;
  mutable last_tick : int;
}

let create ?(period = 200) ?(consumers = []) ~nprocs reg =
  if period < 1 then invalid_arg "Sim_pub.create: period must be positive";
  (* proc 0 is the simulator's unused environment slot; keep a cell for
     uniform indexing but don't register it (it would export dead
     series). *)
  let per name help =
    Array.init (nprocs + 1) (fun p ->
        if p = 0 then Instrument.counter ~shards:1 ()
        else
          Registry.counter reg ~shards:1
            ~labels:[ ("proc", string_of_int p) ]
            ~help name)
  in
  let events =
    Registry.counter reg ~shards:1 ~help:"History events recorded"
      "tm_sim_events_total"
  in
  let p_events =
    per "tm_sim_proc_events_total" "History events of the process"
  in
  let p_invs = per "tm_sim_invocations_total" "Invocations of the process" in
  let p_trycs = per "tm_sim_trycs_total" "tryC invocations of the process" in
  let p_commits = per "tm_sim_commits_total" "Committed transactions" in
  let p_aborts = per "tm_sim_aborts_total" "Aborted transactions" in
  let sources =
    Array.init nprocs (fun i ->
        let p = i + 1 in
        Liveness_gauge.of_counters ~ops:p_events.(p) ~trycs:p_trycs.(p)
          ~commits:p_commits.(p) ~aborts:p_aborts.(p))
  in
  let liveness =
    Liveness_gauge.create reg ~label:"proc"
      ~ids:(Array.init nprocs (fun i -> i + 1))
      ~sources
  in
  let sampler =
    Sampler.create ~liveness ~consumers ~clock:(fun () -> 0) reg
  in
  {
    period;
    sampler;
    events;
    p_events;
    p_invs;
    p_trycs;
    p_commits;
    p_aborts;
    last_tick = -1;
  }

let on_event t ~ts ev =
  Instrument.incr t.events;
  (match ev with
  | Ev.Inv (p, inv) ->
      Instrument.incr t.p_events.(p);
      Instrument.incr t.p_invs.(p);
      if inv = Ev.Try_commit then Instrument.incr t.p_trycs.(p)
  | Ev.Res (p, resp) -> (
      Instrument.incr t.p_events.(p);
      match resp with
      | Ev.Committed -> Instrument.incr t.p_commits.(p)
      | Ev.Aborted -> Instrument.incr t.p_aborts.(p)
      | Ev.Value _ | Ev.Ok_written -> ()));
  if ts mod t.period = 0 && ts > t.last_tick then begin
    t.last_tick <- ts;
    ignore (Sampler.tick ~ts t.sampler)
  end

let hook t = fun ~ts ev -> on_event t ~ts ev

let finish t ~ts =
  t.last_tick <- ts;
  Sampler.tick ~ts t.sampler
