(** A registry of named instruments and point-in-time scrapes.

    Instruments are registered once at setup (under a mutex) and then
    written lock-free on the hot paths; {!scrape} freezes every value
    into an immutable {!snapshot} whose sample order is the registration
    order and whose label lists are sorted by key — so any export of a
    snapshot is deterministic given deterministic instrument values.

    Metric naming follows the Prometheus conventions: counters end in
    [_total], histograms carry their unit as a suffix ([_ns] for
    nanoseconds, [_events] for history events). *)

type t

val create : unit -> t

val counter :
  t ->
  ?shards:int ->
  ?labels:(string * string) list ->
  help:string ->
  string ->
  Instrument.counter

val gauge :
  t ->
  ?labels:(string * string) list ->
  ?init:int ->
  help:string ->
  string ->
  Instrument.gauge

val histogram :
  t ->
  ?shards:int ->
  ?labels:(string * string) list ->
  help:string ->
  string ->
  Instrument.histogram

val hires :
  t ->
  ?shards:int ->
  ?labels:(string * string) list ->
  help:string ->
  string ->
  Instrument.hires
(** A high-resolution histogram ({!Instrument.hires}): scraped as
    {!Hires}, exported with the hires bucket bounds, kind
    {!Histogram}. *)

type state
(** A stateset gauge: exactly one of a fixed set of labelled states is
    current; the exporter renders one 0/1 sample per state, the state
    name substituted as the value of the [key] label. *)

val state :
  t ->
  ?labels:(string * string) list ->
  ?init:string ->
  key:string ->
  states:string array ->
  help:string ->
  string ->
  state
(** [state t ~key ~states ~help name] registers a stateset gauge.  The
    initial state is [init] (default: the first of [states]).
    @raise Invalid_argument if [states] is empty or [init] unknown. *)

val set_state : state -> string -> unit
(** @raise Invalid_argument on an unknown state name. *)

val state_current : state -> string

(** {2 Scraping} *)

type value =
  | Num of int
  | Hist of Instrument.hsnap
  | Hires of Instrument.hsnap  (** hires bucket bounds *)
  | State_of of { states : string array; current : int }

type kind = Counter | Gauge | Histogram | State

type sample = {
  s_name : string;
  s_help : string;
  s_kind : kind;
  s_labels : (string * string) list;  (** sorted by key *)
  s_value : value;
}

type snapshot = { ts : int; samples : sample list }
(** [ts] is in whatever clock the caller samples on: history-event index
    under the step clock, milliseconds since start in live mode. *)

val scrape : t -> ts:int -> snapshot

(** {2 Snapshot lookups}

    For dashboards and tests.  [labels] need not be sorted; for a state
    metric the placeholder state-key label is ignored in the match. *)

val find :
  snapshot -> name:string -> labels:(string * string) list -> sample option

val sample_num :
  snapshot -> name:string -> labels:(string * string) list -> int option

val sample_hist :
  snapshot ->
  name:string ->
  labels:(string * string) list ->
  Instrument.hsnap option
(** Matches both {!Hist} and {!Hires} samples; for a hires sample the
    returned snapshot must be read with {!Instrument.hires_quantile}. *)

val sample_state :
  snapshot -> name:string -> labels:(string * string) list -> string option
(** The current state name of a stateset sample. *)
