(** The scrape loop: liveness update, registry freeze, consumers.

    A sampler owns no thread; {!tick} is one scrape, {!run_live} a
    wall-clock loop around it.  Deterministic pipelines (simulator,
    sweep) call [tick ~ts] on the step clock — no wall time enters the
    snapshot — while live mode lets the default clock stamp frames with
    milliseconds since sampler creation. *)

type consumer = Registry.snapshot -> unit

type t

val create :
  ?liveness:Liveness_gauge.t ->
  ?consumers:consumer list ->
  ?clock:(unit -> int) ->
  Registry.t ->
  t
(** [clock] defaults to wall-clock milliseconds since creation; pass the
    step clock for deterministic output. *)

val tick : ?ts:int -> t -> Registry.snapshot
(** Update the liveness gauge (if any), scrape at [ts] (default: the
    sampler's clock), feed every consumer, return the snapshot. *)

val last : t -> Registry.snapshot option
(** The most recent {!tick} snapshot. *)

val run_live :
  ?stop:(unit -> bool) ->
  t ->
  period:float ->
  frames:int ->
  on_frame:(int -> Registry.snapshot -> unit) ->
  unit
(** Sleep [period] seconds, {!tick}, call [on_frame frame snapshot];
    [frames] times or until [stop ()]. *)
