(** Instrumenting the real STM: an {!Tm_stm.Stm.Tel} probe feeding the
    registry.

    Registers [tm_stm_begins_total] / [tm_stm_reads_total] /
    [tm_stm_commits_total] / [tm_stm_aborts_total] counters and
    nanosecond phase-latency histograms [tm_stm_lock_acquire_ns] /
    [tm_stm_validate_ns] / [tm_stm_publish_ns] / [tm_stm_commit_ns] /
    [tm_stm_abort_ns], then arms the probe.  While disarmed the STM hot
    path pays one atomic flag read per event; armed, each event is a
    few sharded atomic RMWs plus two monotonic clock reads per timed
    phase. *)

type t = {
  begins : Instrument.counter;
  reads : Instrument.counter;
  commits : Instrument.counter;
  aborts : Instrument.counter;
  lock_ns : Instrument.histogram;
  validate_ns : Instrument.histogram;
  publish_ns : Instrument.histogram;
  commit_ns : Instrument.histogram;
  abort_ns : Instrument.histogram;
}

val ns_clock : unit -> int
(** CLOCK_MONOTONIC in nanoseconds (bechamel's stubs). *)

val register : Registry.t -> t
(** Register the instruments without arming the probe. *)

val probe_of : ?clock:(unit -> int) -> t -> Tm_stm.Stm.Tel.probe
(** The probe feeding [t]; [clock] defaults to {!ns_clock}. *)

val install : ?clock:(unit -> int) -> Registry.t -> t
(** {!register} + {!Tm_stm.Stm.Tel.install}. *)

val uninstall : unit -> unit
(** Disarm the global probe ({!Tm_stm.Stm.Tel.uninstall}). *)
