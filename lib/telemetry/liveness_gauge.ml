(* The Figure-2 class of every domain as a live metric.

   Each update reads the per-domain monotone counters, takes deltas
   against the previous update and classifies them with
   [Tm_liveness.Empirical.classify_counters] — exactly the chaos
   watchdog's verdict math, applied between consecutive scrapes instead
   of once per run.  Two metrics per domain: the stateset
   [<metric>_class{class=...,domain=...}] over the classifier's taxonomy
   and the paper-level [<metric>_correct{domain=...}] gauge (correct =
   not crashed and not parasitic, so a starving domain is still
   correct). *)

module Pc = Tm_liveness.Process_class
module Emp = Tm_liveness.Empirical

type source = {
  ops : unit -> int;
  trycs : unit -> int;
  commits : unit -> int;
  aborts : unit -> int;
}

let source ~ops ~trycs ~commits ~aborts = { ops; trycs; commits; aborts }

let of_counters ~ops ~trycs ~commits ~aborts =
  {
    ops = (fun () -> Instrument.value ops);
    trycs = (fun () -> Instrument.value trycs);
    commits = (fun () -> Instrument.value commits);
    aborts = (fun () -> Instrument.value aborts);
  }

let states = [| "crashed"; "parasitic"; "starving"; "progressing" |]

let state_of_cls = function
  | Pc.Crashed -> "crashed"
  | Pc.Parasitic -> "parasitic"
  | Pc.Starving -> "starving"
  | Pc.Progressing -> "progressing"

let correct_of_cls = function
  | Pc.Starving | Pc.Progressing -> 1
  | Pc.Crashed | Pc.Parasitic -> 0

type t = {
  sources : source array;
  mutable last : Emp.counters array;
  current : Pc.cls array;
  class_states : Registry.state array;
  correct : Instrument.gauge array;
}

let zero = Emp.counters ~ops:0 ~trycs:0 ~commits:0 ~aborts:0

let create ?(metric = "tm_liveness") ?(label = "domain") ?ids reg ~sources =
  let nd = Array.length sources in
  let id d = match ids with Some a -> a.(d) | None -> d in
  let labels d = [ (label, string_of_int (id d)) ] in
  {
    sources;
    last = Array.make nd zero;
    current = Array.make nd Pc.Progressing;
    class_states =
      Array.init nd (fun d ->
          Registry.state reg ~labels:(labels d) ~init:"progressing"
            ~key:"class" ~states
            ~help:
              "Figure-2 class of the domain over the last scrape interval \
               (Empirical.classify_counters on counter deltas)"
            (metric ^ "_class"));
    correct =
      Array.init nd (fun d ->
          Registry.gauge reg ~labels:(labels d) ~init:1
            ~help:
              "1 when the domain is correct in the paper's sense (neither \
               crashed nor parasitic; a starving domain is still correct)"
            (metric ^ "_correct"));
  }

let read_sources t =
  Array.map
    (fun s ->
      Emp.counters ~ops:(s.ops ()) ~trycs:(s.trycs ()) ~commits:(s.commits ())
        ~aborts:(s.aborts ()))
    t.sources

let update_with t now =
  Array.iteri
    (fun d c ->
      let cls = Emp.classify_counters ~first:t.last.(d) ~last:c in
      t.current.(d) <- cls;
      Registry.set_state t.class_states.(d) (state_of_cls cls);
      Instrument.set_gauge t.correct.(d) (correct_of_cls cls))
    now;
  t.last <- now;
  t.current

let update t = update_with t (read_sources t)
let rebase t = t.last <- read_sources t
let rebase_with t counters = t.last <- counters
let current t = t.current
