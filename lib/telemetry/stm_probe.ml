(* The bridge from [Stm.Tel] to the registry: event counters for the
   begin/read/commit/abort seams and nanosecond phase-latency
   histograms for the commit protocol.  The clock is bechamel's
   monotonic_clock stubs (CLOCK_MONOTONIC in nanoseconds) — tm_stm
   itself stays clock-agnostic; the unit enters here. *)

module Stm = Tm_stm.Stm

let ns_clock () = Int64.to_int (Monotonic_clock.now ())

type t = {
  begins : Instrument.counter;
  reads : Instrument.counter;
  commits : Instrument.counter;
  aborts : Instrument.counter;
  lock_ns : Instrument.histogram;
  validate_ns : Instrument.histogram;
  publish_ns : Instrument.histogram;
  commit_ns : Instrument.histogram;
  abort_ns : Instrument.histogram;
}

let register reg =
  let c name help = Registry.counter reg ~help name in
  let h name help = Registry.histogram reg ~help name in
  {
    begins =
      c "tm_stm_begins_total" "Transaction attempts started (one per retry)";
    reads = c "tm_stm_reads_total" "Validated transactional reads";
    commits = c "tm_stm_commits_total" "Transaction attempts that committed";
    aborts = c "tm_stm_aborts_total" "Transaction attempts that aborted";
    lock_ns =
      h "tm_stm_lock_acquire_ns"
        "Commit-time write-set vlock acquisition latency (write commits)";
    validate_ns =
      h "tm_stm_validate_ns"
        "Commit-time read-set validation latency (write commits)";
    publish_ns =
      h "tm_stm_publish_ns"
        "Commit-time publish-and-release latency (write commits)";
    commit_ns =
      h "tm_stm_commit_ns" "Whole-attempt latency of committed attempts";
    abort_ns = h "tm_stm_abort_ns" "Whole-attempt latency of aborted attempts";
  }

let probe_of ?(clock = ns_clock) t =
  {
    Stm.Tel.now = clock;
    count =
      (fun ph ->
        match ph with
        | Stm.Tel.Begin -> Instrument.incr t.begins
        | Stm.Tel.Read -> Instrument.incr t.reads
        | Stm.Tel.Lock | Stm.Tel.Validate | Stm.Tel.Publish | Stm.Tel.Commit
        | Stm.Tel.Abort ->
            ());
    observe =
      (fun ph d ->
        match ph with
        | Stm.Tel.Lock -> Instrument.observe t.lock_ns d
        | Stm.Tel.Validate -> Instrument.observe t.validate_ns d
        | Stm.Tel.Publish -> Instrument.observe t.publish_ns d
        | Stm.Tel.Commit ->
            Instrument.incr t.commits;
            Instrument.observe t.commit_ns d
        | Stm.Tel.Abort ->
            Instrument.incr t.aborts;
            Instrument.observe t.abort_ns d
        | Stm.Tel.Begin | Stm.Tel.Read -> ());
  }

let install ?clock reg =
  let t = register reg in
  Stm.Tel.install (probe_of ?clock t);
  t

let uninstall = Stm.Tel.uninstall
