(** Snapshot exporters: OpenMetrics/Prometheus text and JSON lines.

    Both are pure functions of a frozen {!Registry.snapshot}, so output
    bytes are deterministic whenever the scraped values are (sample
    order is registration order, label keys are sorted, escaping is
    fixed). *)

val to_openmetrics : Registry.snapshot -> string
(** Prometheus text exposition with OpenMetrics framing: one
    [# HELP]/[# TYPE] pair per metric name (first-registration order),
    counters/gauges as single lines, statesets as one 0/1 line per
    state, histograms as cumulative [_bucket{le="..."}] lines (bucket
    upper bounds, then [+Inf]) plus [_sum]/[_count]; terminated by
    [# EOF].  Hires histograms ({!Registry.Hires}) emit the same
    cumulative [_bucket] shape under the hires bounds, skipping empty
    buckets (the cumulative series is unchanged by the omission), so
    both flavours round-trip through {!parse_openmetrics} and
    {!parse_openmetrics_lax} identically. *)

type series = {
  se_name : string;
  se_labels : (string * string) list;
  se_value : float;
}

val parse_openmetrics : string -> series list
(** A minimal parser for the subset {!to_openmetrics} emits: comment and
    blank lines skipped, one {!series} per sample line.  For round-trip
    tests and scrape post-processing, not a general OpenMetrics
    parser.
    @raise Failure on lines the subset does not cover. *)

val parse_openmetrics_lax : string -> series list * string list
(** Like {!parse_openmetrics}, but never raises: every sample line the
    subset does not cover (exemplars, timestamps, summary lines, plain
    garbage) becomes a diagnostic string — ["line N: <line>: <reason>"]
    — in the second component, in line order.  An exposition of only
    comments (e.g. just [# EOF]) parses to [([], [])]. *)

val to_jsonl : Registry.snapshot -> string
(** One JSON object (no trailing newline):
    [{"ts":N,"samples":[{"name":...,"labels":{...},"value":N}
    | {...,"state":"starving"}
    | {...,"hist":{"count":..,"sum":..,"max":..,"buckets":[...]}}]}].
    Hires histograms encode their (sparse, 305-slot) buckets as
    ["sparse":[[index,count],...]] pairs instead of a dense ["buckets"]
    array.  Under the step clock equal runs produce byte-equal lines. *)
