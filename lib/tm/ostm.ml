open Tm_history

(* A commit descriptor.  Once published (by the first tryC poll) it contains
   everything needed to finish the commit, so any process can advance it —
   [advance] below is called both by the owner's polls and by helpers. *)
type phase =
  | Acquiring of Event.tvar list
  | Checking of (Event.tvar * int) list
  | Writing of (Event.tvar * Event.value) list
  | Done of bool  (** success? *)

type descriptor = {
  d_rv : int;
  d_reads : (Event.tvar * int) list;
  d_writes : (Event.tvar * Event.value) list;  (** canonical order *)
  mutable d_wv : int;
  mutable d_phase : phase;
}

type txn = {
  mutable started : bool;
  mutable rv : int;
  mutable reads : (Event.tvar * int) list;
  mutable writes : (Event.tvar * Event.value) list;  (** latest first *)
  mutable desc : descriptor option;
}

type t = {
  cfg : Tm_intf.config;
  mail : Tm_intf.Mailbox.t;
  mutable clock : int;
  value : int array;
  version : int array;
  holder : descriptor option array;  (** in-flight commit holding the var *)
  txns : txn array;
}

let name = "ostm"

let describe =
  "OSTM-style lock-free TM: deferred updates, commit descriptors, helping \
   (global progress in any fault-prone system)"

let fresh_txn () =
  { started = false; rv = 0; reads = []; writes = []; desc = None }

let create cfg =
  {
    cfg;
    mail = Tm_intf.Mailbox.create cfg;
    clock = 0;
    value = Array.make cfg.ntvars 0;
    version = Array.make cfg.ntvars 0;
    holder = Array.make cfg.ntvars None;
    txns = Array.init (cfg.nprocs + 1) (fun _ -> fresh_txn ());
  }

let invoke t p inv =
  Tm_intf.Mailbox.check_range t.cfg p inv;
  Tm_intf.Mailbox.put t.mail p inv

let begin_if_needed t p =
  let txn = t.txns.(p) in
  if not txn.started then begin
    txn.started <- true;
    txn.rv <- t.clock;
    txn.reads <- [];
    txn.writes <- [];
    txn.desc <- None
  end

let release t d =
  Array.iteri
    (fun x h ->
      match h with
      | Some d' when d' == d -> t.holder.(x) <- None
      | Some _ | None -> ())
    t.holder

(* One transition of a descriptor's commit procedure.  The owner performs
   one per poll (so a crash can strand a half-done commit); a process that
   finds a t-variable held by someone else's descriptor helps it to
   completion with [advance_full].  Helping cannot cycle because write sets
   are acquired in ascending t-variable order. *)
let rec advance_step t d =
  match d.d_phase with
  | Done _ -> ()
  | Acquiring [] ->
      t.clock <- t.clock + 1;
      d.d_wv <- t.clock;
      d.d_phase <- Checking d.d_reads
  | Acquiring (x :: rest) -> (
      match t.holder.(x) with
      | Some d' when d' != d ->
          (* Finish the other commit, then retry this acquisition on the
             next step. *)
          advance_full t d'
      | Some _ | None ->
          t.holder.(x) <- Some d;
          d.d_phase <- Acquiring rest)
  | Checking [] -> d.d_phase <- Writing d.d_writes
  | Checking ((x, _) :: rest) ->
      let held_by_other =
        match t.holder.(x) with Some d' -> d' != d | None -> false
      in
      if held_by_other || t.version.(x) > d.d_rv then begin
        release t d;
        d.d_phase <- Done false
      end
      else d.d_phase <- Checking rest
  | Writing [] ->
      release t d;
      d.d_phase <- Done true
  | Writing ((x, v) :: rest) ->
      t.value.(x) <- v;
      t.version.(x) <- d.d_wv;
      d.d_phase <- Writing rest

and advance_full t d =
  match d.d_phase with
  | Done _ -> ()
  | Acquiring _ | Checking _ | Writing _ ->
      advance_step t d;
      advance_full t d

let write_set txn =
  List.sort_uniq Int.compare (List.map fst txn.writes)
  |> List.map (fun x -> (x, List.assoc x txn.writes))

let abort t p =
  (match t.txns.(p).desc with Some d -> release t d | None -> ());
  t.txns.(p) <- fresh_txn ();
  Event.Aborted

let commit t p =
  t.txns.(p) <- fresh_txn ();
  Event.Committed

let poll t p =
  match Tm_intf.Mailbox.get t.mail p with
  | None -> None
  | Some inv ->
      begin_if_needed t p;
      let txn = t.txns.(p) in
      let answer resp =
        Tm_intf.Mailbox.clear t.mail p;
        Some resp
      in
      (match inv with
      | Event.Read x -> (
          match List.assoc_opt x txn.writes with
          | Some v -> answer (Event.Value v)
          | None ->
              (* Help any in-flight commit holding x to completion, then
                 read. *)
              (match t.holder.(x) with
              | Some d -> advance_full t d
              | None -> ());
              if t.version.(x) > txn.rv then answer (abort t p)
              else begin
                txn.reads <- (x, t.version.(x)) :: txn.reads;
                answer (Event.Value t.value.(x))
              end)
      | Event.Write (x, v) ->
          txn.writes <- (x, v) :: txn.writes;
          answer Event.Ok_written
      | Event.Try_commit -> (
          match txn.desc with
          | None ->
              if write_set txn = [] then
                (* Read-only: reads were validated against rv as they
                   happened. *)
                answer (commit t p)
              else begin
                let d =
                  {
                    d_rv = txn.rv;
                    d_reads = txn.reads;
                    d_writes = write_set txn;
                    d_wv = 0;
                    d_phase = Acquiring (List.map fst (write_set txn));
                  }
                in
                txn.desc <- Some d;
                (* One poll publishes the descriptor; the next drives it.
                   Helpers may finish it in between. *)
                None
              end
          | Some d -> (
              advance_step t d;
              match d.d_phase with
              | Done true -> answer (commit t p)
              | Done false -> answer (abort t p)
              | Acquiring _ | Checking _ | Writing _ -> None)))

let pending t p = Tm_intf.Mailbox.get t.mail p
