open Tm_history

(** An online opacity monitor: a linear-time witness constructor.

    The full checker ({!Opacity}) decides opacity exactly but searches over
    serializations — fine for figures and short runs, hopeless for a
    100 000-event simulation.  This monitor processes events one at a time
    and maintains, per live transaction, the set of {e snapshot points} at
    which its reads are simultaneously value-consistent with the committed
    store.  A transaction is accepted if:

    - it is read-only or aborted, and some snapshot point falls within its
      lifetime; or
    - it commits writes, and the commit instant itself is a valid snapshot
      point (every read still matches the committed store, own writes
      aside).

    Accepting every transaction yields a legal, real-time-preserving
    serialization (order transactions by their snapshot/commit points), so
    [`Accepted] {e implies opacity} — the monitor is sound.  It is not
    complete: an opaque history whose only witnesses reorder commits away
    from their real-time commit order is reported as [`No_witness], never
    as a violation.  Every single-version TM in the zoo commits in store
    order, so their histories are all accepted; the multiversion TM's
    read-only transactions are accepted at their (earlier) snapshot
    points. *)

type t

val create : unit -> t

val step : t -> Event.t -> unit
(** Feed the next event.  @raise Invalid_argument on a non-well-formed
    event sequence. *)

type verdict =
  | Accepted  (** a serialization witness exists: the history is opaque *)
  | No_witness of string
      (** the monitor's sufficient condition failed (with the first
          offending transaction); the history may or may not be opaque —
          fall back to {!Opacity.is_opaque} *)

val verdict : t -> verdict
(** The verdict for the events fed so far.  Live transactions are treated
    as aborted-at-the-end (commit-pending ones as either, like the full
    checker). *)

val run : History.t -> verdict
(** Feed a whole history. *)

val run_traced : trace:Tm_trace.Sink.t -> History.t -> verdict
(** Like {!run}, but streams the monitor's progress into the sink as it
    goes: an ["epoch"] counter each time a commit is applied, a
    ["no-witness"] instant the moment the sufficient condition first
    fails, and a final ["verdict"] instant.  Timestamps are history-event
    indexes, the same deterministic step clock {!Tm_sim.Runner} traces
    use, so monitor events interleave correctly with runner spans. *)
