open Tm_history

(* Epoch = number of commits applied so far.  The committed value of a
   t-variable during epoch interval [from, next_from) is recorded in a
   newest-first version list; every t-variable implicitly starts with
   (0, 0).

   Reads are recorded and evaluated lazily when the transaction finishes:
   by then the version history covers the transaction's whole lifetime, so
   the set of epochs at which the entire read set is simultaneously
   consistent is exact. *)

type txn = {
  start_epoch : int;
  mutable reads : (Event.tvar * Event.value) list;  (** non-own reads *)
  mutable writes : (Event.tvar * Event.value) list;  (** latest first *)
  mutable commit_pending : bool;
}

type t = {
  mutable epoch : int;
  versions : (Event.tvar, (int * Event.value) list) Hashtbl.t;
  pending : (Event.proc, Event.invocation) Hashtbl.t;
  txns : (Event.proc, txn) Hashtbl.t;
  mutable failed : string option;
}

let create () =
  {
    epoch = 0;
    versions = Hashtbl.create 16;
    pending = Hashtbl.create 8;
    txns = Hashtbl.create 8;
    failed = None;
  }

let versions_of t x =
  match Hashtbl.find_opt t.versions x with
  | Some vs -> vs
  | None -> [ (0, 0) ]

(* Inclusive epoch intervals during which x held value v; [max_int] means
   "through the present". *)
let intervals_for t x v =
  let rec go upper = function
    | [] -> []
    | (from, value) :: rest ->
        let seg = if value = v && upper >= from then [ (from, upper) ] else [] in
        seg @ go (from - 1) rest
  in
  go max_int (versions_of t x)

let intersect l1 l2 =
  List.concat_map
    (fun (a1, b1) ->
      List.filter_map
        (fun (a2, b2) ->
          let a = max a1 a2 and b = min b1 b2 in
          if a <= b then Some (a, b) else None)
        l2)
    l1

(* Epochs within [lo, hi] at which every read of the transaction is
   simultaneously consistent. *)
let candidates t txn ~lo ~hi =
  List.fold_left
    (fun acc (x, v) -> intersect acc (intervals_for t x v))
    [ (lo, hi) ] txn.reads

let has_point t txn ~lo ~hi = candidates t txn ~lo ~hi <> []

let fresh_txn t =
  { start_epoch = t.epoch; reads = []; writes = []; commit_pending = false }

let txn_of t p =
  match Hashtbl.find_opt t.txns p with
  | Some txn -> txn
  | None ->
      let txn = fresh_txn t in
      Hashtbl.replace t.txns p txn;
      txn

let fail t msg = if t.failed = None then t.failed <- Some msg

let finish_aborted t p txn =
  if not (has_point t txn ~lo:txn.start_epoch ~hi:t.epoch) then
    fail t
      (Fmt.str "aborted transaction of p%d has no consistent snapshot point"
         p);
  Hashtbl.remove t.txns p

let finish_committed t p txn =
  (match txn.writes with
  | [] ->
      if not (has_point t txn ~lo:txn.start_epoch ~hi:t.epoch) then
        fail t
          (Fmt.str
             "read-only committed transaction of p%d has no consistent \
              snapshot point"
             p)
  | writes ->
      (* A committed writer serializes at its commit instant: the reads
         must be consistent with the current committed store. *)
      if not (has_point t txn ~lo:t.epoch ~hi:t.epoch) then
        fail t
          (Fmt.str
             "committed transaction of p%d is not consistent at its commit \
              instant"
             p);
      t.epoch <- t.epoch + 1;
      (* The transaction's final value per variable is its latest write;
         [txn.writes] is latest-first, so [assoc] finds it. *)
      let vars = List.sort_uniq Int.compare (List.map fst writes) in
      List.iter
        (fun x ->
          let v = List.assoc x txn.writes in
          Hashtbl.replace t.versions x ((t.epoch, v) :: versions_of t x))
        vars);
  Hashtbl.remove t.txns p

let step t e =
  match e with
  | Event.Inv (p, inv) -> (
      match Hashtbl.find_opt t.pending p with
      | Some _ -> invalid_arg "Monitor.step: pending invocation exists"
      | None ->
          Hashtbl.replace t.pending p inv;
          let txn = txn_of t p in
          if inv = Event.Try_commit then txn.commit_pending <- true)
  | Event.Res (p, r) -> (
      let inv =
        match Hashtbl.find_opt t.pending p with
        | Some i -> i
        | None -> invalid_arg "Monitor.step: response without invocation"
      in
      Hashtbl.remove t.pending p;
      let txn = txn_of t p in
      txn.commit_pending <- false;
      match (inv, r) with
      | Event.Read x, Event.Value v -> (
          match List.assoc_opt x txn.writes with
          | Some own ->
              if own <> v then
                fail t
                  (Fmt.str
                     "p%d read %d from x%d shadowed by its own write of %d"
                     p v x own)
          | None -> txn.reads <- (x, v) :: txn.reads)
      | Event.Write (x, v), Event.Ok_written ->
          txn.writes <- (x, v) :: txn.writes
      | Event.Try_commit, Event.Committed -> finish_committed t p txn
      | _, Event.Aborted -> finish_aborted t p txn
      | (Event.Read _ | Event.Write _ | Event.Try_commit), _ ->
          invalid_arg "Monitor.step: mismatched response")

type verdict = Accepted | No_witness of string

let verdict t =
  match t.failed with
  | Some msg -> No_witness msg
  | None ->
      (* Close out live transactions: commit-pending ones may be taken
         either way (committed-last or aborted); others are aborted. *)
      let bad = ref None in
      Hashtbl.iter
        (fun p txn ->
          if !bad = None then
            let aborted_ok = has_point t txn ~lo:txn.start_epoch ~hi:t.epoch in
            let committed_ok =
              txn.commit_pending && has_point t txn ~lo:t.epoch ~hi:t.epoch
            in
            if not (aborted_ok || committed_ok) then
              bad :=
                Some
                  (Fmt.str
                     "live transaction of p%d has no consistent snapshot \
                      point"
                     p))
        t.txns;
      (match !bad with Some m -> No_witness m | None -> Accepted)

let run h =
  let t = create () in
  List.iter (step t) (History.events h);
  verdict t

module Tev = Tm_trace.Trace_event

let run_traced ~trace h =
  let emit e = trace.Tm_trace.Sink.emit e in
  let t = create () in
  let i = ref 0 in
  List.iter
    (fun e ->
      let epoch_before = t.epoch and failed_before = t.failed in
      step t e;
      (* The monitor's clock is the history-event index, the same step
         clock the runner's trace uses: streamed monitor events line up
         with the runner's spans. *)
      if t.epoch <> epoch_before then
        emit (Tev.counter ~ts:!i ~tid:(Event.proc e) Tev.Monitor "epoch" t.epoch);
      (match (failed_before, t.failed) with
      | None, Some msg ->
          emit
            (Tev.instant ~ts:!i ~tid:(Event.proc e) Tev.Monitor "no-witness"
               [ ("msg", Tev.Str msg) ])
      | _ -> ());
      incr i)
    (History.events h);
  let v = verdict t in
  let args =
    match v with
    | Accepted -> [ ("result", Tev.Str "accepted") ]
    | No_witness msg ->
        [ ("result", Tev.Str "no-witness"); ("msg", Tev.Str msg) ]
  in
  emit (Tev.instant ~ts:!i ~tid:0 Tev.Monitor "verdict" args);
  v
