let event_to_string = function
  | Event.Inv (p, Event.Read x) -> Printf.sprintf "inv %d read %d" p x
  | Event.Inv (p, Event.Write (x, v)) -> Printf.sprintf "inv %d write %d %d" p x v
  | Event.Inv (p, Event.Try_commit) -> Printf.sprintf "inv %d tryc" p
  | Event.Res (p, Event.Value v) -> Printf.sprintf "res %d value %d" p v
  | Event.Res (p, Event.Ok_written) -> Printf.sprintf "res %d ok" p
  | Event.Res (p, Event.Committed) -> Printf.sprintf "res %d commit" p
  | Event.Res (p, Event.Aborted) -> Printf.sprintf "res %d abort" p

let event_of_string line =
  let fail () = Error (Printf.sprintf "cannot parse event: %S" line) in
  let int s = int_of_string_opt s in
  match String.split_on_char ' ' (String.trim line) with
  | [ "inv"; p; "read"; x ] -> (
      match (int p, int x) with
      | Some p, Some x -> Ok (Event.Inv (p, Event.Read x))
      | _ -> fail ())
  | [ "inv"; p; "write"; x; v ] -> (
      match (int p, int x, int v) with
      | Some p, Some x, Some v -> Ok (Event.Inv (p, Event.Write (x, v)))
      | _ -> fail ())
  | [ "inv"; p; "tryc" ] -> (
      match int p with
      | Some p -> Ok (Event.Inv (p, Event.Try_commit))
      | None -> fail ())
  | [ "res"; p; "value"; v ] -> (
      match (int p, int v) with
      | Some p, Some v -> Ok (Event.Res (p, Event.Value v))
      | _ -> fail ())
  | [ "res"; p; "ok" ] -> (
      match int p with
      | Some p -> Ok (Event.Res (p, Event.Ok_written))
      | None -> fail ())
  | [ "res"; p; "commit" ] -> (
      match int p with
      | Some p -> Ok (Event.Res (p, Event.Committed))
      | None -> fail ())
  | [ "res"; p; "abort" ] -> (
      match int p with
      | Some p -> Ok (Event.Res (p, Event.Aborted))
      | None -> fail ())
  | _ -> fail ()

let history_to_string h =
  String.concat "\n" (List.map event_to_string (History.events h)) ^ "\n"

let meaningful line =
  let t = String.trim line in
  t <> "" && t.[0] <> '#'

let parse_events lines =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match event_of_string line with
        | Ok e -> go (e :: acc) rest
        | Error m -> Error m)
  in
  go [] (List.filter meaningful lines)

let history_of_string_lax s =
  match parse_events (String.split_on_char '\n' s) with
  | Error m -> Error m
  | Ok events -> Ok (History.of_events events)

let history_of_string s =
  match history_of_string_lax s with
  | Error _ as e -> e
  | Ok h -> (
      match History.well_formed h with
      | Ok () -> Ok h
      | Error m -> Error ("ill-formed history: " ^ m))

let lasso_to_string (l : Lasso.t) =
  String.concat "\n"
    (List.map event_to_string l.stem
    @ [ "cycle:" ]
    @ List.map event_to_string l.cycle)
  ^ "\n"

let lasso_of_string s =
  let lines = String.split_on_char '\n' s in
  let rec split stem = function
    | [] -> Error "lasso file has no 'cycle:' separator"
    | line :: rest when String.trim line = "cycle:" -> Ok (List.rev stem, rest)
    | line :: rest -> split (line :: stem) rest
  in
  match split [] lines with
  | Error m -> Error m
  | Ok (stem_lines, cycle_lines) -> (
      match (parse_events stem_lines, parse_events cycle_lines) with
      | Ok stem, Ok cycle -> Lasso.check ~stem ~cycle
      | Error m, _ | _, Error m -> Error m)
