(** Plain-text (de)serialization of histories and lassos.

    One event per line, in a stable format:
    {v
    inv 1 read 0
    res 1 value 0
    inv 1 write 0 5
    res 1 ok
    inv 1 tryc
    res 1 commit
    res 2 abort
    v}
    Lasso files separate the stem from the cycle with a single [cycle:]
    line.  Blank lines and lines starting with [#] are ignored.  Used by
    the CLI to dump and re-check traces, and round-trip-tested. *)

val event_to_string : Event.t -> string
val event_of_string : string -> (Event.t, string) result

val history_to_string : History.t -> string

val history_of_string : string -> (History.t, string) result
(** Parses and rejects ill-formed histories. *)

val history_of_string_lax : string -> (History.t, string) result
(** Parses without the well-formedness check, so that analysis tools
    (e.g. [tmlive analyze]) can load a broken history and report {e what}
    is wrong with it rather than merely that parsing failed. *)

val lasso_to_string : Lasso.t -> string
val lasso_of_string : string -> (Lasso.t, string) result
