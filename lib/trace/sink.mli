(** Pluggable trace sinks.

    Instrumented code never formats or stores events itself; it hands each
    event to a sink.  {!null} discards (for measuring pure emission cost);
    a {!collector} accumulates everything in order (the simulator's
    recorder — unbounded, use on bounded runs); {!Ring.sink} keeps the most
    recent events in a fixed-size buffer (the multicore runtime's
    per-domain sink). *)

type t = { emit : Trace_event.t -> unit }

val null : t
(** Discards every event. *)

val of_fn : (Trace_event.t -> unit) -> t

(** {2 Collector} *)

type collector
(** An unbounded in-order accumulator. *)

val collector : unit -> collector
val collector_sink : collector -> t

val collected : collector -> Trace_event.t list
(** Events in emission order. *)

val collected_count : collector -> int
