type t = { emit : Trace_event.t -> unit }

let null = { emit = ignore }
let of_fn f = { emit = f }

type collector = { mutable rev_events : Trace_event.t list; mutable n : int }

let collector () = { rev_events = []; n = 0 }

let collector_sink c =
  {
    emit =
      (fun e ->
        c.rev_events <- e :: c.rev_events;
        c.n <- c.n + 1);
  }

let collected c = List.rev c.rev_events
let collected_count c = c.n
