type category = Txn | Lock | Validation | Backoff | Fault | Monitor | Sched

type arg = Int of int | Str of string

type phase = Span_begin | Span_end | Instant | Counter of int | Metadata

type t = {
  ts : int;
  pid : int;
  tid : int;
  cat : category;
  name : string;
  phase : phase;
  args : (string * arg) list;
}

let category_label = function
  | Txn -> "txn"
  | Lock -> "lock"
  | Validation -> "validation"
  | Backoff -> "backoff"
  | Fault -> "fault"
  | Monitor -> "monitor"
  | Sched -> "sched"

let category_of_label = function
  | "txn" -> Some Txn
  | "lock" -> Some Lock
  | "validation" -> Some Validation
  | "backoff" -> Some Backoff
  | "fault" -> Some Fault
  | "monitor" -> Some Monitor
  | "sched" -> Some Sched
  | _ -> None

let phase_code = function
  | Span_begin -> "B"
  | Span_end -> "E"
  | Instant -> "i"
  | Counter _ -> "C"
  | Metadata -> "M"

let instant ~ts ?(pid = 0) ~tid cat name args =
  { ts; pid; tid; cat; name; phase = Instant; args }

let counter ~ts ?(pid = 0) ~tid cat name v =
  { ts; pid; tid; cat; name; phase = Counter v; args = [] }

let span_begin ~ts ?(pid = 0) ~tid cat name args =
  { ts; pid; tid; cat; name; phase = Span_begin; args }

let span_end ~ts ?(pid = 0) ~tid cat name args =
  { ts; pid; tid; cat; name; phase = Span_end; args }

let equal (a : t) (b : t) = a = b

let pp_arg ppf (k, v) =
  match v with
  | Int n -> Fmt.pf ppf "%s=%d" k n
  | Str s -> Fmt.pf ppf "%s=%s" k (String.escaped s)

let pp ppf e =
  Fmt.pf ppf "%6d %d/%-2d %-10s %-2s %s" e.ts e.pid e.tid
    (category_label e.cat) (phase_code e.phase) e.name;
  (match e.phase with Counter v -> Fmt.pf ppf "=%d" v | _ -> ());
  List.iter (fun a -> Fmt.pf ppf " %a" pp_arg a) e.args

(* --- finding-friendly accessors (used by Tm_analysis) --- *)

let arg_int e k =
  match List.assoc_opt k e.args with Some (Int v) -> Some v | _ -> None

let arg_str e k =
  match List.assoc_opt k e.args with Some (Str s) -> Some s | _ -> None

let tvar e = arg_int e "tvar"
let outcome e = arg_str e "outcome"

let is_span_begin e = e.phase = Span_begin
let is_span_end e = e.phase = Span_end
let is_instant e = e.phase = Instant

let is_named e cat name = e.cat = cat && e.name = name

let by_ts es =
  List.stable_sort (fun (a : t) b -> Int.compare a.ts b.ts) es
