(** A fixed-capacity ring buffer of trace events.

    Bounded by construction: once full, each new event overwrites the
    oldest one and bumps {!dropped}.  Single-writer — the multicore STM
    gives each domain its own ring, so [add] needs no synchronization. *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : t -> int

val length : t -> int
(** Events currently retained ([<= capacity]). *)

val total : t -> int
(** Events ever added. *)

val dropped : t -> int
(** [max 0 (total - capacity)]: events overwritten by newer ones. *)

val add : t -> Trace_event.t -> unit

val sink : t -> Sink.t

val to_list : t -> Trace_event.t list
(** Retained events, oldest first. *)

val clear : t -> unit
