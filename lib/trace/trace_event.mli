(** The trace-event model: spans, instants, counters and metadata records,
    tagged with a category, a clock value and a (pid, tid) lane.

    The model deliberately mirrors the Chrome [trace_event] format (the
    input format of Perfetto): a {!Span_begin}/{!Span_end} pair brackets a
    duration on one lane, an {!Instant} marks a point, a {!Counter} samples
    a numeric series, and {!Metadata} names a lane.  {!Export} serializes
    event lists to that format (and back).

    Timestamps are {e logical}: the simulator stamps events with its
    deterministic step clock (the history-event index, see
    {!Tm_sim.Runner}), the multicore STM with a global emission sequence
    number.  Wall-clock time never appears in an event, so simulator traces
    are bit-for-bit reproducible from a seed. *)

(** What subsystem the event belongs to.  One category per instrumented
    concern, so Perfetto's category filter isolates each. *)
type category =
  | Txn  (** transaction-attempt spans, outcomes, [Retry] *)
  | Lock  (** commit-lock acquisition / contention *)
  | Validation  (** read-set validation failures *)
  | Backoff  (** contention backoff waits *)
  | Fault  (** fault injection: crashes, parasitic turns *)
  | Monitor  (** safety-monitor verdicts and commit epochs *)
  | Sched  (** scheduler-level events: defers (poll counts), metadata *)

type arg = Int of int | Str of string

type phase =
  | Span_begin  (** Chrome ["B"]: opens a span on this (pid, tid) lane *)
  | Span_end  (** Chrome ["E"]: closes the innermost open span *)
  | Instant  (** Chrome ["i"], thread-scoped *)
  | Counter of int  (** Chrome ["C"]: a sample of the series [name] *)
  | Metadata  (** Chrome ["M"]: names a process/thread lane *)

type t = {
  ts : int;  (** logical timestamp (step clock / emission sequence) *)
  pid : int;  (** process lane: run index in a grid trace, 0 otherwise *)
  tid : int;  (** thread lane: simulated process or domain id *)
  cat : category;
  name : string;
  phase : phase;
  args : (string * arg) list;
}

val category_label : category -> string
(** ["txn"], ["lock"], ["validation"], ["backoff"], ["fault"],
    ["monitor"], ["sched"]. *)

val category_of_label : string -> category option

val phase_code : phase -> string
(** The Chrome [ph] code: ["B"], ["E"], ["i"], ["C"], ["M"]. *)

val instant : ts:int -> ?pid:int -> tid:int -> category -> string ->
  (string * arg) list -> t

val counter : ts:int -> ?pid:int -> tid:int -> category -> string -> int -> t

val span_begin : ts:int -> ?pid:int -> tid:int -> category -> string ->
  (string * arg) list -> t

val span_end : ts:int -> ?pid:int -> tid:int -> category -> string ->
  (string * arg) list -> t

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** One-line text form: [ts pid/tid category phase name k=v ...]. *)

(** {2 Finding-friendly accessors}

    Small helpers for analyzers that pattern-match on event streams
    (see [Tm_analysis]), so rule code reads as protocol logic rather than
    association-list plumbing. *)

val arg_int : t -> string -> int option
(** [arg_int e k] is the integer argument named [k], if any. *)

val arg_str : t -> string -> string option

val tvar : t -> int option
(** The conventional ["tvar"] integer argument (lock and publish events). *)

val outcome : t -> string option
(** The conventional ["outcome"] string argument (attempt span ends). *)

val is_span_begin : t -> bool
val is_span_end : t -> bool
val is_instant : t -> bool

val is_named : t -> category -> string -> bool
(** [is_named e cat name] holds iff [e] belongs to [cat] and is called
    [name]. *)

val by_ts : t list -> t list
(** Stable sort by logical timestamp — the canonical analysis order. *)
