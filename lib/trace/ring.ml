type t = {
  buf : Trace_event.t array;
  cap : int;
  mutable next : int;  (** slot the next event goes into *)
  mutable n : int;  (** total events ever added *)
}

let dummy =
  {
    Trace_event.ts = 0;
    pid = 0;
    tid = 0;
    cat = Trace_event.Sched;
    name = "";
    phase = Trace_event.Instant;
    args = [];
  }

let create ~capacity =
  if capacity < 1 then invalid_arg "Ring.create: capacity must be positive";
  { buf = Array.make capacity dummy; cap = capacity; next = 0; n = 0 }

let capacity r = r.cap
let length r = min r.n r.cap
let total r = r.n
let dropped r = max 0 (r.n - r.cap)

let add r e =
  r.buf.(r.next) <- e;
  r.next <- (r.next + 1) mod r.cap;
  r.n <- r.n + 1

let sink r = Sink.of_fn (add r)

let to_list r =
  let len = length r in
  let first = if r.n <= r.cap then 0 else r.next in
  List.init len (fun i -> r.buf.((first + i) mod r.cap))

let clear r =
  r.next <- 0;
  r.n <- 0
