(* Chrome trace_event array format.  Keys are emitted in a fixed order and
   integers are plain decimals, so equal event lists serialize to
   byte-identical strings — the determinism tests compare raw bytes. *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_args b args =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      escape_string b k;
      Buffer.add_char b ':';
      match v with
      | Trace_event.Int n -> Buffer.add_string b (string_of_int n)
      | Trace_event.Str s -> escape_string b s)
    args;
  Buffer.add_char b '}'

let add_event b (e : Trace_event.t) =
  let args =
    match e.phase with
    | Trace_event.Counter v -> ("value", Trace_event.Int v) :: e.args
    | _ -> e.args
  in
  Buffer.add_string b "{\"name\":";
  escape_string b e.name;
  Buffer.add_string b ",\"cat\":\"";
  Buffer.add_string b (Trace_event.category_label e.cat);
  Buffer.add_string b "\",\"ph\":\"";
  Buffer.add_string b (Trace_event.phase_code e.phase);
  Buffer.add_string b "\",\"ts\":";
  Buffer.add_string b (string_of_int e.ts);
  Buffer.add_string b ",\"pid\":";
  Buffer.add_string b (string_of_int e.pid);
  Buffer.add_string b ",\"tid\":";
  Buffer.add_string b (string_of_int e.tid);
  (match e.phase with
  | Trace_event.Instant -> Buffer.add_string b ",\"s\":\"t\""
  | _ -> ());
  Buffer.add_string b ",\"args\":";
  add_args b args;
  Buffer.add_char b '}'

let chrome_buffer events =
  let b = Buffer.create (256 * (1 + List.length events)) in
  Buffer.add_string b "[\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string b ",\n";
      add_event b e)
    events;
  Buffer.add_string b "\n]\n";
  b

let chrome_string events = Buffer.contents (chrome_buffer events)

let to_chrome_channel oc events = Buffer.output_buffer oc (chrome_buffer events)

(* --- minimal JSON reader, just enough for the format above --- *)

type json =
  | J_int of int
  | J_str of string
  | J_list of json list
  | J_obj of (string * json) list

exception Parse_error of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char b '"'; go ()
          | Some '\\' -> advance (); Buffer.add_char b '\\'; go ()
          | Some '/' -> advance (); Buffer.add_char b '/'; go ()
          | Some 'n' -> advance (); Buffer.add_char b '\n'; go ()
          | Some 't' -> advance (); Buffer.add_char b '\t'; go ()
          | Some 'r' -> advance (); Buffer.add_char b '\r'; go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              pos := !pos + 4;
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else fail "non-ascii \\u escape unsupported";
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_int () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while
      !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false
    do
      advance ()
    done;
    if !pos = start then fail "expected integer";
    match int_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail "bad integer"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> J_str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); J_obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          J_obj (members [])
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); J_list [])
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elems (v :: acc)
            | Some ']' -> advance (); List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          J_list (elems [])
    | Some ('-' | '0' .. '9') -> J_int (parse_int ())
    | _ -> fail "unexpected character"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing data";
  v

let event_of_json j =
  let fail msg = raise (Parse_error msg) in
  let fields = match j with J_obj kvs -> kvs | _ -> fail "event not an object" in
  let find k = List.assoc_opt k fields in
  let get_str k =
    match find k with
    | Some (J_str s) -> s
    | _ -> fail (Printf.sprintf "missing string field %S" k)
  in
  let get_int k =
    match find k with
    | Some (J_int v) -> v
    | _ -> fail (Printf.sprintf "missing integer field %S" k)
  in
  let cat =
    let label = get_str "cat" in
    match Trace_event.category_of_label label with
    | Some c -> c
    | None -> fail (Printf.sprintf "unknown category %S" label)
  in
  let args =
    match find "args" with
    | Some (J_obj kvs) ->
        List.map
          (fun (k, v) ->
            match v with
            | J_int n -> (k, Trace_event.Int n)
            | J_str s -> (k, Trace_event.Str s)
            | _ -> fail "unsupported arg value")
          kvs
    | None -> []
    | Some _ -> fail "args not an object"
  in
  let phase, args =
    match get_str "ph" with
    | "B" -> (Trace_event.Span_begin, args)
    | "E" -> (Trace_event.Span_end, args)
    | "i" | "I" -> (Trace_event.Instant, args)
    | "M" -> (Trace_event.Metadata, args)
    | "C" -> (
        match List.assoc_opt "value" args with
        | Some (Trace_event.Int v) ->
            (Trace_event.Counter v, List.remove_assoc "value" args)
        | _ -> fail "counter event without integer \"value\" arg")
    | code -> fail (Printf.sprintf "unknown phase %S" code)
  in
  {
    Trace_event.ts = get_int "ts";
    pid = get_int "pid";
    tid = get_int "tid";
    cat;
    name = get_str "name";
    phase;
    args;
  }

let of_chrome_string s =
  try
    match parse_json s with
    | J_list items -> Ok (List.map event_of_json items)
    | _ -> Error "top-level JSON value is not an array"
  with Parse_error msg -> Error msg

let pp_text ppf events =
  List.iter (fun e -> Fmt.pf ppf "%a@." Trace_event.pp e) events

let text_string events = Fmt.str "%a" pp_text events
