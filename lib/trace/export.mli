(** Trace serialization.

    The JSON form is the Chrome [trace_event] array format, loadable in
    Perfetto (ui.perfetto.dev) and [chrome://tracing].  Serialization is
    deterministic: fixed key order, no whitespace variation — equal event
    lists produce byte-identical strings. *)

val chrome_string : Trace_event.t list -> string
(** JSON array of trace_event objects. *)

val to_chrome_channel : out_channel -> Trace_event.t list -> unit

val of_chrome_string : string -> (Trace_event.t list, string) result
(** Parses JSON produced by {!chrome_string} back into events.
    [of_chrome_string (chrome_string evs) = Ok evs] for any [evs]. *)

val text_string : Trace_event.t list -> string
(** Compact human-readable dump, one event per line. *)

val pp_text : Format.formatter -> Trace_event.t list -> unit
