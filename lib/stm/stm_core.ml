(* Shared substrate of the real-domains STM algorithm zoo.

   Everything algorithm-independent lives here: the t-variable
   representation, the universal-type trick for heterogeneous
   read/write sets, the three zero-cost observation seams ([Trace],
   [Chaos], [Tel]) and the core interface [S] that each algorithm
   implements.  The [Stm] facade dispatches the public API to the
   currently selected core; the cores themselves live in [Stm_tl2],
   [Stm_glock], [Stm_dstm] and [Stm_norec].

   Type erasure for the heterogeneous read/write sets uses the
   universal type trick: every t-variable carries its own
   injection/projection pair built from a locally generated
   extensible-variant constructor, so no [Obj] is needed. *)

type univ = exn

(* DSTM-style locator: the committed value of a t-variable owned by a
   transaction is derived from the owner's status.  [l_status] is the
   owner transaction's status cell (shared across all its locators):
   0 = active, 1 = committed, 2 = aborted; transitions are monotone
   and terminal (only 0->1 and 0->2 ever happen).  Non-DSTM cores
   ignore the locator entirely. *)
type locator = {
  l_status : int Atomic.t;
  l_old : univ;
  mutable l_new : univ;
  l_owner : int;
      (* plan slot of the installing transaction's domain when the Blame
         seam is armed, -1 otherwise — lets a stealer name its victim *)
}

type 'a tvar = {
  id : int;
  content : 'a Atomic.t;
  vlock : int Atomic.t;
  locator : locator Atomic.t;
  owner : int Atomic.t;
      (* plan slot of the last lock holder / committed writer, written
         only while the Blame seam is armed (-1 = unknown) *)
  inj : 'a -> univ;
  proj : univ -> 'a option;
}

let next_id = Atomic.make 0

(* All freshly created t-variables share one permanently-committed
   status cell: a steal (CAS 0 -> 2) on it can never succeed, and no
   transaction ever owns it. *)
let root_status = Atomic.make 1

module Tev = Tm_trace.Trace_event

(* Runtime tracing.  The hot path pays one [Atomic.get] on a global flag
   per potential event; when the flag is false no event is even
   constructed.  When on, each domain writes into its own fixed-size ring
   (single-writer, no lock on the emit path) registered in a global list
   so [events] can collect them afterwards.  Timestamps come from a global
   emission sequence — they give a total order of emissions, not wall
   time. *)
module Trace = struct
  type mode = Off | Null | Rings of int

  let tracing = Atomic.make false
  let mode = Atomic.make Off
  let generation = Atomic.make 0
  let seq = Atomic.make 0
  let emitted_count = Atomic.make 0
  let registry_mu = Mutex.create ()
  let registry : Tm_trace.Ring.t list ref = ref []

  let slot : (int * Tm_trace.Ring.t) option ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref None)

  let default_capacity = 4096

  let reset_locked m =
    registry := [];
    Atomic.incr generation;
    Atomic.set seq 0;
    Atomic.set emitted_count 0;
    Atomic.set mode m;
    Atomic.set tracing (m <> Off)

  let start ?(capacity = default_capacity) () =
    if capacity < 1 then invalid_arg "Stm.Trace.start: capacity must be positive";
    Mutex.protect registry_mu (fun () -> reset_locked (Rings capacity))

  let start_null () = Mutex.protect registry_mu (fun () -> reset_locked Null)

  let stop () =
    Mutex.protect registry_mu (fun () ->
        Atomic.set tracing false;
        Atomic.set mode Off)

  let is_on () = Atomic.get tracing

  (* The per-domain ring is cached in DLS together with the generation it
     belongs to, so a stale ring from a previous [start] is never written
     into the current session. *)
  let ring_for_domain gen =
    let r = Domain.DLS.get slot in
    match !r with
    | Some (g, ring) when g = gen -> Some ring
    | _ -> (
        match Atomic.get mode with
        | Rings cap ->
            let ring = Tm_trace.Ring.create ~capacity:cap in
            let registered =
              Mutex.protect registry_mu (fun () ->
                  if Atomic.get generation = gen then begin
                    registry := ring :: !registry;
                    true
                  end
                  else false)
            in
            if registered then begin
              r := Some (gen, ring);
              Some ring
            end
            else None
        | Off | Null -> None)

  let emit cat name phase args =
    let ts = Atomic.fetch_and_add seq 1 in
    let tid = (Domain.self () :> int) in
    let e = { Tev.ts; pid = 0; tid; cat; name; phase; args } in
    Atomic.incr emitted_count;
    match Atomic.get mode with
    | Off | Null -> ()
    | Rings _ -> (
        match ring_for_domain (Atomic.get generation) with
        | Some ring -> Tm_trace.Ring.add ring e
        | None -> ())

  let events () =
    let evs =
      Mutex.protect registry_mu (fun () ->
          List.concat_map Tm_trace.Ring.to_list !registry)
    in
    List.sort (fun (a : Tev.t) b -> Int.compare a.ts b.ts) evs

  let dropped () =
    Mutex.protect registry_mu (fun () ->
        List.fold_left (fun acc r -> acc + Tm_trace.Ring.dropped r) 0 !registry)

  let emitted () = Atomic.get emitted_count
end

let tvar (type a) (init : a) : a tvar =
  let module M = struct
    exception E of a
  end in
  let inj x = M.E x in
  let u0 = inj init in
  {
    id = Atomic.fetch_and_add next_id 1;
    content = Atomic.make init;
    vlock = Atomic.make 0;
    locator =
      Atomic.make { l_status = root_status; l_old = u0; l_new = u0; l_owner = -1 };
    owner = Atomic.make (-1);
    inj;
    proj = (function M.E x -> Some x | _ -> None);
  }

exception Retry
exception Conflict

(* Deterministic fault injection.  Same zero-cost discipline as [Trace]:
   every interception point costs one [Atomic.get] on [armed] when no
   plan is installed, and only consults the handler when armed.  The
   handler decides per point: proceed, abort the attempt (a normal
   conflict, counted and retried), stall (bounded spinning), or crash.
   [Crashed] escapes [atomically] through its generic exception arm
   without releasing any commit locks the domain holds — a crash at
   [Pre_commit] is therefore the paper's crashed-lock-holder adversary,
   observable on real domains.  Where each point fires is
   algorithm-specific; see [Stm.Algo] for the per-core mapping. *)
module Chaos = struct
  type point = Read | Validate | Lock_acquire | Pre_commit | Post_commit
  type action = Proceed | Abort | Stall of int | Crash

  exception Crashed

  let null_handler : point -> action = fun _ -> Proceed
  let armed = Atomic.make false
  let handler = Atomic.make null_handler

  let install f =
    Atomic.set handler f;
    Atomic.set armed true

  let uninstall () =
    Atomic.set armed false;
    Atomic.set handler null_handler

  let is_armed () = Atomic.get armed

  let point_label = function
    | Read -> "read"
    | Validate -> "validate"
    | Lock_acquire -> "lock-acquire"
    | Pre_commit -> "pre-commit"
    | Post_commit -> "post-commit"

  let stall n =
    for _ = 1 to n do
      Domain.cpu_relax ()
    done

  let decide p = if Atomic.get armed then (Atomic.get handler) p else Proceed

  (* Interpretation for points where the domain holds no commit locks;
     commit paths interpret actions themselves so an [Abort] can back
     out whatever the core already holds (and a [Crash] deliberately
     does not). *)
  let fire p =
    match decide p with
    | Proceed -> ()
    | Stall n -> stall n
    | Abort -> raise Conflict
    | Crash -> raise Crashed
end

(* Always-on telemetry.  Third user of the zero-cost discipline of
   [Trace] and [Chaos]: every instrumented event costs one [Atomic.get]
   on [armed] while no probe is installed, and the probe record is only
   loaded once armed.  The probe supplies its own clock so this module
   stays clock-library-agnostic; [now] must be monotone and its unit is
   whatever the installer counts in (tm_telemetry installs nanoseconds).
   Durations handed to [observe] are [now] deltas in that unit. *)
module Tel = struct
  type phase = Begin | Read | Lock | Validate | Publish | Commit | Abort

  type probe = {
    now : unit -> int;
    count : phase -> unit;
    observe : phase -> int -> unit;
  }

  let null_probe =
    { now = (fun () -> 0); count = (fun _ -> ()); observe = (fun _ _ -> ()) }

  let armed = Atomic.make false
  let probe = Atomic.make null_probe

  let install p =
    Atomic.set probe p;
    Atomic.set armed true

  let uninstall () =
    Atomic.set armed false;
    Atomic.set probe null_probe

  let is_armed () = Atomic.get armed

  let phase_label = function
    | Begin -> "begin"
    | Read -> "read"
    | Lock -> "lock-acquire"
    | Validate -> "validate"
    | Publish -> "publish"
    | Commit -> "commit"
    | Abort -> "abort"
end

(* Blame attribution.  Fourth user of the zero-cost seam discipline:
   every abort/steal/wait decision site in the cores costs one
   [Atomic.get] on [armed] while no sink is installed.  When armed, the
   cores additionally stamp ownership (tvar [owner], locator [l_owner])
   with the emitter's plan slot so the aggressor of a conflict can be
   named; disarmed they never touch those words, so the fast path is
   byte-identical to the pre-blame one.

   Identity is the {e plan slot} (0..domains-1) of the worker's domain,
   not the raw [Domain.self ()]: the chaos runner assigns slots, one
   live transaction per slot, so slot = transaction for attribution
   purposes and the graph is comparable across runs.  Code running
   outside a slotted worker reports -1 ("unknown"). *)
module Blame = struct
  type cause = Read_conflict | Lock_busy | Validation | Stolen | Wait_budget

  type event = {
    b_victim : int;  (** slot whose attempt is impeded (-1 unknown) *)
    b_aggressor : int;  (** slot held responsible (-1 unknown) *)
    b_tvar : int;  (** t-variable id the conflict was on (-1 none) *)
    b_cause : cause;
  }

  type sink = { on_event : event -> unit; on_progress : int -> unit }

  let null_sink = { on_event = (fun _ -> ()); on_progress = (fun _ -> ()) }
  let armed = Atomic.make false
  let sink = Atomic.make null_sink

  let install s =
    Atomic.set sink s;
    Atomic.set armed true

  let uninstall () =
    Atomic.set armed false;
    Atomic.set sink null_sink

  let is_armed () = Atomic.get armed

  let cause_label = function
    | Read_conflict -> "read-conflict"
    | Lock_busy -> "lock-busy"
    | Validation -> "validation"
    | Stolen -> "stolen"
    | Wait_budget -> "wait-budget"

  let causes =
    [ Read_conflict; Lock_busy; Validation; Stolen; Wait_budget ]

  let slot_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref (-1))
  let set_self s = Domain.DLS.get slot_key := s
  let self () = !(Domain.DLS.get slot_key)

  (* Only called from armed-guarded sites; no second [armed] check.
     [emit_event] is for the one site where the emitter is the
     aggressor (the DSTM steal); everywhere else the victim reports
     its own impediment via [emit]. *)
  let emit_event ~victim ~aggressor ~tvar cause =
    (Atomic.get sink).on_event
      { b_victim = victim; b_aggressor = aggressor; b_tvar = tvar; b_cause = cause }

  let emit ~aggressor ~tvar cause =
    emit_event ~victim:(self ()) ~aggressor ~tvar cause

  let progress () =
    if Atomic.get armed then (Atomic.get sink).on_progress (self ())
end

(* Versioned-lock helpers (TL2's vlock word: even = unlocked, value is
   version << 1; odd = locked by a committing transaction). *)
let locked v = v land 1 = 1
let version_of v = v lsr 1
let read_vlock tv = Atomic.get tv.vlock

let try_lock_tvar tv =
  let v = read_vlock tv in
  (not (locked v)) && Atomic.compare_and_set tv.vlock v (v lor 1)

let unlock_tvar tv =
  let v = read_vlock tv in
  if locked v then Atomic.set tv.vlock (v land lnot 1)

let publish_tvar (type a) (tv : a tvar) u wv =
  (match tv.proj u with
  | Some x -> Atomic.set tv.content x
  | None -> assert false);
  Atomic.set tv.vlock (wv lsl 1)

let set_tvar (type a) (tv : a tvar) u =
  match tv.proj u with
  | Some x -> Atomic.set tv.content x
  | None -> assert false

(* Write-set entry shared by the write-back cores: the pending value
   plus closures for the commit protocol.  TL2 uses
   [w_try_lock]/[w_unlock]/[w_publish]; the serialized cores
   (global-lock, NOrec) only use [w_set]. *)
type wentry = {
  w_id : int;
  mutable w_value : univ;
  w_try_lock : unit -> bool;
  w_unlock : unit -> unit;
  w_publish : univ -> int -> unit;
  w_set : univ -> unit;
  w_owner : int Atomic.t;  (* the t-variable's [owner] word *)
}

let wentry_of tv =
  {
    w_id = tv.id;
    w_value = tv.inj (Atomic.get tv.content) (* overwritten before use *);
    w_try_lock = (fun () -> try_lock_tvar tv);
    w_unlock = (fun () -> unlock_tvar tv);
    w_publish = (fun u wv -> publish_tvar tv u wv);
    w_set = (fun u -> set_tvar tv u);
    w_owner = tv.owner;
  }

let find_written (type a) writes (tv : a tvar) : a option =
  match List.find_opt (fun w -> w.w_id = tv.id) writes with
  | None -> None
  | Some w -> (
      match tv.proj w.w_value with Some x -> Some x | None -> assert false)

let buffer_write (type a) writes (tv : a tvar) (x : a) =
  match List.find_opt (fun w -> w.w_id = tv.id) !writes with
  | Some w -> w.w_value <- tv.inj x
  | None ->
      let w = wentry_of tv in
      w.w_value <- tv.inj x;
      writes := w :: !writes

(* Direct (non-transactional) atomic snapshot read through the vlock
   seqlock — the write-back cores' [direct_read]. *)
let rec snapshot_read tv =
  let v1 = read_vlock tv in
  if locked v1 then begin
    Domain.cpu_relax ();
    snapshot_read tv
  end
  else
    let x = Atomic.get tv.content in
    if read_vlock tv = v1 then x
    else begin
      Domain.cpu_relax ();
      snapshot_read tv
    end

(* Bounded spinning for the serialized cores.  A peer stuck behind a
   stranded lock (a crashed holder) must not hang: after [spin_budget]
   relax iterations the wait is converted into an ordinary [Conflict],
   so the attempt aborts, the transaction body re-runs, and whatever
   stop-flag the body checks stays observable.  Such a domain
   classifies as starving rather than deadlocked. *)
let spin_budget = 1 lsl 14

(* Per-algorithm core.  A core supplies the transaction engine; the
   [Stm] facade owns the retry loop (backoff, trace attempt spans, Tel
   Begin/Commit/Abort timing, global commit/abort counters) and the
   per-domain current-transaction slot.

   Contract:
   - [begin_] never blocks and never raises: any waiting happens in
     [read]/[write]/[commit] where the re-run transaction body keeps
     external stop-flags observable.
   - [read]/[write]/[commit] raise [Conflict] to abort the attempt and
     may raise [Chaos.Crashed]; before re-running (or on any other
     exception) the facade calls [abort_cleanup], which must be
     idempotent and release everything the attempt still holds.
     [abort_cleanup] is never called after [Chaos.Crashed]: a crashed
     transaction keeps whatever it holds, by design.
   - [commit] returning normally means the transaction took effect;
     the core has released everything. *)
module type S = sig
  type txn

  val algo_name : string
  val begin_ : unit -> txn
  val read : txn -> 'a tvar -> 'a
  val write : txn -> 'a tvar -> 'a -> unit
  val commit : txn -> unit
  val abort_cleanup : txn -> unit
  val recover : unit -> unit
  val direct_read : 'a tvar -> 'a
end

type packed = P : (module S with type txn = 't) * 't -> packed
