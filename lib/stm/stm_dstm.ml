(* DSTM-style obstruction-free TM: revocable ownership records with
   abort-others stealing (aggressive contention management).

   Every t-variable points to a locator [{l_status; l_old; l_new}]
   whose [l_status] is the owning transaction's status cell — 0 active,
   1 committed, 2 aborted, transitions monotone and terminal.  The
   committed value is derived: [l_new] if the owner committed, [l_old]
   otherwise.  Writers acquire by installing a fresh locator with CAS;
   commit is a single CAS of the own status cell from active to
   committed — no write-back, no locks.

   Obstruction-free: a transaction running solo finishes in a bounded
   number of its own steps, whatever state crashed peers left behind —
   an active locator abandoned by a crashed owner is simply stolen
   (status CAS 0 -> 2) by the next conflicting access.  The flip side
   is the Kuznetsov–Ravi cost: under contention transactions abort
   each other, and nothing but randomized backoff prevents mutual
   stealing from livelocking.

   Conflict resolution is total: both writes *and reads* encountering
   a foreign active owner steal it.  Reading around an active owner
   (returning [l_old]) would be the classic invisible-reader
   serializability hole — the owner could commit between this
   transaction's commit-time validation and its status CAS.  Stealing
   on every read-write conflict closes it: any two transactions with
   intersecting access sets (where at least one writes) kill one of
   the pair, so a transaction that reaches its commit CAS with its
   reads validated has no live rival ordered both before and after
   it.  Aborted-but-not-yet-retried transactions still see consistent
   snapshots because every read revalidates the whole read set
   (opacity).

   Chaos mapping: [Read] before each (non-own) read, [Lock_acquire]
   before each ownership acquisition, [Validate]/[Pre_commit] around
   commit-time validation with ownerships held, [Post_commit] after
   the commit CAS.  A crash leaves the status cell active forever:
   the crashed-owner adversary that lock-based cores cannot survive
   and this one shrugs off.

   Seam sites here are under static contract: every Tel/Chaos/Blame
   emission must match [Stm.Algo]'s announcement for Dstm and sit
   behind its armed guard (tmlive static: seam-contract/seam-guard). *)

open Stm_core
module Tev = Tm_trace.Trace_event

let algo_name = "dstm"

type rentry = {
  dr_id : int;
  dr_check : unit -> bool;
  dr_owner : unit -> int;  (** blame: installer slot of the current locator *)
}

(* Own-write journal: read-own-write must keep answering with the
   written value even after a rival steals the locator out from under
   us (the doomed transaction still deserves a self-consistent view
   until its commit CAS fails). *)
type dwentry = { dw_id : int; mutable dw_val : univ }

type txn = {
  d_status : int Atomic.t;
  mutable d_reads : rentry list;
  mutable d_writes : dwentry list;
}

let begin_ () = { d_status = Atomic.make 0; d_reads = []; d_writes = [] }

(* The committed value of [tv], treating a still-active foreign owner
   as not-yet-committed.  Used only inside validation closures; the
   access paths resolve conflicts by stealing instead. *)
let committed_univ tv =
  let loc = Atomic.get tv.locator in
  if Atomic.get loc.l_status = 1 then loc.l_new else loc.l_old

let steal loc tv =
  if Atomic.get Trace.tracing then
    Trace.emit Tev.Txn "steal" Tev.Instant [ ("tvar", Tev.Int tv.id) ];
  let stolen = Atomic.compare_and_set loc.l_status 0 2 in
  (* The one aggressor-side blame site: only a successful steal aborts
     someone, and only the stealer knows it happened (the victim's
     commit CAS failure later is this same edge, so it stays silent). *)
  if stolen && Atomic.get Blame.armed then
    Blame.emit_event ~victim:loc.l_owner ~aggressor:(Blame.self ())
      ~tvar:tv.id Blame.Stolen

(* Resolve [tv] for this transaction: own tentative value, or the
   stable value of a terminal locator (stealing any foreign active
   owner first — statuses are terminal, so one steal attempt leaves
   the status stably decided). *)
let rec resolve t tv =
  let loc = Atomic.get tv.locator in
  if loc.l_status == t.d_status then loc.l_new
  else
    let st = Atomic.get loc.l_status in
    if st = 0 then begin
      steal loc tv;
      resolve t tv
    end
    else if st = 1 then loc.l_new
    else loc.l_old

let validate t =
  let rec first_invalid = function
    | [] -> None
    | r :: rest -> if r.dr_check () then first_invalid rest else Some r
  in
  match first_invalid t.d_reads with
  | None -> ()
  | Some bad ->
      if Atomic.get Trace.tracing then
        Trace.emit Tev.Validation "read-invalid" Tev.Instant
          [ ("tvar", Tev.Int bad.dr_id) ];
      if Atomic.get Blame.armed then
        Blame.emit ~aggressor:(bad.dr_owner ()) ~tvar:bad.dr_id
          Blame.Validation;
      raise Conflict

let read (type a) t (tv : a tvar) : a =
  match List.find_opt (fun w -> w.dw_id = tv.id) t.d_writes with
  | Some w -> (
      (* Read-own-write, served from the journal. *)
      match tv.proj w.dw_val with Some x -> x | None -> assert false)
  | None ->
      if Atomic.get Chaos.armed then Chaos.fire Chaos.Read;
      if Atomic.get Tel.armed then (Atomic.get Tel.probe).Tel.count Tel.Read;
      let u = resolve t tv in
      (* Incremental validation: the new value joined to the prior
         reads must still be one consistent snapshot (opacity for
         doomed transactions included). *)
      validate t;
      t.d_reads <-
        {
          dr_id = tv.id;
          dr_check = (fun () -> committed_univ tv == u);
          dr_owner = (fun () -> (Atomic.get tv.locator).l_owner);
        }
        :: t.d_reads;
      (match tv.proj u with Some x -> x | None -> assert false)

let write (type a) t (tv : a tvar) (x : a) : unit =
  let u = tv.inj x in
  let rec acquire () =
    let loc = Atomic.get tv.locator in
    if loc.l_status == t.d_status then loc.l_new <- u
    else begin
      if Atomic.get Chaos.armed then Chaos.fire Chaos.Lock_acquire;
      let st = Atomic.get loc.l_status in
      if st = 0 then begin
        steal loc tv;
        acquire ()
      end
      else
        let old = if st = 1 then loc.l_new else loc.l_old in
        let l_owner =
          if Atomic.get Blame.armed then Blame.self () else -1
        in
        let loc' = { l_status = t.d_status; l_old = old; l_new = u; l_owner } in
        if not (Atomic.compare_and_set tv.locator loc loc') then acquire ()
    end
  in
  acquire ();
  match List.find_opt (fun w -> w.dw_id = tv.id) t.d_writes with
  | Some w -> w.dw_val <- u
  | None -> t.d_writes <- { dw_id = tv.id; dw_val = u } :: t.d_writes

let commit t =
  let tel = Atomic.get Tel.armed in
  let tp = if tel then Atomic.get Tel.probe else Tel.null_probe in
  (* [Chaos.fire]'s interpretation is right even with ownerships held:
     an [Abort] raises [Conflict] and the facade's [abort_cleanup]
     revokes them (one status CAS); a [Crash] leaves them active. *)
  if Atomic.get Chaos.armed then Chaos.fire Chaos.Validate;
  let t0 = if tel then tp.Tel.now () else 0 in
  validate t;
  let t1 =
    if tel then begin
      let t' = tp.Tel.now () in
      tp.Tel.observe Tel.Validate (t' - t0);
      t'
    end
    else 0
  in
  if Atomic.get Chaos.armed then Chaos.fire Chaos.Pre_commit;
  (* The whole commit: one CAS.  Failure means a rival stole us. *)
  if not (Atomic.compare_and_set t.d_status 0 1) then raise Conflict;
  if tel then tp.Tel.observe Tel.Publish (tp.Tel.now () - t1);
  if Atomic.get Chaos.armed then Chaos.fire Chaos.Post_commit

(* Revoke: one terminal status CAS abandons every owned locator at its
   old value.  Idempotent, and a no-op on a committed/stolen cell. *)
let abort_cleanup t =
  ignore (Atomic.compare_and_set t.d_status 0 2);
  t.d_reads <- [];
  t.d_writes <- []

(* No core-global state at all — abandoned ownerships are stolen by the
   next rival, which is the whole point of the algorithm. *)
let recover () = ()

let direct_read (type a) (tv : a tvar) : a =
  match tv.proj (committed_univ tv) with
  | Some x -> x
  | None -> assert false
