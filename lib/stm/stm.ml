(* The public STM facade over the pluggable algorithm zoo.

   Algorithm-independent machinery lives in [Stm_core] (t-variables,
   the Trace/Chaos/Tel seams); the four cores live in [Stm_tl2],
   [Stm_glock], [Stm_dstm] and [Stm_norec].  This module owns what the
   cores share behaviourally: the per-domain current-transaction slot,
   the retry loop with randomized exponential backoff, trace attempt
   spans, Tel Begin/Commit/Abort accounting and the global
   commit/abort counters — so every algorithm gets identical
   observability for free. *)

module Tev = Tm_trace.Trace_event
module Trace = Stm_core.Trace
module Chaos = Stm_core.Chaos
module Tel = Stm_core.Tel
module Blame = Stm_core.Blame

type 'a tvar = 'a Stm_core.tvar

exception Retry = Stm_core.Retry

let tvar = Stm_core.tvar

module Algo = struct
  type t = Tl2 | Global_lock | Dstm | Norec

  let all = [ Tl2; Global_lock; Dstm; Norec ]

  let name = function
    | Tl2 -> "tl2"
    | Global_lock -> "global-lock"
    | Dstm -> "dstm"
    | Norec -> "norec"

  let of_string s =
    match String.lowercase_ascii s with
    | "tl2" -> Ok Tl2
    | "global-lock" | "glock" -> Ok Global_lock
    | "dstm" -> Ok Dstm
    | "norec" -> Ok Norec
    | _ ->
        Error
          (Fmt.str "unknown algorithm %S (try: %s)" s
             (String.concat ", " (List.map name all)))

  let progress_label = function
    | Tl2 -> "progressive"
    | Global_lock -> "blocking"
    | Dstm -> "obstruction-free"
    | Norec -> "commit-serialized"

  let describe = function
    | Tl2 ->
        "TL2: global version clock, per-tvar versioned locks, commit-time \
         validation (progressive)"
    | Global_lock ->
        "global-lock: one serializer lock per transaction, no aborts, no \
         parallelism (blocking)"
    | Dstm ->
        "DSTM: revocable ownership records with abort-others stealing \
         (obstruction-free)"
    | Norec ->
        "NOrec: value-based validation under a single sequence lock \
         (commit-serialized)"

  (* Which Tel phases each core can emit — the per-algorithm phase
     mapping that keeps telemetry histogram labels truthful.  Begin /
     Read / Commit / Abort are universal (Begin, Commit and Abort come
     from the facade's retry loop); the commit-internal phases differ:
     the global-lock serializer validates nothing, NOrec and DSTM
     acquire no per-location locks. *)
  let tel_phases = function
    | Tl2 ->
        [
          Tel.Begin;
          Tel.Read;
          Tel.Lock;
          Tel.Validate;
          Tel.Publish;
          Tel.Commit;
          Tel.Abort;
        ]
    | Global_lock ->
        [ Tel.Begin; Tel.Read; Tel.Lock; Tel.Publish; Tel.Commit; Tel.Abort ]
    | Dstm | Norec ->
        [
          Tel.Begin; Tel.Read; Tel.Validate; Tel.Publish; Tel.Commit; Tel.Abort;
        ]

  (* Which Chaos points each core fires (same truthfulness contract).
     Notably: global-lock fires [Read] only after the serializer is
     held (an in-transaction crash deterministically strands it) and
     fires [Lock_acquire] while holding nothing (so a starving peer's
     op clock keeps ticking); NOrec never fires [Lock_acquire]. *)
  let chaos_points = function
    | Tl2 | Dstm ->
        [
          Chaos.Read;
          Chaos.Validate;
          Chaos.Lock_acquire;
          Chaos.Pre_commit;
          Chaos.Post_commit;
        ]
    | Global_lock ->
        [ Chaos.Read; Chaos.Lock_acquire; Chaos.Pre_commit; Chaos.Post_commit ]
    | Norec ->
        [ Chaos.Read; Chaos.Validate; Chaos.Pre_commit; Chaos.Post_commit ]

  (* Which Blame causes each core can emit (same truthfulness
     contract).  The absences are structural: only the stealing DSTM
     core can emit [Stolen]; the serialized cores convert every
     conflict into spin-budget exhaustion behind their single lock;
     NOrec additionally revalidates by value ([Validation]); TL2 is
     the only core with per-location read/lock conflicts. *)
  let blame_causes = function
    | Tl2 -> [ Blame.Read_conflict; Blame.Lock_busy; Blame.Validation ]
    | Global_lock -> [ Blame.Wait_budget ]
    | Dstm -> [ Blame.Validation; Blame.Stolen ]
    | Norec -> [ Blame.Validation; Blame.Wait_budget ]
end

let core_of : Algo.t -> (module Stm_core.S) = function
  | Algo.Tl2 -> (module Stm_tl2)
  | Algo.Global_lock -> (module Stm_glock)
  | Algo.Dstm -> (module Stm_dstm)
  | Algo.Norec -> (module Stm_norec)

let selected_algo = Atomic.make Algo.Tl2
let selected : (module Stm_core.S) Atomic.t = Atomic.make (core_of Algo.Tl2)

let set_algo a =
  Atomic.set selected_algo a;
  Atomic.set selected (core_of a)

let algo () = Atomic.get selected_algo

let with_algo a f =
  let prev = algo () in
  set_algo a;
  Fun.protect ~finally:(fun () -> set_algo prev) f

let commit_count = Atomic.make 0
let abort_count = Atomic.make 0

let current : Stm_core.packed option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let in_transaction () = Option.is_some !(Domain.DLS.get current)

let read (type a) (tv : a tvar) : a =
  match !(Domain.DLS.get current) with
  | Some (Stm_core.P ((module C), t)) -> C.read t tv
  | None ->
      let (module C) = Atomic.get selected in
      C.direct_read tv

let write (type a) (tv : a tvar) (x : a) : unit =
  match !(Domain.DLS.get current) with
  | Some (Stm_core.P ((module C), t)) -> C.write t tv x
  | None -> invalid_arg "Stm.write outside a transaction"

let retry () = raise Retry

let backoff attempts prng_state =
  let bound = 1 lsl min attempts 10 in
  let spins = 1 + (!prng_state * 1103515245 + 12345) land 0x3FFFFFFF in
  prng_state := spins;
  let n_spins = spins mod bound in
  if Atomic.get Trace.tracing then
    Trace.emit Tev.Backoff "wait" Tev.Instant
      [ ("attempt", Tev.Int attempts); ("spins", Tev.Int n_spins) ];
  for _ = 1 to n_spins do
    Domain.cpu_relax ()
  done

let atomically (type a) (f : unit -> a) : a =
  let slot = Domain.DLS.get current in
  match !slot with
  | Some _ -> f () (* flat nesting: join the enclosing transaction *)
  | None ->
      let (module C) = Atomic.get selected in
      let prng_state = ref (Domain.self () :> int) in
      let end_attempt outcome =
        if Atomic.get Trace.tracing then
          Trace.emit Tev.Txn "attempt" Tev.Span_end
            [ ("outcome", Tev.Str outcome) ]
      in
      let rec attempt n =
        if Atomic.get Trace.tracing then
          Trace.emit Tev.Txn "attempt" Tev.Span_begin
            [ ("attempt", Tev.Int n) ];
        let tel = Atomic.get Tel.armed in
        let tp = if tel then Atomic.get Tel.probe else Tel.null_probe in
        if tel then tp.Tel.count Tel.Begin;
        let t0 = if tel then tp.Tel.now () else 0 in
        let aborted () =
          if tel then tp.Tel.observe Tel.Abort (tp.Tel.now () - t0)
        in
        let txn = C.begin_ () in
        slot := Some (Stm_core.P ((module C), txn));
        match f () with
        | result -> (
            try
              C.commit txn;
              slot := None;
              Atomic.incr commit_count;
              Blame.progress ();
              if tel then tp.Tel.observe Tel.Commit (tp.Tel.now () - t0);
              end_attempt "commit";
              result
            with
            | Stm_core.Conflict ->
                slot := None;
                C.abort_cleanup txn;
                Atomic.incr abort_count;
                aborted ();
                end_attempt "conflict";
                backoff n prng_state;
                attempt (n + 1)
            | Chaos.Crashed as e ->
                (* A crashed commit keeps everything it holds: no
                   cleanup, and the attempt span stays open — the
                   domain is gone. *)
                slot := None;
                raise e)
        | exception Stm_core.Conflict ->
            slot := None;
            C.abort_cleanup txn;
            Atomic.incr abort_count;
            aborted ();
            end_attempt "conflict";
            backoff n prng_state;
            attempt (n + 1)
        | exception Retry ->
            slot := None;
            C.abort_cleanup txn;
            Atomic.incr abort_count;
            aborted ();
            end_attempt "retry";
            backoff (n + 2) prng_state;
            attempt (n + 1)
        | exception (Chaos.Crashed as e) ->
            (* Crashed in the body: same no-cleanup contract. *)
            slot := None;
            end_attempt "exception";
            raise e
        | exception e ->
            slot := None;
            C.abort_cleanup txn;
            end_attempt "exception";
            raise e
      in
      attempt 0

let stats () = (Atomic.get commit_count, Atomic.get abort_count)

let recover () =
  (* A recovery point is also where stranded observation handlers go:
     a harness that died between [install] and [uninstall] must not
     leave a chaos plan, telemetry probe or blame sink armed across
     runs.  All three uninstalls are idempotent, so recovering twice
     (or recovering after a clean teardown already disarmed them) is
     harmless. *)
  Chaos.uninstall ();
  Tel.uninstall ();
  Blame.uninstall ();
  let (module C) = Atomic.get selected in
  C.recover ()
