(* TL2 over OCaml 5 atomics.

   Each t-variable carries a versioned lock word [vlock]: even = unlocked,
   value is (version << 1); odd = locked by a committing transaction.
   Readers use the classic seqlock protocol (read vlock, read content, read
   vlock again) and validate against the transaction's read version.

   Type erasure for the heterogeneous read/write sets uses the universal
   type trick: every t-variable carries its own injection/projection pair
   built from a locally generated extensible-variant constructor, so no
   [Obj] is needed. *)

type univ = exn

type 'a tvar = {
  id : int;
  content : 'a Atomic.t;
  vlock : int Atomic.t;
  inj : 'a -> univ;
  proj : univ -> 'a option;
}

let next_id = Atomic.make 0
let clock = Atomic.make 0
let commit_count = Atomic.make 0
let abort_count = Atomic.make 0

module Tev = Tm_trace.Trace_event

(* Runtime tracing.  The hot path pays one [Atomic.get] on a global flag
   per potential event; when the flag is false no event is even
   constructed.  When on, each domain writes into its own fixed-size ring
   (single-writer, no lock on the emit path) registered in a global list
   so [events] can collect them afterwards.  Timestamps come from a global
   emission sequence — they give a total order of emissions, not wall
   time. *)
module Trace = struct
  type mode = Off | Null | Rings of int

  let tracing = Atomic.make false
  let mode = Atomic.make Off
  let generation = Atomic.make 0
  let seq = Atomic.make 0
  let emitted_count = Atomic.make 0
  let registry_mu = Mutex.create ()
  let registry : Tm_trace.Ring.t list ref = ref []

  let slot : (int * Tm_trace.Ring.t) option ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref None)

  let default_capacity = 4096

  let reset_locked m =
    registry := [];
    Atomic.incr generation;
    Atomic.set seq 0;
    Atomic.set emitted_count 0;
    Atomic.set mode m;
    Atomic.set tracing (m <> Off)

  let start ?(capacity = default_capacity) () =
    if capacity < 1 then invalid_arg "Stm.Trace.start: capacity must be positive";
    Mutex.protect registry_mu (fun () -> reset_locked (Rings capacity))

  let start_null () = Mutex.protect registry_mu (fun () -> reset_locked Null)

  let stop () =
    Mutex.protect registry_mu (fun () ->
        Atomic.set tracing false;
        Atomic.set mode Off)

  let is_on () = Atomic.get tracing

  (* The per-domain ring is cached in DLS together with the generation it
     belongs to, so a stale ring from a previous [start] is never written
     into the current session. *)
  let ring_for_domain gen =
    let r = Domain.DLS.get slot in
    match !r with
    | Some (g, ring) when g = gen -> Some ring
    | _ -> (
        match Atomic.get mode with
        | Rings cap ->
            let ring = Tm_trace.Ring.create ~capacity:cap in
            let registered =
              Mutex.protect registry_mu (fun () ->
                  if Atomic.get generation = gen then begin
                    registry := ring :: !registry;
                    true
                  end
                  else false)
            in
            if registered then begin
              r := Some (gen, ring);
              Some ring
            end
            else None
        | Off | Null -> None)

  let emit cat name phase args =
    let ts = Atomic.fetch_and_add seq 1 in
    let tid = (Domain.self () :> int) in
    let e = { Tev.ts; pid = 0; tid; cat; name; phase; args } in
    Atomic.incr emitted_count;
    match Atomic.get mode with
    | Off | Null -> ()
    | Rings _ -> (
        match ring_for_domain (Atomic.get generation) with
        | Some ring -> Tm_trace.Ring.add ring e
        | None -> ())

  let events () =
    let evs =
      Mutex.protect registry_mu (fun () ->
          List.concat_map Tm_trace.Ring.to_list !registry)
    in
    List.sort (fun (a : Tev.t) b -> Int.compare a.ts b.ts) evs

  let dropped () =
    Mutex.protect registry_mu (fun () ->
        List.fold_left (fun acc r -> acc + Tm_trace.Ring.dropped r) 0 !registry)

  let emitted () = Atomic.get emitted_count
end

let tvar (type a) (init : a) : a tvar =
  let module M = struct
    exception E of a
  end in
  {
    id = Atomic.fetch_and_add next_id 1;
    content = Atomic.make init;
    vlock = Atomic.make 0;
    inj = (fun x -> M.E x);
    proj = (function M.E x -> Some x | _ -> None);
  }

exception Retry
exception Conflict

(* Deterministic fault injection.  Same zero-cost discipline as [Trace]:
   every interception point costs one [Atomic.get] on [armed] when no
   plan is installed, and only consults the handler when armed.  The
   handler decides per point: proceed, abort the attempt (a normal
   conflict, counted and retried), stall (bounded spinning), or crash.
   [Crashed] escapes [atomically] through its generic exception arm
   without releasing any commit vlocks the domain holds — a crash at
   [Pre_commit] is therefore the paper's crashed-lock-holder adversary,
   observable on real domains. *)
module Chaos = struct
  type point = Read | Validate | Lock_acquire | Pre_commit | Post_commit
  type action = Proceed | Abort | Stall of int | Crash

  exception Crashed

  let null_handler : point -> action = fun _ -> Proceed
  let armed = Atomic.make false
  let handler = Atomic.make null_handler

  let install f =
    Atomic.set handler f;
    Atomic.set armed true

  let uninstall () =
    Atomic.set armed false;
    Atomic.set handler null_handler

  let is_armed () = Atomic.get armed

  let point_label = function
    | Read -> "read"
    | Validate -> "validate"
    | Lock_acquire -> "lock-acquire"
    | Pre_commit -> "pre-commit"
    | Post_commit -> "post-commit"

  let stall n =
    for _ = 1 to n do
      Domain.cpu_relax ()
    done

  let decide p = if Atomic.get armed then (Atomic.get handler) p else Proceed

  (* Interpretation for points where the domain holds no commit locks;
     [commit] interprets actions itself so an [Abort] can back out the
     vlocks it already holds (and a [Crash] deliberately does not). *)
  let fire p =
    match decide p with
    | Proceed -> ()
    | Stall n -> stall n
    | Abort -> raise Conflict
    | Crash -> raise Crashed
end

(* Always-on telemetry.  Third user of the zero-cost discipline of
   [Trace] and [Chaos]: every instrumented event costs one [Atomic.get]
   on [armed] while no probe is installed, and the probe record is only
   loaded once armed.  The probe supplies its own clock so this module
   stays clock-library-agnostic; [now] must be monotone and its unit is
   whatever the installer counts in (tm_telemetry installs nanoseconds).
   Durations handed to [observe] are [now] deltas in that unit. *)
module Tel = struct
  type phase = Begin | Read | Lock | Validate | Publish | Commit | Abort

  type probe = {
    now : unit -> int;
    count : phase -> unit;
    observe : phase -> int -> unit;
  }

  let null_probe =
    { now = (fun () -> 0); count = (fun _ -> ()); observe = (fun _ _ -> ()) }

  let armed = Atomic.make false
  let probe = Atomic.make null_probe

  let install p =
    Atomic.set probe p;
    Atomic.set armed true

  let uninstall () =
    Atomic.set armed false;
    Atomic.set probe null_probe

  let is_armed () = Atomic.get armed

  let phase_label = function
    | Begin -> "begin"
    | Read -> "read"
    | Lock -> "lock-acquire"
    | Validate -> "validate"
    | Publish -> "publish"
    | Commit -> "commit"
    | Abort -> "abort"
end

(* Write-set entry: the pending value plus closures for the commit
   protocol (lock, validate-ownership, publish, unlock). *)
type wentry = {
  w_id : int;
  mutable value : univ;
  try_lock : unit -> bool;
  unlock : unit -> unit;
  publish : univ -> int -> unit;
}

type rentry = { r_id : int; check : rv:int -> owned:(int -> bool) -> bool }

type txn = {
  rv : int;
  mutable reads : rentry list;
  mutable writes : wentry list;  (** unordered; sorted by id at commit *)
}

let current : txn option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let locked v = v land 1 = 1
let version_of v = v lsr 1

let read_vlock tv = Atomic.get tv.vlock

let try_lock_tvar tv =
  let v = read_vlock tv in
  (not (locked v)) && Atomic.compare_and_set tv.vlock v (v lor 1)

let unlock_tvar tv =
  let v = read_vlock tv in
  if locked v then Atomic.set tv.vlock (v land lnot 1)

let publish_tvar (type a) (tv : a tvar) u wv =
  (match tv.proj u with
  | Some x -> Atomic.set tv.content x
  | None -> assert false);
  Atomic.set tv.vlock (wv lsl 1)

let wentry_of tv =
  {
    w_id = tv.id;
    value = tv.inj (Atomic.get tv.content) (* overwritten before use *);
    try_lock = (fun () -> try_lock_tvar tv);
    unlock = (fun () -> unlock_tvar tv);
    publish = (fun u wv -> publish_tvar tv u wv);
  }

let rentry_of tv seen_version =
  {
    r_id = tv.id;
    check =
      (fun ~rv ~owned ->
        let v = read_vlock tv in
        let ok_lock = (not (locked v)) || owned tv.id in
        ok_lock && version_of v <= rv && version_of v = seen_version);
  }

let in_transaction () = Option.is_some !(Domain.DLS.get current)

(* Direct (non-transactional) atomic snapshot read. *)
let rec snapshot_read tv =
  let v1 = read_vlock tv in
  if locked v1 then begin
    Domain.cpu_relax ();
    snapshot_read tv
  end
  else
    let x = Atomic.get tv.content in
    if read_vlock tv = v1 then x
    else begin
      Domain.cpu_relax ();
      snapshot_read tv
    end

let read (type a) (tv : a tvar) : a =
  match !(Domain.DLS.get current) with
  | None -> snapshot_read tv
  | Some txn -> (
      (* Read-own-write. *)
      match List.find_opt (fun w -> w.w_id = tv.id) txn.writes with
      | Some w -> (
          match tv.proj w.value with Some x -> x | None -> assert false)
      | None ->
          if Atomic.get Chaos.armed then Chaos.fire Chaos.Read;
          if Atomic.get Tel.armed then (Atomic.get Tel.probe).Tel.count Tel.Read;
          let v1 = read_vlock tv in
          if locked v1 || version_of v1 > txn.rv then raise Conflict;
          let x = Atomic.get tv.content in
          if read_vlock tv <> v1 then raise Conflict;
          txn.reads <- rentry_of tv (version_of v1) :: txn.reads;
          x)

let write (type a) (tv : a tvar) (x : a) : unit =
  match !(Domain.DLS.get current) with
  | None -> invalid_arg "Stm.write outside a transaction"
  | Some txn -> (
      match List.find_opt (fun w -> w.w_id = tv.id) txn.writes with
      | Some w -> w.value <- tv.inj x
      | None ->
          let w = wentry_of tv in
          w.value <- tv.inj x;
          txn.writes <- w :: txn.writes)

let retry () = raise Retry

let commit txn =
  match txn.writes with
  | [] -> () (* read-only: reads were validated against rv as they happened *)
  | writes ->
      let tr = Atomic.get Trace.tracing in
      let tel = Atomic.get Tel.armed in
      let tp = if tel then Atomic.get Tel.probe else Tel.null_probe in
      let ws =
        List.sort_uniq (fun a b -> Int.compare a.w_id b.w_id) writes
      in
      (* Locks held so far, newest first.  Commit-scoped so both the
         normal conflict back-outs and a chaos [Abort] at any point can
         release exactly what is held. *)
      let acquired = ref [] in
      let release_all order =
        List.iter
          (fun (w : wentry) ->
            (* Emit release before the real unlock: once the vlock is
               even another domain can acquire it, and its acquire
               event must sequence after ours. *)
            if tr then
              Trace.emit Tev.Lock "release" Tev.Instant
                [ ("tvar", Tev.Int w.w_id) ];
            w.unlock ())
          (order !acquired)
      in
      (* Chaos interception inside commit: [Abort] backs out held locks
         like any conflict; [Crash] deliberately does not — a crashed
         lock holder is the experiment. *)
      let chaos p =
        if Atomic.get Chaos.armed then
          match Chaos.decide p with
          | Chaos.Proceed -> ()
          | Chaos.Stall n -> Chaos.stall n
          | Chaos.Abort ->
              release_all Fun.id;
              raise Conflict
          | Chaos.Crash -> raise Chaos.Crashed
      in
      (* Lock in canonical order; back out on failure. *)
      let rec lock_all k = function
        | [] -> ()
        | w :: rest ->
            chaos Chaos.Lock_acquire;
            if w.try_lock () then begin
              if tr then
                Trace.emit Tev.Lock "acquire" Tev.Instant
                  [ ("tvar", Tev.Int w.w_id); ("order", Tev.Int k) ];
              acquired := w :: !acquired;
              lock_all (k + 1) rest
            end
            else begin
              if tr then
                Trace.emit Tev.Lock "busy" Tev.Instant
                  [ ("tvar", Tev.Int w.w_id) ];
              release_all Fun.id;
              raise Conflict
            end
      in
      let t0 = if tel then tp.Tel.now () else 0 in
      lock_all 0 ws;
      let t1 =
        if tel then begin
          let t = tp.Tel.now () in
          tp.Tel.observe Tel.Lock (t - t0);
          t
        end
        else 0
      in
      let wv = Atomic.fetch_and_add clock 1 + 1 in
      chaos Chaos.Validate;
      let owned id = List.exists (fun w -> w.w_id = id) ws in
      let rec first_invalid = function
        | [] -> None
        | r :: rest ->
            if r.check ~rv:txn.rv ~owned then first_invalid rest
            else Some r.r_id
      in
      (match first_invalid txn.reads with
      | Some bad ->
          if tr then
            Trace.emit Tev.Validation "read-invalid" Tev.Instant
              [ ("tvar", Tev.Int bad) ];
          release_all List.rev;
          raise Conflict
      | None -> ());
      let t2 =
        if tel then begin
          let t = tp.Tel.now () in
          tp.Tel.observe Tel.Validate (t - t1);
          t
        end
        else 0
      in
      chaos Chaos.Pre_commit;
      (* Publishing a t-variable also releases its lock (the vlock is set
         to the new even version), hence the paired release event.  Both
         events are emitted while the lock is still really held so that a
         competing domain's acquire event can only sequence after them. *)
      List.iter
        (fun w ->
          if tr then begin
            Trace.emit Tev.Txn "publish" Tev.Instant
              [ ("tvar", Tev.Int w.w_id) ];
            Trace.emit Tev.Lock "release" Tev.Instant
              [ ("tvar", Tev.Int w.w_id) ]
          end;
          w.publish w.value wv)
        (List.rev !acquired);
      if tel then tp.Tel.observe Tel.Publish (tp.Tel.now () - t2);
      chaos Chaos.Post_commit

let backoff attempts prng_state =
  let bound = 1 lsl min attempts 10 in
  let spins = 1 + (!prng_state * 1103515245 + 12345) land 0x3FFFFFFF in
  prng_state := spins;
  let n_spins = spins mod bound in
  if Atomic.get Trace.tracing then
    Trace.emit Tev.Backoff "wait" Tev.Instant
      [ ("attempt", Tev.Int attempts); ("spins", Tev.Int n_spins) ];
  for _ = 1 to n_spins do
    Domain.cpu_relax ()
  done

let atomically (type a) (f : unit -> a) : a =
  let slot = Domain.DLS.get current in
  match !slot with
  | Some _ -> f () (* flat nesting: join the enclosing transaction *)
  | None ->
      let prng_state = ref (Domain.self () :> int) in
      let end_attempt outcome =
        if Atomic.get Trace.tracing then
          Trace.emit Tev.Txn "attempt" Tev.Span_end
            [ ("outcome", Tev.Str outcome) ]
      in
      let rec attempt n =
        if Atomic.get Trace.tracing then
          Trace.emit Tev.Txn "attempt" Tev.Span_begin
            [ ("attempt", Tev.Int n) ];
        let tel = Atomic.get Tel.armed in
        let tp = if tel then Atomic.get Tel.probe else Tel.null_probe in
        if tel then tp.Tel.count Tel.Begin;
        let t0 = if tel then tp.Tel.now () else 0 in
        let aborted () =
          if tel then tp.Tel.observe Tel.Abort (tp.Tel.now () - t0)
        in
        let txn = { rv = Atomic.get clock; reads = []; writes = [] } in
        slot := Some txn;
        match f () with
        | result -> (
            try
              commit txn;
              slot := None;
              Atomic.incr commit_count;
              if tel then tp.Tel.observe Tel.Commit (tp.Tel.now () - t0);
              end_attempt "commit";
              result
            with Conflict ->
              slot := None;
              Atomic.incr abort_count;
              aborted ();
              end_attempt "conflict";
              backoff n prng_state;
              attempt (n + 1))
        | exception Conflict ->
            slot := None;
            Atomic.incr abort_count;
            aborted ();
            end_attempt "conflict";
            backoff n prng_state;
            attempt (n + 1)
        | exception Retry ->
            slot := None;
            Atomic.incr abort_count;
            aborted ();
            end_attempt "retry";
            backoff (n + 2) prng_state;
            attempt (n + 1)
        | exception e ->
            slot := None;
            end_attempt "exception";
            raise e
      in
      attempt 0

let stats () = (Atomic.get commit_count, Atomic.get abort_count)
