(* Global-lock serializer — the zoo's blocking baseline.

   One algorithm-global spinlock serializes every transaction: a
   transaction acquires it lazily at its first t-variable access and
   holds it until commit (or abort).  Writes are still buffered so an
   exception rolls the attempt back, but there is no validation and no
   per-t-variable locking: zero aborts under healthy contention, at
   the price of zero parallelism — and of the taxonomy's worst-case
   liveness: any transaction that stops while holding the serializer
   (a crash, a parasitic body) strands every peer.

   Peers never block on the stranded serializer, though: acquisition
   spins a bounded budget and then converts into [Conflict], so a
   starving domain keeps re-running its transaction body (where stop
   flags live) instead of deadlocking inside the runtime.

   Chaos mapping: [Lock_acquire] fires before each serializer
   acquisition attempt (holding nothing — this also keeps a starving
   peer's op clock ticking); [Read] fires before each read, *after*
   the serializer is held, so an in-transaction crash deterministically
   strands it; [Pre_commit] fires before write-back (serializer held);
   [Post_commit] after release.  [Validate] never fires: there is
   nothing to validate.

   Seam sites here are under static contract: every Tel/Chaos/Blame
   emission must match [Stm.Algo]'s announcement for Global_lock and
   sit behind its armed guard (tmlive static: seam-contract/guard). *)

open Stm_core
module Tev = Tm_trace.Trace_event

let algo_name = "global-lock"

(* 0 = free, 1 = held. *)
let big_lock = Atomic.make 0

(* A plain CAS spinlock is brutally unfair on real hardware: the
   releasing domain's cache owns the lock line, so its next acquisition
   beats any remote waiter's in-flight CAS almost every time, and with
   the facade's backoff growing on each failed attempt a waiter can be
   locked out for entire observation windows (measured: hundreds of
   thousands of failed CAS against a two-domain hot loop).  So waiters
   register themselves, and a domain that was the last holder yields a
   beat before competing again whenever someone is registered — long
   enough for a registered waiter's CAS to land in the free window. *)
let waiters = Atomic.make 0
let last_holder = Atomic.make (-1)
let yield_spins = 512

(* Blame identity of the current/last serializer holder: [last_holder]
   stores a raw [Domain.self] for the fairness yield and is useless
   for attribution, so the plan slot is tracked separately (written
   only while the Blame seam is armed). *)
let blame_holder = Atomic.make (-1)

type txn = { mutable held : bool; mutable writes : wentry list }

let begin_ () = { held = false; writes = [] }

let release t =
  if t.held then begin
    t.held <- false;
    Atomic.set big_lock 0
  end

(* Acquire the serializer, bounded.  [Chaos.fire] may raise [Conflict]
   or [Crashed] while we hold nothing; spin exhaustion raises
   [Conflict] (the facade's cleanup finds nothing held). *)
let ensure_locked t =
  if not t.held then begin
    if Atomic.get Chaos.armed then Chaos.fire Chaos.Lock_acquire;
    let tel = Atomic.get Tel.armed in
    let tp = if tel then Atomic.get Tel.probe else Tel.null_probe in
    let t0 = if tel then tp.Tel.now () else 0 in
    let me = (Domain.self () :> int) in
    if Atomic.get last_holder = me && Atomic.get waiters > 0 then
      for _ = 1 to yield_spins do
        Domain.cpu_relax ()
      done;
    if not (Atomic.compare_and_set big_lock 0 1) then begin
      Atomic.incr waiters;
      Fun.protect
        ~finally:(fun () -> Atomic.decr waiters)
        (fun () ->
          let rec spin budget =
            if Atomic.compare_and_set big_lock 0 1 then ()
            else if budget <= 0 then begin
              if Atomic.get Blame.armed then
                Blame.emit ~aggressor:(Atomic.get blame_holder) ~tvar:(-1)
                  Blame.Wait_budget;
              raise Conflict
            end
            else begin
              Domain.cpu_relax ();
              spin (budget - 1)
            end
          in
          spin spin_budget)
    end;
    Atomic.set last_holder me;
    if Atomic.get Blame.armed then Atomic.set blame_holder (Blame.self ());
    t.held <- true;
    if tel then tp.Tel.observe Tel.Lock (tp.Tel.now () - t0)
  end

let read (type a) t (tv : a tvar) : a =
  match find_written t.writes tv with
  | Some x -> x (* read-own-write *)
  | None ->
      ensure_locked t;
      if Atomic.get Chaos.armed then Chaos.fire Chaos.Read;
      if Atomic.get Tel.armed then (Atomic.get Tel.probe).Tel.count Tel.Read;
      Atomic.get tv.content

let write (type a) t (tv : a tvar) (x : a) : unit =
  ensure_locked t;
  let writes = ref t.writes in
  buffer_write writes tv x;
  t.writes <- !writes

let commit t =
  let tr = Atomic.get Trace.tracing in
  let tel = Atomic.get Tel.armed in
  let tp = if tel then Atomic.get Tel.probe else Tel.null_probe in
  (* Chaos at [Pre_commit] holds the serializer: [Abort] releases it
     (an ordinary conflict), [Crash] deliberately does not. *)
  (if Atomic.get Chaos.armed then
     match Chaos.decide Chaos.Pre_commit with
     | Chaos.Proceed -> ()
     | Chaos.Stall n -> Chaos.stall n
     | Chaos.Abort ->
         release t;
         raise Conflict
     | Chaos.Crash -> raise Chaos.Crashed);
  (match t.writes with
  | [] -> ()
  | writes ->
      let t0 = if tel then tp.Tel.now () else 0 in
      let ws = List.sort_uniq (fun a b -> Int.compare a.w_id b.w_id) writes in
      (* Holding the serializer is holding every lock: the trace shows
         the write set acquired, published and released under it so the
         lock-discipline lints see a coherent protocol. *)
      if tr then
        List.iteri
          (fun k (w : wentry) ->
            Trace.emit Tev.Lock "acquire" Tev.Instant
              [ ("tvar", Tev.Int w.w_id); ("order", Tev.Int k) ])
          ws;
      List.iter
        (fun (w : wentry) ->
          if tr then begin
            Trace.emit Tev.Txn "publish" Tev.Instant
              [ ("tvar", Tev.Int w.w_id) ];
            Trace.emit Tev.Lock "release" Tev.Instant
              [ ("tvar", Tev.Int w.w_id) ]
          end;
          w.w_set w.w_value)
        ws;
      if tel then tp.Tel.observe Tel.Publish (tp.Tel.now () - t0));
  release t;
  if Atomic.get Chaos.armed then Chaos.fire Chaos.Post_commit

let abort_cleanup t =
  t.writes <- [];
  release t

(* A domain that crashed (or is abandoned) while holding the serializer
   strands it process-wide; recovery is simply dropping it (plus the
   fairness bookkeeping, which only ever named now-dead domains). *)
let recover () =
  Atomic.set big_lock 0;
  Atomic.set waiters 0;
  Atomic.set last_holder (-1);
  Atomic.set blame_holder (-1)

(* A single-location atomic read needs no seqlock here: content is only
   written under the serializer and each write is itself atomic. *)
let direct_read tv = Atomic.get tv.content
