(** Shared substrate of the real-domains STM algorithm zoo (internal).

    This module is the algorithm-independent half of [lib/stm]: the
    t-variable representation, the three observation seams ([Trace],
    [Chaos], [Tel]) and the core interface {!S} each algorithm
    implements.  User code should go through the {!Stm} facade; the
    types here are exposed so the cores ([Stm_tl2], [Stm_glock],
    [Stm_dstm], [Stm_norec]) can share one t-variable type and so the
    facade can re-export the seams unchanged. *)

type univ = exn
(** The universal type: values of any ['a] are injected via a
    per-t-variable extensible-variant constructor (no [Obj]). *)

type locator = {
  l_status : int Atomic.t;
  l_old : univ;
  mutable l_new : univ;
  l_owner : int;
}
(** DSTM-style locator.  [l_status] is the owning transaction's status
    cell, shared across all its locators: 0 = active, 1 = committed,
    2 = aborted; transitions are monotone and terminal.  Only the DSTM
    core reads or writes locators.  [l_owner] is the installing
    domain's plan slot when the {!Blame} seam is armed (-1 otherwise):
    it lets a stealer name the victim of its abort. *)

type 'a tvar = {
  id : int;
  content : 'a Atomic.t;
  vlock : int Atomic.t;
  locator : locator Atomic.t;
  owner : int Atomic.t;
      (** plan slot of the last lock holder / committed writer, written
          only while {!Blame} is armed (-1 = unknown) *)
  inj : 'a -> univ;
  proj : univ -> 'a option;
}

val tvar : 'a -> 'a tvar
(** A fresh t-variable, coherent under every core: [content] and the
    initial (committed) locator both hold the initial value.  A
    t-variable must not be shared across algorithm switches: each core
    maintains its own side of the representation. *)

val root_status : int Atomic.t
(** The permanently-committed status cell shared by all initial
    locators. *)

exception Retry
(** User-requested retry; see [Stm.retry]. *)

exception Conflict
(** Internal: aborts the current attempt; caught by the facade's retry
    loop.  Cores also convert bounded-spin exhaustion behind a stranded
    lock into [Conflict] so starving domains stay observable. *)

(** Runtime tracing; see [Stm.Trace] for the user-facing contract. *)
module Trace : sig
  val tracing : bool Atomic.t
  (** The armed flag, exposed so hot paths can do a single
      [Atomic.get]. *)

  val start : ?capacity:int -> unit -> unit
  val start_null : unit -> unit
  val stop : unit -> unit
  val is_on : unit -> bool

  val emit :
    Tm_trace.Trace_event.category ->
    string ->
    Tm_trace.Trace_event.phase ->
    (string * Tm_trace.Trace_event.arg) list ->
    unit

  val events : unit -> Tm_trace.Trace_event.t list
  val dropped : unit -> int
  val emitted : unit -> int
end

(** Deterministic fault-injection points; see [Stm.Chaos] for the
    user-facing contract and [Stm.Algo] for where each core fires each
    point. *)
module Chaos : sig
  type point = Read | Validate | Lock_acquire | Pre_commit | Post_commit
  type action = Proceed | Abort | Stall of int | Crash

  exception Crashed

  val armed : bool Atomic.t
  val install : (point -> action) -> unit
  val uninstall : unit -> unit
  val is_armed : unit -> bool
  val point_label : point -> string
  val stall : int -> unit

  val decide : point -> action
  (** Consult the handler (or [Proceed] when disarmed). *)

  val fire : point -> unit
  (** [decide] plus the no-locks-held interpretation: [Abort] raises
      {!Conflict}, [Crash] raises {!Crashed}.  Commit paths that hold
      locks interpret {!decide} themselves. *)
end

(** Always-on telemetry probe; see [Stm.Tel] for the user-facing
    contract. *)
module Tel : sig
  type phase = Begin | Read | Lock | Validate | Publish | Commit | Abort

  type probe = {
    now : unit -> int;
    count : phase -> unit;
    observe : phase -> int -> unit;
  }

  val null_probe : probe
  val armed : bool Atomic.t
  val probe : probe Atomic.t
  val install : probe -> unit
  val uninstall : unit -> unit
  val is_armed : unit -> bool
  val phase_label : phase -> string
end

(** Blame attribution seam; see [Stm.Blame] for the user-facing
    contract.  Cores guard every emission site (and every ownership
    stamp) with one [Atomic.get] on {!Blame.armed}, so the disarmed
    fast path is byte-identical to the pre-blame one. *)
module Blame : sig
  type cause = Read_conflict | Lock_busy | Validation | Stolen | Wait_budget

  type event = {
    b_victim : int;  (** slot whose attempt is impeded (-1 unknown) *)
    b_aggressor : int;  (** slot held responsible (-1 unknown) *)
    b_tvar : int;  (** t-variable id the conflict was on (-1 none) *)
    b_cause : cause;
  }

  type sink = { on_event : event -> unit; on_progress : int -> unit }

  val null_sink : sink
  val armed : bool Atomic.t
  val install : sink -> unit
  val uninstall : unit -> unit
  val is_armed : unit -> bool
  val cause_label : cause -> string

  val causes : cause list
  (** Every cause, in label order — the stable axis of exported
      histograms. *)

  val set_self : int -> unit
  (** Bind the calling domain's plan slot (its blame identity).  Set by
      the chaos runner's workers; unset domains report -1. *)

  val self : unit -> int

  val emit : aggressor:int -> tvar:int -> cause -> unit
  (** Deliver one event to the sink, victim = the calling domain's
      slot.  Call only from an armed-guarded site: [emit] itself does
      not re-check {!armed}. *)

  val emit_event : victim:int -> aggressor:int -> tvar:int -> cause -> unit
  (** [emit] with an explicit victim — for the one site where the
      emitter is the aggressor (the DSTM steal names the locator's
      installer as victim).  Same armed-guarded contract. *)

  val progress : unit -> unit
  (** Commit watermark tick for the calling domain's slot; checks
      {!armed} itself (one atomic load when disarmed). *)
end

(** {1 Versioned-lock helpers (TL2's vlock word)} *)

val locked : int -> bool
val version_of : int -> int
val read_vlock : 'a tvar -> int
val try_lock_tvar : 'a tvar -> bool
val unlock_tvar : 'a tvar -> unit

val publish_tvar : 'a tvar -> univ -> int -> unit
(** Set the content and release the vlock at the given version. *)

val set_tvar : 'a tvar -> univ -> unit
(** Set the content only (serialized cores' write-back). *)

(** {1 Write-set entries} *)

type wentry = {
  w_id : int;
  mutable w_value : univ;
  w_try_lock : unit -> bool;
  w_unlock : unit -> unit;
  w_publish : univ -> int -> unit;
  w_set : univ -> unit;
  w_owner : int Atomic.t;  (** the t-variable's [owner] word *)
}

val wentry_of : 'a tvar -> wentry

val find_written : wentry list -> 'a tvar -> 'a option
(** Read-own-write lookup. *)

val buffer_write : wentry list ref -> 'a tvar -> 'a -> unit
(** Insert or update the buffered write for the t-variable. *)

val snapshot_read : 'a tvar -> 'a
(** Direct atomic snapshot read through the vlock seqlock. *)

val spin_budget : int
(** Relax iterations a serialized core spins behind a busy lock before
    converting the wait into {!Conflict} (keeps peers of a crashed lock
    holder starving-but-observable instead of deadlocked). *)

(** {1 The per-algorithm core interface}

    A core supplies the transaction engine; the [Stm] facade owns the
    retry loop (backoff, trace attempt spans, Tel Begin/Commit/Abort
    timing, global commit/abort counters) and the per-domain
    current-transaction slot.

    Contract:
    - [begin_] never blocks and never raises: any waiting happens in
      [read]/[write]/[commit] where the re-run transaction body keeps
      external stop-flags observable.
    - [read]/[write]/[commit] raise {!Conflict} to abort the attempt
      and may raise [Chaos.Crashed]; before re-running (or on any
      other exception) the facade calls [abort_cleanup], which must be
      idempotent and release everything the attempt still holds.
      [abort_cleanup] is never called after [Chaos.Crashed]: a crashed
      transaction keeps whatever it holds, by design.
    - [commit] returning normally means the transaction took effect
      and the core has released everything.
    - [recover] releases any {e core-global} state abandoned by crashed
      transactions (the serializer, the sequence lock); per-t-variable
      state (vlocks, locators) is recovered by dropping the crashed
      run's t-variables.  Only sound once every transaction of the core
      is finished or dead — it is for fault-injection harnesses tearing
      down a run, not for concurrent use. *)
module type S = sig
  type txn

  val algo_name : string
  val begin_ : unit -> txn
  val read : txn -> 'a tvar -> 'a
  val write : txn -> 'a tvar -> 'a -> unit
  val commit : txn -> unit
  val abort_cleanup : txn -> unit
  val recover : unit -> unit
  val direct_read : 'a tvar -> 'a
end

type packed = P : (module S with type txn = 't) * 't -> packed
(** A core paired with one of its in-flight transactions — the
    facade's per-domain current-transaction slot. *)
