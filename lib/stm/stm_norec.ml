(* NOrec: no ownership records — value-based validation under a single
   global sequence lock.

   The only shared metadata is [seqlock]: even = free (the value is the
   commit sequence number), odd = a writer is writing back.  A
   transaction snapshots the sequence number at begin; a read returns
   the content if the lock still equals the snapshot, otherwise it
   re-validates the whole read set value-by-value and adopts the new
   snapshot.  Commit acquires the lock with CAS(snap, snap+1) —
   revalidating until it wins — writes back, and releases to snap+2.

   Validation compares with physical equality ([==]): sound (the same
   box is the same value), conservative (a new structurally-equal box
   aborts spuriously), and safe on contents a polymorphic [=] would
   refuse (closures inside txn_map/txn_list nodes).

   Phase truthfulness: NOrec has no per-location lock-acquire phase, so
   this core never emits [Tel.Lock] — acquiring the sequence lock *is*
   validation (the CAS argument is the validated snapshot) and is
   observed under [Tel.Validate]; write-back is [Tel.Publish].

   Chaos mapping: [Read] before each (non-own) read, [Validate] before
   commit-time lock acquisition (holding nothing), [Pre_commit] once
   the sequence lock is held — a [Crash] there strands it odd forever
   and every peer starves (bounded spins keep them observable), an
   [Abort] restores it — and [Post_commit] after release.
   [Lock_acquire] never fires.

   Seam sites here are under static contract: every Tel/Chaos/Blame
   emission must match [Stm.Algo]'s announcement for Norec and sit
   behind its armed guard (tmlive static: seam-contract/seam-guard). *)

open Stm_core
module Tev = Tm_trace.Trace_event

let algo_name = "norec"

(* Even = free (commit sequence number), odd = write-back in progress. *)
let seqlock = Atomic.make 0

(* Blame identity of the last committer (the slot that last won the
   sequence-lock CAS), written only while the Blame seam is armed: a
   peer whose value validation fails, or whose wait behind an odd lock
   exhausts its budget, blames this slot. *)
let seq_owner = Atomic.make (-1)

type rentry = { nr_id : int; nr_check : unit -> bool }

type txn = {
  mutable snap : int;
  mutable reads : rentry list;
  mutable writes : wentry list;
}

let begin_ () =
  let g = Atomic.get seqlock in
  (* Never block in begin: under an odd (held or stranded) lock start
     from the next even value — the first read will spin/validate where
     the re-run transaction body keeps stop flags observable. *)
  { snap = (if g land 1 = 0 then g else g + 1); reads = []; writes = [] }

let await_even () =
  let rec go budget =
    let v = Atomic.get seqlock in
    if v land 1 = 0 then v
    else if budget <= 0 then begin
      if Atomic.get Blame.armed then
        Blame.emit ~aggressor:(Atomic.get seq_owner) ~tvar:(-1)
          Blame.Wait_budget;
      raise Conflict
    end
    else begin
      Domain.cpu_relax ();
      go (budget - 1)
    end
  in
  go spin_budget

(* Value-based revalidation: wait for a quiescent lock, re-check every
   read, and adopt the observed sequence number as the new snapshot if
   the lock did not move during the checks. *)
let revalidate t =
  let rec go () =
    let s = await_even () in
    let rec first_invalid = function
      | [] -> None
      | r :: rest -> if r.nr_check () then first_invalid rest else Some r.nr_id
    in
    (match first_invalid t.reads with
    | None -> ()
    | Some bad ->
        if Atomic.get Trace.tracing then
          Trace.emit Tev.Validation "read-invalid" Tev.Instant
            [ ("tvar", Tev.Int bad) ];
        if Atomic.get Blame.armed then
          Blame.emit ~aggressor:(Atomic.get seq_owner) ~tvar:bad
            Blame.Validation;
        raise Conflict);
    if Atomic.get seqlock = s then t.snap <- s else go ()
  in
  go ()

let read (type a) t (tv : a tvar) : a =
  match find_written t.writes tv with
  | Some x -> x (* read-own-write *)
  | None ->
      if Atomic.get Chaos.armed then Chaos.fire Chaos.Read;
      if Atomic.get Tel.armed then (Atomic.get Tel.probe).Tel.count Tel.Read;
      let rec sample () =
        let v = Atomic.get tv.content in
        if Atomic.get seqlock = t.snap then v
        else begin
          revalidate t;
          sample ()
        end
      in
      let v = sample () in
      t.reads <-
        { nr_id = tv.id; nr_check = (fun () -> Atomic.get tv.content == v) }
        :: t.reads;
      v

let write (type a) t (tv : a tvar) (x : a) : unit =
  let writes = ref t.writes in
  buffer_write writes tv x;
  t.writes <- !writes

let commit t =
  match t.writes with
  | [] -> () (* read-only: the read set was kept snapshot-consistent *)
  | writes ->
      let tr = Atomic.get Trace.tracing in
      let tel = Atomic.get Tel.armed in
      let tp = if tel then Atomic.get Tel.probe else Tel.null_probe in
      if Atomic.get Chaos.armed then Chaos.fire Chaos.Validate;
      let t0 = if tel then tp.Tel.now () else 0 in
      (* Acquire = validate: CAS the validated snapshot to odd,
         revalidating (and adopting newer snapshots) until it wins. *)
      let rec acquire () =
        if not (Atomic.compare_and_set seqlock t.snap (t.snap + 1)) then begin
          revalidate t;
          acquire ()
        end
      in
      acquire ();
      if Atomic.get Blame.armed then Atomic.set seq_owner (Blame.self ());
      let t1 =
        if tel then begin
          let t' = tp.Tel.now () in
          tp.Tel.observe Tel.Validate (t' - t0);
          t'
        end
        else 0
      in
      (* Sequence lock held (odd): a chaos [Abort] must restore it, a
         [Crash] deliberately leaves it odd — the stranded-seqlock
         adversary. *)
      (if Atomic.get Chaos.armed then
         match Chaos.decide Chaos.Pre_commit with
         | Chaos.Proceed -> ()
         | Chaos.Stall n -> Chaos.stall n
         | Chaos.Abort ->
             Atomic.set seqlock t.snap;
             raise Conflict
         | Chaos.Crash -> raise Chaos.Crashed);
      let ws = List.sort_uniq (fun a b -> Int.compare a.w_id b.w_id) writes in
      (* Holding the sequence lock is holding every lock: trace the
         write set as acquired, published and released under it so the
         lock-discipline lints see a coherent protocol. *)
      if tr then
        List.iteri
          (fun k (w : wentry) ->
            Trace.emit Tev.Lock "acquire" Tev.Instant
              [ ("tvar", Tev.Int w.w_id); ("order", Tev.Int k) ])
          ws;
      List.iter
        (fun (w : wentry) ->
          if tr then begin
            Trace.emit Tev.Txn "publish" Tev.Instant
              [ ("tvar", Tev.Int w.w_id) ];
            Trace.emit Tev.Lock "release" Tev.Instant
              [ ("tvar", Tev.Int w.w_id) ]
          end;
          w.w_set w.w_value)
        ws;
      Atomic.set seqlock (t.snap + 2);
      if tel then tp.Tel.observe Tel.Publish (tp.Tel.now () - t1);
      if Atomic.get Chaos.armed then Chaos.fire Chaos.Post_commit

(* Conflict is only ever raised while the sequence lock is free (the
   held-lock window cannot fail except by deliberate chaos, which
   restores or strands it itself), so there is nothing to release. *)
let abort_cleanup t =
  t.reads <- [];
  t.writes <- []

(* A transaction that crashed between acquiring the sequence lock and
   publishing leaves it odd forever; once every transaction is finished
   or dead, bumping it to the next even value un-strands the core. *)
let recover () =
  let g = Atomic.get seqlock in
  if g land 1 = 1 then Atomic.set seqlock (g + 1);
  Atomic.set seq_owner (-1)

(* Content cells are only written under the sequence lock and each
   write is atomic; a single-location direct read is a committed (or
   just-committing) value either way. *)
let direct_read tv = Atomic.get tv.content
