(* TL2 over OCaml 5 atomics — the default core of the zoo.

   A global version clock, per-t-variable versioned spinlocks, deferred
   updates, commit-time lock acquisition in canonical order and
   read-set validation.  Readers use the classic seqlock protocol
   (read vlock, read content, read vlock again) and validate against
   the transaction's read version.  Progressive in the
   Kuznetsov–Ravi sense: a transaction aborts only on a real data
   conflict (or a chaos fault).

   Seam sites here are under static contract: every Tel/Chaos/Blame
   emission must match [Stm.Algo]'s announcement for Tl2 and sit
   behind its armed guard (tmlive static: seam-contract/seam-guard). *)

open Stm_core
module Tev = Tm_trace.Trace_event

let algo_name = "tl2"
let clock = Atomic.make 0

type rentry = {
  r_id : int;
  check : rv:int -> owned:(int -> bool) -> bool;
  r_owner : unit -> int;  (** blame: current owner word of the t-variable *)
}

type txn = {
  rv : int;
  mutable reads : rentry list;
  mutable writes : wentry list;  (** unordered; sorted by id at commit *)
}

let rentry_of tv seen_version =
  {
    r_id = tv.id;
    check =
      (fun ~rv ~owned ->
        let v = read_vlock tv in
        let ok_lock = (not (locked v)) || owned tv.id in
        ok_lock && version_of v <= rv && version_of v = seen_version);
    r_owner = (fun () -> Atomic.get tv.owner);
  }

let begin_ () = { rv = Atomic.get clock; reads = []; writes = [] }

let read (type a) txn (tv : a tvar) : a =
  match find_written txn.writes tv with
  | Some x -> x (* read-own-write *)
  | None ->
      if Atomic.get Chaos.armed then Chaos.fire Chaos.Read;
      if Atomic.get Tel.armed then (Atomic.get Tel.probe).Tel.count Tel.Read;
      let blame_conflict () =
        if Atomic.get Blame.armed then
          Blame.emit ~aggressor:(Atomic.get tv.owner) ~tvar:tv.id
            Blame.Read_conflict;
        raise Conflict
      in
      let v1 = read_vlock tv in
      if locked v1 || version_of v1 > txn.rv then blame_conflict ();
      let x = Atomic.get tv.content in
      if read_vlock tv <> v1 then blame_conflict ();
      txn.reads <- rentry_of tv (version_of v1) :: txn.reads;
      x

let write (type a) txn (tv : a tvar) (x : a) : unit =
  let writes = ref txn.writes in
  buffer_write writes tv x;
  txn.writes <- !writes

let commit txn =
  match txn.writes with
  | [] -> () (* read-only: reads were validated against rv as they happened *)
  | writes ->
      let tr = Atomic.get Trace.tracing in
      let tel = Atomic.get Tel.armed in
      let tp = if tel then Atomic.get Tel.probe else Tel.null_probe in
      let ws = List.sort_uniq (fun a b -> Int.compare a.w_id b.w_id) writes in
      (* Locks held so far, newest first.  Commit-scoped so both the
         normal conflict back-outs and a chaos [Abort] at any point can
         release exactly what is held. *)
      let acquired = ref [] in
      let release_all order =
        List.iter
          (fun (w : wentry) ->
            (* Emit release before the real unlock: once the vlock is
               even another domain can acquire it, and its acquire
               event must sequence after ours. *)
            if tr then
              Trace.emit Tev.Lock "release" Tev.Instant
                [ ("tvar", Tev.Int w.w_id) ];
            w.w_unlock ())
          (order !acquired)
      in
      (* Chaos interception inside commit: [Abort] backs out held locks
         like any conflict; [Crash] deliberately does not — a crashed
         lock holder is the experiment. *)
      let chaos p =
        if Atomic.get Chaos.armed then
          match Chaos.decide p with
          | Chaos.Proceed -> ()
          | Chaos.Stall n -> Chaos.stall n
          | Chaos.Abort ->
              release_all Fun.id;
              raise Conflict
          | Chaos.Crash -> raise Chaos.Crashed
      in
      (* Lock in canonical order; back out on failure. *)
      let rec lock_all k = function
        | [] -> ()
        | w :: rest ->
            chaos Chaos.Lock_acquire;
            if w.w_try_lock () then begin
              if tr then
                Trace.emit Tev.Lock "acquire" Tev.Instant
                  [ ("tvar", Tev.Int w.w_id); ("order", Tev.Int k) ];
              (* Stamp ownership only when blame is armed: the word
                 then names the last lock holder / committed writer of
                 the t-variable, which is who its next victim blames. *)
              if Atomic.get Blame.armed then
                Atomic.set w.w_owner (Blame.self ());
              acquired := w :: !acquired;
              lock_all (k + 1) rest
            end
            else begin
              if tr then
                Trace.emit Tev.Lock "busy" Tev.Instant
                  [ ("tvar", Tev.Int w.w_id) ];
              if Atomic.get Blame.armed then
                Blame.emit ~aggressor:(Atomic.get w.w_owner) ~tvar:w.w_id
                  Blame.Lock_busy;
              release_all Fun.id;
              raise Conflict
            end
      in
      let t0 = if tel then tp.Tel.now () else 0 in
      lock_all 0 ws;
      let t1 =
        if tel then begin
          let t = tp.Tel.now () in
          tp.Tel.observe Tel.Lock (t - t0);
          t
        end
        else 0
      in
      let wv = Atomic.fetch_and_add clock 1 + 1 in
      chaos Chaos.Validate;
      let owned id = List.exists (fun w -> w.w_id = id) ws in
      let rec first_invalid = function
        | [] -> None
        | r :: rest ->
            if r.check ~rv:txn.rv ~owned then first_invalid rest else Some r
      in
      (match first_invalid txn.reads with
      | Some bad ->
          if tr then
            Trace.emit Tev.Validation "read-invalid" Tev.Instant
              [ ("tvar", Tev.Int bad.r_id) ];
          if Atomic.get Blame.armed then
            Blame.emit ~aggressor:(bad.r_owner ()) ~tvar:bad.r_id
              Blame.Validation;
          release_all List.rev;
          raise Conflict
      | None -> ());
      let t2 =
        if tel then begin
          let t = tp.Tel.now () in
          tp.Tel.observe Tel.Validate (t - t1);
          t
        end
        else 0
      in
      chaos Chaos.Pre_commit;
      (* Publishing a t-variable also releases its lock (the vlock is set
         to the new even version), hence the paired release event.  Both
         events are emitted while the lock is still really held so that a
         competing domain's acquire event can only sequence after them. *)
      List.iter
        (fun w ->
          if tr then begin
            Trace.emit Tev.Txn "publish" Tev.Instant
              [ ("tvar", Tev.Int w.w_id) ];
            Trace.emit Tev.Lock "release" Tev.Instant
              [ ("tvar", Tev.Int w.w_id) ]
          end;
          w.w_publish w.w_value wv)
        (List.rev !acquired);
      if tel then tp.Tel.observe Tel.Publish (tp.Tel.now () - t2);
      chaos Chaos.Post_commit

(* TL2 holds commit vlocks only inside [commit], and [commit] releases
   them on every [Conflict] path itself; nothing is ever left held when
   the facade sees an abort. *)
let abort_cleanup _txn = ()

(* No core-global lock state: a crashed commit's stranded vlocks live
   on the run's own t-variables, recovered by dropping them. *)
let recover () = ()
let direct_read tv = snapshot_read tv
