(** A real software transactional memory for OCaml 5 (multicore).

    TL2-style: a global version clock, per-t-variable versioned spinlocks,
    deferred updates, commit-time lock acquisition in canonical order and
    read-set validation — the same algorithm as the simulated [Tl2] of the
    zoo, here running on actual domains with [Atomic].

    Consistently with the paper's impossibility result (no TM ensures
    opacity and local progress in a fault-prone system), this runtime makes
    no per-transaction progress guarantee: a transaction may be aborted and
    retried an unbounded number of times under contention.  What it does
    ensure is opacity — every transaction, even one about to abort, sees a
    consistent snapshot — and, in the terms of Section 3.2.3, solo progress
    in crash-free systems (a stalled domain holding commit locks blocks
    conflicting commits; parasitic domains hold nothing).

    Usage:
    {[
      let acc1 = Stm.tvar 100 and acc2 = Stm.tvar 0 in
      Stm.atomically (fun () ->
          let v = Stm.read acc1 in
          Stm.write acc1 (v - 10);
          Stm.write acc2 (Stm.read acc2 + 10))
    ]} *)

type 'a tvar

val tvar : 'a -> 'a tvar
(** A fresh transactional variable with the given initial value. *)

val atomically : (unit -> 'a) -> 'a
(** Run the function as a transaction: reads/writes of t-variables inside
    it are isolated and take effect atomically at commit.  On conflict the
    transaction is rolled back and re-executed (with randomized exponential
    backoff).  Nesting is flattened: an [atomically] inside a transaction
    joins the enclosing one. *)

val read : 'a tvar -> 'a
(** Inside a transaction: a validated transactional read.  Outside: an
    atomic snapshot read. *)

val write : 'a tvar -> 'a -> unit
(** Inside a transaction: a deferred transactional write.
    @raise Invalid_argument outside a transaction. *)

exception Retry
(** User-requested retry: {!retry} aborts the current attempt and re-runs
    the transaction from the start (after backoff).  The classic
    busy-waiting [retry] — there is no parking. *)

val retry : unit -> 'a

val in_transaction : unit -> bool

val stats : unit -> int * int
(** [(commits, aborts)] since program start, summed over all domains. *)

(** Runtime tracing.

    Off by default; the instrumented hot paths pay a single atomic flag
    read per potential event when tracing is off.  When on, each domain
    records into its own fixed-capacity ring buffer ({!Tm_trace.Ring}),
    so tracing a long run keeps only the most recent events per domain
    and never grows memory.  Event timestamps are a global emission
    sequence number (a total order of emissions), not wall-clock time. *)
module Trace : sig
  val start : ?capacity:int -> unit -> unit
  (** Enable tracing into per-domain rings of [capacity] events
      (default 4096).  Discards events from any previous session. *)

  val start_null : unit -> unit
  (** Enable tracing with a null sink: events are constructed and counted
      but not stored.  For measuring emission overhead. *)

  val stop : unit -> unit
  (** Disable tracing.  Recorded events remain readable via {!events}. *)

  val is_on : unit -> bool

  val events : unit -> Tm_trace.Trace_event.t list
  (** Events retained across all domain rings, ordered by timestamp. *)

  val dropped : unit -> int
  (** Events overwritten in ring buffers (sum over domains). *)

  val emitted : unit -> int
  (** Events emitted since the last [start]/[start_null], including
      dropped and null-sunk ones. *)
end

(** Deterministic fault-injection interception points.

    Disarmed by default; every interception point then costs a single
    atomic flag read — the same zero-cost discipline as {!Trace}.  An
    installed handler is consulted at five points of the TL2 hot path
    ({!point}) and answers with an {!action}:

    - [Proceed] — no fault;
    - [Abort] — abort the current attempt as an ordinary conflict (it is
      counted, backed off and retried, and any commit vlocks already
      held are released first);
    - [Stall n] — spin for [n] {!Domain.cpu_relax} iterations, modelling
      a slow or descheduled process;
    - [Crash] — raise {!Crashed} out of {!atomically} {e without
      releasing} any commit vlocks the domain holds.  A [Crash] at
      [Pre_commit] therefore leaves the whole write set locked forever:
      the paper's crashed-lock-holder adversary, under which conflicting
      peers starve (see the solo-progress caveat above).

    Handlers run on the faulting domain and must be domain-safe.  This
    is the mechanism only; seeded fault plans, scenarios and empirical
    verdicts live in the [Tm_chaos] library. *)
module Chaos : sig
  type point =
    | Read  (** before each transactional read *)
    | Validate  (** at commit, before read-set validation (locks held) *)
    | Lock_acquire  (** before each commit vlock acquisition *)
    | Pre_commit  (** after validation, before publishing (locks held) *)
    | Post_commit  (** after the last publish (locks released) *)

  type action = Proceed | Abort | Stall of int | Crash

  exception Crashed
  (** Escapes {!atomically} on a [Crash] action; held vlocks stay held. *)

  val install : (point -> action) -> unit
  (** Install a handler and arm every interception point.  Replaces any
      previously installed handler. *)

  val uninstall : unit -> unit
  (** Disarm: back to the null handler and the one-flag-read fast path. *)

  val is_armed : unit -> bool

  val point_label : point -> string
  (** ["read"], ["validate"], ["lock-acquire"], ["pre-commit"],
      ["post-commit"]. *)
end

(** Always-on telemetry probe.

    The third user of the null-by-default discipline of {!Trace} and
    {!Chaos}: while no probe is installed every instrumented event costs
    a single atomic flag read and nothing is allocated; the probe record
    itself is only loaded once the flag is armed.

    An installed probe sees, per transaction attempt, a
    [count Begin]; per transactional read a [count Read]; and phase
    durations via [observe]: [Lock] (acquiring the write-set vlocks),
    [Validate] (write-version draw plus read-set validation), [Publish]
    (publishing and releasing), all within a write commit, plus the
    whole-attempt [Commit]/[Abort] latency from attempt start to
    outcome.  Durations are deltas of the probe's own [now] clock — the
    probe chooses the unit (tm_telemetry installs a monotonic
    nanosecond clock), which keeps this library clock-agnostic.

    Probes run on the transaction's domain and must be domain-safe and
    non-blocking; [tm_telemetry]'s sharded instruments are the intended
    implementation. *)
module Tel : sig
  type phase =
    | Begin  (** counted: a transaction attempt started *)
    | Read  (** counted: a validated transactional read *)
    | Lock  (** observed: commit vlock acquisition, write commits only *)
    | Validate  (** observed: read-set validation, write commits only *)
    | Publish  (** observed: publish + release, write commits only *)
    | Commit  (** observed: whole-attempt latency of a commit *)
    | Abort  (** observed: whole-attempt latency of an abort *)

  type probe = {
    now : unit -> int;  (** monotone; the probe's unit *)
    count : phase -> unit;
    observe : phase -> int -> unit;  (** duration in [now]'s unit *)
  }

  val null_probe : probe

  val install : probe -> unit
  (** Install and arm.  Replaces any previously installed probe. *)

  val uninstall : unit -> unit
  (** Disarm: back to the one-flag-read fast path. *)

  val is_armed : unit -> bool

  val phase_label : phase -> string
  (** ["begin"], ["read"], ["lock-acquire"], ["validate"],
      ["publish"], ["commit"], ["abort"]. *)
end
