(** A real software transactional memory for OCaml 5 (multicore), with a
    pluggable algorithm zoo.

    Four algorithms run behind one interface (see {!Algo}): TL2 (the
    default — global version clock, per-t-variable versioned spinlocks,
    deferred updates, commit-time validation), a global-lock
    serializer, a DSTM-style obstruction-free TM (revocable ownership
    records with abort-others stealing) and NOrec (value-based
    validation under a single sequence lock).  All of them share the
    {!Trace}, {!Chaos} and {!Tel} observation seams and the same
    transactional data-structure layer ([txn_*]).

    Consistently with the paper's impossibility result (no TM ensures
    opacity and local progress in a fault-prone system), no core makes
    a per-transaction progress guarantee: a transaction may be aborted
    and retried an unbounded number of times under contention.  What
    every core does ensure is opacity — every transaction, even one
    about to abort, sees a consistent snapshot.  Where they differ is
    exactly the paper's Section 3.2.3 liveness territory: which
    processes keep progressing when a peer crashes, stalls or turns
    parasitic (see [Tm_chaos] and the per-algorithm verdict matrix).

    Usage:
    {[
      let acc1 = Stm.tvar 100 and acc2 = Stm.tvar 0 in
      Stm.atomically (fun () ->
          let v = Stm.read acc1 in
          Stm.write acc1 (v - 10);
          Stm.write acc2 (Stm.read acc2 + 10))
    ]} *)

type 'a tvar

val tvar : 'a -> 'a tvar
(** A fresh transactional variable with the given initial value.  A
    t-variable belongs to the algorithm that first commits to it: do
    not carry t-variables across {!set_algo} switches (each core
    maintains its own side of the shared representation). *)

val atomically : (unit -> 'a) -> 'a
(** Run the function as a transaction under the currently selected
    algorithm: reads/writes of t-variables inside it are isolated and
    take effect atomically at commit.  On conflict the transaction is
    rolled back and re-executed (with randomized exponential backoff).
    Nesting is flattened: an [atomically] inside a transaction joins
    the enclosing one. *)

val read : 'a tvar -> 'a
(** Inside a transaction: a validated transactional read.  Outside: an
    atomic snapshot read. *)

val write : 'a tvar -> 'a -> unit
(** Inside a transaction: a deferred transactional write.
    @raise Invalid_argument outside a transaction. *)

exception Retry
(** User-requested retry: {!retry} aborts the current attempt and re-runs
    the transaction from the start (after backoff).  The classic
    busy-waiting [retry] — there is no parking. *)

val retry : unit -> 'a

val in_transaction : unit -> bool

val stats : unit -> int * int
(** [(commits, aborts)] since program start, summed over all domains
    and algorithms. *)

val recover : unit -> unit
(** Release core-global lock state abandoned by crashed transactions of
    the {e currently selected} algorithm — the stranded global-lock
    serializer, NOrec's odd sequence lock.  For fault-injection
    harnesses tearing down a run after every domain is joined: a
    crashed transaction never releases anything itself ({!Chaos}), and
    the serialized cores' locks are process-global, so without recovery
    one crashed run would starve every later run of the same core in
    the process.  Only sound while no transaction of the algorithm is
    in flight; per-t-variable state (TL2 vlocks, DSTM locators) is
    instead recovered by dropping the crashed run's t-variables.

    [recover] also disarms all three installable observation seams
    ({!Chaos}, {!Tel}, {!Blame}): a harness that died between install
    and uninstall must not leave a handler armed across runs.  The
    uninstalls are idempotent, so [recover] is safe to call twice. *)

(** The algorithm zoo: which core {!atomically} runs. *)
module Algo : sig
  type t =
    | Tl2  (** the default: progressive, per-location versioned locks *)
    | Global_lock  (** one serializer lock; blocking *)
    | Dstm  (** obstruction-free ownership records, aggressive stealing *)
    | Norec  (** value-based validation under a single sequence lock *)

  val all : t list

  val name : t -> string
  (** ["tl2"], ["global-lock"], ["dstm"], ["norec"] — the [--algo]
      vocabulary. *)

  val of_string : string -> (t, string) result
  val describe : t -> string

  val progress_label : t -> string
  (** The Kuznetsov–Ravi progress family: ["progressive"],
      ["blocking"], ["obstruction-free"], ["commit-serialized"]. *)

  val tel_phases : t -> Stm_core.Tel.phase list
  (** The per-algorithm phase mapping: exactly the {!Tel.phase}s this
      core can emit.  Enforced by the phase-mapping test; notable
      truths: NOrec and DSTM never emit [Lock] (no per-location
      lock-acquire phase exists), the global-lock serializer never
      emits [Validate]. *)

  val chaos_points : t -> Stm_core.Chaos.point list
  (** The {!Chaos.point}s this core fires, same contract.  The
      global-lock core never fires [Validate]; NOrec never fires
      [Lock_acquire]. *)

  val blame_causes : t -> Stm_core.Blame.cause list
  (** The {!Blame.cause}s this core can emit, same truthfulness
      contract.  Only the stealing DSTM core can emit [Stolen]; the
      serialized cores (global-lock, NOrec) convert conflicts into
      [Wait_budget] behind their single lock; TL2 is the only core
      with per-location [Read_conflict]/[Lock_busy]. *)
end

val set_algo : Algo.t -> unit
(** Select the algorithm used by subsequent transactions (initially
    {!Algo.Tl2}).  Not synchronized with in-flight transactions: switch
    only while no domain is inside {!atomically}. *)

val algo : unit -> Algo.t

val with_algo : Algo.t -> (unit -> 'a) -> 'a
(** [with_algo a f] runs [f] with [a] selected, restoring the previous
    selection afterwards (single-controller discipline; do not nest
    concurrently from several domains). *)

(** Runtime tracing.

    Off by default; the instrumented hot paths pay a single atomic flag
    read per potential event when tracing is off.  When on, each domain
    records into its own fixed-capacity ring buffer ({!Tm_trace.Ring}),
    so tracing a long run keeps only the most recent events per domain
    and never grows memory.  Event timestamps are a global emission
    sequence number (a total order of emissions), not wall-clock time. *)
module Trace : sig
  val start : ?capacity:int -> unit -> unit
  (** Enable tracing into per-domain rings of [capacity] events
      (default 4096).  Discards events from any previous session. *)

  val start_null : unit -> unit
  (** Enable tracing with a null sink: events are constructed and counted
      but not stored.  For measuring emission overhead. *)

  val stop : unit -> unit
  (** Disable tracing.  Recorded events remain readable via {!events}. *)

  val is_on : unit -> bool

  val events : unit -> Tm_trace.Trace_event.t list
  (** Events retained across all domain rings, ordered by timestamp. *)

  val dropped : unit -> int
  (** Events overwritten in ring buffers (sum over domains). *)

  val emitted : unit -> int
  (** Events emitted since the last [start]/[start_null], including
      dropped and null-sunk ones. *)
end

(** Deterministic fault-injection interception points.

    Disarmed by default; every interception point then costs a single
    atomic flag read — the same zero-cost discipline as {!Trace}.  An
    installed handler is consulted at up to five points of the hot
    path ({!point}) and answers with an {!action}:

    - [Proceed] — no fault;
    - [Abort] — abort the current attempt as an ordinary conflict (it is
      counted, backed off and retried, and anything the attempt holds —
      commit vlocks, the serializer, the sequence lock, ownerships —
      is released or revoked first);
    - [Stall n] — spin for [n] {!Domain.cpu_relax} iterations, modelling
      a slow or descheduled process;
    - [Crash] — raise {!Crashed} out of {!atomically} {e without
      releasing} anything the domain holds.  Under the lock-based
      cores a [Crash] at [Pre_commit] leaves locks stranded forever —
      the paper's crashed-lock-holder adversary, under which
      conflicting peers starve; under the obstruction-free DSTM core
      the abandoned ownerships are simply stolen and peers progress.

    Which core fires which point, and what is held there, is the
    per-algorithm mapping {!Algo.chaos_points} (e.g. the global-lock
    core fires [Read] only with the serializer already held).

    Handlers run on the faulting domain and must be domain-safe.  This
    is the mechanism only; seeded fault plans, scenarios and empirical
    verdicts live in the [Tm_chaos] library. *)
module Chaos : sig
  type point = Stm_core.Chaos.point =
    | Read  (** before each transactional read *)
    | Validate  (** before read-set validation *)
    | Lock_acquire  (** before a lock/ownership acquisition *)
    | Pre_commit  (** after validation, before publishing (held) *)
    | Post_commit  (** after the commit took effect (released) *)

  type action = Stm_core.Chaos.action =
    | Proceed
    | Abort
    | Stall of int
    | Crash

  exception Crashed
  (** Escapes {!atomically} on a [Crash] action; held locks stay held. *)

  val install : (point -> action) -> unit
  (** Install a handler and arm every interception point.  Replaces any
      previously installed handler. *)

  val uninstall : unit -> unit
  (** Disarm: back to the null handler and the one-flag-read fast path. *)

  val is_armed : unit -> bool

  val point_label : point -> string
  (** ["read"], ["validate"], ["lock-acquire"], ["pre-commit"],
      ["post-commit"]. *)
end

(** Always-on telemetry probe.

    The third user of the null-by-default discipline of {!Trace} and
    {!Chaos}: while no probe is installed every instrumented event costs
    a single atomic flag read and nothing is allocated; the probe record
    itself is only loaded once the flag is armed.

    An installed probe sees, per transaction attempt, a
    [count Begin]; per transactional read a [count Read]; and phase
    durations via [observe] — which phases exist depends on the
    selected algorithm ({!Algo.tel_phases}): under TL2 [Lock]
    (acquiring the write-set vlocks), [Validate] (write-version draw
    plus read-set validation) and [Publish] (publishing and releasing)
    within a write commit; under the global-lock core [Lock] (the
    serializer) and [Publish] but no [Validate]; under NOrec and DSTM
    [Validate] and [Publish] but no [Lock].  Every algorithm reports
    the whole-attempt [Commit]/[Abort] latency from attempt start to
    outcome.  Durations are deltas of the probe's own [now] clock — the
    probe chooses the unit (tm_telemetry installs a monotonic
    nanosecond clock), which keeps this library clock-agnostic.

    Probes run on the transaction's domain and must be domain-safe and
    non-blocking; [tm_telemetry]'s sharded instruments are the intended
    implementation. *)
module Tel : sig
  type phase = Stm_core.Tel.phase =
    | Begin  (** counted: a transaction attempt started *)
    | Read  (** counted: a validated transactional read *)
    | Lock  (** observed: lock acquisition (TL2, global-lock) *)
    | Validate  (** observed: read-set validation (TL2, DSTM, NOrec) *)
    | Publish  (** observed: making the write set visible *)
    | Commit  (** observed: whole-attempt latency of a commit *)
    | Abort  (** observed: whole-attempt latency of an abort *)

  type probe = Stm_core.Tel.probe = {
    now : unit -> int;  (** monotone; the probe's unit *)
    count : phase -> unit;
    observe : phase -> int -> unit;  (** duration in [now]'s unit *)
  }

  val null_probe : probe

  val install : probe -> unit
  (** Install and arm.  Replaces any previously installed probe. *)

  val uninstall : unit -> unit
  (** Disarm: back to the one-flag-read fast path. *)

  val is_armed : unit -> bool

  val phase_label : phase -> string
  (** ["begin"], ["read"], ["lock-acquire"], ["validate"],
      ["publish"], ["commit"], ["abort"]. *)
end

(** Blame attribution seam — who aborted (or is impeding) whom.

    Fourth user of the null-by-default discipline of {!Trace}, {!Chaos}
    and {!Tel}: while no sink is installed every abort/steal/wait
    decision site in the cores costs a single atomic flag read, and the
    per-t-variable ownership words the attribution relies on are never
    written.  Arming therefore changes what is {e recorded}, never what
    the algorithms {e decide}.

    An installed sink sees one {!event} per blame-worthy decision —
    victim slot, aggressor slot, t-variable id, {!cause} — and one
    [on_progress] tick per successful commit (the progress watermark
    feed).  Which causes a core can emit is {!Algo.blame_causes}:

    - TL2 blames the last committed writer / current lock holder of the
      conflicting t-variable ([Read_conflict], [Lock_busy],
      [Validation]);
    - DSTM emits [Stolen] from the {e aggressor}'s domain at a
      successful ownership steal (victim = the installing slot recorded
      in the locator) and [Validation] at read-set revalidation
      failures;
    - the global-lock serializer and NOrec emit [Wait_budget] when a
      spin behind their single lock exhausts its budget, blaming the
      slot that last acquired it; NOrec also emits [Validation].

    Identity is the {e plan slot} (0..domains-1) bound with
    {!set_self} by the harness that owns the run (the chaos runner
    binds its workers); unslotted domains report -1.  One live
    transaction per slot makes slot = transaction for attribution.
    Sinks run on the emitting domain and must be domain-safe and
    non-blocking; [tm_telemetry]'s [Blame_graph] is the intended
    implementation. *)
module Blame : sig
  type cause = Stm_core.Blame.cause =
    | Read_conflict  (** TL2: read saw a locked or too-new t-variable *)
    | Lock_busy  (** TL2: commit-time write-set lock acquisition lost *)
    | Validation  (** read-set (re)validation failed *)
    | Stolen  (** DSTM: ownership stolen — victim's commit is doomed *)
    | Wait_budget  (** spin budget exhausted behind a serialized lock *)

  type event = Stm_core.Blame.event = {
    b_victim : int;  (** slot whose attempt is impeded (-1 unknown) *)
    b_aggressor : int;  (** slot held responsible (-1 unknown) *)
    b_tvar : int;  (** t-variable id the conflict was on (-1 none) *)
    b_cause : cause;
  }

  type sink = Stm_core.Blame.sink = {
    on_event : event -> unit;
    on_progress : int -> unit;  (** a commit by the given slot *)
  }

  val null_sink : sink

  val install : sink -> unit
  (** Install and arm.  Replaces any previously installed sink. *)

  val uninstall : unit -> unit
  (** Disarm: back to the one-flag-read fast path. *)

  val is_armed : unit -> bool

  val cause_label : cause -> string
  (** ["read-conflict"], ["lock-busy"], ["validation"], ["stolen"],
      ["wait-budget"]. *)

  val causes : cause list
  (** Every cause, in label order — the stable axis of exported
      histograms. *)

  val set_self : int -> unit
  (** Bind the calling domain's plan slot (its blame identity). *)

  val self : unit -> int
end
