(** Rate-ladder load curves: offered vs achieved throughput, shed
    fraction and queueing/sojourn tails per rung.

    {2 Determinism discipline}

    The {e canonical} curve ({!run}) is a virtual-time model — a single
    server draining a FIFO queue at {!default_quantum_ns} nanoseconds
    per {!Workload.cost} unit, fed by the deterministic {!Arrival}
    schedule in global-index order.  It is a pure integer computation of
    (profile, seed, clients, ops, keys, queue_cap, quantum, arrival
    kind, ladder): no wall clock and {e no domain count}, so the
    canonical JSON ({!to_json}) is byte-identical across runs and across
    every [--domains] choice — the CI gate [cmp]s exactly that.

    The {e measured} points ({!measure}) run the real multicore server
    under the same arrival clock: wall-clock achieved throughput and the
    open/closed p99 from the coordinated-omission-free recorder.
    Informational only, never part of a canonical artifact. *)

type pcts = { q50 : int; q90 : int; q99 : int; q999 : int; q9999 : int }
(** Hires-histogram percentiles, nanoseconds of virtual time. *)

type point = {
  p_rate : float;  (** offered rate, req/s *)
  p_offered : int;  (** requests scheduled ([clients * ops]) *)
  p_admitted : int;
  p_shed : int;  (** arrivals over [queue_cap * quantum] ns of backlog *)
  p_achieved : float;  (** admitted per second of virtual makespan *)
  p_queueing : pcts;  (** arrival to service start *)
  p_service : pcts;
  p_sojourn : pcts;  (** arrival to completion *)
}

type curve = {
  v_kind : Arrival.kind;
  v_profile : Workload.profile;
  v_seed : int;
  v_clients : int;
  v_ops : int;
  v_keys : int;
  v_queue_cap : int;
  v_quantum : int;
  v_points : point list;  (** ladder order *)
}

val default_quantum_ns : int
(** 1000: one {!Workload.cost} unit is 1us of virtual service time, so
    the default server drains about 10^6/avg-cost requests per second. *)

val run :
  ?quantum_ns:int ->
  ?on_sample:(Tm_telemetry.Registry.snapshot -> unit) ->
  kind:Arrival.kind ->
  ladder:float list ->
  Server.config ->
  curve
(** Sweep the ladder (one virtual-queue pass per rate).  Only the
    config's profile, seed, clients, ops, keys and queue_cap are read —
    domains, algo and batching do not exist in the model.  [on_sample]
    receives one scrape per rung ([ts] = rung index, fresh registry:
    [tm_loadcurve_{admitted,shed}_total] counters and
    [tm_loadcurve_{queueing,service,sojourn}_ns] hires histograms), all
    deterministic, so a JSONL time series of the sweep is canonical too.
    @raise Invalid_argument on an empty ladder, a non-positive rate or
    [quantum_ns < 1]. *)

val shed_fraction : point -> float

val knee : ?threshold:float -> (float * float) list -> float
(** [knee xy] over [(offered, achieved)] pairs: the highest offered rate
    still achieving at least [threshold] (default 0.85) of itself, [0.0]
    if none does. *)

val curve_xy : curve -> (float * float) list
(** The curve's [(offered, achieved)] pairs, for {!knee}. *)

val to_json : curve -> string
(** The canonical loadcurve document: configuration echo (no domains
    field), the knee, then one rung object per ladder entry with
    offered/admitted/shed counts, shed fraction, achieved throughput and
    p50/p90/p99/p99.9/p99.99 for queueing, service and sojourn.
    Byte-deterministic. *)

val pp_curve : Format.formatter -> curve -> unit
(** Human table: one line per rung plus the knee. *)

(** {2 Measured points (informational)} *)

type mpoint = {
  m_rate : float;
  m_wall : float;
  m_admitted : int;
  m_shed : int;
  m_achieved : float;  (** admitted per wall-clock second *)
  m_open_p99 : int;  (** censored sojourn p99, ns *)
  m_closed_p99 : int;  (** completed-only sojourn p99, ns *)
}

val measure :
  ?kind:Arrival.kind -> ladder:float list -> Server.config -> mpoint list
(** Run the real server once per rung with the rung's arrival clock
    ([kind] defaults to {!Arrival.Poisson}); wall-clock results. *)

val measure_xy : mpoint list -> (float * float) list
val pp_mpoint : Format.formatter -> mpoint -> unit
