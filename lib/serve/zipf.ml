module Prng = Tm_sim.Prng

type t = { z_s : float; z_cum : float array }

let create ?(s = 1.07) ~n () =
  if n < 1 then invalid_arg "Zipf.create: n < 1";
  if s < 0.0 then invalid_arg "Zipf.create: s < 0";
  let cum = Array.make n 0.0 in
  let acc = ref 0.0 in
  for r = 0 to n - 1 do
    acc := !acc +. (1.0 /. Float.pow (float_of_int (r + 1)) s);
    cum.(r) <- !acc
  done;
  let total = cum.(n - 1) in
  for r = 0 to n - 1 do
    cum.(r) <- cum.(r) /. total
  done;
  { z_s = s; z_cum = cum }

let n t = Array.length t.z_cum
let s t = t.z_s

let cumulative_mass t r =
  if r < 0 then 0.0
  else if r >= Array.length t.z_cum then 1.0
  else t.z_cum.(r)

let mass t r = cumulative_mass t r -. cumulative_mass t (r - 1)

(* First rank whose cumulative mass exceeds [u].  [u < 1.0] and the last
   entry is exactly 1.0, so the search always lands in range. *)
let sample_u t u =
  let cum = t.z_cum in
  let lo = ref 0 and hi = ref (Array.length cum - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cum.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo

(* 53 uniform bits, the double-precision standard construction. *)
let uniform01 g =
  let bits = Int64.to_int (Int64.shift_right_logical (Prng.next g) 11) in
  float_of_int bits *. 0x1p-53

let sample t g = sample_u t (uniform01 g)
