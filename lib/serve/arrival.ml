(* A deterministic open-loop arrival clock.

   Each request in a serve run gets a *scheduled arrival time* on the
   virtual nanosecond axis, a pure function of (seed, rate, global
   index).  Purity is the whole point: every domain, every run, every
   domain count derives the same schedule, so the canonical artifacts
   that mention arrivals stay byte-identical while the wall-clock pacing
   that consumes the schedule lives strictly on the measured side.

   Gaps are keyed per index (not drawn from one sequential stream), so
   schedule.(i) is computable without walking 0..i-1 drawing state — the
   cursor below is just a prefix-sum cache. *)

let ns_per_s = 1e9

type kind = Constant | Poisson

let kind_name = function Constant -> "constant" | Poisson -> "poisson"

let kind_of_string = function
  | "constant" -> Some Constant
  | "poisson" -> Some Poisson
  | _ -> None

type t = { a_kind : kind; a_rate : float; a_seed : int; a_period : int }

let make ~kind ~rate ~seed =
  if not (rate > 0.0) || Float.is_nan rate then
    invalid_arg "Arrival.make: rate must be positive";
  {
    a_kind = kind;
    a_rate = rate;
    a_seed = seed;
    a_period = max 1 (int_of_float (Float.round (ns_per_s /. rate)));
  }

let kind t = t.a_kind
let rate t = t.a_rate
let seed t = t.a_seed
let period_ns t = t.a_period

(* The gap between arrival [index - 1] and arrival [index] (arrival 0 is
   at gap(0) past the epoch; constant starts at 0).  Poisson inter-
   arrivals are exponential with mean [1/rate]: u is uniform in (0, 1]
   built from the top 53 bits of a per-index splitmix64 output (same
   keying discipline as [Workload.request]), so the draw never sees 0
   and [-. log u] never overflows. *)
let gap t index =
  match t.a_kind with
  | Constant -> if index = 0 then 0 else t.a_period
  | Poisson ->
      let g =
        Tm_sim.Prng.create
          (t.a_seed * 0x1000003 lxor ((index + 1) * 0x9E3779B1))
      in
      let raw = Tm_sim.Prng.next g in
      let u =
        (Int64.to_float (Int64.shift_right_logical raw 11) +. 1.0)
        *. 0x1.0p-53
      in
      max 0 (int_of_float (-.log u *. ns_per_s /. t.a_rate))

type cursor = { c_of : t; mutable c_index : int; mutable c_time : int }

let cursor t = { c_of = t; c_index = 0; c_time = 0 }

let next cur =
  let at = cur.c_time + gap cur.c_of cur.c_index in
  cur.c_index <- cur.c_index + 1;
  cur.c_time <- at;
  at

let skip cur n =
  for _ = 1 to n do
    ignore (next cur)
  done

let schedule t ~n =
  let cur = cursor t in
  Array.init n (fun _ -> next cur)
