module Prng = Tm_sim.Prng

type profile = Read_mostly | Write_heavy | Long_txn | Mixed

let profiles = [ Read_mostly; Write_heavy; Long_txn; Mixed ]

let profile_name = function
  | Read_mostly -> "read-mostly"
  | Write_heavy -> "write-heavy"
  | Long_txn -> "long-txn"
  | Mixed -> "mixed"

let profile_of_string s =
  match
    List.find_opt (fun p -> String.equal (profile_name p) s) profiles
  with
  | Some p -> Ok p
  | None ->
      Error
        (Fmt.str "unknown profile %S (expected %s)" s
           (String.concat ", " (List.map profile_name profiles)))

let describe = function
  | Read_mostly -> "90% get / 7% put / 3% transfer txn on the hot set"
  | Write_heavy -> "25% get / 50% put / 15% cas / 10% transfer txn"
  | Long_txn -> "30% get / 10% put / 60% long (20-op) transactions"
  | Mixed -> "45% get / 25% put / 10% cas / 10% txn / 10% long txn"

type request = Single of Store.op | Txn of Store.op list

let kinds = [ "cas"; "get"; "put"; "txn" ]

let kind = function
  | Single (Store.O_get _) -> "get"
  | Single (Store.O_put _) | Single (Store.O_add _) -> "put"
  | Single (Store.O_cas _) -> "cas"
  | Txn _ -> "txn"

let mutates = function
  | Single op -> Store.op_mutates op
  | Txn ops -> List.exists Store.op_mutates ops

let cost = function
  | Single (Store.O_get _) -> 8
  | Single _ -> 14
  | Txn ops -> 8 + (6 * List.length ops)

type t = {
  w_profile : profile;
  w_seed : int;
  w_keys : int;
  w_kv_n : int;  (** even keys: the Zipf-targeted kv plane *)
  w_cnt_n : int;  (** odd keys: the conserving counter plane *)
  w_zipf : Zipf.t;
}

let create ?(hot_s = 1.07) ~profile ~seed ~keys () =
  if keys < 4 then invalid_arg "Workload.create: keys < 4";
  let kv_n = (keys + 1) / 2 in
  {
    w_profile = profile;
    w_seed = seed;
    w_keys = keys;
    w_kv_n = kv_n;
    w_cnt_n = keys / 2;
    w_zipf = Zipf.create ~s:hot_s ~n:kv_n ();
  }

let profile t = t.w_profile
let seed t = t.w_seed
let keys t = t.w_keys
let zipf t = t.w_zipf

(* Zipf rank r on the kv plane is key 2r; counter slot u is key 2u+1. *)
let kv_key t g =
  let r = Zipf.sample t.w_zipf g in
  assert (r < t.w_kv_n);
  2 * r

let cnt_key u = (2 * u) + 1

let get t g = Single (Store.O_get (kv_key t g))
let put t g = Single (Store.O_put (kv_key t g, 1 + Prng.int g 1000))

let cas t g =
  Single (Store.O_cas (kv_key t g, Prng.int g 8, 1 + Prng.int g 1000))

(* One conserving transfer: two distinct counter keys, deltas +-d. *)
let transfer t g acc =
  let a = Prng.int g t.w_cnt_n in
  let b = (a + 1 + Prng.int g (t.w_cnt_n - 1)) mod t.w_cnt_n in
  let d = 1 + Prng.int g 8 in
  Store.O_add (cnt_key a, -d) :: Store.O_add (cnt_key b, d) :: acc

let short_txn t g = Txn (transfer t g [])

let long_txn t g =
  let reads = List.init 4 (fun _ -> Store.O_get (kv_key t g)) in
  let pairs = ref [] in
  for _ = 1 to 8 do
    pairs := transfer t g !pairs
  done;
  Txn (reads @ !pairs)

let request t ~client ~index =
  let g =
    Prng.create
      (t.w_seed * 0x1000003
      lxor (client * 0x9E3779B1)
      lxor ((index + 1) * 0x85EBCA6B))
  in
  let p = Prng.int g 100 in
  match t.w_profile with
  | Read_mostly ->
      if p < 90 then get t g
      else if p < 97 then put t g
      else short_txn t g
  | Write_heavy ->
      if p < 25 then get t g
      else if p < 75 then put t g
      else if p < 90 then cas t g
      else short_txn t g
  | Long_txn ->
      if p < 30 then get t g else if p < 40 then put t g else long_txn t g
  | Mixed ->
      if p < 45 then get t g
      else if p < 70 then put t g
      else if p < 80 then cas t g
      else if p < 90 then short_txn t g
      else long_txn t g
