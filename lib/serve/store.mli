(** A sharded transactional key-value table over [Stm] t-variables.

    Keys are dense ints in [0 .. keys-1], striped round-robin over a
    fixed stripe count: stripe [s] owns the directory of every key [k]
    with [k mod stripes = s].  Each key is one [int Stm.tvar]; all
    operations run inside [Stm.atomically] under whichever core is
    selected, so a multi-key request is one transaction.

    An optional {e journal} t-variable turns every mutating transaction
    into a conflict on one shared location: the serving path marks the
    journal with the number of mutating requests a commit applies, which
    (a) makes mutators conflict-universal — the property the chaos
    crash-holding-locks verdicts rely on — and (b) leaves the journal's
    final value equal to the number of admitted mutating requests, a
    deterministic quantity even under flat-combined batching. *)

type t

val create : ?stripes:int -> ?journal:bool -> keys:int -> unit -> t
(** [create ~keys ()] builds the table with all values 0.  [stripes]
    defaults to 64 and is clamped to [keys].  [journal] (default false)
    allocates the journal t-variable.  Must run with the serving core
    selected — the t-variables belong to the current algorithm.
    @raise Invalid_argument if [keys < 1]. *)

val keys : t -> int
val stripes : t -> int
val stripe_of : t -> int -> int
(** The stripe owning a key. *)

(** {2 Transactional operations}

    The [O_]-prefixed operations are the request alphabet; {!exec_op}
    runs one {e inside} an enclosing [Stm.atomically] body, so callers
    compose them freely into larger transactions. *)

type op =
  | O_get of int  (** read a key *)
  | O_put of int * int  (** key, value *)
  | O_add of int * int  (** key, delta — read-modify-write *)
  | O_cas of int * int * int  (** key, expected, desired *)

type result =
  | R_value of int  (** [O_get]: the value read *)
  | R_unit  (** [O_put], [O_add] *)
  | R_bool of bool  (** [O_cas]: whether it hit *)

val op_mutates : op -> bool
(** Whether the op writes (a missed [O_cas] still counts: it {e may}
    write, so admission and journal accounting treat it as a mutator). *)

val exec_op : t -> op -> result
(** Run one op inside the current transaction. *)

val write_key : t -> int -> int -> unit
(** Raw in-transaction write, for the flat combiner's drain loop. *)

val journal_mark : t -> int -> unit
(** In-transaction: bump the journal by [n] requests.  No-op when the
    journal is disabled. *)

(** {2 Whole-transaction conveniences} *)

val get : t -> int -> int
val put : t -> int -> int -> unit
val cas : t -> int -> expected:int -> desired:int -> bool

val multi : t -> op list -> result list
(** All ops as one transaction (journal-marked once if any mutates). *)

val spec_op : int array -> op -> result
(** The sequential-map specification: apply the op to a plain array
    (index = key).  Differential oracle for {!exec_op}/{!multi} — a
    single-domain run must leave the store byte-equal to folding
    [spec_op] over the same admitted ops in execution order. *)

(** {2 Non-transactional inspection}

    For after the workers are joined — each read is its own
    transaction, so a live dump is not a consistent cut. *)

val value : t -> int -> int
val sum : t -> int
val dump : t -> int array
val journal_value : t -> int
(** 0 when the journal is disabled. *)
