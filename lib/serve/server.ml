module Stm = Tm_stm.Stm
module Tel = Tm_telemetry
module Plan = Tm_chaos.Plan
module Runner = Tm_chaos.Runner
module Emp = Tm_liveness.Empirical

let now_ns () = Int64.to_int (Monotonic_clock.now ())
let drain_units = 12

type config = {
  c_profile : Workload.profile;
  c_algo : Stm.Algo.t;
  c_seed : int;
  c_domains : int;
  c_clients : int;
  c_ops : int;
  c_keys : int;
  c_stripes : int;
  c_batching : bool;
  c_journal : bool;
  c_queue_cap : int;
  c_arrival : Arrival.t option;
      (* open-loop arrival clock; None = closed loop *)
}

let validate cfg =
  if cfg.c_domains < 1 then invalid_arg "Server.config: domains < 1";
  if cfg.c_clients < cfg.c_domains then
    invalid_arg "Server.config: clients < domains";
  if cfg.c_ops < 1 then invalid_arg "Server.config: ops < 1";
  if cfg.c_keys < 4 then invalid_arg "Server.config: keys < 4";
  if cfg.c_queue_cap < 1 then invalid_arg "Server.config: queue_cap < 1"

let config ?(algo = Stm.Algo.Tl2) ?(clients = 10_000) ?(ops = 4)
    ?(keys = 1024) ?(stripes = 64) ?(batching = true) ?(journal = false)
    ?(queue_cap = 2048) ?arrival ~profile ~seed ~domains () =
  let cfg =
    {
      c_profile = profile;
      c_algo = algo;
      c_seed = seed;
      c_domains = domains;
      c_clients = clients;
      c_ops = ops;
      c_keys = keys;
      c_stripes = stripes;
      c_batching = batching;
      c_journal = journal;
      c_queue_cap = queue_cap;
      c_arrival = arrival;
    }
  in
  validate cfg;
  cfg

let workload cfg =
  Workload.create ~profile:cfg.c_profile ~seed:cfg.c_seed ~keys:cfg.c_keys ()

let total_requests cfg = cfg.c_clients * cfg.c_ops

(* The admission model: a virtual bounded queue in cost units, drained
   at a fixed rate per arrival.  Pure per-domain function of the request
   stream, hence canonical. *)
let iter_requests cfg wl ~domain ~f =
  let q = ref 0 in
  for index = 0 to cfg.c_ops - 1 do
    let client = ref domain in
    while !client < cfg.c_clients do
      let req = Workload.request wl ~client:!client ~index in
      q := max 0 (!q - drain_units);
      let cost = Workload.cost req in
      let admitted = !q + cost <= cfg.c_queue_cap in
      if admitted then q := !q + cost;
      f ~client:!client ~index req ~admitted;
      client := !client + cfg.c_domains
    done
  done

(* {2 Flat combining} *)

type fc_slot = {
  mutable fc_key : int;
  mutable fc_value : int;
  fc_state : int Atomic.t;  (* 0 empty, 1 pending, 2 applied *)
}

type fc = { fc_lock : bool Atomic.t; fc_slots : fc_slot array }

let fc_create ~stripes ~domains =
  Array.init stripes (fun _ ->
      {
        fc_lock = Atomic.make false;
        fc_slots =
          Array.init domains (fun _ ->
              { fc_key = 0; fc_value = 0; fc_state = Atomic.make 0 });
      })

(* Publish the put in this domain's slot, then either observe a
   combiner apply it or become the combiner: win the stripe lock, drain
   every pending slot into one transaction (journal-marked with the
   batch size, so journal accounting is per-request), release.  A
   waiting owner that finds the lock free takes it itself, so nobody
   waits on a sleeping combiner. *)
let fc_put combs store ~flushes d k v =
  let comb = combs.(Store.stripe_of store k) in
  let slot = comb.fc_slots.(d) in
  slot.fc_key <- k;
  slot.fc_value <- v;
  Atomic.set slot.fc_state 1;
  let rec wait () =
    if Atomic.get slot.fc_state = 2 then Atomic.set slot.fc_state 0
    else if Atomic.compare_and_set comb.fc_lock false true then begin
      let pending =
        Array.fold_left
          (fun acc s -> if Atomic.get s.fc_state = 1 then s :: acc else acc)
          [] comb.fc_slots
      in
      Stm.atomically (fun () ->
          List.iter (fun s -> Store.write_key store s.fc_key s.fc_value) pending;
          Store.journal_mark store (List.length pending));
      List.iter (fun s -> Atomic.set s.fc_state 2) pending;
      Atomic.set comb.fc_lock false;
      Tel.Instrument.incr flushes;
      Atomic.set slot.fc_state 0
    end
    else begin
      Domain.cpu_relax ();
      wait ()
    end
  in
  wait ()

(* {2 Serving a profile} *)

type lat = { l_kind : string; l_snap : Tel.Instrument.hsnap }

type per_domain = {
  d_requests : int;
  d_admitted : int;
  d_shed : int;
  d_batched : int;
  d_mutators : int;
}

type outcome = {
  s_config : config;
  s_requests : int;
  s_admitted : int;
  s_shed : int;
  s_batched : int;
  s_mutators : int;
  s_by_kind : (string * int) list;
  s_per_domain : per_domain array;
  s_journal_ok : bool;
  s_conserved : bool;
  s_wall : float;
  s_commits : int;
  s_aborts : int;
  s_flushes : int;
  s_latency : lat list;
  s_open : Tel.Latency_recorder.summary option;
      (* open-loop latency: present iff the run had an arrival clock *)
}

let counter_plane_sum store =
  let acc = ref 0 in
  for k = 0 to Store.keys store - 1 do
    if k land 1 = 1 then acc := !acc + Store.value store k
  done;
  !acc

let run ?on_sample cfg =
  validate cfg;
  Stm.with_algo cfg.c_algo @@ fun () ->
  let store =
    Store.create ~stripes:cfg.c_stripes ~journal:cfg.c_journal
      ~keys:cfg.c_keys ()
  in
  let wl = workload cfg in
  let nd = cfg.c_domains in
  (* Canonical registry: deterministic instruments only (see .mli). *)
  let reg = Tel.Registry.create () in
  let per name help =
    Array.init nd (fun d ->
        Tel.Registry.counter reg ~shards:1
          ~labels:[ ("domain", string_of_int d) ]
          ~help name)
  in
  let requests = per "tm_serve_requests_total" "Requests generated" in
  let admitted = per "tm_serve_admitted_total" "Requests admitted" in
  let shed = per "tm_serve_shed_total" "Requests shed by admission" in
  let batched =
    per "tm_serve_batched_total" "Admitted puts routed through a combiner"
  in
  let mutators = per "tm_serve_mutators_total" "Admitted mutating requests" in
  let by_kind =
    List.map
      (fun k ->
        ( k,
          Tel.Registry.counter reg
            ~labels:[ ("kind", k) ]
            ~help:"Admitted requests by kind" "tm_serve_admitted_kind_total" ))
      Workload.kinds
  in
  (* Measured, non-canonical: bare instruments, never scraped. *)
  let lat = List.map (fun k -> (k, Tel.Instrument.histogram ())) Workload.kinds in
  let flushes = Tel.Instrument.counter () in
  (* The open-loop recorder is registry-free on purpose: its samples are
     wall-clock measurements, and the canonical scrape must not see
     them. *)
  let recorder =
    Option.map
      (fun a ->
        Tel.Latency_recorder.create ~interval_ns:(Arrival.period_ns a)
          ~domains:nd ())
      cfg.c_arrival
  in
  let combs = fc_create ~stripes:(Store.stripes store) ~domains:nd in
  let scrape ts =
    match on_sample with
    | Some f -> f (Tel.Registry.scrape reg ~ts)
    | None -> ()
  in
  let commits0, aborts0 = Stm.stats () in
  scrape 0;
  (* Start barrier: the arrival epoch opens when every executor is
     spawned and ready, so domain-spawn latency (milliseconds) does not
     masquerade as queueing delay in the open-loop measurements. *)
  let ready = Atomic.make 0 in
  let go = Atomic.make 0 in
  let worker d () =
    (* Open-loop pacing state: a per-domain arrival cursor walked in
       global-index order (the schedule is a pure function of the index,
       so every domain count derives the same arrival times). *)
    let cur = Option.map Arrival.cursor cfg.c_arrival in
    let g_prev = ref (-1) in
    Atomic.incr ready;
    while Atomic.get go = 0 do
      Domain.cpu_relax ()
    done;
    let t0n = Atomic.get go in
    iter_requests cfg wl ~domain:d ~f:(fun ~client ~index req ~admitted:adm ->
        let sched =
          match cur with
          | None -> t0n
          | Some c ->
              let g = (index * cfg.c_clients) + client in
              Arrival.skip c (g - !g_prev - 1);
              g_prev := g;
              let at = t0n + Arrival.next c in
              (* dispatch no earlier than the scheduled arrival *)
              while now_ns () < at do
                Domain.cpu_relax ()
              done;
              at
        in
        Tel.Instrument.incr requests.(d);
        if not adm then Tel.Instrument.incr shed.(d)
        else begin
          Tel.Instrument.incr admitted.(d);
          Tel.Instrument.incr (List.assoc (Workload.kind req) by_kind);
          if Workload.mutates req then Tel.Instrument.incr mutators.(d);
          let h = List.assoc (Workload.kind req) lat in
          Option.iter
            (fun r -> Tel.Latency_recorder.mark r d ~sched)
            recorder;
          let start = now_ns () in
          (match req with
          | Workload.Single (Store.O_put (k, v)) when cfg.c_batching ->
              Tel.Instrument.incr batched.(d);
              fc_put combs store ~flushes d k v
          | Workload.Single op ->
              ignore
                (Stm.atomically (fun () ->
                     let r = Store.exec_op store op in
                     if Store.op_mutates op then Store.journal_mark store 1;
                     r))
          | Workload.Txn ops ->
              ignore
                (Stm.atomically (fun () ->
                     let rs = List.map (Store.exec_op store) ops in
                     if List.exists Store.op_mutates ops then
                       Store.journal_mark store 1;
                     rs)));
          let finish = now_ns () in
          Tel.Instrument.observe h (finish - start);
          Option.iter
            (fun r -> Tel.Latency_recorder.complete r d ~start ~finish)
            recorder
        end)
  in
  let ds = List.init nd (fun d -> Domain.spawn (worker d)) in
  while Atomic.get ready < nd do
    Domain.cpu_relax ()
  done;
  let t0 = Unix.gettimeofday () in
  Atomic.set go (now_ns ());
  List.iter Domain.join ds;
  let wall = Unix.gettimeofday () -. t0 in
  scrape (total_requests cfg);
  let commits1, aborts1 = Stm.stats () in
  let v a d = Tel.Instrument.value a.(d) in
  let sum a = Array.fold_left (fun acc c -> acc + Tel.Instrument.value c) 0 a in
  let mut_total = sum mutators in
  {
    s_config = cfg;
    s_requests = sum requests;
    s_admitted = sum admitted;
    s_shed = sum shed;
    s_batched = sum batched;
    s_mutators = mut_total;
    s_by_kind =
      List.map (fun (k, c) -> (k, Tel.Instrument.value c)) by_kind;
    s_per_domain =
      Array.init nd (fun d ->
          {
            d_requests = v requests d;
            d_admitted = v admitted d;
            d_shed = v shed d;
            d_batched = v batched d;
            d_mutators = v mutators d;
          });
    s_journal_ok =
      (not cfg.c_journal) || Store.journal_value store = mut_total;
    s_conserved = counter_plane_sum store = 0;
    s_wall = wall;
    s_commits = commits1 - commits0;
    s_aborts = aborts1 - aborts0;
    s_flushes = Tel.Instrument.value flushes;
    s_latency =
      List.map
        (fun (k, h) -> { l_kind = k; l_snap = Tel.Instrument.hist_snapshot h })
        lat;
    s_open =
      Option.map
        (fun r -> Tel.Latency_recorder.summary r ~now:(now_ns ()))
        recorder;
  }

let to_json o =
  let cfg = o.s_config in
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Fmt.str
       "{\"subsystem\":\"tmserve\",\"profile\":%S,\"algo\":%S,\"seed\":%d,\"domains\":%d,\"clients\":%d,\"ops_per_client\":%d,\"keys\":%d,\"stripes\":%d,\"batching\":%b,\"journal\":%b,\"queue_cap\":%d,\"arrival\":%s,\"requests\":%d,\"admitted\":%d,\"shed\":%d,\"batched_puts\":%d,\"mutators\":%d,\"journal_ok\":%b,\"conserved\":%b,\"by_kind\":{"
       (Workload.profile_name cfg.c_profile)
       (Stm.Algo.name cfg.c_algo) cfg.c_seed cfg.c_domains cfg.c_clients
       cfg.c_ops cfg.c_keys cfg.c_stripes cfg.c_batching cfg.c_journal
       cfg.c_queue_cap
       (match cfg.c_arrival with
       | None -> "{\"kind\":\"closed\"}"
       | Some a ->
           Fmt.str "{\"kind\":%S,\"rate\":%.1f}"
             (Arrival.kind_name (Arrival.kind a))
             (Arrival.rate a))
       o.s_requests o.s_admitted o.s_shed o.s_batched
       o.s_mutators o.s_journal_ok o.s_conserved);
  List.iteri
    (fun i (k, n) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Fmt.str "%S:%d" k n))
    o.s_by_kind;
  Buffer.add_string b "},\"per_domain\":[";
  Array.iteri
    (fun d pd ->
      if d > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Fmt.str
           "{\"domain\":%d,\"requests\":%d,\"admitted\":%d,\"shed\":%d,\"batched\":%d,\"mutators\":%d}"
           d pd.d_requests pd.d_admitted pd.d_shed pd.d_batched pd.d_mutators))
    o.s_per_domain;
  Buffer.add_string b "]}";
  Buffer.contents b

let pp_summary ppf o =
  let cfg = o.s_config in
  Fmt.pf ppf
    "@[<v>tmserve profile=%s algo=%s domains=%d seed=%d clients=%d \
     ops/client=%d batching=%b journal=%b@,"
    (Workload.profile_name cfg.c_profile)
    (Stm.Algo.name cfg.c_algo) cfg.c_domains cfg.c_seed cfg.c_clients
    cfg.c_ops cfg.c_batching cfg.c_journal;
  Fmt.pf ppf
    "requests %d: admitted %d, shed %d (batched puts %d, mutators %d)@,"
    o.s_requests o.s_admitted o.s_shed o.s_batched o.s_mutators;
  List.iter
    (fun (k, n) -> if n > 0 then Fmt.pf ppf "  admitted %-4s %d@," k n)
    o.s_by_kind;
  Fmt.pf ppf
    "measured: wall %.3fs, %.0f adm/s, commits %d, aborts %d, flushes %d@,"
    o.s_wall
    (float_of_int o.s_admitted /. Float.max 1e-9 o.s_wall)
    o.s_commits o.s_aborts o.s_flushes;
  List.iter
    (fun l ->
      if l.l_snap.Tel.Instrument.count > 0 then
        Fmt.pf ppf "  latency %-4s %a@," l.l_kind Tel.Instrument.pp_hsnap
          l.l_snap)
    o.s_latency;
  (match (o.s_config.c_arrival, o.s_open) with
  | Some a, Some y ->
      Fmt.pf ppf "arrival %s rate %.0f req/s (open loop)@,%a@,"
        (Arrival.kind_name (Arrival.kind a))
        (Arrival.rate a) Tel.Latency_recorder.pp_summary y
  | _ -> ());
  Fmt.pf ppf "journal %s, counter plane %s@]"
    (if o.s_journal_ok then "ok" else "MISMATCH")
    (if o.s_conserved then "conserved" else "VIOLATED")

(* {2 Chaos against the serving path} *)

type session = {
  k_plan : Plan.t;
  k_config : config;
  k_registry : Tel.Registry.t;
  k_liveness : Tel.Liveness_gauge.t;
  k_blame : Tel.Blame_graph.t option;
  k_ops : Tel.Instrument.counter array;
  k_attempts : Tel.Instrument.counter array;
  k_trycs : Tel.Instrument.counter array;
  k_commits : Tel.Instrument.counter array;
  k_crashed : Tel.Instrument.gauge array;
  k_latency : Tel.Latency_recorder.t option;
}

let session_plan s = s.k_plan
let session_config s = s.k_config
let session_registry s = s.k_registry
let session_liveness s = s.k_liveness
let session_blame s = s.k_blame
let session_latency s = s.k_latency

let session_sample s d =
  let v a = Tel.Instrument.value a.(d) in
  let attempts = v s.k_attempts in
  let commits = v s.k_commits in
  {
    Runner.ops = v s.k_ops;
    trycs = v s.k_trycs;
    commits;
    aborts = max 0 (attempts - commits);
  }

let session_samples s = Array.init s.k_plan.Plan.domains (session_sample s)

exception Stop_worker

(* The chaos executor serves the same request stream, but cycling its
   client rotation forever (a starving domain never finishes a fixed
   quota) with admission and batching off and the journal marked on
   {e every} request — even a pure get conflicts on the journal, so the
   per-algorithm expectations of the shared-hot-t-variable chaos runner
   carry over verbatim to the serving path.  Parasite takeover mirrors
   {!Tm_chaos.Runner}: a private-read spin under the non-blocking
   cores, an in-body takeover under the global-lock serializer. *)
let chaos_worker ~stop ~cfg ~wl ~store ~mine ~fault ~parasite_gate ~ops
    ~injected ~attempts ~trycs ~commits ~crashed ~lat d () =
  Runner.bind_fault fault ~ops ~injected;
  Stm.Blame.set_self d;
  let parasitic_from =
    match fault with Plan.Parasitic { from_op } -> Some from_op | _ -> None
  in
  let parasitic_now () =
    match parasitic_from with
    | Some from -> parasite_gate () && Tel.Instrument.value ops >= from
    | None -> false
  in
  let parasite_spin () =
    while true do
      ignore (Stm.read mine);
      if Atomic.get stop then raise Stop_worker;
      Domain.cpu_relax ()
    done
  in
  let in_body_takeover = cfg.c_algo = Stm.Algo.Global_lock in
  (* The chaos path is its own load generator, so "scheduled arrival" is
     the moment a request starts; the slot deliberately stays marked if
     the body dies on [Stm.Chaos.Crashed] — a dead domain's in-flight
     request is exactly the censored sample the open-loop quantiles must
     keep seeing grow. *)
  let mark () =
    let sched = Tel.Latency_recorder.now_ns () in
    Option.iter (fun r -> Tel.Latency_recorder.mark r d ~sched) lat;
    sched
  in
  let complete sched =
    Option.iter
      (fun r ->
        Tel.Latency_recorder.complete r d ~start:sched
          ~finish:(Tel.Latency_recorder.now_ns ()))
      lat
  in
  let client = ref d and index = ref 0 in
  (try
     while not (Atomic.get stop) do
       if (not in_body_takeover) && parasitic_now () then begin
         ignore (mark ());
         Stm.atomically (fun () ->
             Tel.Instrument.incr attempts;
             parasite_spin ())
       end
       else begin
         let req = Workload.request wl ~client:!client ~index:!index in
         let body =
           match req with Workload.Single op -> [ op ] | Workload.Txn l -> l
         in
         let sched = mark () in
         Stm.atomically (fun () ->
             if Atomic.get stop then raise Stop_worker;
             Tel.Instrument.incr attempts;
             List.iter (fun op -> ignore (Store.exec_op store op)) body;
             if in_body_takeover && parasitic_now () then parasite_spin ();
             Store.journal_mark store 1;
             Tel.Instrument.incr trycs);
         Tel.Instrument.incr commits;
         complete sched;
         client := !client + cfg.c_domains;
         if !client >= cfg.c_clients then begin
           client := d;
           index := (!index + 1) mod cfg.c_ops
         end
       end
     done
   with
  | Stop_worker -> ()
  | Stm.Chaos.Crashed -> Tel.Instrument.set_gauge crashed 1);
  Stm.Blame.set_self (-1);
  Runner.unbind_fault ()

let with_chaos_session ?(blame = false) ?(latency = false) ?registry
    (plan : Plan.t) cfg f =
  let cfg =
    {
      cfg with
      c_algo = plan.Plan.algo;
      c_domains = plan.Plan.domains;
      c_batching = false;
      c_journal = true;
      c_clients = max cfg.c_clients plan.Plan.domains;
    }
  in
  validate cfg;
  let nd = cfg.c_domains in
  let reg =
    match registry with Some r -> r | None -> Tel.Registry.create ()
  in
  let per name help =
    Array.init nd (fun d ->
        Tel.Registry.counter reg ~shards:1
          ~labels:[ ("domain", string_of_int d) ]
          ~help name)
  in
  let ops =
    per "tm_serve_ops_total"
      "Interception-point firings (the executor's operation clock)"
  in
  let attempts = per "tm_serve_attempts_total" "Request attempts started" in
  let trycs = per "tm_serve_trycs_total" "Request bodies that reached tryC" in
  let commits = per "tm_serve_commits_total" "Requests committed" in
  let injected =
    per "tm_serve_injected_total" "Faults injected (non-Proceed actions)"
  in
  let crashed =
    Array.init nd (fun d ->
        Tel.Registry.gauge reg
          ~labels:[ ("domain", string_of_int d) ]
          ~help:"1 after the executor died on Stm.Chaos.Crashed"
          "tm_serve_crashed")
  in
  let sources =
    Array.init nd (fun d ->
        Tel.Liveness_gauge.source
          ~ops:(fun () -> Tel.Instrument.value ops.(d))
          ~trycs:(fun () -> Tel.Instrument.value trycs.(d))
          ~commits:(fun () -> Tel.Instrument.value commits.(d))
          ~aborts:(fun () ->
            max 0
              (Tel.Instrument.value attempts.(d)
              - Tel.Instrument.value commits.(d))))
  in
  let liveness = Tel.Liveness_gauge.create reg ~sources in
  let blame_graph =
    if blame then Some (Tel.Blame_graph.create reg ~domains:nd) else None
  in
  (* The chaos executor is an unthrottled generator, so the expected
     inter-arrival for the coordinated-omission correction is the
     request service time scale (~50us), not a wall-clock rate. *)
  let lat =
    if latency then
      Some
        (Tel.Latency_recorder.create ~registry:reg ~metric:"tm_serve_lat"
           ~interval_ns:50_000 ~domains:nd ())
    else None
  in
  let ses =
    {
      k_plan = plan;
      k_config = cfg;
      k_registry = reg;
      k_liveness = liveness;
      k_blame = blame_graph;
      k_ops = ops;
      k_attempts = attempts;
      k_trycs = trycs;
      k_commits = commits;
      k_crashed = crashed;
      k_latency = lat;
    }
  in
  let prev_algo = Stm.algo () in
  Stm.set_algo plan.Plan.algo;
  let store =
    Store.create ~stripes:cfg.c_stripes ~journal:true ~keys:cfg.c_keys ()
  in
  let wl = workload cfg in
  let priv = Array.init nd (fun _ -> Stm.tvar 0) in
  let stop = Atomic.make false in
  (* Mixed crash+parasite plans are causal: the parasite waits for the
     crasher to have died (see Tm_chaos.Runner). *)
  let parasite_gate =
    match
      Array.to_list plan.Plan.faults
      |> List.mapi (fun d fl -> (d, fl))
      |> List.find_map (fun (d, fl) ->
             match fl with Plan.Crash _ -> Some d | _ -> None)
    with
    | None -> fun () -> true
    | Some cd -> fun () -> Tel.Instrument.gauge_value crashed.(cd) = 1
  in
  Stm.Chaos.install Runner.fault_handler;
  Option.iter
    (fun g -> Stm.Blame.install (Tel.Blame_graph.sink_of g))
    blame_graph;
  Fun.protect
    ~finally:(fun () ->
      Stm.Chaos.uninstall ();
      if blame then Stm.Blame.uninstall ();
      Stm.recover ();
      Stm.set_algo prev_algo)
    (fun () ->
      let ds =
        List.init nd (fun d ->
            Domain.spawn
              (chaos_worker ~stop ~cfg ~wl ~store ~mine:priv.(d)
                 ~fault:plan.Plan.faults.(d) ~parasite_gate ~ops:ops.(d)
                 ~injected:injected.(d) ~attempts:attempts.(d)
                 ~trycs:trycs.(d) ~commits:commits.(d) ~crashed:crashed.(d)
                 ~lat d))
      in
      let finish () =
        Atomic.set stop true;
        List.iter Domain.join ds
      in
      match f ses with
      | v ->
          finish ();
          v
      | exception e ->
          finish ();
          raise e)

type chaos_outcome = {
  k_plan : Plan.t;
  k_profile : Workload.profile;
  k_reports : Runner.report list;
  k_ok : bool;
}

let counters_of (s : Runner.sample) =
  Emp.counters ~ops:s.Runner.ops ~trycs:s.Runner.trycs
    ~commits:s.Runner.commits ~aborts:s.Runner.aborts

let chaos_run ?blame ?latency ?(warmup = 0.05) ?(window = 0.15) ?registry
    ?on_sample (plan : Plan.t) cfg =
  let nd = plan.Plan.domains in
  let scrape ses ts =
    match on_sample with
    | Some f ->
        Option.iter Tel.Blame_graph.refresh ses.k_blame;
        Option.iter
          (fun r ->
            Tel.Latency_recorder.publish r
              ~now:(Tel.Latency_recorder.now_ns ()))
          ses.k_latency;
        f (Tel.Registry.scrape ses.k_registry ~ts)
    | None -> ()
  in
  let first, last, ses =
    with_chaos_session ?blame ?latency ?registry plan cfg (fun ses ->
        Unix.sleepf warmup;
        let first = session_samples ses in
        Tel.Liveness_gauge.rebase_with ses.k_liveness
          (Array.map counters_of first);
        scrape ses 0;
        Unix.sleepf window;
        let last = session_samples ses in
        ignore
          (Tel.Liveness_gauge.update_with ses.k_liveness
             (Array.map counters_of last));
        scrape ses 1;
        (first, last, ses))
  in
  let reports =
    List.init nd (fun d ->
        {
          Runner.rep_domain = d;
          rep_fault = plan.Plan.faults.(d);
          rep_expected = plan.Plan.expected.(d);
          rep_observed =
            Emp.classify_counters ~first:(counters_of first.(d))
              ~last:(counters_of last.(d));
          rep_first = first.(d);
          rep_last = last.(d);
          rep_crashed = Tel.Instrument.gauge_value ses.k_crashed.(d) = 1;
        })
  in
  {
    k_plan = plan;
    k_profile = cfg.c_profile;
    k_reports = reports;
    k_ok = List.for_all Runner.report_ok reports;
  }

let pp_chaos_table ppf o =
  Fmt.pf ppf "@[<v>tmserve chaos %s profile=%s algo=%s seed=%d domains=%d@,"
    o.k_plan.Plan.scenario
    (Workload.profile_name o.k_profile)
    (Stm.Algo.name o.k_plan.Plan.algo)
    o.k_plan.Plan.seed o.k_plan.Plan.domains;
  List.iter (fun r -> Fmt.pf ppf "%a@," Runner.pp_report r) o.k_reports;
  Fmt.pf ppf "verdict: %s@]"
    (if o.k_ok then "ok (serving path matches the scenario)"
     else "MISMATCH (serving path contradicts the scenario)")

let chaos_to_json o =
  let module Pc = Tm_liveness.Process_class in
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Fmt.str
       "{\"subsystem\":\"tmserve\",\"scenario\":%S,\"profile\":%S,\"algo\":%S,\"seed\":%d,\"domains\":%d,\"ok\":%b,\"verdicts\":["
       o.k_plan.Plan.scenario
       (Workload.profile_name o.k_profile)
       (Stm.Algo.name o.k_plan.Plan.algo)
       o.k_plan.Plan.seed o.k_plan.Plan.domains o.k_ok);
  List.iteri
    (fun i (r : Runner.report) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Fmt.str
           "{\"domain\":%d,\"fault\":%S,\"expected\":%S,\"observed\":%S,\"ok\":%b,\"crashed\":%b}"
           r.Runner.rep_domain
           (Plan.fault_label r.Runner.rep_fault)
           (Pc.cls_label r.Runner.rep_expected)
           (Pc.cls_label r.Runner.rep_observed)
           (Runner.report_ok r) r.Runner.rep_crashed))
    o.k_reports;
  Buffer.add_string b "]}";
  Buffer.contents b
