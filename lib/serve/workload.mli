(** Deterministic seeded client populations.

    A workload value is a pure description: the request a given client
    issues at a given index is a function of (seed, client, index) and
    nothing else — every generator draw comes from a splitmix stream
    keyed on that triple, so any multiplexing of clients onto worker
    domains replays the identical request sequence.

    The key space is split into two planes.  {e Even} keys are the kv
    plane: gets, puts and cas land there, targeted through a Zipfian
    rank over the even keys (heaviest rank = key 0), modelling a hot
    set.  {e Odd} keys are the counter plane: multi-key transactions
    transfer between counter keys in deltas that sum to zero, so the
    counter plane's total is an exact conservation invariant any
    correct run must keep at 0. *)

type profile = Read_mostly | Write_heavy | Long_txn | Mixed

val profiles : profile list
val profile_name : profile -> string
(** ["read-mostly"], ["write-heavy"], ["long-txn"], ["mixed"]. *)

val profile_of_string : string -> (profile, string) result
val describe : profile -> string

type request =
  | Single of Store.op  (** one-key request *)
  | Txn of Store.op list  (** multi-key transaction *)

val kinds : string list
(** Request-kind labels in canonical (sorted) order:
    ["cas"; "get"; "put"; "txn"]. *)

val kind : request -> string
val mutates : request -> bool

val cost : request -> int
(** Admission cost in queue units: 8 for a get, 14 for a put or cas,
    [8 + 6 * length] for a transaction.  See {!Server} for the virtual
    bounded-queue admission model these prices feed. *)

type t

val create : ?hot_s:float -> profile:profile -> seed:int -> keys:int -> unit -> t
(** [hot_s] is the Zipf exponent over the kv plane (default 1.07).
    @raise Invalid_argument if [keys < 4] (each plane needs >= 2 keys). *)

val profile : t -> profile
val seed : t -> int
val keys : t -> int
val zipf : t -> Zipf.t

val request : t -> client:int -> index:int -> request
(** The [index]-th request of [client] — deterministic, stateless. *)
