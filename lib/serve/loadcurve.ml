(* Rate-ladder load curves.

   Two layers, kept strictly apart by the determinism discipline:

   - The *canonical* curve is a virtual-time model: one server draining
     a FIFO queue at a fixed cost-to-nanoseconds quantum, fed by the
     deterministic arrival schedule.  It is a pure integer computation
     over (profile, seed, clients, ops, keys, queue_cap, quantum, kind,
     ladder) — no domains, no wall clock — so its JSON document is
     byte-identical across runs and across every [--domains] choice.
     It answers the planning question: where does the offered rate
     outrun the configured capacity, what does queueing delay do to the
     sojourn tail as the knee approaches, and what fraction sheds.

   - The *measured* points run the real multicore server with the same
     arrival clock and report wall-clock achieved throughput and the
     recorder's open/closed p99 — informational, never canonical.

   The shed rule mirrors {!Server}'s admission queue, translated to
   virtual time: a request arriving with more than [queue_cap * quantum]
   nanoseconds of work backlogged is shed. *)

module Tel = Tm_telemetry

type pcts = { q50 : int; q90 : int; q99 : int; q999 : int; q9999 : int }

let pcts_of_snap s =
  let q p = Tel.Instrument.hires_quantile s p in
  {
    q50 = q 0.5;
    q90 = q 0.9;
    q99 = q 0.99;
    q999 = q 0.999;
    q9999 = q 0.9999;
  }

type point = {
  p_rate : float;  (* offered, req/s of virtual time *)
  p_offered : int;  (* requests scheduled *)
  p_admitted : int;
  p_shed : int;
  p_achieved : float;  (* admitted per second of virtual makespan *)
  p_queueing : pcts;
  p_service : pcts;
  p_sojourn : pcts;
}

type curve = {
  v_kind : Arrival.kind;
  v_profile : Workload.profile;
  v_seed : int;
  v_clients : int;
  v_ops : int;
  v_keys : int;
  v_queue_cap : int;
  v_quantum : int;
  v_points : point list;
}

let default_quantum_ns = 1_000

(* One rung: the virtual single-server queue over the full request
   population in global-index order (index-major, the same global order
   the executors' strides interleave to). *)
let rung ?on_sample ~quantum ~kind ~rung_index rate (cfg : Server.config) wl =
  let n = Server.total_requests cfg in
  let arrival = Arrival.make ~kind ~rate ~seed:cfg.Server.c_seed in
  let cur = Arrival.cursor arrival in
  let cap_ns = cfg.Server.c_queue_cap * quantum in
  let reg = Tel.Registry.create () in
  let admitted_c =
    Tel.Registry.counter reg ~shards:1 ~help:"Requests admitted (model)"
      "tm_loadcurve_admitted_total"
  in
  let shed_c =
    Tel.Registry.counter reg ~shards:1 ~help:"Requests shed (model)"
      "tm_loadcurve_shed_total"
  in
  let hist name help = Tel.Registry.hires reg ~shards:1 ~help name in
  let queueing_h =
    hist "tm_loadcurve_queueing_ns" "Arrival to service start (virtual)"
  in
  let service_h =
    hist "tm_loadcurve_service_ns" "Service time (cost * quantum)"
  in
  let sojourn_h =
    hist "tm_loadcurve_sojourn_ns" "Arrival to completion (virtual)"
  in
  let server_free = ref 0 in
  let admitted = ref 0 and shed = ref 0 and makespan = ref 0 in
  for g = 0 to n - 1 do
    let arr = Arrival.next cur in
    let client = g mod cfg.Server.c_clients
    and index = g / cfg.Server.c_clients in
    let req = Workload.request wl ~client ~index in
    let service = Workload.cost req * quantum in
    let backlog = max 0 (!server_free - arr) in
    if backlog > cap_ns then begin
      incr shed;
      Tel.Instrument.incr shed_c
    end
    else begin
      let start = max arr !server_free in
      let finish = start + service in
      server_free := finish;
      makespan := finish;
      incr admitted;
      Tel.Instrument.incr admitted_c;
      Tel.Instrument.hires_observe queueing_h (start - arr);
      Tel.Instrument.hires_observe service_h service;
      Tel.Instrument.hires_observe sojourn_h (finish - arr)
    end
  done;
  (match on_sample with
  | Some f -> f (Tel.Registry.scrape reg ~ts:rung_index)
  | None -> ());
  let snap h = Tel.Instrument.hires_snapshot h in
  {
    p_rate = rate;
    p_offered = n;
    p_admitted = !admitted;
    p_shed = !shed;
    p_achieved =
      (if !admitted = 0 || !makespan = 0 then 0.0
       else float_of_int !admitted *. 1e9 /. float_of_int !makespan);
    p_queueing = pcts_of_snap (snap queueing_h);
    p_service = pcts_of_snap (snap service_h);
    p_sojourn = pcts_of_snap (snap sojourn_h);
  }

let run ?(quantum_ns = default_quantum_ns) ?on_sample ~kind ~ladder
    (cfg : Server.config) =
  if quantum_ns < 1 then invalid_arg "Loadcurve.run: quantum_ns < 1";
  if ladder = [] then invalid_arg "Loadcurve.run: empty ladder";
  List.iter
    (fun r ->
      if not (r > 0.0) then invalid_arg "Loadcurve.run: non-positive rate")
    ladder;
  let wl = Server.workload cfg in
  let points =
    List.mapi
      (fun i rate ->
        rung ?on_sample ~quantum:quantum_ns ~kind ~rung_index:i rate cfg wl)
      ladder
  in
  {
    v_kind = kind;
    v_profile = cfg.Server.c_profile;
    v_seed = cfg.Server.c_seed;
    v_clients = cfg.Server.c_clients;
    v_ops = cfg.Server.c_ops;
    v_keys = cfg.Server.c_keys;
    v_queue_cap = cfg.Server.c_queue_cap;
    v_quantum = quantum_ns;
    v_points = points;
  }

let shed_fraction p =
  if p.p_offered = 0 then 0.0
  else float_of_int p.p_shed /. float_of_int p.p_offered

(* {2 The knee} *)

let knee ?(threshold = 0.85) xy =
  List.fold_left
    (fun acc (rate, achieved) ->
      if achieved >= threshold *. rate && rate > acc then rate else acc)
    0.0 xy

let curve_xy c = List.map (fun p -> (p.p_rate, p.p_achieved)) c.v_points

(* {2 Canonical JSON} *)

let add_pcts b key p =
  Buffer.add_string b
    (Fmt.str "%S:{\"p50\":%d,\"p90\":%d,\"p99\":%d,\"p999\":%d,\"p9999\":%d}"
       key p.q50 p.q90 p.q99 p.q999 p.q9999)

let to_json c =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Fmt.str
       "{\"subsystem\":\"tmloadcurve\",\"profile\":%S,\"arrival\":%S,\"seed\":%d,\"clients\":%d,\"ops_per_client\":%d,\"keys\":%d,\"queue_cap\":%d,\"quantum_ns\":%d,\"knee\":%.1f,\"rungs\":["
       (Workload.profile_name c.v_profile)
       (Arrival.kind_name c.v_kind)
       c.v_seed c.v_clients c.v_ops c.v_keys c.v_queue_cap c.v_quantum
       (knee (curve_xy c)));
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Fmt.str
           "{\"rate\":%.1f,\"offered\":%d,\"admitted\":%d,\"shed\":%d,\"shed_fraction\":%.6f,\"achieved\":%.1f,"
           p.p_rate p.p_offered p.p_admitted p.p_shed (shed_fraction p)
           p.p_achieved);
      add_pcts b "queueing" p.p_queueing;
      Buffer.add_char b ',';
      add_pcts b "service" p.p_service;
      Buffer.add_char b ',';
      add_pcts b "sojourn" p.p_sojourn;
      Buffer.add_char b '}')
    c.v_points;
  Buffer.add_string b "]}";
  Buffer.contents b

let pp_curve ppf c =
  Fmt.pf ppf
    "@[<v>tmloadcurve profile=%s arrival=%s seed=%d clients=%d ops/client=%d \
     queue_cap=%d quantum=%dns@,\
     %-10s %-10s %-6s %-9s %-10s %-10s %-10s@,"
    (Workload.profile_name c.v_profile)
    (Arrival.kind_name c.v_kind)
    c.v_seed c.v_clients c.v_ops c.v_queue_cap c.v_quantum "offered/s"
    "achieved/s" "shed%" "queue p99" "sojourn p99" "p99.9" "p99.99";
  List.iter
    (fun p ->
      Fmt.pf ppf "%-10.0f %-10.0f %-6.2f %-9d %-10d %-10d %-10d@," p.p_rate
        p.p_achieved
        (100.0 *. shed_fraction p)
        p.p_queueing.q99 p.p_sojourn.q99 p.p_sojourn.q999 p.p_sojourn.q9999)
    c.v_points;
  Fmt.pf ppf "knee (achieved >= 0.85 offered): %.0f req/s@]"
    (knee (curve_xy c))

(* {2 Measured points} *)

type mpoint = {
  m_rate : float;
  m_wall : float;
  m_admitted : int;
  m_shed : int;
  m_achieved : float;  (* admitted per wall second *)
  m_open_p99 : int;
  m_closed_p99 : int;
}

let measure ?(kind = Arrival.Poisson) ~ladder (cfg : Server.config) =
  List.map
    (fun rate ->
      let arrival = Arrival.make ~kind ~rate ~seed:cfg.Server.c_seed in
      let o = Server.run { cfg with Server.c_arrival = Some arrival } in
      let open_p99, closed_p99 =
        match o.Server.s_open with
        | Some y ->
            ( y.Tel.Latency_recorder.y_open_p99,
              y.Tel.Latency_recorder.y_closed_p99 )
        | None -> (0, 0)
      in
      {
        m_rate = rate;
        m_wall = o.Server.s_wall;
        m_admitted = o.Server.s_admitted;
        m_shed = o.Server.s_shed;
        m_achieved =
          float_of_int o.Server.s_admitted /. Float.max 1e-9 o.Server.s_wall;
        m_open_p99 = open_p99;
        m_closed_p99 = closed_p99;
      })
    ladder

let measure_xy ms = List.map (fun m -> (m.m_rate, m.m_achieved)) ms

let pp_mpoint ppf m =
  Fmt.pf ppf
    "rate %.0f: wall %.3fs, %.0f adm/s (admitted %d, shed %d), p99 open %d \
     ns / closed %d ns"
    m.m_rate m.m_wall m.m_achieved m.m_admitted m.m_shed m.m_open_p99
    m.m_closed_p99
