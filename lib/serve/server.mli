(** The serving path: per-domain executors over a {!Store}, driven by a
    deterministic {!Workload} population, with admission control and
    hot-stripe commit batching.

    {2 Determinism discipline}

    A real multicore run cannot make its interleaving deterministic, so
    — exactly like the chaos subsystem — the canonical artifacts carry
    only plan-determined data: which requests exist, which are admitted
    (the virtual bounded queue below is a pure function of each
    domain's request stream), per-kind admitted counts, how many
    mutators committed through the journal, and the conservation
    invariant of the counter plane.  Wall-clock throughput, latency
    quantiles, commit/abort totals and combiner flush counts are real
    measurements and therefore {e informational}: they appear in the
    human summary and in [BENCH_serve.json], never in the canonical
    JSON or the canonical telemetry scrape.

    {2 Admission}

    Each executor runs a virtual bounded queue in abstract cost units:
    before each request it drains {!drain_units}, then admits the
    request iff the queued cost stays within [queue_cap], else sheds
    it.  Costs come from {!Workload.cost}.  The model is deterministic
    per domain, so shed counts are part of the canonical output — a
    read-mostly profile sheds nothing, the long-transaction profile is
    the overload regime.

    {2 Batching}

    With batching on, admitted single-key puts go through a per-stripe
    flat combiner: the executor publishes (key, value) in its slot and
    either waits for a combiner to apply it or acquires the stripe's
    combiner lock itself and drains {e all} pending slots into one
    transaction.  Under a hot Zipfian stripe this turns k conflicting
    one-put transactions into one k-put transaction. *)

val drain_units : int
(** Queue units drained per arriving request (12). *)

type config = {
  c_profile : Workload.profile;
  c_algo : Tm_stm.Stm.Algo.t;
  c_seed : int;
  c_domains : int;
  c_clients : int;  (** simulated client population *)
  c_ops : int;  (** closed-loop rounds: requests per client *)
  c_keys : int;
  c_stripes : int;
  c_batching : bool;
  c_journal : bool;
  c_queue_cap : int;  (** admission capacity in cost units *)
  c_arrival : Arrival.t option;
      (** open-loop arrival clock; [None] = closed loop (dispatch as
          fast as the executors run) *)
}

val config :
  ?algo:Tm_stm.Stm.Algo.t ->
  ?clients:int ->
  ?ops:int ->
  ?keys:int ->
  ?stripes:int ->
  ?batching:bool ->
  ?journal:bool ->
  ?queue_cap:int ->
  ?arrival:Arrival.t ->
  profile:Workload.profile ->
  seed:int ->
  domains:int ->
  unit ->
  config
(** Defaults: tl2, 10000 clients, 4 ops/client, 1024 keys, 64 stripes,
    batching on, journal off, queue_cap 2048, closed loop.
    @raise Invalid_argument on [domains < 1], [clients < domains],
    [ops < 1], [keys < 4] or [queue_cap < 1]. *)

val workload : config -> Workload.t
val total_requests : config -> int
(** [clients * ops]. *)

val iter_requests :
  config ->
  Workload.t ->
  domain:int ->
  f:(client:int -> index:int -> Workload.request -> admitted:bool -> unit) ->
  unit
(** The full request stream of one executor domain (clients congruent
    to [domain mod c_domains], round-major) with the admission model's
    verdicts — the single source both the executors and the
    sequential-spec conformance gates replay. *)

(** {2 Serving a profile} *)

type lat = { l_kind : string; l_snap : Tm_telemetry.Instrument.hsnap }

type per_domain = {
  d_requests : int;
  d_admitted : int;
  d_shed : int;
  d_batched : int;
  d_mutators : int;
}

type outcome = {
  s_config : config;
  (* canonical (plan-determined) *)
  s_requests : int;
  s_admitted : int;
  s_shed : int;
  s_batched : int;  (** admitted single puts routed through combiners *)
  s_mutators : int;  (** admitted mutating requests *)
  s_by_kind : (string * int) list;  (** admitted, in {!Workload.kinds} order *)
  s_per_domain : per_domain array;
  s_journal_ok : bool;  (** journal value = mutators (or journal off) *)
  s_conserved : bool;  (** counter plane sums to 0 *)
  (* informational (measured) *)
  s_wall : float;
  s_commits : int;
  s_aborts : int;
  s_flushes : int;  (** combiner flush transactions *)
  s_latency : lat list;  (** per kind, {!Workload.kinds} order *)
  s_open : Tm_telemetry.Latency_recorder.summary option;
      (** open-loop latency (queueing/service/sojourn from the scheduled
          arrival, censored p99): present iff [c_arrival] was set;
          measured, never canonical *)
}

val run :
  ?on_sample:(Tm_telemetry.Registry.snapshot -> unit) -> config -> outcome
(** Execute the whole population and join.  With [c_arrival] set, each
    executor paces dispatch so no request starts before its scheduled
    arrival on the shared virtual schedule, and an open-loop
    {!Tm_telemetry.Latency_recorder} (registry-free — its samples are
    wall-clock measurements) fills [s_open]; the admission model and
    every canonical count are unchanged, so the canonical artifacts of
    an open-loop run differ from the closed-loop run's only in the
    arrival metadata they echo.  [on_sample] receives the
    canonical telemetry scrape twice, {e keyed on the op clock}: once
    at [ts = 0] before the executors start and once at
    [ts = total_requests config] after they join.  The scraped registry
    holds only deterministic instruments ([tm_serve_requests_total],
    [tm_serve_admitted_total], [tm_serve_shed_total],
    [tm_serve_batched_total], [tm_serve_mutators_total] per domain and
    [tm_serve_admitted_kind_total] per kind), so for a fixed
    (profile, seed, domains, algo) the export is byte-deterministic —
    latency histograms are measured and deliberately kept out. *)

val to_json : outcome -> string
(** The canonical serve document — configuration and plan-determined
    results only, stable key order, byte-deterministic for a fixed
    (profile, seed, domains, algo, sizing). *)

val pp_summary : Format.formatter -> outcome -> unit
(** The human summary: canonical counts {e plus} the measured
    throughput/latency/abort/flush numbers. *)

(** {2 Chaos against the serving path}

    A chaos serve session forces [journal] on and [batching] off: the
    journal makes every request transaction conflict on one t-variable
    (the serving analogue of the chaos runner's hot [shared.(0)]), so a
    crash holding commit locks strands the whole peer set exactly as
    the per-algorithm Figure-2 expectations in {!Tm_chaos.Plan}
    describe.  Fault dispatch reuses {!Tm_chaos.Runner.fault_handler}
    on the per-domain op clock. *)

type session

val session_plan : session -> Tm_chaos.Plan.t
val session_config : session -> config
val session_registry : session -> Tm_telemetry.Registry.t
val session_liveness : session -> Tm_telemetry.Liveness_gauge.t
val session_blame : session -> Tm_telemetry.Blame_graph.t option

val session_latency : session -> Tm_telemetry.Latency_recorder.t option
(** The session's open-loop latency recorder (with [~latency:true]). *)

val session_sample : session -> int -> Tm_chaos.Runner.sample
val session_samples : session -> Tm_chaos.Runner.sample array

val with_chaos_session :
  ?blame:bool ->
  ?latency:bool ->
  ?registry:Tm_telemetry.Registry.t ->
  Tm_chaos.Plan.t ->
  config ->
  (session -> 'a) ->
  'a
(** Spawn one serving executor per plan slot with the plan's faults
    armed (the plan's algo and domain count override the config's;
    batching off, journal on), apply the callback, then stop, join,
    recover and restore — the serving twin of
    {!Tm_chaos.Runner.with_session}.  Executors cycle their client
    rotation indefinitely; per-domain counters register as
    [tm_serve_{ops,attempts,trycs,commits,injected}_total] and a
    [tm_serve_crashed] gauge, plus the standard liveness gauge (and a
    blame graph with [~blame:true]).  With [~latency:true] a
    {!Tm_telemetry.Latency_recorder} registers under [tm_serve_lat] in
    the session registry; executors mark each request in flight before
    its transaction and complete it after — a request whose body dies
    on [Stm.Chaos.Crashed] stays marked forever, so the open-loop p99
    and the per-domain starvation age keep growing while the crashed
    domain's closed-loop quantiles freeze. *)

type chaos_outcome = {
  k_plan : Tm_chaos.Plan.t;
  k_profile : Workload.profile;
  k_reports : Tm_chaos.Runner.report list;
  k_ok : bool;
}

val chaos_run :
  ?blame:bool ->
  ?latency:bool ->
  ?warmup:float ->
  ?window:float ->
  ?registry:Tm_telemetry.Registry.t ->
  ?on_sample:(Tm_telemetry.Registry.snapshot -> unit) ->
  Tm_chaos.Plan.t ->
  config ->
  chaos_outcome
(** Watchdog two-sample classification of a chaos serve session, the
    serving twin of {!Tm_chaos.Runner.run}: warmup (default 0.05 s),
    first sample (liveness gauge rebased, scrape at ts 0), window
    (default 0.15 s), second sample (gauge updated, scrape at ts 1),
    then {!Tm_liveness.Empirical.classify_counters} verdicts against
    the plan's expectations. *)

val pp_chaos_table : Format.formatter -> chaos_outcome -> unit

val chaos_to_json : chaos_outcome -> string
(** Canonical verdict document, keyed like the chaos runner's but with
    the serving profile:
    [{"subsystem":"tmserve","scenario":...,"profile":...,...,"verdicts":[...]}]. *)
