module Stm = Tm_stm.Stm

type t = {
  st_keys : int;
  st_stripes : int;
  (* st_dirs.(s).(i) holds key [i * stripes + s]: per-stripe key
     directories, so everything a combiner drains into one transaction
     lives in one directory. *)
  st_dirs : int Stm.tvar array array;
  st_journal : int Stm.tvar option;
}

let create ?(stripes = 64) ?(journal = false) ~keys () =
  if keys < 1 then invalid_arg "Store.create: keys < 1";
  let stripes = max 1 (min stripes keys) in
  let dir s =
    let sz = (keys - s + stripes - 1) / stripes in
    Array.init sz (fun _ -> Stm.tvar 0)
  in
  {
    st_keys = keys;
    st_stripes = stripes;
    st_dirs = Array.init stripes dir;
    st_journal = (if journal then Some (Stm.tvar 0) else None);
  }

let keys t = t.st_keys
let stripes t = t.st_stripes
let stripe_of t k = k mod t.st_stripes

let slot t k =
  if k < 0 || k >= t.st_keys then invalid_arg "Store: key out of range";
  t.st_dirs.(k mod t.st_stripes).(k / t.st_stripes)

type op = O_get of int | O_put of int * int | O_add of int * int | O_cas of int * int * int
type result = R_value of int | R_unit | R_bool of bool

let op_mutates = function
  | O_get _ -> false
  | O_put _ | O_add _ | O_cas _ -> true

let exec_op t = function
  | O_get k -> R_value (Stm.read (slot t k))
  | O_put (k, v) ->
      Stm.write (slot t k) v;
      R_unit
  | O_add (k, d) ->
      let tv = slot t k in
      Stm.write tv (Stm.read tv + d);
      R_unit
  | O_cas (k, expected, desired) ->
      let tv = slot t k in
      if Stm.read tv = expected then begin
        Stm.write tv desired;
        R_bool true
      end
      else R_bool false

let write_key t k v = Stm.write (slot t k) v

let journal_mark t n =
  match t.st_journal with
  | None -> ()
  | Some j -> Stm.write j (Stm.read j + n)

let get t k = Stm.atomically (fun () -> Stm.read (slot t k))

let put t k v =
  Stm.atomically (fun () ->
      Stm.write (slot t k) v;
      journal_mark t 1)

let cas t k ~expected ~desired =
  Stm.atomically (fun () ->
      journal_mark t 1;
      match exec_op t (O_cas (k, expected, desired)) with
      | R_bool b -> b
      | _ -> assert false)

let spec_op m = function
  | O_get k -> R_value m.(k)
  | O_put (k, v) ->
      m.(k) <- v;
      R_unit
  | O_add (k, d) ->
      m.(k) <- m.(k) + d;
      R_unit
  | O_cas (k, expected, desired) ->
      if m.(k) = expected then begin
        m.(k) <- desired;
        R_bool true
      end
      else R_bool false

let multi t ops =
  Stm.atomically (fun () ->
      let rs = List.map (exec_op t) ops in
      if List.exists op_mutates ops then journal_mark t 1;
      rs)

let value t k = get t k
let dump t = Array.init t.st_keys (value t)
let sum t = Array.fold_left ( + ) 0 (dump t)

let journal_value t =
  match t.st_journal with
  | None -> 0
  | Some j -> Stm.atomically (fun () -> Stm.read j)
