(** Deterministic open-loop arrival schedules.

    An arrival clock assigns every request a scheduled arrival time on
    the virtual nanosecond axis as a pure function of
    [(seed, rate, global index)] — independent of domain count, wall
    clock, and dispatch order.  Canonical artifacts (loadcurve
    documents, serve config echoes) may therefore mention arrivals and
    stay byte-deterministic; only the *pacing* that waits for the wall
    clock to catch up with the schedule is measurement. *)

type kind = Constant | Poisson

val kind_name : kind -> string
val kind_of_string : string -> kind option

type t

val make : kind:kind -> rate:float -> seed:int -> t
(** [rate] in requests per second of virtual time.
    @raise Invalid_argument if [rate] is not positive. *)

val kind : t -> kind
val rate : t -> float
val seed : t -> int

val period_ns : t -> int
(** [round (1e9 / rate)], at least 1: the constant-kind gap and the
    Poisson mean inter-arrival. *)

val gap : t -> int -> int
(** [gap t i] is the inter-arrival gap preceding arrival [i], a pure
    function of [(seed t, rate t, i)].  Constant: 0 for [i = 0],
    {!period_ns} after.  Poisson: an exponential draw with mean
    {!period_ns} keyed by [i]. *)

type cursor
(** A prefix-sum walk over the gaps: arrival [i] is at
    [gap 0 + ... + gap i]. *)

val cursor : t -> cursor

val next : cursor -> int
(** The next scheduled arrival time (ns since the run epoch), advancing
    the cursor. *)

val skip : cursor -> int -> unit
(** Advance the cursor past [n] arrivals without returning them — how a
    domain walks to its next strided global index. *)

val schedule : t -> n:int -> int array
(** The first [n] arrival times; [schedule t ~n = Array.init n] over a
    fresh cursor's {!next}. *)
