(** A Zipfian rank distribution over [0 .. n-1] by cumulative-table
    inversion.

    Rank [r] has unnormalized mass [1 / (r+1)^s]; {!sample} draws a
    uniform variate from a {!Tm_sim.Prng} generator and binary-searches
    the cumulative table, so sampling is [O(log n)], allocation-free,
    and a pure function of the generator state — the backbone of the
    deterministic serve workload. *)

type t

val create : ?s:float -> n:int -> unit -> t
(** [create ~n ()] tabulates the distribution over [n] ranks with
    exponent [s] (default 1.07, the classic YCSB skew).
    @raise Invalid_argument if [n < 1] or [s < 0.0]. *)

val n : t -> int
val s : t -> float

val mass : t -> int -> float
(** Normalized probability of rank [r] (ranks are 0-based, heaviest
    first). *)

val cumulative_mass : t -> int -> float
(** Total probability of ranks [0 .. r] inclusive — the hot-set mass of
    the top [r+1] ranks. *)

val sample_u : t -> float -> int
(** Invert the cumulative table at a uniform variate in [[0, 1)]. *)

val sample : t -> Tm_sim.Prng.t -> int
(** Draw a rank, advancing the generator by exactly one [next]. *)

val uniform01 : Tm_sim.Prng.t -> float
(** The uniform variate in [[0, 1)] that {!sample} inverts — exposed so
    tests can cross-check [sample g = sample_u (uniform01 g')]. *)
