open Tm_history

let is_pending l p = not (Lasso.infinitely_many l Event.is_commit p)

let crashes l p =
  (not (Lasso.projection_infinite l p))
  && Lasso.finite_count l (fun e -> Event.proc e = p) p > 0

let is_parasitic l p =
  Lasso.projection_infinite l p
  && (not (Lasso.infinitely_many l Event.is_try_commit p))
  && not (Lasso.infinitely_many l Event.is_abort p)

let is_correct l p = (not (is_parasitic l p)) && not (crashes l p)
let is_faulty l p = not (is_correct l p)

let is_starving l p =
  (not (crashes l p)) && (not (is_parasitic l p)) && is_pending l p

let makes_progress l p = is_correct l p && not (is_pending l p)

let correct_processes l = List.filter (is_correct l) (Lasso.procs l)
let progressing_processes l = List.filter (makes_progress l) (Lasso.procs l)

let runs_alone l p =
  is_correct l p
  && List.for_all (fun q -> q = p || not (is_correct l q)) (Lasso.procs l)

type cls = Crashed | Parasitic | Starving | Progressing

let cls l p =
  if crashes l p then Crashed
  else if is_parasitic l p then Parasitic
  else if is_pending l p then Starving
  else Progressing

let cls_label = function
  | Crashed -> "crashed"
  | Parasitic -> "parasitic"
  | Starving -> "starving"
  | Progressing -> "progressing"

let cls_of_label = function
  | "crashed" -> Some Crashed
  | "parasitic" -> Some Parasitic
  | "starving" -> Some Starving
  | "progressing" -> Some Progressing
  | _ -> None

let equal_cls (a : cls) b = a = b

type summary = {
  proc : Event.proc;
  pending : bool;
  crashed : bool;
  parasitic : bool;
  starving : bool;
  correct : bool;
  progresses : bool;
}

let classify l =
  List.map
    (fun p ->
      {
        proc = p;
        pending = is_pending l p;
        crashed = crashes l p;
        parasitic = is_parasitic l p;
        starving = is_starving l p;
        correct = is_correct l p;
        progresses = makes_progress l p;
      })
    (Lasso.procs l)

let pp_summary ppf s =
  let flag name b = if b then [ name ] else [] in
  let flags =
    List.concat
      [
        flag "pending" s.pending;
        flag "crashed" s.crashed;
        flag "parasitic" s.parasitic;
        flag "starving" s.starving;
        flag "correct" s.correct;
        flag "progresses" s.progresses;
      ]
  in
  Fmt.pf ppf "p%d: %s" s.proc (String.concat ", " flags)

let pp_table ppf = Fmt.(list ~sep:(any "@,") pp_summary) ppf
