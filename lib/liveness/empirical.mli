open Tm_history

(** Bridging finite runs and infinite-history verdicts.

    Liveness properties are defined on infinite histories; simulations
    produce finite ones.  Two bridges:

    - {!find_lasso} detects an {e exactly periodic suffix} of a finite
      history and returns the corresponding lasso, so the exact deciders of
      {!Property} apply.  This is a sound extrapolation whenever the
      system that produced the run (TM + programs + scheduler) is
      deterministic with finite state — e.g. any zoo TM under the
      round-robin scheduler — because a repeated (state, schedule-phase)
      pair provably loops forever.  For randomized schedules it is a
      heuristic and usually finds nothing.

    - {!classify_window} gives per-process bounded-window verdicts
      ("committed in the last [window] events?"), the honest empirical
      reading of pending/parasitic/crashed on arbitrary finite runs. *)

val find_lasso : ?max_period:int -> ?min_repeats:int -> History.t -> Lasso.t option
(** The smallest period [q <= max_period] (default 200) such that the
    history's suffix repeats with period [q] at least [min_repeats]
    (default 3) times and the pending-invocation state repeats across the
    cycle; the lasso's stem is the non-periodic prefix.  [None] when no
    such suffix exists. *)

type window_summary = {
  proc : Event.proc;
  events_total : int;
  events_in_window : int;
  commits_in_window : int;
  aborts_in_window : int;
  trycs_in_window : int;
  looks_pending : bool;  (** no commit in the window *)
  looks_crashed : bool;  (** has events overall, none in the window *)
  looks_parasitic : bool;
      (** active in the window with neither [tryC] nor aborts in it *)
  looks_progressing : bool;
}

val classify_window : window:int -> History.t -> window_summary list
(** One summary per process, ascending; the window is the last [window]
    events of the history. *)

val pp_window_summary : Format.formatter -> window_summary -> unit

(** {2 Counter samples}

    The multicore chaos watchdog cannot see a history — it samples
    monotone per-domain counters.  Two samples bracket an observation
    window and the deltas give the same empirical reading as
    {!classify_window}, expressed in the Figure-2 taxonomy. *)

type counters = {
  c_ops : int;  (** operations executed (any interception-point firing) *)
  c_trycs : int;  (** commit attempts that reached [tryC] *)
  c_commits : int;
  c_aborts : int;
}

val counters : ops:int -> trycs:int -> commits:int -> aborts:int -> counters

val classify_counters :
  first:counters -> last:counters -> Process_class.cls
(** Window verdict from two samples of monotone counters: no operations
    at all looks {e crashed}; operations, no [tryC]s and at most a
    negligible trickle of aborts (1/64 of the operations — restarts
    forced on an endless body by a peer descheduled mid-commit are
    noise, not work) looks {e parasitic}; activity without a commit
    looks {e starving}; otherwise the process is {e progressing}. *)
