open Tm_history

let find_lasso ?(max_period = 200) ?(min_repeats = 3) h =
  let es = Array.of_list (History.events h) in
  let n = Array.length es in
  let rec try_period q =
    if q > max_period || q * min_repeats > n then None
    else begin
      (* Check that the suffix repeats with period q at least min_repeats
         times. *)
      let repeats_ok =
        let limit = n - (q * min_repeats) in
        let rec matches i =
          (* es.(i) must equal es.(i+q) for all i in [limit, n-q-1]. *)
          i >= n - q || (Event.equal es.(i) es.(i + q) && matches (i + 1))
        in
        matches limit
      in
      if not repeats_ok then try_period (q + 1)
      else
        let stem_len = n - (q * min_repeats) in
        let stem = Array.to_list (Array.sub es 0 stem_len) in
        let cycle = Array.to_list (Array.sub es stem_len q) in
        match Lasso.check ~stem ~cycle with
        | Ok l -> Some l
        | Error _ -> try_period (q + 1)
    end
  in
  if n = 0 then None else try_period 1

type window_summary = {
  proc : Event.proc;
  events_total : int;
  events_in_window : int;
  commits_in_window : int;
  aborts_in_window : int;
  trycs_in_window : int;
  looks_pending : bool;
  looks_crashed : bool;
  looks_parasitic : bool;
  looks_progressing : bool;
}

let classify_window ~window h =
  let es = History.events h in
  let n = List.length es in
  let tail = List.filteri (fun i _ -> i >= n - window) es in
  let count_in l pred p =
    List.length (List.filter (fun e -> Event.proc e = p && pred e) l)
  in
  List.map
    (fun p ->
      let events_total = History.event_count h p in
      let events_in_window = count_in tail (fun _ -> true) p in
      let commits_in_window = count_in tail Event.is_commit p in
      let aborts_in_window = count_in tail Event.is_abort p in
      let trycs_in_window = count_in tail Event.is_try_commit p in
      let looks_pending = commits_in_window = 0 in
      let looks_crashed = events_total > 0 && events_in_window = 0 in
      let looks_parasitic =
        events_in_window > 0 && trycs_in_window = 0 && aborts_in_window = 0
      in
      {
        proc = p;
        events_total;
        events_in_window;
        commits_in_window;
        aborts_in_window;
        trycs_in_window;
        looks_pending;
        looks_crashed;
        looks_parasitic;
        looks_progressing =
          (not looks_pending) && (not looks_crashed) && not looks_parasitic;
      })
    (History.procs h)

(* Counter-sample classification: the watchdog's view of a real domain.
   Two samples of monotone per-domain counters bracket an observation
   window; the deltas replay the window heuristics of [classify_window]
   on counters instead of history events. *)
type counters = { c_ops : int; c_trycs : int; c_commits : int; c_aborts : int }

let counters ~ops ~trycs ~commits ~aborts =
  { c_ops = ops; c_trycs = trycs; c_commits = commits; c_aborts = aborts }

let classify_counters ~first ~last =
  let d f = f last - f first in
  let ops = d (fun c -> c.c_ops)
  and trycs = d (fun c -> c.c_trycs)
  and commits = d (fun c -> c.c_commits)
  and aborts = d (fun c -> c.c_aborts) in
  if ops <= 0 then Process_class.Crashed
    (* A parasite on real hardware is not perfectly abort-free: a peer
       descheduled mid-commit can strand a global lock long enough to
       force a bounded-spin restart of an otherwise endless body.  Such
       restarts are noise, not work: tolerate aborts up to 1/64 of the
       window's operations.  A genuinely starving process fails this by
       orders of magnitude — its operations *are* its failed attempts,
       so its aborts are a constant fraction of its ops. *)
  else if trycs = 0 && aborts * 64 <= ops then Process_class.Parasitic
  else if commits = 0 then Process_class.Starving
  else Process_class.Progressing

let pp_window_summary ppf s =
  Fmt.pf ppf
    "p%d: %d events (%d in window), C=%d A=%d tryC=%d%s%s%s%s" s.proc
    s.events_total s.events_in_window s.commits_in_window s.aborts_in_window
    s.trycs_in_window
    (if s.looks_pending then " pending?" else "")
    (if s.looks_crashed then " crashed?" else "")
    (if s.looks_parasitic then " parasitic?" else "")
    (if s.looks_progressing then " progressing" else "")
