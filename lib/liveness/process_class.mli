open Tm_history

(** Process classification in infinite histories (Section 2.3, Figure 2).

    All predicates are exact decisions on lasso-represented infinite
    histories:

    - [pk] is {e pending} iff [H] has finitely many commit events [C_k];
    - [pk] {e crashes} iff [H|pk] is a finite non-empty sequence;
    - [pk] is {e parasitic} iff [H|pk] is infinite and contains finitely
      many [tryC_k] invocations and finitely many abort events [A_k];
    - [pk] is {e starving} iff it does not crash, is not parasitic, and is
      pending;
    - [pk] is {e correct} iff it is neither parasitic nor crashed, and
      {e faulty} otherwise;
    - a correct [pk] {e makes progress} iff it is not pending;
    - [pk] {e runs alone} iff it is correct and no other process is
      correct. *)

val is_pending : Lasso.t -> Event.proc -> bool
val crashes : Lasso.t -> Event.proc -> bool
val is_parasitic : Lasso.t -> Event.proc -> bool
val is_starving : Lasso.t -> Event.proc -> bool
val is_correct : Lasso.t -> Event.proc -> bool
val is_faulty : Lasso.t -> Event.proc -> bool

val makes_progress : Lasso.t -> Event.proc -> bool
(** [makes_progress l p] holds iff [p] is correct and not pending. *)

val runs_alone : Lasso.t -> Event.proc -> bool

val correct_processes : Lasso.t -> Event.proc list
val progressing_processes : Lasso.t -> Event.proc list

(** The taxonomy as a total, mutually exclusive classification: every
    process of a lasso is exactly one of crashed, parasitic, starving
    (correct but pending), or progressing (correct and committing
    infinitely often).  This is the paper's Figure-2 partition flattened
    into one value — the form the analysis layer's liveness lints compare
    against claimed verdicts. *)
type cls = Crashed | Parasitic | Starving | Progressing

val cls : Lasso.t -> Event.proc -> cls

val cls_label : cls -> string
(** ["crashed"], ["parasitic"], ["starving"], ["progressing"]. *)

val cls_of_label : string -> cls option
val equal_cls : cls -> cls -> bool

type summary = {
  proc : Event.proc;
  pending : bool;
  crashed : bool;
  parasitic : bool;
  starving : bool;
  correct : bool;
  progresses : bool;
}

val classify : Lasso.t -> summary list
(** One summary per process appearing in the lasso, ascending. *)

val pp_summary : Format.formatter -> summary -> unit
val pp_table : Format.formatter -> summary list -> unit
