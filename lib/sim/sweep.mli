open Tm_history

(** The sweep engine: run a grid of (TM × fault pattern × seed)
    configurations — sequentially or sharded across a {!Pool} of domains —
    and collect a {!Metrics.t} per run.

    Determinism is the design constraint: every configuration carries its
    own seed, {!Runner.run} derives all of a run's randomness from that
    seed via its own splittable PRNG stream, and results are merged back
    in the canonical grid order (TM-major, then pattern, then seed).  A
    parallel sweep is therefore bit-for-bit equal to a sequential one —
    {!to_json} on both yields identical bytes — which the differential
    test suite asserts. *)

type config = {
  tm : Tm_impl.Registry.entry;
  pattern : string;  (** fault-pattern name, e.g. ["healthy"], ["crash"] *)
  seed : int;
  spec : Runner.spec;
}

val label : config -> string
(** ["tl2/crash/seed=3"]. *)

val fault_patterns :
  ?nprocs:int ->
  ?ntvars:int ->
  ?steps:int ->
  ?sched:Runner.sched ->
  unit ->
  (string * (seed:int -> Runner.spec)) list
(** The standard fault grid (defaults: 3 processes, 4 t-variables, 1000
    steps, uniform scheduling):
    - ["healthy"]: no faults;
    - ["crash"]: process 1 crashes after its first write;
    - ["parasite"]: process 1 turns parasitic at a tenth of the run;
    - ["mixed"]: process 1 crashes mid-run, process 2 turns parasitic. *)

val grid :
  ?tms:Tm_impl.Registry.entry list ->
  ?patterns:(string * (seed:int -> Runner.spec)) list ->
  seeds:int list ->
  unit ->
  config list
(** The cross product in canonical order (TM-major, then pattern, then
    seed).  Defaults: every registered TM, {!fault_patterns} defaults. *)

type result = {
  r_config : config;
  r_outcome : Runner.outcome;
  r_metrics : Metrics.t;
  r_trace : Tm_trace.Trace_event.t list;
      (** per-run trace events (empty unless [run ~trace:true]) *)
}

val run : ?pool:Pool.t -> ?trace:bool -> config list -> result list
(** Execute every configuration and return results in the input order.
    Without a pool (or with a 1-job pool) the sweep runs sequentially in
    the caller; either way the results are identical.  With [~trace:true]
    each run also records its deterministic step-clock trace into
    [r_trace]; traces, like metrics, are identical whether or not a pool
    is used. *)

val by_tm : result list -> (string * Metrics.t) list
(** Metrics aggregated per TM (merged over patterns and seeds), in order
    of first appearance. *)

val to_json : result list -> string
(** The sweep's metrics document:
    [{"runs":[{"tm","pattern","seed","metrics"}...],
      "by_tm":[{"tm","metrics"}...]}] — deterministic bytes, no
    wall-clock content. *)

val pp_table : Format.formatter -> result list -> unit
(** One line per run: label, commits, aborts by cause, defers, mean
    commit latency. *)

(** Exhaustive schedule enumeration for model-checking a TM.

    Enumerates {e every} interleaving of up to [depth] scheduler actions —
    at each step each process either polls its pending operation or issues
    any invocation from the given menu — and hands each reached history to
    the callback.  Because TM implementations are mutable and a poll can
    advance internal state without emitting an event (multi-poll commits),
    nodes are identified by {e action} sequences and replayed on fresh
    instances; O(depth) per node, irrelevant at the depths that are
    feasible anyway (the tree has ~[(nprocs * |invocations|)^depth]
    nodes).

    Combined with the linear-time {!Tm_safety.Monitor} this gives a small
    bounded model checker: [Exhaustive.run] over all schedules, monitor
    each history, fall back to the exact checker on the rare
    [No_witness]. *)
module Exhaustive : sig
  type action = Invoke of Event.proc * Event.invocation | Poll of Event.proc

  val run :
    Tm_impl.Registry.entry ->
    nprocs:int ->
    ntvars:int ->
    invocations:Event.invocation list ->
    depth:int ->
    on_history:(History.t -> action list -> unit) ->
    unit
  (** [on_history] is called on every node (including internal ones) with
      the recorded history and the action sequence that produced it. *)

  val count_nodes :
    Tm_impl.Registry.entry ->
    nprocs:int ->
    ntvars:int ->
    invocations:Event.invocation list ->
    depth:int ->
    int
end
