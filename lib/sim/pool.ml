(* A growable ring-buffer deque.  All access happens under the pool's
   mutex; the deque itself is not thread-safe. *)
module Deque = struct
  type 'a t = {
    mutable buf : 'a option array;
    mutable head : int;  (* index of the front element *)
    mutable len : int;
  }

  let create () = { buf = Array.make 16 None; head = 0; len = 0 }

  let grow d =
    let cap = Array.length d.buf in
    let buf = Array.make (2 * cap) None in
    for i = 0 to d.len - 1 do
      buf.(i) <- d.buf.((d.head + i) mod cap)
    done;
    d.buf <- buf;
    d.head <- 0

  let push_back d x =
    if d.len = Array.length d.buf then grow d;
    d.buf.((d.head + d.len) mod Array.length d.buf) <- Some x;
    d.len <- d.len + 1

  let pop_front d =
    if d.len = 0 then None
    else begin
      let x = d.buf.(d.head) in
      d.buf.(d.head) <- None;
      d.head <- (d.head + 1) mod Array.length d.buf;
      d.len <- d.len - 1;
      x
    end

  let pop_back d =
    if d.len = 0 then None
    else begin
      let i = (d.head + d.len - 1) mod Array.length d.buf in
      let x = d.buf.(i) in
      d.buf.(i) <- None;
      d.len <- d.len - 1;
      x
    end
end

type t = {
  jobs : int;
  queue : (unit -> unit) Deque.t;
  mutex : Mutex.t;
  nonempty : Condition.t;  (* work arrived, or the pool closed *)
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let jobs t = t.jobs
let default_jobs () = Domain.recommended_domain_count ()

let rec worker_loop t =
  Mutex.lock t.mutex;
  let rec take () =
    match Deque.pop_front t.queue with
    | Some task ->
        Mutex.unlock t.mutex;
        Some task
    | None ->
        if t.closed then begin
          Mutex.unlock t.mutex;
          None
        end
        else begin
          Condition.wait t.nonempty t.mutex;
          take ()
        end
  in
  match take () with
  | Some task ->
      task ();
      worker_loop t
  | None -> ()

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      queue = Deque.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      closed = false;
      workers = [];
    }
  in
  t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  let ws = t.workers in
  t.closed <- true;
  t.workers <- [];
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  List.iter Domain.join ws

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map_array t f xs =
  let n = Array.length xs in
  if t.jobs = 1 || n <= 1 then Array.map f xs
  else begin
    let results = Array.make n None in
    let first_error = Atomic.make None in
    let remaining = ref n in
    let drained = Condition.create () in
    (* Each task owns slot [i]; result placement is by index, so the
       merged output is independent of which domain ran what and in what
       order — parallel runs are bit-for-bit equal to sequential ones. *)
    let task i () =
      (match f xs.(i) with
      | r -> results.(i) <- Some r
      | exception e -> ignore (Atomic.compare_and_set first_error None (Some e)));
      Mutex.lock t.mutex;
      decr remaining;
      if !remaining = 0 then Condition.broadcast drained;
      Mutex.unlock t.mutex
    in
    Mutex.lock t.mutex;
    if t.closed then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.map_array: pool is shut down"
    end;
    for i = 0 to n - 1 do
      Deque.push_back t.queue (task i)
    done;
    Condition.broadcast t.nonempty;
    (* The submitter helps from the back of the deque until it is empty,
       then sleeps until the last straggler finishes. *)
    let rec help () =
      match Deque.pop_back t.queue with
      | Some task ->
          Mutex.unlock t.mutex;
          task ();
          Mutex.lock t.mutex;
          help ()
      | None -> ()
    in
    help ();
    while !remaining > 0 do
      Condition.wait drained t.mutex
    done;
    Mutex.unlock t.mutex;
    match Atomic.get first_error with
    | Some e -> raise e
    | None -> Array.map Option.get results
  end

let map_list t f xs = Array.to_list (map_array t f (Array.of_list xs))
