open Tm_history

type config = {
  tm : Tm_impl.Registry.entry;
  pattern : string;
  seed : int;
  spec : Runner.spec;
}

let label c =
  Fmt.str "%s/%s/seed=%d" c.tm.Tm_impl.Registry.entry_name c.pattern c.seed

let fault_patterns ?(nprocs = 3) ?(ntvars = 4) ?(steps = 1000)
    ?(sched = Runner.Uniform) () =
  let spec ?(fates = []) ~seed () =
    Runner.spec ~nprocs ~ntvars ~steps ~seed ~sched ~fates ()
  in
  [
    ("healthy", fun ~seed -> spec ~seed ());
    ("crash", fun ~seed -> spec ~fates:[ (1, Runner.Crash_after_write 1) ] ~seed ());
    ( "parasite",
      fun ~seed -> spec ~fates:[ (1, Runner.Parasitic_from (steps / 10)) ] ~seed () );
    ( "mixed",
      fun ~seed ->
        spec
          ~fates:
            [
              (1, Runner.Crash_at (steps / 2));
              (2, Runner.Parasitic_from (steps / 10));
            ]
          ~seed () );
  ]

let grid ?tms ?patterns ~seeds () =
  let tms = match tms with Some l -> l | None -> Tm_impl.Registry.all in
  let patterns =
    match patterns with Some l -> l | None -> fault_patterns ()
  in
  List.concat_map
    (fun tm ->
      List.concat_map
        (fun (pattern, mk) ->
          List.map (fun seed -> { tm; pattern; seed; spec = mk ~seed }) seeds)
        patterns)
    tms

type result = {
  r_config : config;
  r_outcome : Runner.outcome;
  r_metrics : Metrics.t;
  r_trace : Tm_trace.Trace_event.t list;
}

let run_one ~trace c =
  if trace then begin
    let col = Tm_trace.Sink.collector () in
    let outcome = Runner.run ~trace:(Tm_trace.Sink.collector_sink col) c.tm c.spec in
    {
      r_config = c;
      r_outcome = outcome;
      r_metrics = Metrics.of_outcome outcome;
      r_trace = Tm_trace.Sink.collected col;
    }
  end
  else
    let outcome = Runner.run c.tm c.spec in
    {
      r_config = c;
      r_outcome = outcome;
      r_metrics = Metrics.of_outcome outcome;
      r_trace = [];
    }

let run ?pool ?(trace = false) configs =
  let configs = Array.of_list configs in
  let results =
    match pool with
    | Some p when Pool.jobs p > 1 -> Pool.map_array p (run_one ~trace) configs
    | Some _ | None -> Array.map (run_one ~trace) configs
  in
  Array.to_list results

let by_tm results =
  List.fold_left
    (fun acc r ->
      let name = r.r_config.tm.Tm_impl.Registry.entry_name in
      match List.assoc_opt name acc with
      | Some _ ->
          List.map
            (fun (n, m') ->
              if n = name then (n, Metrics.merge m' r.r_metrics) else (n, m'))
            acc
      | None -> acc @ [ (name, r.r_metrics) ])
    [] results

let to_json results =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"runs\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Fmt.str "{\"tm\":%S,\"pattern\":%S,\"seed\":%d,\"metrics\":"
           r.r_config.tm.Tm_impl.Registry.entry_name r.r_config.pattern
           r.r_config.seed);
      Metrics.to_json buf r.r_metrics;
      Buffer.add_char buf '}')
    results;
  Buffer.add_string buf "],\"by_tm\":[";
  List.iteri
    (fun i (name, m) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Fmt.str "{\"tm\":%S,\"metrics\":" name);
      Metrics.to_json buf m;
      Buffer.add_char buf '}')
    (by_tm results);
  Buffer.add_string buf "]}";
  Buffer.contents buf

let pp_table ppf results =
  Fmt.pf ppf "%-36s %8s %8s %-17s %8s %9s@." "config" "commits" "aborts"
    "abort r/w/c" "defers" "lat-mean";
  List.iter
    (fun r ->
      let m = r.r_metrics in
      Fmt.pf ppf "%-36s %8d %8d %5d/%5d/%5d %8d %9.1f@."
        (label r.r_config) m.Metrics.commits m.Metrics.aborts
        m.Metrics.abort_causes.Metrics.on_read
        m.Metrics.abort_causes.Metrics.on_write
        m.Metrics.abort_causes.Metrics.on_commit m.Metrics.defers
        (Metrics.hist_mean m.Metrics.commit_latency))
    results

module Exhaustive = struct
  type action = Invoke of Event.proc * Event.invocation | Poll of Event.proc

  let fresh entry ~nprocs ~ntvars =
    Tm_impl.Registry.instance entry
      (Tm_impl.Tm_intf.config ~nprocs ~ntvars ())

  (* Replay an action sequence on a fresh instance, recording the
     history. *)
  let replay entry ~nprocs ~ntvars actions =
    let tm = fresh entry ~nprocs ~ntvars in
    let h = ref History.empty in
    List.iter
      (fun a ->
        match a with
        | Invoke (p, inv) ->
            tm.Tm_impl.Tm_intf.invoke p inv;
            h := History.append !h (Event.Inv (p, inv))
        | Poll p -> (
            match tm.Tm_impl.Tm_intf.poll p with
            | Some r -> h := History.append !h (Event.Res (p, r))
            | None -> ()))
      actions;
    (tm, !h)

  let enabled tm ~nprocs ~invocations =
    List.concat_map
      (fun p ->
        match tm.Tm_impl.Tm_intf.pending p with
        | Some _ -> [ Poll p ]
        | None -> List.map (fun inv -> Invoke (p, inv)) invocations)
      (List.init nprocs (fun i -> i + 1))

  let run entry ~nprocs ~ntvars ~invocations ~depth ~on_history =
    let rec dfs actions d =
      let tm, h = replay entry ~nprocs ~ntvars actions in
      on_history h actions;
      if d > 0 then
        List.iter
          (fun a -> dfs (actions @ [ a ]) (d - 1))
          (enabled tm ~nprocs ~invocations)
    in
    dfs [] depth

  let count_nodes entry ~nprocs ~ntvars ~invocations ~depth =
    let n = ref 0 in
    run entry ~nprocs ~ntvars ~invocations ~depth ~on_history:(fun _ _ ->
        incr n);
    !n
end
