open Tm_history

let nbuckets = 15

type histogram = {
  buckets : int array;
  count : int;
  sum : int;
  max_sample : int;
}

let hist_empty =
  { buckets = Array.make nbuckets 0; count = 0; sum = 0; max_sample = 0 }

let bucket_of v =
  if v <= 0 then 0
  else begin
    let rec log2 acc v = if v <= 1 then acc else log2 (acc + 1) (v lsr 1) in
    min (nbuckets - 1) (log2 0 v + 1)
  end

let hist_add h v =
  let buckets = Array.copy h.buckets in
  let b = bucket_of v in
  buckets.(b) <- buckets.(b) + 1;
  {
    buckets;
    count = h.count + 1;
    sum = h.sum + v;
    max_sample = max h.max_sample v;
  }

let hist_merge a b =
  {
    buckets = Array.init nbuckets (fun i -> a.buckets.(i) + b.buckets.(i));
    count = a.count + b.count;
    sum = a.sum + b.sum;
    max_sample = max a.max_sample b.max_sample;
  }

let hist_mean h =
  if h.count = 0 then 0.0 else float_of_int h.sum /. float_of_int h.count

let hist_bucket_label k =
  if k = 0 then "0"
  else if k = 1 then "1"
  else begin
    let lo = 1 lsl (k - 1) in
    if k = nbuckets - 1 then Fmt.str "%d+" lo
    else Fmt.str "%d-%d" lo ((1 lsl k) - 1)
  end

let pp_histogram ppf h =
  if h.count = 0 then Fmt.pf ppf "(empty)"
  else begin
    Fmt.pf ppf "@[<v>";
    Array.iteri
      (fun k c ->
        if c > 0 then
          Fmt.pf ppf "%10s %6d  %s@," (hist_bucket_label k) c
            (String.make (max 1 (c * 40 / h.count)) '#'))
      h.buckets;
    Fmt.pf ppf "count %d, mean %.2f, max %d@]" h.count (hist_mean h)
      h.max_sample
  end

type abort_causes = { on_read : int; on_write : int; on_commit : int }

type t = {
  commits : int;
  aborts : int;
  invocations : int;
  defers : int;
  faults : int;
  starvations : int;
  steps : int;
  events : int;
  throughput : float;
  abort_causes : abort_causes;
  retry_depth : histogram;
  commit_latency : histogram;
  abort_latency : histogram;
}

(* Empirical fault/starvation reading of a finished run: a process that
   looks crashed or parasitic over the last quarter of the history is a
   fault; an active process with no commit in that window (and no
   injected fault) is starving.  Same bounded-window heuristics as the
   chaos watchdog, applied post hoc to the deterministic history. *)
let fault_counters h =
  let n = History.length h in
  if n = 0 then (0, 0)
  else
    List.fold_left
      (fun (faults, starved)
           (s : Tm_liveness.Empirical.window_summary) ->
        if s.looks_crashed || s.looks_parasitic then (faults + 1, starved)
        else if s.events_in_window > 0 && s.commits_in_window = 0 then
          (faults, starved + 1)
        else (faults, starved))
      (0, 0)
      (Tm_liveness.Empirical.classify_window ~window:(max 1 (n / 4)) h)

(* Walk the history once, tracking per process the index of its current
   transaction's first invocation, its pending invocation (the abort
   cause), and its streak of consecutive aborts (the retry depth recorded
   at the next commit). *)
let of_history h =
  let nprocs =
    List.fold_left (fun acc p -> max acc p) 0 (History.procs h)
  in
  let txn_start = Array.make (nprocs + 1) (-1) in
  let pending = Array.make (nprocs + 1) None in
  let retries = Array.make (nprocs + 1) 0 in
  let causes = ref { on_read = 0; on_write = 0; on_commit = 0 } in
  let retry_depth = ref hist_empty in
  let commit_latency = ref hist_empty in
  let abort_latency = ref hist_empty in
  List.iteri
    (fun i e ->
      match (e : Event.t) with
      | Event.Inv (p, inv) ->
          if txn_start.(p) < 0 then txn_start.(p) <- i;
          pending.(p) <- Some inv
      | Event.Res (p, resp) -> (
          let latency () = i - max 0 txn_start.(p) in
          match resp with
          | Event.Value _ | Event.Ok_written -> pending.(p) <- None
          | Event.Committed ->
              commit_latency := hist_add !commit_latency (latency ());
              retry_depth := hist_add !retry_depth retries.(p);
              retries.(p) <- 0;
              txn_start.(p) <- -1;
              pending.(p) <- None
          | Event.Aborted ->
              (causes :=
                 let c = !causes in
                 match pending.(p) with
                 | Some (Event.Read _) -> { c with on_read = c.on_read + 1 }
                 | Some (Event.Write _) -> { c with on_write = c.on_write + 1 }
                 | Some Event.Try_commit | None ->
                     { c with on_commit = c.on_commit + 1 });
              abort_latency := hist_add !abort_latency (latency ());
              retries.(p) <- retries.(p) + 1;
              txn_start.(p) <- -1;
              pending.(p) <- None))
    (History.events h);
  (!causes, !retry_depth, !commit_latency, !abort_latency)

let of_outcome (o : Runner.outcome) =
  let abort_causes, retry_depth, commit_latency, abort_latency =
    of_history o.Runner.history
  in
  let faults, starvations = fault_counters o.Runner.history in
  {
    commits = Runner.commit_total o;
    aborts = Runner.abort_total o;
    invocations = Runner.total o.Runner.invocations;
    defers = Runner.total o.Runner.defers;
    faults;
    starvations;
    steps = o.Runner.steps_taken;
    events = History.length o.Runner.history;
    throughput = Runner.throughput o;
    abort_causes;
    retry_depth;
    commit_latency;
    abort_latency;
  }

let merge a b =
  let steps = a.steps + b.steps in
  let commits = a.commits + b.commits in
  {
    commits;
    aborts = a.aborts + b.aborts;
    invocations = a.invocations + b.invocations;
    defers = a.defers + b.defers;
    faults = a.faults + b.faults;
    starvations = a.starvations + b.starvations;
    steps;
    events = a.events + b.events;
    throughput =
      (if steps = 0 then 0.0 else float_of_int commits /. float_of_int steps);
    abort_causes =
      {
        on_read = a.abort_causes.on_read + b.abort_causes.on_read;
        on_write = a.abort_causes.on_write + b.abort_causes.on_write;
        on_commit = a.abort_causes.on_commit + b.abort_causes.on_commit;
      };
    retry_depth = hist_merge a.retry_depth b.retry_depth;
    commit_latency = hist_merge a.commit_latency b.commit_latency;
    abort_latency = hist_merge a.abort_latency b.abort_latency;
  }

(* A hand-rolled JSON emitter: the only consumer requirements are a stable
   key order and byte-stable number formatting, so sequential and parallel
   sweeps serialize identically. *)
let json_hist buf h =
  Buffer.add_string buf
    (Fmt.str "{\"count\":%d,\"sum\":%d,\"max\":%d,\"mean\":%.6f,\"buckets\":["
       h.count h.sum h.max_sample (hist_mean h));
  Array.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int c))
    h.buckets;
  Buffer.add_string buf "]}"

let to_json buf m =
  Buffer.add_string buf
    (Fmt.str
       "{\"commits\":%d,\"aborts\":%d,\"invocations\":%d,\"defers\":%d,\"faults\":%d,\"starvations\":%d,\"steps\":%d,\"events\":%d,\"throughput\":%.6f,"
       m.commits m.aborts m.invocations m.defers m.faults m.starvations
       m.steps m.events m.throughput);
  Buffer.add_string buf
    (Fmt.str
       "\"abort_causes\":{\"read\":%d,\"write\":%d,\"commit\":%d},"
       m.abort_causes.on_read m.abort_causes.on_write m.abort_causes.on_commit);
  Buffer.add_string buf "\"retry_depth\":";
  json_hist buf m.retry_depth;
  Buffer.add_string buf ",\"commit_latency\":";
  json_hist buf m.commit_latency;
  Buffer.add_string buf ",\"abort_latency\":";
  json_hist buf m.abort_latency;
  Buffer.add_char buf '}'

let pp ppf m =
  Fmt.pf ppf
    "@[<v>commits %d, aborts %d (read %d / write %d / commit %d), defers %d, \
     faults %d, starvations %d@,\
     throughput %.4f commits/step, commit latency mean %.1f ev (max %d), \
     retry depth mean %.2f (max %d)@]"
    m.commits m.aborts m.abort_causes.on_read m.abort_causes.on_write
    m.abort_causes.on_commit m.defers m.faults m.starvations m.throughput
    (hist_mean m.commit_latency)
    m.commit_latency.max_sample (hist_mean m.retry_depth)
    m.retry_depth.max_sample
