(** Per-run observability for the simulation runner.

    A {!t} condenses one {!Runner.outcome} into the numbers the sweep
    engine reports and exports: commit/abort counts, the abort-cause
    breakdown (which kind of operation the TM aborted the transaction
    on), the retry-depth distribution (how many consecutive aborts a
    process accumulated before each commit) and latency histograms for
    committed and aborted transactions.

    Latencies are measured in {e history events} between a transaction's
    first invocation and its commit/abort response — a deterministic,
    hardware-independent clock, so metrics (like outcomes) are bit-for-bit
    reproducible from the spec's seed.  Wall-clock time is deliberately
    not part of a metrics value; the sweep engine reports it separately so
    parallel and sequential sweeps produce identical metrics. *)

(** {2 Histograms} *)

type histogram = {
  buckets : int array;
      (** [nbuckets] counters; bucket 0 counts value 0, bucket [k >= 1]
          counts values in [\[2^(k-1), 2^k)], the last bucket overflows *)
  count : int;
  sum : int;
  max_sample : int;
}

val nbuckets : int

val hist_empty : histogram
val hist_add : histogram -> int -> histogram
val hist_merge : histogram -> histogram -> histogram
val hist_mean : histogram -> float

val hist_bucket_label : int -> string
(** ["0"], ["1"], ["2-3"], ["4-7"], ..., ["8192+"]. *)

val pp_histogram : Format.formatter -> histogram -> unit
(** Text rendering: one line per non-empty bucket ([hist_bucket_label],
    count, a proportional bar), then a count/mean/max summary line.
    Prints ["(empty)"] for an empty histogram. *)

(** {2 Run metrics} *)

type abort_causes = {
  on_read : int;  (** the TM aborted a transaction on a read *)
  on_write : int;
  on_commit : int;  (** validation failed at [tryC] *)
}

type t = {
  commits : int;
  aborts : int;
  invocations : int;
  defers : int;
  faults : int;
      (** processes that look crashed or parasitic over the last quarter
          of the history (the {!Tm_liveness.Empirical} window reading) *)
  starvations : int;
      (** processes active in that window with no commit in it and no
          injected-looking fault — the empirically starving ones *)
  steps : int;
  events : int;  (** history length *)
  throughput : float;  (** commits per simulation step *)
  abort_causes : abort_causes;
  retry_depth : histogram;
      (** consecutive aborts accumulated before each commit *)
  commit_latency : histogram;
      (** events from first invocation to the commit response *)
  abort_latency : histogram;
}

val of_outcome : Runner.outcome -> t
val merge : t -> t -> t

val to_json : Buffer.t -> t -> unit
(** Appends the run's metrics as one deterministic JSON object (stable key
    order, no whitespace variation). *)

val pp : Format.formatter -> t -> unit
