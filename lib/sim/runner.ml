open Tm_history

type fate =
  | Healthy
  | Crash_at of int
  | Parasitic_from of int
  | Crash_after_write of int
  | Crash_mid_commit of int

type sched = Round_robin | Uniform | Quantum of int

type spec = {
  nprocs : int;
  ntvars : int;
  steps : int;
  seed : int;
  sched : sched;
  workload : Workload.t;
  workload_overrides : (Event.proc * Workload.t) list;
  parasite_workload : Workload.t;
  fates : (Event.proc * fate) list;
}

let spec ?(ntvars = 4) ?(steps = 1000) ?(seed = 0) ?(sched = Round_robin)
    ?workload ?(workload_overrides = []) ?parasite_workload ?(fates = [])
    ~nprocs () =
  let workload =
    match workload with Some w -> w | None -> Workload.counter ~ntvars
  in
  let parasite_workload =
    match parasite_workload with
    | Some w -> w
    | None -> Workload.write_only ~ntvars ~writes:2
  in
  {
    nprocs;
    ntvars;
    steps;
    seed;
    sched;
    workload;
    workload_overrides;
    parasite_workload;
    fates;
  }

type outcome = {
  history : History.t;
  commits : int array;
  aborts : int array;
  invocations : int array;
  defers : int array;
  final_defer_streak : int array;
  steps_taken : int;
}

type mode = Normal | Parasite

(* Per-process program state. *)
type pstate = {
  proc : Event.proc;
  prng : Prng.t;
  mutable mode : mode;
  mutable body : Workload.op list;  (** remaining ops before tryC *)
  mutable reads_acc : (Event.tvar * Event.value) list;  (** latest first *)
  mutable txn_index : int;  (** committed transactions so far *)
  mutable parasite_counter : int;
  mutable ok_count : int;  (** write acknowledgements received, ever *)
  mutable tryc_polls : int;  (** unanswered polls on the pending tryC *)
}

let fate_of s p =
  match List.assoc_opt p s.fates with Some f -> f | None -> Healthy

let workload_of s p =
  match List.assoc_opt p s.workload_overrides with
  | Some w -> w
  | None -> s.workload

module Tev = Tm_trace.Trace_event

let fate_label = function
  | Healthy -> "healthy"
  | Crash_at _ -> "crash-at"
  | Parasitic_from _ -> "parasitic-from"
  | Crash_after_write _ -> "crash-after-write"
  | Crash_mid_commit _ -> "crash-mid-commit"

let mode_label = function Normal -> "normal" | Parasite -> "parasite"

let run ?trace ?on_event (entry : Tm_impl.Registry.entry) s =
  let cfg =
    Tm_impl.Tm_intf.config ~seed:s.seed ~nprocs:s.nprocs ~ntvars:s.ntvars ()
  in
  let tm = Tm_impl.Registry.instance entry cfg in
  let master = Prng.create s.seed in
  let ps =
    Array.init (s.nprocs + 1) (fun i ->
        {
          proc = i;
          prng = Prng.split master;
          mode = Normal;
          body = [];
          reads_acc = [];
          txn_index = 0;
          parasite_counter = 0;
          ok_count = 0;
          tryc_polls = 0;
        })
  in
  for p = 1 to s.nprocs do
    ps.(p).body <- (workload_of s p).Workload.body ps.(p).prng 0
  done;
  let history = ref History.empty in
  let commits = Array.make (s.nprocs + 1) 0 in
  let aborts = Array.make (s.nprocs + 1) 0 in
  let invocations = Array.make (s.nprocs + 1) 0 in
  let defers = Array.make (s.nprocs + 1) 0 in
  let streak = Array.make (s.nprocs + 1) 0 in
  let sched_prng = Prng.split master in
  (* The trace's clock is the number of history events recorded so far —
     the same deterministic event-count clock Metrics uses for latencies.
     An event emitted with [ts = !nev] is simultaneous with the history
     event about to be recorded at that index. *)
  let nev = ref 0 in
  let record e =
    (* Observers see the event at its history index, before it is
       appended — the same step clock the trace and metrics use. *)
    (match on_event with Some f -> f ~ts:!nev e | None -> ());
    history := History.append !history e;
    incr nev
  in
  let tracing = Option.is_some trace in
  let emit_tr e =
    match trace with Some sink -> sink.Tm_trace.Sink.emit e | None -> ()
  in
  let txn_open = Array.make (s.nprocs + 1) false in
  let tryc_open = Array.make (s.nprocs + 1) false in
  let crash_noted = Array.make (s.nprocs + 1) false in

  let dyn_crashed = Array.make (s.nprocs + 1) false in
  let crashed tick p =
    dyn_crashed.(p)
    ||
    match fate_of s p with
    | Crash_at t -> tick >= t
    | Healthy | Parasitic_from _ | Crash_after_write _ | Crash_mid_commit _ ->
        false
  in
  let parasitic tick p =
    match fate_of s p with
    | Parasitic_from t -> tick >= t
    | Healthy | Crash_at _ | Crash_after_write _ | Crash_mid_commit _ -> false
  in

  (* Start a fresh transaction body (after a commit or an abort, or when a
     parasite exhausts its current run of operations). *)
  let fresh_body (st : pstate) =
    (match st.mode with
    | Parasite ->
        st.parasite_counter <- st.parasite_counter + 1;
        st.body <-
          s.parasite_workload.Workload.body st.prng st.parasite_counter
    | Normal -> st.body <- (workload_of s st.proc).Workload.body st.prng st.txn_index);
    st.reads_acc <- []
  in

  let handle_response p (st : pstate) inv resp =
    (* Close trace spans before recording the response, so their end
       timestamp is the index of the [Committed]/[Aborted] event itself. *)
    (if tracing then
       match (resp : Event.response) with
       | Event.Committed | Event.Aborted ->
           let outcome =
             if resp = Event.Committed then "commit" else "abort"
           in
           if tryc_open.(p) then begin
             tryc_open.(p) <- false;
             emit_tr
               (Tev.span_end ~ts:!nev ~tid:p Tev.Txn "tryC"
                  [ ("outcome", Tev.Str outcome) ])
           end;
           if txn_open.(p) then begin
             txn_open.(p) <- false;
             emit_tr
               (Tev.span_end ~ts:!nev ~tid:p Tev.Txn "txn"
                  [ ("outcome", Tev.Str outcome) ])
           end
       | Event.Value _ | Event.Ok_written -> ());
    record (Event.Res (p, resp));
    match (resp : Event.response) with
    | Event.Value v -> (
        match (inv : Event.invocation option) with
        | Some (Event.Read x) -> st.reads_acc <- (x, v) :: st.reads_acc
        | Some (Event.Write _ | Event.Try_commit) | None -> ())
    | Event.Ok_written -> (
        st.ok_count <- st.ok_count + 1;
        match fate_of s p with
        | Crash_after_write n when st.ok_count >= n -> dyn_crashed.(p) <- true
        | Healthy | Crash_at _ | Parasitic_from _ | Crash_after_write _
        | Crash_mid_commit _ ->
            ())
    | Event.Committed ->
        commits.(p) <- commits.(p) + 1;
        st.txn_index <- st.txn_index + 1;
        fresh_body st
    | Event.Aborted ->
        aborts.(p) <- aborts.(p) + 1;
        fresh_body st
  in

  (* Emit the next invocation of p's program. *)
  let emit p (st : pstate) =
    let inv =
      match st.body with
      | Workload.W_read x :: rest ->
          st.body <- rest;
          Event.Read x
      | Workload.W_write (x, f) :: rest ->
          st.body <- rest;
          Event.Write (x, f st.reads_acc)
      | [] -> (
          match st.mode with
          | Normal -> Event.Try_commit
          | Parasite ->
              (* Parasites never commit: refill and recurse once (the
                 parasite workload always produces at least one op). *)
              fresh_body st;
              (match st.body with
              | Workload.W_read x :: rest ->
                  st.body <- rest;
                  Event.Read x
              | Workload.W_write (x, f) :: rest ->
                  st.body <- rest;
                  Event.Write (x, f st.reads_acc)
              | [] -> invalid_arg "parasite workload produced an empty body"))
    in
    invocations.(p) <- invocations.(p) + 1;
    if tracing then begin
      if not txn_open.(p) then begin
        txn_open.(p) <- true;
        emit_tr
          (Tev.span_begin ~ts:!nev ~tid:p Tev.Txn "txn"
             [
               ("index", Tev.Int st.txn_index);
               ("mode", Tev.Str (mode_label st.mode));
             ])
      end;
      if inv = Event.Try_commit && not tryc_open.(p) then begin
        tryc_open.(p) <- true;
        emit_tr (Tev.span_begin ~ts:!nev ~tid:p Tev.Txn "tryC" [])
      end
    end;
    record (Event.Inv (p, inv));
    tm.Tm_impl.Tm_intf.invoke p inv
  in

  let all_procs = List.init s.nprocs (fun i -> i + 1) in
  let rr = ref 0 in
  let quantum_left = ref 0 in
  let quantum_proc = ref 0 in

  let choose tick =
    match List.filter (fun p -> not (crashed tick p)) all_procs with
    | [] -> None
    | procs -> (
        let next_rr () =
          let p = List.nth procs (!rr mod List.length procs) in
          incr rr;
          p
        in
        match s.sched with
        | Round_robin -> Some (next_rr ())
        | Uniform -> Some (Prng.pick sched_prng procs)
        | Quantum q ->
            if !quantum_left > 0 && List.mem !quantum_proc procs then begin
              decr quantum_left;
              Some !quantum_proc
            end
            else begin
              let p = next_rr () in
              quantum_proc := p;
              quantum_left := q - 1;
              Some p
            end)
  in

  (* Record faults as trace instants the first time they are observable:
     a crashed process gets a [Fault] instant labelled with its fate. *)
  let note_crashes tick =
    for p = 1 to s.nprocs do
      if (not crash_noted.(p)) && crashed tick p then begin
        crash_noted.(p) <- true;
        emit_tr
          (Tev.instant ~ts:!nev ~tid:p Tev.Fault "crash"
             [ ("fate", Tev.Str (fate_label (fate_of s p))) ])
      end
    done
  in

  let steps_taken = ref 0 in
  (try
     for tick = 0 to s.steps - 1 do
       if tracing then note_crashes tick;
       match choose tick with
       | None -> raise Exit
       | Some p ->
           incr steps_taken;
           let st = ps.(p) in
           (* A process turning parasitic abandons its plan to commit. *)
           if st.mode = Normal && parasitic tick p then begin
             st.mode <- Parasite;
             if tracing then
               emit_tr (Tev.instant ~ts:!nev ~tid:p Tev.Fault "parasitic" []);
             if st.body = [] then fresh_body st
           end;
           let pending = tm.Tm_impl.Tm_intf.pending p in
           (* Crash inside the commit procedure once the pending tryC has
              gone unanswered the configured number of times. *)
           (match (pending, fate_of s p) with
           | Some Event.Try_commit, Crash_mid_commit n when st.tryc_polls >= n
             ->
               dyn_crashed.(p) <- true
           | (Some _ | None), _ -> ());
           if not dyn_crashed.(p) then
             match pending with
             | Some _ -> (
                 match tm.Tm_impl.Tm_intf.poll p with
                 | Some resp ->
                     streak.(p) <- 0;
                     st.tryc_polls <- 0;
                     handle_response p st pending resp
                 | None ->
                     defers.(p) <- defers.(p) + 1;
                     streak.(p) <- streak.(p) + 1;
                     if tracing then
                       emit_tr
                         (Tev.counter ~ts:!nev ~tid:p Tev.Sched
                            (Fmt.str "defers-p%d" p)
                            defers.(p));
                     if pending = Some Event.Try_commit then
                       st.tryc_polls <- st.tryc_polls + 1)
             | None -> emit p st
     done
   with Exit -> ());
  if tracing then note_crashes s.steps;
  {
    history = !history;
    commits;
    aborts;
    invocations;
    defers;
    final_defer_streak = streak;
    steps_taken = !steps_taken;
  }

let total a = Array.fold_left ( + ) 0 a
let commit_total o = total o.commits
let abort_total o = total o.aborts

let throughput o =
  if o.steps_taken = 0 then 0.0
  else float_of_int (commit_total o) /. float_of_int o.steps_taken

let blocked_procs ?(threshold = 50) o =
  List.filteri (fun i _ -> i > 0) (Array.to_list o.final_defer_streak)
  |> List.mapi (fun i streak -> (i + 1, streak))
  |> List.filter_map (fun (p, streak) ->
         if streak > threshold then Some p else None)

let pp_summary ppf o =
  let per name a =
    Fmt.pf ppf "%s: %a (total %d)@," name
      Fmt.(list ~sep:(any " ") int)
      (List.tl (Array.to_list a))
      (total a)
  in
  Fmt.pf ppf "@[<v>";
  per "commits" o.commits;
  per "aborts " o.aborts;
  per "defers " o.defers;
  Fmt.pf ppf "steps: %d, throughput: %.4f commits/step@]" o.steps_taken
    (throughput o)
