(** A fixed-size domain worker pool with a deque-based work queue.

    [create ~jobs] spawns [jobs - 1] worker domains; the submitting domain
    is the remaining worker, so [jobs] bounds the total parallelism.  Work
    items are pushed at the back of a shared deque; resting workers take
    from the front while the submitter, once it has enqueued a whole
    batch, helps from the back — the classic two-ended discipline that
    keeps the submitter on the freshest (cache-warm) items.

    A pool with [jobs = 1] never spawns a domain and runs every batch
    inline in the caller, which makes it the bit-for-bit reference for
    the parallel runs: {!map_array} writes each result into its input's
    slot and is therefore independent of execution order by
    construction. *)

type t

val create : jobs:int -> t
(** [create ~jobs] is a pool of [max 1 jobs] workers. *)

val jobs : t -> int

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array pool f xs] computes [f] on every element, sharded across
    the pool's domains, and returns the results in input order.  [f] must
    not itself submit work to the same pool.  If any application raises,
    one such exception is re-raised in the caller after the whole batch
    has drained. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

val shutdown : t -> unit
(** Ends the worker domains (idempotent).  Outstanding batches finish
    first; submitting after shutdown raises [Invalid_argument]. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] on a fresh pool and shuts it down
    afterwards, also on exception. *)
