open Tm_history

(** The simulation runner: drives transaction programs against a TM
    instance under an adversarial scheduler with fault injection, and
    records the resulting history.

    Each simulation step gives one process one micro-step: either its
    program emits the next invocation, or the TM is polled on its pending
    one.  A process whose fate is [Crash_at t] is never scheduled from step
    [t] on (the paper's crash: its projection becomes finite, and whatever
    its in-flight operation holds stays held).  A process with
    [Parasitic_from t] switches at step [t] to issuing operations from the
    parasite workload forever, never invoking [tryC] (the paper's parasitic
    process — as long as the TM never aborts it). *)

type fate =
  | Healthy
  | Crash_at of int  (** never scheduled from step [t] on *)
  | Parasitic_from of int
      (** from step [t] on, issues parasite-workload operations forever and
          never invokes [tryC] *)
  | Crash_after_write of int
      (** crashes upon receiving its [n]-th [ok] response (1-based) — i.e.
          mid-transaction, after a write; under encounter-time locking the
          lock dies with it *)
  | Crash_mid_commit of int
      (** crashes once its pending [tryC] has been polled [n] times without
          an answer — inside a multi-poll commit procedure ([n = 0] crashes
          immediately after invoking [tryC]) *)

type sched =
  | Round_robin
  | Uniform  (** uniformly random among alive processes *)
  | Quantum of int  (** stay on one process for [q] steps, round-robin *)

type spec = {
  nprocs : int;
  ntvars : int;
  steps : int;
  seed : int;
  sched : sched;
  workload : Workload.t;  (** default transaction bodies *)
  workload_overrides : (Event.proc * Workload.t) list;
      (** per-process overrides of [workload] *)
  parasite_workload : Workload.t;  (** ops issued once parasitic *)
  fates : (Event.proc * fate) list;  (** unlisted processes are healthy *)
}

val spec :
  ?ntvars:int ->
  ?steps:int ->
  ?seed:int ->
  ?sched:sched ->
  ?workload:Workload.t ->
  ?workload_overrides:(Event.proc * Workload.t) list ->
  ?parasite_workload:Workload.t ->
  ?fates:(Event.proc * fate) list ->
  nprocs:int ->
  unit ->
  spec
(** Defaults: 4 t-variables, 1000 steps, seed 0, round-robin, counter
    workload, write-only parasite workload, all processes healthy. *)

type outcome = {
  history : History.t;
  commits : int array;  (** per process, index 1..nprocs *)
  aborts : int array;
  invocations : int array;
  defers : int array;  (** polls that returned no response *)
  final_defer_streak : int array;
      (** consecutive unanswered polls at the end of the run — a large
          value on an alive process indicates it is blocked *)
  steps_taken : int;
}

val run :
  ?trace:Tm_trace.Sink.t ->
  ?on_event:(ts:int -> Event.t -> unit) ->
  Tm_impl.Registry.entry ->
  spec ->
  outcome
(** Runs the simulation.  With [?trace], structured trace events are
    streamed into the sink as the run unfolds: per-process transaction and
    tryC spans, fault instants (crashes, parasitic turns), and per-process
    defer counters.  Event timestamps are history-event indexes — the
    deterministic step clock — so traces of a seeded run are bit-for-bit
    reproducible.

    [?on_event] observes every history event as it is recorded, with
    [ts] the event's history index (the same step clock).  It is called
    synchronously on the simulation domain; telemetry publishers
    ({!Tm_telemetry.Sim_pub} via its [hook]) plug in here without the
    runner depending on them. *)

val total : int array -> int
val commit_total : outcome -> int
val abort_total : outcome -> int

val throughput : outcome -> float
(** Committed transactions per simulation step. *)

val blocked_procs : ?threshold:int -> outcome -> Event.proc list
(** Alive processes whose final defer streak exceeds [threshold]
    (default 50). *)

val pp_summary : Format.formatter -> outcome -> unit
