module Prng = Tm_sim.Prng
module Pc = Tm_liveness.Process_class
module Tev = Tm_trace.Trace_event
module Algo = Tm_stm.Stm.Algo

type fault =
  | Healthy
  | Crash of { at_op : int; holding_locks : bool }
  | Parasitic of { from_op : int }
  | Stall of { period : int; spins : int }
  | Abort_storm of { from_op : int; until_op : int }

type t = {
  scenario : string;
  seed : int;
  domains : int;
  algo : Algo.t;
  faults : fault array;
  expected : Pc.cls array;
}

let scenario_table =
  [
    ("healthy", "no faults: every domain must progress");
    ( "crash-holding-locks",
      "domain 0 crashes at pre-commit with its write-set vlocks held; \
       conflicting peers must starve" );
    ( "crash-clean",
      "domain 0 crashes at a read, holding nothing; peers must progress" );
    ( "parasitic-only",
      "domain 0 loops forever without tryC; peers must progress" );
    ("stall", "domain 0 stalls periodically; every domain must still progress");
    ( "abort-storm",
      "domain 0 suffers a transient forced-abort window; every domain must \
       still progress" );
    ( "mixed",
      "domain 0 crashes clean and domain 1 turns parasitic; remaining \
       domains must progress" );
  ]

let scenarios = List.map fst scenario_table
let scenario_doc s = List.assoc_opt s scenario_table

(* Fault instants are early in the run (within the first few hundred
   operations, i.e. well inside the watchdog's warmup) so the sampled
   observation window sees the steady faulty state, not the onset. *)
let fault_of_scenario scenario d g =
  match scenario with
  | "healthy" -> Healthy
  | "crash-holding-locks" ->
      if d = 0 then Crash { at_op = 64 + Prng.int g 64; holding_locks = true }
      else Healthy
  | "crash-clean" ->
      if d = 0 then Crash { at_op = 64 + Prng.int g 64; holding_locks = false }
      else Healthy
  | "parasitic-only" ->
      if d = 0 then Parasitic { from_op = 32 + Prng.int g 64 } else Healthy
  | "stall" ->
      if d = 0 then Stall { period = 8 + Prng.int g 8; spins = 64 + Prng.int g 192 }
      else Healthy
  | "abort-storm" ->
      if d = 0 then begin
        let from_op = 64 + Prng.int g 128 in
        Abort_storm { from_op; until_op = from_op + 256 + Prng.int g 256 }
      end
      else Healthy
  | "mixed" ->
      (* The per-algo expectations read mixed as a causal sequence —
         the crash lands first, then a parasite appears in the wreckage
         — so the runner holds the parasite's onset until the crasher
         has actually died (per-domain op clocks cannot order onsets
         across domains: under the serializer the eventual winner's
         clock outruns a starving peer's arbitrarily). *)
      if d = 0 then Crash { at_op = 64 + Prng.int g 64; holding_locks = false }
      else if d = 1 then Parasitic { from_op = 32 + Prng.int g 64 }
      else Healthy
  | _ -> assert false

(* The per-algorithm Figure-2 matrix: what each fault does to the
   faulty domain's peers depends on which core is running — this is the
   separation the paper's Section 3.2.3 is about, made executable.

   - crash-holding-locks: the crashed domain abandons whatever its
     commit holds.  Lock-based cores (tl2's vlocks, the serializer,
     NOrec's sequence lock) strand their peers forever — Starving; the
     obstruction-free DSTM core's peers steal the abandoned ownerships
     and keep committing — Progressing.
   - crash-clean: the crash point is a transactional read.  Every core
     holds nothing there except the global-lock serializer, which
     acquires at first access — its crash strands the serializer and
     every peer starves; all other cores' peers progress.
   - parasitic-only: the parasite loops inside one transaction body
     without ever reaching tryC.  Under the global-lock core that body
     holds the serializer, so the peers starve behind an active (not
     crashed) lock holder; every other core isolates the parasite and
     the peers progress.  Under global-lock in [mixed], the parasite
     itself classifies Starving, not Parasitic: it aborts repeatedly
     behind the serializer stranded by the crashed domain, and forced
     aborts are visible work. *)
let expected_of_scenario ~algo scenario d =
  match scenario with
  | "healthy" | "stall" | "abort-storm" -> Pc.Progressing
  | "crash-holding-locks" ->
      if d = 0 then Pc.Crashed
      else ( match algo with
        | Algo.Dstm -> Pc.Progressing
        | Algo.Tl2 | Algo.Global_lock | Algo.Norec -> Pc.Starving)
  | "crash-clean" ->
      if d = 0 then Pc.Crashed
      else ( match algo with
        | Algo.Global_lock -> Pc.Starving
        | Algo.Tl2 | Algo.Dstm | Algo.Norec -> Pc.Progressing)
  | "parasitic-only" ->
      if d = 0 then Pc.Parasitic
      else ( match algo with
        | Algo.Global_lock -> Pc.Starving
        | Algo.Tl2 | Algo.Dstm | Algo.Norec -> Pc.Progressing)
  | "mixed" ->
      if d = 0 then Pc.Crashed
      else if d = 1 then
        match algo with
        | Algo.Global_lock -> Pc.Starving
        | Algo.Tl2 | Algo.Dstm | Algo.Norec -> Pc.Parasitic
      else (
        match algo with
        | Algo.Global_lock -> Pc.Starving
        | Algo.Tl2 | Algo.Dstm | Algo.Norec -> Pc.Progressing)
  | _ -> assert false

let make ?(algo = Algo.Tl2) ~scenario ~seed ~domains () =
  if not (List.mem_assoc scenario scenario_table) then
    Error
      (Fmt.str "unknown scenario %S (try: %s)" scenario
         (String.concat ", " scenarios))
  else if domains < 2 then
    Error "a chaos plan needs at least 2 domains (a faulty one and a peer)"
  else if scenario = "mixed" && domains < 3 then
    Error "the mixed scenario needs at least 3 domains"
  else begin
    let g = Prng.create seed in
    (* One generator per domain, split off in domain order: a domain's
       fault parameters do not depend on how many draws other domains'
       faults consumed. *)
    let gs = Array.init domains (fun _ -> Prng.split g) in
    Ok
      {
        scenario;
        seed;
        domains;
        algo;
        faults = Array.init domains (fun d -> fault_of_scenario scenario d gs.(d));
        expected = Array.init domains (expected_of_scenario ~algo scenario);
      }
  end

let fault_label = function
  | Healthy -> "healthy"
  | Crash { at_op; holding_locks } ->
      Fmt.str "crash@op=%d%s" at_op (if holding_locks then "+locks" else "")
  | Parasitic { from_op } -> Fmt.str "parasitic@op=%d" from_op
  | Stall { period; spins } -> Fmt.str "stall(period=%d,spins=%d)" period spins
  | Abort_storm { from_op; until_op } ->
      Fmt.str "abort-storm[%d,%d)" from_op until_op

let fault_instant = function
  | Healthy -> 0
  | Crash { at_op; _ } -> at_op
  | Parasitic { from_op } -> from_op
  | Stall { period; _ } -> period
  | Abort_storm { until_op; _ } -> until_op

let horizon p = 1 + Array.fold_left (fun acc f -> max acc (fault_instant f)) 0 p.faults

let trace_events p =
  let event d = function
    | Healthy -> None
    | Crash { at_op; holding_locks } ->
        Some
          (Tev.instant ~ts:at_op ~tid:d Tev.Fault "chaos-crash"
             [
               ("op", Tev.Int at_op);
               ("holding_locks", Tev.Str (string_of_bool holding_locks));
             ])
    | Parasitic { from_op } ->
        Some
          (Tev.instant ~ts:from_op ~tid:d Tev.Fault "chaos-parasitic"
             [ ("op", Tev.Int from_op) ])
    | Stall { period; spins } ->
        Some
          (Tev.instant ~ts:period ~tid:d Tev.Fault "chaos-stall"
             [ ("period", Tev.Int period); ("spins", Tev.Int spins) ])
    | Abort_storm { from_op; until_op } ->
        Some
          (Tev.instant ~ts:from_op ~tid:d Tev.Fault "chaos-abort-storm"
             [ ("from", Tev.Int from_op); ("until", Tev.Int until_op) ])
  in
  List.filter_map
    (fun d -> event d p.faults.(d))
    (List.init p.domains Fun.id)

let pp ppf p =
  Fmt.pf ppf "@[<v>chaos plan %s algo=%s seed=%d domains=%d@," p.scenario
    (Algo.name p.algo) p.seed p.domains;
  Array.iteri
    (fun d f ->
      Fmt.pf ppf "domain %d: %s expect %s@," d (fault_label f)
        (Pc.cls_label p.expected.(d)))
    p.faults;
  Fmt.pf ppf "@]"

let render_schedule p = Fmt.str "%a" pp p
