(** Seeded fault plans for the multicore [Stm] runtime.

    A plan assigns one {!fault} to each domain of a run, drawn from a
    named {!scenario} and a {!Tm_sim.Prng} seed: the same
    (scenario, seed, domains) triple always yields the same plan, the
    same rendered schedule and the same fault trace events, byte for
    byte.  Fault instants are expressed on each domain's {e operation
    clock} — the count of [Stm.Chaos] interception-point firings on that
    domain — which is the only deterministic clock a real multicore run
    has.

    The plan also records the {e expected} Figure-2 class of every
    domain, so a run is an executable claim: crash-holding-locks must
    leave the crashed domain's conflicting peers starving, while a
    parasitic-only mix must leave every peer progressing. *)

type fault =
  | Healthy
  | Crash of { at_op : int; holding_locks : bool }
      (** stop dead at the first eligible interception point past
          [at_op]: at [Pre_commit] (write-set vlocks held) when
          [holding_locks], at [Read] (nothing held) otherwise *)
  | Parasitic of { from_op : int }
      (** from [from_op] on, loop forever inside one transaction body
          without ever invoking [tryC] *)
  | Stall of { period : int; spins : int }
      (** every [period] operations, spin for [spins] [cpu_relax]es *)
  | Abort_storm of { from_op : int; until_op : int }
      (** transient: force an abort at every read in
          [\[from_op, until_op)] *)

type t = private {
  scenario : string;
  seed : int;
  domains : int;
  algo : Tm_stm.Stm.Algo.t;
      (** which STM core the run drives — the expectations below are a
          function of it *)
  faults : fault array;  (** one per domain, index = domain id *)
  expected : Tm_liveness.Process_class.cls array;  (** one per domain *)
}

val scenarios : string list
(** ["healthy"; "crash-holding-locks"; "crash-clean"; "parasitic-only";
    "stall"; "abort-storm"; "mixed"]. *)

val scenario_doc : string -> string option
(** One-line description of a scenario, for [--list] output. *)

val make :
  ?algo:Tm_stm.Stm.Algo.t ->
  scenario:string ->
  seed:int ->
  domains:int ->
  unit ->
  (t, string) result
(** [make ~scenario ~seed ~domains ()] derives the plan.  Errors on an
    unknown scenario, [domains < 2], or [domains < 3] for ["mixed"].
    Fault parameters are drawn from per-domain generators split off
    [Prng.create seed], so the plan is a pure function of its inputs.

    [algo] (default [Tl2]) selects the STM core and with it the
    expected Figure-2 class of every domain — the same fault separates
    the algorithms: a crash holding commit-time ownership starves the
    peers of every lock-based core but leaves the obstruction-free
    DSTM core's peers progressing (they steal the abandoned
    ownerships); a clean crash or a parasitic turn is harmless to every
    core except the global-lock serializer, whose peers starve behind
    the stranded or occupied lock. *)

val fault_label : fault -> string
(** ["healthy"], ["crash@op=93+locks"], ["parasitic@op=41"],
    ["stall(period=11,spins=101)"], ["abort-storm[128,412)"]. *)

val horizon : t -> int
(** One past the largest scheduled fault instant — the logical timestamp
    verdict events are stamped with, so they sort after every fault. *)

val trace_events : t -> Tm_trace.Trace_event.t list
(** The planned fault schedule as [Fault]-category instants (one per
    faulty domain, [tid] = domain, [ts] = the scheduled operation
    index).  A pure function of the plan: byte-identical Chrome JSON for
    equal plans, whatever really happens at run time. *)

val render_schedule : t -> string
(** The schedule as stable text, one line per domain
    ([domain d: <fault> expect <class>]) — the byte-comparison form the
    determinism tests use. *)

val pp : Format.formatter -> t -> unit
