(** Execute a fault plan on real domains and classify what happened.

    [run] spawns one worker domain per plan slot on a shared hot set of
    t-variables (every transaction writes t-variable 0, so a crashed
    domain holding commit vlocks conflicts with every peer), installs the
    plan as an [Stm.Chaos] handler, and lets a watchdog on the spawning
    domain take two samples of each worker's monotone counters.  The
    deltas go through {!Tm_liveness.Empirical.classify_counters},
    yielding one Figure-2 verdict per domain, which is compared against
    the plan's expectation.

    The run's trace ({!outcome.events}) is the {e planned} fault
    schedule ({!Plan.trace_events}) followed by one verdict instant per
    domain — not the raw interleaving, which a real multicore run cannot
    make deterministic.  For a fixed (scenario, seed, domains) the fault
    schedule is byte-identical by construction and the verdicts are the
    empirically stable classification the scenario gates on, so equal
    runs export equal traces. *)

type sample = { ops : int; trycs : int; commits : int; aborts : int }
(** A watchdog snapshot of one domain's monotone counters.  [ops] counts
    interception-point firings, [trycs] transaction bodies that reached
    [tryC], [aborts] is attempts minus commits. *)

type session
(** A live chaos run: worker domains spawned, faults armed, counters
    flowing.  The per-domain counters are telemetry instruments
    ([tm_chaos_ops_total], [tm_chaos_attempts_total],
    [tm_chaos_trycs_total], [tm_chaos_commits_total],
    [tm_chaos_injected_total], each labelled [domain="d"], plus a
    [tm_chaos_crashed] gauge) registered in the session's registry, with
    a {!Tm_telemetry.Liveness_gauge} classifying each domain between
    scrapes. *)

val session_plan : session -> Plan.t
val session_registry : session -> Tm_telemetry.Registry.t
val session_liveness : session -> Tm_telemetry.Liveness_gauge.t

val session_blame : session -> Tm_telemetry.Blame_graph.t option
(** The blame graph folding [Stm.Blame] events, when the session was
    opened with [~blame:true]. *)

val session_latency : session -> Tm_telemetry.Latency_recorder.t option
(** The open-loop latency recorder, when the session was opened with
    [~latency:true]. *)

val sample : session -> int -> sample
(** Current counter snapshot of one domain. *)

val samples : session -> sample array
(** [sample] for every domain, ascending. *)

val session_crashed : session -> int -> bool
(** The domain's worker died on [Stm.Chaos.Crashed].  Only final after
    {!with_session} returns (workers are joined on the way out); inside
    the callback it is a live, monotone flag. *)

val session_injected : session -> int -> int
(** Faults injected into the domain so far (non-[Proceed] handler
    actions). *)

(** {2 Reusable fault dispatch}

    The plan's fault decisions run on a per-domain operation clock in
    domain-local state; any harness driving its own worker domains (the
    tm_serve chaos serving sessions) can reuse them: each worker calls
    {!bind_fault} with its fault and counters before its first
    transaction and {!unbind_fault} on the way out, while the harness
    installs {!fault_handler} as the [Stm.Chaos] handler. *)

val fault_handler : Tm_stm.Stm.Chaos.point -> Tm_stm.Stm.Chaos.action
(** The plan-driven handler: on a domain with a bound fault it ticks
    the domain's op clock, decides the action the fault prescribes at
    that instant, and counts non-[Proceed] decisions into the injected
    counter; on unbound domains it is a constant [Proceed]. *)

val bind_fault :
  Plan.fault ->
  ops:Tm_telemetry.Instrument.counter ->
  injected:Tm_telemetry.Instrument.counter ->
  unit
(** Bind the calling domain's fault identity.  [ops] becomes the
    domain's operation clock ({!fault_handler} increments it on every
    interception) and must be single-writer ([~shards:1]). *)

val unbind_fault : unit -> unit
(** Clear the calling domain's fault identity. *)

val with_session :
  ?tvars:int ->
  ?blame:bool ->
  ?latency:bool ->
  ?registry:Tm_telemetry.Registry.t ->
  Plan.t ->
  (session -> 'a) ->
  'a
(** [with_session plan f] selects the plan's STM core ([plan.algo],
    restored after the workers are joined), installs the plan's fault
    handler, spawns one worker domain per plan slot and applies [f] to
    the live session; on return (or exception) it stops and joins the
    workers and uninstalls the handler.  When the plan combines a
    crasher with a parasite (the mixed scenario) the parasite's onset
    additionally waits for the crasher to have died, so the faults land
    in the causal order the expectations describe.  [registry] is where the session registers its
    instruments (default: a fresh private one) — pass a shared registry
    to co-locate chaos counters with e.g. {!Tm_telemetry.Stm_probe}
    phase metrics in one scrape.

    [blame] (default false) additionally registers a
    {!Tm_telemetry.Blame_graph} in the session registry and installs
    its sink as the [Stm.Blame] handler for the session's duration, so
    every abort/steal/wait decision is attributed (workers bind their
    plan slot as blame identity either way).

    [latency] (default false) additionally registers a
    {!Tm_telemetry.Latency_recorder} under [tm_chaos_lat] in the session
    registry; workers mark each transaction in flight before starting it
    and complete it after the commit — a worker that dies on
    [Stm.Chaos.Crashed] leaves its last mark in place, so the dead
    domain's starvation age and the open-loop (censored) quantiles keep
    growing while the closed-loop ones freeze. *)

type report = {
  rep_domain : int;
  rep_fault : Plan.fault;
  rep_expected : Tm_liveness.Process_class.cls;
  rep_observed : Tm_liveness.Process_class.cls;
  rep_first : sample;  (** window-start snapshot *)
  rep_last : sample;  (** window-end snapshot *)
  rep_crashed : bool;  (** the worker died on [Stm.Chaos.Crashed] *)
}

val report_ok : report -> bool
(** Observed class equals the expected one. *)

type outcome = {
  o_plan : Plan.t;
  o_reports : report list;  (** one per domain, ascending *)
  o_ok : bool;  (** every report is ok *)
  o_events : Tm_trace.Trace_event.t list;
      (** planned fault instants, then verdict instants ([Monitor] /
          ["chaos-verdict"], [ts] = {!Plan.horizon}, [tid] = domain),
          then — with blame on — evidence instants ([Monitor] /
          ["blame-evidence"], same [ts], args [evidence]/[shape]/[algo]
          from {!Tm_telemetry.Blame_graph.classify}) *)
  o_blame : Tm_telemetry.Blame_graph.t option;
      (** the session's blame graph, final once [run] returns *)
}

val run :
  ?tvars:int ->
  ?blame:bool ->
  ?latency:bool ->
  ?warmup:float ->
  ?window:float ->
  ?registry:Tm_telemetry.Registry.t ->
  ?on_sample:(Tm_telemetry.Registry.snapshot -> unit) ->
  Plan.t ->
  outcome
(** [run plan] executes the plan and classifies every domain.  [tvars]
    sizes the shared hot set (default 4), [warmup] is the settle time in
    seconds before the first sample (default 0.05 — fault onsets are a
    few hundred operations in, i.e. microseconds, so the window observes
    the steady faulty state), [window] the observation time between
    samples (default 0.15).  The [Stm.Chaos] handler is uninstalled
    before returning, even on exceptions.

    [registry] and [on_sample] expose the run's telemetry: the watchdog
    scrapes the session registry right after each of its two samples
    (snapshot timestamps 0 and 1) and hands the snapshots to
    [on_sample].  The liveness gauge is rebased on the first watchdog
    sample and updated with the second, so the [tm_liveness_class]
    stateset in the final scrape byte-agrees with the verdicts in the
    returned reports.

    Note: after a crash-holding-locks run the hot t-variables stay
    locked forever by the dead domain — they are private to the run and
    simply dropped.  Core-global lock state stranded by a crash (the
    global-lock serializer, NOrec's sequence lock) is instead released
    via [Stm.recover] once the workers are joined, so one crashed run
    cannot starve later runs of the same core in this process. *)

val pp_report : Format.formatter -> report -> unit
(** One line: domain, fault, expected/observed classes, counter deltas. *)

val pp_table : Format.formatter -> outcome -> unit

val to_json : outcome -> string
(** The verdict document:
    [{"scenario":...,"algo":...,"seed":...,"domains":...,"ok":...,"verdicts":[...]}]
    with stable key order.  Counter fields are informational (real
    multicore counts vary run to run); the classification fields are the
    stable, gateable part. *)
