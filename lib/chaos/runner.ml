module Stm = Tm_stm.Stm
module Pc = Tm_liveness.Process_class
module Emp = Tm_liveness.Empirical
module Tev = Tm_trace.Trace_event

type sample = { ops : int; trycs : int; commits : int; aborts : int }

(* Per-domain monotone counters, written by the worker (and by the chaos
   handler on its domain), sampled by the watchdog.  Aborts are derived:
   every transaction body start is an attempt, every [atomically] return
   a commit, and each attempt either commits or aborts. *)
type cell = {
  c_ops : int Atomic.t;
  c_attempts : int Atomic.t;
  c_trycs : int Atomic.t;
  c_commits : int Atomic.t;
  c_crashed : bool Atomic.t;
}

let cell () =
  {
    c_ops = Atomic.make 0;
    c_attempts = Atomic.make 0;
    c_trycs = Atomic.make 0;
    c_commits = Atomic.make 0;
    c_crashed = Atomic.make false;
  }

let sample_of c =
  let attempts = Atomic.get c.c_attempts in
  let commits = Atomic.get c.c_commits in
  {
    ops = Atomic.get c.c_ops;
    trycs = Atomic.get c.c_trycs;
    commits;
    aborts = max 0 (attempts - commits);
  }

type report = {
  rep_domain : int;
  rep_fault : Plan.fault;
  rep_expected : Pc.cls;
  rep_observed : Pc.cls;
  rep_first : sample;
  rep_last : sample;
  rep_crashed : bool;
}

let report_ok r = Pc.equal_cls r.rep_observed r.rep_expected

type outcome = {
  o_plan : Plan.t;
  o_reports : report list;
  o_ok : bool;
  o_events : Tev.t list;
}

(* The handler runs on every worker domain; its per-domain identity (which
   fault, which counter cell) travels in DLS, set by the worker before its
   first transaction.  Domains without a registered identity (the
   watchdog, unrelated code in the same process) see only [Proceed]. *)
type dstate = { ds_fault : Plan.fault; ds_cell : cell }

let dls : dstate option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let handler point =
  match !(Domain.DLS.get dls) with
  | None -> Stm.Chaos.Proceed
  | Some st -> (
      (* The domain's operation clock: one tick per interception-point
         firing, the coordinate system of every planned fault instant. *)
      let n = Atomic.fetch_and_add st.ds_cell.c_ops 1 in
      match st.ds_fault with
      | Plan.Healthy | Plan.Parasitic _ -> Stm.Chaos.Proceed
      | Plan.Crash { at_op; holding_locks } ->
          let trigger =
            if holding_locks then point = Stm.Chaos.Pre_commit
            else point = Stm.Chaos.Read
          in
          if trigger && n >= at_op then Stm.Chaos.Crash else Stm.Chaos.Proceed
      | Plan.Stall { period; spins } ->
          if n mod period = 0 then Stm.Chaos.Stall spins else Stm.Chaos.Proceed
      | Plan.Abort_storm { from_op; until_op } ->
          if point = Stm.Chaos.Read && n >= from_op && n < until_op then
            Stm.Chaos.Abort
          else Stm.Chaos.Proceed)

exception Stop_worker

(* Worker transactions all write t-variable 0 (plus one other), so every
   pair of domains conflicts: a crashed lock holder necessarily strands
   the whole peer set.  A parasitic turn instead reads only [mine], a
   t-variable nobody writes — active forever, never conflicting, never
   reaching tryC. *)
let worker ~stop ~shared ~mine ~fault ~cell d () =
  let slot = Domain.DLS.get dls in
  slot := Some { ds_fault = fault; ds_cell = cell };
  let st = ref (d + 1) in
  let n = Array.length shared in
  let parasitic_from =
    match fault with Plan.Parasitic { from_op } -> Some from_op | _ -> None
  in
  (try
     while not (Atomic.get stop) do
       match parasitic_from with
       | Some from when Atomic.get cell.c_ops >= from ->
           Stm.atomically (fun () ->
               Atomic.incr cell.c_attempts;
               while true do
                 ignore (Stm.read mine);
                 if Atomic.get stop then raise Stop_worker;
                 Domain.cpu_relax ()
               done)
       | _ ->
           let r = !st * 48271 mod 0x7FFFFFFF in
           st := r;
           let other = 1 + (r mod (n - 1)) in
           Stm.atomically (fun () ->
               (* Re-run on every attempt: a permanently starving domain
                  still gets to observe the stop flag. *)
               if Atomic.get stop then raise Stop_worker;
               Atomic.incr cell.c_attempts;
               let v0 = Stm.read shared.(0) in
               let vo = Stm.read shared.(other) in
               Stm.write shared.(0) (v0 + 1);
               Stm.write shared.(other) (vo + 1);
               Atomic.incr cell.c_trycs);
           Atomic.incr cell.c_commits
     done
   with
  | Stop_worker -> ()
  | Stm.Chaos.Crashed -> Atomic.set cell.c_crashed true);
  slot := None

let counters_of (s : sample) =
  Emp.counters ~ops:s.ops ~trycs:s.trycs ~commits:s.commits ~aborts:s.aborts

let run ?(tvars = 4) ?(warmup = 0.05) ?(window = 0.15) (plan : Plan.t) =
  let nd = plan.Plan.domains in
  let shared = Array.init (max 2 tvars) (fun _ -> Stm.tvar 0) in
  let priv = Array.init nd (fun _ -> Stm.tvar 0) in
  let stop = Atomic.make false in
  let cells = Array.init nd (fun _ -> cell ()) in
  Stm.Chaos.install handler;
  Fun.protect
    ~finally:(fun () -> Stm.Chaos.uninstall ())
    (fun () ->
      let ds =
        List.init nd (fun d ->
            Domain.spawn
              (worker ~stop ~shared ~mine:priv.(d)
                 ~fault:plan.Plan.faults.(d) ~cell:cells.(d) d))
      in
      Unix.sleepf warmup;
      let first = Array.map sample_of cells in
      Unix.sleepf window;
      let last = Array.map sample_of cells in
      Atomic.set stop true;
      List.iter Domain.join ds;
      let reports =
        List.init nd (fun d ->
            {
              rep_domain = d;
              rep_fault = plan.Plan.faults.(d);
              rep_expected = plan.Plan.expected.(d);
              rep_observed =
                Emp.classify_counters ~first:(counters_of first.(d))
                  ~last:(counters_of last.(d));
              rep_first = first.(d);
              rep_last = last.(d);
              rep_crashed = Atomic.get cells.(d).c_crashed;
            })
      in
      let h = Plan.horizon plan in
      let verdicts =
        List.map
          (fun r ->
            Tev.instant ~ts:h ~tid:r.rep_domain Tev.Monitor "chaos-verdict"
              [
                ("class", Tev.Str (Pc.cls_label r.rep_observed));
                ("expected", Tev.Str (Pc.cls_label r.rep_expected));
              ])
          reports
      in
      {
        o_plan = plan;
        o_reports = reports;
        o_ok = List.for_all report_ok reports;
        o_events = Plan.trace_events plan @ verdicts;
      })

let delta r f = f r.rep_last - f r.rep_first

let pp_report ppf r =
  Fmt.pf ppf
    "domain %d: %-22s expect %-11s observed %-11s %-8s d_ops %d, d_tryC %d, \
     d_commits %d, d_aborts %d%s"
    r.rep_domain
    (Plan.fault_label r.rep_fault)
    (Pc.cls_label r.rep_expected)
    (Pc.cls_label r.rep_observed)
    (if report_ok r then "ok" else "MISMATCH")
    (delta r (fun s -> s.ops))
    (delta r (fun s -> s.trycs))
    (delta r (fun s -> s.commits))
    (delta r (fun s -> s.aborts))
    (if r.rep_crashed then " [crashed]" else "")

let pp_table ppf o =
  Fmt.pf ppf "@[<v>chaos %s seed=%d domains=%d@," o.o_plan.Plan.scenario
    o.o_plan.Plan.seed o.o_plan.Plan.domains;
  List.iter (fun r -> Fmt.pf ppf "%a@," pp_report r) o.o_reports;
  Fmt.pf ppf "verdict: %s@]"
    (if o.o_ok then "ok (observed classes match the scenario)"
     else "MISMATCH (observed classes contradict the scenario)")

let to_json o =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Fmt.str "{\"scenario\":%S,\"seed\":%d,\"domains\":%d,\"ok\":%b,\"verdicts\":["
       o.o_plan.Plan.scenario o.o_plan.Plan.seed o.o_plan.Plan.domains o.o_ok);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Fmt.str
           "{\"domain\":%d,\"fault\":%S,\"expected\":%S,\"observed\":%S,\"ok\":%b,\"crashed\":%b,\"window_ops\":%d,\"window_trycs\":%d,\"window_commits\":%d,\"window_aborts\":%d}"
           r.rep_domain
           (Plan.fault_label r.rep_fault)
           (Pc.cls_label r.rep_expected)
           (Pc.cls_label r.rep_observed)
           (report_ok r) r.rep_crashed
           (delta r (fun s -> s.ops))
           (delta r (fun s -> s.trycs))
           (delta r (fun s -> s.commits))
           (delta r (fun s -> s.aborts))))
    o.o_reports;
  Buffer.add_string b "]}";
  Buffer.contents b
