module Stm = Tm_stm.Stm
module Pc = Tm_liveness.Process_class
module Emp = Tm_liveness.Empirical
module Tev = Tm_trace.Trace_event
module Tel = Tm_telemetry

type sample = { ops : int; trycs : int; commits : int; aborts : int }

(* Per-domain monotone counters live in a telemetry registry
   ([tm_chaos_*_total{domain=...}], single-writer so one shard each):
   the watchdog, the liveness gauge and any --telemetry export all read
   the same instruments instead of ad-hoc cells.  Aborts are derived:
   every transaction body start is an attempt, every [atomically] return
   a commit, and each attempt either commits or aborts. *)
type session = {
  ses_plan : Plan.t;
  ses_registry : Tel.Registry.t;
  ses_liveness : Tel.Liveness_gauge.t;
  ses_blame : Tel.Blame_graph.t option;
  ses_ops : Tel.Instrument.counter array;
  ses_attempts : Tel.Instrument.counter array;
  ses_trycs : Tel.Instrument.counter array;
  ses_commits : Tel.Instrument.counter array;
  ses_injected : Tel.Instrument.counter array;
  ses_crashed : Tel.Instrument.gauge array;
  ses_latency : Tel.Latency_recorder.t option;
}

let session_plan ses = ses.ses_plan
let session_registry ses = ses.ses_registry
let session_liveness ses = ses.ses_liveness
let session_blame ses = ses.ses_blame
let session_latency ses = ses.ses_latency

let session_crashed ses d =
  Tel.Instrument.gauge_value ses.ses_crashed.(d) = 1

let session_injected ses d = Tel.Instrument.value ses.ses_injected.(d)

let sample ses d =
  let v a = Tel.Instrument.value a.(d) in
  let attempts = v ses.ses_attempts in
  let commits = v ses.ses_commits in
  {
    ops = v ses.ses_ops;
    trycs = v ses.ses_trycs;
    commits;
    aborts = max 0 (attempts - commits);
  }

let samples ses = Array.init ses.ses_plan.Plan.domains (sample ses)

type report = {
  rep_domain : int;
  rep_fault : Plan.fault;
  rep_expected : Pc.cls;
  rep_observed : Pc.cls;
  rep_first : sample;
  rep_last : sample;
  rep_crashed : bool;
}

let report_ok r = Pc.equal_cls r.rep_observed r.rep_expected

type outcome = {
  o_plan : Plan.t;
  o_reports : report list;
  o_ok : bool;
  o_events : Tev.t list;
  o_blame : Tel.Blame_graph.t option;
}

(* The handler runs on every worker domain; its per-domain identity
   (which fault, which counters) travels in DLS, set by the worker
   before its first transaction.  Domains without a registered identity
   (the watchdog, unrelated code in the same process) see only
   [Proceed]. *)
type dstate = {
  ds_fault : Plan.fault;
  ds_ops : Tel.Instrument.counter;
  ds_injected : Tel.Instrument.counter;
}

let dls : dstate option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let handler point =
  match !(Domain.DLS.get dls) with
  | None -> Stm.Chaos.Proceed
  | Some st ->
      (* The domain's operation clock: one tick per interception-point
         firing, the coordinate system of every planned fault instant.
         The counter is single-writer (this domain), so read-then-incr
         is the old fetch_and_add. *)
      let n = Tel.Instrument.value st.ds_ops in
      Tel.Instrument.incr st.ds_ops;
      let action =
        match st.ds_fault with
        | Plan.Healthy | Plan.Parasitic _ -> Stm.Chaos.Proceed
        | Plan.Crash { at_op; holding_locks } ->
            let trigger =
              if holding_locks then point = Stm.Chaos.Pre_commit
              else point = Stm.Chaos.Read
            in
            if trigger && n >= at_op then Stm.Chaos.Crash
            else Stm.Chaos.Proceed
        | Plan.Stall { period; spins } ->
            if n mod period = 0 then Stm.Chaos.Stall spins
            else Stm.Chaos.Proceed
        | Plan.Abort_storm { from_op; until_op } ->
            if point = Stm.Chaos.Read && n >= from_op && n < until_op then
              Stm.Chaos.Abort
            else Stm.Chaos.Proceed
      in
      (match action with
      | Stm.Chaos.Proceed -> ()
      | Stm.Chaos.Abort | Stm.Chaos.Stall _ | Stm.Chaos.Crash ->
          Tel.Instrument.incr st.ds_injected);
      action

(* The fault dispatch is reusable by any harness that drives real
   domains against an [Stm.Chaos]-instrumented core (tm_serve's chaos
   serving sessions): bind the domain's fault and counters in DLS, then
   install [fault_handler]. *)
let fault_handler = handler

let bind_fault fault ~ops ~injected =
  Domain.DLS.get dls :=
    Some { ds_fault = fault; ds_ops = ops; ds_injected = injected }

let unbind_fault () = Domain.DLS.get dls := None

exception Stop_worker

(* Worker transactions all write t-variable 0 (plus one other), so every
   pair of domains conflicts: a crashed lock holder necessarily strands
   the whole peer set.  A parasitic turn spins forever on [mine], a
   t-variable nobody writes — active forever, never conflicting, never
   reaching tryC.

   Where the parasitic takeover happens is core-dependent.  Under the
   non-blocking cores it is a fresh transaction whose read set is only
   [mine]: reads never block, so the first attempt succeeds and stays
   active forever — and the read set *must* stay private, because
   DSTM's per-read read-set revalidation and NOrec's value checks would
   abort a parasite that had read a shared t-variable some peer keeps
   writing.  Under the global-lock serializer that fresh transaction
   would instead have to win an unfair spinlock from a cold start
   against hot committers, with the facade's backoff growing on every
   failure — a race it can lose for whole observation windows.  There
   the takeover happens *inside* a winning transaction: the worker runs
   its normal body and, once past the onset, simply never reaches tryC
   — it already holds the serializer, stranding every peer
   deterministically (prior reads in the set are harmless: the
   serializer validates nothing). *)
let worker ~stop ~shared ~mine ~algo ~fault ~parasite_gate ~ops ~injected
    ~attempts ~trycs ~commits ~crashed ~lat d () =
  bind_fault fault ~ops ~injected;
  (* Open-loop latency: mark before the transaction, complete after.  A
     body that dies on [Stm.Chaos.Crashed] leaves its mark in place on
     purpose — the dead domain's in-flight age is the censored sample
     the recorder's open-loop quantiles keep folding in. *)
  let mark () =
    let sched = Tel.Latency_recorder.now_ns () in
    Option.iter (fun r -> Tel.Latency_recorder.mark r d ~sched) lat;
    sched
  in
  let complete sched =
    Option.iter
      (fun r ->
        Tel.Latency_recorder.complete r d ~start:sched
          ~finish:(Tel.Latency_recorder.now_ns ()))
      lat
  in
  (* Blame identity: plan slot, not raw Domain.self — unconditional
     (one DLS write per worker lifetime, nothing on the hot path). *)
  Stm.Blame.set_self d;
  let st = ref (d + 1) in
  let n = Array.length shared in
  let parasitic_from =
    match fault with Plan.Parasitic { from_op } -> Some from_op | _ -> None
  in
  let parasitic_now () =
    match parasitic_from with
    | Some from -> parasite_gate () && Tel.Instrument.value ops >= from
    | None -> false
  in
  let parasite_spin () =
    while true do
      ignore (Stm.read mine);
      if Atomic.get stop then raise Stop_worker;
      Domain.cpu_relax ()
    done
  in
  let in_body_takeover = algo = Stm.Algo.Global_lock in
  (try
     while not (Atomic.get stop) do
       if (not in_body_takeover) && parasitic_now () then begin
         ignore (mark ());
         Stm.atomically (fun () ->
             Tel.Instrument.incr attempts;
             parasite_spin ())
       end
       else begin
         let r = !st * 48271 mod 0x7FFFFFFF in
         st := r;
         let other = 1 + (r mod (n - 1)) in
         let sched = mark () in
         Stm.atomically (fun () ->
             (* Re-run on every attempt: a permanently starving domain
                still gets to observe the stop flag. *)
             if Atomic.get stop then raise Stop_worker;
             Tel.Instrument.incr attempts;
             let v0 = Stm.read shared.(0) in
             let vo = Stm.read shared.(other) in
             if in_body_takeover && parasitic_now () then parasite_spin ();
             Stm.write shared.(0) (v0 + 1);
             Stm.write shared.(other) (vo + 1);
             Tel.Instrument.incr trycs);
         Tel.Instrument.incr commits;
         complete sched
       end
     done
   with
  | Stop_worker -> ()
  | Stm.Chaos.Crashed -> Tel.Instrument.set_gauge crashed 1);
  Stm.Blame.set_self (-1);
  unbind_fault ()

let counters_of (s : sample) =
  Emp.counters ~ops:s.ops ~trycs:s.trycs ~commits:s.commits ~aborts:s.aborts

let with_session ?(tvars = 4) ?(blame = false) ?(latency = false) ?registry
    (plan : Plan.t) f =
  let nd = plan.Plan.domains in
  let reg =
    match registry with Some r -> r | None -> Tel.Registry.create ()
  in
  let per name help =
    Array.init nd (fun d ->
        Tel.Registry.counter reg ~shards:1
          ~labels:[ ("domain", string_of_int d) ]
          ~help name)
  in
  let ops =
    per "tm_chaos_ops_total"
      "Interception-point firings (the domain's operation clock)"
  in
  let attempts = per "tm_chaos_attempts_total" "Transaction attempts started" in
  let trycs =
    per "tm_chaos_trycs_total" "Transaction bodies that reached tryC"
  in
  let commits = per "tm_chaos_commits_total" "Transactions committed" in
  let injected =
    per "tm_chaos_injected_total" "Faults injected (non-Proceed actions)"
  in
  let crashed =
    Array.init nd (fun d ->
        Tel.Registry.gauge reg
          ~labels:[ ("domain", string_of_int d) ]
          ~help:"1 after the worker died on Stm.Chaos.Crashed"
          "tm_chaos_crashed")
  in
  let sources =
    Array.init nd (fun d ->
        Tel.Liveness_gauge.source
          ~ops:(fun () -> Tel.Instrument.value ops.(d))
          ~trycs:(fun () -> Tel.Instrument.value trycs.(d))
          ~commits:(fun () -> Tel.Instrument.value commits.(d))
          ~aborts:(fun () ->
            max 0
              (Tel.Instrument.value attempts.(d)
              - Tel.Instrument.value commits.(d))))
  in
  let liveness = Tel.Liveness_gauge.create reg ~sources in
  let blame_graph =
    if blame then Some (Tel.Blame_graph.create reg ~domains:nd) else None
  in
  (* Workers are unthrottled, so the coordinated-omission interval is
     the transaction time scale, not a wall-clock arrival rate. *)
  let lat =
    if latency then
      Some
        (Tel.Latency_recorder.create ~registry:reg ~metric:"tm_chaos_lat"
           ~interval_ns:50_000 ~domains:nd ())
    else None
  in
  let ses =
    {
      ses_plan = plan;
      ses_registry = reg;
      ses_liveness = liveness;
      ses_blame = blame_graph;
      ses_ops = ops;
      ses_attempts = attempts;
      ses_trycs = trycs;
      ses_commits = commits;
      ses_injected = injected;
      ses_crashed = crashed;
      ses_latency = lat;
    }
  in
  (* Select the plan's core before creating the t-variables (a
     t-variable belongs to the algorithm that uses it) and restore the
     previous selection only after the workers are joined. *)
  let prev_algo = Stm.algo () in
  Stm.set_algo plan.Plan.algo;
  let shared = Array.init (max 2 tvars) (fun _ -> Stm.tvar 0) in
  let priv = Array.init nd (fun _ -> Stm.tvar 0) in
  let stop = Atomic.make false in
  (* In scenarios that combine a crasher with a parasite, the parasite's
     onset waits for the crash to have landed: the expectations read the
     faults as a causal sequence (crash first, then a parasite appears
     in the wreckage), and per-domain op clocks cannot order the onsets
     — under the serializer the eventual winner's clock outruns a
     starving peer's arbitrarily.  With no crasher in the plan the gate
     is always open. *)
  let parasite_gate =
    match
      Array.to_list plan.Plan.faults
      |> List.mapi (fun d f -> (d, f))
      |> List.find_map (fun (d, f) ->
             match f with Plan.Crash _ -> Some d | _ -> None)
    with
    | None -> fun () -> true
    | Some cd -> fun () -> Tel.Instrument.gauge_value crashed.(cd) = 1
  in
  Stm.Chaos.install handler;
  Option.iter
    (fun g -> Stm.Blame.install (Tel.Blame_graph.sink_of g))
    blame_graph;
  Fun.protect
    ~finally:(fun () ->
      Stm.Chaos.uninstall ();
      if blame then Stm.Blame.uninstall ();
      (* Workers are joined by now: release core-global locks stranded
         by crashed domains (the serializer, the sequence lock), so a
         crash run cannot starve every later run of the same core in
         this process.  Must happen while the plan's core is still the
         selected one. *)
      Stm.recover ();
      Stm.set_algo prev_algo)
    (fun () ->
      let ds =
        List.init nd (fun d ->
            Domain.spawn
              (worker ~stop ~shared ~mine:priv.(d) ~algo:plan.Plan.algo
                 ~fault:plan.Plan.faults.(d) ~parasite_gate ~ops:ops.(d)
                 ~injected:injected.(d) ~attempts:attempts.(d)
                 ~trycs:trycs.(d) ~commits:commits.(d) ~crashed:crashed.(d)
                 ~lat d))
      in
      let finish () =
        Atomic.set stop true;
        List.iter Domain.join ds
      in
      match f ses with
      | v ->
          finish ();
          v
      | exception e ->
          finish ();
          raise e)

let run ?tvars ?blame ?latency ?(warmup = 0.05) ?(window = 0.15) ?registry
    ?on_sample (plan : Plan.t) =
  let nd = plan.Plan.domains in
  let scrape ses ts =
    match on_sample with
    | Some f ->
        Option.iter Tel.Blame_graph.refresh ses.ses_blame;
        Option.iter
          (fun r ->
            Tel.Latency_recorder.publish r
              ~now:(Tel.Latency_recorder.now_ns ()))
          ses.ses_latency;
        f (Tel.Registry.scrape ses.ses_registry ~ts)
    | None -> ()
  in
  let first, last, ses =
    with_session ?tvars ?blame ?latency ?registry plan (fun ses ->
        Unix.sleepf warmup;
        let first = samples ses in
        (* Baseline the liveness gauge on the exact watchdog samples so
           the exported classes equal the verdicts below. *)
        Tel.Liveness_gauge.rebase_with ses.ses_liveness
          (Array.map counters_of first);
        scrape ses 0;
        Unix.sleepf window;
        let last = samples ses in
        ignore
          (Tel.Liveness_gauge.update_with ses.ses_liveness
             (Array.map counters_of last));
        scrape ses 1;
        (first, last, ses))
  in
  (* [with_session] has joined the workers, so the crashed gauges are
     final. *)
  let reports =
    List.init nd (fun d ->
        {
          rep_domain = d;
          rep_fault = plan.Plan.faults.(d);
          rep_expected = plan.Plan.expected.(d);
          rep_observed =
            Emp.classify_counters ~first:(counters_of first.(d))
              ~last:(counters_of last.(d));
          rep_first = first.(d);
          rep_last = last.(d);
          rep_crashed = Tel.Instrument.gauge_value ses.ses_crashed.(d) = 1;
        })
  in
  let h = Plan.horizon plan in
  let verdicts =
    List.map
      (fun r ->
        Tev.instant ~ts:h ~tid:r.rep_domain Tev.Monitor "chaos-verdict"
          [
            ("class", Tev.Str (Pc.cls_label r.rep_observed));
            ("expected", Tev.Str (Pc.cls_label r.rep_expected));
            ("algo", Tev.Str (Stm.Algo.name plan.Plan.algo));
          ])
      reports
  in
  (* With blame armed, the trace additionally carries the graph's
     stable classification — one evidence instant per domain, each
     repeating the graph-level shape so the analysis rule needs no
     cross-event join.  Like the verdicts (and unlike raw edge
     weights), these are the empirically stable reduction the CI
     byte-determinism gate compares. *)
  let blame_events =
    match ses.ses_blame with
    | None -> []
    | Some g ->
        Tel.Blame_graph.refresh g;
        let classes =
          Array.of_list (List.map (fun r -> r.rep_observed) reports)
        in
        let shape, evidence = Tel.Blame_graph.classify g ~classes in
        List.init nd (fun d ->
            Tev.instant ~ts:h ~tid:d Tev.Monitor "blame-evidence"
              [
                ( "evidence",
                  Tev.Str (Tel.Blame_graph.evidence_label evidence.(d)) );
                ("shape", Tev.Str (Tel.Blame_graph.shape_label shape));
                ("algo", Tev.Str (Stm.Algo.name plan.Plan.algo));
              ])
  in
  {
    o_plan = plan;
    o_reports = reports;
    o_ok = List.for_all report_ok reports;
    o_events = Plan.trace_events plan @ verdicts @ blame_events;
    o_blame = ses.ses_blame;
  }

let delta r f = f r.rep_last - f r.rep_first

let pp_report ppf r =
  Fmt.pf ppf
    "domain %d: %-22s expect %-11s observed %-11s %-8s d_ops %d, d_tryC %d, \
     d_commits %d, d_aborts %d%s"
    r.rep_domain
    (Plan.fault_label r.rep_fault)
    (Pc.cls_label r.rep_expected)
    (Pc.cls_label r.rep_observed)
    (if report_ok r then "ok" else "MISMATCH")
    (delta r (fun s -> s.ops))
    (delta r (fun s -> s.trycs))
    (delta r (fun s -> s.commits))
    (delta r (fun s -> s.aborts))
    (if r.rep_crashed then " [crashed]" else "")

let pp_table ppf o =
  Fmt.pf ppf "@[<v>chaos %s algo=%s seed=%d domains=%d@,"
    o.o_plan.Plan.scenario
    (Stm.Algo.name o.o_plan.Plan.algo)
    o.o_plan.Plan.seed o.o_plan.Plan.domains;
  List.iter (fun r -> Fmt.pf ppf "%a@," pp_report r) o.o_reports;
  Fmt.pf ppf "verdict: %s@]"
    (if o.o_ok then "ok (observed classes match the scenario)"
     else "MISMATCH (observed classes contradict the scenario)")

let to_json o =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Fmt.str
       "{\"scenario\":%S,\"algo\":%S,\"seed\":%d,\"domains\":%d,\"ok\":%b,\"verdicts\":["
       o.o_plan.Plan.scenario
       (Stm.Algo.name o.o_plan.Plan.algo)
       o.o_plan.Plan.seed o.o_plan.Plan.domains o.o_ok);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Fmt.str
           "{\"domain\":%d,\"fault\":%S,\"expected\":%S,\"observed\":%S,\"ok\":%b,\"crashed\":%b,\"window_ops\":%d,\"window_trycs\":%d,\"window_commits\":%d,\"window_aborts\":%d}"
           r.rep_domain
           (Plan.fault_label r.rep_fault)
           (Pc.cls_label r.rep_expected)
           (Pc.cls_label r.rep_observed)
           (report_ok r) r.rep_crashed
           (delta r (fun s -> s.ops))
           (delta r (fun s -> s.trycs))
           (delta r (fun s -> s.commits))
           (delta r (fun s -> s.aborts))))
    o.o_reports;
  Buffer.add_string b "]}";
  Buffer.contents b
