open Tm_history
module PC = Tm_liveness.Process_class

let err ~subject ~rule ?location msg =
  Finding.v ~rule ~severity:Finding.Error ~subject ?location msg

(* Well-formedness scan.  Unlike [History.well_formed], which stops at the
   first offence, this reports every offending event, repairing the
   per-process state best-effort so later offences are still seen. *)
let wf_findings ~subject events =
  let pending : (Event.proc, Event.invocation) Hashtbl.t = Hashtbl.create 8 in
  let findings = ref [] in
  let add f = findings := f :: !findings in
  List.iteri
    (fun i e ->
      match e with
      | Event.Inv (p, inv) ->
          (match Hashtbl.find_opt pending p with
          | Some prev ->
              add
                (err ~subject ~rule:"wf-alternation"
                   ~location:(Finding.At_event i)
                   (Fmt.str
                      "process %d issued %a while %a was still pending" p
                      Event.pp_invocation inv Event.pp_invocation prev))
          | None -> ());
          Hashtbl.replace pending p inv
      | Event.Res (p, r) -> (
          match Hashtbl.find_opt pending p with
          | None ->
              add
                (err ~subject ~rule:"wf-orphan-response"
                   ~location:(Finding.At_event i)
                   (Fmt.str "process %d received %a with no pending invocation"
                      p Event.pp_response r))
          | Some inv ->
              Hashtbl.remove pending p;
              if not (Event.matches inv r) then
                add
                  (err ~subject ~rule:"wf-response-match"
                     ~location:(Finding.At_event i)
                     (Fmt.str "response %a does not match invocation %a"
                        Event.pp_response r Event.pp_invocation inv))))
    events;
  List.rev !findings

let check_transactions ~subject txns =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  (* Unique identifiers: no two transactions may share (proc, seq). *)
  let seen : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (t : Transaction.t) ->
      let id = (t.Transaction.proc, t.Transaction.seq) in
      if Hashtbl.mem seen id then
        add
          (err ~subject ~rule:"txn-unique-id"
             ~location:(Finding.At_proc t.Transaction.proc)
             (Fmt.str "duplicate transaction identifier %s"
                (Transaction.label t)))
      else Hashtbl.add seen id ())
    txns;
  (* Interval consistency: per process, transactions are disjoint and in
     program order; every interval runs forward. *)
  let by_proc : (int, Transaction.t list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (t : Transaction.t) ->
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt by_proc t.Transaction.proc)
      in
      Hashtbl.replace by_proc t.Transaction.proc (t :: prev))
    txns;
  Hashtbl.iter
    (fun p ts ->
      let ts =
        List.sort
          (fun (a : Transaction.t) b ->
            Int.compare a.Transaction.seq b.Transaction.seq)
          ts
      in
      List.iter
        (fun (t : Transaction.t) ->
          if t.Transaction.first_pos > t.Transaction.last_pos then
            add
              (err ~subject ~rule:"txn-interval"
                 ~location:(Finding.At_event t.Transaction.first_pos)
                 (Fmt.str "transaction %s interval runs backwards (%d > %d)"
                    (Transaction.label t) t.Transaction.first_pos
                    t.Transaction.last_pos)))
        ts;
      ignore
        (List.fold_left
           (fun prev (t : Transaction.t) ->
             (match prev with
             | Some (pt : Transaction.t)
               when t.Transaction.first_pos <= pt.Transaction.last_pos ->
                 add
                   (err ~subject ~rule:"txn-interval"
                      ~location:(Finding.At_event t.Transaction.first_pos)
                      (Fmt.str
                         "transactions %s and %s of process %d overlap \
                          ([%d,%d] vs [%d,%d])"
                         (Transaction.label pt) (Transaction.label t) p
                         pt.Transaction.first_pos pt.Transaction.last_pos
                         t.Transaction.first_pos t.Transaction.last_pos))
             | _ -> ());
             Some t)
           None ts))
    by_proc;
  List.sort Finding.compare !findings

let lint_history ~subject h =
  let wf = wf_findings ~subject (History.events h) in
  if wf <> [] then wf
  else check_transactions ~subject (Transaction.of_history h)

(* --- lasso diagnostics --- *)

let class_invariant ~subject l =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  List.iter
    (fun (s : PC.summary) ->
      let p = s.PC.proc in
      let bad msg =
        add
          (err ~subject ~rule:"live-class-invariant"
             ~location:(Finding.At_proc p) msg)
      in
      if s.PC.crashed && s.PC.correct then
        bad (Fmt.str "process %d is both crashed and correct" p);
      if s.PC.parasitic && s.PC.correct then
        bad (Fmt.str "process %d is both parasitic and correct" p);
      if s.PC.crashed && s.PC.parasitic then
        bad (Fmt.str "process %d is both crashed and parasitic" p);
      if s.PC.starving && not (s.PC.correct && s.PC.pending) then
        bad (Fmt.str "process %d starves but is not correct-and-pending" p);
      if s.PC.progresses && not (s.PC.correct && not s.PC.pending) then
        bad (Fmt.str "process %d progresses but is not correct-and-committing" p);
      if s.PC.correct = (s.PC.crashed || s.PC.parasitic) then
        bad (Fmt.str "process %d: correct flag contradicts fault flags" p);
      (* The flattened class must match the flags it was derived from. *)
      let c = PC.cls l p in
      let flag_of_cls =
        match c with
        | PC.Crashed -> s.PC.crashed
        | PC.Parasitic -> s.PC.parasitic
        | PC.Starving -> s.PC.starving
        | PC.Progressing -> s.PC.progresses
      in
      if not flag_of_cls then
        bad
          (Fmt.str "process %d classified %s but the flag is unset" p
             (PC.cls_label c)))
    (PC.classify l);
  List.rev !findings

let class_mismatch ~subject l claimed =
  List.filter_map
    (fun (p, claimed_cls) ->
      let actual = PC.cls l p in
      if PC.equal_cls actual claimed_cls then None
      else
        Some
          (err ~subject ~rule:"live-class-mismatch"
             ~location:(Finding.At_proc p)
             (Fmt.str "process %d claimed %s but recomputes as %s" p
                (PC.cls_label claimed_cls) (PC.cls_label actual))))
    claimed

let verdict_mismatch ~subject l (claimed : Tm_liveness.Property.verdict) =
  let actual = Tm_liveness.Property.verdict l in
  let check name c a =
    if c = a then None
    else
      Some
        (err ~subject ~rule:"live-verdict-mismatch"
           (Fmt.str "%s claimed %b but recomputes as %b" name c a))
  in
  List.filter_map Fun.id
    [
      check "local progress" claimed.Tm_liveness.Property.local
        actual.Tm_liveness.Property.local;
      check "global progress" claimed.Tm_liveness.Property.global
        actual.Tm_liveness.Property.global;
      check "solo progress" claimed.Tm_liveness.Property.solo
        actual.Tm_liveness.Property.solo;
      check "nonblocking respect" claimed.Tm_liveness.Property.nonblocking_ok
        actual.Tm_liveness.Property.nonblocking_ok;
      check "biprogressing respect"
        claimed.Tm_liveness.Property.biprogressing_ok
        actual.Tm_liveness.Property.biprogressing_ok;
    ]

let lint_lasso ?(claimed_classes = []) ?claimed_verdict ~subject l =
  let wf =
    List.map
      (fun (f : Finding.t) -> { f with Finding.rule = "lasso-wf" })
      (wf_findings ~subject (History.events (Lasso.unroll l 2)))
  in
  wf
  @ class_invariant ~subject l
  @ class_mismatch ~subject l claimed_classes
  @
  match claimed_verdict with
  | None -> []
  | Some v -> verdict_mismatch ~subject l v
