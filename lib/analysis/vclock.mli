(** Vector clocks over integer-identified threads (domains, tids).

    The race checker tracks one clock per thread lane of a trace plus one
    "last release" clock per lock; a happens-before edge is created from a
    lock release to every later acquisition of the same lock.  Two events
    are {e concurrent} when neither clock is below the other — a pair of
    concurrent conflicting accesses is a race.

    Clocks are immutable sparse maps from thread id to event count;
    threads absent from the map are at 0. *)

type t

val zero : t

val get : t -> int -> int
(** Component for a thread (0 if absent). *)

val tick : t -> int -> t
(** [tick c tid] increments [tid]'s component. *)

val join : t -> t -> t
(** Pointwise maximum. *)

val leq : t -> t -> bool
(** [leq a b] holds iff [a] ≤ [b] pointwise: everything [a] has seen,
    [b] has seen too ([a] happens-before-or-equals [b]). *)

val concurrent : t -> t -> bool
(** Neither [leq a b] nor [leq b a]. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** [{1:3, 2:7}]. *)
