(** Trace analyzers: race, lock-order and commit-protocol lints over
    {!Tm_trace} event streams.

    The analyzers consume the lock/commit vocabulary the [Stm] runtime
    emits (category {!Tm_trace.Trace_event.Lock}: ["acquire"],
    ["release"], ["busy"]; category [Txn]: ["attempt"] spans and
    ["publish"] instants) and understand the TL2 commit protocol: acquire
    every write-set lock in canonical order, validate, publish (which
    releases), and never touch a lock after publishing began.  Traces
    without lock events (e.g. simulator step traces) produce no findings.

    {b Rules:}
    - [lock-overlap]: a lock was acquired while another holder had it —
      mutual exclusion broken (the trace-level data race on the lock
      word);
    - [unlock-without-lock]: a release by a domain that does not hold the
      lock;
    - [publish-without-lock]: a publish to a t-variable whose lock the
      publishing domain does not hold;
    - [acquire-after-publish]: a commit acquired a lock after it had
      started publishing — the lock → validate → publish ordering broken;
    - [lock-leak]: a transaction attempt ended with locks still held
      (error), or the trace ended with held locks (warning — the trace
      may have been stopped mid-commit);
    - [lock-order-cycle]: the acquired-while-holding graph over
      t-variables has a cycle — a potential deadlock under a different
      interleaving;
    - [hb-race]: two publishes to the same t-variable are concurrent
      under the vector-clock happens-before order induced by lock
      release → acquire edges.  Optimistic reads are deliberately outside
      this rule: TL2 reads race by design and are policed by validation,
      so only commit-time writes must be totally ordered per variable;
    - [chaos-class]: in chaos traces (see [Tm_chaos]), the injected
      fault schedule ([Fault] instants [chaos-crash] /
      [chaos-parasitic]) must agree with the empirical verdict instants
      ([Monitor] / [chaos-verdict]): every injected crash classified
      crashed, every parasitic turn parasitic, and no crashed/parasitic
      verdict without a matching injected fault.  Lanes without verdict
      events are exempt;
    - [blame]: in blame-armed chaos traces, the per-domain
      attribution evidence ([Monitor] / [blame-evidence], from
      [Tm_telemetry.Blame_graph.classify]) must cohere with the
      verdicts: crashed/parasitic/progressing evidence and the
      same-named verdicts imply each other, and a starving domain may
      not pin its [starved-by:*] blame on a fault-free progressing
      domain.  Lanes without blame-evidence events are exempt.

    Events are analyzed in logical-timestamp order; the caller is
    responsible for handing over a {e complete} trace (ring-buffer
    truncation can fabricate protocol violations — check
    [Stm.Trace.dropped] first). *)

val lint_trace :
  subject:string -> Tm_trace.Trace_event.t list -> Finding.t list

val lock_order_edges : Tm_trace.Trace_event.t list -> (int * int) list
(** The acquired-while-holding edges (held t-variable, newly acquired
    t-variable), deduplicated, in first-occurrence order — the lock-order
    graph the cycle rule runs on.  Exposed for tests and reporting. *)
