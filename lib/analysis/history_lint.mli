open Tm_history

(** History lints: static well-formedness and liveness-taxonomy checks
    over the paper's artifacts.

    {b Rules on finite histories} ({!lint_history}):
    - [wf-alternation]: a process issued an invocation while its previous
      invocation was still pending (Section 2.2 alternation broken);
    - [wf-orphan-response]: a response event with no pending invocation;
    - [wf-response-match]: a response whose kind does not match the
      pending invocation (a read answered by [ok], a write answered by a
      value, ...);
    - [txn-unique-id]: two extracted transactions share an identifier
      (process, per-process sequence number);
    - [txn-interval]: transaction intervals of one process overlap, run
      backwards, or escape the history bounds.

    The [txn-*] rules run only when the [wf-*] rules found nothing:
    transaction extraction assumes well-formedness.

    {b Rules on lassos} ({!lint_lasso}):
    - [lasso-wf]: a finite unrolling of the lasso fails the [wf-*] rules
      (defense in depth — {!Lasso.v} already enforces this);
    - [live-class-invariant]: the recomputed Figure-2 taxonomy is
      internally inconsistent (e.g. a process both crashed and correct) —
      a sanitizer over {!Tm_liveness.Process_class} itself;
    - [live-class-mismatch]: a claimed per-process class disagrees with
      the recomputed {!Tm_liveness.Process_class.cls};
    - [live-verdict-mismatch]: a claimed TM-liveness verdict disagrees
      with the recomputed {!Tm_liveness.Property.verdict}. *)

val lint_history : subject:string -> History.t -> Finding.t list
(** All [wf-*] and [txn-*] findings of a finite history, in event order. *)

val check_transactions :
  subject:string -> Transaction.t list -> Finding.t list
(** The [txn-*] rules on an explicit transaction list (exposed so seeded
    violations can be tested without forging an ill-formed history). *)

val lint_lasso :
  ?claimed_classes:(Event.proc * Tm_liveness.Process_class.cls) list ->
  ?claimed_verdict:Tm_liveness.Property.verdict ->
  subject:string ->
  Lasso.t ->
  Finding.t list
(** Taxonomy diagnostics of a lasso.  [claimed_classes] and
    [claimed_verdict] are what some external artifact (a paper figure's
    caption, a cached experiment result) asserts; each disagreement with
    the recomputed classification yields a finding. *)
