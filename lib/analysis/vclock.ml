module IMap = Map.Make (Int)

type t = int IMap.t

let zero = IMap.empty

let get c tid = match IMap.find_opt tid c with Some v -> v | None -> 0

let tick c tid = IMap.add tid (get c tid + 1) c

let join a b =
  IMap.union (fun _ va vb -> Some (if va >= vb then va else vb)) a b

(* [a <= b] pointwise: every component of [a] is covered by [b].  Absent
   components are 0, so only [a]'s bindings need checking. *)
let leq a b = IMap.for_all (fun tid v -> v <= get b tid) a

let concurrent a b = (not (leq a b)) && not (leq b a)

let equal a b = leq a b && leq b a

let pp ppf c =
  let bindings = IMap.bindings c in
  Fmt.pf ppf "{%a}"
    (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (tid, v) ->
         Fmt.pf ppf "%d:%d" tid v))
    bindings
