module Tev = Tm_trace.Trace_event
module IMap = Map.Make (Int)

let err ~subject ~rule ?location msg =
  Finding.v ~rule ~severity:Finding.Error ~subject ?location msg

let warn ~subject ~rule ?location msg =
  Finding.v ~rule ~severity:Finding.Warning ~subject ?location msg

(* Per-domain commit-attempt state.  The Stm emits all events of one
   attempt from one domain, so per-tid state is sequential even though
   the merged trace interleaves domains. *)
type attempt = {
  mutable held : int list;  (** t-variables locked by this domain, newest first *)
  mutable published : bool;  (** the publish phase has begun *)
}

let fresh_attempt () = { held = []; published = false }

type state = {
  mutable holders : int IMap.t;  (** tvar -> tid currently holding its lock *)
  attempts : (int, attempt) Hashtbl.t;  (** tid -> in-flight attempt state *)
  mutable clocks : Vclock.t IMap.t;  (** tid -> vector clock *)
  mutable release_clock : Vclock.t IMap.t;  (** tvar -> clock at last release *)
  mutable last_publish : (int * Vclock.t) IMap.t;
      (** tvar -> (tid, clock) of the latest publish *)
  mutable edges : ((int * int) * (int * int)) list;
      (** lock-order edges (held, acquired) with a sample (ts, tid), newest
          first *)
  mutable findings : Finding.t list;  (** newest first *)
}

let initial () =
  {
    holders = IMap.empty;
    attempts = Hashtbl.create 8;
    clocks = IMap.empty;
    release_clock = IMap.empty;
    last_publish = IMap.empty;
    edges = [];
    findings = [];
  }

let attempt_of st tid =
  match Hashtbl.find_opt st.attempts tid with
  | Some a -> a
  | None ->
      let a = fresh_attempt () in
      Hashtbl.add st.attempts tid a;
      a

let clock_of st tid =
  match IMap.find_opt tid st.clocks with Some c -> c | None -> Vclock.zero

let set_clock st tid c = st.clocks <- IMap.add tid c st.clocks

let add_finding st f = st.findings <- f :: st.findings

let on_acquire ~subject st (e : Tev.t) x =
  let tid = e.Tev.tid in
  let a = attempt_of st tid in
  (match IMap.find_opt x st.holders with
  | Some holder ->
      add_finding st
        (err ~subject ~rule:"lock-overlap"
           ~location:(Finding.At_ts (e.Tev.ts, tid))
           (Fmt.str
              "domain %d acquired the lock of tvar %d while domain %d held it"
              tid x holder))
  | None -> ());
  if a.published then
    add_finding st
      (err ~subject ~rule:"acquire-after-publish"
         ~location:(Finding.At_ts (e.Tev.ts, tid))
         (Fmt.str
            "domain %d acquired the lock of tvar %d after starting to publish"
            tid x));
  (* Lock-order edges: x is acquired while every lock in [held] is held. *)
  List.iter
    (fun h ->
      if
        h <> x
        && not (List.exists (fun (edge, _) -> edge = (h, x)) st.edges)
      then st.edges <- ((h, x), (e.Tev.ts, tid)) :: st.edges)
    a.held;
  a.held <- x :: a.held;
  st.holders <- IMap.add x tid st.holders;
  (* Happens-before: everything the previous holder did before releasing
     is now ordered before this domain's subsequent events. *)
  let c = clock_of st tid in
  let c =
    match IMap.find_opt x st.release_clock with
    | Some rc -> Vclock.join c rc
    | None -> c
  in
  set_clock st tid (Vclock.tick c tid)

let on_release ~subject st (e : Tev.t) x =
  let tid = e.Tev.tid in
  let a = attempt_of st tid in
  if not (List.mem x a.held) then
    add_finding st
      (err ~subject ~rule:"unlock-without-lock"
         ~location:(Finding.At_ts (e.Tev.ts, tid))
         (Fmt.str "domain %d released the lock of tvar %d without holding it"
            tid x))
  else begin
    a.held <- List.filter (fun h -> h <> x) a.held;
    st.holders <- IMap.remove x st.holders;
    let c = clock_of st tid in
    st.release_clock <- IMap.add x c st.release_clock;
    set_clock st tid (Vclock.tick c tid)
  end

let on_publish ~subject st (e : Tev.t) x =
  let tid = e.Tev.tid in
  let a = attempt_of st tid in
  a.published <- true;
  if not (List.mem x a.held) then
    add_finding st
      (err ~subject ~rule:"publish-without-lock"
         ~location:(Finding.At_ts (e.Tev.ts, tid))
         (Fmt.str "domain %d published tvar %d without holding its lock" tid x));
  let c = clock_of st tid in
  (match IMap.find_opt x st.last_publish with
  | Some (prev_tid, prev_c)
    when prev_tid <> tid && not (Vclock.leq prev_c c) ->
      add_finding st
        (err ~subject ~rule:"hb-race"
           ~location:(Finding.At_ts (e.Tev.ts, tid))
           (Fmt.str
              "concurrent publishes to tvar %d: domain %d's publish is not \
               ordered after domain %d's"
              x tid prev_tid))
  | _ -> ());
  st.last_publish <- IMap.add x (tid, c) st.last_publish;
  set_clock st tid (Vclock.tick c tid)

let on_attempt_end ~subject st (e : Tev.t) =
  let tid = e.Tev.tid in
  let a = attempt_of st tid in
  if a.held <> [] then begin
    add_finding st
      (err ~subject ~rule:"lock-leak"
         ~location:(Finding.At_ts (e.Tev.ts, tid))
         (Fmt.str "domain %d ended a commit attempt still holding tvar(s) %s"
            tid
            (String.concat ", "
               (List.map string_of_int (List.rev a.held)))));
    (* Repair: drop the stale holds so one leak does not cascade into
       overlap findings for every later acquire. *)
    List.iter
      (fun x ->
        match IMap.find_opt x st.holders with
        | Some holder when holder = tid ->
            st.holders <- IMap.remove x st.holders
        | _ -> ())
      a.held
  end;
  Hashtbl.replace st.attempts tid (fresh_attempt ())

(* Cycle detection over the lock-order graph: a DFS back edge to a "gray"
   node closes a cycle.  One finding per distinct cycle node set. *)
let cycle_findings ~subject st =
  let edges = List.rev_map fst st.edges in
  let succ x =
    List.filter_map (fun (a, b) -> if a = x then Some b else None) edges
  in
  let nodes =
    List.sort_uniq Int.compare (List.concat_map (fun (a, b) -> [ a; b ]) edges)
  in
  let color : (int, [ `Gray | `Black ]) Hashtbl.t = Hashtbl.create 16 in
  let reported = ref [] in
  let report cyc =
    let key = List.sort Int.compare cyc in
    if not (List.mem key !reported) then begin
      reported := key :: !reported;
      let sample =
        List.find_opt
          (fun ((a, b), _) -> List.mem a cyc && List.mem b cyc)
          (List.rev st.edges)
      in
      let location =
        match sample with
        | Some (_, (ts, tid)) -> Some (Finding.At_ts (ts, tid))
        | None -> None
      in
      add_finding st
        (err ~subject ~rule:"lock-order-cycle" ?location
           (Fmt.str "lock-order cycle over tvars %s"
              (String.concat " -> "
                 (List.map string_of_int (cyc @ [ List.hd cyc ])))))
    end
  in
  (* [stack] is the current DFS path, newest first. *)
  let rec dfs stack x =
    match Hashtbl.find_opt color x with
    | Some `Black -> ()
    | Some `Gray ->
        (* Back edge: the cycle is [x] plus the path back down to [x]. *)
        let rec upto = function
          | [] -> []
          | y :: rest -> if y = x then [] else y :: upto rest
        in
        report (x :: List.rev (upto stack))
    | None ->
        Hashtbl.replace color x `Gray;
        List.iter (dfs (x :: stack)) (succ x);
        Hashtbl.replace color x `Black
  in
  List.iter (dfs []) nodes

let end_of_trace ~subject st last_ts =
  Hashtbl.iter
    (fun tid (a : attempt) ->
      if a.held <> [] then
        add_finding st
          (warn ~subject ~rule:"lock-leak"
             ~location:(Finding.At_ts (last_ts, tid))
             (Fmt.str
                "trace ends with domain %d holding tvar(s) %s (stopped \
                 mid-commit?)"
                tid
                (String.concat ", "
                   (List.map string_of_int (List.rev a.held))))))
    st.attempts

(* Chaos cross-check: within one lane, injected fault instants (category
   [Fault], names [chaos-crash] / [chaos-parasitic]) and empirical
   verdict instants (category [Monitor], name [chaos-verdict]) must
   agree — a crash must be classified crashed, a parasitic turn
   parasitic, and no domain may be classified crashed/parasitic without
   a matching injected fault.  Lanes without verdict events (ordinary
   STM or simulator traces) produce no findings.

   One announced exception: under some algorithms a parasitic turn is
   legitimately classified otherwise (the global-lock serializer turns
   a parasite stuck behind a stranded lock into a repeat aborter —
   starving, not parasitic).  The runner declares that per-algorithm
   expectation in the verdict's [expected] arg; a parasitic mismatch
   whose observed class equals the declared expectation is the plan
   speaking, not a falsified verdict.  Crash direction stays strict: an
   injected crash classified anything but crashed is always an error. *)
let chaos_lane_findings ~subject events =
  let faults : (int, string * int) Hashtbl.t = Hashtbl.create 8 in
  let verdicts : (int, string * string option * int) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun (e : Tev.t) ->
      match (e.Tev.cat, e.Tev.name, e.Tev.phase) with
      | Tev.Fault, "chaos-crash", Tev.Instant ->
          Hashtbl.replace faults e.Tev.tid ("crashed", e.Tev.ts)
      | Tev.Fault, "chaos-parasitic", Tev.Instant ->
          Hashtbl.replace faults e.Tev.tid ("parasitic", e.Tev.ts)
      | Tev.Monitor, "chaos-verdict", Tev.Instant -> (
          match Tev.arg_str e "class" with
          | Some c ->
              Hashtbl.replace verdicts e.Tev.tid
                (c, Tev.arg_str e "expected", e.Tev.ts)
          | None -> ())
      | _ -> ())
    events;
  if Hashtbl.length verdicts = 0 then []
  else begin
    let fs = ref [] in
    let report ts tid msg =
      fs :=
        err ~subject ~rule:"chaos-class"
          ~location:(Finding.At_ts (ts, tid))
          msg
        :: !fs
    in
    Hashtbl.iter
      (fun tid (kind, ts) ->
        match Hashtbl.find_opt verdicts tid with
        | Some (c, _, _) when c = kind -> ()
        | Some (c, expected, _) when kind = "parasitic" && expected = Some c ->
            (* announced per-algorithm expectation, see above *)
            ()
        | Some (c, _, vts) ->
            report vts tid
              (Fmt.str
                 "domain %d has an injected %s fault but was classified %s"
                 tid kind c)
        | None ->
            report ts tid
              (Fmt.str
                 "domain %d has an injected %s fault but no chaos verdict"
                 tid kind))
      faults;
    Hashtbl.iter
      (fun tid (c, _, ts) ->
        if
          (c = "crashed" || c = "parasitic")
          && not (Hashtbl.mem faults tid)
        then
          report ts tid
            (Fmt.str
               "domain %d was classified %s with no injected fault event" tid
               c))
      verdicts;
    !fs
  end

(* Blame cross-check.  With the blame seam armed the chaos runner
   appends one evidence instant per domain (category [Monitor], name
   [blame-evidence], args [evidence]/[shape]) computed from the blame
   graph by [Blame_graph.classify].  Evidence and verdict are two views
   of the same run and must cohere:

   - crashed/parasitic/progressing evidence and the same-named verdict
     imply each other (classification is verdict-first, so a
     disagreement means the trace was tampered with or mis-assembled);
   - a starving verdict must come with starving-side evidence
     ([starved-by:*], [contended] or [quiet]) — enforced by the
     implications above — and when it is [starved-by:*] the
     attribution must be causally plausible:
     a starving domain may not pin >= 90% of its blame on a fault-free
     domain that is itself classified progressing — in every fault
     scenario the dominator of a starved domain is the injected faulty
     one (or another victim), so a healthy dominator is a
     mis-attributed edge.

   Lanes without blame-evidence events (blame off, plain traces)
   produce no findings. *)
let blame_lane_findings ~subject events =
  let faults : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let verdicts : (int, string) Hashtbl.t = Hashtbl.create 8 in
  let evidence : (int, string * int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (e : Tev.t) ->
      match (e.Tev.cat, e.Tev.name, e.Tev.phase) with
      | Tev.Fault, ("chaos-crash" | "chaos-parasitic"), Tev.Instant ->
          Hashtbl.replace faults e.Tev.tid ()
      | Tev.Monitor, "chaos-verdict", Tev.Instant -> (
          match Tev.arg_str e "class" with
          | Some c -> Hashtbl.replace verdicts e.Tev.tid c
          | None -> ())
      | Tev.Monitor, "blame-evidence", Tev.Instant -> (
          match Tev.arg_str e "evidence" with
          | Some ev -> Hashtbl.replace evidence e.Tev.tid (ev, e.Tev.ts)
          | None -> ())
      | _ -> ())
    events;
  if Hashtbl.length evidence = 0 then []
  else begin
    let fs = ref [] in
    let report ts tid msg =
      fs :=
        err ~subject ~rule:"blame" ~location:(Finding.At_ts (ts, tid)) msg
        :: !fs
    in
    let starved_by ev =
      let pre = "starved-by:" in
      let n = String.length pre in
      if String.length ev > n && String.sub ev 0 n = pre then
        int_of_string_opt (String.sub ev n (String.length ev - n))
      else None
    in
    Hashtbl.iter
      (fun tid (ev, ts) ->
        match Hashtbl.find_opt verdicts tid with
        | None -> ()
        | Some v ->
            List.iter
              (fun k ->
                if v = k && ev <> k then
                  report ts tid
                    (Fmt.str
                       "domain %d is classified %s but its blame evidence \
                        is %s"
                       tid k ev)
                else if ev = k && v <> k then
                  report ts tid
                    (Fmt.str
                       "domain %d has blame evidence %s but is classified \
                        %s"
                       tid k v))
              [ "crashed"; "parasitic"; "progressing" ];
            match starved_by ev with
            | Some a
              when v = "starving"
                   && (not (Hashtbl.mem faults a))
                   && Hashtbl.find_opt verdicts a = Some "progressing" ->
                report ts tid
                  (Fmt.str
                     "starving domain %d pins its blame on fault-free \
                      progressing domain %d"
                     tid a)
            | _ -> ())
      evidence;
    !fs
  end

let process ~subject st (e : Tev.t) =
  match (e.Tev.cat, e.Tev.name, e.Tev.phase) with
  | Tev.Lock, "acquire", Tev.Instant -> (
      match Tev.tvar e with Some x -> on_acquire ~subject st e x | None -> ())
  | Tev.Lock, "release", Tev.Instant -> (
      match Tev.tvar e with Some x -> on_release ~subject st e x | None -> ())
  | Tev.Txn, "publish", Tev.Instant -> (
      match Tev.tvar e with Some x -> on_publish ~subject st e x | None -> ())
  | Tev.Txn, "attempt", Tev.Span_end -> on_attempt_end ~subject st e
  | _ -> ()

let scan ~subject events =
  let events = Tev.by_ts events in
  let st = initial () in
  List.iter (process ~subject st) events;
  (st, events)

(* Merged traces (e.g. a sweep's) carry one pid lane per run, with tids
   reused across lanes; each lane is an independent execution and is
   analyzed in isolation. *)
let lanes events =
  let m =
    List.fold_left
      (fun m (e : Tev.t) -> IMap.add_to_list e.Tev.pid e m)
      IMap.empty events
  in
  List.map snd (IMap.bindings m)

let lint_trace ~subject events =
  let findings =
    List.concat_map
      (fun lane ->
        let st, lane = scan ~subject lane in
        let last_ts =
          match List.rev lane with [] -> 0 | e :: _ -> e.Tev.ts
        in
        end_of_trace ~subject st last_ts;
        cycle_findings ~subject st;
        chaos_lane_findings ~subject lane
        @ blame_lane_findings ~subject lane
        @ st.findings)
      (lanes events)
  in
  List.sort Finding.compare findings

let lock_order_edges events =
  List.concat_map
    (fun lane ->
      let st, _ = scan ~subject:"edges" lane in
      List.rev_map fst st.edges)
    (lanes events)
