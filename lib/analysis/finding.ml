type severity = Info | Warning | Error

type location =
  | At_event of int
  | At_ts of int * int
  | At_proc of int
  | At_line of int
  | Whole

type t = {
  rule : string;
  severity : severity;
  subject : string;
  location : location;
  message : string;
}

let v ~rule ~severity ~subject ?(location = Whole) message =
  { rule; severity; subject; location; message }

let severity_label = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_of_label = function
  | "info" -> Some Info
  | "warning" -> Some Warning
  | "error" -> Some Error
  | _ -> None

let is_error f = f.severity = Error

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let max_severity = function
  | [] -> None
  | fs ->
      Some
        (List.fold_left
           (fun acc f ->
             if severity_rank f.severity < severity_rank acc then f.severity
             else acc)
           Info fs)

let location_rank = function
  | Whole -> (0, 0, 0)
  | At_proc p -> (1, p, 0)
  | At_event i -> (2, i, 0)
  | At_ts (ts, tid) -> (3, ts, tid)
  | At_line l -> (4, l, 0)

let compare a b =
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.subject b.subject in
    if c <> 0 then c
    else
      let c = String.compare a.rule b.rule in
      if c <> 0 then c
      else
        let c =
          Stdlib.compare (location_rank a.location) (location_rank b.location)
        in
        if c <> 0 then c else String.compare a.message b.message

let equal a b = compare a b = 0

(* Deterministic JSON: fixed key order, the same escaping rules as
   [Tm_trace.Export]. *)
let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let location_to_json b = function
  | Whole -> Buffer.add_string b "{\"kind\":\"whole\"}"
  | At_proc p ->
      Buffer.add_string b (Printf.sprintf "{\"kind\":\"proc\",\"proc\":%d}" p)
  | At_event i ->
      Buffer.add_string b (Printf.sprintf "{\"kind\":\"event\",\"index\":%d}" i)
  | At_ts (ts, tid) ->
      Buffer.add_string b
        (Printf.sprintf "{\"kind\":\"trace\",\"ts\":%d,\"tid\":%d}" ts tid)
  | At_line l ->
      Buffer.add_string b (Printf.sprintf "{\"kind\":\"line\",\"line\":%d}" l)

let to_json b f =
  Buffer.add_string b "{\"rule\":";
  escape_string b f.rule;
  Buffer.add_string b ",\"severity\":\"";
  Buffer.add_string b (severity_label f.severity);
  Buffer.add_string b "\",\"subject\":";
  escape_string b f.subject;
  Buffer.add_string b ",\"location\":";
  location_to_json b f.location;
  Buffer.add_string b ",\"message\":";
  escape_string b f.message;
  Buffer.add_char b '}'

let count sev fs = List.length (List.filter (fun f -> f.severity = sev) fs)

let list_to_json fs =
  let fs = List.sort compare fs in
  let b = Buffer.create (256 * (1 + List.length fs)) in
  Buffer.add_string b "{\"findings\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n";
      to_json b f)
    fs;
  if fs <> [] then Buffer.add_char b '\n';
  Buffer.add_string b
    (Printf.sprintf "],\"counts\":{\"error\":%d,\"warning\":%d,\"info\":%d}}\n"
       (count Error fs) (count Warning fs) (count Info fs));
  Buffer.contents b

let pp_location ppf = function
  | Whole -> Fmt.string ppf "-"
  | At_proc p -> Fmt.pf ppf "p%d" p
  | At_event i -> Fmt.pf ppf "event %d" i
  | At_ts (ts, tid) -> Fmt.pf ppf "ts %d (tid %d)" ts tid
  | At_line l -> Fmt.pf ppf "line %d" l

let pp ppf f =
  Fmt.pf ppf "%-7s %-24s %-14s %s: %s"
    (severity_label f.severity)
    f.subject
    (Fmt.str "%a" pp_location f.location)
    f.rule f.message

let pp_report ppf fs =
  match fs with
  | [] -> Fmt.pf ppf "no findings@."
  | fs ->
      let fs = List.sort compare fs in
      List.iter (fun f -> Fmt.pf ppf "%a@." pp f) fs;
      Fmt.pf ppf "%d error(s), %d warning(s), %d info@." (count Error fs)
        (count Warning fs) (count Info fs)
