type family = History_rule | Lasso_rule | Trace_rule

type rule = {
  id : string;
  family : family;
  severity : Finding.severity;
  doc : string;
}

let rules =
  [
    (* History lints. *)
    {
      id = "wf-alternation";
      family = History_rule;
      severity = Finding.Error;
      doc = "a process invoked while its previous invocation was pending";
    };
    {
      id = "wf-orphan-response";
      family = History_rule;
      severity = Finding.Error;
      doc = "a response event with no pending invocation";
    };
    {
      id = "wf-response-match";
      family = History_rule;
      severity = Finding.Error;
      doc = "a response whose kind does not match the pending invocation";
    };
    {
      id = "txn-unique-id";
      family = History_rule;
      severity = Finding.Error;
      doc = "two transactions share a (process, sequence) identifier";
    };
    {
      id = "txn-interval";
      family = History_rule;
      severity = Finding.Error;
      doc = "transaction intervals of one process overlap or run backwards";
    };
    (* Lasso / liveness-taxonomy lints. *)
    {
      id = "lasso-wf";
      family = Lasso_rule;
      severity = Finding.Error;
      doc = "a finite unrolling of the lasso is not well-formed";
    };
    {
      id = "live-class-invariant";
      family = Lasso_rule;
      severity = Finding.Error;
      doc = "the recomputed Figure-2 taxonomy is internally inconsistent";
    };
    {
      id = "live-class-mismatch";
      family = Lasso_rule;
      severity = Finding.Error;
      doc = "a claimed process class disagrees with the recomputed one";
    };
    {
      id = "live-verdict-mismatch";
      family = Lasso_rule;
      severity = Finding.Error;
      doc = "a claimed TM-liveness verdict disagrees with the recomputed one";
    };
    (* Trace lints. *)
    {
      id = "lock-overlap";
      family = Trace_rule;
      severity = Finding.Error;
      doc = "a versioned lock was acquired while another domain held it";
    };
    {
      id = "unlock-without-lock";
      family = Trace_rule;
      severity = Finding.Error;
      doc = "a lock release by a domain that does not hold the lock";
    };
    {
      id = "publish-without-lock";
      family = Trace_rule;
      severity = Finding.Error;
      doc = "a commit published a t-variable without holding its lock";
    };
    {
      id = "acquire-after-publish";
      family = Trace_rule;
      severity = Finding.Error;
      doc = "a commit acquired a lock after starting to publish";
    };
    {
      id = "lock-leak";
      family = Trace_rule;
      severity = Finding.Error;
      doc = "a commit attempt (or the whole trace) ended with locks held";
    };
    {
      id = "lock-order-cycle";
      family = Trace_rule;
      severity = Finding.Error;
      doc = "the lock-order graph has a cycle (potential deadlock)";
    };
    {
      id = "hb-race";
      family = Trace_rule;
      severity = Finding.Error;
      doc =
        "two publishes to one t-variable are concurrent under happens-before";
    };
    {
      id = "chaos-class";
      family = Trace_rule;
      severity = Finding.Error;
      doc =
        "an injected chaos fault disagrees with the empirical verdict events";
    };
    {
      id = "blame";
      family = Trace_rule;
      severity = Finding.Error;
      doc =
        "blame-attribution evidence disagrees with the chaos verdicts or \
         leaves a starvation unattributed";
    };
  ]

let rule_ids = List.map (fun r -> r.id) rules

let find_rule id = List.find_opt (fun r -> r.id = id) rules

let parse_selection s =
  match String.trim s with
  | "all" | "" -> Ok rule_ids
  | s ->
      let ids =
        List.filter_map
          (fun x ->
            let x = String.trim x in
            if x = "" then None else Some x)
          (String.split_on_char ',' s)
      in
      let unknown = List.filter (fun id -> find_rule id = None) ids in
      if unknown = [] then Ok ids
      else
        Error
          (Fmt.str "unknown rule(s) %s (valid: all, %s)"
             (String.concat ", " unknown)
             (String.concat ", " rule_ids))

let family_label = function
  | History_rule -> "history"
  | Lasso_rule -> "lasso"
  | Trace_rule -> "trace"

let pp_catalogue ppf () =
  List.iter
    (fun r ->
      Fmt.pf ppf "%-22s %-8s %-8s %s@." r.id (family_label r.family)
        (Finding.severity_label r.severity)
        r.doc)
    rules

let filter_rules rules findings =
  match rules with
  | None -> findings
  | Some ids ->
      List.filter (fun (f : Finding.t) -> List.mem f.Finding.rule ids) findings

let run_history ?rules ~subject h =
  filter_rules rules (History_lint.lint_history ~subject h)

let run_lasso ?rules ?claimed_classes ?claimed_verdict ~subject l =
  filter_rules rules
    (History_lint.lint_lasso ?claimed_classes ?claimed_verdict ~subject l)

let run_trace ?rules ~subject events =
  filter_rules rules (Trace_lint.lint_trace ~subject events)

type fail_level = [ `Error | `Warning | `Never ]

let fail_level_of_string = function
  | "error" -> Some `Error
  | "warning" -> Some `Warning
  | "never" -> Some `Never
  | _ -> None

let fail_level_label = function
  | `Error -> "error"
  | `Warning -> "warning"
  | `Never -> "never"

let exit_code_at level findings =
  match level with
  | `Never -> 0
  | `Error -> if List.exists Finding.is_error findings then 1 else 0
  | `Warning ->
      if
        List.exists
          (fun (f : Finding.t) -> f.Finding.severity <> Finding.Info)
          findings
      then 1
      else 0

let exit_code findings = exit_code_at `Error findings
