open Tm_history

(** The lint engine: the rule catalogue, rule-subset selection, and
    one-call drivers over histories, lassos and traces.

    Every analyzer family registers its rules here so the CLI can list
    them, validate [--rules] selections, and filter findings uniformly.
    Selection is by rule id; ["all"] selects everything. *)

type family = History_rule | Lasso_rule | Trace_rule

type rule = {
  id : string;
  family : family;
  severity : Finding.severity;  (** severity the rule reports at *)
  doc : string;  (** one-line description for [--rules help] and docs *)
}

val rules : rule list
(** The full catalogue, grouped by family. *)

val rule_ids : string list

val find_rule : string -> rule option

val parse_selection : string -> (string list, string) result
(** [parse_selection s] parses a [--rules] argument: ["all"] (every rule)
    or a comma-separated list of rule ids.  Unknown ids are an error
    naming the offender and the valid ids. *)

val pp_catalogue : Format.formatter -> unit -> unit
(** The rule table: id, family, severity, description. *)

(** {2 Drivers}

    Each driver runs every analyzer of the artifact's family and keeps
    the findings whose rule id is in [rules] (default: all).  [subject]
    labels the artifact in findings and reports. *)

val run_history :
  ?rules:string list -> subject:string -> History.t -> Finding.t list

val run_lasso :
  ?rules:string list ->
  ?claimed_classes:(Event.proc * Tm_liveness.Process_class.cls) list ->
  ?claimed_verdict:Tm_liveness.Property.verdict ->
  subject:string ->
  Lasso.t ->
  Finding.t list

val run_trace :
  ?rules:string list ->
  subject:string ->
  Tm_trace.Trace_event.t list ->
  Finding.t list

type fail_level = [ `Error | `Warning | `Never ]
(** The [--fail-on] threshold: which severities make a report a gating
    failure. [`Error] is the historical exit-1-on-errors behaviour;
    [`Warning] also fails on warnings; [`Never] always exits 0. *)

val fail_level_of_string : string -> fail_level option
(** ["error"], ["warning"], ["never"]. *)

val fail_level_label : fail_level -> string

val exit_code_at : fail_level -> Finding.t list -> int
(** CI gating at a chosen threshold: [1] if any finding at or above
    [level] is present, [0] otherwise ([`Never] is always [0]). *)

val exit_code : Finding.t list -> int
(** [exit_code fs = exit_code_at `Error fs]. *)
