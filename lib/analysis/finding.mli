(** Lint findings: the common currency of every analyzer in [Tm_analysis].

    A finding names the rule that fired, how bad it is, where in the
    analyzed artifact it fired, and a human explanation.  Findings are
    plain data with a deterministic JSON encoding, so analyzer output can
    be diffed, archived as a CI artifact, and gated on. *)

type severity = Info | Warning | Error

type location =
  | At_event of int  (** history event index (0-based) *)
  | At_ts of int * int  (** trace location: (logical timestamp, tid lane) *)
  | At_proc of int  (** a process of the history/lasso *)
  | At_line of int  (** a source line (1-based), for static findings *)
  | Whole  (** the artifact as a whole *)

type t = {
  rule : string;  (** rule identifier, e.g. ["wf-alternation"] *)
  severity : severity;
  subject : string;  (** label of the analyzed artifact, e.g. ["fig3"] *)
  location : location;
  message : string;  (** one-line explanation *)
}

val v :
  rule:string -> severity:severity -> subject:string -> ?location:location ->
  string -> t
(** [v ~rule ~severity ~subject msg] builds a finding ([location] defaults
    to {!Whole}). *)

val severity_label : severity -> string
(** ["info"], ["warning"], ["error"]. *)

val severity_of_label : string -> severity option

val is_error : t -> bool

val max_severity : t list -> severity option
(** The worst severity present, [None] on an empty list. *)

val compare : t -> t -> int
(** Sort key: severity (errors first), then subject, then rule, then
    location, then message — a deterministic report order. *)

val equal : t -> t -> bool

val to_json : Buffer.t -> t -> unit
(** One finding as a JSON object with fixed key order:
    [{"rule":...,"severity":...,"subject":...,"location":...,"message":...}]. *)

val list_to_json : t list -> string
(** The findings document:
    [{"findings":[...],"counts":{"error":e,"warning":w,"info":i}}] —
    deterministic bytes for equal finding lists. *)

val pp : Format.formatter -> t -> unit
(** One line: [severity subject location rule: message]. *)

val pp_report : Format.formatter -> t list -> unit
(** A sorted table of findings followed by a severity tally; prints
    ["no findings"] on an empty list. *)
