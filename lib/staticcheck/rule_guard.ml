(* seam-guard: every seam emission must be dominated by its disarmed
   check — the one [Atomic.get X.armed] (or [Atomic.get Trace.tracing])
   load that keeps the hot path under 100 ns/event when nothing is
   installed (bench §P7/P8/P10).  An emission that skips the guard
   loads handler/probe/sink state unconditionally and silently breaks
   that budget on every disarmed run.

   The domination analysis is lexical: a set of established guard
   facts flows through let/sequence/if/match/closure structure.
   Recognized guard facts:
   - [Atomic.get Chaos.armed] / [Tel.armed] / [Blame.armed] /
     [Trace.tracing] (any qualification depth);
   - a variable let-bound to an expression carrying guard facts
     ([let tel = Atomic.get Tel.armed in ... if tel then ...]);
   - conjunctions contribute the union of both sides' facts
     ([if stolen && Atomic.get Blame.armed then ...]).

   Emissions checked:
   - [Chaos.fire] / [Chaos.decide] applications        (needs Chaos)
   - [Blame.emit] / [Blame.emit_event] applications    (needs Blame)
   - [Trace.emit] applications                         (needs Trace)
   - probe-field applications [_.Tel.count] / [_.Tel.observe] /
     [_.Tel.now]                                       (needs Tel)

   [Blame.progress] and [Blame.self] are not emissions: progress
   checks [armed] internally, self is pure DLS. *)

open Parsetree

let rule = "seam-guard"

module Guards = Set.Make (String)

type seam = G_chaos | G_tel | G_blame | G_trace

let seam_fact = function
  | G_chaos -> "Chaos"
  | G_tel -> "Tel"
  | G_blame -> "Blame"
  | G_trace -> "Trace"

let guard_expr_label = function
  | G_trace -> "Atomic.get Trace.tracing"
  | s -> Fmt.str "Atomic.get %s.armed" (seam_fact s)

(* The guard facts an expression establishes when it evaluates to
   [true]: used both for if-conditions and for let-bound guards.
   [env] resolves variables already bound to guard facts. *)
let rec facts_of env (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { Location.txt = Longident.Lident v; _ } -> (
      match List.assoc_opt v env with Some fs -> fs | None -> Guards.empty)
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { Location.txt = get; _ }; _ },
        [ (Asttypes.Nolabel, arg) ] )
    when Source.lid_last get = "get" && Source.lid_parent get = Some "Atomic"
    -> (
      match arg.pexp_desc with
      | Pexp_ident { Location.txt = lid; _ } -> (
          match (Source.lid_parent lid, Source.lid_last lid) with
          | Some "Chaos", "armed" -> Guards.singleton "Chaos"
          | Some "Tel", "armed" -> Guards.singleton "Tel"
          | Some "Blame", "armed" -> Guards.singleton "Blame"
          | Some "Trace", "tracing" -> Guards.singleton "Trace"
          | _ -> Guards.empty)
      | _ -> Guards.empty)
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { Location.txt = Longident.Lident "&&"; _ }; _ },
        [ (_, a); (_, b) ] ) ->
      Guards.union (facts_of env a) (facts_of env b)
  | Pexp_constraint (e, _) | Pexp_open (_, e) -> facts_of env e
  | _ -> Guards.empty

(* Which seam, if any, an application emits on. *)
let emission_of (fn : expression) =
  match fn.pexp_desc with
  | Pexp_ident { Location.txt = lid; _ } -> (
      match (Source.lid_parent lid, Source.lid_last lid) with
      | Some "Chaos", ("fire" | "decide") -> Some G_chaos
      | Some "Blame", ("emit" | "emit_event") -> Some G_blame
      | Some "Trace", "emit" -> Some G_trace
      | _ -> None)
  | Pexp_field (_, { Location.txt = lid; _ }) -> (
      match (Source.lid_parent lid, Source.lid_last lid) with
      | Some "Tel", ("count" | "observe" | "now") -> Some G_tel
      | _ -> None)
  | _ -> None

let check (src : Source.t) =
  let findings = ref [] in
  let report seam (e : expression) =
    let line = Source.line_of e.pexp_loc in
    if not (Source.allows src ~rule ~line) then
      findings :=
        Tm_analysis.Finding.v ~rule ~severity:Tm_analysis.Finding.Error
          ~subject:src.path
          ~location:(Tm_analysis.Finding.At_line line)
          (Fmt.str
             "%s emission not dominated by its [if %s then] disarmed check"
             (seam_fact seam) (guard_expr_label seam))
        :: !findings
  in
  (* [env]: let-bound guard variables in scope; [guards]: facts
     established on the current control path. *)
  let rec walk env guards (e : expression) =
    match e.pexp_desc with
    | Pexp_ifthenelse (cond, then_, else_) ->
        walk env guards cond;
        walk env (Guards.union guards (facts_of env cond)) then_;
        Option.iter (walk env guards) else_
    | Pexp_let (_, vbs, body) ->
        List.iter (fun vb -> walk env guards vb.pvb_expr) vbs;
        let env =
          List.fold_left
            (fun env vb ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var v ->
                  let fs = facts_of env vb.pvb_expr in
                  if Guards.is_empty fs then env
                  else (v.Location.txt, fs) :: env
              | _ -> env)
            env vbs
        in
        walk env guards body
    | Pexp_sequence (a, b) ->
        walk env guards a;
        walk env guards b
    | Pexp_apply (fn, args) ->
        (match emission_of fn with
        | Some seam when not (Guards.mem (seam_fact seam) guards) ->
            report seam e
        | _ -> ());
        walk env guards fn;
        List.iter (fun (_, a) -> walk env guards a) args
    | Pexp_fun (_, default, _, body) ->
        Option.iter (walk env guards) default;
        walk env guards body
    | Pexp_function cases -> List.iter (walk_case env guards) cases
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        walk env guards scrut;
        List.iter (walk_case env guards) cases
    | Pexp_constraint (e, _) | Pexp_open (_, e) | Pexp_lazy e -> walk env guards e
    | _ ->
        (* Generic fallback: visit immediate sub-expressions under the
           same facts (tuples, records, constructors, loops, ...). *)
        let sub =
          {
            Ast_iterator.default_iterator with
            expr = (fun _ e' -> walk env guards e');
          }
        in
        Ast_iterator.default_iterator.expr sub e
  and walk_case env guards (c : case) =
    Option.iter (walk env guards) c.pc_guard;
    walk env guards c.pc_rhs
  in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr = (fun _ e -> walk [] Guards.empty e);
    }
  in
  iter.structure iter src.structure;
  List.rev !findings
