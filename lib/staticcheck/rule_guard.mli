(** seam-guard: every Chaos/Tel/Blame/Trace emission must be dominated
    by its [Atomic.get X.armed] (resp. [Trace.tracing]) disarmed check,
    preserving the <100 ns/event disarmed discipline of bench
    §P5/P7/P8/P10. *)

val rule : string

val check : Source.t -> Tm_analysis.Finding.t list
(** Error findings at each undominated emission line.  Suppressible
    with a [tmstatic: allow seam-guard] comment on the same or the
    preceding line. *)
