(** The static-check driver: rule catalogue, repo-root discovery and
    the one-call [run] shared by [tmlive static], the tests and bench
    §P11.  Output is deterministic: sorted findings with root-relative
    subjects, so two runs over one tree are byte-identical. *)

type rule = { id : string; severity : Tm_analysis.Finding.severity; doc : string }

val rules : rule list
(** seam-contract, seam-guard, txn-purity, armed-leak, static-parse. *)

val rule_ids : string list

val parse_rule : string
(** ["static-parse"]: a file in scope failed to parse. *)

val find_rule : string -> rule option

val parse_selection : string -> (string list, string) result
(** Parse a [--rules] argument: ["all"] or a comma-separated id list;
    unknown ids are an error naming the valid ones. *)

val pp_catalogue : Format.formatter -> unit -> unit

val find_root : ?from:string -> unit -> string option
(** Walk upward from [from] (default: the working directory) to the
    first directory holding [dune-project] and [lib/stm]. *)

type report = { findings : Tm_analysis.Finding.t list; files_scanned : int }

val run :
  ?rules:string list -> root:string -> unit -> (report, string) result
(** Run the selected rules (default: all) over the checkout at [root].
    [Error] only if [root] is not a repo checkout at all; per-file
    parse failures are [static-parse] findings instead. *)
