(** armed-leak: a top-level definition that arms a seam
    ([Chaos]/[Tel]/[Blame]/[Blame_graph].install, [Trace.start]) must
    also mention the matching disarm ([uninstall], [Trace.stop] or
    [Stm.recover] — application or bare ident both count).
    Suppressible with [tmstatic: allow armed-leak]. *)

val rule : string

val check : Source.t -> Tm_analysis.Finding.t list
