(* A parsed OCaml source file, plus the small amount of raw-text
   context the rules need: line-anchored allow-comments and longident
   helpers.  Parsing uses compiler-libs ([Parse.implementation]), so
   the analyzer sees exactly the trees the compiler sees — no regexes
   over source text except for the allow-comment scan, which is
   line-local by design (comments are not in the parsetree). *)

type allow = { a_line : int; a_rules : string list (* [] = every rule *) }

type t = {
  path : string;  (** the subject string used in findings *)
  text : string;
  structure : Parsetree.structure;
  allows : allow list;
}

(* "(* tmstatic: allow txn-purity *)" anywhere on a line suppresses the
   named rules (comma/space separated; none named = all rules) for
   findings on that line or the next one — same discipline as a lint
   pragma, kept deliberately line-local so a stale allow is visible
   next to the code it excuses. *)
let allow_marker = "tmstatic: allow"

let contains_at hay pos needle =
  pos + String.length needle <= String.length hay
  && String.sub hay pos (String.length needle) = needle

let find_sub hay needle =
  let n = String.length hay in
  let rec go i =
    if i >= n then None
    else if contains_at hay i needle then Some i
    else go (i + 1)
  in
  go 0

let scan_allows text =
  let allows = ref [] in
  let line = ref 0 in
  String.split_on_char '\n' text
  |> List.iter (fun l ->
         incr line;
         match find_sub l allow_marker with
         | None -> ()
         | Some i ->
             let rest =
               String.sub l
                 (i + String.length allow_marker)
                 (String.length l - i - String.length allow_marker)
             in
             let rest =
               match find_sub rest "*)" with
               | Some j -> String.sub rest 0 j
               | None -> rest
             in
             let rules =
               String.split_on_char ',' rest
               |> List.concat_map (String.split_on_char ' ')
               |> List.filter_map (fun w ->
                      match String.trim w with "" -> None | w -> Some w)
             in
             allows := { a_line = !line; a_rules = rules } :: !allows);
  List.rev !allows

let allows t ~rule ~line =
  List.exists
    (fun a ->
      (a.a_line = line || a.a_line = line - 1)
      && (a.a_rules = [] || List.mem rule a.a_rules))
    t.allows

let of_string ~path text =
  let lexbuf = Lexing.from_string text in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | structure -> Ok { path; text; structure; allows = scan_allows text }
  | exception exn ->
      Error (Fmt.str "%s: parse error: %s" path (Printexc.to_string exn))

let load ?subject file =
  let subject = Option.value subject ~default:file in
  match In_channel.with_open_bin file In_channel.input_all with
  | text -> of_string ~path:subject text
  | exception Sys_error msg -> Error (Fmt.str "%s: %s" subject msg)

let line_of (loc : Location.t) = loc.loc_start.pos_lnum

(* Longident helpers: rules match on the last component (the name) and
   the component immediately qualifying it (the module), e.g.
   [Stm_core.Chaos.fire] has last ["fire"] under ["Chaos"]. *)
let rec lid_last : Longident.t -> string = function
  | Lident s -> s
  | Ldot (_, s) -> s
  | Lapply (_, l) -> lid_last l

let lid_parent : Longident.t -> string option = function
  | Lident _ -> None
  | Ldot (p, _) -> (
      match p with
      | Longident.Lident m | Longident.Ldot (_, m) -> Some m
      | Longident.Lapply _ -> None)
  | Lapply _ -> None
