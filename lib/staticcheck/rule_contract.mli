(** seam-contract: both-direction cross-check of each core's seam
    emission sites against the [Stm.Algo] announcement tables. *)

val rule : string

val check :
  vocab:Seam.vocab ->
  contract:Seam.contract ->
  facade_src:Source.t ->
  (string * Source.t) list ->
  Tm_analysis.Finding.t list
(** [check ~vocab ~contract ~facade_src cores] with [cores] a list of
    (Algo constructor, parsed core source).  Error findings for:
    unannounced emissions (located at the emitting core line), announced
    constructors with no emission site and duplicate announcements
    (located at the table case in the facade). *)
