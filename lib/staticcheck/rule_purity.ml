(* txn-purity: transaction bodies must be rollbackable.

   [Stm.atomically f] may run [f] many times (conflicts, chaos aborts,
   [Retry]) and abandon any non-final run's effects.  Every effect in
   the body other than t-variable access therefore either multiplies
   (I/O, spawning) or leaks rolled-back state (mutation of anything
   that outlives the attempt).  The rule walks every [atomically]
   body and flags:

   - errors: effects that cannot be undone at all — console/channel
     I/O, [Printf]/[Format]/[Fmt] printing, [Random] draws,
     [Domain.spawn]/[join], [Mutex]/[Condition]/[Semaphore] operations,
     [Unix] calls, [exit];
   - warnings: mutation of state created *outside* the body —
     [:=]/[incr]/[decr], record/array field assignment, [Atomic]
     read-modify-writes and mutating stdlib containers ([Hashtbl],
     [Buffer], [Queue], [Stack], [Bytes], [Array]) — unless the
     mutated value is let-bound to a fresh allocation inside the body
     (a per-attempt ref is retry-safe by construction).

   Escape hatch: a [tmstatic: allow txn-purity] comment on the
   offending line or the line above (for deliberate effects, e.g. a
   test asserting how often a body re-runs). *)

open Parsetree

let rule = "txn-purity"

(* Unqualified (or [Stdlib.]-qualified) functions that do I/O or
   otherwise escape the attempt. *)
let banned_stdlib =
  [
    "print_string"; "print_bytes"; "print_int"; "print_char"; "print_float";
    "print_endline"; "print_newline"; "prerr_string"; "prerr_bytes";
    "prerr_int"; "prerr_char"; "prerr_float"; "prerr_endline";
    "prerr_newline"; "read_line"; "read_int"; "read_int_opt"; "read_float";
    "read_float_opt"; "output_string"; "output_bytes"; "output_char";
    "output_value"; "output_byte"; "output_binary_int"; "input_line";
    "input_char"; "input_byte"; "input_value"; "open_in"; "open_in_bin";
    "open_out"; "open_out_bin"; "close_in"; "close_out"; "flush";
    "flush_all"; "exit"; "at_exit";
  ]

(* Whole modules whose calls are non-rollbackable inside a body. *)
let banned_modules =
  [ "Random"; "Mutex"; "Condition"; "Semaphore"; "Unix"; "Out_channel";
    "In_channel" ]

(* Printing entry points of the formatting libraries (writing to a
   caller-supplied buffer formatter would be fine, but none of the
   tree's transaction bodies format at all, so the common std-output
   entry points are enough). *)
let banned_printers =
  [
    ("Printf", [ "printf"; "eprintf"; "fprintf"; "kfprintf" ]);
    ("Format", [ "printf"; "eprintf"; "fprintf"; "print_string"; "print_newline" ]);
    ("Fmt", [ "pr"; "epr"; "pf" ]);
  ]

let banned_domain = [ "spawn"; "join" ]

(* Mutating operations of stdlib containers, flagged when the mutated
   container was not created inside the body. *)
let mutators =
  [
    ("Hashtbl", [ "add"; "replace"; "remove"; "reset"; "clear"; "filter_map_inplace" ]);
    ("Buffer", [ "add_string"; "add_char"; "add_bytes"; "add_substring";
                 "add_buffer"; "clear"; "reset"; "truncate" ]);
    ("Queue", [ "add"; "push"; "pop"; "take"; "clear"; "transfer" ]);
    ("Stack", [ "push"; "pop"; "clear" ]);
    ("Bytes", [ "set"; "fill"; "blit"; "blit_string" ]);
    ("Array", [ "set"; "fill"; "blit"; "sort" ]);
    ("Atomic", [ "set"; "exchange"; "compare_and_set"; "fetch_and_add";
                 "incr"; "decr" ]);
  ]

(* Allocations that make the bound name attempt-local. *)
let fresh_allocators =
  [
    (None, [ "ref" ]);
    (Some "Atomic", [ "make" ]);
    (Some "Buffer", [ "create" ]);
    (Some "Hashtbl", [ "create" ]);
    (Some "Queue", [ "create" ]);
    (Some "Stack", [ "create" ]);
    (Some "Array", [ "make"; "init"; "copy" ]);
    (Some "Bytes", [ "create"; "make"; "copy" ]);
  ]

module Locals = Set.Make (String)

let ident_of (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { Location.txt = lid; _ } -> Some lid
  | _ -> None

let is_local locals (e : expression) =
  match ident_of e with
  | Some (Longident.Lident v) -> Locals.mem v locals
  | _ -> false

let is_fresh_alloc (e : expression) =
  match e.pexp_desc with
  | Pexp_apply (fn, _) -> (
      match ident_of fn with
      | Some lid ->
          let parent = Source.lid_parent lid and last = Source.lid_last lid in
          List.exists
            (fun (m, fns) -> m = parent && List.mem last fns)
            fresh_allocators
      | None -> false)
  | Pexp_record _ | Pexp_array _ -> true
  | _ -> false

type offence = { o_severity : Tm_analysis.Finding.severity; o_what : string }

(* Classify an application head: [Some offence] if calling it inside a
   transaction body is an effect we flag. [first_arg_local] suppresses
   the container mutators. *)
let classify_apply locals (fn : expression) (args : (Asttypes.arg_label * expression) list) =
  match ident_of fn with
  | None -> None
  | Some lid -> (
      let parent = Source.lid_parent lid and last = Source.lid_last lid in
      let first_arg_local =
        match args with (_, a) :: _ -> is_local locals a | [] -> false
      in
      match parent with
      | None | Some "Stdlib" ->
          if List.mem last banned_stdlib then
            Some
              {
                o_severity = Tm_analysis.Finding.Error;
                o_what = Fmt.str "%s (channel I/O / process effect)" last;
              }
          else if (last = ":=" || last = "incr" || last = "decr")
                  && not first_arg_local
          then
            Some
              {
                o_severity = Tm_analysis.Finding.Warning;
                o_what =
                  Fmt.str "%s on a ref created outside the transaction body"
                    last;
              }
          else None
      | Some m ->
          if List.mem m banned_modules then
            Some
              {
                o_severity = Tm_analysis.Finding.Error;
                o_what = Fmt.str "%s.%s (non-rollbackable effect)" m last;
              }
          else if m = "Domain" && List.mem last banned_domain then
            Some
              {
                o_severity = Tm_analysis.Finding.Error;
                o_what = Fmt.str "Domain.%s (spawned work cannot be rolled back)" last;
              }
          else if
            List.exists
              (fun (pm, fns) -> pm = m && List.mem last fns)
              banned_printers
          then
            Some
              {
                o_severity = Tm_analysis.Finding.Error;
                o_what = Fmt.str "%s.%s (printing escapes the attempt)" m last;
              }
          else if
            List.exists (fun (mm, fns) -> mm = m && List.mem last fns) mutators
            && not first_arg_local
          then
            Some
              {
                o_severity = Tm_analysis.Finding.Warning;
                o_what =
                  Fmt.str "%s.%s on state created outside the transaction body"
                    m last;
              }
          else None)

let check (src : Source.t) =
  let findings = ref [] in
  let report severity line what =
    if not (Source.allows src ~rule ~line) then
      findings :=
        Tm_analysis.Finding.v ~rule ~severity ~subject:src.Source.path
          ~location:(Tm_analysis.Finding.At_line line)
          (Fmt.str "%s inside an atomically body is not rolled back on abort"
             what)
        :: !findings
  in
  (* Walk a transaction body, tracking names bound to attempt-local
     allocations. *)
  let rec walk_body locals (e : expression) =
    match e.pexp_desc with
    | Pexp_let (_, vbs, body) ->
        List.iter (fun vb -> walk_body locals vb.pvb_expr) vbs;
        let locals =
          List.fold_left
            (fun locals vb ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var v when is_fresh_alloc vb.pvb_expr ->
                  Locals.add v.Location.txt locals
              | _ -> locals)
            locals vbs
        in
        walk_body locals body
    | Pexp_apply (fn, args) ->
        (match classify_apply locals fn args with
        | Some o ->
            report o.o_severity (Source.line_of e.pexp_loc) o.o_what
        | None -> ());
        walk_body locals fn;
        List.iter (fun (_, a) -> walk_body locals a) args
    | Pexp_setfield (r, _, v) ->
        if not (is_local locals r) then
          report Tm_analysis.Finding.Warning (Source.line_of e.pexp_loc)
            "field assignment on state created outside the transaction body";
        walk_body locals r;
        walk_body locals v
    | Pexp_setinstvar (_, v) ->
        report Tm_analysis.Finding.Warning (Source.line_of e.pexp_loc)
          "instance-variable assignment";
        walk_body locals v
    | Pexp_sequence (a, b) ->
        walk_body locals a;
        walk_body locals b
    | Pexp_ifthenelse (c, t, e') ->
        walk_body locals c;
        walk_body locals t;
        Option.iter (walk_body locals) e'
    | Pexp_fun (_, default, _, body) ->
        Option.iter (walk_body locals) default;
        walk_body locals body
    | Pexp_function cases -> List.iter (walk_case locals) cases
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        walk_body locals scrut;
        List.iter (walk_case locals) cases
    | Pexp_constraint (e, _) | Pexp_open (_, e) | Pexp_lazy e ->
        walk_body locals e
    | _ ->
        let sub =
          {
            Ast_iterator.default_iterator with
            expr = (fun _ e' -> walk_body locals e');
          }
        in
        Ast_iterator.default_iterator.expr sub e
  and walk_case locals (c : case) =
    Option.iter (walk_body locals) c.pc_guard;
    walk_body locals c.pc_rhs
  in
  (* Find [.. atomically (fun () -> body) ..] applications anywhere in
     the file (qualified or not: [Stm.atomically], [Stm_lock.atomically]
     and a locally-opened [atomically] all count). *)
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply (fn, args) when
              (match ident_of fn with
              | Some lid -> Source.lid_last lid = "atomically"
              | None -> false) ->
              List.iter
                (fun (_, (a : expression)) ->
                  match a.pexp_desc with
                  | Pexp_fun (_, _, _, body) -> walk_body Locals.empty body
                  | _ -> ())
                args
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  iter.structure iter src.structure;
  List.sort_uniq Tm_analysis.Finding.compare !findings
