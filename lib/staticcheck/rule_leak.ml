(* armed-leak: arming a seam without a paired disarm.

   [Chaos.install] / [Tel.install] / [Blame.install] / [Blame_graph.install]
   / [Trace.start] flip a process-global armed flag.  A test or bench
   step that installs and then exits without [uninstall] (or
   [Stm.recover], which disarms Chaos/Tel/Blame) leaves every
   subsequent test of the binary running armed: the <100 ns disarmed
   bench gates measure the wrong thing and chaos plans fire in
   unrelated tests.  The rule requires each top-level definition that
   installs a seam to also mention the matching release — as an
   application or as a bare ident ([Fun.protect
   ~finally:Stm.Tel.uninstall] counts).

   Scope deliberately per top-level structure item: the repo's
   discipline is that one test function owns the whole
   install/observe/teardown lifecycle (helpers that split the pair
   across definitions can carry a [tmstatic: allow armed-leak]). *)

open Parsetree

let rule = "armed-leak"

type seam = { sm_name : string; sm_installs : string list }

let seams =
  [
    { sm_name = "Chaos"; sm_installs = [ "install" ] };
    { sm_name = "Tel"; sm_installs = [ "install" ] };
    { sm_name = "Blame"; sm_installs = [ "install" ] };
    { sm_name = "Blame_graph"; sm_installs = [ "install" ] };
    { sm_name = "Trace"; sm_installs = [ "start"; "start_null" ] };
  ]

(* [Stm.recover] disarms the three STM seams (and with them the blame
   graph's sink); it does not stop tracing. *)
let recover_releases = [ "Chaos"; "Tel"; "Blame"; "Blame_graph" ]

type arming = { arm_seam : string; arm_line : int }

(* Collect, for one top-level definition: every install site and the
   set of seams for which a release is mentioned (application or bare
   ident). *)
let scan_item (si : structure_item) =
  let installs = ref [] in
  let released = ref [] in
  let release s = if not (List.mem s !released) then released := s :: !released in
  let on_ident lid line =
    let parent = Source.lid_parent lid and last = Source.lid_last lid in
    match parent with
    | Some p -> (
        (match List.find_opt (fun s -> s.sm_name = p) seams with
        | Some s when List.mem last s.sm_installs ->
            installs := { arm_seam = p; arm_line = line } :: !installs
        | _ -> ());
        match last with
        | "uninstall" -> release p
        | "stop" when p = "Trace" -> release "Trace"
        | "recover" -> List.iter release recover_releases
        | _ -> ())
    | None -> if last = "recover" then List.iter release recover_releases
  in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { Location.txt = lid; loc } ->
              on_ident lid (Source.line_of loc)
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  iter.structure_item iter si;
  (List.rev !installs, !released)

let check (src : Source.t) =
  List.concat_map
    (fun (si : structure_item) ->
      let installs, released = scan_item si in
      List.filter_map
        (fun a ->
          if List.mem a.arm_seam released then None
          else if Source.allows src ~rule ~line:a.arm_line then None
          else
            Some
              (Tm_analysis.Finding.v ~rule
                 ~severity:Tm_analysis.Finding.Error ~subject:src.Source.path
                 ~location:(Tm_analysis.Finding.At_line a.arm_line)
                 (Fmt.str
                    "%s armed here with no %s in the same top-level \
                     definition: later tests in this binary run armed"
                    a.arm_seam
                    (if a.arm_seam = "Trace" then "Trace.stop"
                     else
                       Fmt.str "%s.uninstall / Stm.recover" a.arm_seam))))
        installs)
    src.structure
