(** The machine-read seam contract: the Chaos/Tel/Blame constructor
    vocabularies parsed from [stm_core.ml], the per-algorithm
    announcement tables and core dispatch parsed from [stm.ml], and the
    emission-site scan the contract rule cross-checks them against. *)

type kind = Tel | Chaos | Blame

val kind_module : kind -> string
(** ["Tel"], ["Chaos"], ["Blame"]. *)

val kind_table : kind -> string
(** The announcement table name: ["tel_phases"], ["chaos_points"],
    ["blame_causes"]. *)

type vocab = { phases : string list; points : string list; causes : string list }

val vocab_of : kind -> vocab -> string list

val facade_kind : kind
(** The seam whose universal constructors (Begin/Commit/Abort) are
    emitted by the [Stm] facade's retry loop rather than the cores. *)

type announcement = {
  an_algo : string;  (** [Algo.t] constructor, e.g. ["Global_lock"] *)
  an_kind : kind;
  an_ctors : string list;  (** in announcement order *)
  an_line : int;  (** line of the matching table case in [stm.ml] *)
}

type contract = {
  c_algos : string list;
  c_core_files : (string * string) list;
      (** algo constructor -> core module name, e.g. ["Stm_tl2"] *)
  c_announced : announcement list;
}

val announced : contract -> algo:string -> kind:kind -> announcement option

val vocab_of_core : Source.t -> (vocab, string) result
(** Parse the [Tel.phase] / [Chaos.point] / [Blame.cause] variant
    declarations out of [stm_core.ml]. *)

val contract_of_facade : Source.t -> (contract, string) result
(** Parse [Algo.t], the three announcement tables and [core_of] out of
    [stm.ml].  Or-patterns announce for every named algorithm. *)

type site = { s_kind : kind; s_ctor : string; s_line : int }

val sites : vocab -> ?skip_module:string -> Source.t -> site list
(** Every qualified seam constructor in expression position, in source
    order.  [skip_module] skips one named top-level module (the [Algo]
    announcement tables themselves when scanning [stm.ml]). *)
