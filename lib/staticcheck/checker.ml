(* The static-check driver: rule catalogue, repo-root discovery, file
   selection and the one-call [run] the CLI / tests / bench share.

   Everything is deterministic: files are discovered with [Sys.readdir]
   and sorted, findings carry root-relative paths and are sorted by
   [Finding.compare], so two runs over one tree produce byte-identical
   JSON. *)

type rule = { id : string; severity : Tm_analysis.Finding.severity; doc : string }

let parse_rule = "static-parse"

let rules =
  [
    {
      id = Rule_contract.rule;
      severity = Tm_analysis.Finding.Error;
      doc =
        "a core's seam emissions disagree with the Algo announcement tables";
    };
    {
      id = Rule_guard.rule;
      severity = Tm_analysis.Finding.Error;
      doc = "a seam emission is not dominated by its Atomic.get armed guard";
    };
    {
      id = Rule_purity.rule;
      severity = Tm_analysis.Finding.Error;
      doc = "a non-rollbackable effect inside an atomically body";
    };
    {
      id = Rule_leak.rule;
      severity = Tm_analysis.Finding.Error;
      doc = "a seam armed by a test without a paired uninstall/recover";
    };
    {
      id = parse_rule;
      severity = Tm_analysis.Finding.Error;
      doc = "a file in the rule's scope does not parse";
    };
  ]

let rule_ids = List.map (fun r -> r.id) rules

let find_rule id = List.find_opt (fun r -> r.id = id) rules

let parse_selection s =
  match String.trim s with
  | "all" | "" -> Ok rule_ids
  | s ->
      let ids =
        List.filter_map
          (fun x ->
            let x = String.trim x in
            if x = "" then None else Some x)
          (String.split_on_char ',' s)
      in
      let unknown = List.filter (fun id -> find_rule id = None) ids in
      if unknown = [] then Ok ids
      else
        Error
          (Fmt.str "unknown rule(s) %s (valid: all, %s)"
             (String.concat ", " unknown)
             (String.concat ", " rule_ids))

let pp_catalogue ppf () =
  List.iter
    (fun r ->
      Fmt.pf ppf "%-14s %-8s %s@." r.id
        (Tm_analysis.Finding.severity_label r.severity)
        r.doc)
    rules

(* --- root discovery --- *)

let looks_like_root dir =
  Sys.file_exists (Filename.concat dir (Filename.concat "lib" "stm"))
  && Sys.file_exists (Filename.concat dir "dune-project")

(* Walk upward from [from] (default: the working directory) to the
   first directory containing dune-project and lib/stm — works from
   the repo root, from a subdirectory, and from dune's _build/default
   mirror. *)
let find_root ?from () =
  let rec up dir n =
    if n > 12 then None
    else if looks_like_root dir then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent (n + 1)
  in
  let from =
    match from with
    | Some d -> d
    | None -> ( try Sys.getcwd () with Sys_error _ -> ".")
  in
  up from 0

(* --- file selection --- *)

let ml_files root rel =
  let dir = Filename.concat root rel in
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".ml")
    |> List.sort String.compare
    |> List.map (fun f -> Filename.concat rel f)

let core_file_of_module m = String.lowercase_ascii m ^ ".ml"

type report = { findings : Tm_analysis.Finding.t list; files_scanned : int }

let run ?(rules = rule_ids) ~root () =
  let wants id = List.mem id rules in
  let findings = ref [] in
  let add fs = findings := fs @ !findings in
  let scanned = ref 0 in
  let parse_failure rel msg =
    if wants parse_rule then
      add
        [
          Tm_analysis.Finding.v ~rule:parse_rule
            ~severity:Tm_analysis.Finding.Error ~subject:rel msg;
        ]
  in
  (* Parse a root-relative file once; count it and report parse
     failures.  Memoized so rules sharing a file share the tree. *)
  let cache : (string, Source.t option) Hashtbl.t = Hashtbl.create 32 in
  let load rel =
    match Hashtbl.find_opt cache rel with
    | Some r -> r
    | None ->
        incr scanned;
        let r =
          match Source.load ~subject:rel (Filename.concat root rel) with
          | Ok src -> Some src
          | Error msg ->
              parse_failure rel msg;
              None
        in
        Hashtbl.add cache rel r;
        r
  in
  let facade_rel = "lib/stm/stm.ml" in
  let core_rel = "lib/stm/stm_core.ml" in
  if not (Sys.file_exists (Filename.concat root facade_rel)) then
    Error (Fmt.str "%s: no %s under this root (not a repo checkout?)" root facade_rel)
  else begin
    (* Seam rules: the facade, the substrate and the announced cores. *)
    (if wants Rule_contract.rule || wants Rule_guard.rule then
       match (load core_rel, load facade_rel) with
       | Some core_src, Some facade_src -> (
           match
             (Seam.vocab_of_core core_src, Seam.contract_of_facade facade_src)
           with
           | Ok vocab, Ok contract ->
               let cores =
                 List.filter_map
                   (fun (algo, m) ->
                     let rel =
                       Filename.concat "lib/stm" (core_file_of_module m)
                     in
                     if Sys.file_exists (Filename.concat root rel) then
                       Option.map (fun s -> (algo, s)) (load rel)
                     else begin
                       if wants Rule_contract.rule then
                         add
                           [
                             Tm_analysis.Finding.v ~rule:Rule_contract.rule
                               ~severity:Tm_analysis.Finding.Error
                               ~subject:facade_src.Source.path
                               (Fmt.str
                                  "core_of dispatches %s to %s, but %s does \
                                   not exist"
                                  algo m rel);
                           ];
                       None
                     end)
                   contract.Seam.c_core_files
               in
               if wants Rule_contract.rule then
                 add (Rule_contract.check ~vocab ~contract ~facade_src cores);
               if wants Rule_guard.rule then begin
                 add (Rule_guard.check facade_src);
                 List.iter (fun (_, src) -> add (Rule_guard.check src)) cores
               end
           | (Error msg, _ | _, Error msg) -> parse_failure "lib/stm" msg)
       | _ -> ());
    (* Purity: transaction call sites across the tree. *)
    let txn_files =
      List.filter
        (fun f -> String.starts_with ~prefix:"txn_" (Filename.basename f))
        (ml_files root "lib/stm")
    in
    let user_files =
      ml_files root "test" @ ml_files root "bench" @ ml_files root "examples"
    in
    if wants Rule_purity.rule then
      List.iter
        (fun rel ->
          match load rel with
          | Some src -> add (Rule_purity.check src)
          | None -> ())
        (txn_files @ user_files);
    (* Armed leaks: test/bench/example lifecycles. *)
    if wants Rule_leak.rule then
      List.iter
        (fun rel ->
          match load rel with
          | Some src -> add (Rule_leak.check src)
          | None -> ())
        user_files;
    let findings =
      List.sort_uniq Tm_analysis.Finding.compare !findings
      |> List.filter (fun (f : Tm_analysis.Finding.t) ->
             List.mem f.Tm_analysis.Finding.rule rules)
    in
    Ok { findings; files_scanned = !scanned }
  end
