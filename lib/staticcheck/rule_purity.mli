(** txn-purity: non-rollbackable effects inside [atomically] bodies.
    Errors for effects that cannot be undone (I/O, printing, [Random],
    [Domain.spawn], [Mutex]/[Condition]/[Semaphore], [Unix]); warnings
    for mutation of state created outside the body.  Suppressible with
    a [tmstatic: allow txn-purity] comment on the offending line or the
    line above. *)

val rule : string

val check : Source.t -> Tm_analysis.Finding.t list
