(** A parsed OCaml source file for the static rules: the compiler-libs
    parsetree plus line-anchored [tmstatic: allow] escape comments and
    longident helpers shared by every rule. *)

type t = {
  path : string;  (** the subject string used in findings *)
  text : string;
  structure : Parsetree.structure;
  allows : allow list;
}

and allow = { a_line : int; a_rules : string list (* [] = every rule *) }

val allow_marker : string
(** ["tmstatic: allow"] — the escape-comment marker. *)

val of_string : path:string -> string -> (t, string) result
(** Parse an implementation from a string; [path] labels findings and
    parse errors. *)

val load : ?subject:string -> string -> (t, string) result
(** Read and parse [file]; [subject] (default [file]) labels findings. *)

val allows : t -> rule:string -> line:int -> bool
(** Is there a [tmstatic: allow] comment for [rule] on [line] or the
    line above it? An allow comment naming no rules allows every rule. *)

val line_of : Location.t -> int
(** 1-based start line of a location. *)

val lid_last : Longident.t -> string
(** The last component: [Stm_core.Chaos.fire] -> ["fire"]. *)

val lid_parent : Longident.t -> string option
(** The component immediately qualifying the last one:
    [Stm_core.Chaos.fire] -> [Some "Chaos"]; [Lident _] -> [None]. *)
