(* The machine-read seam contract.

   Rather than hard-coding the Chaos/Tel/Blame vocabularies and the
   per-algorithm announcement tables, the checker parses them out of
   the same sources the compiler builds: the constructor lists of
   [Chaos.point] / [Tel.phase] / [Blame.cause] in [stm_core.ml], and
   the literal lists returned by [Algo.tel_phases] / [Algo.chaos_points]
   / [Algo.blame_causes] plus the [core_of] dispatch in [stm.ml].  A
   constructor added to a seam or a core added to the zoo is picked up
   with no checker change — and a checker that fails to find the tables
   reports that as an error instead of silently passing. *)

open Parsetree

type kind = Tel | Chaos | Blame

let kind_module = function Tel -> "Tel" | Chaos -> "Chaos" | Blame -> "Blame"

let kind_table = function
  | Tel -> "tel_phases"
  | Chaos -> "chaos_points"
  | Blame -> "blame_causes"

type vocab = { phases : string list; points : string list; causes : string list }

let vocab_of kind v =
  match kind with Tel -> v.phases | Chaos -> v.points | Blame -> v.causes

(* [Tel] phases the facade's retry loop emits for every core; a core's
   own required set is its announced set minus these. *)
let facade_kind = Tel

type announcement = {
  an_algo : string;  (** [Algo.t] constructor, e.g. ["Global_lock"] *)
  an_kind : kind;
  an_ctors : string list;  (** in announcement order *)
  an_line : int;  (** line of the matching table case in [stm.ml] *)
}

type contract = {
  c_algos : string list;
  c_core_files : (string * string) list;
      (** algo constructor -> core module name, e.g. ["Stm_tl2"] *)
  c_announced : announcement list;
}

let announced c ~algo ~kind =
  List.find_opt (fun a -> a.an_algo = algo && a.an_kind = kind) c.c_announced

(* --- vocabulary: the seam variant declarations in stm_core.ml --- *)

let ctor_names_of_type_decl (td : type_declaration) =
  match td.ptype_kind with
  | Ptype_variant ctors ->
      Some (List.map (fun c -> c.pcd_name.Location.txt) ctors)
  | _ -> None

let variant_in_module ~module_name ~type_name structure =
  let found = ref None in
  List.iter
    (fun (si : structure_item) ->
      match si.pstr_desc with
      | Pstr_module mb
        when mb.pmb_name.Location.txt = Some module_name ->
          let rec in_mod (me : module_expr) =
            match me.pmod_desc with
            | Pmod_structure items ->
                List.iter
                  (fun (si : structure_item) ->
                    match si.pstr_desc with
                    | Pstr_type (_, tds) ->
                        List.iter
                          (fun td ->
                            if td.ptype_name.Location.txt = type_name then
                              match ctor_names_of_type_decl td with
                              | Some cs -> found := Some cs
                              | None -> ())
                          tds
                    | _ -> ())
                  items
            | Pmod_constraint (me, _) | Pmod_functor (_, me) -> in_mod me
            | _ -> ()
          in
          in_mod mb.pmb_expr
      | _ -> ())
    structure;
  !found

let vocab_of_core (src : Source.t) =
  let get m ty =
    match variant_in_module ~module_name:m ~type_name:ty src.structure with
    | Some cs -> Ok cs
    | None -> Error (Fmt.str "%s: cannot find type %s.%s" src.path m ty)
  in
  match (get "Tel" "phase", get "Chaos" "point", get "Blame" "cause") with
  | Ok phases, Ok points, Ok causes -> Ok { phases; points; causes }
  | (Error _ as e), _, _ | _, (Error _ as e), _ | _, _, (Error _ as e) -> e

(* --- the Algo announcement tables and core_of dispatch in stm.ml --- *)

(* A contract table is written as [let tel_phases = function ...] with
   every case mapping (possibly or-patterns of) Algo constructors to a
   literal list of seam constructors. *)

let rec pattern_algos (p : pattern) =
  match p.ppat_desc with
  | Ppat_construct (lid, None) -> [ Source.lid_last lid.Location.txt ]
  | Ppat_or (a, b) -> pattern_algos a @ pattern_algos b
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> pattern_algos p
  | _ -> []

let rec list_literal_ctors (e : expression) =
  match e.pexp_desc with
  | Pexp_construct ({ Location.txt = Longident.Lident "[]"; _ }, None) ->
      Some []
  | Pexp_construct
      ({ Location.txt = Longident.Lident "::"; _ }, Some { pexp_desc = Pexp_tuple [ hd; tl ]; _ }) -> (
      match (hd.pexp_desc, list_literal_ctors tl) with
      | Pexp_construct (lid, None), Some rest ->
          Some (Source.lid_last lid.Location.txt :: rest)
      | _ -> None)
  | _ -> None

let table_cases (e : expression) =
  match e.pexp_desc with
  | Pexp_function cases -> Some cases
  | Pexp_fun (_, _, _, { pexp_desc = Pexp_match (_, cases); _ }) -> Some cases
  | _ -> None

let announcements_of_binding kind (vb : value_binding) =
  match table_cases vb.pvb_expr with
  | None -> []
  | Some cases ->
      List.concat_map
        (fun (c : case) ->
          match list_literal_ctors c.pc_rhs with
          | None -> []
          | Some ctors ->
              List.map
                (fun algo ->
                  {
                    an_algo = algo;
                    an_kind = kind;
                    an_ctors = ctors;
                    an_line = Source.line_of c.pc_rhs.pexp_loc;
                  })
                (pattern_algos c.pc_lhs))
        cases

(* [core_of] maps each Algo constructor to a first-class core module:
   [| Algo.Tl2 -> (module Stm_tl2)]. *)
let rec core_module_of_expr (e : expression) =
  match e.pexp_desc with
  | Pexp_pack { pmod_desc = Pmod_ident lid; _ } ->
      Some (Source.lid_last lid.Location.txt)
  | Pexp_pack { pmod_desc = Pmod_constraint ({ pmod_desc = Pmod_ident lid; _ }, _); _ }
    ->
      Some (Source.lid_last lid.Location.txt)
  | Pexp_constraint (e, _) -> core_module_of_expr e
  | _ -> None

let core_files_of_binding (vb : value_binding) =
  let expr =
    match vb.pvb_expr.pexp_desc with
    | Pexp_constraint (e, _) -> e
    | _ -> vb.pvb_expr
  in
  match table_cases expr with
  | None -> []
  | Some cases ->
      List.concat_map
        (fun (c : case) ->
          match core_module_of_expr c.pc_rhs with
          | None -> []
          | Some m -> List.map (fun a -> (a, m)) (pattern_algos c.pc_lhs))
        cases

let binding_name (vb : value_binding) =
  match vb.pvb_pat.ppat_desc with
  | Ppat_var v -> Some v.Location.txt
  | Ppat_constraint ({ ppat_desc = Ppat_var v; _ }, _) -> Some v.Location.txt
  | _ -> None

let contract_of_facade (src : Source.t) =
  let announced = ref [] in
  let core_files = ref [] in
  let algos = ref [] in
  let scan_bindings vbs =
    List.iter
      (fun vb ->
        match binding_name vb with
        | Some "tel_phases" ->
            announced := !announced @ announcements_of_binding Tel vb
        | Some "chaos_points" ->
            announced := !announced @ announcements_of_binding Chaos vb
        | Some "blame_causes" ->
            announced := !announced @ announcements_of_binding Blame vb
        | Some "core_of" -> core_files := !core_files @ core_files_of_binding vb
        | _ -> ())
      vbs
  in
  List.iter
    (fun (si : structure_item) ->
      match si.pstr_desc with
      | Pstr_value (_, vbs) -> scan_bindings vbs
      | Pstr_module mb when mb.pmb_name.Location.txt = Some "Algo" -> (
          match mb.pmb_expr.pmod_desc with
          | Pmod_structure items ->
              List.iter
                (fun (si : structure_item) ->
                  match si.pstr_desc with
                  | Pstr_value (_, vbs) -> scan_bindings vbs
                  | Pstr_type (_, tds) ->
                      List.iter
                        (fun td ->
                          if td.ptype_name.Location.txt = "t" then
                            match ctor_names_of_type_decl td with
                            | Some cs -> algos := cs
                            | None -> ())
                        tds
                  | _ -> ())
                items
          | _ -> ())
      | _ -> ())
    src.structure;
  if !algos = [] then Error (Fmt.str "%s: cannot find module Algo's type t" src.path)
  else if !core_files = [] then
    Error (Fmt.str "%s: cannot find the core_of dispatch table" src.path)
  else if !announced = [] then
    Error
      (Fmt.str "%s: cannot find the Algo announcement tables (%s)" src.path
         (String.concat ", " (List.map kind_table [ Tel; Chaos; Blame ])))
  else
    Ok { c_algos = !algos; c_core_files = !core_files; c_announced = !announced }

(* --- emission sites --- *)

type site = { s_kind : kind; s_ctor : string; s_line : int }

(* Every qualified seam constructor in expression position is an
   emission site: the cores only ever mention [Tel.X]/[Chaos.X]/
   [Blame.X] payload constructors when handing them to the seam
   ([Chaos.fire Chaos.Read], [tp.Tel.count Tel.Read],
   [Blame.emit ... Blame.Validation], or through a local helper).
   Pattern positions (the [match Chaos.decide p with] arms) are not
   expressions and never match. *)
let sites (vocab : vocab) ?skip_module (src : Source.t) =
  let acc = ref [] in
  let classify lid =
    match (Source.lid_parent lid, Source.lid_last lid) with
    | Some "Tel", c when List.mem c vocab.phases -> Some (Tel, c)
    | Some "Chaos", c when List.mem c vocab.points -> Some (Chaos, c)
    | Some "Blame", c when List.mem c vocab.causes -> Some (Blame, c)
    | _ -> None
  in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_construct (lid, _) -> (
              match classify lid.Location.txt with
              | Some (k, c) ->
                  acc :=
                    { s_kind = k; s_ctor = c; s_line = Source.line_of e.pexp_loc }
                    :: !acc
              | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
      module_binding =
        (fun self mb ->
          match skip_module with
          | Some m when mb.pmb_name.Location.txt = Some m -> ()
          | _ -> Ast_iterator.default_iterator.module_binding self mb);
    }
  in
  iter.structure iter src.structure;
  List.rev !acc
