(* seam-contract: cross-check each core's actual emission sites against
   the announcements in [Stm.Algo], in both directions.

   - Unannounced emission: a core mentions a seam constructor the
     matching [Algo] table does not list — telemetry labels, chaos
     verdicts and blame attribution built on the announcement would
     silently miss it.
   - Missing emission: a table announces a constructor with no site in
     the core (facade-universal Tel phases excepted) — dynamic tests
     keyed on the announcement can never observe it.
   - Duplicate announcement: a table lists a constructor twice.

   The rule takes announcements at face value ([stm.ml] is the contract;
   the cores are the implementation under test). *)

let rule = "seam-contract"

let finding ~subject ~line message =
  Tm_analysis.Finding.v ~rule ~severity:Tm_analysis.Finding.Error ~subject
    ~location:(Tm_analysis.Finding.At_line line) message

(* Tel Begin/Commit/Abort are emitted by the facade's retry loop for
   every core; which ones is read off the facade's own sites rather
   than hard-coded. *)
let facade_ctors vocab facade_src =
  Seam.sites vocab ~skip_module:"Algo" facade_src
  |> List.filter_map (fun (s : Seam.site) ->
         if s.s_kind = Seam.facade_kind then Some s.s_ctor else None)
  |> List.sort_uniq String.compare

let rec dups = function
  | [] -> []
  | x :: rest -> if List.mem x rest then x :: dups rest else dups rest

let check_core ~vocab ~contract ~facade ~facade_subject ~algo (core : Source.t)
    =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let core_sites = Seam.sites vocab core in
  List.iter
    (fun kind ->
      match Seam.announced contract ~algo ~kind with
      | None ->
          add
            (finding ~subject:facade_subject ~line:1
               (Fmt.str "Algo.%s has no case covering %s" (Seam.kind_table kind)
                  algo))
      | Some an ->
          List.iter
            (fun c ->
              add
                (finding ~subject:facade_subject ~line:an.Seam.an_line
                   (Fmt.str "Algo.%s announces %s.%s twice for %s"
                      (Seam.kind_table kind) (Seam.kind_module kind) c algo)))
            (dups an.Seam.an_ctors);
          (* Direction 1: no unannounced emission. *)
          List.iter
            (fun (s : Seam.site) ->
              if s.s_kind = kind && not (List.mem s.s_ctor an.Seam.an_ctors)
              then
                add
                  (finding ~subject:core.path ~line:s.s_line
                     (Fmt.str
                        "emits %s.%s, which Algo.%s does not announce for %s"
                        (Seam.kind_module kind) s.s_ctor (Seam.kind_table kind)
                        algo)))
            core_sites;
          (* Direction 2: every announced constructor has >= 1 site
             (in the core, or — for Tel — in the facade's retry loop). *)
          let emitted c =
            List.exists
              (fun (s : Seam.site) -> s.s_kind = kind && s.s_ctor = c)
              core_sites
            || (kind = Seam.facade_kind && List.mem c facade)
          in
          List.iter
            (fun c ->
              if not (emitted c) then
                add
                  (finding ~subject:facade_subject ~line:an.Seam.an_line
                     (Fmt.str
                        "Algo.%s announces %s.%s for %s, but %s has no \
                         emission site for it"
                        (Seam.kind_table kind) (Seam.kind_module kind) c algo
                        core.path)))
            an.Seam.an_ctors)
    [ Seam.Tel; Seam.Chaos; Seam.Blame ];
  List.rev !findings

let check ~vocab ~contract ~facade_src cores =
  let facade = facade_ctors vocab facade_src in
  let facade_subject = facade_src.Source.path in
  List.concat_map
    (fun (algo, core) ->
      check_core ~vocab ~contract ~facade ~facade_subject ~algo core)
    cores
