(* Trace forensics: the full analysis pipeline on a dumped trace.

   Simulates a faulty run while recording a structured Tm_trace event
   stream (the same stream `tmlive trace` emits), dumps the head of the
   trace, round-trips it through the Chrome trace_event JSON codec, and
   then analyzes the run: the traced opacity monitor, empirical window
   classification, and — for a deterministic periodic run — exact lasso
   detection with liveness verdicts.

   Run with: dune exec examples/trace_forensics.exe *)

module Tev = Tm_trace.Trace_event

let () =
  (* 1. Produce a run and its trace: TinySTM with a parasitic process,
     round-robin.  The collector sink records every event the runner
     emits on its deterministic step clock. *)
  let entry = Option.get (Tm_impl.Registry.find "tinystm") in
  let spec =
    Tm_sim.Runner.spec ~nprocs:2 ~ntvars:1 ~steps:600 ~seed:3
      ~sched:Tm_sim.Runner.Round_robin
      ~fates:[ (1, Tm_sim.Runner.Parasitic_from 40) ]
      ()
  in
  let col = Tm_trace.Sink.collector () in
  let outcome =
    Tm_sim.Runner.run ~trace:(Tm_trace.Sink.collector_sink col) entry spec
  in
  let events = Tm_trace.Sink.collected col in
  Fmt.pr "recorded %d trace events; the first few:@." (List.length events);
  List.filteri (fun i _ -> i < 8) events
  |> List.iter (Fmt.pr "  %a@." Tev.pp);

  (* 2. Round-trip through the Chrome trace_event codec, as `tmlive
     trace` followed by a re-load would. *)
  let json = Tm_trace.Export.chrome_string events in
  Fmt.pr "@.serialized trace: %d bytes of Perfetto-loadable JSON@."
    (String.length json);
  (match Tm_trace.Export.of_chrome_string json with
  | Ok reloaded ->
      Fmt.pr "reloaded %d events; equal to the original: %b@.@."
        (List.length reloaded)
        (List.length reloaded = List.length events
        && List.for_all2 Tev.equal reloaded events)
  | Error m -> Fmt.failwith "re-load failed: %s" m);

  (* 3. Safety, with the monitor's own decisions streamed into a trace:
     one epoch counter per applied commit, and a final verdict event. *)
  let h = outcome.Tm_sim.Runner.history in
  let mcol = Tm_trace.Sink.collector () in
  (match
     Tm_safety.Monitor.run_traced
       ~trace:(Tm_trace.Sink.collector_sink mcol)
       h
   with
  | Tm_safety.Monitor.Accepted ->
      Fmt.pr "monitor: ACCEPTED — a serialization witness exists (opaque)@."
  | Tm_safety.Monitor.No_witness m -> Fmt.pr "monitor: no witness (%s)@." m);
  let mevents = Tm_trace.Sink.collected mcol in
  Fmt.pr "monitor trace: %d events, last one:@." (List.length mevents);
  (match List.rev mevents with
  | last :: _ -> Fmt.pr "  %a@." Tev.pp last
  | [] -> ());

  (* 4. Liveness, empirically: the parasite shows up in the window
     classification... *)
  Fmt.pr "@.window classification (last 100 events):@.";
  List.iter
    (Fmt.pr "  %a@." Tm_liveness.Empirical.pp_window_summary)
    (Tm_liveness.Empirical.classify_window ~window:100 h);

  (* ...and the run's periodic tail gives exact verdicts. *)
  (match Tm_liveness.Empirical.find_lasso h with
  | None -> Fmt.pr "@.no exactly periodic suffix@."
  | Some l ->
      Fmt.pr "@.periodic suffix found; exact verdicts:@.  %a@.  %a@."
        Tm_liveness.Process_class.pp_table
        (Tm_liveness.Process_class.classify l)
        Tm_liveness.Property.pp_verdict
        (Tm_liveness.Property.verdict l));

  (* 5. The headline: the parasite froze the solo runner (TinySTM's
     encounter-time locks), so p2 made no progress after step 40.  The
     fault is visible directly in the trace stream. *)
  let crashes =
    List.filter (fun (e : Tev.t) -> e.Tev.cat = Tev.Fault) events
  in
  Fmt.pr "@.fault events in the trace:@.";
  List.iter (Fmt.pr "  %a@." Tev.pp) crashes;
  Fmt.pr "p2 commits: %d, p2 aborts: %d — the parasite's encounter lock \
          starves it@."
    outcome.Tm_sim.Runner.commits.(2)
    outcome.Tm_sim.Runner.aborts.(2)
