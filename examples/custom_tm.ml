(* Tutorial: implement your own TM against Tm_intf and validate it with
   the library's pipeline — exhaustive schedule sweep + opacity monitor,
   the exact checker, and the Theorem-1 adversary.

   We write a plausible-looking TM with a classic bug (validation checks
   the read set only at commit, and reads return the current value without
   any snapshot check), let the pipeline find a minimal non-opaque
   schedule, then fix the bug and watch everything pass — including the
   adversary, which no fix can beat: p1 still starves, as Theorem 1
   demands.

   Run with: dune exec examples/custom_tm.exe *)

open Tm_history

(* A deferred-update TM with commit-time value validation.  The [checked]
   flag selects the buggy variant (no read-time consistency: a transaction
   can observe two different snapshots before it ever reaches commit). *)
module Make (Flag : sig
  val read_time_validation : bool
  val name : string
end) : Tm_impl.Tm_intf.S = struct
  type txn = {
    mutable reads : (Event.tvar * Event.value) list;
    mutable writes : (Event.tvar * Event.value) list;
  }

  type t = {
    cfg : Tm_impl.Tm_intf.config;
    mail : Tm_impl.Tm_intf.Mailbox.t;
    store : int array;
    txns : txn array;
  }

  let name = Flag.name
  let describe = "tutorial TM (examples/custom_tm.ml)"

  let create cfg =
    {
      cfg;
      mail = Tm_impl.Tm_intf.Mailbox.create cfg;
      store = Array.make cfg.ntvars 0;
      txns =
        Array.init (cfg.nprocs + 1) (fun _ -> { reads = []; writes = [] });
    }

  let invoke t p inv =
    Tm_impl.Tm_intf.Mailbox.check_range t.cfg p inv;
    Tm_impl.Tm_intf.Mailbox.put t.mail p inv

  let reads_valid t txn =
    List.for_all (fun (x, v) -> t.store.(x) = v) txn.reads

  let poll t p =
    match Tm_impl.Tm_intf.Mailbox.get t.mail p with
    | None -> None
    | Some inv ->
        let txn = t.txns.(p) in
        let reset () = t.txns.(p) <- { reads = []; writes = [] } in
        let resp =
          match inv with
          | Event.Read x -> (
              match List.assoc_opt x txn.writes with
              | Some v -> Event.Value v
              | None ->
                  (* THE BUG (when read_time_validation is false): return
                     the current value without checking that the reads so
                     far still hold, so two reads can come from two
                     different committed states. *)
                  if Flag.read_time_validation && not (reads_valid t txn)
                  then begin
                    reset ();
                    Event.Aborted
                  end
                  else begin
                    txn.reads <- (x, t.store.(x)) :: txn.reads;
                    Event.Value t.store.(x)
                  end)
          | Event.Write (x, v) ->
              txn.writes <- (x, v) :: txn.writes;
              Event.Ok_written
          | Event.Try_commit ->
              if reads_valid t txn then begin
                List.iter
                  (fun (x, v) -> t.store.(x) <- v)
                  (List.rev txn.writes);
                reset ();
                Event.Committed
              end
              else begin
                reset ();
                Event.Aborted
              end
        in
        Tm_impl.Tm_intf.Mailbox.clear t.mail p;
        Some resp

  let pending t p = Tm_impl.Tm_intf.Mailbox.get t.mail p
end

let entry_of (module M : Tm_impl.Tm_intf.S) =
  {
    Tm_impl.Registry.entry_name = M.name;
    entry_describe = M.describe;
    impl = (module M);
    responsive = true;
  }

let buggy =
  entry_of
    (module Make (struct
      let read_time_validation = false
      let name = "tutorial-buggy"
    end))

let fixed =
  entry_of
    (module Make (struct
      let read_time_validation = true
      let name = "tutorial-fixed"
    end))

(* The validation pipeline: exhaustive sweep + monitor, exact checker on
   fallback; returns the first non-opaque history found. *)
let validate entry ~depth =
  let counterexample = ref None in
  let checked = ref 0 in
  Tm_sim.Sweep.Exhaustive.run entry ~nprocs:2 ~ntvars:2
    ~invocations:
      [ Event.Read 0; Event.Read 1; Event.Write (0, 1); Event.Write (1, 1);
        Event.Try_commit ]
    ~depth
    ~on_history:(fun h _ ->
      incr checked;
      if !counterexample = None then
        match Tm_safety.Monitor.run h with
        | Tm_safety.Monitor.Accepted -> ()
        | Tm_safety.Monitor.No_witness _ ->
            if not (Tm_safety.Opacity.is_opaque h) then counterexample := Some h);
  (!checked, !counterexample)

let () =
  Fmt.pr "== validating %s ==@." buggy.Tm_impl.Registry.entry_name;
  let checked, cex = validate buggy ~depth:8 in
  (match cex with
  | None -> Fmt.pr "no counterexample in %d schedules (unexpected!)@." checked
  | Some h ->
      Fmt.pr "NON-OPAQUE history found after %d schedules:@.%a@." checked
        Pretty.pp_by_process h;
      Fmt.pr
        "the transaction reads two different committed states — the classic \
         inconsistent-snapshot bug.@.");
  Fmt.pr "@.== validating %s ==@." fixed.Tm_impl.Registry.entry_name;
  let checked, cex = validate fixed ~depth:8 in
  (match cex with
  | None -> Fmt.pr "all %d schedules opaque.@." checked
  | Some h ->
      Fmt.pr "unexpected counterexample:@.%a@." Pretty.pp_by_process h);
  (* And of course the adversary still wins — no fix can beat Theorem 1. *)
  let r =
    Tm_adversary.Adversary.run ~rounds:25 fixed
      Tm_adversary.Adversary.Algorithm_1
  in
  Fmt.pr
    "@.adversary vs the fixed TM: p1 commits %d times, p2 commits %d times \
     — local progress is impossible, as the paper proves.@."
    r.Tm_adversary.Adversary.victim_commits
    r.Tm_adversary.Adversary.winner_commits
