(* Shared plumbing for the tmlive subcommands: argument converters, the
   common simulation flags, the pooled sweep dispatch, and traced-run
   assembly (the pieces sweep/trace/analyze/chaos all need). *)

open Cmdliner

(* ---- converters ---- *)

let tm_conv =
  let parse s =
    match Tm_impl.Registry.find s with
    | Some e -> Ok e
    | None ->
        Error
          (`Msg
            (Fmt.str "unknown TM %S (try: %s)" s
               (String.concat ", " Tm_impl.Registry.names)))
  in
  let print ppf e = Fmt.string ppf e.Tm_impl.Registry.entry_name in
  Arg.conv (parse, print)

let sched_conv =
  let parse = function
    | "rr" | "round-robin" -> Ok Tm_sim.Runner.Round_robin
    | "uniform" | "random" -> Ok Tm_sim.Runner.Uniform
    | s -> (
        match int_of_string_opt s with
        | Some q when q > 0 -> Ok (Tm_sim.Runner.Quantum q)
        | Some _ | None ->
            Error (`Msg "scheduler: rr | uniform | <quantum size>"))
  in
  let print ppf = function
    | Tm_sim.Runner.Round_robin -> Fmt.string ppf "rr"
    | Tm_sim.Runner.Uniform -> Fmt.string ppf "uniform"
    | Tm_sim.Runner.Quantum q -> Fmt.pf ppf "%d" q
  in
  Arg.conv (parse, print)

let fault_conv =
  let names () = List.map fst (Tm_sim.Sweep.fault_patterns ()) in
  let parse s =
    if List.mem s (names ()) then Ok s
    else
      Error
        (`Msg
          (Fmt.str "unknown fault pattern %S (try: %s)" s
             (String.concat ", " (names ()))))
  in
  Arg.conv (parse, Fmt.string)

let scenario_conv =
  let parse s =
    if List.mem s Tm_chaos.Plan.scenarios then Ok s
    else
      Error
        (`Msg
          (Fmt.str "unknown scenario %S (try: %s)" s
             (String.concat ", " Tm_chaos.Plan.scenarios)))
  in
  Arg.conv (parse, Fmt.string)

let algo_conv : Tm_stm.Stm.Algo.t Arg.conv =
  let parse s =
    match Tm_stm.Stm.Algo.of_string s with
    | Ok a -> Ok a
    | Error m -> Error (`Msg m)
  in
  Arg.conv (parse, fun ppf a -> Fmt.string ppf (Tm_stm.Stm.Algo.name a))

let algo_arg ?(default = Tm_stm.Stm.Algo.Tl2) () =
  Arg.(
    value
    & opt algo_conv default
    & info [ "algo" ] ~docv:"ALGO"
        ~doc:
          (Fmt.str
             "STM algorithm to run: %s."
             (String.concat ", "
                (List.map
                   (fun a ->
                     Fmt.str "$(b,%s) (%s)" (Tm_stm.Stm.Algo.name a)
                       (Tm_stm.Stm.Algo.progress_label a))
                   Tm_stm.Stm.Algo.all))))

let profile_conv : Tm_serve.Workload.profile Arg.conv =
  let parse s =
    match Tm_serve.Workload.profile_of_string s with
    | Ok p -> Ok p
    | Error m -> Error (`Msg m)
  in
  Arg.conv
    (parse, fun ppf p -> Fmt.string ppf (Tm_serve.Workload.profile_name p))

let profile_arg ?(default = Tm_serve.Workload.Read_mostly) () =
  Arg.(
    value
    & opt profile_conv default
    & info [ "profile" ] ~docv:"PROFILE"
        ~doc:
          (Fmt.str "Workload profile: %s."
             (String.concat ", "
                (List.map
                   (fun p ->
                     Fmt.str "$(b,%s) (%s)"
                       (Tm_serve.Workload.profile_name p)
                       (Tm_serve.Workload.describe p))
                   Tm_serve.Workload.profiles))))

let arrival_conv : Tm_serve.Arrival.kind Arg.conv =
  let parse s =
    match Tm_serve.Arrival.kind_of_string s with
    | Some k -> Ok k
    | None ->
        Error
          (`Msg (Fmt.str "unknown arrival process %S (try: poisson, constant)" s))
  in
  Arg.conv
    (parse, fun ppf k -> Fmt.string ppf (Tm_serve.Arrival.kind_name k))

(* Rates are requests per second; every open-loop flag shares one
   converter so a zero, negative or NaN rate is rejected in one place
   with the same message. *)
let rate_conv : float Arg.conv =
  let parse s =
    match float_of_string_opt s with
    | Some r when r > 0.0 && Float.is_finite r -> Ok r
    | Some _ ->
        Error
          (`Msg
            (Fmt.str
               "rate %s: must be a positive (finite) number of requests \
                per second"
               s))
    | None -> Error (`Msg (Fmt.str "rate %S: not a number" s))
  in
  Arg.conv (parse, fun ppf r -> Fmt.pf ppf "%g" r)

let arrival_arg () =
  Arg.(
    value
    & opt (some arrival_conv) None
    & info [ "arrival" ] ~docv:"PROCESS"
        ~doc:
          "Open-loop arrival process: $(b,poisson) (exponential \
           inter-arrivals) or $(b,constant) (fixed period).  Requires \
           $(b,--rate); without this flag the run is closed-loop.")

let rate_arg () =
  Arg.(
    value
    & opt (some rate_conv) None
    & info [ "rate" ] ~docv:"REQ_PER_S"
        ~doc:"Offered arrival rate in requests per second (positive).")

let rates_arg ~default () =
  Arg.(
    value
    & opt (list rate_conv) default
    & info [ "rates" ] ~docv:"R1,R2,..."
        ~doc:
          "Rate ladder: comma-separated offered rates in requests per \
           second, swept in order (each positive).")

(* ---- the chaos-session flags (chaos / blame / top / serve) ---- *)

let domains_arg ?(default = 4) () =
  Arg.(
    value & opt int default
    & info [ "d"; "domains" ] ~doc:"Worker domains to spawn (>= 2).")

let warmup_arg () =
  Arg.(
    value & opt float 0.05
    & info [ "warmup" ] ~docv:"SECONDS"
        ~doc:"Settle time before the first watchdog sample.")

let window_arg () =
  Arg.(
    value & opt float 0.15
    & info [ "window" ] ~docv:"SECONDS"
        ~doc:"Observation window between the two watchdog samples.")

let scenario_arg ?(default = "healthy") () =
  Arg.(
    value
    & opt scenario_conv default
    & info [ "scenario" ] ~docv:"NAME"
        ~doc:"Fault scenario to inject (see $(b,chaos --list)).")

let out_arg ~doc () =
  Arg.(
    value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

(* ---- output-format flags ---- *)

(* One table/json converter for every subcommand that renders a document
   on stdout (chaos --format, sweep --metrics-format, analyze --format):
   same names, same error messages, one place to extend. *)
let table_json_conv : [ `Table | `Json ] Arg.conv =
  Arg.enum [ ("table", `Table); ("json", `Json) ]

let format_arg ?(names = [ "format" ]) ~doc () =
  Arg.(value & opt table_json_conv `Table & info names ~docv:"FORMAT" ~doc)

(* One --fail-on threshold for every findings-emitting subcommand
   (analyze, static): which severities turn into exit 1. *)
let fail_on_conv : Tm_analysis.Engine.fail_level Arg.conv =
  Arg.enum [ ("error", `Error); ("warning", `Warning); ("never", `Never) ]

let fail_on_arg () =
  Arg.(
    value
    & opt fail_on_conv `Error
    & info [ "fail-on" ] ~docv:"LEVEL"
        ~doc:
          "Exit 1 when findings at or above this severity are reported: \
           $(b,error) (the default), $(b,warning), or $(b,never) (always \
           exit 0).")

let telemetry_format_conv : [ `Openmetrics | `Jsonl ] Arg.conv =
  Arg.enum [ ("openmetrics", `Openmetrics); ("jsonl", `Jsonl) ]

let telemetry_arg ~doc () =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry" ] ~docv:"FILE" ~doc)

let telemetry_format_arg () =
  Arg.(
    value
    & opt telemetry_format_conv `Openmetrics
    & info [ "telemetry-format" ] ~docv:"FORMAT"
        ~doc:
          "Telemetry encoding: $(b,openmetrics) (Prometheus text \
           exposition of the final scrape) or $(b,jsonl) (one JSON object \
           per scrape — the whole time series).")

(* A telemetry sink for one command invocation: [add] collects scrape
   snapshots (plug it in as a sampler consumer / [on_sample]), [flush]
   writes them out.  OpenMetrics is a point-in-time exposition, so it
   gets the last snapshot; JSONL gets the whole series.  [file] "-"
   means stdout. *)
let telemetry_writer file format =
  let snaps = ref [] in
  let add s = snaps := s :: !snaps in
  let flush () =
    match List.rev !snaps with
    | [] -> ()
    | l ->
        let write oc =
          match format with
          | `Openmetrics ->
              let last = List.nth l (List.length l - 1) in
              output_string oc (Tm_telemetry.Export.to_openmetrics last)
          | `Jsonl ->
              List.iter
                (fun s ->
                  output_string oc (Tm_telemetry.Export.to_jsonl s);
                  output_char oc '\n')
                l
        in
        if file = "-" then begin
          (* Anything the command printed via Format must land first. *)
          Format.print_flush ();
          write stdout;
          flush stdout
        end
        else begin
          let oc = open_out file in
          write oc;
          close_out oc;
          Fmt.epr "telemetry: %d snapshot%s written to %s@." (List.length l)
            (if List.length l = 1 then "" else "s")
            file
        end
  in
  (add, flush)

(* The common [--telemetry FILE] wiring: an optional [on_sample]
   consumer plus an always-callable flush.  Every command that threads
   scrape snapshots into [telemetry_writer] goes through here instead
   of repeating the [Option.map] dance. *)
let telemetry_setup telemetry telemetry_format =
  match telemetry with
  | None -> (None, fun () -> ())
  | Some file ->
      let add, flush = telemetry_writer file telemetry_format in
      (Some add, flush)

(* ---- the common simulation flags (defaults vary per subcommand) ---- *)

let nprocs_arg ?(default = 3) () =
  Arg.(
    value & opt int default
    & info [ "p"; "procs" ] ~doc:"Number of processes.")

let ntvars_arg ?(default = 4) () =
  Arg.(
    value & opt int default
    & info [ "t"; "tvars" ] ~doc:"Number of t-variables.")

let steps_arg ?(default = 400) () =
  Arg.(value & opt int default & info [ "n"; "steps" ] ~doc:"Simulation steps.")

let seed_arg ?(default = 0) () =
  Arg.(value & opt int default & info [ "seed" ] ~doc:"PRNG seed.")

let sched_arg () =
  Arg.(
    value
    & opt sched_conv Tm_sim.Runner.Uniform
    & info [ "sched" ] ~doc:"Scheduler: rr, uniform, or a quantum size.")

let jobs_arg ~doc () =
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~doc)

let tms_arg ~doc () =
  Arg.(value & opt (list tm_conv) [] & info [ "tm" ] ~docv:"NAMES" ~doc)

let faults_arg ~doc () =
  Arg.(value & opt (list fault_conv) [] & info [ "faults" ] ~docv:"PATTERNS" ~doc)

let resolve_patterns ~nprocs ~ntvars ~steps ~sched faults =
  let all = Tm_sim.Sweep.fault_patterns ~nprocs ~ntvars ~steps ~sched () in
  match faults with
  | [] -> all
  | names ->
      (* Names were validated by [fault_conv]; the assoc cannot fail. *)
      List.map (fun n -> (n, List.assoc n all)) names

(* ---- sweep dispatch ---- *)

(* One place decides sequential vs pooled execution; results are
   bit-for-bit identical for every [jobs] value. *)
let run_sweep ~jobs ~trace configs =
  let jobs = max 1 jobs in
  if jobs > 1 then
    Tm_sim.Pool.with_pool ~jobs (fun pool ->
        Tm_sim.Sweep.run ~pool ~trace configs)
  else Tm_sim.Sweep.run ~trace configs

(* ---- traced-run assembly ---- *)

module Tev = Tm_trace.Trace_event

let metadata_event ~pid label =
  {
    Tev.ts = 0;
    pid;
    tid = 0;
    cat = Tev.Sched;
    name = "process_name";
    phase = Tev.Metadata;
    args = [ ("name", Tev.Str label) ];
  }

(* A run's full trace: a process-name metadata record, the runner's
   events, then the monitor's streamed verdict events — all tagged with
   the run's grid index as pid, so a trace viewer shows one process lane
   per configuration.  Composing in canonical grid order makes the merged
   trace independent of how the sweep was sharded across jobs. *)
let run_trace_events i (r : Tm_sim.Sweep.result) =
  let retag (e : Tev.t) = { e with Tev.pid = i } in
  let col = Tm_trace.Sink.collector () in
  ignore
    (Tm_safety.Monitor.run_traced
       ~trace:(Tm_trace.Sink.collector_sink col)
       r.Tm_sim.Sweep.r_outcome.Tm_sim.Runner.history);
  (metadata_event ~pid:i (Tm_sim.Sweep.label r.Tm_sim.Sweep.r_config)
  :: List.map retag r.Tm_sim.Sweep.r_trace)
  @ List.map retag (Tm_trace.Sink.collected col)

let combined_trace results = List.concat (List.mapi run_trace_events results)

let write_trace_file file events =
  let oc = open_out file in
  Tm_trace.Export.to_chrome_channel oc events;
  close_out oc

let read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A real multicore workload on the [Stm] runtime, traced: [jobs] domains
   transfer between [ntvars] accounts.  Returns the recorded events (and
   checks conservation as a sanity net). *)
let stm_demo_events ~jobs ~ntvars ~steps =
  let module Stm = Tm_stm.Stm in
  let n = max 2 ntvars in
  let accounts = Array.init n (fun _ -> Stm.tvar 1000) in
  Stm.Trace.start ~capacity:(1 lsl 18) ();
  let worker k () =
    let st = ref (k + 1) in
    for _ = 1 to steps do
      let r = (!st * 48271) mod 0x7FFFFFFF in
      st := r;
      let src = r mod n and dst = (r / n) mod n in
      Stm.atomically (fun () ->
          let v = Stm.read accounts.(src) in
          Stm.write accounts.(src) (v - 1);
          Stm.write accounts.(dst) (Stm.read accounts.(dst) + 1))
    done
  in
  let domains = List.init (max 1 jobs) (fun k -> Domain.spawn (worker k)) in
  List.iter Domain.join domains;
  Stm.Trace.stop ();
  let total = Array.fold_left (fun acc a -> acc + Stm.read a) 0 accounts in
  if total <> 1000 * n then
    Fmt.epr "stm demo: conservation broken (%d /= %d)!@." total (1000 * n);
  (Stm.Trace.events (), Stm.Trace.dropped ())
