(* The `tmlive top` renderer: a chaos session observed live.

   Each frame sleeps, updates the liveness gauge, scrapes the session
   registry and redraws: one row per worker domain (commit/abort rates
   over the last frame, injected-fault count, current Figure-2 class)
   plus the STM phase-latency percentiles from the armed
   [Tm_telemetry.Stm_probe].  Everything rendered comes out of the
   scrape snapshot — the dashboard is just another telemetry consumer,
   so [--telemetry] exports exactly what was on screen. *)

module Tel = Tm_telemetry
module Runner = Tm_chaos.Runner
module Plan = Tm_chaos.Plan

let dom d = [ ("domain", string_of_int d) ]

let num snap name d =
  Option.value ~default:0 (Tel.Registry.sample_num snap ~name ~labels:(dom d))

(* Both session flavours register the same counter suffixes under their
   own prefix: "tm_chaos" for `top`, "tm_serve" for `top --serve`. *)
let aborts_of ~prefix snap d =
  max 0
    (num snap (prefix ^ "_attempts_total") d
    - num snap (prefix ^ "_commits_total") d)

(* Latencies are nanoseconds; pick the unit that keeps 3 digits. *)
let pp_ns ppf ns =
  if ns >= 1_000_000_000 then Fmt.pf ppf "%.2fs" (float ns /. 1e9)
  else if ns >= 1_000_000 then Fmt.pf ppf "%.1fms" (float ns /. 1e6)
  else if ns >= 1_000 then Fmt.pf ppf "%.1fus" (float ns /. 1e3)
  else Fmt.pf ppf "%dns" ns

let phase_rows =
  [
    ("lock-acquire", "tm_stm_lock_acquire_ns");
    ("validate", "tm_stm_validate_ns");
    ("publish", "tm_stm_publish_ns");
    ("commit", "tm_stm_commit_ns");
    ("abort", "tm_stm_abort_ns");
  ]

(* The blame panel: the heaviest live who-aborted-whom edges and each
   domain's progress watermark.  Raw weights are fine here — this is
   the human view; the deterministic classification is `tmlive blame`'s
   job. *)
let render_blame g =
  let module Bg = Tel.Blame_graph in
  Bg.refresh g;
  Fmt.pr "@.blame graph (events=%d):@." (Bg.clock g);
  let slot = function -1 -> "d?" | d -> "d" ^ string_of_int d in
  let edges =
    List.sort
      (fun (_, _, a) (_, _, b) -> Int.compare b a)
      (Bg.edges g)
  in
  let top = List.filteri (fun i _ -> i < 6) edges in
  if top = [] then Fmt.pr "  (no blame events yet)@."
  else
    List.iter
      (fun (v, a, n) ->
        let causes =
          String.concat ", "
            (List.map
               (fun (c, k) ->
                 Fmt.str "%s=%d" (Tm_stm.Stm.Blame.cause_label c) k)
               (Bg.edge_causes g ~victim:v ~aggressor:a))
        in
        Fmt.pr "  %-4s -> %-4s %8d  [%s]@." (slot v) (slot a) n causes)
      top;
  Fmt.pr "  wait-age:";
  for d = 0 to Bg.domains g - 1 do
    Fmt.pr " d%d=%d" d (Bg.wait_age g d)
  done;
  Fmt.pr "@."

(* The open-loop latency panel: sojourn percentiles from the hires
   histogram, the coordinated-omission split (open vs closed p99) and
   each domain's starvation age — all read from the scrape, which
   [observe] refreshes via [Latency_recorder.publish] each frame.
   Sessions opened without the recorder simply have no such series and
   the panel stays hidden. *)
let render_latency ~prefix ~nd snap =
  let m = prefix ^ "_lat" in
  match
    Tel.Registry.sample_hist snap ~name:(m ^ "_sojourn_ns") ~labels:[]
  with
  | None -> ()
  | Some h ->
      Fmt.pr "@.open-loop latency (sojourn since scheduled arrival):@.";
      (if h.Tel.Instrument.count = 0 then Fmt.pr "  (no completions yet)@."
       else
         let q p = Fmt.str "%a" pp_ns (Tel.Instrument.hires_quantile h p) in
         Fmt.pr "  sojourn n=%d p50=%s p99=%s p99.9=%s max=%a@."
           h.Tel.Instrument.count (q 0.50) (q 0.99) (q 0.999) pp_ns
           h.Tel.Instrument.max_sample);
      let gauge name =
        Option.value ~default:0
          (Tel.Registry.sample_num snap ~name ~labels:[])
      in
      Fmt.pr "  p99 open=%a closed=%a" pp_ns
        (gauge (m ^ "_open_p99_ns"))
        pp_ns
        (gauge (m ^ "_closed_p99_ns"));
      Fmt.pr "   starvation-age:";
      for d = 0 to nd - 1 do
        Fmt.pr " d%d=%a" d pp_ns (num snap (m ^ "_oldest_inflight_age_ns") d)
      done;
      Fmt.pr "@."

let render ~plain ~prefix ~title ~plan ~frame ~frames ~period ~prev ~blame
    snap =
  if not plain then print_string "\027[2J\027[H";
  let nd = plan.Plan.domains in
  let rate cur pre = float (max 0 (cur - pre)) /. period in
  let dsnap name d = num snap name d in
  let dprev name d = match prev with Some p -> num p name d | None -> 0 in
  Fmt.pr
    "tmlive top — %s %s algo=%s seed=%d domains=%d    frame %d/%d  ts=%dms@."
    title plan.Plan.scenario
    (Tm_stm.Stm.Algo.name plan.Plan.algo)
    plan.Plan.seed nd frame frames snap.Tel.Registry.ts;
  Fmt.pr "@.%-7s %-22s %10s %10s %8s %8s %-12s@." "domain" "fault" "commit/s"
    "abort/s" "commits" "faults" "class";
  for d = 0 to nd - 1 do
    let commits = dsnap (prefix ^ "_commits_total") d in
    let cls =
      Option.value ~default:"?"
        (Tel.Registry.sample_state snap ~name:"tm_liveness_class"
           ~labels:(dom d))
    in
    let crashed =
      Tel.Registry.sample_num snap ~name:(prefix ^ "_crashed") ~labels:(dom d)
      = Some 1
    in
    Fmt.pr "%-7d %-22s %10.0f %10.0f %8d %8d %-12s@." d
      (Plan.fault_label plan.Plan.faults.(d))
      (rate commits (dprev (prefix ^ "_commits_total") d))
      (rate
         (aborts_of ~prefix snap d)
         (match prev with Some p -> aborts_of ~prefix p d | None -> 0))
      commits
      (dsnap (prefix ^ "_injected_total") d)
      (cls ^ if crashed then " [dead]" else "")
  done;
  Fmt.pr "@.STM phase latencies (since start):@.";
  Fmt.pr "%-14s %10s %8s %8s %8s %8s@." "phase" "count" "p50" "p90" "p99"
    "max";
  List.iter
    (fun (label, name) ->
      match Tel.Registry.sample_hist snap ~name ~labels:[] with
      | None -> ()
      | Some h ->
          if h.Tel.Instrument.count = 0 then
            Fmt.pr "%-14s %10d %8s %8s %8s %8s@." label 0 "-" "-" "-" "-"
          else
            let q p = Fmt.str "%a" pp_ns (Tel.Instrument.quantile h p) in
            Fmt.pr "%-14s %10d %8s %8s %8s %8s@." label
              h.Tel.Instrument.count (q 0.50) (q 0.90) (q 0.99)
              (Fmt.str "%a" pp_ns h.Tel.Instrument.max_sample))
    phase_rows;
  render_latency ~prefix ~nd snap;
  (match blame with Some g -> render_blame g | None -> ());
  Fmt.pr "%!"

(* The shared observation loop: sleep, advance the liveness gauge,
   scrape on the wall-ms clock, export, render.  Both session flavours
   differ only in how the session is opened and which metric prefix
   their counters carry. *)
let observe ~prefix ~title ~plan ~period ~frames ~plain ~tel ~tty ~reg
    ~liveness ~blame ~latency =
  let t0 = Unix.gettimeofday () in
  let prev = ref None in
  for frame = 1 to frames do
    Unix.sleepf period;
    ignore (Tel.Liveness_gauge.update liveness);
    let ts = int_of_float ((Unix.gettimeofday () -. t0) *. 1000.) in
    Option.iter Tel.Blame_graph.refresh blame;
    Option.iter
      (fun r ->
        Tel.Latency_recorder.publish r ~now:(Tel.Latency_recorder.now_ns ()))
      latency;
    let snap = Tel.Registry.scrape reg ~ts in
    (match tel with Some (add, _) -> add snap | None -> ());
    if tty || frame = frames then
      render ~plain ~prefix ~title ~plan ~frame ~frames ~period ~prev:!prev
        ~blame snap;
    prev := Some snap
  done

let with_display ~plain ~telemetry ~telemetry_format f =
  let tel =
    Option.map
      (fun file -> Cli_common.telemetry_writer file telemetry_format)
      telemetry
  in
  (* Redrawing in place needs a terminal; piped output falls back to
     plain mode, and plain mode without a terminal renders only the
     final frame — a log or CI capture gets one coherent summary
     instead of interleaved partial frames. *)
  let tty = Unix.isatty Unix.stdout in
  let plain = plain || not tty in
  let reg = Tel.Registry.create () in
  ignore (Tel.Stm_probe.install reg);
  Fun.protect
    ~finally:(fun () -> Tel.Stm_probe.uninstall ())
    (fun () -> f ~tel ~tty ~plain ~reg);
  match tel with Some (_, flush) -> flush () | None -> ()

let run ~algo ~scenario ~seed ~domains ~tvars ~period ~frames ~plain
    ~telemetry ~telemetry_format =
  match Plan.make ~algo ~scenario ~seed ~domains () with
  | Error m ->
      Fmt.epr "error: %s@." m;
      exit 2
  | Ok plan ->
      with_display ~plain ~telemetry ~telemetry_format
        (fun ~tel ~tty ~plain ~reg ->
          Runner.with_session ~tvars ~blame:true ~latency:true ~registry:reg
            plan (fun ses ->
              observe ~prefix:"tm_chaos" ~title:"chaos" ~plan ~period ~frames
                ~plain ~tel ~tty ~reg
                ~liveness:(Runner.session_liveness ses)
                ~blame:(Runner.session_blame ses)
                ~latency:(Runner.session_latency ses)))

let run_serve ~algo ~profile ~scenario ~seed ~domains ~period ~frames ~plain
    ~telemetry ~telemetry_format =
  match Plan.make ~algo ~scenario ~seed ~domains () with
  | Error m ->
      Fmt.epr "error: %s@." m;
      exit 2
  | Ok plan ->
      let cfg =
        Tm_serve.Server.config ~algo ~profile ~seed ~domains ()
      in
      let title =
        Fmt.str "serve[%s]" (Tm_serve.Workload.profile_name profile)
      in
      with_display ~plain ~telemetry ~telemetry_format
        (fun ~tel ~tty ~plain ~reg ->
          Tm_serve.Server.with_chaos_session ~blame:true ~latency:true
            ~registry:reg plan cfg (fun ses ->
              observe ~prefix:"tm_serve" ~title ~plan ~period ~frames ~plain
                ~tel ~tty ~reg
                ~liveness:(Tm_serve.Server.session_liveness ses)
                ~blame:(Tm_serve.Server.session_blame ses)
                ~latency:(Tm_serve.Server.session_latency ses)))
