(* tmlive: command-line front end to the TM-liveness library.

   Subcommands:
     zoo      - list the TM implementations
     figures  - print and machine-check every figure of the paper
     simulate - run a TM under a schedule (optionally with faults) and
                check safety of the produced history
     game     - run the Theorem-1 adversary against a TM
     matrix   - the Section-3.2.3 solo-progress matrix
     sweep    - run a (TM x fault x seed) grid across domains with metrics
     chaos    - deterministic fault injection on the real multicore Stm
     model-check - exhaustively check every bounded-depth schedule

   Converters, common flags and traced-run assembly live in
   [Cli_common]. *)

open Cmdliner
open Cli_common

(* ------------------------------------------------------------------ *)

let zoo_cmd =
  let run contracts =
    if contracts then
      List.iter (Fmt.pr "%a@." Tm_impl.Contract.pp) Tm_impl.Contract.all
    else
      List.iter
        (fun e ->
          Fmt.pr "%-18s %s%s@." e.Tm_impl.Registry.entry_name
            e.Tm_impl.Registry.entry_describe
            (if e.Tm_impl.Registry.responsive then "" else " [blocking]"))
        Tm_impl.Registry.all
  in
  let contracts =
    Arg.(
      value & flag
      & info [ "contracts" ]
          ~doc:"Show the measured progress contracts instead.")
  in
  Cmd.v (Cmd.info "zoo" ~doc:"List the TM implementations in the zoo.")
    Term.(const run $ contracts)

let figures_cmd =
  let run () =
    List.iter
      (fun (name, h) ->
        Fmt.pr "--- %s ---@.%aopaque: %b, strictly serializable: %b@.@." name
          Tm_history.Pretty.pp_by_process h
          (Tm_safety.Opacity.is_opaque h)
          (Tm_safety.Serializability.is_strictly_serializable h))
      Tm_history.Figures.all_finite;
    List.iter
      (fun (name, l) ->
        Fmt.pr "--- %s (infinite) ---@.%a@.%a@.%a@.@." name
          Tm_history.Pretty.pp_lasso l Tm_liveness.Process_class.pp_table
          (Tm_liveness.Process_class.classify l)
          Tm_liveness.Property.pp_verdict
          (Tm_liveness.Property.verdict l))
      Tm_history.Figures.all_lassos
  in
  Cmd.v
    (Cmd.info "figures"
       ~doc:"Print and machine-check every figure of the paper.")
    Term.(const run $ const ())

let tm_arg =
  Arg.(
    required
    & pos 0 (some tm_conv) None
    & info [] ~docv:"TM" ~doc:"TM implementation (see $(b,zoo)).")

let simulate_cmd =
  let run entry nprocs ntvars steps seed sched crash parasitic trace_file
      telemetry telemetry_format =
    let fates =
      (match crash with
      | Some p -> [ (p, Tm_sim.Runner.Crash_after_write 1) ]
      | None -> [])
      @
      match parasitic with
      | Some p -> [ (p, Tm_sim.Runner.Parasitic_from (steps / 10)) ]
      | None -> []
    in
    let spec =
      Tm_sim.Runner.spec ~nprocs ~ntvars ~steps ~seed ~sched ~fates ()
    in
    let col =
      match trace_file with
      | Some _ -> Some (Tm_trace.Sink.collector ())
      | None -> None
    in
    let tel =
      Option.map
        (fun file ->
          let add, flush = telemetry_writer file telemetry_format in
          let reg = Tm_telemetry.Registry.create () in
          let pub =
            Tm_telemetry.Sim_pub.create ~consumers:[ add ] ~nprocs reg
          in
          (pub, flush))
        telemetry
    in
    let o =
      Tm_sim.Runner.run
        ?trace:(Option.map Tm_trace.Sink.collector_sink col)
        ?on_event:(Option.map (fun (pub, _) -> Tm_telemetry.Sim_pub.hook pub) tel)
        entry spec
    in
    Fmt.pr "%a@.@." Tm_sim.Runner.pp_summary o;
    let h = o.Tm_sim.Runner.history in
    (match tel with
    | None -> ()
    | Some (pub, flush) ->
        ignore
          (Tm_telemetry.Sim_pub.finish pub ~ts:(Tm_history.History.length h));
        flush ());
    (match (trace_file, col) with
    | Some file, Some col ->
        let mcol = Tm_trace.Sink.collector () in
        ignore
          (Tm_safety.Monitor.run_traced
             ~trace:(Tm_trace.Sink.collector_sink mcol)
             h);
        let label =
          Fmt.str "%s/simulate/seed=%d" entry.Tm_impl.Registry.entry_name seed
        in
        let events =
          (metadata_event ~pid:0 label :: Tm_trace.Sink.collected col)
          @ Tm_trace.Sink.collected mcol
        in
        write_trace_file file events;
        Fmt.pr "trace: %d events written to %s@." (List.length events) file
    | _ -> ());
    Fmt.pr "history length: %d events@." (Tm_history.History.length h);
    Fmt.pr "well-formed: %b@." (Tm_history.History.is_well_formed h);
    if Tm_history.History.length h <= 600 then begin
      Fmt.pr "opaque: %b@." (Tm_safety.Opacity.is_opaque h);
      Fmt.pr "strictly serializable: %b@."
        (Tm_safety.Serializability.is_strictly_serializable h)
    end
    else
      Fmt.pr "(history too long for the safety checkers; rerun with fewer \
              steps)@.";
    match Tm_sim.Runner.blocked_procs o with
    | [] -> ()
    | ps ->
        Fmt.pr "blocked processes: %a@." Fmt.(list ~sep:(any ", ") int) ps
  in
  let nprocs = nprocs_arg () in
  let ntvars = ntvars_arg () in
  let steps = steps_arg () in
  let seed = seed_arg () in
  let sched = sched_arg () in
  let crash =
    Arg.(
      value
      & opt (some int) None
      & info [ "crash" ] ~doc:"Crash this process after its first write.")
  in
  let parasitic =
    Arg.(
      value
      & opt (some int) None
      & info [ "parasitic" ] ~doc:"Turn this process parasitic.")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record a structured trace of the run (runner spans, fault \
             instants, monitor verdicts) and write it here as Chrome \
             trace_event JSON (Perfetto-loadable).")
  in
  let telemetry =
    telemetry_arg
      ~doc:
        "Publish per-process commit/abort counters and the live Figure-2 \
         liveness classes into a telemetry registry, scraped every 200 \
         history events on the step clock, and write the result here \
         ($(b,-) for stdout; byte-identical across equal runs)."
      ()
  in
  let telemetry_format = telemetry_format_arg () in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:
         "Run a TM under a schedule, print statistics, and machine-check \
          the history.")
    Term.(
      const run $ tm_arg $ nprocs $ ntvars $ steps $ seed $ sched $ crash
      $ parasitic $ trace_file $ telemetry $ telemetry_format)

let game_cmd =
  let run entry alg rounds =
    let alg =
      if alg = 2 then Tm_adversary.Adversary.Algorithm_2
      else Tm_adversary.Adversary.Algorithm_1
    in
    let r = Tm_adversary.Adversary.run ~rounds entry alg in
    Fmt.pr "rounds completed: %d@." r.Tm_adversary.Adversary.rounds_completed;
    Fmt.pr "p1 commits: %d, aborts: %d@."
      r.Tm_adversary.Adversary.victim_commits
      r.Tm_adversary.Adversary.victim_aborts;
    Fmt.pr "p2 commits: %d@." r.Tm_adversary.Adversary.winner_commits;
    if r.Tm_adversary.Adversary.blocked then
      Fmt.pr "verdict: TM blocked (escapes by withholding responses)@."
    else if r.Tm_adversary.Adversary.terminated then
      Fmt.pr
        "verdict: p1 committed! the history must be non-opaque: opaque=%b@."
        (Tm_safety.Opacity.is_opaque r.Tm_adversary.Adversary.history)
    else Fmt.pr "verdict: p1 starves - local progress violated@."
  in
  let alg =
    Arg.(
      value & opt int 1
      & info [ "a"; "algorithm" ] ~doc:"Adversary algorithm (1 or 2).")
  in
  let rounds =
    Arg.(value & opt int 30 & info [ "r"; "rounds" ] ~doc:"Rounds to play.")
  in
  Cmd.v
    (Cmd.info "game" ~doc:"Run the Theorem-1 adversary against a TM.")
    Term.(const run $ tm_arg $ alg $ rounds)

let matrix_cmd =
  let run () =
    let solo ?(sched = Tm_sim.Runner.Round_robin) entry fate =
      let spec =
        Tm_sim.Runner.spec ~nprocs:2 ~ntvars:1 ~steps:4000 ~seed:1 ~sched
          ~fates:[ (1, fate) ]
          ()
      in
      (Tm_sim.Runner.run entry spec).Tm_sim.Runner.commits.(2) >= 10
    in
    let mark b = if b then "yes" else "NO " in
    Fmt.pr "%-18s %-8s %-8s %-11s %-8s@." "TM" "healthy" "crash" "mid-commit"
      "parasite";
    List.iter
      (fun entry ->
        let depth =
          match entry.Tm_impl.Registry.entry_name with
          | "tl2" | "ostm" | "norec" -> 2
          | _ -> 0
        in
        Fmt.pr "%-18s %-8s %-8s %-11s %-8s@." entry.Tm_impl.Registry.entry_name
          (mark (solo ~sched:Tm_sim.Runner.Uniform entry Tm_sim.Runner.Healthy))
          (mark (solo entry (Tm_sim.Runner.Crash_after_write 1)))
          (mark (solo entry (Tm_sim.Runner.Crash_mid_commit depth)))
          (mark (solo entry (Tm_sim.Runner.Parasitic_from 10))))
      Tm_impl.Registry.all
  in
  Cmd.v
    (Cmd.info "matrix"
       ~doc:"The Section-3.2.3 solo-progress matrix, measured.")
    Term.(const run $ const ())

let monitor_cmd =
  let run entry nprocs ntvars steps seed =
    let spec =
      Tm_sim.Runner.spec ~nprocs ~ntvars ~steps ~seed
        ~sched:Tm_sim.Runner.Uniform ()
    in
    let o = Tm_sim.Runner.run entry spec in
    Fmt.pr "history: %d events@."
      (Tm_history.History.length o.Tm_sim.Runner.history);
    match Tm_safety.Monitor.run o.Tm_sim.Runner.history with
    | Tm_safety.Monitor.Accepted ->
        Fmt.pr "monitor: ACCEPTED (a serialization witness exists: opaque)@."
    | Tm_safety.Monitor.No_witness m ->
        Fmt.pr "monitor: no commit-order witness (%s)@." m
  in
  let nprocs = nprocs_arg ~default:4 () in
  let ntvars = ntvars_arg () in
  let steps = steps_arg ~default:50_000 () in
  let seed = seed_arg () in
  Cmd.v
    (Cmd.info "monitor"
       ~doc:
         "Run a long simulation and verify it with the linear-time opacity \
          monitor.")
    Term.(const run $ tm_arg $ nprocs $ ntvars $ steps $ seed)

let model_check_cmd =
  let run entry depth =
    let checked = ref 0 and bad = ref 0 and fallback = ref 0 in
    Tm_sim.Sweep.Exhaustive.run entry ~nprocs:2 ~ntvars:1
      ~invocations:
        [
          Tm_history.Event.Read 0;
          Tm_history.Event.Write (0, 1);
          Tm_history.Event.Try_commit;
        ]
      ~depth
      ~on_history:(fun h _ ->
        incr checked;
        match Tm_safety.Monitor.run h with
        | Tm_safety.Monitor.Accepted -> ()
        | Tm_safety.Monitor.No_witness _ ->
            incr fallback;
            if not (Tm_safety.Opacity.is_opaque h) then begin
              incr bad;
              Fmt.pr "NON-OPAQUE:@.%a@." Tm_history.Pretty.pp_by_process h
            end);
    Fmt.pr
      "checked %d histories (depth %d, 2 processes, 1 binary t-variable)@."
      !checked depth;
    Fmt.pr "monitor fallbacks to exact checker: %d@." !fallback;
    Fmt.pr "non-opaque histories: %d@." !bad
  in
  let depth =
    Arg.(value & opt int 8 & info [ "d"; "depth" ] ~doc:"Schedule depth.")
  in
  Cmd.v
    (Cmd.info "model-check"
       ~doc:
         "Exhaustively model-check every schedule of a bounded depth for \
          opacity.")
    Term.(const run $ tm_arg $ depth)

let sweep_cmd =
  let run tms faults seeds nprocs ntvars steps sched jobs metrics_file
      metrics_format trace_file telemetry telemetry_format =
    let jobs = max 1 jobs in
    let tms = match tms with [] -> Tm_impl.Registry.all | tms -> tms in
    let patterns = resolve_patterns ~nprocs ~ntvars ~steps ~sched faults in
    let configs =
      Tm_sim.Sweep.grid ~tms ~patterns
        ~seeds:(List.init seeds (fun i -> i + 1))
        ()
    in
    let trace = Option.is_some trace_file in
    let t0 = Unix.gettimeofday () in
    let results = run_sweep ~jobs ~trace configs in
    let dt = Unix.gettimeofday () -. t0 in
    (match metrics_format with
    | `Json -> Fmt.pr "%s@." (Tm_sim.Sweep.to_json results)
    | `Table ->
        Fmt.pr "%a" Tm_sim.Sweep.pp_table results;
        Fmt.pr "@.per-TM aggregates (merged over %d patterns x %d seeds):@."
          (List.length patterns) seeds;
        List.iter
          (fun (name, m) ->
            Fmt.pr "%-18s %a@." name Tm_sim.Metrics.pp m;
            Fmt.pr "  commit latency (events):@.    @[<v>%a@]@."
              Tm_sim.Metrics.pp_histogram m.Tm_sim.Metrics.commit_latency;
            Fmt.pr "  retry depth:@.    @[<v>%a@]@."
              Tm_sim.Metrics.pp_histogram m.Tm_sim.Metrics.retry_depth;
            let throughputs =
              List.filter_map
                (fun r ->
                  if
                    r.Tm_sim.Sweep.r_config.Tm_sim.Sweep.tm
                      .Tm_impl.Registry.entry_name = name
                  then Some r.Tm_sim.Sweep.r_metrics.Tm_sim.Metrics.throughput
                  else None)
                results
            in
            Fmt.pr "  per-run throughput: %a@." Tm_sim.Stats.pp
              (Tm_sim.Stats.summarize throughputs))
          (Tm_sim.Sweep.by_tm results));
    (match metrics_file with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        output_string oc (Tm_sim.Sweep.to_json results);
        output_char oc '\n';
        close_out oc;
        Fmt.pr "@.metrics written to %s@." file);
    (match trace_file with
    | None -> ()
    | Some file ->
        let events = combined_trace results in
        write_trace_file file events;
        Fmt.pr "@.trace: %d events written to %s@." (List.length events) file);
    (match telemetry with
    | None -> ()
    | Some file ->
        (* Published post-hoc in canonical grid order (snapshot ts = run
           index), so the series is byte-identical across --jobs. *)
        let add, flush = telemetry_writer file telemetry_format in
        let reg = Tm_telemetry.Registry.create () in
        let pub = Tm_telemetry.Sweep_pub.create ~consumers:[ add ] reg in
        ignore (Tm_telemetry.Sweep_pub.publish_all pub results);
        flush ());
    (* Wall-clock goes to stderr: stdout (and the metrics JSON) must be
       byte-identical across --jobs values. *)
    Fmt.epr "sweep: %d runs in %.3fs (%d jobs)@." (List.length results) dt
      jobs
  in
  let tms =
    tms_arg ~doc:"Comma-separated TM names to sweep (default: the whole zoo)."
      ()
  in
  let faults =
    faults_arg
      ~doc:
        "Comma-separated fault patterns: healthy, crash, parasite, mixed \
         (default: all four)."
      ()
  in
  let seeds =
    Arg.(
      value & opt int 4
      & info [ "seeds" ] ~doc:"Number of seeds per configuration (1..N).")
  in
  let nprocs = nprocs_arg () in
  let ntvars = ntvars_arg () in
  let steps = steps_arg ~default:1000 () in
  let sched = sched_arg () in
  let jobs =
    jobs_arg
      ~doc:
        "Worker domains to shard the sweep across; results are bit-for-bit \
         identical for every value."
      ()
  in
  let metrics_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"Write the per-run and per-TM metrics JSON document here.")
  in
  let metrics_format =
    format_arg ~names:[ "metrics-format" ]
      ~doc:
        "How to render metrics on stdout: $(b,table) (per-run table, \
         per-TM aggregates with latency/retry histograms and a \
         throughput summary) or $(b,json) (the same document \
         $(b,--metrics) writes)."
      ()
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record per-run structured traces and write the merged Chrome \
             trace_event JSON here (one process lane per run; \
             byte-identical for every $(b,--jobs) value).")
  in
  let telemetry =
    telemetry_arg
      ~doc:
        "Publish grid-total counters and commit-latency / retry-depth \
         histograms into a telemetry registry, scraped once per run in \
         canonical grid order (snapshot timestamp = run index), and write \
         the result here ($(b,-) for stdout; byte-identical for every \
         $(b,--jobs) value)."
      ()
  in
  let telemetry_format = telemetry_format_arg () in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run a (TM x fault-pattern x seed) configuration grid, optionally \
          sharded across domains, and report per-run metrics.")
    Term.(
      const run $ tms $ faults $ seeds $ nprocs $ ntvars $ steps $ sched
      $ jobs $ metrics_file $ metrics_format $ trace_file $ telemetry
      $ telemetry_format)

let trace_cmd =
  let run tms faults seed nprocs ntvars steps sched jobs out format =
    let tms = match tms with [] -> Tm_impl.Registry.all | tms -> tms in
    let patterns = resolve_patterns ~nprocs ~ntvars ~steps ~sched faults in
    let configs = Tm_sim.Sweep.grid ~tms ~patterns ~seeds:[ seed ] () in
    let results = run_sweep ~jobs ~trace:true configs in
    let events = combined_trace results in
    let render oc =
      match format with
      | `Json -> Tm_trace.Export.to_chrome_channel oc events
      | `Text -> output_string oc (Tm_trace.Export.text_string events)
    in
    match out with
    | None -> render stdout
    | Some file ->
        let oc = open_out file in
        render oc;
        close_out oc;
        Fmt.pr "wrote %d trace events to %s@." (List.length events) file
  in
  let tms =
    tms_arg ~doc:"Comma-separated TM names to trace (default: the whole zoo)."
      ()
  in
  let faults =
    faults_arg
      ~doc:
        "Comma-separated fault patterns: healthy, crash, parasite, mixed \
         (default: all four)."
      ()
  in
  let seed = seed_arg ~default:1 () in
  let nprocs = nprocs_arg () in
  let ntvars = ntvars_arg () in
  let steps = steps_arg () in
  let sched = sched_arg () in
  let jobs =
    jobs_arg
      ~doc:
        "Worker domains; the trace is byte-for-bit identical for every value."
      ()
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the trace here (default: stdout).")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("json", `Json); ("text", `Text) ]) `Json
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "Trace format: $(b,json) (Chrome trace_event, Perfetto-loadable) \
             or $(b,text) (compact one-event-per-line dump).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a (TM x fault-pattern) grid at one seed and emit a merged \
          structured trace: transaction/tryC spans, fault instants, defer \
          counters, and streamed opacity-monitor verdicts, on the \
          deterministic step clock.")
    Term.(
      const run $ tms $ faults $ seed $ nprocs $ ntvars $ steps $ sched
      $ jobs $ out $ format)

type explore_action = E_invoke of Tm_history.Event.invocation | E_poll

let explore_cmd =
  let run dot =
    let cfg = Tm_impl.Tm_intf.config ~nprocs:1 ~ntvars:1 () in
    let exploration =
      Tm_automaton.Explorer.reachable
        ~make:(fun () -> Tm_impl.Fgp.create cfg)
        ~snapshot:Tm_impl.Fgp.state
        ~actions:(fun t ->
          match Tm_impl.Fgp.pending t 1 with
          | Some _ -> [ E_poll ]
          | None ->
              [
                E_invoke (Tm_history.Event.Read 0);
                E_invoke (Tm_history.Event.Write (0, 0));
                E_invoke (Tm_history.Event.Write (0, 1));
                E_invoke Tm_history.Event.Try_commit;
              ])
        ~apply:(fun t a ->
          match a with
          | E_invoke inv -> Tm_impl.Fgp.invoke t 1 inv
          | E_poll -> ignore (Tm_impl.Fgp.poll t 1))
        ()
    in
    if dot then
      print_string
        (Tm_automaton.Explorer.to_dot
           ~state_label:(Fmt.str "%a" Tm_impl.Fgp.pp_state)
           ~action_label:(function
             | E_invoke inv ->
                 Fmt.str "%a" Tm_history.Event.pp_invocation inv
             | E_poll -> "poll")
           exploration)
    else begin
      Fmt.pr "%d reachable states (the paper's Figure 15 lists 10):@."
        (List.length exploration.Tm_automaton.Explorer.states);
      List.iteri
        (fun i (s, _) ->
          Fmt.pr "  s%-2d %a@." (i + 1) Tm_impl.Fgp.pp_state s)
        exploration.Tm_automaton.Explorer.states
    end
  in
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit the Graphviz graph.")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Enumerate the reachable states of Fgp with one process and one \
          binary t-variable (Figure 15).")
    Term.(const run $ dot)

let crash_windows_cmd =
  let run samples =
    Fmt.pr
      "Fraction of %d random crash points that permanently stall a solo \
       runner@.(3-write transactions on one hot t-variable):@.@." samples;
    let inc =
      Tm_sim.Workload.W_write
        ( 0,
          fun reads ->
            (match List.assoc_opt 0 reads with Some v -> v | None -> 0) + 1 )
    in
    let hot =
      Tm_sim.Workload.fixed "w3x1"
        [ [ Tm_sim.Workload.W_read 0; inc; inc; inc ] ]
    in
    List.iter
      (fun entry ->
        let stalls = ref 0 in
        for seed = 1 to samples do
          let crash_step = 20 + (seed * 17 mod 300) in
          let spec =
            Tm_sim.Runner.spec ~nprocs:2 ~ntvars:1 ~steps:4000 ~seed
              ~sched:Tm_sim.Runner.Round_robin ~workload:hot
              ~fates:[ (1, Tm_sim.Runner.Crash_at crash_step) ]
              ()
          in
          let o = Tm_sim.Runner.run entry spec in
          if o.Tm_sim.Runner.commits.(2) < 10 then incr stalls
        done;
        Fmt.pr "%-18s %3d/%d@." entry.Tm_impl.Registry.entry_name !stalls
          samples)
      Tm_impl.Registry.all
  in
  let samples =
    Arg.(value & opt int 40 & info [ "s"; "samples" ] ~doc:"Crash points.")
  in
  Cmd.v
    (Cmd.info "crash-windows"
       ~doc:"Measure each TM's crash-vulnerability window.")
    Term.(const run $ samples)

let dump_cmd =
  let run entry nprocs ntvars steps seed file =
    let spec =
      Tm_sim.Runner.spec ~nprocs ~ntvars ~steps ~seed
        ~sched:Tm_sim.Runner.Uniform ()
    in
    let o = Tm_sim.Runner.run entry spec in
    let text = Tm_history.Codec.history_to_string o.Tm_sim.Runner.history in
    let oc = open_out file in
    output_string oc text;
    close_out oc;
    Fmt.pr "wrote %d events to %s@."
      (Tm_history.History.length o.Tm_sim.Runner.history)
      file
  in
  let nprocs = nprocs_arg () in
  let ntvars = ntvars_arg () in
  let steps = steps_arg () in
  let seed = seed_arg () in
  let file =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"FILE" ~doc:"Output trace file.")
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"Simulate a TM and write the history to a file.")
    Term.(const run $ tm_arg $ nprocs $ ntvars $ steps $ seed $ file)

let check_cmd =
  let run file =
    let ic = open_in file in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    match Tm_history.Codec.history_of_string text with
    | Error m ->
        Fmt.epr "error: %s@." m;
        exit 2
    | Ok h ->
        Fmt.pr "loaded %d events@." (Tm_history.History.length h);
        (match Tm_safety.Monitor.run h with
        | Tm_safety.Monitor.Accepted ->
            Fmt.pr "monitor: ACCEPTED (opaque, witness found)@."
        | Tm_safety.Monitor.No_witness m ->
            Fmt.pr "monitor: no commit-order witness (%s)@." m;
            if Tm_history.History.length h <= 600 then begin
              Fmt.pr "exact opacity: %b@." (Tm_safety.Opacity.is_opaque h);
              Fmt.pr "exact strict serializability: %b@."
                (Tm_safety.Serializability.is_strictly_serializable h)
            end);
        match Tm_liveness.Empirical.find_lasso h with
        | None -> Fmt.pr "no periodic suffix detected@."
        | Some l ->
            Fmt.pr "periodic suffix detected; liveness verdict: %a@."
              Tm_liveness.Property.pp_verdict
              (Tm_liveness.Property.verdict l)
  in
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Trace file (see $(b,dump)).")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Load a dumped trace and check safety (and detect liveness).")
    Term.(const run $ file)

(* ------------------------------------------------------------------ *)

module An = Tm_analysis

let analyze_cmd =
  let run histories traces figures sweep stm_demo rules_str format out
      fail_on list_rules tms faults seeds nprocs ntvars steps sched jobs =
    if list_rules then Fmt.pr "%a" An.Engine.pp_catalogue ()
    else begin
      let rules =
        match An.Engine.parse_selection rules_str with
        | Ok ids -> ids
        | Error m ->
            Fmt.epr "error: %s@." m;
            exit 2
      in
      let findings = ref [] in
      let record fs = findings := fs @ !findings in
      let analyze_history ~subject h =
        match An.Engine.run_history ~rules ~subject h with
        | [] -> (
            (* Only look for a periodic suffix in clean histories; the
               liveness taxonomy assumes well-formedness. *)
            match Tm_liveness.Empirical.find_lasso h with
            | None -> ()
            | Some l -> record (An.Engine.run_lasso ~rules ~subject l))
        | fs -> record fs
      in
      (* Explicit inputs. *)
      List.iter
        (fun file ->
          (* Lax parse: well-formedness violations are findings, not load
             errors. *)
          match Tm_history.Codec.history_of_string_lax (read_file file) with
          | Error m ->
              Fmt.epr "error: %s: %s@." file m;
              exit 2
          | Ok h -> analyze_history ~subject:(Filename.basename file) h)
        histories;
      List.iter
        (fun file ->
          match Tm_trace.Export.of_chrome_string (read_file file) with
          | Error m ->
              Fmt.epr "error: %s: %s@." file m;
              exit 2
          | Ok evs ->
              record
                (An.Engine.run_trace ~rules ~subject:(Filename.basename file)
                   evs))
        traces;
      (* Corpora. *)
      let figures =
        figures
        || (histories = [] && traces = [] && (not sweep) && not stm_demo)
      in
      if figures then begin
        List.iter
          (fun (name, h) -> record (An.Engine.run_history ~rules ~subject:name h))
          Tm_history.Figures.all_finite;
        List.iter
          (fun (name, l) -> record (An.Engine.run_lasso ~rules ~subject:name l))
          Tm_history.Figures.all_lassos
      end;
      if sweep then begin
        let tms = match tms with [] -> Tm_impl.Registry.all | tms -> tms in
        let patterns =
          resolve_patterns ~nprocs ~ntvars ~steps ~sched faults
        in
        let configs =
          Tm_sim.Sweep.grid ~tms ~patterns
            ~seeds:(List.init seeds (fun i -> i + 1))
            ()
        in
        let results = run_sweep ~jobs ~trace:true configs in
        List.iter
          (fun (r : Tm_sim.Sweep.result) ->
            let subject = Tm_sim.Sweep.label r.Tm_sim.Sweep.r_config in
            analyze_history ~subject
              r.Tm_sim.Sweep.r_outcome.Tm_sim.Runner.history;
            record
              (An.Engine.run_trace ~rules ~subject r.Tm_sim.Sweep.r_trace))
          results
      end;
      if stm_demo then begin
        let events, dropped =
          stm_demo_events ~jobs:(max 2 jobs) ~ntvars ~steps:(min steps 2000)
        in
        if dropped > 0 then begin
          (* A truncated ring fabricates protocol violations; refuse to
             lint a partial trace. *)
          Fmt.epr
            "error: stm demo dropped %d events (ring too small for this \
             workload); not analyzing a truncated trace@."
            dropped;
          exit 2
        end;
        record (An.Engine.run_trace ~rules ~subject:"stm-demo" events)
      end;
      let findings = List.sort An.Finding.compare !findings in
      (match format with
      | `Table -> Fmt.pr "%a" An.Finding.pp_report findings
      | `Json -> print_string (An.Finding.list_to_json findings));
      (match out with
      | None -> ()
      | Some file ->
          let oc = open_out file in
          output_string oc (An.Finding.list_to_json findings);
          close_out oc;
          Fmt.epr "findings written to %s@." file);
      exit (An.Engine.exit_code_at fail_on findings)
    end
  in
  let histories =
    Arg.(
      value
      & opt_all string []
      & info [ "history" ] ~docv:"FILE"
          ~doc:"Analyze a dumped history file (see $(b,dump)). Repeatable.")
  in
  let traces =
    Arg.(
      value
      & opt_all string []
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Analyze a Chrome trace_event JSON file (see $(b,trace), \
             $(b,sweep --trace)). Repeatable.")
  in
  let figures =
    Arg.(
      value & flag
      & info [ "figures" ]
          ~doc:
            "Analyze the paper's whole Figures corpus (default when no \
             other input is given).")
  in
  let sweep =
    Arg.(
      value & flag
      & info [ "sweep" ]
          ~doc:
            "Run a traced (TM x fault x seed) sweep and analyze every \
             run's history and trace ($(b,--tm), $(b,--faults), \
             $(b,--seeds), $(b,-p), $(b,-t), $(b,-n), $(b,--sched), \
             $(b,--jobs) as for $(b,sweep)).")
  in
  let stm_demo =
    Arg.(
      value & flag
      & info [ "stm" ]
          ~doc:
            "Run a traced multicore workload on the real Stm runtime and \
             analyze its lock/commit protocol trace ($(b,--jobs) domains, \
             $(b,-t) accounts, $(b,-n) transfers per domain).")
  in
  let rules =
    Arg.(
      value & opt string "all"
      & info [ "rules" ] ~docv:"RULES"
          ~doc:
            "Rule subset: $(b,all) or a comma-separated list of rule ids \
             (see $(b,--list-rules)).")
  in
  let format =
    format_arg ~doc:"Findings on stdout as $(b,table) or $(b,json)." ()
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Also write the findings JSON document here (CI artifact).")
  in
  let list_rules =
    Arg.(
      value & flag
      & info [ "list-rules" ] ~doc:"Print the rule catalogue and exit.")
  in
  let tms = tms_arg ~doc:"TMs for $(b,--sweep) (default: the whole zoo)." () in
  let faults =
    faults_arg ~doc:"Fault patterns for $(b,--sweep) (default: all four)." ()
  in
  let seeds =
    Arg.(
      value & opt int 2
      & info [ "seeds" ] ~doc:"Seeds per configuration for $(b,--sweep).")
  in
  let nprocs = nprocs_arg () in
  let ntvars = ntvars_arg () in
  let steps = steps_arg () in
  let sched = sched_arg () in
  let jobs = jobs_arg ~doc:"Worker domains for $(b,--sweep) / $(b,--stm)." () in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Lint histories and traces: well-formedness and transaction-\
          identity checks, liveness-class diagnostics, and trace-level \
          race / lock-order / commit-protocol analyzers.  Exits 1 if any \
          finding at or above $(b,--fail-on) is reported, so CI can gate \
          on it.")
    Term.(
      const run $ histories $ traces $ figures $ sweep $ stm_demo $ rules
      $ format $ out $ fail_on_arg () $ list_rules $ tms $ faults $ seeds
      $ nprocs $ ntvars $ steps $ sched $ jobs)

(* ------------------------------------------------------------------ *)

let static_cmd =
  let module Sc = Tm_staticcheck.Checker in
  let run root rules_str format out fail_on list_rules =
    if list_rules then Fmt.pr "%a" Sc.pp_catalogue ()
    else begin
      let rules =
        match Sc.parse_selection rules_str with
        | Ok ids -> ids
        | Error m ->
            Fmt.epr "error: %s@." m;
            exit 2
      in
      let root =
        match root with
        | Some dir -> dir
        | None -> (
            match Sc.find_root () with
            | Some dir -> dir
            | None ->
                Fmt.epr
                  "error: no repo root found above the working directory \
                   (looked for dune-project + lib/stm); use --root@.";
                exit 2)
      in
      match Sc.run ~rules ~root () with
      | Error m ->
          Fmt.epr "error: %s@." m;
          exit 2
      | Ok report ->
          let findings = report.Sc.findings in
          (match format with
          | `Table ->
              Fmt.pr "%d file(s) scanned under %s@." report.Sc.files_scanned
                root;
              Fmt.pr "%a" An.Finding.pp_report findings
          | `Json -> print_string (An.Finding.list_to_json findings));
          (match out with
          | None -> ()
          | Some file ->
              let oc = open_out file in
              output_string oc (An.Finding.list_to_json findings);
              close_out oc;
              Fmt.epr "findings written to %s@." file);
          exit (An.Engine.exit_code_at fail_on findings)
    end
  in
  let root =
    Arg.(
      value
      & opt (some dir) None
      & info [ "root" ] ~docv:"DIR"
          ~doc:
            "Repo checkout to analyze (default: walk upward from the \
             working directory to the first dune-project with lib/stm).")
  in
  let rules =
    Arg.(
      value & opt string "all"
      & info [ "rules" ] ~docv:"RULES"
          ~doc:
            "Rule subset: $(b,all) or a comma-separated list of rule ids \
             (see $(b,--list-rules)).")
  in
  let format =
    format_arg ~doc:"Findings on stdout as $(b,table) or $(b,json)." ()
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Also write the findings JSON document here (CI artifact).")
  in
  let list_rules =
    Arg.(
      value & flag
      & info [ "list-rules" ] ~doc:"Print the rule catalogue and exit.")
  in
  Cmd.v
    (Cmd.info "static"
       ~doc:
         "Statically analyze the repo's own OCaml sources: cross-check \
          each core's seam emission sites against the Stm.Algo contract \
          tables, require every emission to sit behind its disarmed-check \
          guard, flag non-rollbackable effects inside atomically bodies \
          and seams armed without a paired teardown.  Exits 1 if any \
          finding at or above $(b,--fail-on) is reported, so CI can gate \
          on it.")
    Term.(const run $ root $ rules $ format $ out $ fail_on_arg () $ list_rules)

(* ------------------------------------------------------------------ *)

let chaos_cmd =
  let run list_scenarios algo scenario seed domains tvars warmup window format
      out trace_file telemetry telemetry_format =
    if list_scenarios then
      List.iter
        (fun s ->
          Fmt.pr "%-20s %s@." s
            (Option.value ~default:"" (Tm_chaos.Plan.scenario_doc s)))
        Tm_chaos.Plan.scenarios
    else
      match Tm_chaos.Plan.make ~algo ~scenario ~seed ~domains () with
      | Error m ->
          Fmt.epr "error: %s@." m;
          exit 2
      | Ok plan ->
          let on_sample, tel_flush =
            telemetry_setup telemetry telemetry_format
          in
          let o = Tm_chaos.Runner.run ~tvars ~warmup ~window ?on_sample plan in
          (match format with
          | `Table -> Fmt.pr "%a" Tm_chaos.Runner.pp_table o
          | `Json -> Fmt.pr "%s@." (Tm_chaos.Runner.to_json o));
          tel_flush ();
          (match out with
          | None -> ()
          | Some file ->
              let oc = open_out file in
              output_string oc (Tm_chaos.Runner.to_json o);
              output_char oc '\n';
              close_out oc;
              Fmt.epr "verdicts written to %s@." file);
          (match trace_file with
          | None -> ()
          | Some file ->
              let label =
                Fmt.str "chaos/%s/%s/seed=%d" scenario
                  (Tm_stm.Stm.Algo.name algo)
                  seed
              in
              let events =
                metadata_event ~pid:0 label :: o.Tm_chaos.Runner.o_events
              in
              write_trace_file file events;
              Fmt.epr "trace: %d events written to %s@." (List.length events)
                file);
          exit (if o.Tm_chaos.Runner.o_ok then 0 else 1)
  in
  let list_scenarios =
    Arg.(
      value & flag
      & info [ "list" ] ~doc:"List the fault scenarios and exit.")
  in
  let scenario = scenario_arg () in
  let seed = seed_arg () in
  let domains = domains_arg () in
  let tvars = ntvars_arg () in
  let warmup = warmup_arg () in
  let window = window_arg () in
  let format =
    format_arg
      ~doc:
        "Verdicts on stdout as $(b,table) (plan schedule plus per-domain \
         verdict lines) or $(b,json) (the same document $(b,-o) writes)."
      ()
  in
  let out =
    out_arg ~doc:"Also write the verdict JSON document here (CI artifact)." ()
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write the chaos trace here as Chrome trace_event JSON: the \
             planned fault schedule ($(b,Fault) instants on each domain's \
             operation clock) and the empirical verdict instants — \
             byte-identical for a fixed (scenario, seed, domains).")
  in
  let telemetry =
    telemetry_arg
      ~doc:
        "Export the run's telemetry here ($(b,-) for stdout): per-domain \
         chaos counters and the $(b,tm_liveness_class) / \
         $(b,tm_liveness_correct) gauges, scraped at both watchdog \
         samples; the final scrape's classes equal the printed verdicts."
      ()
  in
  let telemetry_format = telemetry_format_arg () in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Inject a seeded fault plan into the real multicore Stm runtime, \
          watch per-domain progress counters, and gate on the expected \
          Figure-2 classes (crashed / parasitic / starving / progressing).  \
          Exits 1 on any verdict mismatch.")
    Term.(
      const run $ list_scenarios $ algo_arg () $ scenario $ seed $ domains
      $ tvars $ warmup $ window $ format $ out $ trace_file $ telemetry
      $ telemetry_format)

(* ------------------------------------------------------------------ *)

(* Blame renderers.  The canonical document (JSON and DOT) carries the
   scenario identity, the verdict gate and the classification — shape
   plus per-domain verdict/evidence — and nothing else: raw edge
   weights of a real multicore run vary run to run, while the
   wide-margin structure [Blame_graph.classify] extracts does not, so
   two same-seed runs emit byte-identical documents (the CI determinism
   gate [cmp]s them).  The weighted graph itself is in the human table
   and the telemetry export. *)

module Bg = Tm_telemetry.Blame_graph

let blame_json (o : Tm_chaos.Runner.outcome) shape evidence =
  let plan = o.Tm_chaos.Runner.o_plan in
  let b = Buffer.create 512 in
  Printf.bprintf b
    "{\"scenario\":%S,\"algo\":%S,\"seed\":%d,\"domains\":%d,\"ok\":%b,\"shape\":%S,\"blame\":["
    plan.Tm_chaos.Plan.scenario
    (Tm_stm.Stm.Algo.name plan.Tm_chaos.Plan.algo)
    plan.Tm_chaos.Plan.seed plan.Tm_chaos.Plan.domains
    o.Tm_chaos.Runner.o_ok (Bg.shape_label shape);
  List.iteri
    (fun d (r : Tm_chaos.Runner.report) ->
      if d > 0 then Buffer.add_char b ',';
      Printf.bprintf b "{\"domain\":%d,\"verdict\":%S,\"evidence\":%S}" d
        (Tm_liveness.Process_class.cls_label r.Tm_chaos.Runner.rep_observed)
        (Bg.evidence_label evidence.(d)))
    o.Tm_chaos.Runner.o_reports;
  Buffer.add_string b "]}";
  Buffer.contents b

let blame_dot (o : Tm_chaos.Runner.outcome) shape evidence =
  let plan = o.Tm_chaos.Runner.o_plan in
  let b = Buffer.create 512 in
  Printf.bprintf b "digraph blame {\n  rankdir=LR;\n";
  Printf.bprintf b "  label=\"%s/%s seed=%d shape=%s\";\n"
    plan.Tm_chaos.Plan.scenario
    (Tm_stm.Stm.Algo.name plan.Tm_chaos.Plan.algo)
    plan.Tm_chaos.Plan.seed (Bg.shape_label shape);
  let color r =
    match r.Tm_chaos.Runner.rep_observed with
    | Tm_liveness.Process_class.Crashed -> "gray"
    | Tm_liveness.Process_class.Parasitic -> "orange"
    | Tm_liveness.Process_class.Starving -> "red"
    | Tm_liveness.Process_class.Progressing -> "green"
  in
  List.iteri
    (fun d (r : Tm_chaos.Runner.report) ->
      Printf.bprintf b
        "  d%d [label=\"d%d\\n%s\\n%s\", style=filled, fillcolor=%s];\n" d d
        (Tm_liveness.Process_class.cls_label r.Tm_chaos.Runner.rep_observed)
        (Bg.evidence_label evidence.(d))
        (color r))
    o.Tm_chaos.Runner.o_reports;
  Array.iteri
    (fun d e ->
      match e with
      | Bg.E_starved_by a when a >= 0 -> Printf.bprintf b "  d%d -> d%d;\n" d a
      | _ -> ())
    evidence;
  (match shape with
  | Bg.Cycle ->
      Buffer.add_string b
        "  // mutual dominance among live domains (cycle)\n"
  | _ -> ());
  Buffer.add_string b "}\n";
  Buffer.contents b

let blame_table ppf (o : Tm_chaos.Runner.outcome) (g : Bg.t) shape evidence =
  Fmt.pf ppf "%a" Tm_chaos.Runner.pp_table o;
  Fmt.pf ppf "blame graph (events=%d, shape=%s):@." (Bg.clock g)
    (Bg.shape_label shape);
  List.iter
    (fun (v, a, n) ->
      let causes =
        String.concat ", "
          (List.map
             (fun (c, k) ->
               Fmt.str "%s=%d" (Tm_stm.Stm.Blame.cause_label c) k)
             (Bg.edge_causes g ~victim:v ~aggressor:a))
      in
      Fmt.pf ppf "  d%s -> d%s  %6d  [%s]@."
        (if v < 0 then "?" else string_of_int v)
        (if a < 0 then "?" else string_of_int a)
        n causes)
    (Bg.edges g);
  Fmt.pf ppf "watermarks:@.";
  for d = 0 to Bg.domains g - 1 do
    Fmt.pf ppf "  d%d  commits=%-8d last-commit=%-10d wait-age=%-10d %s@." d
      (Bg.commits g d) (Bg.last_commit g d) (Bg.wait_age g d)
      (Bg.evidence_label evidence.(d))
  done

let blame_cmd =
  let run algo scenario seed domains tvars warmup window format out trace_file
      telemetry telemetry_format =
    match Tm_chaos.Plan.make ~algo ~scenario ~seed ~domains () with
    | Error m ->
        Fmt.epr "error: %s@." m;
        exit 2
    | Ok plan -> (
        let on_sample, tel_flush = telemetry_setup telemetry telemetry_format in
        let o =
          Tm_chaos.Runner.run ~blame:true ~tvars ~warmup ~window ?on_sample
            plan
        in
        match o.Tm_chaos.Runner.o_blame with
        | None -> Fmt.epr "error: blame graph missing@."; exit 2
        | Some g ->
            let classes =
              Array.of_list
                (List.map
                   (fun (r : Tm_chaos.Runner.report) ->
                     r.Tm_chaos.Runner.rep_observed)
                   o.Tm_chaos.Runner.o_reports)
            in
            let shape, evidence = Bg.classify g ~classes in
            (match format with
            | `Table -> blame_table Fmt.stdout o g shape evidence
            | `Json -> Fmt.pr "%s@." (blame_json o shape evidence)
            | `Dot -> Fmt.pr "%s" (blame_dot o shape evidence));
            tel_flush ();
            (match out with
            | None -> ()
            | Some file ->
                let doc =
                  if Filename.check_suffix file ".dot" then
                    blame_dot o shape evidence
                  else blame_json o shape evidence ^ "\n"
                in
                let oc = open_out file in
                output_string oc doc;
                close_out oc;
                Fmt.epr "blame document written to %s@." file);
            (match trace_file with
            | None -> ()
            | Some file ->
                let label =
                  Fmt.str "blame/%s/%s/seed=%d" scenario
                    (Tm_stm.Stm.Algo.name algo)
                    seed
                in
                let events =
                  metadata_event ~pid:0 label :: o.Tm_chaos.Runner.o_events
                in
                write_trace_file file events;
                Fmt.epr "trace: %d events written to %s@."
                  (List.length events) file);
            exit (if o.Tm_chaos.Runner.o_ok then 0 else 1))
  in
  let scenario = scenario_arg ~default:"crash-holding-locks" () in
  let seed = seed_arg () in
  let domains = domains_arg () in
  let tvars = ntvars_arg () in
  let warmup = warmup_arg () in
  let window = window_arg () in
  let format =
    let fmt_conv : [ `Table | `Json | `Dot ] Arg.conv =
      Arg.enum [ ("table", `Table); ("json", `Json); ("dot", `Dot) ]
    in
    Arg.(
      value & opt fmt_conv `Table
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "Attribution on stdout: $(b,table) (verdicts, the weighted \
             who-aborted-whom edges with per-cause counts, and the \
             progress watermarks), $(b,json) (the canonical \
             classification document) or $(b,dot) (Graphviz digraph of \
             the classification).  The JSON and DOT forms carry only the \
             deterministic classification; the raw weights are in the \
             table and the telemetry export.")
  in
  let out =
    out_arg
      ~doc:
        "Also write the canonical document here (CI artifact): DOT if \
         $(i,FILE) ends in $(b,.dot), JSON otherwise."
      ()
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write the run's trace here as Chrome trace_event JSON: the \
             planned fault schedule, the verdict instants, and one \
             $(b,blame-evidence) instant per domain — the input of the \
             $(b,analyze) $(b,blame) rule.")
  in
  let telemetry =
    telemetry_arg
      ~doc:
        "Export the run's telemetry here ($(b,-) for stdout), including \
         the full $(b,tm_blame_events_total) edge matrix, per-domain \
         commit watermarks and $(b,tm_blame_wait_age) gauges."
      ()
  in
  let telemetry_format = telemetry_format_arg () in
  Cmd.v
    (Cmd.info "blame"
       ~doc:
         "Run a fault scenario with the blame-attribution seam armed and \
          reduce the who-aborted-whom graph to its deterministic \
          classification: per-domain evidence (crashed / parasitic / \
          starved-by / contended / quiet) and a global shape (star / \
          cycle / none).  Exits 1 on any chaos-verdict mismatch.")
    Term.(
      const run $ algo_arg () $ scenario $ seed $ domains $ tvars $ warmup
      $ window $ format $ out $ trace_file $ telemetry $ telemetry_format)

let top_cmd =
  let run algo scenario seed domains tvars period frames plain serve profile
      telemetry telemetry_format =
    if serve then
      Dashboard.run_serve ~algo ~profile ~scenario ~seed ~domains ~period
        ~frames ~plain ~telemetry ~telemetry_format
    else
      Dashboard.run ~algo ~scenario ~seed ~domains ~tvars ~period ~frames
        ~plain ~telemetry ~telemetry_format
  in
  let scenario = scenario_arg () in
  let seed = seed_arg () in
  let domains = domains_arg () in
  let tvars = ntvars_arg () in
  let serve =
    Arg.(
      value & flag
      & info [ "serve" ]
          ~doc:
            "Observe a tmserve serving session instead of the bare chaos \
             workers: per-domain executors run the $(b,--profile) \
             population over the sharded store while the scenario's \
             faults are injected into the serving path.")
  in
  let profile = profile_arg () in
  let period =
    Arg.(
      value & opt float 0.5
      & info [ "period" ] ~docv:"SECONDS"
          ~doc:"Seconds between dashboard frames (scrape period).")
  in
  let frames =
    Arg.(
      value & opt int 10
      & info [ "frames" ] ~docv:"N" ~doc:"Frames to render before exiting.")
  in
  let plain =
    Arg.(
      value & flag
      & info [ "plain" ]
          ~doc:
            "Append frames instead of redrawing in place (no ANSI escape \
             codes; for logs and pipes).")
  in
  let telemetry =
    telemetry_arg
      ~doc:
        "Also export every rendered frame's scrape here ($(b,-) for \
         stdout)."
      ()
  in
  let telemetry_format = telemetry_format_arg () in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live liveness dashboard: run a chaos scenario on the real \
          multicore Stm runtime and redraw per-domain commit/abort rates, \
          injected-fault counters, STM phase-latency percentiles and each \
          domain's current Figure-2 class every scrape period.")
    Term.(
      const run $ algo_arg () $ scenario $ seed $ domains $ tvars $ period
      $ frames $ plain $ serve $ profile $ telemetry $ telemetry_format)

(* ------------------------------------------------------------------ *)

module Serve = Tm_serve.Server

let serve_cmd =
  let run list_profiles profile algo domains seed clients ops keys stripes
      no_batching journal queue_cap arrival rate scenario warmup window
      format out telemetry telemetry_format =
    if list_profiles then
      List.iter
        (fun p ->
          Fmt.pr "%-14s %s@."
            (Tm_serve.Workload.profile_name p)
            (Tm_serve.Workload.describe p))
        Tm_serve.Workload.profiles
    else begin
      let arrival =
        match (arrival, rate) with
        | None, None -> None
        | Some kind, Some rate ->
            if scenario <> None then begin
              Fmt.epr
                "error: --arrival applies to profile runs, not --scenario \
                 chaos runs@.";
              exit 2
            end;
            Some (Tm_serve.Arrival.make ~kind ~rate ~seed)
        | Some _, None ->
            Fmt.epr "error: --arrival requires --rate REQ_PER_S@.";
            exit 2
        | None, Some _ ->
            Fmt.epr
              "error: --rate requires --arrival (poisson or constant)@.";
            exit 2
      in
      let cfg =
        try
          Serve.config ~algo ~clients ~ops ~keys ~stripes
            ~batching:(not no_batching) ~journal ~queue_cap ?arrival
            ~profile ~seed ~domains ()
        with Invalid_argument m ->
          Fmt.epr "error: %s@." m;
          exit 2
      in
      let on_sample, tel_flush = telemetry_setup telemetry telemetry_format in
      match scenario with
      | Some scenario -> (
          (* Chaos against the serving path: verdict-gated like chaos. *)
          match Tm_chaos.Plan.make ~algo ~scenario ~seed ~domains () with
          | Error m ->
              Fmt.epr "error: %s@." m;
              exit 2
          | Ok plan ->
              let o = Serve.chaos_run ~warmup ~window ?on_sample plan cfg in
              (match format with
              | `Table -> Fmt.pr "%a@." Serve.pp_chaos_table o
              | `Json -> Fmt.pr "%s@." (Serve.chaos_to_json o));
              tel_flush ();
              (match out with
              | None -> ()
              | Some file ->
                  let oc = open_out file in
                  output_string oc (Serve.chaos_to_json o);
                  output_char oc '\n';
                  close_out oc;
                  Fmt.epr "verdicts written to %s@." file);
              exit (if o.Serve.k_ok then 0 else 1))
      | None ->
          let o = Serve.run ?on_sample cfg in
          (* Canonical JSON on stdout (byte-deterministic), the measured
             human summary on stderr, so `tmlive serve ... | cmp` gates
             work with the summary still visible. *)
          (match format with
          | `Json ->
              Fmt.pr "%s@." (Serve.to_json o);
              Fmt.epr "%a@." Serve.pp_summary o
          | `Table -> Fmt.pr "%a@." Serve.pp_summary o);
          tel_flush ();
          (match out with
          | None -> ()
          | Some file ->
              let oc = open_out file in
              output_string oc (Serve.to_json o);
              output_char oc '\n';
              close_out oc;
              Fmt.epr "canonical serve document written to %s@." file);
          if not (o.Serve.s_journal_ok && o.Serve.s_conserved) then exit 1
    end
  in
  let list_profiles =
    Arg.(
      value & flag
      & info [ "list" ] ~doc:"List the workload profiles and exit.")
  in
  let seed = seed_arg ~default:42 () in
  let domains = domains_arg () in
  let clients =
    Arg.(
      value & opt int 10_000
      & info [ "clients" ] ~docv:"N"
          ~doc:
            "Simulated client population, multiplexed onto the worker \
             domains (up to 10^6).")
  in
  let ops =
    Arg.(
      value & opt int 4
      & info [ "ops" ] ~docv:"N"
          ~doc:"Closed-loop rounds: requests per client.")
  in
  let keys =
    Arg.(value & opt int 1024 & info [ "keys" ] ~docv:"N" ~doc:"Store keys.")
  in
  let stripes =
    Arg.(
      value & opt int 64
      & info [ "stripes" ] ~docv:"N" ~doc:"Store stripes (combiner units).")
  in
  let no_batching =
    Arg.(
      value & flag
      & info [ "no-batching" ]
          ~doc:
            "Disable hot-stripe flat-combining: every admitted put \
             commits its own transaction.")
  in
  let journal =
    Arg.(
      value & flag
      & info [ "journal" ]
          ~doc:
            "Arm the store journal: every mutating transaction also \
             bumps a shared journal t-variable (conflict-universal \
             mutators; the canonical document then checks the journal \
             against the admitted-mutator count).")
  in
  let queue_cap =
    Arg.(
      value & opt int 2048
      & info [ "queue-cap" ] ~docv:"UNITS"
          ~doc:
            "Admission capacity of the per-domain bounded queue, in \
             deterministic cost units (gets cost 8, puts/cas 14, \
             transactions 8 + 6 per op; 12 units drain per arrival).")
  in
  let scenario =
    Arg.(
      value
      & opt (some scenario_conv) None
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:
            "Run a chaos scenario against the serving path instead of a \
             fixed-quota profile run (see $(b,chaos --list)); exits 1 on \
             any Figure-2 verdict mismatch.")
  in
  let arrival = arrival_arg () in
  let rate = rate_arg () in
  let warmup = warmup_arg () in
  let window = window_arg () in
  let format =
    let fmt_conv : [ `Table | `Json ] Arg.conv =
      Arg.enum [ ("table", `Table); ("json", `Json) ]
    in
    Arg.(
      value & opt fmt_conv `Json
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "Stdout rendering: $(b,json) (the canonical byte-deterministic \
             document; the measured summary goes to stderr) or $(b,table) \
             (the human summary).")
  in
  let out =
    out_arg ~doc:"Also write the canonical JSON document here (CI artifact)."
      ()
  in
  let telemetry =
    telemetry_arg
      ~doc:
        "Export the serve telemetry here ($(b,-) for stdout): the \
         canonical registry scraped on the op clock at ts 0 and ts \
         total-requests (profile runs; byte-identical across equal runs) \
         or at the two watchdog samples (chaos runs)."
      ()
  in
  let telemetry_format = telemetry_format_arg () in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a deterministic client population against the sharded \
          transactional KV store: per-domain executors, bounded-queue \
          admission with overload shedding, hot-stripe flat-combining, \
          and Zipfian read-mostly / write-heavy / long-txn / mixed \
          profiles.  Emits a canonical byte-deterministic JSON document; \
          $(b,--scenario) instead injects chaos faults into the serving \
          path and gates on the per-algorithm Figure-2 verdicts.")
    Term.(
      const run $ list_profiles $ profile_arg () $ algo_arg () $ domains
      $ seed $ clients $ ops $ keys $ stripes $ no_batching $ journal
      $ queue_cap $ arrival $ rate $ scenario $ warmup $ window $ format
      $ out $ telemetry $ telemetry_format)

module Loadcurve = Tm_serve.Loadcurve

let loadcurve_cmd =
  let run profile algo domains seed clients ops keys queue_cap quantum
      arrival rates measure format out telemetry telemetry_format =
    let cfg =
      try
        Serve.config ~algo ~clients ~ops ~keys ~queue_cap ~profile ~seed
          ~domains ()
      with Invalid_argument m ->
        Fmt.epr "error: %s@." m;
        exit 2
    in
    let kind =
      Option.value arrival ~default:Tm_serve.Arrival.Poisson
    in
    let on_sample, tel_flush = telemetry_setup telemetry telemetry_format in
    let curve =
      try
        Loadcurve.run ~quantum_ns:quantum ?on_sample ~kind ~ladder:rates cfg
      with Invalid_argument m ->
        Fmt.epr "error: %s@." m;
        exit 2
    in
    (* Canonical JSON on stdout, the human table on stderr (json format),
       mirroring serve: `tmlive loadcurve | cmp` gates stay quiet. *)
    (match format with
    | `Json ->
        Fmt.pr "%s@." (Loadcurve.to_json curve);
        Fmt.epr "%a@." Loadcurve.pp_curve curve
    | `Table -> Fmt.pr "%a@." Loadcurve.pp_curve curve);
    tel_flush ();
    (match out with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        output_string oc (Loadcurve.to_json curve);
        output_char oc '\n';
        close_out oc;
        Fmt.epr "canonical loadcurve document written to %s@." file);
    if measure then begin
      (* Measured rungs: real multicore runs, wall-clock results — all
         on stderr, never canonical. *)
      Fmt.epr "measuring the real server across the ladder (domains=%d, \
               algo=%s)...@."
        domains
        (Tm_stm.Stm.Algo.name algo);
      let ms = Loadcurve.measure ~kind ~ladder:rates cfg in
      List.iter (fun m -> Fmt.epr "%a@." Loadcurve.pp_mpoint m) ms;
      Fmt.epr "measured knee (achieved >= 0.85 offered): %.0f req/s@."
        (Loadcurve.knee (Loadcurve.measure_xy ms))
    end
  in
  let seed = seed_arg ~default:42 () in
  let domains = domains_arg () in
  let clients =
    Arg.(
      value & opt int 10_000
      & info [ "clients" ] ~docv:"N" ~doc:"Simulated client population.")
  in
  let ops =
    Arg.(
      value & opt int 4
      & info [ "ops" ] ~docv:"N" ~doc:"Requests per client.")
  in
  let keys =
    Arg.(value & opt int 1024 & info [ "keys" ] ~docv:"N" ~doc:"Store keys.")
  in
  let queue_cap =
    Arg.(
      value & opt int 2048
      & info [ "queue-cap" ] ~docv:"UNITS"
          ~doc:
            "Admission capacity in cost units; the model sheds an arrival \
             facing more than queue-cap x quantum nanoseconds of backlog.")
  in
  let quantum =
    Arg.(
      value & opt int Loadcurve.default_quantum_ns
      & info [ "quantum" ] ~docv:"NS"
          ~doc:
            "Virtual service time per workload cost unit, in nanoseconds \
             (sets the model server's capacity).")
  in
  let rates =
    rates_arg
      ~default:
        [ 5_000.; 10_000.; 20_000.; 40_000.; 80_000.; 160_000.; 320_000. ]
      ()
  in
  let measure =
    Arg.(
      value & flag
      & info [ "measure" ]
          ~doc:
            "Also run the real multicore server once per rung with the \
             same arrival clock and report wall-clock achieved throughput \
             and open/closed p99 on stderr (informational; the canonical \
             document is unaffected).")
  in
  let format =
    format_arg
      ~doc:
        "Stdout rendering: $(b,table) (human) or $(b,json) (the canonical \
         byte-deterministic loadcurve document; the table goes to stderr)."
      ()
  in
  let out =
    out_arg ~doc:"Also write the canonical JSON document here (CI artifact)."
      ()
  in
  let telemetry =
    telemetry_arg
      ~doc:
        "Export the sweep's telemetry here ($(b,-) for stdout): one \
         deterministic scrape per rung (ts = rung index) with the model's \
         admitted/shed counters and queueing/service/sojourn hires \
         histograms."
      ()
  in
  let telemetry_format = telemetry_format_arg () in
  Cmd.v
    (Cmd.info "loadcurve"
       ~doc:
         "Sweep a rate ladder against the serving path's virtual-time \
          queueing model: offered vs achieved throughput, shed fraction \
          and queueing/service/sojourn percentiles (p50..p99.99) per \
          rung, plus the knee.  The canonical JSON document is \
          byte-identical across runs and across $(b,--domains) choices; \
          $(b,--measure) adds real open-loop server runs on stderr.")
    Term.(
      const run $ profile_arg () $ algo_arg () $ domains $ seed $ clients
      $ ops $ keys $ queue_cap $ quantum $ arrival_arg () $ rates $ measure
      $ format $ out $ telemetry $ telemetry_format)

let () =
  let info =
    Cmd.info "tmlive" ~version:"1.0.0"
      ~doc:
        "Executable companion to 'On the Liveness of Transactional Memory' \
         (PODC 2012)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            zoo_cmd; figures_cmd; simulate_cmd; game_cmd; matrix_cmd;
            monitor_cmd; sweep_cmd; trace_cmd; chaos_cmd; blame_cmd; top_cmd;
            serve_cmd; loadcurve_cmd;
            analyze_cmd; static_cmd; model_check_cmd; explore_cmd;
            crash_windows_cmd; dump_cmd; check_cmd;
          ]))
