(* Tests for the tmserve subsystem: Zipf sanity (qcheck), workload
   determinism and conservation, the Store differential against the
   sequential-map spec under every core in the zoo, the canonical
   serve document's byte-determinism, the op-clock telemetry contract,
   and the chaos-against-the-serving-path verdicts. *)

module Prng = Tm_sim.Prng
module Zipf = Tm_serve.Zipf
module Store = Tm_serve.Store
module Workload = Tm_serve.Workload
module Server = Tm_serve.Server
module Plan = Tm_chaos.Plan
module Tel = Tm_telemetry
module Stm = Tm_stm.Stm

(* ------------------------------------------------------------------ *)
(* Zipf. *)

let small_n = QCheck.Gen.int_range 2 512

let prop_zipf_pmf_monotone =
  QCheck.Test.make ~count:60 ~name:"zipf pmf is nonincreasing in rank"
    QCheck.(make small_n)
    (fun n ->
      let z = Zipf.create ~n () in
      let ok = ref true in
      for r = 1 to n - 1 do
        if Zipf.mass z r > Zipf.mass z (r - 1) +. 1e-12 then ok := false
      done;
      !ok)

let prop_zipf_cum_monotone =
  QCheck.Test.make ~count:60 ~name:"zipf cumulative is monotone to 1"
    QCheck.(make small_n)
    (fun n ->
      let z = Zipf.create ~n () in
      let ok = ref true in
      for r = 1 to n - 1 do
        if Zipf.cumulative_mass z r < Zipf.cumulative_mass z (r - 1) -. 1e-12
        then ok := false
      done;
      !ok && abs_float (Zipf.cumulative_mass z (n - 1) -. 1.0) < 1e-9)

let prop_zipf_sample_deterministic =
  QCheck.Test.make ~count:60 ~name:"zipf sampling is seed-deterministic"
    QCheck.(pair (make small_n) small_int)
    (fun (n, seed) ->
      let z = Zipf.create ~n () in
      let draw () =
        let g = Prng.create seed in
        List.init 64 (fun _ -> Zipf.sample z g)
      in
      let xs = draw () in
      List.for_all (fun r -> r >= 0 && r < n) xs && xs = draw ())

let test_zipf_hot_set_mass () =
  (* At the default s = 1.07 the head is genuinely hot: the top 10% of
     1000 ranks carries well over half the mass, and rank 0 alone beats
     the entire coldest 10%. *)
  let z = Zipf.create ~n:1000 () in
  let top10 = Zipf.cumulative_mass z 99 in
  Alcotest.(check bool) "top-10% mass > 0.5" true (top10 > 0.5);
  Alcotest.(check bool) "top-10% mass < 1.0" true (top10 < 1.0);
  let cold = 1.0 -. Zipf.cumulative_mass z 899 in
  Alcotest.(check bool) "rank 0 beats the coldest decile" true
    (Zipf.mass z 0 > cold);
  Alcotest.(check int) "u=0 inverts to rank 0" 0 (Zipf.sample_u z 0.0);
  Alcotest.(check int) "u->1 inverts to the last rank" 999
    (Zipf.sample_u z 0.999999999)

let test_zipf_sample_matches_inversion () =
  let z = Zipf.create ~n:97 () in
  for seed = 0 to 20 do
    let g1 = Prng.create seed and g2 = Prng.create seed in
    let direct = Zipf.sample z g1 in
    let via_u = Zipf.sample_u z (Zipf.uniform01 g2) in
    Alcotest.(check int) (Fmt.str "seed %d" seed) via_u direct
  done

(* ------------------------------------------------------------------ *)
(* Workload. *)

let test_workload_deterministic () =
  List.iter
    (fun profile ->
      let w1 = Workload.create ~profile ~seed:42 ~keys:256 ()
      and w2 = Workload.create ~profile ~seed:42 ~keys:256 () in
      for client = 0 to 40 do
        for index = 0 to 5 do
          let r1 = Workload.request w1 ~client ~index
          and r2 = Workload.request w2 ~client ~index in
          Alcotest.(check bool)
            (Fmt.str "%s c%d i%d replays" (Workload.profile_name profile)
               client index)
            true (r1 = r2)
        done
      done)
    Workload.profiles

let test_workload_planes_and_conservation () =
  let keys = 128 in
  List.iter
    (fun profile ->
      let w = Workload.create ~profile ~seed:7 ~keys () in
      for client = 0 to 200 do
        let check_op deltas = function
          | Store.O_get k | Store.O_put (k, _) | Store.O_cas (k, _, _) ->
              Alcotest.(check bool) "kv ops hit the even plane" true
                (k >= 0 && k < keys && k mod 2 = 0);
              deltas
          | Store.O_add (k, d) ->
              Alcotest.(check bool) "transfers hit the odd plane" true
                (k >= 0 && k < keys && k mod 2 = 1);
              deltas + d
        in
        match Workload.request w ~client ~index:0 with
        | Workload.Single op -> ignore (check_op 0 op)
        | Workload.Txn ops ->
            Alcotest.(check int) "every transaction conserves" 0
              (List.fold_left check_op 0 ops)
      done)
    Workload.profiles

let test_workload_costs () =
  let w = Workload.create ~profile:Workload.Read_mostly ~seed:1 ~keys:16 () in
  Alcotest.(check int) "get costs 8" 8
    (Workload.cost (Workload.Single (Store.O_get 0)));
  Alcotest.(check int) "put costs 14" 14
    (Workload.cost (Workload.Single (Store.O_put (0, 1))));
  Alcotest.(check int) "txn costs 8 + 6/op" (8 + 12)
    (Workload.cost (Workload.Txn [ Store.O_get 0; Store.O_get 2 ]));
  ignore (Workload.zipf w)

(* ------------------------------------------------------------------ *)
(* Store: differential against the sequential-map spec. *)

let random_ops ~keys ~count seed =
  let g = Prng.create seed in
  List.init count (fun _ ->
      let k = Prng.int g keys in
      match Prng.int g 4 with
      | 0 -> Store.O_get k
      | 1 -> Store.O_put (k, Prng.int g 1000)
      | 2 -> Store.O_add (k, Prng.int g 20 - 10)
      | _ -> Store.O_cas (k, Prng.int g 4, Prng.int g 1000))

(* Single-domain replay: fold the same op stream through the store and
   through the plain-array spec; results and final contents must agree
   under every core. *)
let test_store_differential_sequential () =
  let keys = 32 in
  List.iter
    (fun algo ->
      Stm.with_algo algo (fun () ->
          let st = Store.create ~stripes:8 ~journal:true ~keys () in
          let model = Array.make keys 0 in
          let muts = ref 0 in
          for batch = 0 to 30 do
            let ops = random_ops ~keys ~count:(1 + (batch mod 5)) batch in
            let got = Store.multi st ops in
            let want = List.map (Store.spec_op model) ops in
            if List.exists Store.op_mutates ops then incr muts;
            Alcotest.(check bool)
              (Fmt.str "%s batch %d results" (Stm.Algo.name algo) batch)
              true (got = want)
          done;
          Alcotest.(check (array int))
            (Stm.Algo.name algo ^ " final contents")
            model (Store.dump st);
          Alcotest.(check int)
            (Stm.Algo.name algo ^ " journal counts mutating batches")
            !muts (Store.journal_value st)))
    Stm.Algo.all

(* Concurrent conservation: domains hammer disjoint-sum transfers plus
   journal-marked puts; the counter plane must still sum to zero and
   the journal must count every mutator, under every core. *)
let test_store_differential_concurrent () =
  let keys = 64 and nd = 3 and per = 150 in
  List.iter
    (fun algo ->
      Stm.with_algo algo (fun () ->
          let st = Store.create ~stripes:16 ~journal:true ~keys () in
          let worker d () =
            let g = Prng.create (1000 + d) in
            for _ = 1 to per do
              let a = Prng.int g (keys / 2) in
              let b = (a + 1 + Prng.int g ((keys / 2) - 1)) mod (keys / 2) in
              let d' = 1 + Prng.int g 9 in
              ignore
                (Store.multi st
                   [
                     Store.O_add ((2 * a) + 1, -d');
                     Store.O_add ((2 * b) + 1, d');
                   ])
            done
          in
          let ds = List.init nd (fun d -> Domain.spawn (worker d)) in
          List.iter Domain.join ds;
          let odd_sum = ref 0 in
          Array.iteri
            (fun k v -> if k mod 2 = 1 then odd_sum := !odd_sum + v)
            (Store.dump st);
          Alcotest.(check int)
            (Stm.Algo.name algo ^ " counter plane conserved")
            0 !odd_sum;
          Alcotest.(check int)
            (Stm.Algo.name algo ^ " journal counted every transfer")
            (nd * per) (Store.journal_value st)))
    Stm.Algo.all

(* ------------------------------------------------------------------ *)
(* Server: canonical document and admission model. *)

let small_cfg ?(profile = Workload.Read_mostly) ?(algo = Stm.Algo.Tl2)
    ?(domains = 4) ?(batching = true) ?(journal = false) () =
  Server.config ~algo ~clients:400 ~ops:3 ~keys:128 ~stripes:16 ~batching
    ~journal ~profile ~seed:42 ~domains ()

let test_server_canonical_deterministic () =
  let cfg = small_cfg () in
  let j1 = Server.to_json (Server.run cfg)
  and j2 = Server.to_json (Server.run cfg) in
  Alcotest.(check string) "two runs, byte-identical canonical JSON" j1 j2

let test_server_counts () =
  let cfg = small_cfg ~journal:true () in
  let o = Server.run cfg in
  Alcotest.(check int) "requests = clients * ops"
    (Server.total_requests cfg) o.Server.s_requests;
  Alcotest.(check int) "admitted + shed = requests" o.Server.s_requests
    (o.Server.s_admitted + o.Server.s_shed);
  Alcotest.(check int) "by-kind sums to admitted" o.Server.s_admitted
    (List.fold_left (fun a (_, n) -> a + n) 0 o.Server.s_by_kind);
  Alcotest.(check bool) "journal matches mutators" true
    o.Server.s_journal_ok;
  Alcotest.(check bool) "counter plane conserved" true o.Server.s_conserved;
  let agg f = Array.fold_left (fun a d -> a + f d) 0 o.Server.s_per_domain in
  Alcotest.(check int) "per-domain requests sum" o.Server.s_requests
    (agg (fun d -> d.Server.d_requests));
  Alcotest.(check int) "per-domain admitted sum" o.Server.s_admitted
    (agg (fun d -> d.Server.d_admitted))

let test_server_batching_invariant () =
  (* Batching changes transaction shapes, never the canonical
     admission outcome: only the batched-put count may differ, and
     with batching off it is exactly 0. *)
  let on = Server.run (small_cfg ~profile:Workload.Write_heavy ())
  and off =
    Server.run (small_cfg ~profile:Workload.Write_heavy ~batching:false ())
  in
  Alcotest.(check int) "admitted unchanged" on.Server.s_admitted
    off.Server.s_admitted;
  Alcotest.(check int) "shed unchanged" on.Server.s_shed off.Server.s_shed;
  Alcotest.(check int) "mutators unchanged" on.Server.s_mutators
    off.Server.s_mutators;
  Alcotest.(check bool) "by-kind unchanged" true
    (on.Server.s_by_kind = off.Server.s_by_kind);
  Alcotest.(check int) "no combining when batching is off" 0
    off.Server.s_batched;
  Alcotest.(check bool) "hot write-heavy load does combine" true
    (on.Server.s_batched > 0)

let test_server_long_txn_sheds () =
  let o = Server.run (small_cfg ~profile:Workload.Long_txn ()) in
  Alcotest.(check bool) "long-txn overload sheds" true (o.Server.s_shed > 0);
  let o' = Server.run (small_cfg ~profile:Workload.Long_txn ()) in
  Alcotest.(check int) "shed count is deterministic" o.Server.s_shed
    o'.Server.s_shed

let test_server_admission_matches_iter () =
  (* The executor's shed counters and the pure replay of the admission
     model must agree exactly. *)
  let cfg = small_cfg ~profile:Workload.Long_txn () in
  let o = Server.run cfg in
  let wl = Server.workload cfg in
  for d = 0 to 3 do
    let shed = ref 0 in
    Server.iter_requests cfg wl ~domain:d ~f:(fun ~client:_ ~index:_ _ ~admitted ->
        if not admitted then incr shed);
    Alcotest.(check int)
      (Fmt.str "domain %d shed replay" d)
      o.Server.s_per_domain.(d).Server.d_shed !shed
  done

let test_server_spec_conformance () =
  (* domains=1, batching off: replay the admitted stream through the
     sequential-map spec; the store must end byte-equal. *)
  let cfg =
    Server.config ~clients:300 ~ops:3 ~keys:64 ~stripes:8 ~batching:false
      ~profile:Workload.Mixed ~seed:11 ~domains:1 ()
  in
  let o = Server.run cfg in
  Alcotest.(check bool) "run conserved" true o.Server.s_conserved;
  let wl = Server.workload cfg in
  let model = Array.make cfg.Server.c_keys 0 in
  Server.iter_requests cfg wl ~domain:0 ~f:(fun ~client:_ ~index:_ req ~admitted ->
      if admitted then
        match req with
        | Workload.Single op -> ignore (Store.spec_op model op)
        | Workload.Txn ops -> List.iter (fun op -> ignore (Store.spec_op model op)) ops);
  let odd = ref 0 in
  Array.iteri (fun k v -> if k mod 2 = 1 then odd := !odd + v) model;
  Alcotest.(check int) "spec replay conserves too" 0 !odd

(* ------------------------------------------------------------------ *)
(* Op-clock telemetry: the serving-mode export regression. *)

let test_server_telemetry_op_clock () =
  let cfg = small_cfg () in
  let capture () =
    let snaps = ref [] in
    let o = Server.run ~on_sample:(fun s -> snaps := s :: !snaps) cfg in
    ignore o;
    List.rev_map Tel.Export.to_jsonl !snaps
  in
  let run1 = capture () in
  Alcotest.(check int) "two scrapes per run" 2 (List.length run1);
  Alcotest.(check bool) "byte-deterministic serving-mode export" true
    (run1 = capture ());
  (* The timestamps are the op clock — 0 and total-requests — never
     the wall clock. *)
  let snaps = ref [] in
  ignore (Server.run ~on_sample:(fun s -> snaps := s :: !snaps) cfg);
  let ts = List.rev_map (fun s -> s.Tel.Registry.ts) !snaps in
  Alcotest.(check (list int)) "scrape ts on the op clock"
    [ 0; Server.total_requests cfg ]
    ts

(* ------------------------------------------------------------------ *)
(* Arrival schedules and the load curve. *)

module Arrival = Tm_serve.Arrival
module Loadcurve = Tm_serve.Loadcurve

let prop_arrival_deterministic =
  QCheck.Test.make ~count:100
    ~name:"arrival schedule is a pure function of (kind, rate, seed)"
    QCheck.(triple bool (int_range 1 1_000) small_int)
    (fun (poisson, rate_k, seed) ->
      let kind = if poisson then Arrival.Poisson else Arrival.Constant in
      let rate = float_of_int (rate_k * 100) in
      let sched () =
        Arrival.schedule (Arrival.make ~kind ~rate ~seed) ~n:64
      in
      let s = sched () in
      s = sched ()
      && s.(0) >= 0
      && Array.for_all (fun t -> t >= 0) s
      &&
      let ok = ref true in
      for i = 1 to 63 do
        if s.(i) < s.(i - 1) then ok := false
      done;
      !ok)

let test_arrival_constant () =
  let a = Arrival.make ~kind:Arrival.Constant ~rate:1_000_000. ~seed:0 in
  Alcotest.(check int) "period" 1_000 (Arrival.period_ns a);
  Alcotest.(check (array int)) "metronome"
    [| 0; 1_000; 2_000; 3_000 |]
    (Arrival.schedule a ~n:4);
  Alcotest.check_raises "rate must be positive"
    (Invalid_argument "Arrival.make: rate must be positive") (fun () ->
      ignore (Arrival.make ~kind:Arrival.Constant ~rate:0. ~seed:0))

let test_arrival_cursor_stride () =
  (* A domain serving every 4th global index skips to it and reads the
     same arrival time the flat schedule assigns — the striding
     contract the open-loop server relies on. *)
  let a = Arrival.make ~kind:Arrival.Poisson ~rate:50_000. ~seed:7 in
  let sched = Arrival.schedule a ~n:100 in
  for d = 0 to 3 do
    let c = Arrival.cursor a in
    let prev = ref (-1) in
    for i = 0 to 24 do
      let g = (i * 4) + d in
      Arrival.skip c (g - !prev - 1);
      prev := g;
      Alcotest.(check int)
        (Fmt.str "domain %d arrival %d" d g)
        sched.(g) (Arrival.next c)
    done
  done

let lc_cfg domains =
  Server.config ~clients:500 ~ops:2 ~keys:64 ~profile:Workload.Mixed
    ~seed:42 ~domains ()

let test_loadcurve_deterministic () =
  let ladder = [ 10_000.; 50_000.; 200_000.; 1_000_000. ] in
  let run domains =
    Loadcurve.to_json
      (Loadcurve.run ~kind:Arrival.Poisson ~ladder (lc_cfg domains))
  in
  let j1 = run 1 in
  Alcotest.(check string) "two runs, byte-identical" j1 (run 1);
  Alcotest.(check string) "domains 1 vs 4, byte-identical" j1 (run 4)

let test_loadcurve_counts_and_knee () =
  let ladder = [ 10_000.; 100_000.; 1_000_000.; 10_000_000. ] in
  let curve = Loadcurve.run ~kind:Arrival.Constant ~ladder (lc_cfg 1) in
  let offered = 500 * 2 in
  List.iter
    (fun p ->
      Alcotest.(check int) "offered = clients * ops" offered
        p.Loadcurve.p_offered;
      Alcotest.(check int) "admitted + shed = offered" offered
        (p.Loadcurve.p_admitted + p.Loadcurve.p_shed))
    curve.Loadcurve.v_points;
  let sheds = List.map (fun p -> p.Loadcurve.p_shed) curve.Loadcurve.v_points in
  Alcotest.(check int) "no shedding far below capacity" 0 (List.hd sheds);
  Alcotest.(check bool) "overload sheds" true
    (List.nth sheds 3 > 0);
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "shed is monotone in offered rate" true
    (nondecreasing sheds);
  let k = Loadcurve.knee (Loadcurve.curve_xy curve) in
  Alcotest.(check bool) "knee lies inside the swept ladder" true
    (List.mem k ladder);
  Alcotest.check_raises "empty ladder rejected"
    (Invalid_argument "Loadcurve.run: empty ladder") (fun () ->
      ignore (Loadcurve.run ~kind:Arrival.Constant ~ladder:[] (lc_cfg 1)))

let test_server_open_loop_invariance () =
  (* The arrival clock paces dispatch but never the canonical outcome:
     admissions match the closed-loop run exactly and the document
     differs only in its arrival echo. *)
  let cfg = small_cfg ~domains:2 () in
  let closed = Server.run cfg in
  let arrival =
    Arrival.make ~kind:Arrival.Poisson ~rate:2_000_000. ~seed:42
  in
  let ocfg = { cfg with Server.c_arrival = Some arrival } in
  let opened = Server.run ocfg in
  Alcotest.(check int) "admitted unchanged" closed.Server.s_admitted
    opened.Server.s_admitted;
  Alcotest.(check int) "shed unchanged" closed.Server.s_shed
    opened.Server.s_shed;
  Alcotest.(check bool) "by-kind unchanged" true
    (closed.Server.s_by_kind = opened.Server.s_by_kind);
  Alcotest.(check string) "open-loop canonical json byte-deterministic"
    (Server.to_json opened)
    (Server.to_json (Server.run ocfg));
  Alcotest.(check bool) "closed run carries no recorder summary" true
    (closed.Server.s_open = None);
  Alcotest.(check bool) "open run carries one" true
    (opened.Server.s_open <> None);
  (* The two documents differ only in the arrival echo. *)
  let replace_once ~sub ~by s =
    let n = String.length s and m = String.length sub in
    let rec find i =
      if i + m > n then None
      else if String.sub s i m = sub then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> s
    | Some i -> String.sub s 0 i ^ by ^ String.sub s (i + m) (n - i - m)
  in
  Alcotest.(check string) "documents agree outside the arrival field"
    (Server.to_json closed)
    (replace_once
       ~sub:{|"arrival":{"kind":"poisson","rate":2000000.0}|}
       ~by:{|"arrival":{"kind":"closed"}|}
       (Server.to_json opened))

(* ------------------------------------------------------------------ *)
(* Chaos against the serving path. *)

let chaos_cfg algo =
  Server.config ~algo ~clients:64 ~ops:4 ~keys:64 ~stripes:8
    ~profile:Workload.Write_heavy ~seed:42 ~domains:4 ()

let test_chaos_serve_verdicts algo () =
  match Plan.make ~algo ~scenario:"crash-holding-locks" ~seed:42 ~domains:4 ()
  with
  | Error m -> Alcotest.fail m
  | Ok plan ->
      let o = Server.chaos_run plan (chaos_cfg algo) in
      Alcotest.(check bool)
        (Stm.Algo.name algo ^ " serving path matches Figure-2 verdicts")
        true o.Server.k_ok;
      Alcotest.(check int) "one report per domain" 4
        (List.length o.Server.k_reports);
      (* The canonical verdict document replays byte-identically. *)
      Alcotest.(check bool) "chaos json stable" true
        (String.length (Server.chaos_to_json o) > 0)

let test_chaos_serve_healthy () =
  match Plan.make ~scenario:"healthy" ~seed:1 ~domains:2 () with
  | Error m -> Alcotest.fail m
  | Ok plan ->
      let o = Server.chaos_run plan (chaos_cfg Stm.Algo.Tl2) in
      Alcotest.(check bool) "healthy serving run progresses" true
        o.Server.k_ok

(* ------------------------------------------------------------------ *)

let qsuite = List.map QCheck_alcotest.to_alcotest
  [ prop_zipf_pmf_monotone; prop_zipf_cum_monotone;
    prop_zipf_sample_deterministic ]

let () =
  Alcotest.run "serve"
    [
      ( "zipf",
        qsuite
        @ [
            Alcotest.test_case "hot-set mass" `Quick test_zipf_hot_set_mass;
            Alcotest.test_case "sample = inversion" `Quick
              test_zipf_sample_matches_inversion;
          ] );
      ( "workload",
        [
          Alcotest.test_case "deterministic replay" `Quick
            test_workload_deterministic;
          Alcotest.test_case "planes and conservation" `Quick
            test_workload_planes_and_conservation;
          Alcotest.test_case "admission costs" `Quick test_workload_costs;
        ] );
      ( "store",
        [
          Alcotest.test_case "differential vs spec (sequential)" `Quick
            test_store_differential_sequential;
          Alcotest.test_case "differential vs spec (concurrent)" `Quick
            test_store_differential_concurrent;
        ] );
      ( "server",
        [
          Alcotest.test_case "canonical json byte-deterministic" `Quick
            test_server_canonical_deterministic;
          Alcotest.test_case "count invariants" `Quick test_server_counts;
          Alcotest.test_case "batching leaves canon unchanged" `Quick
            test_server_batching_invariant;
          Alcotest.test_case "long-txn sheds deterministically" `Quick
            test_server_long_txn_sheds;
          Alcotest.test_case "admission matches pure replay" `Quick
            test_server_admission_matches_iter;
          Alcotest.test_case "sequential-spec conformance" `Quick
            test_server_spec_conformance;
          Alcotest.test_case "telemetry rides the op clock" `Quick
            test_server_telemetry_op_clock;
        ] );
      ( "arrival",
        [
          QCheck_alcotest.to_alcotest prop_arrival_deterministic;
          Alcotest.test_case "constant kind is a metronome" `Quick
            test_arrival_constant;
          Alcotest.test_case "cursor striding matches the schedule" `Quick
            test_arrival_cursor_stride;
        ] );
      ( "loadcurve",
        [
          Alcotest.test_case "canonical json ignores domains" `Quick
            test_loadcurve_deterministic;
          Alcotest.test_case "counts, shedding and the knee" `Quick
            test_loadcurve_counts_and_knee;
          Alcotest.test_case "open loop leaves the canon unchanged" `Quick
            test_server_open_loop_invariance;
        ] );
      ( "chaos-serve",
        [
          Alcotest.test_case "crash-holding-locks tl2" `Quick
            (test_chaos_serve_verdicts Stm.Algo.Tl2);
          Alcotest.test_case "crash-holding-locks dstm" `Quick
            (test_chaos_serve_verdicts Stm.Algo.Dstm);
          Alcotest.test_case "healthy" `Quick test_chaos_serve_healthy;
        ] );
    ]
