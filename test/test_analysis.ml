(* The lint engine: vector clocks, the history/lasso/trace analyzers on
   clean corpora (zero findings) and on seeded violations (the right rule
   fires), rule selection, and the findings JSON document. *)

open Tm_history
module An = Tm_analysis
module Tev = Tm_trace.Trace_event

let rules_of fs = List.sort_uniq compare (List.map (fun f -> f.An.Finding.rule) fs)

let has_rule r fs = List.mem r (rules_of fs)

let check_clean what fs =
  Alcotest.(check (list string)) (what ^ ": no findings") [] (rules_of fs)

(* ------------------------------------------------------------------ *)
(* Vector clocks. *)

let test_vclock () =
  let module V = An.Vclock in
  let a = V.tick (V.tick V.zero 1) 1 in
  let b = V.tick V.zero 2 in
  Alcotest.(check int) "tick counts" 2 (V.get a 1);
  Alcotest.(check int) "absent is 0" 0 (V.get a 2);
  Alcotest.(check bool) "zero <= anything" true (V.leq V.zero a);
  Alcotest.(check bool) "a </= b" false (V.leq a b);
  Alcotest.(check bool) "independent ticks are concurrent" true
    (V.concurrent a b);
  let j = V.join a b in
  Alcotest.(check bool) "a <= join a b" true (V.leq a j);
  Alcotest.(check bool) "b <= join a b" true (V.leq b j);
  Alcotest.(check bool) "join is lub" true
    (V.equal j (V.join b a));
  Alcotest.(check bool) "not concurrent with own join" false
    (V.concurrent a j && V.concurrent b j)

(* ------------------------------------------------------------------ *)
(* Generators (same shape as test_history's). *)

let gen_invocation =
  QCheck2.Gen.(
    oneof
      [
        map (fun x -> Event.Read x) (int_bound 3);
        map2 (fun x v -> Event.Write (x, v)) (int_bound 3) (int_bound 5);
        return Event.Try_commit;
      ])

let gen_response_for inv =
  QCheck2.Gen.(
    match inv with
    | Event.Read _ ->
        oneof
          [ map (fun v -> Event.Value v) (int_bound 5); return Event.Aborted ]
    | Event.Write _ -> oneofl [ Event.Ok_written; Event.Aborted ]
    | Event.Try_commit -> oneofl [ Event.Committed; Event.Aborted ])

let gen_history =
  QCheck2.Gen.(
    let* nprocs = int_range 1 4 in
    let* nsteps = int_range 0 40 in
    let rec go pending acc n =
      if n = 0 then return (List.rev acc)
      else
        let* p = int_range 1 nprocs in
        match List.assoc_opt p pending with
        | None ->
            let* inv = gen_invocation in
            go ((p, inv) :: pending) (Event.Inv (p, inv) :: acc) (n - 1)
        | Some inv ->
            let* res = gen_response_for inv in
            go
              (List.remove_assoc p pending)
              (Event.Res (p, res) :: acc)
              (n - 1)
    in
    let* es = go [] [] nsteps in
    return (History.of_events es))

(* ------------------------------------------------------------------ *)
(* History lints: clean corpora. *)

let prop_generated_histories_clean =
  QCheck2.Test.make ~count:300 ~name:"well-formed histories lint clean"
    gen_history (fun h ->
      An.Engine.run_history ~subject:"gen" h = [])

let test_figures_clean () =
  List.iter
    (fun (name, h) ->
      check_clean name (An.Engine.run_history ~subject:name h))
    Figures.all_finite;
  List.iter
    (fun (name, l) -> check_clean name (An.Engine.run_lasso ~subject:name l))
    Figures.all_lassos

let test_runner_histories_clean () =
  List.iter
    (fun entry ->
      let spec =
        Tm_sim.Runner.spec ~nprocs:3 ~ntvars:2 ~steps:400 ~seed:11
          ~sched:Tm_sim.Runner.Uniform ()
      in
      let o = Tm_sim.Runner.run entry spec in
      check_clean entry.Tm_impl.Registry.entry_name
        (An.Engine.run_history ~subject:entry.Tm_impl.Registry.entry_name
           o.Tm_sim.Runner.history))
    Tm_impl.Registry.all

(* ------------------------------------------------------------------ *)
(* History lints: seeded violations. *)

(* Duplicating a response always leaves the second copy orphaned. *)
let prop_duplicated_response_flagged =
  QCheck2.Test.make ~count:300 ~name:"duplicated response -> wf-orphan-response"
    gen_history (fun h ->
      let es = History.events h in
      match List.find_opt Event.is_response es with
      | None -> QCheck2.assume_fail ()
      | Some r ->
          let rec dup = function
            | [] -> []
            | e :: rest when e = r -> e :: r :: rest
            | e :: rest -> e :: dup rest
          in
          has_rule "wf-orphan-response"
            (An.Engine.run_history ~subject:"mut"
               (History.of_events (dup es))))

(* Dropping a response whose process appears again later always breaks
   alternation at that later invocation. *)
let prop_dropped_response_flagged =
  QCheck2.Test.make ~count:300 ~name:"dropped response -> wf-alternation"
    gen_history (fun h ->
      let es = History.events h in
      let arr = Array.of_list es in
      let n = Array.length arr in
      let victim =
        let rec find i =
          if i >= n then None
          else
            let p = Event.proc arr.(i) in
            if
              Event.is_response arr.(i)
              && List.exists
                   (fun j -> Event.proc arr.(j) = p && Event.is_invocation arr.(j))
                   (List.init (n - i - 1) (fun k -> i + 1 + k))
            then Some i
            else find (i + 1)
        in
        find 0
      in
      match victim with
      | None -> QCheck2.assume_fail ()
      | Some i ->
          let es' = List.filteri (fun j _ -> j <> i) es in
          has_rule "wf-alternation"
            (An.Engine.run_history ~subject:"mut" (History.of_events es')))

(* Replacing a matched response with one of the wrong kind. *)
let prop_wrong_response_kind_flagged =
  QCheck2.Test.make ~count:300 ~name:"wrong response kind -> wf-response-match"
    gen_history (fun h ->
      let es = History.events h in
      let pending = Hashtbl.create 8 in
      let target = ref None in
      List.iteri
        (fun i e ->
          match e with
          | Event.Inv (p, inv) -> Hashtbl.replace pending p inv
          | Event.Res (p, r) -> (
              match Hashtbl.find_opt pending p with
              | Some inv when Event.matches inv r && !target = None ->
                  Hashtbl.remove pending p;
                  target := Some (i, p, inv)
              | _ -> Hashtbl.remove pending p))
        es;
      match !target with
      | None -> QCheck2.assume_fail ()
      | Some (i, p, inv) ->
          let wrong =
            match inv with
            | Event.Read _ -> Event.Committed
            | Event.Write _ -> Event.Value 0
            | Event.Try_commit -> Event.Ok_written
          in
          let es' =
            List.mapi
              (fun j e -> if j = i then Event.Res (p, wrong) else e)
              es
          in
          has_rule "wf-response-match"
            (An.Engine.run_history ~subject:"mut" (History.of_events es')))

let dummy_txn ~proc ~seq ~first_pos ~last_pos =
  {
    Transaction.proc;
    seq;
    first_pos;
    last_pos;
    events = [];
    ops = [];
    status = Transaction.Live;
    attempted_commit = false;
  }

let test_duplicate_txn_id_flagged () =
  let txns =
    [
      dummy_txn ~proc:1 ~seq:0 ~first_pos:0 ~last_pos:1;
      dummy_txn ~proc:1 ~seq:0 ~first_pos:2 ~last_pos:3;
    ]
  in
  Alcotest.(check bool) "txn-unique-id fires" true
    (has_rule "txn-unique-id"
       (An.History_lint.check_transactions ~subject:"fixture" txns))

let test_txn_interval_flagged () =
  let overlapping =
    [
      dummy_txn ~proc:1 ~seq:0 ~first_pos:0 ~last_pos:5;
      dummy_txn ~proc:1 ~seq:1 ~first_pos:4 ~last_pos:8;
    ]
  in
  Alcotest.(check bool) "overlap fires txn-interval" true
    (has_rule "txn-interval"
       (An.History_lint.check_transactions ~subject:"fixture" overlapping));
  let backwards = [ dummy_txn ~proc:2 ~seq:0 ~first_pos:9 ~last_pos:3 ] in
  Alcotest.(check bool) "backwards interval fires txn-interval" true
    (has_rule "txn-interval"
       (An.History_lint.check_transactions ~subject:"fixture" backwards));
  let clean =
    [
      dummy_txn ~proc:1 ~seq:0 ~first_pos:0 ~last_pos:3;
      dummy_txn ~proc:1 ~seq:1 ~first_pos:4 ~last_pos:8;
      dummy_txn ~proc:2 ~seq:0 ~first_pos:1 ~last_pos:6;
    ]
  in
  check_clean "disjoint intervals"
    (An.History_lint.check_transactions ~subject:"fixture" clean)

(* ------------------------------------------------------------------ *)
(* Trace lints. *)

let ev ?(pid = 0) ?(args = []) ?(phase = Tev.Instant) ~ts ~tid ~cat name =
  { Tev.ts; pid; tid; cat; name; phase; args }

let acquire ~ts ~tid x =
  ev ~ts ~tid ~cat:Tev.Lock ~args:[ ("tvar", Tev.Int x) ] "acquire"

let release ~ts ~tid x =
  ev ~ts ~tid ~cat:Tev.Lock ~args:[ ("tvar", Tev.Int x) ] "release"

let publish ~ts ~tid x =
  ev ~ts ~tid ~cat:Tev.Txn ~args:[ ("tvar", Tev.Int x) ] "publish"

let attempt_end ~ts ~tid =
  ev ~ts ~tid ~cat:Tev.Txn ~phase:Tev.Span_end
    ~args:[ ("outcome", Tev.Str "commit") ]
    "attempt"

(* A clean two-domain TL2 commit pair: domain 1 commits x0,x1; then
   domain 2 does the same, with the happens-before edge through the lock
   releases. *)
let clean_trace =
  [
    acquire ~ts:0 ~tid:1 0;
    acquire ~ts:1 ~tid:1 1;
    publish ~ts:2 ~tid:1 0;
    release ~ts:3 ~tid:1 0;
    publish ~ts:4 ~tid:1 1;
    release ~ts:5 ~tid:1 1;
    attempt_end ~ts:6 ~tid:1;
    acquire ~ts:7 ~tid:2 0;
    acquire ~ts:8 ~tid:2 1;
    publish ~ts:9 ~tid:2 0;
    release ~ts:10 ~tid:2 0;
    publish ~ts:11 ~tid:2 1;
    release ~ts:12 ~tid:2 1;
    attempt_end ~ts:13 ~tid:2;
  ]

let lint tr = An.Engine.run_trace ~subject:"fixture" tr

let test_clean_trace () =
  check_clean "clean protocol trace" (lint clean_trace);
  (* Lock-order edges are recorded even when nothing is wrong. *)
  Alcotest.(check (list (pair int int)))
    "edges" [ (0, 1) ]
    (An.Trace_lint.lock_order_edges clean_trace)

let test_lock_overlap () =
  (* Domain 2 acquires x0 before domain 1 released it. *)
  let tr =
    [
      acquire ~ts:0 ~tid:1 0;
      acquire ~ts:1 ~tid:2 0;
      release ~ts:2 ~tid:1 0;
      release ~ts:3 ~tid:2 0;
      attempt_end ~ts:4 ~tid:1;
      attempt_end ~ts:5 ~tid:2;
    ]
  in
  Alcotest.(check bool) "lock-overlap fires" true
    (has_rule "lock-overlap" (lint tr))

let test_unlock_without_lock () =
  let tr = [ release ~ts:0 ~tid:1 3; attempt_end ~ts:1 ~tid:1 ] in
  Alcotest.(check (list string))
    "only unlock-without-lock" [ "unlock-without-lock" ]
    (rules_of (lint tr))

let test_publish_without_lock () =
  let tr = [ publish ~ts:0 ~tid:1 2; attempt_end ~ts:1 ~tid:1 ] in
  Alcotest.(check bool) "publish-without-lock fires" true
    (has_rule "publish-without-lock" (lint tr))

let test_acquire_after_publish () =
  let tr =
    [
      acquire ~ts:0 ~tid:1 0;
      publish ~ts:1 ~tid:1 0;
      acquire ~ts:2 ~tid:1 1;
      release ~ts:3 ~tid:1 0;
      release ~ts:4 ~tid:1 1;
      attempt_end ~ts:5 ~tid:1;
    ]
  in
  Alcotest.(check bool) "acquire-after-publish fires" true
    (has_rule "acquire-after-publish" (lint tr))

let test_lock_leak_and_hb_race () =
  (* Drop domain 1's release: the attempt leaks its lock, and without the
     release -> acquire edge domain 2's publish is concurrent with domain
     1's — the vector clocks expose both. *)
  let tr =
    [
      acquire ~ts:0 ~tid:1 0;
      publish ~ts:1 ~tid:1 0;
      attempt_end ~ts:2 ~tid:1;
      acquire ~ts:3 ~tid:2 0;
      publish ~ts:4 ~tid:2 0;
      release ~ts:5 ~tid:2 0;
      attempt_end ~ts:6 ~tid:2;
    ]
  in
  let fs = lint tr in
  Alcotest.(check bool) "lock-leak fires" true (has_rule "lock-leak" fs);
  Alcotest.(check bool) "hb-race fires" true (has_rule "hb-race" fs);
  (* Restoring the release clears both. *)
  let fixed =
    [
      acquire ~ts:0 ~tid:1 0;
      publish ~ts:1 ~tid:1 0;
      release ~ts:2 ~tid:1 0;
      attempt_end ~ts:3 ~tid:1;
      acquire ~ts:4 ~tid:2 0;
      publish ~ts:5 ~tid:2 0;
      release ~ts:6 ~tid:2 0;
      attempt_end ~ts:7 ~tid:2;
    ]
  in
  check_clean "with the release restored" (lint fixed)

let test_trace_end_leak_is_warning () =
  let tr = [ acquire ~ts:0 ~tid:1 0 ] in
  match lint tr with
  | [ f ] ->
      Alcotest.(check string) "rule" "lock-leak" f.An.Finding.rule;
      Alcotest.(check string) "severity" "warning"
        (An.Finding.severity_label f.An.Finding.severity)
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

let test_lock_order_cycle () =
  (* Domain 1 takes 0 then 1; domain 2 (later, no overlap) takes 1 then
     0: the classic deadlock shape, visible only in the order graph. *)
  let tr =
    [
      acquire ~ts:0 ~tid:1 0;
      acquire ~ts:1 ~tid:1 1;
      release ~ts:2 ~tid:1 1;
      release ~ts:3 ~tid:1 0;
      attempt_end ~ts:4 ~tid:1;
      acquire ~ts:5 ~tid:2 1;
      acquire ~ts:6 ~tid:2 0;
      release ~ts:7 ~tid:2 0;
      release ~ts:8 ~tid:2 1;
      attempt_end ~ts:9 ~tid:2;
    ]
  in
  let fs = lint tr in
  Alcotest.(check (list string)) "only the cycle" [ "lock-order-cycle" ]
    (rules_of fs)

let test_lanes_are_independent () =
  (* The same tid leaking in pid-lane 0 must not contaminate lane 1. *)
  let leak = [ acquire ~ts:0 ~tid:1 0 ] in
  let clean_lane = List.map (fun e -> { e with Tev.pid = 1 }) clean_trace in
  let fs = lint (leak @ clean_lane) in
  Alcotest.(check (list string)) "one warning from lane 0" [ "lock-leak" ]
    (rules_of fs)

(* The real runtime, multicore, traced: the protocol analyzers must come
   up empty, and TL2's canonical lock order must make every order-graph
   edge ascending. *)
let test_stm_multicore_trace_clean () =
  let module Stm = Tm_stm.Stm in
  let n = 4 in
  let accounts = Array.init n (fun _ -> Stm.tvar 100) in
  Stm.Trace.start ~capacity:(1 lsl 16) ();
  let worker k () =
    for i = 1 to 300 do
      let src = (i * (k + 1)) mod n in
      let dst = (i + k) mod n in
      Stm.atomically (fun () ->
          let v = Stm.read accounts.(src) in
          Stm.write accounts.(src) (v - 1);
          Stm.write accounts.(dst) (Stm.read accounts.(dst) + 1))
    done
  in
  let domains = List.init 4 (fun k -> Domain.spawn (worker k)) in
  List.iter Domain.join domains;
  Stm.Trace.stop ();
  Alcotest.(check int) "no ring truncation" 0 (Stm.Trace.dropped ());
  let events = Stm.Trace.events () in
  Alcotest.(check bool) "trace is non-trivial" true
    (List.length events > 100);
  check_clean "real multicore commit protocol"
    (An.Engine.run_trace ~subject:"stm" events);
  Alcotest.(check bool) "canonical order: every edge ascends" true
    (List.for_all (fun (a, b) -> a < b)
       (An.Trace_lint.lock_order_edges events))

(* ------------------------------------------------------------------ *)
(* The blame rule: blame-evidence instants must agree with the chaos
   verdicts in the same trace, and a starving domain may not pin its
   starvation on a fault-free progressing peer. *)

let chaos_fault ~ts ~tid name = Tev.instant ~ts ~tid Tev.Fault name []

let chaos_verdict ~ts ~tid cls =
  Tev.instant ~ts ~tid Tev.Monitor "chaos-verdict"
    [ ("class", Tev.Str cls); ("expected", Tev.Str cls) ]

let blame_evidence ~ts ~tid ev =
  Tev.instant ~ts ~tid Tev.Monitor "blame-evidence"
    [ ("evidence", Tev.Str ev); ("shape", Tev.Str "star:0") ]

let run_blame_rule events =
  An.Engine.run_trace ~rules:[ "blame" ] ~subject:"fixture" events

let blame_fixture =
  [
    chaos_fault ~ts:10 ~tid:0 "chaos-crash";
    chaos_verdict ~ts:100 ~tid:0 "crashed";
    chaos_verdict ~ts:100 ~tid:1 "starving";
    chaos_verdict ~ts:100 ~tid:2 "progressing";
    blame_evidence ~ts:100 ~tid:0 "crashed";
    blame_evidence ~ts:100 ~tid:1 "starved-by:0";
    blame_evidence ~ts:100 ~tid:2 "progressing";
  ]

let test_blame_rule_clean () =
  check_clean "agreeing evidence" (run_blame_rule blame_fixture)

let test_blame_rule_falsified_evidence () =
  (* The CI falsification gate in miniature: rewrite the starving
     domain's evidence to "progressing" and the rule must fire. *)
  let falsify e =
    if e.Tev.name = "blame-evidence" && e.Tev.tid = 1 then
      blame_evidence ~ts:e.Tev.ts ~tid:1 "progressing"
    else e
  in
  let fs = run_blame_rule (List.map falsify blame_fixture) in
  Alcotest.(check int) "one error" 1 (List.length fs);
  Alcotest.(check bool) "rule is blame" true (has_rule "blame" fs)

let test_blame_rule_verdict_mismatch () =
  (* The other direction: a crashed verdict whose evidence says
     something else. *)
  let fs =
    run_blame_rule
      [
        chaos_fault ~ts:10 ~tid:0 "chaos-crash";
        chaos_verdict ~ts:100 ~tid:0 "crashed";
        blame_evidence ~ts:100 ~tid:0 "contended";
      ]
  in
  Alcotest.(check int) "one error" 1 (List.length fs)

let test_blame_rule_scapegoat () =
  (* Domain 1 starves and pins domain 0 — but domain 0 is fault-free
     and progressing, so the attribution slanders a healthy peer. *)
  let fs =
    run_blame_rule
      [
        chaos_verdict ~ts:100 ~tid:0 "progressing";
        chaos_verdict ~ts:100 ~tid:1 "starving";
        blame_evidence ~ts:100 ~tid:0 "progressing";
        blame_evidence ~ts:100 ~tid:1 "starved-by:0";
      ]
  in
  Alcotest.(check int) "one error" 1 (List.length fs);
  (* The same pin is legitimate once domain 0 carries an injected
     fault (a parasite is "progressing" to nobody). *)
  check_clean "pinning a faulty domain is allowed"
    (run_blame_rule
       [
         chaos_fault ~ts:10 ~tid:0 "chaos-parasitic";
         chaos_verdict ~ts:100 ~tid:0 "parasitic";
         chaos_verdict ~ts:100 ~tid:1 "starving";
         blame_evidence ~ts:100 ~tid:0 "parasitic";
         blame_evidence ~ts:100 ~tid:1 "starved-by:0";
       ])

let test_blame_rule_exempt_without_evidence () =
  (* Traces with verdicts but no blame instants (blame not armed) are
     exempt. *)
  check_clean "no evidence, no findings"
    (run_blame_rule
       [
         chaos_fault ~ts:10 ~tid:0 "chaos-crash";
         chaos_verdict ~ts:100 ~tid:0 "crashed";
         chaos_verdict ~ts:100 ~tid:1 "starving";
       ])

(* ------------------------------------------------------------------ *)
(* Engine: selection, filtering, exit code. *)

let test_rule_selection () =
  (match An.Engine.parse_selection "all" with
  | Ok ids ->
      Alcotest.(check (list string)) "all = catalogue" An.Engine.rule_ids ids
  | Error m -> Alcotest.fail m);
  (match An.Engine.parse_selection "hb-race, lock-leak" with
  | Ok ids -> Alcotest.(check (list string)) "split+trim"
                [ "hb-race"; "lock-leak" ] ids
  | Error m -> Alcotest.fail m);
  (match An.Engine.parse_selection "no-such-rule" with
  | Ok _ -> Alcotest.fail "accepted an unknown rule"
  | Error _ -> ());
  (* Filtering: the overlap fixture reports nothing when only the cycle
     rule is selected. *)
  let tr =
    [
      acquire ~ts:0 ~tid:1 0;
      acquire ~ts:1 ~tid:2 0;
      release ~ts:2 ~tid:1 0;
      release ~ts:3 ~tid:2 0;
      attempt_end ~ts:4 ~tid:1;
      attempt_end ~ts:5 ~tid:2;
    ]
  in
  check_clean "filtered out"
    (An.Engine.run_trace ~rules:[ "lock-order-cycle" ] ~subject:"fixture" tr)

let test_exit_code () =
  Alcotest.(check int) "no findings -> 0" 0 (An.Engine.exit_code []);
  let w =
    An.Finding.v ~rule:"lock-leak" ~severity:An.Finding.Warning ~subject:"s"
      "w"
  in
  let e =
    An.Finding.v ~rule:"hb-race" ~severity:An.Finding.Error ~subject:"s" "e"
  in
  Alcotest.(check int) "warnings alone -> 0" 0 (An.Engine.exit_code [ w ]);
  Alcotest.(check int) "any error -> 1" 1 (An.Engine.exit_code [ w; e ])

let test_findings_json () =
  let fs =
    [
      An.Finding.v ~rule:"hb-race" ~severity:An.Finding.Error ~subject:"t"
        ~location:(An.Finding.At_ts (4, 2))
        "msg \"quoted\"";
      An.Finding.v ~rule:"lock-leak" ~severity:An.Finding.Warning ~subject:"t"
        "w";
    ]
  in
  let json = An.Finding.list_to_json fs in
  Alcotest.(check string) "deterministic" json (An.Finding.list_to_json fs);
  let contains needle =
    let n = String.length needle and m = String.length json in
    let rec go i = i + n <= m && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counts" true
    (contains "\"counts\":{\"error\":1,\"warning\":1,\"info\":0}");
  Alcotest.(check bool) "escaping" true (contains "msg \\\"quoted\\\"");
  (* Errors sort first. *)
  Alcotest.(check bool) "severity order" true
    (match List.sort An.Finding.compare fs with
    | f :: _ -> f.An.Finding.rule = "hb-race"
    | [] -> false)

(* Round-trip through the file formats the CLI consumes. *)
let test_history_file_lax_round_trip () =
  Tm_test_util.Util.with_temp_file ~suffix:".txt" (fun path ->
      (* An ill-formed event list: response with no invocation. *)
      Tm_test_util.Util.write_file path "res 1 commit\n";
      match Codec.history_of_string_lax (Tm_test_util.Util.read_file path) with
      | Error m -> Alcotest.failf "lax parse failed: %s" m
      | Ok h ->
          Alcotest.(check bool) "orphan response flagged" true
            (has_rule "wf-orphan-response"
               (An.Engine.run_history ~subject:"file" h));
          Alcotest.(check bool) "strict parser still rejects" true
            (match Codec.history_of_string "res 1 commit\n" with
            | Error _ -> true
            | Ok _ -> false))

(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "analysis"
    [
      ("vclock", [ Alcotest.test_case "laws" `Quick test_vclock ]);
      ( "clean corpora",
        [
          Alcotest.test_case "figures" `Quick test_figures_clean;
          Alcotest.test_case "zoo runner histories" `Quick
            test_runner_histories_clean;
          Alcotest.test_case "real stm multicore trace" `Quick
            test_stm_multicore_trace_clean;
        ] );
      qsuite "history properties"
        [
          prop_generated_histories_clean;
          prop_duplicated_response_flagged;
          prop_dropped_response_flagged;
          prop_wrong_response_kind_flagged;
        ];
      ( "seeded history violations",
        [
          Alcotest.test_case "duplicate txn id" `Quick
            test_duplicate_txn_id_flagged;
          Alcotest.test_case "txn intervals" `Quick test_txn_interval_flagged;
        ] );
      ( "trace lints",
        [
          Alcotest.test_case "clean protocol trace" `Quick test_clean_trace;
          Alcotest.test_case "lock overlap" `Quick test_lock_overlap;
          Alcotest.test_case "unlock without lock" `Quick
            test_unlock_without_lock;
          Alcotest.test_case "publish without lock" `Quick
            test_publish_without_lock;
          Alcotest.test_case "acquire after publish" `Quick
            test_acquire_after_publish;
          Alcotest.test_case "lock leak + hb race" `Quick
            test_lock_leak_and_hb_race;
          Alcotest.test_case "trace-end leak is a warning" `Quick
            test_trace_end_leak_is_warning;
          Alcotest.test_case "lock-order cycle" `Quick test_lock_order_cycle;
          Alcotest.test_case "pid lanes independent" `Quick
            test_lanes_are_independent;
        ] );
      ( "blame rule",
        [
          Alcotest.test_case "agreeing evidence is clean" `Quick
            test_blame_rule_clean;
          Alcotest.test_case "falsified evidence fires" `Quick
            test_blame_rule_falsified_evidence;
          Alcotest.test_case "verdict/evidence mismatch fires" `Quick
            test_blame_rule_verdict_mismatch;
          Alcotest.test_case "scapegoating a healthy peer fires" `Quick
            test_blame_rule_scapegoat;
          Alcotest.test_case "traces without evidence exempt" `Quick
            test_blame_rule_exempt_without_evidence;
        ] );
      ( "engine",
        [
          Alcotest.test_case "rule selection" `Quick test_rule_selection;
          Alcotest.test_case "exit code" `Quick test_exit_code;
          Alcotest.test_case "findings JSON" `Quick test_findings_json;
          Alcotest.test_case "lax history file round-trip" `Quick
            test_history_file_lax_round_trip;
        ] );
    ]
