(* Tests for the telemetry subsystem: sharded instruments under real
   domains, histogram quantile properties, the OpenMetrics exposition
   round-tripped through its own parser, liveness-gauge class
   transitions, and the byte-determinism of step-clock JSONL export. *)

module I = Tm_telemetry.Instrument
module R = Tm_telemetry.Registry
module E = Tm_telemetry.Export
module L = Tm_telemetry.Liveness_gauge

(* ------------------------------------------------------------------ *)
(* Instruments. *)

let test_counter_sharded () =
  let c = I.counter () in
  let n = 25_000 in
  let ds =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to n do
              I.incr c
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "sum over shards" (4 * n) (I.value c);
  I.add c 5;
  Alcotest.(check int) "add lands too" ((4 * n) + 5) (I.value c)

let test_histogram_sharded () =
  let h = I.histogram () in
  let n = 10_000 in
  let ds =
    List.init 4 (fun k ->
        Domain.spawn (fun () ->
            for i = 1 to n do
              I.observe h ((i mod 1000) + k)
            done))
  in
  List.iter Domain.join ds;
  let s = I.hist_snapshot h in
  Alcotest.(check int) "count sums the shards" (4 * n) s.I.count;
  Alcotest.(check int) "bucket counts sum to count" (4 * n)
    (Array.fold_left ( + ) 0 s.I.buckets);
  Alcotest.(check int) "max survives the merge" 1002 s.I.max_sample

let test_buckets () =
  Alcotest.(check int) "0 in bucket 0" 0 (I.bucket_of 0);
  Alcotest.(check int) "negatives in bucket 0" 0 (I.bucket_of (-3));
  Alcotest.(check int) "1 in bucket 1" 1 (I.bucket_of 1);
  Alcotest.(check int) "2 in bucket 2" 2 (I.bucket_of 2);
  Alcotest.(check int) "3 in bucket 2" 2 (I.bucket_of 3);
  Alcotest.(check int) "4 in bucket 3" 3 (I.bucket_of 4);
  Alcotest.(check int) "max_int overflows" (I.hist_buckets - 1)
    (I.bucket_of max_int);
  (* Every value is within its bucket's bounds. *)
  List.iter
    (fun v ->
      let k = I.bucket_of v in
      Alcotest.(check bool)
        (Fmt.str "%d <= upper(%d)" v k)
        true
        (v <= I.bucket_upper k);
      if k > 0 then
        Alcotest.(check bool)
          (Fmt.str "%d > upper(%d)" v (k - 1))
          true
          (v > I.bucket_upper (k - 1)))
    [ 0; 1; 2; 3; 7; 8; 100; 4095; 4096; 1_000_000_000 ]

let test_pp_hsnap_empty () =
  let h = I.histogram ~shards:1 () in
  Alcotest.(check string)
    "empty snapshot prints (empty)" "(empty)"
    (Fmt.str "%a" I.pp_hsnap (I.hist_snapshot h))

let prop_quantiles =
  QCheck.Test.make ~count:300
    ~name:"histogram quantiles: ordered, bounded by max, count conserved"
    QCheck.(list_of_size Gen.(1 -- 200) (int_bound 2_000_000))
    (fun samples ->
      let h = I.histogram ~shards:1 () in
      List.iter (I.observe h) samples;
      let s = I.hist_snapshot h in
      let q p = I.quantile s p in
      s.I.count = List.length samples
      && s.I.sum = List.fold_left ( + ) 0 samples
      && s.I.max_sample = List.fold_left max 0 samples
      && Array.fold_left ( + ) 0 s.I.buckets = s.I.count
      && 0 <= q 0.5
      && q 0.5 <= q 0.9
      && q 0.9 <= q 0.99
      && q 0.99 <= s.I.max_sample)

let test_absorb () =
  (* Folding a 15-bucket Tm_sim.Metrics histogram into a 32-bucket
     telemetry one preserves count, sum and max. *)
  let src =
    List.fold_left Tm_sim.Metrics.hist_add Tm_sim.Metrics.hist_empty
      [ 0; 1; 5; 100; 9000 ]
  in
  let h = I.histogram ~shards:1 () in
  I.absorb h ~buckets:src.Tm_sim.Metrics.buckets ~sum:src.Tm_sim.Metrics.sum
    ~max_sample:src.Tm_sim.Metrics.max_sample;
  let s = I.hist_snapshot h in
  Alcotest.(check int) "count" 5 s.I.count;
  Alcotest.(check int) "sum" 9106 s.I.sum;
  Alcotest.(check int) "max" 9000 s.I.max_sample

let test_absorb_overflow () =
  (* Regression: a sample in the source's overflow bucket is only known
     to be >= 2^(nbuckets - 2); folding it into the same-index
     destination bucket would under-read it by orders of magnitude.  It
     must land in the destination's own overflow bucket. *)
  let src =
    List.fold_left Tm_sim.Metrics.hist_add Tm_sim.Metrics.hist_empty
      [ 20_000; 3 ]
  in
  Alcotest.(check int) "sample sits in the source overflow bucket" 1
    src.Tm_sim.Metrics.buckets.(Tm_sim.Metrics.nbuckets - 1);
  let h = I.histogram ~shards:1 () in
  I.absorb h ~buckets:src.Tm_sim.Metrics.buckets ~sum:src.Tm_sim.Metrics.sum
    ~max_sample:src.Tm_sim.Metrics.max_sample;
  let s = I.hist_snapshot h in
  Alcotest.(check int) "overflow sample lands in our overflow bucket" 1
    s.I.buckets.(I.hist_buckets - 1);
  Alcotest.(check int) "not in the same-index range bucket" 0
    s.I.buckets.(Tm_sim.Metrics.nbuckets - 1);
  Alcotest.(check bool) "tail quantile reads the overflow sample" true
    (I.quantile s 0.99 >= 20_000)

(* ------------------------------------------------------------------ *)
(* Hires histograms. *)

let test_hires_bucket_edges () =
  Alcotest.(check int) "0 in bucket 0" 0 (I.hires_bucket_of 0);
  Alcotest.(check int) "negatives in bucket 0" 0 (I.hires_bucket_of (-3));
  Alcotest.(check int) "small values are exact" (I.hires_sub - 1)
    (I.hires_bucket_of (I.hires_sub - 1));
  Alcotest.(check int) "upper of an exact bucket is itself"
    (I.hires_sub - 1)
    (I.hires_bucket_upper (I.hires_sub - 1));
  Alcotest.(check int) "max_int lands in the overflow bucket"
    (I.hires_buckets - 1)
    (I.hires_bucket_of max_int);
  Alcotest.(check int) "overflow bucket is unbounded" max_int
    (I.hires_bucket_upper (I.hires_buckets - 1))

let prop_hires_buckets =
  QCheck.Test.make ~count:500
    ~name:"hires buckets: within bounds, disjoint, 12.5%-wide"
    QCheck.(int_bound 2_000_000_000)
    (fun v ->
      let k = I.hires_bucket_of v in
      0 <= k
      && k < I.hires_buckets
      && v <= I.hires_bucket_upper k
      && (k = 0 || v > I.hires_bucket_upper (k - 1))
      (* Sub-bucketing bounds the relative error by 1/hires_sub. *)
      && (v < I.hires_sub
         || I.hires_sub * (I.hires_bucket_upper k - v) <= v))

let prop_hires_quantiles =
  QCheck.Test.make ~count:300
    ~name:"hires quantiles: ordered, bounded by max, count conserved"
    QCheck.(list_of_size Gen.(1 -- 200) (int_bound 2_000_000))
    (fun samples ->
      let h = I.hires ~shards:1 () in
      List.iter (I.hires_observe h) samples;
      let s = I.hires_snapshot h in
      let q p = I.hires_quantile s p in
      s.I.count = List.length samples
      && s.I.sum = List.fold_left ( + ) 0 samples
      && s.I.max_sample = List.fold_left max 0 samples
      && Array.length s.I.buckets = I.hires_buckets
      && Array.fold_left ( + ) 0 s.I.buckets = s.I.count
      && 0 <= q 0.5
      && q 0.5 <= q 0.9
      && q 0.9 <= q 0.999
      && q 0.999 <= q 0.9999
      && q 0.9999 <= s.I.max_sample)

let prop_merge_quantile_monotone =
  QCheck.Test.make ~count:200
    ~name:"merged-histogram quantiles lie between the parts'"
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 100) (int_bound 2_000_000))
        (list_of_size Gen.(1 -- 100) (int_bound 2_000_000)))
    (fun (xs, ys) ->
      let hist samples =
        let h = I.histogram ~shards:1 () in
        List.iter (I.observe h) samples;
        I.hist_snapshot h
      in
      let a = hist xs and b = hist ys and m = hist (xs @ ys) in
      List.for_all
        (fun p ->
          let qa = I.quantile a p and qb = I.quantile b p in
          let qm = I.quantile m p in
          (* Values are capped by each histogram's own max, so the
             upper bound is exact only at bucket granularity: merging
             never moves a quantile outside the parts' buckets, and
             never below the parts' smaller value. *)
          min qa qb <= qm
          && min (I.bucket_of qa) (I.bucket_of qb) <= I.bucket_of qm
          && I.bucket_of qm <= max (I.bucket_of qa) (I.bucket_of qb))
        [ 0.5; 0.9; 0.99; 0.999 ])

(* ------------------------------------------------------------------ *)
(* The latency recorder. *)

module Lr = Tm_telemetry.Latency_recorder

let test_latency_recorder_split () =
  let r = Lr.create ~domains:2 ~interval_ns:100 () in
  Lr.mark r 0 ~sched:1_000;
  Lr.complete r 0 ~start:1_500 ~finish:2_500;
  Alcotest.(check int) "queueing = start - sched" 500
    (Lr.queueing_snapshot r).I.sum;
  Alcotest.(check int) "service = finish - start" 1_000
    (Lr.service_snapshot r).I.sum;
  Alcotest.(check int) "sojourn = finish - sched" 1_500
    (Lr.sojourn_snapshot r).I.sum;
  (* An unmarked completion degrades to service time. *)
  Lr.complete r 1 ~start:10_000 ~finish:10_100;
  Alcotest.(check int) "unmarked sojourn = service" 1_600
    (Lr.sojourn_snapshot r).I.sum;
  Alcotest.(check (array int)) "both slots idle" [| 0; 0 |]
    (Lr.ages r ~now:50_000)

let test_latency_recorder_open_vs_closed () =
  let r = Lr.create ~domains:2 ~interval_ns:100 () in
  (* Domain 0 completes briskly; domain 1 marks and never completes —
     a request stuck behind a crashed lock holder. *)
  for i = 0 to 9 do
    let sched = i * 1_000 in
    Lr.mark r 0 ~sched;
    Lr.complete r 0 ~start:(sched + 100) ~finish:(sched + 200)
  done;
  Lr.mark r 1 ~sched:0;
  let closed = Lr.closed_quantile r 0.99 in
  Alcotest.(check bool) "closed p99 reads completions only" true
    (closed < 1_000);
  let o1 = Lr.open_quantile r ~now:50_000 0.99 in
  let o2 = Lr.open_quantile r ~now:500_000 0.99 in
  Alcotest.(check bool) "open p99 sees the stall" true (o1 > closed);
  Alcotest.(check bool) "open p99 grows with the stall" true (o2 > o1);
  Alcotest.(check int) "closed p99 stays flat" closed
    (Lr.closed_quantile r 0.99);
  Alcotest.(check int) "starvation age is the stuck slot's" 500_000
    (Lr.oldest_age r ~now:500_000);
  (* Corroboration: the stalled verdict must name the stuck domain. *)
  Alcotest.(check bool) "gauge and recorder agree" true
    (Lr.corroborate r ~now:50_000 ~progressing:[| true; false |]);
  Alcotest.(check bool) "a stalled verdict on an idle slot disagrees"
    false
    (Lr.corroborate r ~now:50_000 ~progressing:[| false; true |]);
  Lr.abandon r 1;
  Alcotest.(check int) "abandon clears the slot" 0
    (Lr.oldest_age r ~now:500_000)

(* ------------------------------------------------------------------ *)
(* OpenMetrics round-trip. *)

let test_openmetrics_roundtrip () =
  let reg = R.create () in
  let c =
    R.counter reg ~shards:1
      ~labels:[ ("tm", "tl2") ]
      ~help:"ops" "tm_test_ops_total"
  in
  let g = R.gauge reg ~init:7 ~help:"width" "tm_test_width" in
  let h = R.histogram reg ~shards:1 ~help:"latency" "tm_test_lat_ns" in
  let st =
    R.state reg ~key:"class"
      ~states:[| "idle"; "busy" |]
      ~help:"mode" "tm_test_mode"
  in
  I.add c 42;
  List.iter (I.observe h) [ 1; 2; 3; 1000 ];
  R.set_state st "busy";
  ignore g;
  let text = E.to_openmetrics (R.scrape reg ~ts:5) in
  Alcotest.(check bool) "terminated by # EOF" true
    (String.length text >= 6
    && String.sub text (String.length text - 6) 6 = "# EOF\n");
  let series = E.parse_openmetrics text in
  let value name labels =
    match
      List.find_opt
        (fun s -> s.E.se_name = name && s.E.se_labels = labels)
        series
    with
    | Some s -> s.E.se_value
    | None -> Alcotest.failf "series %s not found" name
  in
  Alcotest.(check (float 0.)) "counter" 42. (value "tm_test_ops_total" [ ("tm", "tl2") ]);
  Alcotest.(check (float 0.)) "gauge" 7. (value "tm_test_width" []);
  Alcotest.(check (float 0.)) "hist count" 4. (value "tm_test_lat_ns_count" []);
  Alcotest.(check (float 0.)) "hist sum" 1006. (value "tm_test_lat_ns_sum" []);
  Alcotest.(check (float 0.)) "+Inf bucket is the count" 4.
    (value "tm_test_lat_ns_bucket" [ ("le", "+Inf") ]);
  Alcotest.(check (float 0.)) "current state is 1" 1.
    (value "tm_test_mode" [ ("class", "busy") ]);
  Alcotest.(check (float 0.)) "other state is 0" 0.
    (value "tm_test_mode" [ ("class", "idle") ]);
  (* The cumulative bucket series is monotone. *)
  let buckets =
    List.filter (fun s -> s.E.se_name = "tm_test_lat_ns_bucket") series
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a.E.se_value <= b.E.se_value && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "cumulative buckets are monotone" true
    (monotone buckets)

let test_hires_openmetrics_roundtrip () =
  let reg = R.create () in
  let h = R.hires reg ~shards:1 ~help:"sojourn" "tm_test_sojourn_ns" in
  let samples = [ 1; 9; 10; 1_000; 1_000_000 ] in
  List.iter (I.hires_observe h) samples;
  let text = E.to_openmetrics (R.scrape reg ~ts:0) in
  let check_series series =
    let value name labels =
      match
        List.find_opt
          (fun s -> s.E.se_name = name && s.E.se_labels = labels)
          series
      with
      | Some s -> s.E.se_value
      | None -> Alcotest.failf "series %s not found" name
    in
    Alcotest.(check (float 0.)) "count" 5. (value "tm_test_sojourn_ns_count" []);
    Alcotest.(check (float 0.))
      "sum" 1_001_020.
      (value "tm_test_sojourn_ns_sum" []);
    Alcotest.(check (float 0.)) "+Inf bucket is the count" 5.
      (value "tm_test_sojourn_ns_bucket" [ ("le", "+Inf") ]);
    let buckets =
      List.filter (fun s -> s.E.se_name = "tm_test_sojourn_ns_bucket") series
    in
    (* Empty hires buckets are skipped: five distinct samples plus the
       +Inf line, not hires_buckets lines. *)
    Alcotest.(check int) "one bucket line per occupied bucket" 6
      (List.length buckets);
    let rec monotone = function
      | a :: (b :: _ as rest) -> a.E.se_value <= b.E.se_value && monotone rest
      | _ -> true
    in
    Alcotest.(check bool) "cumulative buckets are monotone" true
      (monotone buckets);
    (* Every sample is at or below its emitted cumulative threshold:
       the le="..." bound of the first bucket covering it. *)
    List.iter
      (fun v ->
        let covered =
          List.exists
            (fun s ->
              match List.assoc_opt "le" s.E.se_labels with
              | Some "+Inf" -> true
              | Some le -> float_of_string le >= float_of_int v
              | None -> false)
            buckets
        in
        Alcotest.(check bool) (Fmt.str "sample %d covered" v) true covered)
      samples
  in
  check_series (E.parse_openmetrics text);
  let series, findings = E.parse_openmetrics_lax text in
  check_series series;
  Alcotest.(check int) "lax agrees with strict on the hires exposition" 0
    (List.length findings)

(* Edge cases of the exposition parser: an exposition of only framing,
   the writer's label escaping round-tripped, and — for the lax
   variant — exotic lines (timestamps, summaries, garbage) becoming
   diagnostics instead of exceptions. *)

let test_openmetrics_empty_exposition () =
  Alcotest.(check int) "strict: only # EOF parses to no series" 0
    (List.length (E.parse_openmetrics "# EOF\n"));
  let series, findings = E.parse_openmetrics_lax "# EOF\n" in
  Alcotest.(check int) "lax: no series" 0 (List.length series);
  Alcotest.(check int) "lax: no findings" 0 (List.length findings)

let test_openmetrics_escaped_labels () =
  let reg = R.create () in
  let c =
    R.counter reg ~shards:1
      ~labels:[ ("path", "a\\b\"c\nd") ]
      ~help:"escapes" "tm_test_esc_total"
  in
  I.add c 3;
  let text = E.to_openmetrics (R.scrape reg ~ts:0) in
  let check_series series =
    match
      List.find_opt (fun s -> s.E.se_name = "tm_test_esc_total") series
    with
    | None -> Alcotest.fail "escaped series not found"
    | Some s ->
        Alcotest.(check (list (pair string string)))
          "label value round-trips the escaping"
          [ ("path", "a\\b\"c\nd") ]
          s.E.se_labels;
        Alcotest.(check (float 0.)) "value" 3. s.E.se_value
  in
  check_series (E.parse_openmetrics text);
  let series, findings = E.parse_openmetrics_lax text in
  check_series series;
  Alcotest.(check int) "lax agrees with strict on clean input" 0
    (List.length findings)

let test_openmetrics_lax_unknown_types () =
  (* A foreign exposition: a summary with quantile labels (parses — it
     is within the line subset), a timestamped sample, an unterminated
     label set, and plain garbage.  The lax parser must keep the good
     lines and report the bad ones; the strict parser raises. *)
  let text =
    "# TYPE rpc_duration summary\n\
     rpc_duration{quantile=\"0.5\"} 0.25\n\
     http_requests_total 1027 1395066363000\n\
     bar{x=\"y\" 1\n\
     not a metric line at all\n\
     good_gauge 42\n\
     # EOF\n"
  in
  Alcotest.check_raises "strict parser raises on the timestamped line"
    (Failure "float_of_string") (fun () ->
      ignore (E.parse_openmetrics text));
  let series, findings = E.parse_openmetrics_lax text in
  Alcotest.(check int) "two parsable samples survive" 2 (List.length series);
  Alcotest.(check (float 0.)) "summary quantile line parses" 0.25
    (List.hd series).E.se_value;
  Alcotest.(check (float 0.)) "plain gauge parses" 42.
    (List.nth series 1).E.se_value;
  Alcotest.(check int) "three diagnostics" 3 (List.length findings);
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Fmt.str "diagnostic %S names its line" f)
        true
        (String.length f > 5 && String.sub f 0 5 = "line "))
    findings

(* ------------------------------------------------------------------ *)
(* The blame graph. *)

module Bg = Tm_telemetry.Blame_graph
module Pc = Tm_liveness.Process_class
module Stm = Tm_stm.Stm

let ev ?(cause = Stm.Blame.Read_conflict) ?(tvar = 0) v a =
  { Stm.Blame.b_victim = v; b_aggressor = a; b_tvar = tvar; b_cause = cause }

let test_blame_graph_folding () =
  let reg = R.create () in
  let g = Bg.create reg ~domains:3 in
  let sink = Bg.sink_of g in
  sink.Stm.Blame.on_event (ev 1 0);
  sink.Stm.Blame.on_event (ev 1 0 ~cause:Stm.Blame.Lock_busy);
  sink.Stm.Blame.on_event (ev 2 0);
  sink.Stm.Blame.on_event (ev (-1) 0);
  sink.Stm.Blame.on_event (ev 1 99 (* out of range -> unknown *));
  Alcotest.(check int) "edge 1->0 read-conflict" 1
    (Bg.edge g ~victim:1 ~aggressor:0 Stm.Blame.Read_conflict);
  Alcotest.(check int) "edge 1->0 total over causes" 2
    (Bg.edge_total g ~victim:1 ~aggressor:0);
  Alcotest.(check int) "unknown victim folded" 1
    (Bg.edge_total g ~victim:(-1) ~aggressor:0);
  Alcotest.(check int) "out-of-range aggressor clamped to unknown" 1
    (Bg.edge_total g ~victim:1 ~aggressor:(-1));
  Alcotest.(check int) "victim total" 3 (Bg.victim_total g 1);
  Alcotest.(check int) "clock ticks per event" 5 (Bg.clock g);
  Alcotest.(check (list (triple int int int)))
    "edges in canonical order"
    [ (-1, 0, 1); (1, -1, 1); (1, 0, 2); (2, 0, 1) ]
    (Bg.edges g)

let test_blame_graph_watermarks () =
  let reg = R.create () in
  let g = Bg.create reg ~domains:2 in
  let sink = Bg.sink_of g in
  sink.Stm.Blame.on_event (ev 1 0);
  sink.Stm.Blame.on_event (ev 1 0);
  sink.Stm.Blame.on_progress 0;
  Alcotest.(check int) "commit counted" 1 (Bg.commits g 0);
  Alcotest.(check int) "last commit at clock 3" 3 (Bg.last_commit g 0);
  Alcotest.(check int) "committer age 0" 0 (Bg.wait_age g 0);
  sink.Stm.Blame.on_event (ev 1 0);
  sink.Stm.Blame.on_event (ev 1 0);
  Alcotest.(check int) "age grows with peer events" 2 (Bg.wait_age g 0);
  Alcotest.(check int) "never-committed slot ages from 0" 5 (Bg.wait_age g 1);
  Bg.refresh g;
  let snap = R.scrape reg ~ts:0 in
  Alcotest.(check (option int)) "clock gauge" (Some 5)
    (R.sample_num snap ~name:"tm_blame_clock" ~labels:[]);
  Alcotest.(check (option int)) "wait-age gauge" (Some 2)
    (R.sample_num snap ~name:"tm_blame_wait_age"
       ~labels:[ ("domain", "0") ]);
  Alcotest.(check (option int)) "commit counter exported" (Some 1)
    (R.sample_num snap ~name:"tm_blame_commits_total"
       ~labels:[ ("domain", "0") ])

let feed g n v a =
  let sink = Bg.sink_of g in
  for _ = 1 to n do
    sink.Stm.Blame.on_event (ev v a)
  done

let test_blame_classify_star () =
  let reg = R.create () in
  let g = Bg.create reg ~domains:3 in
  feed g 100 1 0;
  feed g 100 2 0;
  let shape, evidence =
    Bg.classify g ~classes:[| Pc.Crashed; Pc.Starving; Pc.Starving |]
  in
  Alcotest.(check string) "star centred on the corpse" "star:0"
    (Bg.shape_label shape);
  Alcotest.(check (list string))
    "evidence verdict-first, dominators attributed"
    [ "crashed"; "starved-by:0"; "starved-by:0" ]
    (Array.to_list (Array.map Bg.evidence_label evidence))

let test_blame_classify_cycle () =
  let reg = R.create () in
  let g = Bg.create reg ~domains:3 in
  feed g 100 0 1;
  feed g 100 1 0;
  let shape, evidence =
    Bg.classify g ~classes:[| Pc.Starving; Pc.Starving; Pc.Progressing |]
  in
  Alcotest.(check string) "mutual dominance is a cycle" "cycle"
    (Bg.shape_label shape);
  Alcotest.(check (list string))
    "starving rivals blame each other; the bystander stays progressing"
    [ "starved-by:1"; "starved-by:0"; "progressing" ]
    (Array.to_list (Array.map Bg.evidence_label evidence))

let test_blame_classify_quiet () =
  let reg = R.create () in
  let g = Bg.create reg ~domains:2 in
  feed g 5 1 0 (* below min_events: unwitnessed starvation *);
  let shape, evidence =
    Bg.classify g ~classes:[| Pc.Progressing; Pc.Starving |]
  in
  Alcotest.(check string) "no attributable victim, no shape" "none"
    (Bg.shape_label shape);
  Alcotest.(check string) "starving but unwitnessed is quiet" "quiet"
    (Bg.evidence_label evidence.(1));
  Alcotest.check_raises "classes arity enforced"
    (Invalid_argument "Blame_graph.classify: one class per domain")
    (fun () -> ignore (Bg.classify g ~classes:[| Pc.Progressing |]))

(* ------------------------------------------------------------------ *)
(* The liveness gauge. *)

let test_liveness_transitions () =
  let ops = ref 0 and trycs = ref 0 and commits = ref 0 and aborts = ref 0 in
  let reg = R.create () in
  let src =
    L.source
      ~ops:(fun () -> !ops)
      ~trycs:(fun () -> !trycs)
      ~commits:(fun () -> !commits)
      ~aborts:(fun () -> !aborts)
  in
  let t = L.create reg ~sources:[| src |] in
  let observed () =
    let snap = R.scrape reg ~ts:0 in
    ( Option.get
        (R.sample_state snap ~name:"tm_liveness_class"
           ~labels:[ ("domain", "0") ]),
      Option.get
        (R.sample_num snap ~name:"tm_liveness_correct"
           ~labels:[ ("domain", "0") ]) )
  in
  let step msg expect_cls expect_correct =
    ignore (L.update t);
    let cls, correct = observed () in
    Alcotest.(check string) (msg ^ " class") expect_cls cls;
    Alcotest.(check int) (msg ^ " correct") expect_correct correct
  in
  (* Healthy interval: everything advances. *)
  ops := 100;
  trycs := 10;
  commits := 10;
  step "healthy" "progressing" 1;
  (* Commits stall while aborts climb: starving, but still correct. *)
  ops := 300;
  trycs := 50;
  aborts := 40;
  step "stalled commits" "starving" 1;
  (* Nothing advances at all: crashed. *)
  step "frozen counters" "crashed" 0;
  (* Active but never trying to commit and never aborted: parasitic. *)
  ops := 400;
  step "reads only" "parasitic" 0;
  Alcotest.(check bool) "current mirrors the stateset" true
    (Tm_liveness.Process_class.equal_cls (L.current t).(0)
       Tm_liveness.Process_class.Parasitic)

(* ------------------------------------------------------------------ *)
(* Step-clock JSONL determinism. *)

let jsonl_of_run () =
  let entry =
    match Tm_impl.Registry.find "tl2" with
    | Some e -> e
    | None -> Alcotest.fail "tl2 not registered"
  in
  let spec =
    Tm_sim.Runner.spec ~nprocs:3 ~steps:600 ~seed:7
      ~sched:Tm_sim.Runner.Uniform ()
  in
  let buf = Buffer.create 4096 in
  let reg = R.create () in
  let pub =
    Tm_telemetry.Sim_pub.create
      ~consumers:
        [
          (fun s ->
            Buffer.add_string buf (E.to_jsonl s);
            Buffer.add_char buf '\n');
        ]
      ~nprocs:3 reg
  in
  let o =
    Tm_sim.Runner.run ~on_event:(Tm_telemetry.Sim_pub.hook pub) entry spec
  in
  ignore
    (Tm_telemetry.Sim_pub.finish pub
       ~ts:(Tm_history.History.length o.Tm_sim.Runner.history));
  Buffer.contents buf

let test_jsonl_deterministic () =
  let a = jsonl_of_run () and b = jsonl_of_run () in
  Alcotest.(check bool) "time series is non-trivial" true
    (String.length a > 100);
  Alcotest.(check string) "two runs, same bytes" a b;
  (* Step-clock timestamps only: the last line's ts is the history
     length, not wall time. *)
  Alcotest.(check bool) "first scrape at ts 0" true
    (String.length a >= 8 && String.sub a 0 8 = {|{"ts":0,|})

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "tm_telemetry"
    [
      ( "instruments",
        [
          Alcotest.test_case "counter sharded over 4 domains" `Quick
            test_counter_sharded;
          Alcotest.test_case "histogram sharded over 4 domains" `Quick
            test_histogram_sharded;
          Alcotest.test_case "bucket bounds" `Quick test_buckets;
          Alcotest.test_case "empty snapshot pretty-prints" `Quick
            test_pp_hsnap_empty;
          Alcotest.test_case "absorb a Metrics histogram" `Quick test_absorb;
          Alcotest.test_case "absorb routes overflow to overflow" `Quick
            test_absorb_overflow;
          QCheck_alcotest.to_alcotest prop_quantiles;
        ] );
      ( "hires",
        [
          Alcotest.test_case "bucket edges" `Quick test_hires_bucket_edges;
          QCheck_alcotest.to_alcotest prop_hires_buckets;
          QCheck_alcotest.to_alcotest prop_hires_quantiles;
          QCheck_alcotest.to_alcotest prop_merge_quantile_monotone;
        ] );
      ( "latency recorder",
        [
          Alcotest.test_case "queueing/service/sojourn split" `Quick
            test_latency_recorder_split;
          Alcotest.test_case "open vs closed quantile under a stall"
            `Quick test_latency_recorder_open_vs_closed;
        ] );
      ( "export",
        [
          Alcotest.test_case "openmetrics round-trip" `Quick
            test_openmetrics_roundtrip;
          Alcotest.test_case "hires cumulative buckets round-trip" `Quick
            test_hires_openmetrics_roundtrip;
          Alcotest.test_case "EOF-only exposition" `Quick
            test_openmetrics_empty_exposition;
          Alcotest.test_case "escaped label values round-trip" `Quick
            test_openmetrics_escaped_labels;
          Alcotest.test_case "lax parser turns exotic lines into findings"
            `Quick test_openmetrics_lax_unknown_types;
        ] );
      ( "blame graph",
        [
          Alcotest.test_case "events fold into edges and the clock" `Quick
            test_blame_graph_folding;
          Alcotest.test_case "progress watermarks and gauges" `Quick
            test_blame_graph_watermarks;
          Alcotest.test_case "shared dominator classifies as a star" `Quick
            test_blame_classify_star;
          Alcotest.test_case "mutual blame classifies as a cycle" `Quick
            test_blame_classify_cycle;
          Alcotest.test_case "unwitnessed starvation is quiet" `Quick
            test_blame_classify_quiet;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "class transitions" `Quick
            test_liveness_transitions;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "step-clock series is byte-deterministic"
            `Quick test_jsonl_deterministic;
        ] );
    ]
