(* Cross-algorithm differential conformance of the real STM zoo.

   Every real multicore core (tl2, global-lock, dstm, norec) runs the
   same seeded transactional workloads and must agree with:
   - the sequential specification (a plain array interpreter),
   - the matching simulator algorithm from lib/tm, driven through the
     same operations via invoke/poll,
   - every other core, on commuting multi-domain workloads (qcheck).

   The workload interpreter is shared verbatim between all four
   backends, so any divergence is an algorithm bug, not a harness
   artefact. *)

module Stm = Tm_stm.Stm
module Event = Tm_history.Event
module Reg = Tm_impl.Registry
module Intf = Tm_impl.Tm_intf

let count =
  match Sys.getenv_opt "TM_QCHECK_COUNT" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 50)
  | None -> 50

let ntvars = 4

(* The simulator registry's counterpart of each real core. *)
let sim_name_of = function
  | Stm.Algo.Tl2 -> "tl2"
  | Stm.Algo.Global_lock -> "global-lock"
  | Stm.Algo.Dstm -> "dstm-aggressive"
  | Stm.Algo.Norec -> "norec"

(* {1 Seeded workloads} *)

type action =
  | Inc of int * int  (** [Inc (x, a)]: x := x + a *)
  | Copy of int * int  (** [Copy (x, y)]: y := x *)
  | Mix of int * int  (** [Mix (x, y)]: x := x + y *)

let lcg st =
  st := (!st * 48271) mod 0x7FFFFFFF;
  !st

let gen_txn st =
  let n = 1 + (lcg st mod 3) in
  List.init n (fun _ ->
      let x = lcg st mod ntvars in
      let y = lcg st mod ntvars in
      match lcg st mod 3 with
      | 0 -> Inc (x, 1 + (lcg st mod 9))
      | 1 -> Copy (x, y)
      | _ -> Mix (x, y))

let gen_workload ~txns seed =
  let st = ref (if seed <= 0 then 1 else seed) in
  List.init txns (fun _ -> gen_txn st)

(* One interpreter for every backend: [read]/[write] close over the
   backend's state. *)
let apply_txn ~read ~write actions =
  List.iter
    (function
      | Inc (x, a) -> write x (read x + a)
      | Copy (x, y) -> write y (read x)
      | Mix (x, y) -> write x (read x + read y))
    actions

(* {1 Backends} *)

let run_model workload =
  let arr = Array.make ntvars 0 in
  List.iter
    (fun txn -> apply_txn ~read:(Array.get arr) ~write:(Array.set arr) txn)
    workload;
  arr

let run_real algo workload =
  Stm.with_algo algo (fun () ->
      let tvs = Array.init ntvars (fun _ -> Stm.tvar 0) in
      List.iter
        (fun txn ->
          Stm.atomically (fun () ->
              apply_txn
                ~read:(fun x -> Stm.read tvs.(x))
                ~write:(fun x v -> Stm.write tvs.(x) v)
                txn))
        workload;
      Array.map (fun tv -> Stm.atomically (fun () -> Stm.read tv)) tvs)

(* Drive a simulator TM through the identical workload, one process,
   polling each invocation to its response. *)
let run_sim name workload =
  let entry =
    match Reg.find name with
    | Some e -> e
    | None -> Alcotest.failf "simulator TM %S not registered" name
  in
  let inst = Reg.instance entry (Intf.config ~nprocs:1 ~ntvars ()) in
  let respond inv =
    inst.Intf.invoke 1 inv;
    let rec poll n =
      if n > 100_000 then
        Alcotest.failf "%s: no response within patience" name
      else
        match inst.Intf.poll 1 with Some r -> r | None -> poll (n + 1)
    in
    poll 0
  in
  let read x =
    match respond (Event.Read x) with
    | Event.Value v -> v
    | r ->
        Alcotest.failf "%s: read answered %s" name
          (Fmt.str "%a" Event.pp (Event.Res (1, r)))
  in
  let write x v =
    match respond (Event.Write (x, v)) with
    | Event.Ok_written -> ()
    | r ->
        Alcotest.failf "%s: write answered %s" name
          (Fmt.str "%a" Event.pp (Event.Res (1, r)))
  in
  let commit () =
    match respond Event.Try_commit with
    | Event.Committed -> ()
    | r ->
        Alcotest.failf "%s: solo tryC answered %s" name
          (Fmt.str "%a" Event.pp (Event.Res (1, r)))
  in
  List.iter
    (fun txn ->
      apply_txn ~read ~write txn;
      commit ())
    workload;
  let final = Array.init ntvars (fun x -> read x) in
  commit ();
  final

let check_arrays label expected got =
  Alcotest.(check (array int)) label expected got

(* {1 Tests} *)

(* Every real core must compute the sequential specification on a
   single domain: transactions applied in order, no concurrency. *)
let test_sequential_spec () =
  List.iter
    (fun seed ->
      let workload = gen_workload ~txns:40 seed in
      let spec = run_model workload in
      List.iter
        (fun algo ->
          check_arrays
            (Fmt.str "%s seed=%d equals sequential spec" (Stm.Algo.name algo)
               seed)
            spec (run_real algo workload))
        Stm.Algo.all)
    [ 1; 2; 3; 4; 5 ]

(* The matching simulator algorithm, fed the identical workload through
   invoke/poll, must land on the same final state. *)
let test_matches_simulator () =
  List.iter
    (fun seed ->
      let workload = gen_workload ~txns:25 seed in
      List.iter
        (fun algo ->
          let real = run_real algo workload in
          let sim = run_sim (sim_name_of algo) workload in
          check_arrays
            (Fmt.str "%s seed=%d equals simulator %s" (Stm.Algo.name algo)
               seed (sim_name_of algo))
            real sim)
        Stm.Algo.all)
    [ 1; 2; 3 ]

(* Commuting multi-domain workloads: per-t-variable increments from
   several domains commute, so every algorithm must reach the same
   final state — the model's per-t-variable sums — whatever
   interleaving and abort/retry pattern it took. *)
let ndomains = 3

let run_commuting algo chunks tvs_init =
  Stm.with_algo algo (fun () ->
      let tvs = Array.map Stm.tvar tvs_init in
      let doms =
        List.map
          (fun chunk ->
            Domain.spawn (fun () ->
                List.iter
                  (fun (x, d) ->
                    Stm.atomically (fun () ->
                        Stm.write tvs.(x) (Stm.read tvs.(x) + d)))
                  chunk))
          chunks
      in
      List.iter Domain.join doms;
      Array.map (fun tv -> Stm.atomically (fun () -> Stm.read tv)) tvs)

let chunk_ops ops =
  let chunks = Array.make ndomains [] in
  List.iteri (fun i op -> chunks.(i mod ndomains) <- op :: chunks.(i mod ndomains)) ops;
  Array.to_list chunks

let commuting_gen =
  QCheck2.Gen.(
    list_size (int_range 0 24)
      (pair (int_range 0 (ntvars - 1)) (int_range (-5) 5)))

let prop_commuting_agreement =
  QCheck2.Test.make ~count ~name:"all algorithms agree on commuting workloads"
    commuting_gen (fun ops ->
      let expected = Array.make ntvars 0 in
      List.iter (fun (x, d) -> expected.(x) <- expected.(x) + d) ops;
      let chunks = chunk_ops ops in
      List.for_all
        (fun algo ->
          run_commuting algo chunks (Array.make ntvars 0) = expected)
        Stm.Algo.all)

let () =
  Alcotest.run "tm_zoo_conformance"
    [
      ( "differential",
        [
          Alcotest.test_case "sequential spec, every core" `Quick
            test_sequential_spec;
          Alcotest.test_case "simulator twins agree" `Quick
            test_matches_simulator;
        ] );
      ( "commuting",
        [ QCheck_alcotest.to_alcotest prop_commuting_agreement ] );
    ]
