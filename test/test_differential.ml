(* Differential conformance across the whole TM zoo: every registered TM
   runs under identical seeded schedules with crash/parasitic fates, and
   every produced history must be opaque — screened by the linear-time
   monitor, decided by the exact checker on the rare [No_witness].

   Also the sweep engine's parallel/sequential differential: the same
   configuration grid sharded over 4 domains must reproduce the
   single-domain results byte-for-byte. *)

open Tm_history
module Reg = Tm_impl.Registry

let fault_grid steps =
  [
    ("healthy", []);
    ("crash", [ (1, Tm_sim.Runner.Crash_after_write 1) ]);
    ("crash-mid-commit", [ (1, Tm_sim.Runner.Crash_mid_commit 1) ]);
    ("parasite", [ (1, Tm_sim.Runner.Parasitic_from (steps / 10)) ]);
    ( "mixed",
      [
        (1, Tm_sim.Runner.Crash_at (steps / 2));
        (2, Tm_sim.Runner.Parasitic_from (steps / 10));
      ] );
  ]

(* Small enough that the exact checker stays cheap on monitor fallbacks
   (multiversion histories), big enough to produce dozens of
   transactions. *)
let steps = 120

let check_opaque name h =
  Alcotest.(check bool)
    (name ^ " history well-formed")
    true
    (History.is_well_formed h);
  match Tm_safety.Monitor.run h with
  | Tm_safety.Monitor.Accepted -> ()
  | Tm_safety.Monitor.No_witness _ ->
      Alcotest.(check bool)
        (name ^ " opaque (exact checker)")
        true
        (Tm_safety.Opacity.is_opaque h)

let test_zoo_opacity_under_faults () =
  List.iter
    (fun entry ->
      List.iter
        (fun (pattern, fates) ->
          List.iter
            (fun seed ->
              let spec =
                Tm_sim.Runner.spec ~nprocs:3 ~ntvars:2 ~steps ~seed
                  ~sched:Tm_sim.Runner.Uniform ~fates ()
              in
              let o = Tm_sim.Runner.run entry spec in
              check_opaque
                (Fmt.str "%s/%s/seed=%d" entry.Reg.entry_name pattern seed)
                o.Tm_sim.Runner.history)
            [ 1; 2 ])
        (fault_grid steps))
    Reg.all

(* Same schedules, round-robin this time: deterministic lockstep is the
   adversarial corner the uniform scheduler misses. *)
let test_zoo_opacity_lockstep () =
  List.iter
    (fun entry ->
      let spec =
        Tm_sim.Runner.spec ~nprocs:2 ~ntvars:1 ~steps ~seed:1
          ~sched:Tm_sim.Runner.Round_robin ()
      in
      let o = Tm_sim.Runner.run entry spec in
      check_opaque (entry.Reg.entry_name ^ "/lockstep") o.Tm_sim.Runner.history)
    Reg.all

let parity_grid () =
  Tm_sim.Sweep.grid
    ~patterns:(Tm_sim.Sweep.fault_patterns ~nprocs:3 ~ntvars:2 ~steps:150 ())
    ~seeds:[ 1; 2; 3; 4 ]
    ()

let test_sweep_parallel_equals_sequential () =
  let configs = parity_grid () in
  let seq = Tm_sim.Sweep.run configs in
  let par =
    Tm_sim.Pool.with_pool ~jobs:4 (fun pool -> Tm_sim.Sweep.run ~pool configs)
  in
  Alcotest.(check int) "same cardinality" (List.length seq) (List.length par);
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (Tm_sim.Sweep.label a.Tm_sim.Sweep.r_config ^ " history identical")
        true
        (History.equal a.Tm_sim.Sweep.r_outcome.Tm_sim.Runner.history
           b.Tm_sim.Sweep.r_outcome.Tm_sim.Runner.history))
    seq par;
  Alcotest.(check string) "metrics JSON byte-for-byte identical"
    (Tm_sim.Sweep.to_json seq) (Tm_sim.Sweep.to_json par);
  Alcotest.(check string) "rendered table identical"
    (Fmt.str "%a" Tm_sim.Sweep.pp_table seq)
    (Fmt.str "%a" Tm_sim.Sweep.pp_table par)

(* Sweeping the sweep: every job count must agree with every other, and
   rerunning must agree with itself (no hidden global state). *)
let test_sweep_jobs_ladder () =
  let configs =
    Tm_sim.Sweep.grid
      ~tms:
        (List.filter_map Reg.find [ "tl2"; "fgp"; "ostm"; "mvstm"; "norec" ])
      ~patterns:(Tm_sim.Sweep.fault_patterns ~steps:100 ())
      ~seeds:[ 1; 2 ]
      ()
  in
  let reference = Tm_sim.Sweep.to_json (Tm_sim.Sweep.run configs) in
  List.iter
    (fun jobs ->
      let json =
        Tm_sim.Pool.with_pool ~jobs (fun pool ->
            Tm_sim.Sweep.to_json (Tm_sim.Sweep.run ~pool configs))
      in
      Alcotest.(check string)
        (Fmt.str "jobs=%d equals jobs=1" jobs)
        reference json)
    [ 2; 3; 4 ]

let () =
  Alcotest.run "tm_differential"
    [
      ( "zoo opacity",
        [
          Alcotest.test_case "all TMs, faulty seeded schedules" `Slow
            test_zoo_opacity_under_faults;
          Alcotest.test_case "all TMs, round-robin lockstep" `Quick
            test_zoo_opacity_lockstep;
        ] );
      ( "sweep determinism",
        [
          Alcotest.test_case "parallel equals sequential" `Slow
            test_sweep_parallel_equals_sequential;
          Alcotest.test_case "job-count ladder" `Slow test_sweep_jobs_ladder;
        ] );
    ]
