(* Tests for the real multicore STM runtime (lib/stm): single-domain
   semantics, rollback, and multi-domain stress with invariant checks. *)

module Stm = Tm_stm.Stm

let spawn_all fns = List.map Domain.spawn fns |> List.iter Domain.join

(* ------------------------------------------------------------------ *)
(* Single-domain semantics. *)

let test_basic_read_write () =
  let v = Stm.tvar 1 in
  let r =
    Stm.atomically (fun () ->
        let a = Stm.read v in
        Stm.write v (a + 10);
        Stm.read v)
  in
  Alcotest.(check int) "reads own write" 11 r;
  Alcotest.(check int) "committed" 11 (Stm.read v)

let test_rollback_on_exception () =
  let v = Stm.tvar 0 in
  (try
     Stm.atomically (fun () ->
         Stm.write v 42;
         raise Exit)
   with Exit -> ());
  Alcotest.(check int) "write rolled back" 0 (Stm.read v)

let test_write_outside_rejected () =
  let v = Stm.tvar 0 in
  Alcotest.check_raises "write outside transaction"
    (Invalid_argument "Stm.write outside a transaction") (fun () ->
      Stm.write v 1)

let test_snapshot_read_outside () =
  let v = Stm.tvar 5 in
  Alcotest.(check int) "snapshot read" 5 (Stm.read v);
  Alcotest.(check bool) "not in transaction" false (Stm.in_transaction ())

let test_nesting_flattens () =
  let v = Stm.tvar 0 in
  Stm.atomically (fun () ->
      Alcotest.(check bool) "in transaction" true (Stm.in_transaction ());
      (* Txn_counter.add uses atomically internally: must join us. *)
      Stm.write v 1;
      Stm.atomically (fun () -> Stm.write v (Stm.read v + 1)));
  Alcotest.(check int) "nested writes committed once" 2 (Stm.read v)

let test_two_tvars_consistent () =
  let a = Stm.tvar 1 and b = Stm.tvar 1 in
  Stm.atomically (fun () ->
      Stm.write a 2;
      Stm.write b 2);
  let sa, sb = Stm.atomically (fun () -> (Stm.read a, Stm.read b)) in
  Alcotest.(check (pair int int)) "both updated" (2, 2) (sa, sb)

let test_polymorphic_tvars () =
  let s = Stm.tvar "hello" and l = Stm.tvar [ 1; 2 ] in
  Stm.atomically (fun () ->
      Stm.write s (Stm.read s ^ " world");
      Stm.write l (3 :: Stm.read l));
  Alcotest.(check string) "string tvar" "hello world" (Stm.read s);
  Alcotest.(check (list int)) "list tvar" [ 3; 1; 2 ] (Stm.read l)

(* ------------------------------------------------------------------ *)
(* Data structures: sequential model checks. *)

let test_counter () =
  let c = Tm_stm.Txn_counter.make 0 in
  for _ = 1 to 10 do
    Tm_stm.Txn_counter.incr c
  done;
  Tm_stm.Txn_counter.add c 5;
  Alcotest.(check int) "counter" 15 (Tm_stm.Txn_counter.get c)

let test_list_model =
  QCheck2.Test.make ~count:100 ~name:"txn_list behaves like a set"
    QCheck2.Gen.(list (pair bool (int_bound 20)))
    (fun ops ->
      let l = Tm_stm.Txn_list.make () in
      let model = ref [] in
      List.iter
        (fun (is_add, k) ->
          if is_add then begin
            let added = Tm_stm.Txn_list.add l k in
            let expected = not (List.mem k !model) in
            if added <> expected then failwith "add mismatch";
            if added then model := k :: !model
          end
          else begin
            let removed = Tm_stm.Txn_list.remove l k in
            let expected = List.mem k !model in
            if removed <> expected then failwith "remove mismatch";
            if removed then model := List.filter (( <> ) k) !model
          end)
        ops;
      Tm_stm.Txn_list.to_list l = List.sort_uniq Int.compare !model)

let test_queue_fifo () =
  let q = Tm_stm.Txn_queue.make () in
  List.iter (Tm_stm.Txn_queue.push q) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "pop 1" (Some 1) (Tm_stm.Txn_queue.pop q);
  Tm_stm.Txn_queue.push q 4;
  Alcotest.(check (option int)) "pop 2" (Some 2) (Tm_stm.Txn_queue.pop q);
  Alcotest.(check (list int)) "rest" [ 3; 4 ] (Tm_stm.Txn_queue.to_list q);
  Alcotest.(check int) "length" 2 (Tm_stm.Txn_queue.length q);
  Alcotest.(check (option int)) "pop 3" (Some 3) (Tm_stm.Txn_queue.pop q);
  Alcotest.(check (option int)) "pop 4" (Some 4) (Tm_stm.Txn_queue.pop q);
  Alcotest.(check (option int)) "empty" None (Tm_stm.Txn_queue.pop q)

let test_stack () =
  let s = Tm_stm.Txn_stack.make () in
  Alcotest.(check (option int)) "empty pop" None (Tm_stm.Txn_stack.pop s);
  Tm_stm.Txn_stack.push s 1;
  Tm_stm.Txn_stack.push s 2;
  Alcotest.(check (option int)) "peek" (Some 2) (Tm_stm.Txn_stack.peek s);
  Alcotest.(check int) "length" 2 (Tm_stm.Txn_stack.length s);
  Alcotest.(check (option int)) "lifo pop" (Some 2) (Tm_stm.Txn_stack.pop s);
  Alcotest.(check (list int)) "rest" [ 1 ] (Tm_stm.Txn_stack.to_list s)

let test_map_model =
  QCheck2.Test.make ~count:100 ~name:"txn_map behaves like a map and stays \
                                      balanced"
    QCheck2.Gen.(list (pair (int_bound 2) (int_bound 30)))
    (fun ops ->
      let m = Tm_stm.Txn_map.make () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (op, k) ->
          match op with
          | 0 ->
              Tm_stm.Txn_map.set m k (k * 10);
              Hashtbl.replace model k (k * 10)
          | 1 ->
              let removed = Tm_stm.Txn_map.remove m k in
              let expected = Hashtbl.mem model k in
              if removed <> expected then failwith "remove mismatch";
              Hashtbl.remove model k
          | _ ->
              let found = Tm_stm.Txn_map.find m k in
              let expected = Hashtbl.find_opt model k in
              if found <> expected then failwith "find mismatch")
        ops;
      let expected_bindings =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []
        |> List.sort compare
      in
      Tm_stm.Txn_map.bindings m = expected_bindings
      && Tm_stm.Txn_map.check_balanced m)

let test_map_sequential () =
  let m = Tm_stm.Txn_map.make () in
  for i = 1 to 100 do
    Tm_stm.Txn_map.set m i (i * i)
  done;
  Alcotest.(check int) "cardinal" 100 (Tm_stm.Txn_map.cardinal m);
  Alcotest.(check bool) "balanced after ascending inserts" true
    (Tm_stm.Txn_map.check_balanced m);
  Alcotest.(check (option int)) "find" (Some 49) (Tm_stm.Txn_map.find m 7);
  Alcotest.(check bool) "remove" true (Tm_stm.Txn_map.remove m 7);
  Alcotest.(check (option int)) "gone" None (Tm_stm.Txn_map.find m 7);
  Alcotest.(check bool) "still balanced" true (Tm_stm.Txn_map.check_balanced m)

let test_hashtbl () =
  let h = Tm_stm.Txn_hashtbl.make ~buckets:4 () in
  Tm_stm.Txn_hashtbl.set h 1 "one";
  Tm_stm.Txn_hashtbl.set h 5 "five";
  Tm_stm.Txn_hashtbl.set h 1 "uno";
  Alcotest.(check (option string)) "overwrite" (Some "uno")
    (Tm_stm.Txn_hashtbl.find h 1);
  Alcotest.(check (option string)) "other key" (Some "five")
    (Tm_stm.Txn_hashtbl.find h 5);
  Alcotest.(check int) "length" 2 (Tm_stm.Txn_hashtbl.length h);
  Alcotest.(check bool) "remove" true (Tm_stm.Txn_hashtbl.remove h 1);
  Alcotest.(check bool) "remove again" false (Tm_stm.Txn_hashtbl.remove h 1);
  Alcotest.(check (option string)) "gone" None (Tm_stm.Txn_hashtbl.find h 1)

(* ------------------------------------------------------------------ *)
(* Multicore stress. *)

let ndomains = 4

let test_parallel_counter () =
  let c = Tm_stm.Txn_counter.make 0 in
  let iters = 3000 in
  spawn_all
    (List.init ndomains (fun _ () ->
         for _ = 1 to iters do
           Tm_stm.Txn_counter.incr c
         done));
  Alcotest.(check int) "no lost updates" (ndomains * iters)
    (Tm_stm.Txn_counter.get c)

let test_parallel_bank () =
  let accounts = 8 and initial = 100 in
  let bank = Tm_stm.Txn_bank.make ~accounts ~initial in
  let violations = Atomic.make 0 in
  let workers =
    List.init ndomains (fun d () ->
        let st = ref (d + 1) in
        let rand bound =
          st := (!st * 1103515245) + 12345;
          abs !st mod bound
        in
        for _ = 1 to 2000 do
          let a = rand accounts in
          let b = (a + 1 + rand (accounts - 1)) mod accounts in
          ignore (Tm_stm.Txn_bank.transfer bank ~from_:a ~to_:b ~amount:(1 + rand 5))
        done)
  in
  let checker () =
    for _ = 1 to 200 do
      if Tm_stm.Txn_bank.total bank <> accounts * initial then
        Atomic.incr violations
    done
  in
  spawn_all (checker :: workers);
  Alcotest.(check int) "total balance always invariant" 0
    (Atomic.get violations);
  Alcotest.(check int) "final total" (accounts * initial)
    (Tm_stm.Txn_bank.total bank)

let test_parallel_list () =
  let l = Tm_stm.Txn_list.make () in
  let per = 300 in
  spawn_all
    (List.init ndomains (fun d () ->
         for i = 0 to per - 1 do
           ignore (Tm_stm.Txn_list.add l ((i * ndomains) + d))
         done));
  let contents = Tm_stm.Txn_list.to_list l in
  Alcotest.(check int) "all inserted" (ndomains * per) (List.length contents);
  Alcotest.(check (list int))
    "sorted and complete"
    (List.init (ndomains * per) Fun.id)
    contents

let test_parallel_queue () =
  let q = Tm_stm.Txn_queue.make () in
  let per = 2000 in
  let popped = Array.make ndomains 0 in
  let producers =
    List.init (ndomains / 2) (fun d () ->
        for i = 1 to per do
          Tm_stm.Txn_queue.push q ((d * per) + i)
        done)
  in
  let total_expected = ndomains / 2 * per in
  let taken = Atomic.make 0 in
  let consumers =
    List.init (ndomains / 2) (fun d () ->
        let continue = ref true in
        while !continue do
          match Tm_stm.Txn_queue.pop q with
          | Some _ ->
              popped.(d) <- popped.(d) + 1;
              ignore (Atomic.fetch_and_add taken 1)
          | None -> if Atomic.get taken >= total_expected then continue := false
        done)
  in
  spawn_all (producers @ consumers);
  Alcotest.(check int) "all elements consumed" total_expected
    (Atomic.get taken);
  Alcotest.(check (option int)) "queue drained" None (Tm_stm.Txn_queue.pop q)

let test_parallel_map () =
  let m = Tm_stm.Txn_map.make () in
  let per = 250 in
  spawn_all
    (List.init ndomains (fun d () ->
         for i = 0 to per - 1 do
           Tm_stm.Txn_map.set m ((i * ndomains) + d) d
         done));
  Alcotest.(check int) "all keys present" (ndomains * per)
    (Tm_stm.Txn_map.cardinal m);
  Alcotest.(check bool) "balanced under concurrency" true
    (Tm_stm.Txn_map.check_balanced m);
  Alcotest.(check (list int)) "keys complete"
    (List.init (ndomains * per) Fun.id)
    (List.map fst (Tm_stm.Txn_map.bindings m))

let test_parallel_stack () =
  let s = Tm_stm.Txn_stack.make () in
  let per = 2000 in
  spawn_all
    (List.init ndomains (fun d () ->
         for i = 1 to per do
           Tm_stm.Txn_stack.push s ((d * per) + i)
         done));
  Alcotest.(check int) "nothing lost" (ndomains * per)
    (Tm_stm.Txn_stack.length s);
  let sorted = List.sort Int.compare (Tm_stm.Txn_stack.to_list s) in
  Alcotest.(check bool) "all distinct elements present" true
    (sorted = List.init (ndomains * per) (fun i -> i + 1))

let test_parallel_hashtbl () =
  let h = Tm_stm.Txn_hashtbl.make ~buckets:16 () in
  let per = 500 in
  spawn_all
    (List.init ndomains (fun d () ->
         for i = 0 to per - 1 do
           Tm_stm.Txn_hashtbl.set h ((i * ndomains) + d) d
         done));
  Alcotest.(check int) "all keys present" (ndomains * per)
    (Tm_stm.Txn_hashtbl.length h);
  Alcotest.(check (option int)) "spot check" (Some 1)
    (Tm_stm.Txn_hashtbl.find h (ndomains + 1))

(* The bank hammer with snapshot observers: worker domains fire transfers
   while observer domains repeatedly sum every account *twice inside one
   transaction* — any transaction observing an inconsistent snapshot
   (torn between two commits) would see the two sums differ, or a total
   off the invariant.  This is the opacity claim of the runtime exercised
   under real concurrency. *)
let test_bank_snapshot_consistency () =
  let accounts = 12 and initial = 100 in
  let bank = Tm_stm.Txn_bank.make ~accounts ~initial in
  let expected_total = accounts * initial in
  let workers_done = Atomic.make 0 in
  let nworkers = ndomains in
  let violations = Atomic.make 0 in
  let workers =
    List.init nworkers (fun d () ->
        let st = ref ((d * 7) + 1) in
        let rand bound =
          st := (!st * 1103515245) + 12345;
          abs !st mod bound
        in
        for _ = 1 to 3000 do
          let a = rand accounts in
          let b = (a + 1 + rand (accounts - 1)) mod accounts in
          ignore
            (Tm_stm.Txn_bank.transfer bank ~from_:a ~to_:b ~amount:(1 + rand 7))
        done;
        Atomic.incr workers_done)
  in
  let observers =
    List.init 2 (fun _ () ->
        while Atomic.get workers_done < nworkers do
          let sum1, sum2 =
            Stm.atomically (fun () ->
                let sum () =
                  let acc = ref 0 in
                  for i = 0 to accounts - 1 do
                    acc := !acc + Tm_stm.Txn_bank.balance bank i
                  done;
                  !acc
                in
                let s1 = sum () in
                let s2 = sum () in
                (s1, s2))
          in
          if sum1 <> sum2 then Atomic.incr violations;
          if sum1 <> expected_total then Atomic.incr violations
        done)
  in
  spawn_all (workers @ observers);
  Alcotest.(check int) "no transaction saw an inconsistent snapshot" 0
    (Atomic.get violations);
  Alcotest.(check int) "total balance invariant after the storm"
    expected_total (Tm_stm.Txn_bank.total bank);
  Alcotest.(check bool) "every account non-negative" true
    (List.for_all
       (fun i -> Tm_stm.Txn_bank.balance bank i >= 0)
       (List.init accounts Fun.id))

(* Model-based sequential check of the core runtime: random transactional
   programs against a reference association list, including mid-program
   user aborts (exception) whose writes must all vanish. *)
let test_stm_model =
  QCheck2.Test.make ~count:150 ~name:"Stm behaves like an atomic store"
    QCheck2.Gen.(list (triple (int_bound 3) (int_bound 4) (int_bound 9)))
    (fun programs ->
      let tvars = Array.init 5 (fun _ -> Stm.tvar 0) in
      let model = Array.make 5 0 in
      let exception User_abort in
      List.iter
        (fun (kind, x, v) ->
          match kind with
          | 0 ->
              Stm.atomically (fun () -> Stm.write tvars.(x) v);
              model.(x) <- v
          | 1 ->
              let got = Stm.atomically (fun () -> Stm.read tvars.(x)) in
              if got <> model.(x) then failwith "read mismatch"
          | 2 ->
              (* A transaction that writes two t-variables then aborts by
                 exception: nothing may survive. *)
              (try
                 Stm.atomically (fun () ->
                     Stm.write tvars.(x) (v + 100);
                     Stm.write tvars.((x + 1) mod 5) (v + 200);
                     raise User_abort)
               with User_abort -> ())
          | _ ->
              Stm.atomically (fun () ->
                  Stm.write tvars.(x) (Stm.read tvars.(x) + v));
              model.(x) <- model.(x) + v)
        programs;
      Array.for_all2 ( = ) model (Array.map Stm.read tvars))

(* ------------------------------------------------------------------ *)
(* The global-lock runtime (Stm_lock): same API, no aborts ever. *)

module L = Tm_stm.Stm_lock

let test_lock_stm_basic () =
  let v = L.tvar 1 in
  let r =
    L.atomically (fun () ->
        L.write v (L.read v + 10);
        L.read v)
  in
  Alcotest.(check int) "reads own write" 11 r;
  Alcotest.(check int) "committed" 11 (L.read v);
  Alcotest.check_raises "write outside transaction"
    (Invalid_argument "Stm_lock.write outside a transaction") (fun () ->
      L.write v 0)

let test_lock_stm_every_txn_commits () =
  let before = L.commits () in
  let v = L.tvar 0 in
  for _ = 1 to 50 do
    L.atomically (fun () -> L.write v (L.read v + 1))
  done;
  Alcotest.(check int) "fifty increments" 50 (L.read v);
  Alcotest.(check bool) "every transaction commits (no aborts exist)" true
    (L.commits () - before >= 50)

let test_lock_stm_parallel_counter () =
  let v = L.tvar 0 in
  let iters = 3000 in
  spawn_all
    (List.init ndomains (fun _ () ->
         for _ = 1 to iters do
           L.atomically (fun () -> L.write v (L.read v + 1))
         done));
  Alcotest.(check int) "no lost updates" (ndomains * iters) (L.read v)

let test_stats_move () =
  let before_c, _ = Stm.stats () in
  let v = Stm.tvar 0 in
  Stm.atomically (fun () -> Stm.write v 1);
  let after_c, _ = Stm.stats () in
  Alcotest.(check bool) "commit counted" true (after_c > before_c)

(* ------------------------------------------------------------------ *)
(* The algorithm zoo: every core behind [Stm.Algo] must pass the same
   semantics, the same snapshot-consistency stress, and keep its
   telemetry/chaos seam labels truthful. *)

let test_zoo_semantics () =
  List.iter
    (fun a ->
      let name = Stm.Algo.name a in
      Stm.with_algo a (fun () ->
          let v = Stm.tvar 1 in
          let r =
            Stm.atomically (fun () ->
                Stm.write v (Stm.read v + 10);
                Stm.read v)
          in
          Alcotest.(check int) (name ^ ": reads own write") 11 r;
          Alcotest.(check int) (name ^ ": committed") 11 (Stm.read v);
          (try
             Stm.atomically (fun () ->
                 Stm.write v 99;
                 raise Exit)
           with Exit -> ());
          Alcotest.(check int) (name ^ ": rollback on exception") 11 (Stm.read v);
          let s = Stm.tvar "x" and l = Stm.tvar [ 1 ] in
          Stm.atomically (fun () ->
              Stm.write s (Stm.read s ^ "y");
              Stm.write l (2 :: Stm.read l);
              (* flat nesting must join the enclosing transaction *)
              Stm.atomically (fun () -> Stm.write l (3 :: Stm.read l)));
          Alcotest.(check string) (name ^ ": polymorphic string") "xy"
            (Stm.read s);
          Alcotest.(check (list int)) (name ^ ": nested flattens") [ 3; 2; 1 ]
            (Stm.read l)))
    Stm.Algo.all

(* The per-algorithm phase mapping (Algo.tel_phases) is a promise that
   telemetry labels stay truthful: a histogram named "lock-acquire"
   under NOrec would measure a phase the algorithm does not have.
   Record every phase each core actually emits on a write commit and a
   conflict-free read, and check it against the declared mapping —
   including the load-bearing negatives. *)
let test_zoo_phase_mapping () =
  List.iter
    (fun a ->
      let name = Stm.Algo.name a in
      let seen : (Stm.Tel.phase, unit) Hashtbl.t = Hashtbl.create 8 in
      let probe =
        {
          Stm.Tel.now = (fun () -> 0);
          count = (fun p -> Hashtbl.replace seen p ());
          observe = (fun p _ -> Hashtbl.replace seen p ());
        }
      in
      Stm.with_algo a (fun () ->
          Stm.Tel.install probe;
          Fun.protect ~finally:Stm.Tel.uninstall (fun () ->
              let v = Stm.tvar 0 in
              Stm.atomically (fun () -> Stm.write v (Stm.read v + 1))));
      let allowed = Stm.Algo.tel_phases a in
      Hashtbl.iter
        (fun p () ->
          if not (List.mem p allowed) then
            Alcotest.failf "%s emitted phase %S outside its declared mapping"
              name (Stm.Tel.phase_label p))
        seen;
      let has p = Hashtbl.mem seen p in
      Alcotest.(check bool) (name ^ ": counts Begin") true (has Stm.Tel.Begin);
      Alcotest.(check bool) (name ^ ": counts Read") true (has Stm.Tel.Read);
      Alcotest.(check bool) (name ^ ": observes Publish") true
        (has Stm.Tel.Publish);
      Alcotest.(check bool) (name ^ ": observes Commit") true
        (has Stm.Tel.Commit);
      match a with
      | Stm.Algo.Tl2 ->
          Alcotest.(check bool) "tl2: observes Lock" true (has Stm.Tel.Lock);
          Alcotest.(check bool) "tl2: observes Validate" true
            (has Stm.Tel.Validate)
      | Stm.Algo.Global_lock ->
          Alcotest.(check bool) "global-lock: observes Lock" true
            (has Stm.Tel.Lock);
          Alcotest.(check bool) "global-lock: never Validate" false
            (has Stm.Tel.Validate)
      | Stm.Algo.Dstm | Stm.Algo.Norec ->
          Alcotest.(check bool) (name ^ ": observes Validate") true
            (has Stm.Tel.Validate);
          Alcotest.(check bool) (name ^ ": never per-location Lock") false
            (has Stm.Tel.Lock))
    Stm.Algo.all

(* Same truthfulness contract for the chaos interception points. *)
let test_zoo_chaos_points () =
  List.iter
    (fun a ->
      let name = Stm.Algo.name a in
      let seen : (Stm.Chaos.point, unit) Hashtbl.t = Hashtbl.create 8 in
      Stm.Chaos.install (fun p ->
          Hashtbl.replace seen p ();
          Stm.Chaos.Proceed);
      Fun.protect ~finally:Stm.Chaos.uninstall (fun () ->
          Stm.with_algo a (fun () ->
              let v = Stm.tvar 0 in
              Stm.atomically (fun () -> Stm.write v (Stm.read v + 1))));
      let allowed = Stm.Algo.chaos_points a in
      Hashtbl.iter
        (fun p () ->
          if not (List.mem p allowed) then
            Alcotest.failf "%s fired point %S outside its declared mapping"
              name
              (Stm.Chaos.point_label p))
        seen;
      let has p = Hashtbl.mem seen p in
      Alcotest.(check bool) (name ^ ": fires Read") true (has Stm.Chaos.Read);
      Alcotest.(check bool) (name ^ ": fires Pre_commit") true
        (has Stm.Chaos.Pre_commit);
      Alcotest.(check bool) (name ^ ": fires Post_commit") true
        (has Stm.Chaos.Post_commit);
      if a = Stm.Algo.Norec then
        Alcotest.(check bool) "norec: never Lock_acquire" false
          (has Stm.Chaos.Lock_acquire);
      if a = Stm.Algo.Global_lock then
        Alcotest.(check bool) "global-lock: never Validate" false
          (has Stm.Chaos.Validate))
    Stm.Algo.all

let zoo_parallel_counter a () =
  Stm.with_algo a (fun () ->
      let v = Stm.tvar 0 in
      let iters = 1500 in
      spawn_all
        (List.init ndomains (fun _ () ->
             for _ = 1 to iters do
               Stm.atomically (fun () -> Stm.write v (Stm.read v + 1))
             done));
      Alcotest.(check int)
        (Stm.Algo.name a ^ ": no lost updates")
        (ndomains * iters) (Stm.read v))

(* The opacity stress of [test_bank_snapshot_consistency], generalized
   over the zoo: workers fire transfers while an observer sums every
   account twice inside one transaction — a torn snapshot shows up as
   the two sums differing or the invariant breaking. *)
let zoo_bank_snapshot a () =
  Stm.with_algo a (fun () ->
      let accounts = 8 and initial = 50 in
      let bank = Tm_stm.Txn_bank.make ~accounts ~initial in
      let expected_total = accounts * initial in
      let workers_done = Atomic.make 0 in
      let violations = Atomic.make 0 in
      let workers =
        List.init (ndomains - 1) (fun d () ->
            let st = ref ((d * 11) + 3) in
            let rand bound =
              st := (!st * 1103515245) + 12345;
              abs !st mod bound
            in
            for _ = 1 to 1200 do
              let x = rand accounts in
              let y = (x + 1 + rand (accounts - 1)) mod accounts in
              ignore
                (Tm_stm.Txn_bank.transfer bank ~from_:x ~to_:y
                   ~amount:(1 + rand 5))
            done;
            Atomic.incr workers_done)
      in
      let observer () =
        while Atomic.get workers_done < ndomains - 1 do
          let s1, s2 =
            Stm.atomically (fun () ->
                let sum () =
                  let acc = ref 0 in
                  for i = 0 to accounts - 1 do
                    acc := !acc + Tm_stm.Txn_bank.balance bank i
                  done;
                  !acc
                in
                let a = sum () in
                let b = sum () in
                (a, b))
          in
          if s1 <> s2 || s1 <> expected_total then Atomic.incr violations
        done
      in
      spawn_all (observer :: workers);
      Alcotest.(check int)
        (Stm.Algo.name a ^ ": no inconsistent snapshot")
        0 (Atomic.get violations);
      Alcotest.(check int)
        (Stm.Algo.name a ^ ": invariant after the storm")
        expected_total
        (Tm_stm.Txn_bank.total bank))

(* Named regression: DSTM abort-others stealing must not livelock.  Two
   domains write the same two t-variables in opposite orders, the
   adversarial pattern where each transaction steals the other's
   ownership and both could abort each other forever.  The facade's
   randomized backoff breaks the symmetry; both workers must finish
   with no lost updates. *)
let test_dstm_steal_livelock () =
  Stm.with_algo Stm.Algo.Dstm (fun () ->
      let a = Stm.tvar 0 and b = Stm.tvar 0 in
      let iters = 1000 in
      spawn_all
        [
          (fun () ->
            for _ = 1 to iters do
              Stm.atomically (fun () ->
                  Stm.write a (Stm.read a + 1);
                  Stm.write b (Stm.read b + 1))
            done);
          (fun () ->
            for _ = 1 to iters do
              Stm.atomically (fun () ->
                  Stm.write b (Stm.read b + 1);
                  Stm.write a (Stm.read a + 1))
            done);
        ];
      Alcotest.(check (pair int int))
        "mutual stealers both complete with no lost updates"
        (2 * iters, 2 * iters)
        (Stm.read a, Stm.read b))

(* Named regression: NOrec value-based validation.  Two traps in one:
   (a) t-variables may hold closures (txn_map nodes carry comparison
   functions), where structural equality raises — validation must use
   physical equality; (b) a flipper swaps two integers back and forth,
   the ABA pattern value-based validation admits by design — admitting
   it must still never show an observer a torn (sum <> invariant)
   snapshot. *)
let test_norec_value_validation_aba () =
  Stm.with_algo Stm.Algo.Norec (fun () ->
      let f0 x = x + 1 and f1 x = x * 2 in
      let fv = Stm.tvar f0 in
      let a = Stm.tvar 0 and b = Stm.tvar 1 in
      (* invariant: a + b = 1 *)
      let stop = Atomic.make false in
      let violations = Atomic.make 0 in
      let flipper () =
        for i = 1 to 4000 do
          Stm.atomically (fun () ->
              let x = Stm.read a in
              Stm.write a (Stm.read b);
              Stm.write b x;
              Stm.write fv (if i land 1 = 0 then f0 else f1))
        done;
        Atomic.set stop true
      in
      let observer () =
        while not (Atomic.get stop) do
          let s =
            Stm.atomically (fun () ->
                let g = Stm.read fv in
                ignore (g 1);
                Stm.read a + Stm.read b)
          in
          if s <> 1 then Atomic.incr violations
        done
      in
      spawn_all [ flipper; observer ];
      Alcotest.(check int) "no torn snapshot under value validation" 0
        (Atomic.get violations);
      Alcotest.(check int) "invariant holds at the end" 1
        (Stm.read a + Stm.read b))

(* ------------------------------------------------------------------ *)
(* Blame seam. *)

(* Named regression: [Stm.recover] must disarm every installed seam
   (Chaos, Tel, Blame) before releasing core-global lock state, and it
   must be idempotent — recover twice, then a clean commit.  A chaos
   handler that crashes every transaction is the sharpest probe: if
   recover left it armed, the commit below would die. *)
let test_recover_resets_seams () =
  let v = Stm.tvar 0 in
  let blame_hits = Atomic.make 0 in
  let tel_hits = Atomic.make 0 in
  Stm.Blame.install
    {
      Stm.Blame.on_event = (fun _ -> Atomic.incr blame_hits);
      on_progress = (fun _ -> Atomic.incr blame_hits);
    };
  Stm.Tel.install
    {
      Stm.Tel.now = (fun () -> 0);
      count = (fun _ -> Atomic.incr tel_hits);
      observe = (fun _ _ -> Atomic.incr tel_hits);
    };
  Stm.Chaos.install (fun _ -> Stm.Chaos.Crash);
  Stm.recover ();
  Stm.recover ();
  Stm.atomically (fun () -> Stm.write v (Stm.read v + 1));
  Alcotest.(check int) "clean commit after double recover" 1 (Stm.read v);
  Alcotest.(check bool) "blame disarmed" false (Stm.Blame.is_armed ());
  Alcotest.(check int) "blame sink silent" 0 (Atomic.get blame_hits);
  Alcotest.(check int) "tel probe silent" 0 (Atomic.get tel_hits)

(* While disarmed, the seam must be inert: no sink calls, no identity
   reads, [self] at its default. *)
let test_blame_disarmed_inert () =
  let v = Stm.tvar 0 in
  Alcotest.(check bool) "starts disarmed" false (Stm.Blame.is_armed ());
  Alcotest.(check int) "self defaults to unknown" (-1) (Stm.Blame.self ());
  let hits = Atomic.make 0 in
  let sink =
    {
      Stm.Blame.on_event = (fun _ -> Atomic.incr hits);
      on_progress = (fun _ -> Atomic.incr hits);
    }
  in
  Stm.Blame.install sink;
  Stm.Blame.uninstall ();
  for _ = 1 to 100 do
    Stm.atomically (fun () -> Stm.write v (Stm.read v + 1))
  done;
  Alcotest.(check int) "no events while disarmed" 0 (Atomic.get hits)

(* Armed, single domain, no contention: the only signal is the progress
   watermark, tagged with the slot bound by [set_self]. *)
let test_blame_progress_watermark () =
  let v = Stm.tvar 0 in
  let progresses = Atomic.make 0 and events = Atomic.make 0 in
  let slot_seen = Atomic.make (-2) in
  Stm.Blame.install
    {
      Stm.Blame.on_event = (fun _ -> Atomic.incr events);
      on_progress =
        (fun s ->
          Atomic.set slot_seen s;
          Atomic.incr progresses);
    };
  Stm.Blame.set_self 7;
  for _ = 1 to 50 do
    Stm.atomically (fun () -> Stm.write v (Stm.read v + 1))
  done;
  Stm.Blame.set_self (-1);
  Stm.Blame.uninstall ();
  Alcotest.(check int) "one progress per commit" 50 (Atomic.get progresses);
  Alcotest.(check int) "no conflict events uncontended" 0 (Atomic.get events);
  Alcotest.(check int) "progress carries the bound slot" 7
    (Atomic.get slot_seen)

(* Every cause a core emits under real contention must be in its
   declared [Algo.blame_causes] — the attribution never lies about the
   mechanism.  (The converse — every declared cause eventually seen —
   is load-dependent and belongs to the bench.) *)
let blame_causes_truthful algo () =
  Stm.with_algo algo (fun () ->
      let seen = Atomic.make [] in
      let rec push c =
        let old = Atomic.get seen in
        if not (Atomic.compare_and_set seen old (c :: old)) then push c
      in
      Stm.Blame.install
        {
          Stm.Blame.on_event = (fun e -> push e.Stm.Blame.b_cause);
          on_progress = (fun _ -> ());
        };
      let hot = Array.init 2 (fun _ -> Stm.tvar 0) in
      spawn_all
        (List.init 2 (fun d () ->
             Stm.Blame.set_self d;
             for _ = 1 to 20_000 do
               Stm.atomically (fun () ->
                   let a = Stm.read hot.(0) in
                   let b = Stm.read hot.(1) in
                   Stm.write hot.(0) (a + 1);
                   Stm.write hot.(1) (b + 1))
             done;
             Stm.Blame.set_self (-1)));
      Stm.Blame.uninstall ();
      let allowed = Stm.Algo.blame_causes algo in
      List.iter
        (fun c ->
          Alcotest.(check bool)
            (Fmt.str "%s: emitted cause %s is declared" (Stm.Algo.name algo)
               (Stm.Blame.cause_label c))
            true (List.mem c allowed))
        (Atomic.get seen))

(* The announcement tables are consumed as association keys — telemetry
   label sets, chaos plans, blame classification — so a duplicated
   entry or an order that varied between calls would silently skew
   those consumers.  tmstatic cross-checks the same tables against each
   core's emission sites at the AST level (seam-contract); this pins
   the runtime side of that contract. *)
let test_algo_tables_hygienic =
  QCheck2.Test.make ~count:200
    ~name:"Algo announcement tables are duplicate-free and order-stable"
    ~print:Stm.Algo.name
    QCheck2.Gen.(oneofl Stm.Algo.all)
    (fun a ->
      let dup_free l =
        List.length (List.sort_uniq compare l) = List.length l
      in
      let stable f = f a = f a in
      dup_free (Stm.Algo.tel_phases a)
      && dup_free (Stm.Algo.chaos_points a)
      && dup_free (Stm.Algo.blame_causes a)
      && stable Stm.Algo.tel_phases
      && stable Stm.Algo.chaos_points
      && stable Stm.Algo.blame_causes)

let () =
  Alcotest.run "tm_stm"
    [
      ( "semantics",
        [
          Alcotest.test_case "read/write" `Quick test_basic_read_write;
          Alcotest.test_case "rollback on exception" `Quick
            test_rollback_on_exception;
          Alcotest.test_case "write outside rejected" `Quick
            test_write_outside_rejected;
          Alcotest.test_case "snapshot read outside" `Quick
            test_snapshot_read_outside;
          Alcotest.test_case "nesting flattens" `Quick test_nesting_flattens;
          Alcotest.test_case "two tvars" `Quick test_two_tvars_consistent;
          Alcotest.test_case "polymorphic tvars" `Quick test_polymorphic_tvars;
          Alcotest.test_case "stats" `Quick test_stats_move;
          QCheck_alcotest.to_alcotest test_stm_model;
        ] );
      ( "data structures",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          QCheck_alcotest.to_alcotest test_list_model;
          Alcotest.test_case "queue fifo" `Quick test_queue_fifo;
          Alcotest.test_case "stack" `Quick test_stack;
          QCheck_alcotest.to_alcotest test_map_model;
          Alcotest.test_case "map sequential" `Quick test_map_sequential;
          Alcotest.test_case "hashtbl" `Quick test_hashtbl;
        ] );
      ( "global-lock runtime",
        [
          Alcotest.test_case "basics" `Quick test_lock_stm_basic;
          Alcotest.test_case "every transaction commits" `Quick
            test_lock_stm_every_txn_commits;
          Alcotest.test_case "parallel counter" `Slow
            test_lock_stm_parallel_counter;
        ] );
      ( "algorithm zoo",
        [
          Alcotest.test_case "semantics, every core" `Quick test_zoo_semantics;
          Alcotest.test_case "telemetry phase mapping truthful" `Quick
            test_zoo_phase_mapping;
          Alcotest.test_case "chaos point mapping truthful" `Quick
            test_zoo_chaos_points;
          QCheck_alcotest.to_alcotest test_algo_tables_hygienic;
          Alcotest.test_case "global-lock parallel counter" `Slow
            (zoo_parallel_counter Stm.Algo.Global_lock);
          Alcotest.test_case "dstm parallel counter" `Slow
            (zoo_parallel_counter Stm.Algo.Dstm);
          Alcotest.test_case "norec parallel counter" `Slow
            (zoo_parallel_counter Stm.Algo.Norec);
          Alcotest.test_case "global-lock bank snapshot" `Slow
            (zoo_bank_snapshot Stm.Algo.Global_lock);
          Alcotest.test_case "dstm bank snapshot" `Slow
            (zoo_bank_snapshot Stm.Algo.Dstm);
          Alcotest.test_case "norec bank snapshot" `Slow
            (zoo_bank_snapshot Stm.Algo.Norec);
          Alcotest.test_case "dstm abort-stealing livelock" `Slow
            test_dstm_steal_livelock;
          Alcotest.test_case "norec value-validation ABA" `Slow
            test_norec_value_validation_aba;
        ] );
      ( "blame seam",
        [
          Alcotest.test_case "recover resets every seam" `Quick
            test_recover_resets_seams;
          Alcotest.test_case "disarmed seam inert" `Quick
            test_blame_disarmed_inert;
          Alcotest.test_case "progress watermark" `Quick
            test_blame_progress_watermark;
          Alcotest.test_case "tl2 causes truthful" `Slow
            (blame_causes_truthful Stm.Algo.Tl2);
          Alcotest.test_case "global-lock causes truthful" `Slow
            (blame_causes_truthful Stm.Algo.Global_lock);
          Alcotest.test_case "dstm causes truthful" `Slow
            (blame_causes_truthful Stm.Algo.Dstm);
          Alcotest.test_case "norec causes truthful" `Slow
            (blame_causes_truthful Stm.Algo.Norec);
        ] );
      ( "multicore stress",
        [
          Alcotest.test_case "parallel counter" `Slow test_parallel_counter;
          Alcotest.test_case "parallel bank" `Slow test_parallel_bank;
          Alcotest.test_case "bank snapshot consistency" `Slow
            test_bank_snapshot_consistency;
          Alcotest.test_case "parallel list" `Slow test_parallel_list;
          Alcotest.test_case "parallel queue" `Slow test_parallel_queue;
          Alcotest.test_case "parallel map" `Slow test_parallel_map;
          Alcotest.test_case "parallel stack" `Slow test_parallel_stack;
          Alcotest.test_case "parallel hashtbl" `Slow test_parallel_hashtbl;
        ] );
    ]
