(** Shared test helpers. *)

val with_temp_file : ?prefix:string -> ?suffix:string -> (string -> 'a) -> 'a
(** [with_temp_file f] calls [f path] with a fresh temp-file path and
    removes the file afterwards, even if [f] raises. *)

val write_file : string -> string -> unit
val read_file : string -> string

val with_out_channel : string -> (out_channel -> 'a) -> 'a
(** Opens [path] for writing, runs the function, and always closes the
    channel. *)
