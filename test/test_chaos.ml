(* Tests for the chaos subsystem: plan derivation, counter
   classification, the chaos-class lint rule, and the determinism
   contract (same seed + scenario => byte-identical fault schedule and
   trace), both as unit cases and as a qcheck property. *)

module Plan = Tm_chaos.Plan
module Runner = Tm_chaos.Runner
module Emp = Tm_liveness.Empirical
module Pc = Tm_liveness.Process_class
module Tev = Tm_trace.Trace_event
module Stm = Tm_stm.Stm

(* ------------------------------------------------------------------ *)
(* Plans. *)

let test_plan_scenarios_documented () =
  Alcotest.(check bool) "at least the gated scenarios exist" true
    (List.mem "crash-holding-locks" Plan.scenarios
    && List.mem "parasitic-only" Plan.scenarios);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Fmt.str "%s has a doc line" s)
        true
        (Plan.scenario_doc s <> None))
    Plan.scenarios;
  Alcotest.(check (option string)) "unknown scenario has no doc" None
    (Plan.scenario_doc "no-such-scenario")

let test_plan_shapes () =
  List.iter
    (fun scenario ->
      match Plan.make ~scenario ~seed:11 ~domains:4 () with
      | Error m -> Alcotest.failf "%s: %s" scenario m
      | Ok p ->
          Alcotest.(check int)
            (scenario ^ " fault per domain")
            4
            (Array.length p.Plan.faults);
          Alcotest.(check int)
            (scenario ^ " expectation per domain")
            4
            (Array.length p.Plan.expected);
          Alcotest.(check bool)
            (scenario ^ " horizon past every fault")
            true
            (Plan.horizon p >= 1))
    Plan.scenarios

let test_plan_expectations () =
  let expect scenario cls0 cls_rest =
    match Plan.make ~scenario ~seed:3 ~domains:3 () with
    | Error m -> Alcotest.failf "%s: %s" scenario m
    | Ok p ->
        Alcotest.(check string)
          (scenario ^ " domain 0")
          (Pc.cls_label cls0)
          (Pc.cls_label p.Plan.expected.(0));
        Alcotest.(check string)
          (scenario ^ " domain 2")
          (Pc.cls_label cls_rest)
          (Pc.cls_label p.Plan.expected.(2))
  in
  expect "healthy" Pc.Progressing Pc.Progressing;
  expect "crash-holding-locks" Pc.Crashed Pc.Starving;
  expect "crash-clean" Pc.Crashed Pc.Progressing;
  expect "parasitic-only" Pc.Parasitic Pc.Progressing;
  expect "mixed" Pc.Crashed Pc.Progressing

(* The per-algorithm Figure-2 matrix: the same fault, different
   expected separations depending on the core. *)
let test_plan_expectations_per_algo () =
  let expect algo scenario d cls =
    match Plan.make ~algo ~scenario ~seed:3 ~domains:3 () with
    | Error m -> Alcotest.failf "%s: %s" scenario m
    | Ok p ->
        Alcotest.(check string)
          (Fmt.str "%s/%s domain %d" (Stm.Algo.name algo) scenario d)
          (Pc.cls_label cls)
          (Pc.cls_label p.Plan.expected.(d))
  in
  (* obstruction-freedom survives the crashed lock holder *)
  expect Stm.Algo.Dstm "crash-holding-locks" 0 Pc.Crashed;
  expect Stm.Algo.Dstm "crash-holding-locks" 2 Pc.Progressing;
  expect Stm.Algo.Norec "crash-holding-locks" 2 Pc.Starving;
  expect Stm.Algo.Global_lock "crash-holding-locks" 2 Pc.Starving;
  (* the serializer makes even a clean crash or a parasite lethal *)
  expect Stm.Algo.Global_lock "crash-clean" 2 Pc.Starving;
  expect Stm.Algo.Global_lock "parasitic-only" 0 Pc.Parasitic;
  expect Stm.Algo.Global_lock "parasitic-only" 2 Pc.Starving;
  expect Stm.Algo.Global_lock "mixed" 1 Pc.Starving;
  (* everyone else isolates them *)
  expect Stm.Algo.Norec "crash-clean" 2 Pc.Progressing;
  expect Stm.Algo.Dstm "parasitic-only" 2 Pc.Progressing;
  expect Stm.Algo.Norec "mixed" 1 Pc.Parasitic

let test_plan_errors () =
  let is_error = function Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "unknown scenario" true
    (is_error (Plan.make ~scenario:"nope" ~seed:0 ~domains:4 ()));
  Alcotest.(check bool) "one domain is not a run" true
    (is_error (Plan.make ~scenario:"healthy" ~seed:0 ~domains:1 ()));
  Alcotest.(check bool) "mixed needs three domains" true
    (is_error (Plan.make ~scenario:"mixed" ~seed:0 ~domains:2 ()))

let test_plan_trace_events_deterministic () =
  let events scenario =
    match Plan.make ~scenario ~seed:42 ~domains:4 () with
    | Error m -> Alcotest.failf "%s: %s" scenario m
    | Ok p -> Tm_trace.Export.chrome_string (Plan.trace_events p)
  in
  List.iter
    (fun scenario ->
      Alcotest.(check string)
        (scenario ^ " schedule is a pure function of the inputs")
        (events scenario) (events scenario))
    Plan.scenarios;
  (* Different seeds move the fault instants. *)
  let sched seed =
    match Plan.make ~scenario:"crash-holding-locks" ~seed ~domains:4 () with
    | Error m -> Alcotest.fail m
    | Ok p -> Plan.render_schedule p
  in
  Alcotest.(check bool) "seeds differentiate the schedule" true
    (sched 1 <> sched 2)

(* ------------------------------------------------------------------ *)
(* Counter classification. *)

let test_classify_counters () =
  let c = Emp.counters in
  let check name first last cls =
    Alcotest.(check string) name (Pc.cls_label cls)
      (Pc.cls_label (Emp.classify_counters ~first ~last))
  in
  let z = c ~ops:0 ~trycs:0 ~commits:0 ~aborts:0 in
  check "no ops at all -> crashed" z z Pc.Crashed;
  check "ops without tryC or aborts -> parasitic" z
    (c ~ops:500 ~trycs:0 ~commits:0 ~aborts:0)
    Pc.Parasitic;
  check "aborting forever without committing -> starving" z
    (c ~ops:500 ~trycs:0 ~commits:0 ~aborts:90)
    Pc.Starving;
  (* Abort-noise tolerance: a real parasite restarted a handful of
     times by a peer descheduled mid-commit is still a parasite... *)
  check "endless body with negligible abort noise -> parasitic" z
    (c ~ops:25600 ~trycs:0 ~commits:0 ~aborts:9)
    Pc.Parasitic;
  (* ...but a starver's ops are its failed attempts: never negligible. *)
  check "aborts above 1/64 of ops -> starving" z
    (c ~ops:500 ~trycs:0 ~commits:0 ~aborts:8)
    Pc.Starving;
  check "committing -> progressing" z
    (c ~ops:500 ~trycs:60 ~commits:55 ~aborts:5)
    Pc.Progressing;
  (* Deltas, not absolutes: a once-active domain that went silent. *)
  let mid = c ~ops:1000 ~trycs:100 ~commits:100 ~aborts:0 in
  check "no progress since the first sample -> crashed" mid mid Pc.Crashed

(* ------------------------------------------------------------------ *)
(* The chaos-class lint rule. *)

let fault_instant ~tid ~ts name args =
  Tev.instant ~ts ~tid Tev.Fault name args

let verdict_instant ~tid ~ts cls =
  Tev.instant ~ts ~tid Tev.Monitor "chaos-verdict"
    [ ("class", Tev.Str cls); ("expected", Tev.Str cls) ]

let run_chaos_rule events =
  List.filter
    (fun (f : Tm_analysis.Finding.t) -> f.Tm_analysis.Finding.rule = "chaos-class")
    (Tm_analysis.Engine.run_trace ~subject:"test" events)

let test_chaos_rule_clean () =
  let events =
    [
      fault_instant ~tid:0 ~ts:90 "chaos-crash"
        [ ("op", Tev.Int 90); ("holding_locks", Tev.Str "true") ];
      fault_instant ~tid:1 ~ts:40 "chaos-parasitic" [ ("op", Tev.Int 40) ];
      verdict_instant ~tid:0 ~ts:100 "crashed";
      verdict_instant ~tid:1 ~ts:100 "parasitic";
      verdict_instant ~tid:2 ~ts:100 "starving";
    ]
  in
  Alcotest.(check int) "agreeing trace is clean" 0
    (List.length (run_chaos_rule events))

let test_chaos_rule_mismatch () =
  let events =
    [
      fault_instant ~tid:0 ~ts:90 "chaos-crash" [ ("op", Tev.Int 90) ];
      verdict_instant ~tid:0 ~ts:100 "progressing";
    ]
  in
  Alcotest.(check int) "crash classified progressing is an error" 1
    (List.length (run_chaos_rule events))

let test_chaos_rule_unbacked_verdict () =
  let events = [ verdict_instant ~tid:3 ~ts:100 "crashed" ] in
  Alcotest.(check int) "crashed verdict without an injected fault" 1
    (List.length (run_chaos_rule events))

let test_chaos_rule_announced_parasitic_divergence () =
  (* A parasitic fault classified otherwise is fine exactly when the
     verdict announces the observed class as the plan's expectation
     (e.g. the global-lock serializer starves its parasite); an
     unannounced divergence is still a falsified verdict, and a crash
     stays strict even when announced. *)
  let verdict ~tid cls expected =
    Tev.instant ~ts:100 ~tid Tev.Monitor "chaos-verdict"
      [ ("class", Tev.Str cls); ("expected", Tev.Str expected) ]
  in
  let parasite = fault_instant ~tid:1 ~ts:40 "chaos-parasitic" [] in
  Alcotest.(check int) "announced parasitic divergence is clean" 0
    (List.length (run_chaos_rule [ parasite; verdict ~tid:1 "starving" "starving" ]));
  Alcotest.(check int) "unannounced parasitic divergence is an error" 1
    (List.length
       (run_chaos_rule [ parasite; verdict ~tid:1 "starving" "parasitic" ]));
  let crash = fault_instant ~tid:0 ~ts:40 "chaos-crash" [] in
  Alcotest.(check int) "crash direction stays strict even when announced" 1
    (List.length
       (run_chaos_rule [ crash; verdict ~tid:0 "progressing" "progressing" ]))

let test_chaos_rule_ignores_faultless_traces () =
  (* Traces without verdict events (simulator traces, stm demo traces)
     are exempt from the rule. *)
  let events =
    [ fault_instant ~tid:0 ~ts:10 "crash" [] ]
  in
  Alcotest.(check int) "no verdicts, no findings" 0
    (List.length (run_chaos_rule events))

(* ------------------------------------------------------------------ *)
(* Real runs: determinism and verdicts.  Short windows keep the suite
   fast; the classification already settles within a few milliseconds. *)

let run_scenario scenario seed =
  match Plan.make ~scenario ~seed ~domains:3 () with
  | Error m -> Alcotest.fail m
  | Ok p -> Runner.run ~tvars:2 ~warmup:0.02 ~window:0.05 p

let test_run_crash_holding_locks () =
  let o = run_scenario "crash-holding-locks" 7 in
  Alcotest.(check bool) "verdicts match the expectation" true o.Runner.o_ok;
  let r0 = List.nth o.Runner.o_reports 0 in
  Alcotest.(check bool) "domain 0 died on Chaos.Crashed" true
    r0.Runner.rep_crashed;
  List.iteri
    (fun d (r : Runner.report) ->
      if d > 0 then
        Alcotest.(check string)
          (Fmt.str "domain %d starves behind the held vlocks" d)
          (Pc.cls_label Pc.Starving)
          (Pc.cls_label r.Runner.rep_observed))
    o.Runner.o_reports

let test_run_parasitic_only () =
  let o = run_scenario "parasitic-only" 5 in
  Alcotest.(check bool) "verdicts match the expectation" true o.Runner.o_ok;
  List.iteri
    (fun d (r : Runner.report) ->
      let want = if d = 0 then Pc.Parasitic else Pc.Progressing in
      Alcotest.(check string)
        (Fmt.str "domain %d" d)
        (Pc.cls_label want)
        (Pc.cls_label r.Runner.rep_observed))
    o.Runner.o_reports

(* ------------------------------------------------------------------ *)
(* Per-algorithm runs: the Kuznetsov–Ravi separation as an executable
   claim.  The same seeded fault plan drives different cores and must
   produce the per-algorithm Figure-2 verdicts. *)

let run_scenario_algo algo scenario seed =
  match Plan.make ~algo ~scenario ~seed ~domains:3 () with
  | Error m -> Alcotest.fail m
  | Ok p -> Runner.run ~tvars:2 ~warmup:0.02 ~window:0.05 p

let check_peers name o want =
  if not o.Runner.o_ok then
    Fmt.epr "%s mismatch:@.%a@." name Runner.pp_table o;
  Alcotest.(check bool) (name ^ ": verdicts match") true o.Runner.o_ok;
  List.iteri
    (fun d (r : Runner.report) ->
      if d > 0 then
        Alcotest.(check string)
          (Fmt.str "%s: domain %d" name d)
          (Pc.cls_label want)
          (Pc.cls_label r.Runner.rep_observed))
    o.Runner.o_reports

(* The separation itself: a crash holding commit-time ownership strands
   every peer of the lock-based serializer forever, while the
   obstruction-free DSTM core's peers steal the dead transaction's
   ownerships and keep committing. *)
let test_run_crash_holding_locks_dstm () =
  let o = run_scenario_algo Stm.Algo.Dstm "crash-holding-locks" 7 in
  let r0 = List.nth o.Runner.o_reports 0 in
  Alcotest.(check bool) "domain 0 died on Chaos.Crashed" true
    r0.Runner.rep_crashed;
  check_peers "dstm crash-holding-locks" o Pc.Progressing

let test_run_crash_holding_locks_glock () =
  let o = run_scenario_algo Stm.Algo.Global_lock "crash-holding-locks" 7 in
  check_peers "global-lock crash-holding-locks" o Pc.Starving

(* Even a clean crash (at a read) is lethal under the serializer: the
   global-lock core acquires at first access, so the read-point crash
   strands the big lock. *)
let test_run_crash_clean_glock () =
  let o = run_scenario_algo Stm.Algo.Global_lock "crash-clean" 11 in
  check_peers "global-lock crash-clean" o Pc.Starving

let test_run_parasitic_dstm () =
  let o = run_scenario_algo Stm.Algo.Dstm "parasitic-only" 5 in
  let r0 = List.nth o.Runner.o_reports 0 in
  Alcotest.(check string) "dstm: the parasite is parasitic"
    (Pc.cls_label Pc.Parasitic)
    (Pc.cls_label r0.Runner.rep_observed);
  check_peers "dstm parasitic-only" o Pc.Progressing

let test_run_parasitic_glock () =
  let o = run_scenario_algo Stm.Algo.Global_lock "parasitic-only" 5 in
  let r0 = List.nth o.Runner.o_reports 0 in
  Alcotest.(check string) "global-lock: the parasite is parasitic"
    (Pc.cls_label Pc.Parasitic)
    (Pc.cls_label r0.Runner.rep_observed);
  check_peers "global-lock parasitic-only" o Pc.Starving

(* Per-algorithm traces still pass the analyzer: the dstm verdicts
   agree outright, and the glock parasite's starving verdict is the
   announced-expectation case of the chaos-class rule. *)
let test_run_per_algo_traces_lint_clean () =
  List.iter
    (fun (algo, scenario, seed) ->
      let o = run_scenario_algo algo scenario seed in
      Alcotest.(check int)
        (Fmt.str "%s %s trace passes the analyzer" (Stm.Algo.name algo)
           scenario)
        0
        (List.length
           (Tm_analysis.Engine.run_trace ~subject:"chaos" o.Runner.o_events)))
    [
      (Stm.Algo.Dstm, "crash-holding-locks", 7);
      (Stm.Algo.Global_lock, "parasitic-only", 5);
    ]

let test_run_trace_byte_identical () =
  let bytes () =
    Tm_trace.Export.chrome_string (run_scenario "crash-holding-locks" 9).Runner.o_events
  in
  Alcotest.(check string) "equal runs export equal traces" (bytes ())
    (bytes ())

let test_run_trace_lints_clean () =
  let o = run_scenario "parasitic-only" 13 in
  Alcotest.(check int) "chaos trace passes the analyzer" 0
    (List.length (Tm_analysis.Engine.run_trace ~subject:"chaos" o.Runner.o_events))

(* ------------------------------------------------------------------ *)
(* Blame-armed runs: the graph arrives in the outcome, classifies to
   the per-algorithm deterministic shape, and annotates the exported
   trace with evidence instants the analyzer accepts. *)

module Bg = Tm_telemetry.Blame_graph

let run_blame ?(warmup = 0.02) ?(window = 0.05) algo scenario seed =
  match Plan.make ~algo ~scenario ~seed ~domains:3 () with
  | Error m -> Alcotest.fail m
  | Ok p -> Runner.run ~blame:true ~tvars:2 ~warmup ~window p

let classify_outcome o =
  match o.Runner.o_blame with
  | None -> Alcotest.fail "blame run returned no graph"
  | Some g ->
      let classes =
        Array.of_list
          (List.map (fun r -> r.Runner.rep_observed) o.Runner.o_reports)
      in
      Bg.classify g ~classes

let test_blame_run_star_tl2 () =
  let o = run_blame Stm.Algo.Tl2 "crash-holding-locks" 7 in
  Alcotest.(check bool) "verdicts match" true o.Runner.o_ok;
  let shape, evidence = classify_outcome o in
  Alcotest.(check string) "stranded vlocks make a star on the corpse"
    "star:0" (Bg.shape_label shape);
  Alcotest.(check string) "domain 0 crashed" "crashed"
    (Bg.evidence_label evidence.(0));
  Array.iteri
    (fun d e ->
      if d > 0 then
        Alcotest.(check string)
          (Fmt.str "domain %d starves behind domain 0" d)
          "starved-by:0" (Bg.evidence_label e))
    evidence

(* The separation, restated in blame vocabulary: the same crash that
   draws a star under tl2 leaves dstm with nothing to attribute. *)
let test_blame_run_none_dstm () =
  let o = run_blame Stm.Algo.Dstm "crash-holding-locks" 7 in
  let shape, evidence = classify_outcome o in
  Alcotest.(check string) "obstruction-freedom leaves nothing to explain"
    "none" (Bg.shape_label shape);
  Array.iteri
    (fun d e ->
      if d > 0 then
        Alcotest.(check string)
          (Fmt.str "domain %d steals past the corpse" d)
          "progressing" (Bg.evidence_label e))
    evidence

let test_blame_run_trace_evidence () =
  let o = run_blame Stm.Algo.Tl2 "crash-holding-locks" 7 in
  let instants =
    List.filter (fun e -> e.Tev.name = "blame-evidence") o.Runner.o_events
  in
  Alcotest.(check int) "one evidence instant per domain" 3
    (List.length instants);
  List.iter
    (fun e ->
      Alcotest.(check (option string))
        "evidence instants carry the shape" (Some "star:0")
        (Tev.arg_str e "shape"))
    instants;
  Alcotest.(check int) "blame-annotated trace passes the analyzer" 0
    (List.length
       (Tm_analysis.Engine.run_trace ~subject:"chaos" o.Runner.o_events))

let test_blame_run_deterministic () =
  let render o =
    let shape, evidence = classify_outcome o in
    Bg.shape_label shape
    ^ "/"
    ^ String.concat ","
        (Array.to_list (Array.map Bg.evidence_label evidence))
  in
  (* The serializer's victims back off on the big lock, so witnessing
     [min_events] of blame per peer needs the standard window length. *)
  let a = run_blame ~warmup:0.05 ~window:0.15 Stm.Algo.Global_lock
      "parasitic-only" 5 in
  let b = run_blame ~warmup:0.05 ~window:0.15 Stm.Algo.Global_lock
      "parasitic-only" 5 in
  Alcotest.(check string) "serializer takeover is a star on the parasite"
    "star:0/parasitic,starved-by:0,starved-by:0" (render a);
  Alcotest.(check string) "same seed, same classified form" (render a)
    (render b)

(* ------------------------------------------------------------------ *)
(* qcheck: the determinism contract over the whole input space.  The
   property recomputes a plan from the same (scenario, seed, domains)
   triple and demands a byte-identical rendered schedule and Chrome
   export — the schedule is what both the trace file and the fault
   handler are driven by, so this is the same-seed-same-faults law the
   chaos CLI advertises for every --jobs value. *)

let arb_plan_inputs =
  QCheck.make
    ~print:(fun (s, seed, d) -> Fmt.str "(%s, seed=%d, domains=%d)" s seed d)
    QCheck.Gen.(
      let* s = oneofl (List.filter (fun s -> s <> "mixed") Plan.scenarios) in
      let* seed = 0 -- 10_000 in
      let* d = 2 -- 8 in
      return (s, seed, d))

let prop_plan_deterministic =
  QCheck.Test.make ~count:200 ~name:"same inputs, same schedule bytes"
    arb_plan_inputs (fun (scenario, seed, domains) ->
      match
        ( Plan.make ~scenario ~seed ~domains (),
          Plan.make ~scenario ~seed ~domains () )
      with
      | Ok a, Ok b ->
          Plan.render_schedule a = Plan.render_schedule b
          && Tm_trace.Export.chrome_string (Plan.trace_events a)
             = Tm_trace.Export.chrome_string (Plan.trace_events b)
      | _ -> false)

let prop_plan_roundtrips =
  QCheck.Test.make ~count:100 ~name:"schedule survives a chrome round-trip"
    arb_plan_inputs (fun (scenario, seed, domains) ->
      match Plan.make ~scenario ~seed ~domains () with
      | Error _ -> false
      | Ok p -> (
          let s = Tm_trace.Export.chrome_string (Plan.trace_events p) in
          match Tm_trace.Export.of_chrome_string s with
          | Error _ -> false
          | Ok evs -> Tm_trace.Export.chrome_string evs = s))

let () =
  Alcotest.run "tm_chaos"
    [
      ( "plan",
        [
          Alcotest.test_case "scenarios documented" `Quick
            test_plan_scenarios_documented;
          Alcotest.test_case "shapes" `Quick test_plan_shapes;
          Alcotest.test_case "expected classes" `Quick test_plan_expectations;
          Alcotest.test_case "expected classes per algorithm" `Quick
            test_plan_expectations_per_algo;
          Alcotest.test_case "errors" `Quick test_plan_errors;
          Alcotest.test_case "trace events deterministic" `Quick
            test_plan_trace_events_deterministic;
        ] );
      ( "classify",
        [ Alcotest.test_case "counter deltas" `Quick test_classify_counters ]
      );
      ( "lint",
        [
          Alcotest.test_case "agreeing trace" `Quick test_chaos_rule_clean;
          Alcotest.test_case "mismatched verdict" `Quick
            test_chaos_rule_mismatch;
          Alcotest.test_case "unbacked verdict" `Quick
            test_chaos_rule_unbacked_verdict;
          Alcotest.test_case "announced parasitic divergence" `Quick
            test_chaos_rule_announced_parasitic_divergence;
          Alcotest.test_case "faultless traces exempt" `Quick
            test_chaos_rule_ignores_faultless_traces;
        ] );
      ( "run",
        [
          Alcotest.test_case "crash-holding-locks starves peers" `Quick
            test_run_crash_holding_locks;
          Alcotest.test_case "parasitic-only leaves peers progressing" `Quick
            test_run_parasitic_only;
          Alcotest.test_case "dstm peers survive the crashed lock holder"
            `Quick test_run_crash_holding_locks_dstm;
          Alcotest.test_case "global-lock peers starve behind the crash"
            `Quick test_run_crash_holding_locks_glock;
          Alcotest.test_case "global-lock: clean crash strands the serializer"
            `Quick test_run_crash_clean_glock;
          Alcotest.test_case "dstm isolates the parasite" `Quick
            test_run_parasitic_dstm;
          Alcotest.test_case "global-lock parasite starves its peers" `Quick
            test_run_parasitic_glock;
          Alcotest.test_case "per-algorithm traces pass the analyzer" `Quick
            test_run_per_algo_traces_lint_clean;
          Alcotest.test_case "trace byte-identical across runs" `Quick
            test_run_trace_byte_identical;
          Alcotest.test_case "trace passes the analyzer" `Quick
            test_run_trace_lints_clean;
        ] );
      ( "blame",
        [
          Alcotest.test_case "tl2 crash draws a star on the corpse" `Quick
            test_blame_run_star_tl2;
          Alcotest.test_case "dstm crash leaves no shape" `Quick
            test_blame_run_none_dstm;
          Alcotest.test_case "evidence instants annotate the trace" `Quick
            test_blame_run_trace_evidence;
          Alcotest.test_case "classified form is run-to-run stable" `Quick
            test_blame_run_deterministic;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_plan_deterministic; prop_plan_roundtrips ] );
    ]
