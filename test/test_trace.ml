(* The trace subsystem: ring-buffer bounds, Chrome-JSON export round-trip,
   deterministic runner traces (same seed -> same bytes, pool-invariant),
   Stm runtime tracing, and the traced opacity monitor. *)

module Tev = Tm_trace.Trace_event

let ev ?(ts = 0) ?(pid = 0) ?(tid = 1) ?(args = []) ?(phase = Tev.Instant)
    ?(cat = Tev.Txn) name =
  { Tev.ts; pid; tid; cat; name; phase; args }

let event = Alcotest.testable Tev.pp Tev.equal

(* ------------------------------------------------------------------ *)
(* Ring buffer. *)

let test_ring_bounded () =
  let r = Tm_trace.Ring.create ~capacity:4 in
  for i = 0 to 9 do
    Tm_trace.Ring.add r (ev ~ts:i "e")
  done;
  Alcotest.(check int) "length capped" 4 (Tm_trace.Ring.length r);
  Alcotest.(check int) "total counts all" 10 (Tm_trace.Ring.total r);
  Alcotest.(check int) "dropped = total - capacity" 6
    (Tm_trace.Ring.dropped r);
  Alcotest.(check (list int)) "keeps the newest, oldest first"
    [ 6; 7; 8; 9 ]
    (List.map (fun (e : Tev.t) -> e.Tev.ts) (Tm_trace.Ring.to_list r));
  Tm_trace.Ring.clear r;
  Alcotest.(check int) "clear empties" 0 (Tm_trace.Ring.length r);
  Alcotest.(check int) "clear resets dropped" 0 (Tm_trace.Ring.dropped r)

let test_ring_partial () =
  let r = Tm_trace.Ring.create ~capacity:8 in
  List.iter (fun i -> Tm_trace.Ring.add r (ev ~ts:i "e")) [ 0; 1; 2 ];
  Alcotest.(check int) "length below capacity" 3 (Tm_trace.Ring.length r);
  Alcotest.(check int) "nothing dropped" 0 (Tm_trace.Ring.dropped r);
  Alcotest.(check (list int)) "insertion order"
    [ 0; 1; 2 ]
    (List.map (fun (e : Tev.t) -> e.Tev.ts) (Tm_trace.Ring.to_list r));
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Ring.create: capacity must be positive") (fun () ->
      ignore (Tm_trace.Ring.create ~capacity:0))

(* ------------------------------------------------------------------ *)
(* Export: JSON round-trip. *)

let sample_events =
  [
    ev ~phase:Tev.Metadata ~cat:Tev.Sched
      ~args:[ ("name", Tev.Str "tl2/crash/seed=1") ]
      "process_name";
    ev ~ts:1 ~tid:2 ~phase:Tev.Span_begin
      ~args:[ ("index", Tev.Int 0); ("mode", Tev.Str "normal") ]
      "txn";
    ev ~ts:3 ~tid:2 ~cat:Tev.Lock
      ~args:[ ("tvar", Tev.Int 7); ("order", Tev.Int 0) ]
      "acquire";
    ev ~ts:4 ~tid:2 ~cat:Tev.Validation ~args:[ ("tvar", Tev.Int 7) ]
      "read-invalid";
    ev ~ts:5 ~tid:2 ~cat:Tev.Backoff
      ~args:[ ("attempt", Tev.Int 1); ("spins", Tev.Int 17) ]
      "wait";
    ev ~ts:6 ~tid:2 ~phase:(Tev.Counter 3) ~cat:Tev.Sched "defers-p2";
    ev ~ts:7 ~tid:1 ~cat:Tev.Fault
      ~args:[ ("fate", Tev.Str "crash-after-write") ]
      "crash";
    ev ~ts:9 ~tid:2 ~phase:Tev.Span_end
      ~args:[ ("outcome", Tev.Str "commit") ]
      "txn";
    ev ~ts:10 ~cat:Tev.Monitor
      ~args:[ ("msg", Tev.Str "tricky \"quoted\"\n\tstring \\ with escapes") ]
      "no-witness";
  ]

let test_export_round_trip () =
  let json = Tm_trace.Export.chrome_string sample_events in
  (match Tm_trace.Export.of_chrome_string json with
  | Ok parsed ->
      Alcotest.(check (list event)) "record -> JSON -> parse -> same events"
        sample_events parsed
  | Error msg -> Alcotest.failf "parse failed: %s" msg);
  (* Empty trace round-trips too. *)
  match Tm_trace.Export.of_chrome_string (Tm_trace.Export.chrome_string []) with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "empty trace parsed non-empty"
  | Error msg -> Alcotest.failf "empty trace parse failed: %s" msg

let test_export_deterministic_bytes () =
  Alcotest.(check string) "serialization is byte-stable"
    (Tm_trace.Export.chrome_string sample_events)
    (Tm_trace.Export.chrome_string sample_events)

let test_export_chrome_shape () =
  let json = Tm_trace.Export.chrome_string sample_events in
  let contains needle =
    let n = String.length needle and m = String.length json in
    let rec go i = i + n <= m && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "top-level array" true
    (String.length json > 0 && json.[0] = '[');
  Alcotest.(check bool) "span begin phase code" true
    (contains "\"ph\":\"B\"");
  Alcotest.(check bool) "instants carry a scope" true
    (contains "\"ph\":\"i\",\"ts\":7,\"pid\":0,\"tid\":1,\"s\":\"t\"");
  Alcotest.(check bool) "counters put the value in args" true
    (contains "\"ph\":\"C\"" && contains "{\"value\":3}");
  Alcotest.(check bool) "metadata record names the process" true
    (contains "\"ph\":\"M\"")

let test_export_rejects_garbage () =
  let bad s =
    match Tm_trace.Export.of_chrome_string s with
    | Ok _ -> Alcotest.failf "accepted garbage: %s" s
    | Error _ -> ()
  in
  bad "";
  bad "{}";
  bad "[{\"name\":\"x\"}]";
  bad "[{\"name\":\"x\",\"cat\":\"nope\",\"ph\":\"i\",\"ts\":0,\"pid\":0,\"tid\":0,\"args\":{}}]";
  bad "[{\"name\":\"x\",\"cat\":\"txn\",\"ph\":\"Z\",\"ts\":0,\"pid\":0,\"tid\":0,\"args\":{}}]";
  bad "[ {\"name\":\"x\"} "

let test_export_file_round_trip () =
  Tm_test_util.Util.with_temp_file ~suffix:".json" (fun path ->
      Tm_test_util.Util.with_out_channel path (fun oc ->
          Tm_trace.Export.to_chrome_channel oc sample_events);
      match
        Tm_trace.Export.of_chrome_string (Tm_test_util.Util.read_file path)
      with
      | Ok parsed ->
          Alcotest.(check (list event)) "write file -> read -> same events"
            sample_events parsed
      | Error msg -> Alcotest.failf "file round-trip failed: %s" msg)

let test_text_dump () =
  let text = Tm_trace.Export.text_string sample_events in
  let lines = String.split_on_char '\n' text in
  let nonempty = List.filter (fun l -> l <> "") lines in
  Alcotest.(check int) "one line per event"
    (List.length sample_events)
    (List.length nonempty)

(* ------------------------------------------------------------------ *)
(* Runner traces: deterministic, pool-invariant, well-bracketed. *)

let entry name = Option.get (Tm_impl.Registry.find name)

let traced_run ?(seed = 3) ?(steps = 300) () =
  let spec =
    Tm_sim.Runner.spec ~nprocs:3 ~ntvars:2 ~steps ~seed
      ~sched:Tm_sim.Runner.Uniform
      ~fates:[ (1, Tm_sim.Runner.Parasitic_from 40) ]
      ()
  in
  let col = Tm_trace.Sink.collector () in
  let o =
    Tm_sim.Runner.run
      ~trace:(Tm_trace.Sink.collector_sink col)
      (entry "tl2") spec
  in
  (o, Tm_trace.Sink.collected col)

let test_runner_trace_deterministic () =
  let _, t1 = traced_run () in
  let _, t2 = traced_run () in
  Alcotest.(check (list event)) "same seed, same trace" t1 t2;
  Alcotest.(check string) "same bytes"
    (Tm_trace.Export.chrome_string t1)
    (Tm_trace.Export.chrome_string t2);
  Alcotest.(check bool) "trace is non-trivial" true (List.length t1 > 10)

let test_runner_trace_matches_untraced_outcome () =
  (* Tracing must not perturb the run itself. *)
  let o_traced, _ = traced_run () in
  let spec =
    Tm_sim.Runner.spec ~nprocs:3 ~ntvars:2 ~steps:300 ~seed:3
      ~sched:Tm_sim.Runner.Uniform
      ~fates:[ (1, Tm_sim.Runner.Parasitic_from 40) ]
      ()
  in
  let o_plain = Tm_sim.Runner.run (entry "tl2") spec in
  Alcotest.(check bool) "identical history" true
    (Tm_history.History.equal o_traced.Tm_sim.Runner.history
       o_plain.Tm_sim.Runner.history)

let test_runner_trace_spans_bracketed () =
  let _, t = traced_run () in
  (* Per process, txn spans must alternate B/E (a trailing open span is
     fine: the parasite's transaction never ends). *)
  let procs = [ 1; 2; 3 ] in
  List.iter
    (fun p ->
      let depth = ref 0 in
      List.iter
        (fun (e : Tev.t) ->
          if e.Tev.tid = p && e.Tev.name = "txn" then
            match e.Tev.phase with
            | Tev.Span_begin ->
                incr depth;
                Alcotest.(check int)
                  (Fmt.str "p%d spans never nest" p)
                  1 !depth
            | Tev.Span_end ->
                decr depth;
                Alcotest.(check bool)
                  (Fmt.str "p%d end matches a begin" p)
                  true (!depth >= 0)
            | _ -> ())
        t)
    procs;
  (* Timestamps are monotone (the step clock never goes backwards). *)
  let rec monotone last = function
    | [] -> true
    | (e : Tev.t) :: rest -> e.Tev.ts >= last && monotone e.Tev.ts rest
  in
  Alcotest.(check bool) "timestamps monotone" true (monotone 0 t);
  (* The parasitic turn is in the trace. *)
  Alcotest.(check bool) "parasitic instant present" true
    (List.exists
       (fun (e : Tev.t) -> e.Tev.name = "parasitic" && e.Tev.tid = 1)
       t)

let test_sweep_trace_pool_invariant () =
  let configs =
    Tm_sim.Sweep.grid
      ~tms:(List.filter_map Tm_impl.Registry.find [ "tl2"; "fgp" ])
      ~patterns:(Tm_sim.Sweep.fault_patterns ~steps:200 ())
      ~seeds:[ 1 ] ()
  in
  let seq = Tm_sim.Sweep.run ~trace:true configs in
  let par =
    Tm_sim.Pool.with_pool ~jobs:4 (fun pool ->
        Tm_sim.Sweep.run ~pool ~trace:true configs)
  in
  List.iter2
    (fun a b ->
      Alcotest.(check (list event))
        (Tm_sim.Sweep.label a.Tm_sim.Sweep.r_config)
        a.Tm_sim.Sweep.r_trace b.Tm_sim.Sweep.r_trace)
    seq par;
  let untraced = Tm_sim.Sweep.run configs in
  List.iter
    (fun r ->
      Alcotest.(check (list event)) "no trace unless asked" []
        r.Tm_sim.Sweep.r_trace)
    untraced

(* ------------------------------------------------------------------ *)
(* Stm runtime tracing. *)

let stm_work n =
  let v = Tm_stm.Stm.tvar 0 in
  for _ = 1 to n do
    Tm_stm.Stm.atomically (fun () ->
        Tm_stm.Stm.write v (Tm_stm.Stm.read v + 1))
  done

let test_stm_trace_ring () =
  Tm_stm.Stm.Trace.start ~capacity:64 ();
  Alcotest.(check bool) "tracing on" true (Tm_stm.Stm.Trace.is_on ());
  stm_work 500;
  Tm_stm.Stm.Trace.stop ();
  Alcotest.(check bool) "tracing off" false (Tm_stm.Stm.Trace.is_on ());
  let events = Tm_stm.Stm.Trace.events () in
  Alcotest.(check bool) "events recorded" true (events <> []);
  Alcotest.(check bool) "bounded by capacity" true (List.length events <= 64);
  Alcotest.(check bool) "older events dropped" true
    (Tm_stm.Stm.Trace.dropped () > 0);
  Alcotest.(check bool) "emitted counts everything" true
    (Tm_stm.Stm.Trace.emitted () >= 1000);
  (* 500 commits emit >= 1000 span events. *)
  Alcotest.(check bool) "attempt spans present" true
    (List.exists (fun (e : Tev.t) -> e.Tev.name = "attempt") events);
  (* The recorded events export cleanly. *)
  match Tm_trace.Export.of_chrome_string (Tm_trace.Export.chrome_string events)
  with
  | Ok parsed ->
      Alcotest.(check int) "stm events survive the JSON round-trip"
        (List.length events) (List.length parsed)
  | Error msg -> Alcotest.failf "stm trace export failed: %s" msg

let test_stm_trace_null () =
  Tm_stm.Stm.Trace.start_null ();
  stm_work 100;
  Tm_stm.Stm.Trace.stop ();
  Alcotest.(check bool) "null sink counts emissions" true
    (Tm_stm.Stm.Trace.emitted () >= 200);
  Alcotest.(check (list event)) "null sink stores nothing" []
    (Tm_stm.Stm.Trace.events ());
  (* Off means off: no emissions counted once stopped. *)
  let before = Tm_stm.Stm.Trace.emitted () in
  stm_work 50;
  Alcotest.(check int) "no emissions while off" before
    (Tm_stm.Stm.Trace.emitted ())

(* ------------------------------------------------------------------ *)
(* Traced monitor. *)

let test_monitor_traced () =
  let spec =
    Tm_sim.Runner.spec ~nprocs:3 ~ntvars:2 ~steps:400 ~seed:5
      ~sched:Tm_sim.Runner.Uniform ()
  in
  let o = Tm_sim.Runner.run (entry "tl2") spec in
  let h = o.Tm_sim.Runner.history in
  let col = Tm_trace.Sink.collector () in
  let traced =
    Tm_safety.Monitor.run_traced
      ~trace:(Tm_trace.Sink.collector_sink col)
      h
  in
  let plain = Tm_safety.Monitor.run h in
  Alcotest.(check bool) "traced verdict equals plain verdict" true
    (traced = plain);
  let events = Tm_trace.Sink.collected col in
  let verdicts =
    List.filter (fun (e : Tev.t) -> e.Tev.name = "verdict") events
  in
  Alcotest.(check int) "exactly one verdict event" 1 (List.length verdicts);
  let commits = Tm_sim.Runner.commit_total o in
  let epochs =
    List.filter (fun (e : Tev.t) -> e.Tev.name = "epoch") events
  in
  (* Every epoch advance is a committed writer; read-only commits don't
     bump the epoch, so the counter count is bounded by total commits. *)
  Alcotest.(check bool) "epoch counters present" true (epochs <> []);
  Alcotest.(check bool) "at most one epoch counter per commit" true
    (List.length epochs <= commits);
  (* Every monitor event sits inside the history's clock range. *)
  Alcotest.(check bool) "timestamps within history" true
    (List.for_all
       (fun (e : Tev.t) ->
         e.Tev.ts >= 0 && e.Tev.ts <= Tm_history.History.length h)
       events)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "trace"
    [
      ( "ring",
        [
          Alcotest.test_case "bounded, drops oldest" `Quick test_ring_bounded;
          Alcotest.test_case "partial fill" `Quick test_ring_partial;
        ] );
      ( "export",
        [
          Alcotest.test_case "JSON round-trip" `Quick test_export_round_trip;
          Alcotest.test_case "deterministic bytes" `Quick
            test_export_deterministic_bytes;
          Alcotest.test_case "chrome trace_event shape" `Quick
            test_export_chrome_shape;
          Alcotest.test_case "rejects malformed input" `Quick
            test_export_rejects_garbage;
          Alcotest.test_case "file round-trip" `Quick
            test_export_file_round_trip;
          Alcotest.test_case "text dump" `Quick test_text_dump;
        ] );
      ( "runner",
        [
          Alcotest.test_case "deterministic across runs" `Quick
            test_runner_trace_deterministic;
          Alcotest.test_case "does not perturb the run" `Quick
            test_runner_trace_matches_untraced_outcome;
          Alcotest.test_case "spans well-bracketed" `Quick
            test_runner_trace_spans_bracketed;
          Alcotest.test_case "sweep traces pool-invariant" `Quick
            test_sweep_trace_pool_invariant;
        ] );
      ( "stm",
        [
          Alcotest.test_case "ring mode" `Quick test_stm_trace_ring;
          Alcotest.test_case "null mode" `Quick test_stm_trace_null;
        ] );
      ( "monitor",
        [ Alcotest.test_case "run_traced" `Quick test_monitor_traced ] );
    ]
