(* Property-based conformance of the checkers and codecs, on generated
   histories (satellites of the sweep-engine PR).

   The case count defaults to 500 per property and is capped in CI via the
   TM_QCHECK_COUNT environment variable (see .github/workflows/ci.yml). *)

open Tm_history

let count =
  match Sys.getenv_opt "TM_QCHECK_COUNT" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 500)
  | None -> 500

let seed_gen = QCheck2.Gen.int_range 0 1_000_000

(* A mixed corpus: arbitrary well-formed histories (mostly non-opaque),
   faithful serial executions (always opaque), and corrupted serial
   executions (never opaque). *)
let history_of_seed seed =
  let kind = seed mod 3 in
  let seed = seed / 3 in
  if kind = 0 then Generator.well_formed ~steps:16 seed
  else
    let h = Generator.serial ~transactions:5 seed in
    if kind = 1 then h
    else match Generator.mutate_read h seed with Some h' -> h' | None -> h

let mixed_history_gen = QCheck2.Gen.map history_of_seed seed_gen

let prefix h k =
  History.of_events (List.filteri (fun i _ -> i < k) (History.events h))

(* Section 2 of the paper: opacity is strictly stronger than strict
   serializability. *)
let test_opacity_implies_strict_ser =
  QCheck2.Test.make ~count ~name:"opacity => strict serializability"
    mixed_history_gen (fun h ->
      (not (Tm_safety.Opacity.is_opaque h))
      || Tm_safety.Serializability.is_strictly_serializable h)

(* What [Opacity.is_opaque] decides is {e final-state} opacity: complete
   every commit-pending transaction as committed or aborted, every other
   live one as aborted, and look for a legal real-time-preserving
   serialization.  Final-state opacity is famously NOT prefix-closed
   (Guerraoui & Kapalka's opacity is its prefix closure): a read of a
   live transaction's write can be justified later, once the writer
   reaches tryC and may complete as committed, yet is unjustifiable in
   the prefix where the writer must complete as aborted.  We pin the
   minimal such history below.  Prefix-closedness does hold on serial
   executions — cutting one off mid-transaction leaves a trailing live
   or commit-pending transaction whose writes nobody read — and that is
   the corpus this property quantifies over (it exercises the
   completion search on truncated histories). *)
let test_serial_prefixes_opaque =
  QCheck2.Test.make ~count ~name:"prefixes of serial executions are opaque"
    QCheck2.Gen.(pair seed_gen (int_range 0 200))
    (fun (seed, k) ->
      let h = Generator.serial ~transactions:5 seed in
      Tm_safety.Opacity.is_opaque (prefix h (k mod (History.length h + 1))))

(* p1 writes 2 to x1 and invokes tryC; p3 reads the 2 in between.  The
   full history is final-state opaque (complete commit-pending p1 as
   committed, serialize it before live-hence-aborted p3) but the prefix
   without tryC_1 is not: p1 is merely live there, completes as aborted,
   and nothing wrote the 2 that p3 read. *)
let test_final_state_opacity_not_prefix_closed () =
  let h =
    History.of_events
      Event.
        [
          Inv (1, Write (1, 2));
          Res (1, Ok_written);
          Inv (3, Read 1);
          Res (3, Value 2);
          Inv (1, Try_commit);
        ]
  in
  Alcotest.(check bool) "full history is final-state opaque" true
    (Tm_safety.Opacity.is_opaque h);
  Alcotest.(check bool) "its tryC-less prefix is not" false
    (Tm_safety.Opacity.is_opaque (prefix h 4))

let test_serial_opaque =
  QCheck2.Test.make ~count ~name:"serial executions are opaque"
    seed_gen (fun seed ->
      Tm_safety.Opacity.is_opaque (Generator.serial ~transactions:5 seed))

let test_mutated_serial_not_opaque =
  QCheck2.Test.make ~count ~name:"corrupting one read breaks opacity"
    seed_gen (fun seed ->
      let h = Generator.serial ~transactions:5 seed in
      match Generator.mutate_read h seed with
      | None -> QCheck2.assume_fail ()
      | Some h' -> not (Tm_safety.Opacity.is_opaque h'))

(* The linear-time monitor is sound: Accepted implies opaque. *)
let test_monitor_sound =
  QCheck2.Test.make ~count ~name:"monitor acceptance implies opacity"
    mixed_history_gen (fun h ->
      match Tm_safety.Monitor.run h with
      | Tm_safety.Monitor.Accepted -> Tm_safety.Opacity.is_opaque h
      | Tm_safety.Monitor.No_witness _ -> true)

(* Codec round trips: decode (encode h) = h. *)
let test_codec_history_roundtrip =
  QCheck2.Test.make ~count ~name:"codec round-trip: histories"
    mixed_history_gen (fun h ->
      match Codec.history_of_string (Codec.history_to_string h) with
      | Ok h' -> History.equal h h'
      | Error m -> QCheck2.Test.fail_reportf "decode failed: %s" m)

let test_codec_lasso_roundtrip =
  QCheck2.Test.make ~count ~name:"codec round-trip: lassos"
    seed_gen (fun seed ->
      let l = Generator.lasso seed in
      match Codec.lasso_of_string (Codec.lasso_to_string l) with
      | Ok l' ->
          List.length l.Lasso.stem = List.length l'.Lasso.stem
          && List.for_all2 Event.equal l.Lasso.stem l'.Lasso.stem
          && List.length l.Lasso.cycle = List.length l'.Lasso.cycle
          && List.for_all2 Event.equal l.Lasso.cycle l'.Lasso.cycle
      | Error m -> QCheck2.Test.fail_reportf "decode failed: %s" m)

let test_codec_event_roundtrip =
  QCheck2.Test.make ~count ~name:"codec round-trip: single events"
    mixed_history_gen (fun h ->
      List.for_all
        (fun e ->
          match Codec.event_of_string (Codec.event_to_string e) with
          | Ok e' -> Event.equal e e'
          | Error _ -> false)
        (History.events h))

(* Generated well-formed histories are, in fact, well-formed (the
   generator's own contract, which everything above leans on). *)
let test_generator_well_formed =
  QCheck2.Test.make ~count ~name:"generator emits well-formed histories"
    mixed_history_gen History.is_well_formed

let () =
  Alcotest.run "tm_properties"
    [
      ( "safety properties",
        List.map QCheck_alcotest.to_alcotest
          [
            test_opacity_implies_strict_ser;
            test_serial_prefixes_opaque;
            test_serial_opaque;
            test_mutated_serial_not_opaque;
            test_monitor_sound;
          ]
        @ [
            Alcotest.test_case "final-state opacity is not prefix-closed"
              `Quick test_final_state_opacity_not_prefix_closed;
          ] );
      ( "codec round trips",
        List.map QCheck_alcotest.to_alcotest
          [
            test_codec_history_roundtrip;
            test_codec_lasso_roundtrip;
            test_codec_event_roundtrip;
          ] );
      ( "generators",
        List.map QCheck_alcotest.to_alcotest [ test_generator_well_formed ] );
    ]
