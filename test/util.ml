(* Shared test helpers: temp files that are removed even when the test
   body raises (Alcotest failures included). *)

let with_temp_file ?(prefix = "tmlive-test") ?(suffix = ".tmp") f =
  let path = Filename.temp_file prefix suffix in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_out_channel path f =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f oc)
