(* Tests for the simulation substrate: PRNG, workloads, schedulers, fault
   injection edge cases, and the exhaustive schedule sweep. *)

open Tm_history
module Reg = Tm_impl.Registry

(* ------------------------------------------------------------------ *)
(* PRNG. *)

let test_prng_determinism () =
  let a = Tm_sim.Prng.create 42 and b = Tm_sim.Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Tm_sim.Prng.next a)
      (Tm_sim.Prng.next b)
  done

let test_prng_bounds () =
  let g = Tm_sim.Prng.create 7 in
  for _ = 1 to 10_000 do
    let v = Tm_sim.Prng.int g 13 in
    if v < 0 || v >= 13 then Alcotest.failf "out of bounds: %d" v
  done

let test_prng_distribution () =
  (* Crude uniformity check: every residue of a small bound shows up. *)
  let g = Tm_sim.Prng.create 3 in
  let seen = Array.make 8 0 in
  for _ = 1 to 4_000 do
    let v = Tm_sim.Prng.int g 8 in
    seen.(v) <- seen.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool) (Fmt.str "residue %d occurs plausibly" i) true
        (c > 300 && c < 700))
    seen

let test_prng_split_independent () =
  let g = Tm_sim.Prng.create 5 in
  let g1 = Tm_sim.Prng.split g in
  let g2 = Tm_sim.Prng.split g in
  (* Different splits yield different streams. *)
  let same = ref 0 in
  for _ = 1 to 50 do
    if Tm_sim.Prng.next g1 = Tm_sim.Prng.next g2 then incr same
  done;
  Alcotest.(check int) "streams diverge" 0 !same

let test_prng_copy () =
  let g = Tm_sim.Prng.create 9 in
  ignore (Tm_sim.Prng.next g);
  let c = Tm_sim.Prng.copy g in
  Alcotest.(check int64) "copy continues identically" (Tm_sim.Prng.next g)
    (Tm_sim.Prng.next c)

let test_prng_errors () =
  let g = Tm_sim.Prng.create 1 in
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Tm_sim.Prng.int g 0));
  Alcotest.check_raises "empty pick"
    (Invalid_argument "Prng.pick: empty list") (fun () ->
      ignore (Tm_sim.Prng.pick g ([] : int list)))

(* ------------------------------------------------------------------ *)
(* Workloads. *)

let test_workload_counter () =
  let g = Tm_sim.Prng.create 0 in
  let w = Tm_sim.Workload.counter ~ntvars:3 in
  match w.Tm_sim.Workload.body g 0 with
  | [ Tm_sim.Workload.W_read x; Tm_sim.Workload.W_write (y, f) ] ->
      Alcotest.(check int) "same variable" x y;
      Alcotest.(check int) "increments the read value" 6 (f [ (x, 5) ]);
      Alcotest.(check int) "defaults to 0" 1 (f [])
  | _ -> Alcotest.fail "unexpected counter body"

let test_workload_transfer () =
  let g = Tm_sim.Prng.create 0 in
  let w = Tm_sim.Workload.transfer ~ntvars:4 in
  match w.Tm_sim.Workload.body g 0 with
  | [
   Tm_sim.Workload.W_read a;
   Tm_sim.Workload.W_read b;
   Tm_sim.Workload.W_write (a', fa);
   Tm_sim.Workload.W_write (b', fb);
  ] ->
      Alcotest.(check bool) "distinct accounts" true (a <> b);
      Alcotest.(check int) "debits source" 9 (fa [ (a, 10); (b, 3) ]);
      Alcotest.(check int) "credits target" 4 (fb [ (a, 10); (b, 3) ]);
      Alcotest.(check int) "source var" a a';
      Alcotest.(check int) "target var" b b'
  | _ -> Alcotest.fail "unexpected transfer body"

let test_workload_write_only () =
  let g = Tm_sim.Prng.create 0 in
  let w = Tm_sim.Workload.write_only ~ntvars:2 ~writes:3 in
  let body = w.Tm_sim.Workload.body g 7 in
  Alcotest.(check int) "three writes" 3 (List.length body);
  List.iter
    (function
      | Tm_sim.Workload.W_write (_, f) ->
          Alcotest.(check int) "writes the index" 8 (f [])
      | Tm_sim.Workload.W_read _ -> Alcotest.fail "unexpected read")
    body

let test_workload_fixed_cycles () =
  let w =
    Tm_sim.Workload.fixed "ab"
      [ [ Tm_sim.Workload.W_read 0 ]; [ Tm_sim.Workload.W_read 1 ] ]
  in
  let g = Tm_sim.Prng.create 0 in
  let var i =
    match w.Tm_sim.Workload.body g i with
    | [ Tm_sim.Workload.W_read x ] -> x
    | _ -> Alcotest.fail "unexpected body"
  in
  Alcotest.(check (list int)) "cycles" [ 0; 1; 0; 1 ] [ var 0; var 1; var 2; var 3 ]

(* ------------------------------------------------------------------ *)
(* Runner edge cases. *)

let tl2 = Option.get (Reg.find "tl2")

let test_crash_at_zero () =
  let spec =
    Tm_sim.Runner.spec ~nprocs:2 ~ntvars:1 ~steps:500 ~seed:1
      ~fates:[ (1, Tm_sim.Runner.Crash_at 0) ]
      ()
  in
  let o = Tm_sim.Runner.run tl2 spec in
  Alcotest.(check int) "p1 never acts" 0
    (History.event_count o.Tm_sim.Runner.history 1);
  Alcotest.(check bool) "p2 commits" true (o.Tm_sim.Runner.commits.(2) > 0)

let test_all_crash () =
  let spec =
    Tm_sim.Runner.spec ~nprocs:2 ~ntvars:1 ~steps:500 ~seed:1
      ~fates:[ (1, Tm_sim.Runner.Crash_at 10); (2, Tm_sim.Runner.Crash_at 10) ]
      ()
  in
  let o = Tm_sim.Runner.run tl2 spec in
  Alcotest.(check bool) "run stops early" true (o.Tm_sim.Runner.steps_taken < 500)

let test_parasite_from_zero () =
  let spec =
    Tm_sim.Runner.spec ~nprocs:1 ~ntvars:1 ~steps:300 ~seed:1
      ~fates:[ (1, Tm_sim.Runner.Parasitic_from 0) ]
      ()
  in
  let o = Tm_sim.Runner.run tl2 spec in
  Alcotest.(check int) "never commits" 0 (Tm_sim.Runner.commit_total o);
  Alcotest.(check int) "never invokes tryC" 0
    (History.try_commit_count o.Tm_sim.Runner.history 1);
  Alcotest.(check bool) "keeps executing" true
    (History.event_count o.Tm_sim.Runner.history 1 > 100)

let test_quantum_scheduler () =
  let spec =
    Tm_sim.Runner.spec ~nprocs:2 ~ntvars:2 ~steps:1000 ~seed:1
      ~sched:(Tm_sim.Runner.Quantum 20) ()
  in
  let o = Tm_sim.Runner.run tl2 spec in
  Alcotest.(check bool) "both commit" true
    (o.Tm_sim.Runner.commits.(1) > 0 && o.Tm_sim.Runner.commits.(2) > 0);
  Alcotest.(check bool) "history well-formed" true
    (History.is_well_formed o.Tm_sim.Runner.history)

let test_outcome_accounting () =
  let spec = Tm_sim.Runner.spec ~nprocs:2 ~ntvars:2 ~steps:600 ~seed:3 () in
  let o = Tm_sim.Runner.run tl2 spec in
  (* Each step is an invocation, an answered poll, or a deferred poll. *)
  let responses =
    List.length
      (List.filter Event.is_response (History.events o.Tm_sim.Runner.history))
  in
  Alcotest.(check int) "steps add up"
    o.Tm_sim.Runner.steps_taken
    (Tm_sim.Runner.total o.Tm_sim.Runner.invocations
    + Tm_sim.Runner.total o.Tm_sim.Runner.defers
    + responses);
  (* Commit/abort counts match the history. *)
  List.iter
    (fun p ->
      Alcotest.(check int) "commits match history"
        (History.commit_count o.Tm_sim.Runner.history p)
        o.Tm_sim.Runner.commits.(p);
      Alcotest.(check int) "aborts match history"
        (History.abort_count o.Tm_sim.Runner.history p)
        o.Tm_sim.Runner.aborts.(p))
    [ 1; 2 ]

(* ------------------------------------------------------------------ *)
(* The exhaustive sweep, cross-checked with the monitor and the exact
   checker. *)

let sweep_invocations = [ Event.Read 0; Event.Write (0, 1); Event.Try_commit ]

let test_sweep_counts () =
  (* Depth-0 sweep visits exactly the empty history. *)
  let n =
    Tm_sim.Sweep.Exhaustive.count_nodes tl2 ~nprocs:1 ~ntvars:1
      ~invocations:sweep_invocations ~depth:0
  in
  Alcotest.(check int) "only the root" 1 n;
  (* Depth 1 with one process: root + 3 invocations. *)
  let n1 =
    Tm_sim.Sweep.Exhaustive.count_nodes tl2 ~nprocs:1 ~ntvars:1
      ~invocations:sweep_invocations ~depth:1
  in
  Alcotest.(check int) "root + 3" 4 n1

let sweep_tm_opaque name depth =
  let entry = Option.get (Reg.find name) in
  let bad = ref 0 in
  let checked = ref 0 in
  Tm_sim.Sweep.Exhaustive.run entry ~nprocs:2 ~ntvars:1
    ~invocations:sweep_invocations
    ~depth ~on_history:(fun h _ ->
      incr checked;
      match Tm_safety.Monitor.run h with
      | Tm_safety.Monitor.Accepted -> ()
      | Tm_safety.Monitor.No_witness _ ->
          if not (Tm_safety.Opacity.is_opaque h) then incr bad);
  Alcotest.(check bool) (name ^ " visited many schedules") true (!checked > 1000);
  Alcotest.(check int) (name ^ " non-opaque histories") 0 !bad

let test_sweep_tl2 () = sweep_tm_opaque "tl2" 7
let test_sweep_tinystm () = sweep_tm_opaque "tinystm" 7
let test_sweep_tinystm_ext () = sweep_tm_opaque "tinystm-ext" 7
let test_sweep_swisstm () = sweep_tm_opaque "swisstm" 7
let test_sweep_fgp () = sweep_tm_opaque "fgp" 7
let test_sweep_dstm () = sweep_tm_opaque "dstm-aggressive" 7
let test_sweep_quiescent () = sweep_tm_opaque "quiescent" 7

(* ------------------------------------------------------------------ *)
(* The domain pool. *)

let test_pool_map_order () =
  Tm_sim.Pool.with_pool ~jobs:4 (fun pool ->
      let xs = Array.init 100 Fun.id in
      let ys = Tm_sim.Pool.map_array pool (fun x -> x * x) xs in
      Alcotest.(check (array int)) "results in input order"
        (Array.map (fun x -> x * x) xs)
        ys;
      (* A second batch on the same pool. *)
      let zs = Tm_sim.Pool.map_list pool string_of_int [ 3; 1; 2 ] in
      Alcotest.(check (list string)) "list map" [ "3"; "1"; "2" ] zs)

let test_pool_single_job_inline () =
  Tm_sim.Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check int) "one job" 1 (Tm_sim.Pool.jobs pool);
      let ran_in = ref (-1) in
      let _ =
        Tm_sim.Pool.map_array pool
          (fun i ->
            ran_in := (Domain.self () :> int);
            i)
          [| 0 |]
      in
      Alcotest.(check int) "ran in the caller's domain"
        ((Domain.self () :> int))
        !ran_in)

let test_pool_propagates_exception () =
  Tm_sim.Pool.with_pool ~jobs:3 (fun pool ->
      Alcotest.check_raises "exception resurfaces" Exit (fun () ->
          ignore
            (Tm_sim.Pool.map_array pool
               (fun i -> if i = 7 then raise Exit else i)
               (Array.init 20 Fun.id)));
      (* The pool survives a failed batch. *)
      let ok = Tm_sim.Pool.map_array pool succ [| 1; 2 |] in
      Alcotest.(check (array int)) "pool still works" [| 2; 3 |] ok)

let test_pool_shutdown_rejects () =
  let pool = Tm_sim.Pool.create ~jobs:2 in
  Tm_sim.Pool.shutdown pool;
  Tm_sim.Pool.shutdown pool;
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.map_array: pool is shut down") (fun () ->
      ignore (Tm_sim.Pool.map_array pool Fun.id (Array.init 8 Fun.id)))

(* ------------------------------------------------------------------ *)
(* Metrics. *)

let test_metrics_histogram () =
  let h =
    List.fold_left Tm_sim.Metrics.hist_add Tm_sim.Metrics.hist_empty
      [ 0; 1; 2; 3; 4; 1000000 ]
  in
  Alcotest.(check int) "count" 6 h.Tm_sim.Metrics.count;
  Alcotest.(check int) "max" 1000000 h.Tm_sim.Metrics.max_sample;
  Alcotest.(check int) "bucket 0 (value 0)" 1 h.Tm_sim.Metrics.buckets.(0);
  Alcotest.(check int) "bucket 1 (value 1)" 1 h.Tm_sim.Metrics.buckets.(1);
  Alcotest.(check int) "bucket 2 (values 2-3)" 2 h.Tm_sim.Metrics.buckets.(2);
  Alcotest.(check int) "bucket 3 (values 4-7)" 1 h.Tm_sim.Metrics.buckets.(3);
  Alcotest.(check int) "overflow bucket" 1
    h.Tm_sim.Metrics.buckets.(Tm_sim.Metrics.nbuckets - 1);
  Alcotest.(check string) "labels" "4-7" (Tm_sim.Metrics.hist_bucket_label 3);
  let m = Tm_sim.Metrics.hist_merge h h in
  Alcotest.(check int) "merge doubles" 12 m.Tm_sim.Metrics.count

let test_metrics_of_outcome () =
  (* A hand-written history: p1 aborts once on a read, retries and
     commits; p2 aborts at tryC. *)
  let h =
    History.steps
      [
        History.read_aborted 1 0;
        History.read 1 0 0;
        History.commit 1;
        History.read 2 0 0;
        History.abort 2;
      ]
  in
  let outcome =
    {
      Tm_sim.Runner.history = h;
      commits = [| 0; 1; 0 |];
      aborts = [| 0; 1; 1 |];
      invocations = [| 0; 3; 2 |];
      defers = [| 0; 0; 0 |];
      final_defer_streak = [| 0; 0; 0 |];
      steps_taken = 10;
    }
  in
  let m = Tm_sim.Metrics.of_outcome outcome in
  Alcotest.(check int) "commits" 1 m.Tm_sim.Metrics.commits;
  Alcotest.(check int) "aborts" 2 m.Tm_sim.Metrics.aborts;
  Alcotest.(check int) "abort on read" 1
    m.Tm_sim.Metrics.abort_causes.Tm_sim.Metrics.on_read;
  Alcotest.(check int) "abort on commit" 1
    m.Tm_sim.Metrics.abort_causes.Tm_sim.Metrics.on_commit;
  Alcotest.(check int) "one commit at retry depth 1" 1
    m.Tm_sim.Metrics.retry_depth.Tm_sim.Metrics.buckets.(1);
  Alcotest.(check int) "commit latency samples" 1
    m.Tm_sim.Metrics.commit_latency.Tm_sim.Metrics.count;
  (* p1's committing transaction: Inv Read at index 2, Committed at
     index 5, so latency 3. *)
  Alcotest.(check int) "commit latency value" 3
    m.Tm_sim.Metrics.commit_latency.Tm_sim.Metrics.sum;
  let buf = Buffer.create 256 in
  Tm_sim.Metrics.to_json buf m;
  let json = Buffer.contents buf in
  Alcotest.(check bool) "json has abort causes" true
    (let needle = "\"abort_causes\":{\"read\":1,\"write\":0,\"commit\":1}" in
     let rec contains i =
       i + String.length needle <= String.length json
       && (String.sub json i (String.length needle) = needle
          || contains (i + 1))
     in
     contains 0)

let test_metrics_histogram_edges () =
  let module M = Tm_sim.Metrics in
  let last = M.nbuckets - 1 in
  (* Overflow boundary: 2^(nbuckets-2) is the first value of the last
     ordinary range's upper neighbour — both 2^(nbuckets-2) and anything
     larger land in the overflow bucket. *)
  let h =
    List.fold_left M.hist_add M.hist_empty
      [ (1 lsl (last - 1)) - 1; 1 lsl (last - 1); 1 lsl last; max_int ]
  in
  Alcotest.(check int) "8191 is the last non-overflow value" 1
    h.M.buckets.(last - 1);
  Alcotest.(check int) "8192, 16384 and max_int all overflow" 3
    h.M.buckets.(last);
  (* Negative samples count as 0. *)
  let hneg = M.hist_add M.hist_empty (-5) in
  Alcotest.(check int) "negative sample lands in bucket 0" 1
    hneg.M.buckets.(0);
  (* Labels at the boundaries. *)
  Alcotest.(check string) "label 0" "0" (M.hist_bucket_label 0);
  Alcotest.(check string) "label 1" "1" (M.hist_bucket_label 1);
  Alcotest.(check string) "label 2" "2-3" (M.hist_bucket_label 2);
  Alcotest.(check string) "penultimate label" "4096-8191"
    (M.hist_bucket_label (last - 1));
  Alcotest.(check string) "overflow label" "8192+" (M.hist_bucket_label last)

let test_metrics_histogram_empty_pp () =
  (* A sample-free histogram renders as "(empty)", not a zero-bar chart
     or a division by zero. *)
  Alcotest.(check string)
    "empty histogram prints (empty)" "(empty)"
    (Fmt.str "%a" Tm_sim.Metrics.pp_histogram Tm_sim.Metrics.hist_empty)

let test_metrics_hist_merge_laws () =
  let module M = Tm_sim.Metrics in
  let of_list vs = List.fold_left M.hist_add M.hist_empty vs in
  let a = of_list [ 0; 1; 7; 9000; 12 ]
  and b = of_list [ 3; 3; 3; 100000 ]
  and c = of_list [ 42 ] in
  let eq name x y =
    Alcotest.(check (array int)) (name ^ " buckets") x.M.buckets y.M.buckets;
    Alcotest.(check int) (name ^ " count") x.M.count y.M.count;
    Alcotest.(check int) (name ^ " sum") x.M.sum y.M.sum;
    Alcotest.(check int) (name ^ " max") x.M.max_sample y.M.max_sample
  in
  eq "left identity" (M.hist_merge M.hist_empty a) a;
  eq "right identity" (M.hist_merge a M.hist_empty) a;
  eq "associativity"
    (M.hist_merge (M.hist_merge a b) c)
    (M.hist_merge a (M.hist_merge b c));
  eq "commutativity" (M.hist_merge a b) (M.hist_merge b a)

let test_metrics_fault_counters () =
  let module M = Tm_sim.Metrics in
  (* 16 events, so the empirical window is the last 4: p2's complete
     commit step and p3's aborted read.  p1 was active early but is
     silent in the window (crashed -> fault); p3 aborts without
     committing (starving); p2 commits (neither). *)
  let h =
    History.steps
      [
        History.read 1 0 0;
        History.read 2 0 0;
        History.read 3 0 0;
        History.write 2 0 1;
        History.write 3 0 1;
        History.read 1 0 0;
        History.commit 2;
        History.read_aborted 3 0;
      ]
  in
  let outcome =
    {
      Tm_sim.Runner.history = h;
      commits = [| 0; 0; 1; 0 |];
      aborts = [| 0; 0; 0; 1 |];
      invocations = [| 0; 2; 3; 3 |];
      defers = [| 0; 0; 0; 0 |];
      final_defer_streak = [| 0; 0; 0; 0 |];
      steps_taken = 20;
    }
  in
  let m = M.of_outcome outcome in
  Alcotest.(check int) "one crashed-looking process" 1 m.M.faults;
  Alcotest.(check int) "one starving process" 1 m.M.starvations;
  (* merge sums the counters (and is the identity on a zeroed side). *)
  let mm = M.merge m m in
  Alcotest.(check int) "merge sums faults" 2 mm.M.faults;
  Alcotest.(check int) "merge sums starvations" 2 mm.M.starvations;
  let z = { m with M.faults = 0; starvations = 0 } in
  let mz = M.merge m z in
  Alcotest.(check int) "zero is neutral for faults" m.M.faults mz.M.faults;
  Alcotest.(check int) "zero is neutral for starvations" m.M.starvations
    mz.M.starvations;
  let buf = Buffer.create 256 in
  M.to_json buf m;
  let json = Buffer.contents buf in
  let contains needle =
    let rec go i =
      i + String.length needle <= String.length json
      && (String.sub json i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "json exports the fault counters" true
    (contains "\"faults\":1,\"starvations\":1")

let test_sweep_grid_canonical_order () =
  let tms = List.filter_map Reg.find [ "tl2"; "fgp" ] in
  let configs =
    Tm_sim.Sweep.grid ~tms
      ~patterns:(Tm_sim.Sweep.fault_patterns ~steps:100 ())
      ~seeds:[ 1; 2 ] ()
  in
  Alcotest.(check int) "2 TMs x 4 patterns x 2 seeds" 16 (List.length configs);
  Alcotest.(check string) "TM-major order, then pattern, then seed"
    "tl2/healthy/seed=1" (Tm_sim.Sweep.label (List.hd configs));
  Alcotest.(check (list string)) "tl2 block precedes fgp block"
    [ "tl2"; "fgp" ]
    (List.sort_uniq
       (fun a b ->
         compare
           (List.assoc a [ ("tl2", 0); ("fgp", 1) ])
           (List.assoc b [ ("tl2", 0); ("fgp", 1) ]))
       (List.map
          (fun c -> c.Tm_sim.Sweep.tm.Reg.entry_name)
          configs))

let test_sweep_json_file_deterministic () =
  let tms = List.filter_map Reg.find [ "tl2" ] in
  let configs =
    Tm_sim.Sweep.grid ~tms
      ~patterns:(Tm_sim.Sweep.fault_patterns ~steps:100 ())
      ~seeds:[ 1 ] ()
  in
  let dump () =
    Tm_test_util.Util.with_temp_file ~suffix:".json" (fun path ->
        Tm_test_util.Util.write_file path
          (Tm_sim.Sweep.to_json (Tm_sim.Sweep.run configs));
        Tm_test_util.Util.read_file path)
  in
  Alcotest.(check string) "metrics JSON byte-stable through a file" (dump ())
    (dump ())

(* ------------------------------------------------------------------ *)
(* Statistics helpers. *)

let test_stats () =
  let s = Tm_sim.Stats.of_ints [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check int) "n" 5 s.Tm_sim.Stats.n;
  Alcotest.(check (float 1e-9)) "mean" 3.0 s.Tm_sim.Stats.mean;
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 2.5) s.Tm_sim.Stats.stddev;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Tm_sim.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 5.0 s.Tm_sim.Stats.max;
  Alcotest.(check (float 1e-9)) "median" 3.0 s.Tm_sim.Stats.median;
  Alcotest.(check (float 1e-9)) "p100" 5.0
    (Tm_sim.Stats.percentile [ 1.; 2.; 3.; 4.; 5. ] 100.);
  Alcotest.(check (float 1e-9)) "p0 -> first" 1.0
    (Tm_sim.Stats.percentile [ 1.; 2.; 3.; 4.; 5. ] 0.);
  let one = Tm_sim.Stats.of_ints [ 7 ] in
  Alcotest.(check (float 1e-9)) "singleton stddev" 0.0 one.Tm_sim.Stats.stddev;
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "Stats.summarize: empty series") (fun () ->
      ignore (Tm_sim.Stats.summarize []))

(* ------------------------------------------------------------------ *)
(* Interface conformance across the whole zoo. *)

let test_conformance_zoo () =
  List.iter
    (fun entry ->
      (* Blocking TMs may legitimately defer forever once a fault-like
         schedule arises; disable the patience bound for them. *)
      let patience =
        if entry.Reg.responsive then Some 2000 else None
      in
      match
        Tm_sim.Conformance.check ~steps:2000 ~seed:17 ~patience ~nprocs:3
          ~ntvars:2 entry
      with
      | Ok h ->
          Alcotest.(check bool)
            (entry.Reg.entry_name ^ " conforms")
            true
            (History.is_well_formed h)
      | Error v ->
          Alcotest.failf "%s violates the interface at step %d: %s"
            entry.Reg.entry_name v.Tm_sim.Conformance.at_step
            v.Tm_sim.Conformance.message)
    Reg.all

(* ------------------------------------------------------------------ *)
(* The controlled-execution circumvention (paper §1.3, second way). *)

let test_controlled_everyone_commits () =
  (* The same single-t-variable counter workload whose step-level
     round-robin scheduling starves p2 under fgp; with the TM in control
     of execution every submission commits. *)
  List.iter
    (fun name ->
      let entry = Option.get (Reg.find name) in
      let o =
        Tm_sim.Controlled.run entry ~nprocs:3 ~ntvars:1 ~submissions:20
          ~workload:(Tm_sim.Workload.counter ~ntvars:1)
          ~seed:1
      in
      for p = 1 to 3 do
        Alcotest.(check int)
          (Fmt.str "%s: p%d commits all submissions" name p)
          20
          o.Tm_sim.Controlled.committed.(p)
      done;
      Alcotest.(check bool) (name ^ ": history accepted by monitor") true
        (match Tm_safety.Monitor.run o.Tm_sim.Controlled.history with
        | Tm_safety.Monitor.Accepted -> true
        | Tm_safety.Monitor.No_witness _ -> false))
    [ "fgp"; "tl2"; "global-lock"; "quiescent"; "fgp-priority" ]

let test_controlled_counter_value () =
  (* 3 processes x 20 committed increments of one counter: the committed
     state must be exactly 60 — checked through the serialization witness
     of the recorded history. *)
  let entry = Option.get (Reg.find "tinystm") in
  let o =
    Tm_sim.Controlled.run entry ~nprocs:3 ~ntvars:1 ~submissions:20
      ~workload:(Tm_sim.Workload.counter ~ntvars:1)
      ~seed:2
  in
  match Tm_safety.Opacity.serialization o.Tm_sim.Controlled.history with
  | None -> Alcotest.fail "history should be opaque"
  | Some order ->
      let final =
        List.fold_left Tm_safety.Legality.commit_effect Tm_safety.Store.initial
          order
      in
      Alcotest.(check int) "no lost increments" 60 (Tm_safety.Store.get final 0)

let () =
  Alcotest.run "tm_sim"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "distribution" `Quick test_prng_distribution;
          Alcotest.test_case "split independence" `Quick
            test_prng_split_independent;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "errors" `Quick test_prng_errors;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "counter" `Quick test_workload_counter;
          Alcotest.test_case "transfer" `Quick test_workload_transfer;
          Alcotest.test_case "write-only" `Quick test_workload_write_only;
          Alcotest.test_case "fixed cycles" `Quick test_workload_fixed_cycles;
        ] );
      ( "runner edges",
        [
          Alcotest.test_case "crash at step 0" `Quick test_crash_at_zero;
          Alcotest.test_case "everyone crashes" `Quick test_all_crash;
          Alcotest.test_case "parasite from step 0" `Quick
            test_parasite_from_zero;
          Alcotest.test_case "quantum scheduler" `Quick test_quantum_scheduler;
          Alcotest.test_case "accounting" `Quick test_outcome_accounting;
        ] );
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_pool_map_order;
          Alcotest.test_case "single job runs inline" `Quick
            test_pool_single_job_inline;
          Alcotest.test_case "exceptions propagate" `Quick
            test_pool_propagates_exception;
          Alcotest.test_case "shutdown rejects new work" `Quick
            test_pool_shutdown_rejects;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram buckets" `Quick test_metrics_histogram;
          Alcotest.test_case "histogram edge cases" `Quick
            test_metrics_histogram_edges;
          Alcotest.test_case "empty histogram pretty-prints" `Quick
            test_metrics_histogram_empty_pp;
          Alcotest.test_case "hist_merge monoid laws" `Quick
            test_metrics_hist_merge_laws;
          Alcotest.test_case "of_outcome" `Quick test_metrics_of_outcome;
          Alcotest.test_case "fault and starvation counters" `Quick
            test_metrics_fault_counters;
          Alcotest.test_case "grid canonical order" `Quick
            test_sweep_grid_canonical_order;
          Alcotest.test_case "metrics JSON file-stable" `Quick
            test_sweep_json_file_deterministic;
        ] );
      ( "stats",
        [ Alcotest.test_case "summaries and percentiles" `Quick test_stats ]
      );
      ( "conformance",
        [ Alcotest.test_case "whole zoo conforms" `Quick test_conformance_zoo ]
      );
      ( "controlled execution",
        [
          Alcotest.test_case "everyone commits" `Quick
            test_controlled_everyone_commits;
          Alcotest.test_case "counter value" `Quick
            test_controlled_counter_value;
        ] );
      ( "exhaustive sweep",
        [
          Alcotest.test_case "node counts" `Quick test_sweep_counts;
          Alcotest.test_case "tl2 opaque at depth 7" `Slow test_sweep_tl2;
          Alcotest.test_case "tinystm opaque at depth 7" `Slow
            test_sweep_tinystm;
          Alcotest.test_case "tinystm-ext opaque at depth 7" `Slow
            test_sweep_tinystm_ext;
          Alcotest.test_case "swisstm opaque at depth 7" `Slow
            test_sweep_swisstm;
          Alcotest.test_case "fgp opaque at depth 7" `Slow test_sweep_fgp;
          Alcotest.test_case "dstm opaque at depth 7" `Slow test_sweep_dstm;
          Alcotest.test_case "quiescent opaque at depth 7" `Slow
            test_sweep_quiescent;
        ] );
    ]
