(* Tests for the tmstatic analyzer (lib/staticcheck): per-rule fixture
   pairs (one clean, one violating file each), the machine-read seam
   contract, the allow escape hatch, rule selection, exit-code
   thresholds, and the two whole-tree gates the CI job leans on —
   zero error findings on a clean checkout and byte-identical JSON
   across runs. *)

module F = Tm_analysis.Finding
module Engine = Tm_analysis.Engine
module Sc = Tm_staticcheck.Checker
module Source = Tm_staticcheck.Source
module Seam = Tm_staticcheck.Seam

(* The fixture tree sits next to this file; resolve it both from the
   stanza's cwd (dune runtest: _build/default/test) and from the repo
   root (dune exec). *)
let fixture_dir =
  lazy
    (match
       List.find_opt Sys.file_exists
         [ "fixtures/static"; Filename.concat "test" "fixtures/static" ]
     with
    | Some d -> d
    | None -> Alcotest.fail "cannot locate test/fixtures/static")

let fixture name =
  let path = Filename.concat (Lazy.force fixture_dir) name in
  match Source.load ~subject:name path with
  | Ok src -> src
  | Error msg -> Alcotest.failf "fixture %s: %s" name msg

let count sev findings =
  List.length (List.filter (fun (f : F.t) -> f.F.severity = sev) findings)

let lines_of findings =
  List.filter_map
    (fun (f : F.t) ->
      match f.F.location with F.At_line l -> Some l | _ -> None)
    findings
  |> List.sort_uniq compare

let check_counts what ~errors ~warnings findings =
  Alcotest.(check int) (what ^ ": errors") errors (count F.Error findings);
  Alcotest.(check int)
    (what ^ ": warnings")
    warnings
    (count F.Warning findings)

(* --- the seam contract, parsed from miniature fixture sources --- *)

let mini_contract () =
  let vocab_src = fixture "contract_vocab.ml" in
  let facade_src = fixture "contract_facade.ml" in
  match
    (Seam.vocab_of_core vocab_src, Seam.contract_of_facade facade_src)
  with
  | Ok vocab, Ok contract -> (vocab, contract, facade_src)
  | Error msg, _ | _, Error msg -> Alcotest.failf "mini contract: %s" msg

let test_contract_parses () =
  let vocab, contract, _ = mini_contract () in
  Alcotest.(check (list string))
    "chaos vocabulary"
    [ "Read"; "Validate"; "Lock_acquire"; "Pre_commit"; "Post_commit" ]
    vocab.Seam.points;
  Alcotest.(check (list string)) "algos" [ "Mini" ] contract.Seam.c_algos;
  Alcotest.(check (list (pair string string)))
    "core dispatch"
    [ ("Mini", "Stm_mini") ]
    contract.Seam.c_core_files;
  match Seam.announced contract ~algo:"Mini" ~kind:Seam.Tel with
  | None -> Alcotest.fail "no tel_phases announcement for Mini"
  | Some an ->
      Alcotest.(check (list string))
        "announced phases"
        [ "Begin"; "Read"; "Commit"; "Abort" ]
        an.Seam.an_ctors

let test_contract_clean () =
  let vocab, contract, facade_src = mini_contract () in
  let findings =
    Tm_staticcheck.Rule_contract.check ~vocab ~contract ~facade_src
      [ ("Mini", fixture "contract_core_clean.ml") ]
  in
  check_counts "clean core" ~errors:0 ~warnings:0 findings

let test_contract_bad () =
  let vocab, contract, facade_src = mini_contract () in
  let findings =
    Tm_staticcheck.Rule_contract.check ~vocab ~contract ~facade_src
      [ ("Mini", fixture "contract_core_bad.ml") ]
  in
  (* One unannounced emission (Chaos.Validate) and three announced
     constructors with no site (Tel.Read, Chaos.Read, Blame.Validation);
     the facade's retry loop covers Begin/Commit/Abort. *)
  check_counts "bad core" ~errors:4 ~warnings:0 findings;
  let unannounced =
    List.filter
      (fun (f : F.t) -> f.F.subject = "contract_core_bad.ml")
      findings
  in
  Alcotest.(check int) "unannounced sited in core" 1 (List.length unannounced);
  Alcotest.(check (list int)) "at the emission line" [ 6 ]
    (lines_of unannounced)

(* --- seam-guard --- *)

let test_guard_clean () =
  check_counts "guard_clean" ~errors:0 ~warnings:0
    (Tm_staticcheck.Rule_guard.check (fixture "guard_clean.ml"))

let test_guard_bad () =
  let findings = Tm_staticcheck.Rule_guard.check (fixture "guard_bad.ml") in
  (* Chaos.fire, tp.Tel.count, Blame.emit, Trace.emit — the allow-
     commented emission is suppressed. *)
  check_counts "guard_bad" ~errors:4 ~warnings:0 findings;
  Alcotest.(check (list int)) "at each emission" [ 4; 6; 9; 11 ]
    (lines_of findings)

(* --- txn-purity --- *)

let test_purity_clean () =
  check_counts "purity_clean" ~errors:0 ~warnings:0
    (Tm_staticcheck.Rule_purity.check (fixture "purity_clean.ml"))

let test_purity_bad () =
  let findings = Tm_staticcheck.Rule_purity.check (fixture "purity_bad.ml") in
  (* Errors: print_endline, Random.int, Domain.spawn, Mutex.lock.
     Warnings: incr / Hashtbl.replace on state created outside. *)
  check_counts "purity_bad" ~errors:4 ~warnings:2 findings

(* --- armed-leak --- *)

let test_leak_clean () =
  check_counts "leak_clean" ~errors:0 ~warnings:0
    (Tm_staticcheck.Rule_leak.check (fixture "leak_clean.ml"))

let test_leak_bad () =
  let findings = Tm_staticcheck.Rule_leak.check (fixture "leak_bad.ml") in
  (* A Chaos.install with no disarm and a Trace.start that recover()
     does not stop; the allow-commented Tel.install is suppressed. *)
  check_counts "leak_bad" ~errors:2 ~warnings:0 findings;
  Alcotest.(check (list int)) "at each install" [ 6; 10 ] (lines_of findings)

(* --- rule selection and exit thresholds --- *)

let test_parse_selection () =
  (match Sc.parse_selection "all" with
  | Ok ids -> Alcotest.(check (list string)) "all" Sc.rule_ids ids
  | Error msg -> Alcotest.fail msg);
  (match Sc.parse_selection "seam-guard, txn-purity" with
  | Ok ids ->
      Alcotest.(check (list string))
        "subset"
        [ "seam-guard"; "txn-purity" ]
        ids
  | Error msg -> Alcotest.fail msg);
  match Sc.parse_selection "bogus" with
  | Ok _ -> Alcotest.fail "bogus accepted"
  | Error msg ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool)
        "names the unknown rule" true
        (contains msg "bogus" && contains msg "seam-guard")

let test_exit_code_at () =
  let f sev = F.v ~rule:"r" ~severity:sev ~subject:"s" "m" in
  let warn = [ f F.Warning ] and err = [ f F.Error; f F.Warning ] in
  Alcotest.(check int) "error level, warnings only" 0
    (Engine.exit_code_at `Error warn);
  Alcotest.(check int) "error level, error present" 1
    (Engine.exit_code_at `Error err);
  Alcotest.(check int) "warning level, warnings only" 1
    (Engine.exit_code_at `Warning warn);
  Alcotest.(check int) "never" 0 (Engine.exit_code_at `Never err);
  Alcotest.(check int) "empty" 0 (Engine.exit_code_at `Warning [])

(* --- the whole-tree gates --- *)

let repo_root () =
  match Sc.find_root () with
  | Some root -> root
  | None -> Alcotest.fail "cannot find the repo root from the test cwd"

let test_tree_is_clean () =
  let root = repo_root () in
  match Sc.run ~root () with
  | Error msg -> Alcotest.fail msg
  | Ok report ->
      List.iter (fun f -> Fmt.epr "unexpected: %a@." F.pp f) report.Sc.findings;
      Alcotest.(check int) "no findings on a clean tree" 0
        (List.length report.Sc.findings);
      Alcotest.(check bool)
        (Fmt.str "scanned a real tree (%d files)" report.Sc.files_scanned)
        true
        (report.Sc.files_scanned >= 10)

let test_tree_json_deterministic () =
  let root = repo_root () in
  let once () =
    match Sc.run ~root () with
    | Error msg -> Alcotest.fail msg
    | Ok report -> F.list_to_json report.Sc.findings
  in
  let a = once () and b = once () in
  Alcotest.(check string) "byte-identical JSON across runs" a b;
  Alcotest.(check string) "clean-tree document"
    "{\"findings\":[],\"counts\":{\"error\":0,\"warning\":0,\"info\":0}}\n" a

let test_rule_filter () =
  let root = repo_root () in
  match Sc.run ~rules:[ "armed-leak" ] ~root () with
  | Error msg -> Alcotest.fail msg
  | Ok report ->
      Alcotest.(check int) "leak rule alone is clean" 0
        (List.length report.Sc.findings)

let () =
  Alcotest.run "tm_staticcheck"
    [
      ( "seam-contract",
        [
          Alcotest.test_case "contract parses" `Quick test_contract_parses;
          Alcotest.test_case "clean core" `Quick test_contract_clean;
          Alcotest.test_case "violating core" `Quick test_contract_bad;
        ] );
      ( "seam-guard",
        [
          Alcotest.test_case "clean" `Quick test_guard_clean;
          Alcotest.test_case "violating" `Quick test_guard_bad;
        ] );
      ( "txn-purity",
        [
          Alcotest.test_case "clean" `Quick test_purity_clean;
          Alcotest.test_case "violating" `Quick test_purity_bad;
        ] );
      ( "armed-leak",
        [
          Alcotest.test_case "clean" `Quick test_leak_clean;
          Alcotest.test_case "violating" `Quick test_leak_bad;
        ] );
      ( "driver",
        [
          Alcotest.test_case "rule selection" `Quick test_parse_selection;
          Alcotest.test_case "exit thresholds" `Quick test_exit_code_at;
          Alcotest.test_case "tree is clean" `Quick test_tree_is_clean;
          Alcotest.test_case "JSON determinism" `Quick
            test_tree_json_deterministic;
          Alcotest.test_case "rule filter" `Quick test_rule_filter;
        ] );
    ]
