(* Fixture: every arm/disarm pairing the leak rule accepts — direct
   uninstall, ~finally-bound uninstall, Stm.recover, and Trace.stop. *)

let chaos_paired () =
  Stm.Chaos.install (fun _ -> Stm.Chaos.Proceed);
  run_workload ();
  Stm.Chaos.uninstall ()

let tel_finally probe =
  Stm.Tel.install probe;
  Fun.protect ~finally:Stm.Tel.uninstall run_workload

let blame_recover sink =
  Stm.Blame.install sink;
  run_workload ();
  Stm.recover ()

let trace_paired () =
  Stm.Trace.start ();
  run_workload ();
  Stm.Trace.stop ()
