(* Fixture: atomically bodies that only touch transactional state or
   locals created inside the body, plus an allowed deliberate effect. *)

let add t k = Stm.atomically (fun () -> Stm.write t (Stm.read t + k))

let local_scratch t =
  Stm.atomically (fun () ->
      let seen = ref 0 in
      incr seen;
      let buf = Buffer.create 8 in
      Buffer.add_string buf "local";
      Stm.write t !seen;
      Buffer.length buf)

let deliberate t =
  Stm.atomically (fun () ->
      (* tmstatic: allow txn-purity *)
      print_string "debug probe";
      Stm.read t)
