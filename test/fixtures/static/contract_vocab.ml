(* Fixture: a miniature stm_core declaring the three seam
   vocabularies seam-contract reads its constructor sets from. *)

module Chaos = struct
  type point = Read | Validate | Lock_acquire | Pre_commit | Post_commit

  let armed = Atomic.make false
end

module Tel = struct
  type phase = Begin | Read | Lock | Validate | Publish | Commit | Abort

  let armed = Atomic.make false
end

module Blame = struct
  type cause = Read_conflict | Lock_busy | Validation | Stolen | Wait_budget

  let armed = Atomic.make false
end
