(* Fixture: unguarded seam emissions, one per emission family, plus
   one suppressed by the allow escape. *)

let bad_chaos p = Chaos.fire p

let bad_tel tp = tp.Tel.count Tel.Read

let bad_blame ~aggressor ~tvar =
  Blame.emit ~aggressor ~tvar Blame.Read_conflict

let bad_trace () = Trace.emit cat name phase []

let suppressed p =
  (* tmstatic: allow seam-guard *)
  Chaos.fire p
