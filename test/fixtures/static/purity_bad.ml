(* Fixture: non-rollbackable effects inside atomically bodies —
   irreversible ones are errors, outside-state mutation is a warning. *)

let hits = ref 0
let tbl = Hashtbl.create 8

let bad_print t = Stm.atomically (fun () -> print_endline "boom"; Stm.read t)

let bad_random t = Stm.atomically (fun () -> Stm.write t (Random.int 3))

let bad_spawn t =
  Stm.atomically (fun () ->
      ignore (Domain.spawn (fun () -> ()));
      Stm.read t)

let bad_mutex m t = Stm.atomically (fun () -> Mutex.lock m; Stm.read t)

let warn_incr t = Stm.atomically (fun () -> incr hits; Stm.read t)

let warn_hashtbl t =
  Stm.atomically (fun () ->
      Hashtbl.replace tbl 1 2;
      Stm.read t)
