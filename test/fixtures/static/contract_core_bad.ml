(* Fixture: a core that violates the Mini announcement both ways —
   it emits Chaos.Validate (unannounced) and never emits Tel.Read,
   Chaos.Read or Blame.Validation (all announced). *)

let read tv =
  if Atomic.get Chaos.armed then Chaos.fire Chaos.Validate;
  Atomic.get tv
