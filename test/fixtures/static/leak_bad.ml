(* Fixture: seams armed with no paired disarm in the same top-level
   definition.  recover() does not stop tracing, so the Trace leak
   stands even with a recover call. *)

let chaos_leak () =
  Stm.Chaos.install (fun _ -> Stm.Chaos.Proceed);
  run_workload ()

let trace_leak_despite_recover () =
  Stm.Trace.start ();
  run_workload ();
  Stm.recover ()

let suppressed_leak probe =
  (* tmstatic: allow armed-leak *)
  Stm.Tel.install probe;
  run_workload ()
