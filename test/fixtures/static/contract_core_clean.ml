(* Fixture: a core whose emission sites match the facade announcement
   for Mini exactly (Tel Begin/Commit/Abort come from the facade). *)

let read tv =
  if Atomic.get Chaos.armed then Chaos.fire Chaos.Read;
  if Atomic.get Tel.armed then (Atomic.get Tel.probe).Tel.count Tel.Read;
  Atomic.get tv

let commit ~aggressor ~tvar =
  if Atomic.get Blame.armed then Blame.emit ~aggressor ~tvar Blame.Validation
