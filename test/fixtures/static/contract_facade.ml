(* Fixture: a miniature Stm facade with one announced algorithm and a
   retry loop emitting the facade-universal Tel phases. *)

module Algo = struct
  type t = Mini

  let tel_phases = function
    | Mini -> [ Tel.Begin; Tel.Read; Tel.Commit; Tel.Abort ]

  let chaos_points = function Mini -> [ Chaos.Read ]
  let blame_causes = function Mini -> [ Blame.Validation ]
end

let core_of = function Algo.Mini -> (module Stm_mini)

let atomically f =
  let tel = Atomic.get Tel.armed in
  let tp = if tel then Atomic.get Tel.probe else null_probe in
  if tel then tp.Tel.count Tel.Begin;
  let finish committed =
    if tel then tp.Tel.count (if committed then Tel.Commit else Tel.Abort)
  in
  finish (f ())
