(* Fixture: every seam emission idiom the repo uses, each dominated by
   its disarmed check — direct guard, let-bound guard, conjunction,
   guard flowing into a closure, and a Tel probe-field application. *)

let direct p =
  if Atomic.get Chaos.armed then Chaos.fire p;
  if Atomic.get Trace.tracing then Trace.emit cat name phase []

let let_bound () =
  let tel = Atomic.get Tel.armed in
  let tp = if tel then Atomic.get Tel.probe else null_probe in
  if tel then tp.Tel.count Tel.Read;
  if tel then tp.Tel.observe Tel.Lock (tp.Tel.now ())

let conjunction stolen =
  if stolen && Atomic.get Blame.armed then
    Blame.emit_event ~victim:0 ~aggressor:1 ~tvar:2 Blame.Stolen

let closure entries =
  let tr = Atomic.get Trace.tracing in
  if tr then List.iter (fun e -> Trace.emit e.cat e.name e.phase []) entries
