(* Tests for process classification (Figure 2) and TM-liveness properties
   (Section 3).  Figure ground truths:
     fig5  -> local, global, solo; respects nonblocking and biprogressing
     fig6  -> global, not local; fails the biprogressing respect-check
     fig7  -> solo (p1 crashed, p2 parasitic, p3 alone and progressing)
     fig9  -> violates everything (p2 correct, alone, starving)
     fig10 -> global, not local (p1 correct starving, p2 progressing)
     fig12 -> violates everything (p1 parasitic, p2 correct alone starving)
     fig14 -> fails the nonblocking respect-check *)

open Tm_history
open Tm_liveness

(* ------------------------------------------------------------------ *)
(* Classification of the figures. *)

let test_fig5_classes () =
  let l = Figures.fig5 in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Fmt.str "p%d correct" p)
        true
        (Process_class.is_correct l p);
      Alcotest.(check bool)
        (Fmt.str "p%d progresses" p)
        true
        (Process_class.makes_progress l p))
    [ 1; 2 ]

let test_fig6_classes () =
  let l = Figures.fig6 in
  Alcotest.(check bool) "p1 correct" true (Process_class.is_correct l 1);
  Alcotest.(check bool) "p2 correct" true (Process_class.is_correct l 2);
  Alcotest.(check bool) "p1 progresses" true (Process_class.makes_progress l 1);
  Alcotest.(check bool) "p2 starving" true (Process_class.is_starving l 2);
  Alcotest.(check bool) "p2 pending" true (Process_class.is_pending l 2);
  Alcotest.(check bool) "p2 not parasitic" false (Process_class.is_parasitic l 2)

let test_fig7_classes () =
  let l = Figures.fig7 in
  Alcotest.(check bool) "p1 crashes" true (Process_class.crashes l 1);
  Alcotest.(check bool) "p1 faulty" true (Process_class.is_faulty l 1);
  Alcotest.(check bool) "p2 parasitic" true (Process_class.is_parasitic l 2);
  Alcotest.(check bool) "p2 faulty" true (Process_class.is_faulty l 2);
  Alcotest.(check bool) "p3 correct" true (Process_class.is_correct l 3);
  Alcotest.(check bool) "p3 runs alone" true (Process_class.runs_alone l 3);
  Alcotest.(check bool) "p3 progresses" true (Process_class.makes_progress l 3);
  Alcotest.(check bool) "p1 does not run alone" false
    (Process_class.runs_alone l 1)

let test_fig9_classes () =
  let l = Figures.fig9 in
  Alcotest.(check bool) "p1 crashes" true (Process_class.crashes l 1);
  Alcotest.(check bool) "p2 correct" true (Process_class.is_correct l 2);
  Alcotest.(check bool) "p2 starving" true (Process_class.is_starving l 2);
  Alcotest.(check bool) "p2 runs alone" true (Process_class.runs_alone l 2)

let test_fig12_classes () =
  let l = Figures.fig12 in
  Alcotest.(check bool) "p1 parasitic" true (Process_class.is_parasitic l 1);
  Alcotest.(check bool) "p1 pending" true (Process_class.is_pending l 1);
  Alcotest.(check bool) "p1 not starving (parasitic)" false
    (Process_class.is_starving l 1);
  Alcotest.(check bool) "p2 starving" true (Process_class.is_starving l 2)

let test_classify_table () =
  let table = Process_class.classify Figures.fig7 in
  Alcotest.(check int) "three rows" 3 (List.length table);
  let row p = List.find (fun s -> s.Process_class.proc = p) table in
  Alcotest.(check bool) "p1 crashed" true (row 1).Process_class.crashed;
  Alcotest.(check bool) "p2 parasitic" true (row 2).Process_class.parasitic;
  Alcotest.(check bool) "p3 progresses" true (row 3).Process_class.progresses;
  let s = Fmt.str "%a" Process_class.pp_table table in
  Alcotest.(check bool) "renders" true (String.length s > 0)

(* ------------------------------------------------------------------ *)
(* Property verdicts per figure (the paper's claims). *)

let check_verdict name l ~local ~global ~solo ~nb ~bi =
  let v = Property.verdict l in
  Alcotest.(check bool) (name ^ " local") local v.Property.local;
  Alcotest.(check bool) (name ^ " global") global v.Property.global;
  Alcotest.(check bool) (name ^ " solo") solo v.Property.solo;
  Alcotest.(check bool) (name ^ " nonblocking-respect") nb v.Property.nonblocking_ok;
  Alcotest.(check bool) (name ^ " biprogressing-respect") bi
    v.Property.biprogressing_ok

let test_fig5_verdict () =
  check_verdict "fig5" Figures.fig5 ~local:true ~global:true ~solo:true
    ~nb:true ~bi:true

let test_fig6_verdict () =
  check_verdict "fig6" Figures.fig6 ~local:false ~global:true ~solo:true
    ~nb:true ~bi:false

let test_fig7_verdict () =
  check_verdict "fig7" Figures.fig7 ~local:true ~global:true ~solo:true
    ~nb:true ~bi:true

let test_fig9_verdict () =
  check_verdict "fig9" Figures.fig9 ~local:false ~global:false ~solo:false
    ~nb:false ~bi:true

let test_fig10_verdict () =
  check_verdict "fig10" Figures.fig10 ~local:false ~global:true ~solo:true
    ~nb:true ~bi:false

let test_fig12_verdict () =
  check_verdict "fig12" Figures.fig12 ~local:false ~global:false ~solo:false
    ~nb:false ~bi:true

let test_fig14_verdict () =
  check_verdict "fig14" Figures.fig14 ~local:false ~global:false ~solo:false
    ~nb:false ~bi:true

(* fig7 ensures local progress?  Its only correct process (p3) progresses,
   so yes: local quantifies over correct processes only.  The paper uses
   fig7 to illustrate solo progress; local holding too is consistent
   (L_local ⊆ L_solo). *)

(* ------------------------------------------------------------------ *)
(* Property lattice and meta-classification on the figure corpus. *)

let corpus = List.map snd Figures.all_lassos

let find_property name = List.find (fun p -> p.Property.name = name) Property.all

let test_lattice () =
  let local = find_property "local-progress" in
  let global = find_property "global-progress" in
  let solo = find_property "solo-progress" in
  Alcotest.(check bool) "local stronger than global" true
    (Property.stronger_on local global corpus);
  Alcotest.(check bool) "global stronger than solo" true
    (Property.stronger_on global solo corpus);
  Alcotest.(check bool) "local stronger than solo" true
    (Property.stronger_on local solo corpus);
  (* Strictness witnesses. *)
  Alcotest.(check bool) "fig6 separates local from global" true
    (global.Property.holds Figures.fig6
    && not (local.Property.holds Figures.fig6))

let test_meta_classification () =
  let local = find_property "local-progress" in
  let global = find_property "global-progress" in
  let solo = find_property "solo-progress" in
  Alcotest.(check bool) "local nonblocking" true
    (Property.nonblocking_on local corpus);
  Alcotest.(check bool) "solo nonblocking" true
    (Property.nonblocking_on solo corpus);
  Alcotest.(check bool) "global nonblocking" true
    (Property.nonblocking_on global corpus);
  Alcotest.(check bool) "local biprogressing" true
    (Property.biprogressing_on local corpus);
  Alcotest.(check bool) "global not biprogressing (fig6)" false
    (Property.biprogressing_on global corpus);
  Alcotest.(check bool) "solo not biprogressing (fig6)" false
    (Property.biprogressing_on solo corpus)

(* ------------------------------------------------------------------ *)
(* The future-work families: k-progress and priority progress. *)

let test_k_progress_lattice () =
  let k1 = Property.k_progress 1 in
  let k2 = Property.k_progress 2 in
  let k3 = Property.k_progress 3 in
  let local = find_property "local-progress" in
  Alcotest.(check bool) "3-progress stronger than 2-progress" true
    (Property.stronger_on k3 k2 corpus);
  Alcotest.(check bool) "2-progress stronger than 1-progress" true
    (Property.stronger_on k2 k1 corpus);
  Alcotest.(check bool) "local stronger than any k-progress" true
    (Property.stronger_on local k3 corpus);
  (* 1-progress coincides with global progress pointwise. *)
  List.iter
    (fun l ->
      Alcotest.(check bool) "1-progress = global" (Property.global_progress l)
        (k1.Property.holds l))
    corpus;
  (* On histories with at most 3 processes, 3-progress = local. *)
  List.iter
    (fun l ->
      Alcotest.(check bool) "3-progress = local on <=3 procs"
        (Property.local_progress l) (k3.Property.holds l))
    corpus

let test_k_progress_verdicts () =
  let k2 = Property.k_progress 2 in
  Alcotest.(check bool) "fig5 satisfies 2-progress" true
    (k2.Property.holds Figures.fig5);
  Alcotest.(check bool) "fig6 violates 2-progress" false
    (k2.Property.holds Figures.fig6);
  Alcotest.(check bool) "fig7 satisfies 2-progress (one correct process)"
    true
    (k2.Property.holds Figures.fig7)

let test_k_progress_meta () =
  let k2 = Property.k_progress 2 in
  (* k >= 2: nonblocking and biprogressing — hence covered by Theorem 2. *)
  Alcotest.(check bool) "2-progress nonblocking" true
    (Property.nonblocking_on k2 corpus);
  Alcotest.(check bool) "2-progress biprogressing" true
    (Property.biprogressing_on k2 corpus)

let test_priority_progress () =
  (* fig6: p1 commits forever, p2 starves; both correct. *)
  Alcotest.(check bool) "fig6 with p1 prioritized" true
    (Property.priority_progress ~priority:(fun p -> -p) Figures.fig6);
  Alcotest.(check bool) "fig6 with p2 prioritized" false
    (Property.priority_progress ~priority:(fun p -> p) Figures.fig6);
  (* Constant priorities degenerate to local progress. *)
  List.iter
    (fun l ->
      Alcotest.(check bool) "constant priority = local"
        (Property.local_progress l)
        (Property.priority_progress ~priority:(fun _ -> 0) l))
    corpus

(* ------------------------------------------------------------------ *)
(* Empirical bridge: lasso detection and window classification. *)

let test_find_lasso_on_unrolled_figures () =
  List.iter
    (fun (name, l) ->
      let h = Lasso.unroll l 5 in
      match Empirical.find_lasso h with
      | None -> Alcotest.failf "%s: no lasso detected in unrolling" name
      | Some detected ->
          Alcotest.(check bool)
            (name ^ ": detected lasso has the same verdict")
            true
            (Property.verdict detected = Property.verdict l))
    Figures.all_lassos

let test_find_lasso_on_deterministic_run () =
  (* Round-robin lockstep of two toggle processes (read v, write 1-v: the
     workload of Figures 5 and 6) on one t-variable under fgp: the run is
     exactly periodic with p1 winning every round.  The detector must find
     the lasso and the exact deciders must answer: global but not local
     progress — the run realizes Figure 6. *)
  let toggle =
    Tm_sim.Workload.fixed "toggle"
      [
        [
          Tm_sim.Workload.W_read 0;
          Tm_sim.Workload.W_write
            ( 0,
              fun reads ->
                match List.assoc_opt 0 reads with
                | Some v -> 1 - v
                | None -> 1 );
        ];
      ]
  in
  let entry = Option.get (Tm_impl.Registry.find "fgp") in
  let spec =
    Tm_sim.Runner.spec ~nprocs:2 ~ntvars:1 ~steps:400 ~seed:1
      ~sched:Tm_sim.Runner.Round_robin ~workload:toggle ()
  in
  let o = Tm_sim.Runner.run entry spec in
  match Empirical.find_lasso o.Tm_sim.Runner.history with
  | None -> Alcotest.fail "expected a periodic suffix"
  | Some l ->
      Alcotest.(check bool) "global progress" true (Property.global_progress l);
      Alcotest.(check bool) "not local progress" false
        (Property.local_progress l);
      Alcotest.(check bool) "p1 progresses" true
        (Process_class.makes_progress l 1);
      Alcotest.(check bool) "p2 starving" true (Process_class.is_starving l 2)

let test_find_lasso_none_on_empty () =
  Alcotest.(check bool) "empty history has no lasso" true
    (Empirical.find_lasso History.empty = None)

let test_window_classification () =
  (* The quiescent strawman under Algorithm 2 produces the Figure-12
     shape; the window classifier must flag p1 as parasitic-looking and
     p2 as pending. *)
  let quiescent = Option.get (Tm_impl.Registry.find "quiescent") in
  let r =
    Tm_adversary.Adversary.run ~patience:40 ~rounds:3 quiescent
      Tm_adversary.Adversary.Algorithm_2
  in
  let table =
    Empirical.classify_window ~window:60 r.Tm_adversary.Adversary.history
  in
  let row p = List.find (fun s -> s.Empirical.proc = p) table in
  Alcotest.(check bool) "p1 looks parasitic" true
    (row 1).Empirical.looks_parasitic;
  Alcotest.(check bool) "p1 pending" true (row 1).Empirical.looks_pending;
  Alcotest.(check bool) "p2 pending" true (row 2).Empirical.looks_pending;
  Alcotest.(check bool) "p2 not parasitic (aborted in window)" false
    (row 2).Empirical.looks_parasitic;
  let rendered =
    Fmt.str "%a" Fmt.(list ~sep:(any "; ") Empirical.pp_window_summary) table
  in
  Alcotest.(check bool) "renders" true (String.length rendered > 0)

(* ------------------------------------------------------------------ *)
(* Generated lassos: Figure 2's inclusion arrows as properties. *)

(* Generate a well-formed lasso: the cycle is made of completed
   operation pairs, so the pending state is empty at every cycle
   boundary; stem processes with a pending invocation are excluded from
   the cycle. *)
let gen_lasso =
  QCheck2.Gen.(
    let pair_for p =
      oneof
        [
          map (fun x -> History.read p x 0) (int_bound 2);
          map (fun x -> History.read_aborted p x) (int_bound 2);
          map2 (fun x v -> History.write p x v) (int_bound 2) (int_bound 3);
          return (History.commit p);
          return (History.abort p);
        ]
    in
    let* nprocs = int_range 1 4 in
    let procs = List.init nprocs (fun i -> i + 1) in
    (* Which processes appear in the cycle?  At least one must (the cycle
       is non-empty by definition). *)
    let* cycle_procs =
      List.fold_left
        (fun acc p ->
          let* acc = acc in
          let* keep = bool in
          return (if keep then p :: acc else acc))
        (return []) procs
    in
    let cycle_procs = if cycle_procs = [] then [ 1 ] else cycle_procs in
    let* cycle_pairs =
      match cycle_procs with
      | [] -> return []
      | ps ->
          let* n = int_range 1 6 in
          flatten_l
            (List.init n (fun _ ->
                 let* p = oneofl ps in
                 pair_for p))
    in
    let* stem_pairs =
      let* n = int_range 0 4 in
      flatten_l
        (List.init n (fun _ ->
             let* p = oneofl procs in
             pair_for p))
    in
    (* Optionally leave a dangling invocation for a non-cycle process
       (a crash in mid-operation). *)
    let* dangling =
      let outside = List.filter (fun p -> not (List.mem p cycle_procs)) procs in
      match outside with
      | [] -> return []
      | ps ->
          let* add = bool in
          if not add then return []
          else
            let* p = oneofl ps in
            return [ [ Event.Inv (p, Event.Read 0) ] ]
    in
    let stem = List.concat (stem_pairs @ dangling) in
    let cycle = List.concat cycle_pairs in
    match Lasso.check ~stem ~cycle with
    | Ok l -> return l
    | Error m -> failwith ("generator produced bad lasso: " ^ m))

let prop_taxonomy_inclusions =
  QCheck2.Test.make ~count:500
    ~name:"Figure 2 class inclusions hold on generated lassos" gen_lasso
    (fun l ->
      List.for_all
        (fun p ->
          let imp a b = (not a) || b in
          let open Process_class in
          imp (crashes l p) (is_pending l p)
          && imp (crashes l p) (is_faulty l p)
          && imp (is_parasitic l p) (is_pending l p)
          && imp (is_parasitic l p) (is_faulty l p)
          && imp (is_starving l p) (is_pending l p)
          && imp (is_starving l p) (is_correct l p)
          && imp (not (is_pending l p)) (is_correct l p)
          && imp (not (is_pending l p)) (not (crashes l p))
          && imp (is_correct l p) (not (crashes l p))
          && (not (crashes l p && is_parasitic l p))
          && is_correct l p <> is_faulty l p)
        (Lasso.procs l))

let prop_property_chain =
  QCheck2.Test.make ~count:500
    ~name:"local => global => solo on generated lassos" gen_lasso (fun l ->
      let imp a b = (not a) || b in
      imp (Property.local_progress l) (Property.global_progress l)
      && imp (Property.global_progress l) (Property.solo_progress l))

let prop_progress_requires_infinite_commits =
  QCheck2.Test.make ~count:500
    ~name:"progressing processes commit infinitely often" gen_lasso (fun l ->
      List.for_all
        (fun p ->
          (not (Process_class.makes_progress l p))
          || Lasso.infinitely_many l Event.is_commit p)
        (Lasso.procs l))

let prop_library_generator_lassos =
  (* The library's own Generator.lasso: always well-formed (construction
     validates), taxonomy inclusions hold, and verdicts are
     rotation-stable. *)
  QCheck2.Test.make ~count:300 ~name:"library lasso generator"
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let l = Tm_history.Generator.lasso seed in
      List.for_all
        (fun p ->
          let imp a b = (not a) || b in
          let open Process_class in
          imp (crashes l p) (is_pending l p)
          && imp (is_parasitic l p) (is_faulty l p)
          && imp (is_starving l p) (is_correct l p)
          && is_correct l p <> is_faulty l p)
        (Lasso.procs l)
      && Property.verdict l = Property.verdict (Lasso.rotate l))

let prop_verdict_stable_under_rotation =
  QCheck2.Test.make ~count:300
    ~name:"liveness verdicts invariant under lasso rotation" gen_lasso
    (fun l ->
      let r = Lasso.rotate l in
      let u = Lasso.unroll_cycle_into_stem l in
      Property.verdict l = Property.verdict r
      && Property.verdict l = Property.verdict u)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_taxonomy_inclusions;
      prop_library_generator_lassos;
      prop_property_chain;
      prop_progress_requires_infinite_commits;
      prop_verdict_stable_under_rotation;
    ]

let () =
  Alcotest.run "tm_liveness"
    [
      ( "classification",
        [
          Alcotest.test_case "fig5" `Quick test_fig5_classes;
          Alcotest.test_case "fig6" `Quick test_fig6_classes;
          Alcotest.test_case "fig7" `Quick test_fig7_classes;
          Alcotest.test_case "fig9" `Quick test_fig9_classes;
          Alcotest.test_case "fig12" `Quick test_fig12_classes;
          Alcotest.test_case "summary table" `Quick test_classify_table;
        ] );
      ( "figure verdicts",
        [
          Alcotest.test_case "fig5" `Quick test_fig5_verdict;
          Alcotest.test_case "fig6" `Quick test_fig6_verdict;
          Alcotest.test_case "fig7" `Quick test_fig7_verdict;
          Alcotest.test_case "fig9" `Quick test_fig9_verdict;
          Alcotest.test_case "fig10" `Quick test_fig10_verdict;
          Alcotest.test_case "fig12" `Quick test_fig12_verdict;
          Alcotest.test_case "fig14" `Quick test_fig14_verdict;
        ] );
      ( "property lattice",
        [
          Alcotest.test_case "strength chain" `Quick test_lattice;
          Alcotest.test_case "nonblocking/biprogressing" `Quick
            test_meta_classification;
        ] );
      ( "future-work properties",
        [
          Alcotest.test_case "k-progress lattice" `Quick
            test_k_progress_lattice;
          Alcotest.test_case "k-progress verdicts" `Quick
            test_k_progress_verdicts;
          Alcotest.test_case "k-progress meta" `Quick test_k_progress_meta;
          Alcotest.test_case "priority progress" `Quick
            test_priority_progress;
        ] );
      ( "empirical bridge",
        [
          Alcotest.test_case "lassos from unrolled figures" `Quick
            test_find_lasso_on_unrolled_figures;
          Alcotest.test_case "lasso from a deterministic run" `Quick
            test_find_lasso_on_deterministic_run;
          Alcotest.test_case "no lasso in empty history" `Quick
            test_find_lasso_none_on_empty;
          Alcotest.test_case "window classification" `Quick
            test_window_classification;
        ] );
      ("properties", properties);
    ]
