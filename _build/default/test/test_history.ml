(* Tests for the formal-model substrate: events, histories, transactions,
   lassos, and the paper-figure encodings. *)

open Tm_history

(* ------------------------------------------------------------------ *)
(* Generators shared with the property tests. *)

let gen_invocation =
  QCheck2.Gen.(
    oneof
      [
        map (fun x -> Event.Read x) (int_bound 3);
        map2 (fun x v -> Event.Write (x, v)) (int_bound 3) (int_bound 5);
        return Event.Try_commit;
      ])

let gen_response_for inv =
  QCheck2.Gen.(
    match inv with
    | Event.Read _ ->
        oneof
          [
            map (fun v -> Event.Value v) (int_bound 5); return Event.Aborted;
          ]
    | Event.Write _ -> oneofl [ Event.Ok_written; Event.Aborted ]
    | Event.Try_commit -> oneofl [ Event.Committed; Event.Aborted ])

(* Generate a well-formed history by interleaving per-process alternating
   invocation/response pairs. *)
let gen_history =
  QCheck2.Gen.(
    let* nprocs = int_range 1 4 in
    let* nsteps = int_range 0 40 in
    let rec go pending acc n =
      if n = 0 then return (List.rev acc)
      else
        let* p = int_range 1 nprocs in
        match List.assoc_opt p pending with
        | None ->
            let* inv = gen_invocation in
            go ((p, inv) :: pending) (Event.Inv (p, inv) :: acc) (n - 1)
        | Some inv ->
            let* res = gen_response_for inv in
            go
              (List.remove_assoc p pending)
              (Event.Res (p, res) :: acc)
              (n - 1)
    in
    let* es = go [] [] nsteps in
    return (History.of_events es))

(* ------------------------------------------------------------------ *)
(* Unit tests: events. *)

let test_matches () =
  Alcotest.(check bool)
    "read/value" true
    (Event.matches (Event.Read 0) (Event.Value 3));
  Alcotest.(check bool)
    "read/ok" false
    (Event.matches (Event.Read 0) Event.Ok_written);
  Alcotest.(check bool)
    "write/ok" true
    (Event.matches (Event.Write (0, 1)) Event.Ok_written);
  Alcotest.(check bool)
    "write/commit" false
    (Event.matches (Event.Write (0, 1)) Event.Committed);
  Alcotest.(check bool)
    "tryC/C" true
    (Event.matches Event.Try_commit Event.Committed);
  Alcotest.(check bool)
    "tryC/value" false
    (Event.matches Event.Try_commit (Event.Value 0));
  Alcotest.(check bool)
    "anything/abort" true
    (Event.matches (Event.Read 1) Event.Aborted)

let test_event_predicates () =
  Alcotest.(check bool) "commit" true (Event.is_commit (Res (1, Committed)));
  Alcotest.(check bool) "abort" true (Event.is_abort (Res (2, Aborted)));
  Alcotest.(check bool)
    "tryC" true
    (Event.is_try_commit (Inv (1, Try_commit)));
  Alcotest.(check int) "proc of inv" 3 (Event.proc (Inv (3, Read 0)));
  Alcotest.(check int) "proc of res" 2 (Event.proc (Res (2, Value 1)))

let test_event_pp () =
  Alcotest.(check string) "read inv" "x0.read_1"
    (Event.to_string (Inv (1, Read 0)));
  Alcotest.(check string) "write inv" "x2.write(5)_3"
    (Event.to_string (Inv (3, Write (2, 5))));
  Alcotest.(check string) "commit" "C_1" (Event.to_string (Res (1, Committed)))

(* ------------------------------------------------------------------ *)
(* Unit tests: histories. *)

let test_well_formed_ok () =
  List.iter
    (fun (name, h) ->
      match History.well_formed h with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s should be well-formed: %s" name m)
    Figures.all_finite

let test_well_formed_bad () =
  let bad1 = History.of_events [ Event.Res (1, Event.Value 0) ] in
  Alcotest.(check bool)
    "response without invocation" false
    (History.is_well_formed bad1);
  let bad2 =
    History.of_events
      [ Event.Inv (1, Event.Read 0); Event.Inv (1, Event.Read 1) ]
  in
  Alcotest.(check bool)
    "two pending invocations" false
    (History.is_well_formed bad2);
  let bad3 =
    History.of_events
      [ Event.Inv (1, Event.Read 0); Event.Res (1, Event.Ok_written) ]
  in
  Alcotest.(check bool)
    "mismatched response kind" false
    (History.is_well_formed bad3);
  let bad4 =
    History.of_events
      [ Event.Inv (1, Event.Try_commit); Event.Res (1, Event.Value 2) ]
  in
  Alcotest.(check bool)
    "value answering tryC" false
    (History.is_well_formed bad4)

let test_projection () =
  let h = Figures.fig3 in
  let p1 = History.project h 1 in
  Alcotest.(check int) "p1 has 6 events" 6 (List.length p1);
  List.iter
    (fun e -> Alcotest.(check int) "projection only holds p1" 1 (Event.proc e))
    p1;
  Alcotest.(check (list int)) "procs" [ 1; 2 ] (History.procs h);
  Alcotest.(check (list int)) "tvars" [ 0 ] (History.tvars h)

let test_equivalent () =
  let h = Figures.fig3 in
  Alcotest.(check bool) "reflexive" true (History.equivalent h h);
  (* Swapping two adjacent events of different processes preserves
     per-process projections. *)
  let es = Array.of_list (History.events h) in
  let swapped =
    let rec find i =
      if i + 1 >= Array.length es then
        Alcotest.fail "expected adjacent events of two different processes"
      else if Event.proc es.(i) <> Event.proc es.(i + 1) then i
      else find (i + 1)
    in
    let i = find 0 in
    let es' = Array.copy es in
    es'.(i) <- es.(i + 1);
    es'.(i + 1) <- es.(i);
    History.of_events (Array.to_list es')
  in
  Alcotest.(check bool) "swap equivalent" true (History.equivalent h swapped);
  Alcotest.(check bool)
    "different histories differ" false
    (History.equivalent Figures.fig3 Figures.fig4)

let test_complete () =
  (* fig3 is already complete. *)
  Alcotest.(check bool) "fig3 complete" true (History.is_complete Figures.fig3);
  (* A history with a live transaction gets it aborted. *)
  let h = History.steps [ History.read 1 0 0 ] in
  let c = History.complete h in
  Alcotest.(check bool) "completion is complete" true (History.is_complete c);
  Alcotest.(check int) "one abort added" 1 (History.abort_count c 1);
  Alcotest.(check bool) "completion well-formed" true (History.is_well_formed c);
  (* A pending invocation is answered by a bare abort. *)
  let h2 = History.of_events [ Event.Inv (2, Event.Read 0) ] in
  let c2 = History.complete h2 in
  Alcotest.(check int) "pending answered" 2 (History.length c2);
  Alcotest.(check bool) "c2 well-formed" true (History.is_well_formed c2)

let test_counts () =
  let h = Figures.fig3 in
  Alcotest.(check int) "p1 commits" 1 (History.commit_count h 1);
  Alcotest.(check int) "p2 commits" 1 (History.commit_count h 2);
  Alcotest.(check int) "p1 aborts" 0 (History.abort_count h 1);
  Alcotest.(check int) "p1 tryC" 1 (History.try_commit_count h 1);
  let f1 = Figures.fig1 in
  Alcotest.(check int) "fig1 p1 never commits" 0 (History.commit_count f1 1);
  Alcotest.(check int) "fig1 p1 aborted once" 1 (History.abort_count f1 1)

(* ------------------------------------------------------------------ *)
(* Unit tests: transactions. *)

let test_transactions_fig3 () =
  let ts = Transaction.of_history Figures.fig3 in
  Alcotest.(check int) "two transactions" 2 (List.length ts);
  let t1 = List.find (fun t -> t.Transaction.proc = 1) ts in
  let t2 = List.find (fun t -> t.Transaction.proc = 2) ts in
  Alcotest.(check bool) "t1 committed" true (Transaction.is_committed t1);
  Alcotest.(check bool) "t2 committed" true (Transaction.is_committed t2);
  Alcotest.(check bool) "concurrent" true (Transaction.concurrent t1 t2);
  Alcotest.(check bool) "no precedence" false (Transaction.precedes t1 t2)

let test_transactions_fig4 () =
  let ts = Transaction.of_history Figures.fig4 in
  Alcotest.(check int) "two transactions" 2 (List.length ts);
  let t1 = List.find (fun t -> t.Transaction.proc = 1) ts in
  let t2 = List.find (fun t -> t.Transaction.proc = 2) ts in
  Alcotest.(check bool) "t1 aborted" true (Transaction.is_aborted t1);
  Alcotest.(check (list (pair int int)))
    "t1 reads 0 then 1"
    [ (0, 0); (0, 1) ]
    (Transaction.reads t1);
  Alcotest.(check (list (pair int int)))
    "t2 writes 1"
    [ (0, 1) ]
    (Transaction.writes t2)

let test_transactions_multi () =
  (* One process, three transactions. *)
  let h =
    History.steps
      [
        History.read 1 0 0;
        History.commit 1;
        History.write 1 0 1;
        History.abort 1;
        History.read 1 0 1;
      ]
  in
  let ts = Transaction.of_process h 1 in
  Alcotest.(check int) "three transactions" 3 (List.length ts);
  let seqs = List.map (fun t -> t.Transaction.seq) ts in
  Alcotest.(check (list int)) "sequence numbers" [ 0; 1; 2 ] seqs;
  let statuses = List.map (fun t -> t.Transaction.status) ts in
  Alcotest.(check bool)
    "statuses" true
    (statuses = [ Transaction.Committed; Transaction.Aborted; Transaction.Live ]);
  match ts with
  | [ t0; t1; t2 ] ->
      Alcotest.(check bool) "t0 precedes t1" true (Transaction.precedes t0 t1);
      Alcotest.(check bool) "t1 precedes t2" true (Transaction.precedes t1 t2);
      Alcotest.(check bool)
        "live t2 precedes nothing" false
        (Transaction.precedes t2 t0)
  | _ -> Alcotest.fail "expected three transactions"

let test_aborted_op_not_completed () =
  (* A write answered by A is not a completed operation. *)
  let h = History.steps [ History.read 1 0 0; History.write_aborted 1 0 1 ] in
  let ts = Transaction.of_process h 1 in
  match ts with
  | [ t ] ->
      Alcotest.(check (list (pair int int)))
        "only the read completed"
        [ (0, 0) ]
        (Transaction.reads t);
      Alcotest.(check (list (pair int int))) "no writes" [] (Transaction.writes t);
      Alcotest.(check bool) "aborted" true (Transaction.is_aborted t)
  | _ -> Alcotest.fail "expected one transaction"

let test_last_write () =
  let h =
    History.steps
      [ History.write 1 0 1; History.write 1 0 2; History.write 1 1 7 ]
  in
  match Transaction.of_process h 1 with
  | [ t ] ->
      Alcotest.(check (option int)) "last write x0" (Some 2)
        (Transaction.last_write t 0);
      Alcotest.(check (option int)) "last write x1" (Some 7)
        (Transaction.last_write t 1);
      Alcotest.(check (option int)) "no write x2" None
        (Transaction.last_write t 2);
      Alcotest.(check (list int)) "write set" [ 0; 1 ] (Transaction.write_set t)
  | _ -> Alcotest.fail "expected one transaction"

(* ------------------------------------------------------------------ *)
(* Unit tests: lassos. *)

let test_lasso_well_formed () =
  List.iter
    (fun (name, _l) ->
      (* Construction already validates; re-check the unrolling. *)
      let l = List.assoc name Figures.all_lassos in
      let h = Lasso.unroll l 3 in
      Alcotest.(check bool)
        (name ^ " unrolling well-formed")
        true
        (History.is_well_formed h))
    Figures.all_lassos

let test_lasso_rejects_bad () =
  (match Lasso.check ~stem:[] ~cycle:[] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty cycle accepted");
  (* A cycle that leaves a pending invocation un-answered across iterations
     is rejected. *)
  match Lasso.check ~stem:[] ~cycle:[ Event.Inv (1, Event.Read 0) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-repeating pending state accepted"

let test_lasso_infinite () =
  let l = Figures.fig7 in
  Alcotest.(check bool) "p1 finite" false (Lasso.projection_infinite l 1);
  Alcotest.(check bool) "p2 infinite" true (Lasso.projection_infinite l 2);
  Alcotest.(check bool) "p3 infinite" true (Lasso.projection_infinite l 3);
  Alcotest.(check bool)
    "p3 commits infinitely" true
    (Lasso.infinitely_many l Event.is_commit 3);
  Alcotest.(check bool)
    "p2 never commits in cycle" false
    (Lasso.infinitely_many l Event.is_commit 2);
  Alcotest.(check int)
    "p2 committed once in stem" 1
    (Lasso.finite_count l Event.is_commit 2)

let test_lasso_rotate () =
  let l = Figures.fig5 in
  let r = Lasso.rotate l in
  Alcotest.(check bool)
    "rotation preserves infinite commits of p1" true
    (Lasso.infinitely_many r Event.is_commit 1);
  let u = Lasso.unroll_cycle_into_stem l in
  Alcotest.(check bool)
    "unrolled cycle preserves infinite commits" true
    (Lasso.infinitely_many u Event.is_commit 1)

(* ------------------------------------------------------------------ *)
(* Unit tests: figure sanity. *)

let test_fig16_shape () =
  let h = Figures.fig16 in
  Alcotest.(check bool) "well-formed" true (History.is_well_formed h);
  Alcotest.(check (list int)) "procs" [ 1; 2; 3 ] (History.procs h);
  Alcotest.(check (list int)) "tvars" [ 0; 1 ] (History.tvars h);
  Alcotest.(check int) "p1 commits once" 1 (History.commit_count h 1);
  Alcotest.(check int) "p1 aborted once" 1 (History.abort_count h 1);
  Alcotest.(check int) "p2 commits once" 1 (History.commit_count h 2);
  Alcotest.(check int) "p2 aborted once" 1 (History.abort_count h 2);
  Alcotest.(check int) "p3 commits once" 1 (History.commit_count h 3);
  let ts = Transaction.of_history h in
  Alcotest.(check int) "five transactions" 5 (List.length ts)

let test_pretty_smoke () =
  List.iter
    (fun (_, h) ->
      let s = Fmt.str "%a" Pretty.pp_by_process h in
      Alcotest.(check bool) "nonempty rendering" true (String.length s > 0);
      let t = Fmt.str "%a" Pretty.pp_timeline h in
      Alcotest.(check bool) "nonempty timeline" true (String.length t > 0))
    Figures.all_finite;
  List.iter
    (fun (_, l) ->
      let s = Fmt.str "%a" Pretty.pp_lasso l in
      Alcotest.(check bool) "nonempty lasso rendering" true (String.length s > 0))
    Figures.all_lassos

(* ------------------------------------------------------------------ *)
(* Pretty-printing tokens and event ordering. *)

let test_pretty_tokens () =
  Alcotest.(check string) "read inv" "x0.r"
    (Pretty.op_token (Event.Inv (1, Event.Read 0)));
  Alcotest.(check string) "write inv" "x2.w(7)"
    (Pretty.op_token (Event.Inv (1, Event.Write (2, 7))));
  Alcotest.(check string) "tryC" "tryC"
    (Pretty.op_token (Event.Inv (1, Event.Try_commit)));
  Alcotest.(check string) "value" "->3"
    (Pretty.op_token (Event.Res (1, Event.Value 3)));
  Alcotest.(check string) "ok" "ok"
    (Pretty.op_token (Event.Res (1, Event.Ok_written)));
  Alcotest.(check string) "commit" "C"
    (Pretty.op_token (Event.Res (1, Event.Committed)));
  Alcotest.(check string) "abort" "A"
    (Pretty.op_token (Event.Res (1, Event.Aborted)))

let test_pretty_fused_rows () =
  let s = Fmt.str "%a" Pretty.pp_by_process Figures.fig1 in
  let contains sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "fused read" true (contains "x0.r->0");
  Alcotest.(check bool) "aborted write token" true (contains "x0.w(1):A");
  Alcotest.(check bool) "commit bracket" true (contains "C]")

let test_event_compare_total () =
  let es =
    Event.
      [
        Inv (1, Read 0); Inv (1, Write (0, 1)); Inv (2, Try_commit);
        Res (1, Value 0); Res (2, Ok_written); Res (1, Committed);
        Res (2, Aborted);
      ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let ab = Event.compare a b and ba = Event.compare b a in
          Alcotest.(check bool) "antisymmetric" true
            ((ab > 0 && ba < 0) || (ab < 0 && ba > 0) || (ab = 0 && ba = 0));
          Alcotest.(check bool) "consistent with equal" true
            (Event.equal a b = (ab = 0)))
        es)
    es

(* ------------------------------------------------------------------ *)
(* Property tests. *)

let prop_generated_well_formed =
  QCheck2.Test.make ~count:300 ~name:"generated histories are well-formed"
    gen_history (fun h -> History.is_well_formed h)

let prop_completion_complete =
  QCheck2.Test.make ~count:300 ~name:"com(H) is complete and well-formed"
    gen_history (fun h ->
      let c = History.complete h in
      History.is_complete c && History.is_well_formed c)

let prop_completion_idempotent =
  QCheck2.Test.make ~count:300 ~name:"com is idempotent" gen_history (fun h ->
      let c = History.complete h in
      History.equal (History.complete c) c)

let prop_completion_preserves_commits =
  QCheck2.Test.make ~count:300 ~name:"com(H) preserves commit counts"
    gen_history (fun h ->
      let c = History.complete h in
      List.for_all
        (fun p -> History.commit_count h p = History.commit_count c p)
        (History.procs h))

let prop_projection_partition =
  QCheck2.Test.make ~count:300
    ~name:"projections partition the event sequence" gen_history (fun h ->
      let total =
        List.fold_left
          (fun acc p -> acc + List.length (History.project h p))
          0 (History.procs h)
      in
      total = History.length h)

let prop_equivalence_under_commuting_swap =
  QCheck2.Test.make ~count:300
    ~name:"swapping adjacent events of distinct processes preserves \
           equivalence"
    gen_history (fun h ->
      let es = Array.of_list (History.events h) in
      let n = Array.length es in
      if n < 2 then true
      else
        (* Swap the first eligible adjacent pair. *)
        let rec find i =
          if i + 1 >= n then None
          else if Event.proc es.(i) <> Event.proc es.(i + 1) then Some i
          else find (i + 1)
        in
        match find 0 with
        | None -> true
        | Some i ->
            let es' = Array.copy es in
            es'.(i) <- es.(i + 1);
            es'.(i + 1) <- es.(i);
            History.equivalent h (History.of_events (Array.to_list es')))

let prop_transactions_cover_events =
  QCheck2.Test.make ~count:300
    ~name:"transactions of a process partition its projection" gen_history
    (fun h ->
      List.for_all
        (fun p ->
          let ts = Transaction.of_process h p in
          let covered =
            List.concat_map (fun t -> t.Transaction.events) ts
          in
          List.equal Event.equal covered (History.project h p))
        (History.procs h))

let prop_transaction_at_most_one_terminal =
  QCheck2.Test.make ~count:300
    ~name:"no transaction contains C/A except as last event" gen_history
    (fun h ->
      List.for_all
        (fun t ->
          match List.rev t.Transaction.events with
          | [] -> false
          | _last :: before ->
              List.for_all
                (fun e -> not (Event.is_commit e || Event.is_abort e))
                before)
        (Transaction.of_history h))

let prop_real_time_order_irreflexive_transitive =
  QCheck2.Test.make ~count:200 ~name:"real-time order is a strict order"
    gen_history (fun h ->
      let ts = Transaction.of_history h in
      List.for_all (fun t -> not (Transaction.precedes t t)) ts
      && List.for_all
           (fun a ->
             List.for_all
               (fun b ->
                 List.for_all
                   (fun c ->
                     (not (Transaction.precedes a b && Transaction.precedes b c))
                     || Transaction.precedes a c)
                   ts)
               ts)
           ts)

let prop_lasso_rotation_preserves_verdicts =
  let lasso_gen =
    QCheck2.Gen.oneofl (List.map snd Figures.all_lassos)
  in
  QCheck2.Test.make ~count:50
    ~name:"lasso rotation preserves infinitary verdicts" lasso_gen (fun l ->
      let r = Lasso.rotate (Lasso.rotate l) in
      List.for_all
        (fun p ->
          Lasso.projection_infinite l p = Lasso.projection_infinite r p
          && Lasso.infinitely_many l Event.is_commit p
             = Lasso.infinitely_many r Event.is_commit p
          && Lasso.infinitely_many l Event.is_abort p
             = Lasso.infinitely_many r Event.is_abort p
          && Lasso.infinitely_many l Event.is_try_commit p
             = Lasso.infinitely_many r Event.is_try_commit p)
        (Lasso.procs l))

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_generated_well_formed;
      prop_completion_complete;
      prop_completion_idempotent;
      prop_completion_preserves_commits;
      prop_projection_partition;
      prop_equivalence_under_commuting_swap;
      prop_transactions_cover_events;
      prop_transaction_at_most_one_terminal;
      prop_real_time_order_irreflexive_transitive;
      prop_lasso_rotation_preserves_verdicts;
    ]

let () =
  Alcotest.run "tm_history"
    [
      ( "events",
        [
          Alcotest.test_case "matches" `Quick test_matches;
          Alcotest.test_case "predicates" `Quick test_event_predicates;
          Alcotest.test_case "printing" `Quick test_event_pp;
        ] );
      ( "histories",
        [
          Alcotest.test_case "figures well-formed" `Quick test_well_formed_ok;
          Alcotest.test_case "ill-formed rejected" `Quick test_well_formed_bad;
          Alcotest.test_case "projection" `Quick test_projection;
          Alcotest.test_case "equivalence" `Quick test_equivalent;
          Alcotest.test_case "completion" `Quick test_complete;
          Alcotest.test_case "counts" `Quick test_counts;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "fig3" `Quick test_transactions_fig3;
          Alcotest.test_case "fig4" `Quick test_transactions_fig4;
          Alcotest.test_case "multiple per process" `Quick
            test_transactions_multi;
          Alcotest.test_case "aborted op not completed" `Quick
            test_aborted_op_not_completed;
          Alcotest.test_case "last write" `Quick test_last_write;
        ] );
      ( "lassos",
        [
          Alcotest.test_case "well-formed unrollings" `Quick
            test_lasso_well_formed;
          Alcotest.test_case "bad lassos rejected" `Quick test_lasso_rejects_bad;
          Alcotest.test_case "infinitary verdicts" `Quick test_lasso_infinite;
          Alcotest.test_case "rotation" `Quick test_lasso_rotate;
        ] );
      ( "figures",
        [
          Alcotest.test_case "fig16 shape" `Quick test_fig16_shape;
          Alcotest.test_case "pretty-printing" `Quick test_pretty_smoke;
        ] );
      ( "pretty and ordering",
        [
          Alcotest.test_case "tokens" `Quick test_pretty_tokens;
          Alcotest.test_case "fused rows" `Quick test_pretty_fused_rows;
          Alcotest.test_case "event compare total" `Quick
            test_event_compare_total;
        ] );
      ("properties", properties);
    ]
