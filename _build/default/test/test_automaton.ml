(* Tests for the explorer (tm_automaton) on a tiny hand-made system, plus
   DOT export, invariant checking, and the max_states cutoff. *)

(* A mutable mod-n counter with inc/dec actions. *)
module Counter = struct
  type t = { mutable v : int; n : int }

  let make n () = { v = 0; n }
  let snapshot c = c.v

  let actions _ = [ `Inc; `Dec ]

  let apply c = function
    | `Inc -> c.v <- (c.v + 1) mod c.n
    | `Dec -> c.v <- (c.v - 1 + c.n) mod c.n
end

let explore ?max_states n =
  Tm_automaton.Explorer.reachable ~make:(Counter.make n)
    ~snapshot:Counter.snapshot ~actions:Counter.actions ~apply:Counter.apply
    ?max_states ()

let test_reachable_counts () =
  let e = explore 5 in
  Alcotest.(check int) "five states" 5
    (List.length e.Tm_automaton.Explorer.states);
  Alcotest.(check bool) "complete" true e.Tm_automaton.Explorer.complete;
  (* Each state has two outgoing transitions. *)
  Alcotest.(check int) "transitions" 10
    (List.length e.Tm_automaton.Explorer.transitions)

let test_bfs_witnesses_shortest () =
  let e = explore 5 in
  (* State 3 is reachable in 2 steps (two decs: 0 -> 4 -> 3). *)
  let _, witness = List.find (fun (s, _) -> s = 3) e.Tm_automaton.Explorer.states in
  Alcotest.(check int) "shortest witness" 2 (List.length witness)

let test_max_states_cutoff () =
  let e = explore ~max_states:3 10 in
  Alcotest.(check bool) "incomplete" false e.Tm_automaton.Explorer.complete;
  Alcotest.(check int) "cut off at three states" 3
    (List.length e.Tm_automaton.Explorer.states)

let test_invariant () =
  let e = explore 5 in
  Alcotest.(check bool) "all states < 5" true
    (Tm_automaton.Explorer.check_invariant e (fun s -> s < 5) = None);
  match Tm_automaton.Explorer.check_invariant e (fun s -> s < 3) with
  | None -> Alcotest.fail "expected a violation"
  | Some (s, witness) ->
      Alcotest.(check bool) "violating state" true (s >= 3);
      Alcotest.(check bool) "witness leads there" true (List.length witness >= 1)

let test_to_dot () =
  let e = explore 3 in
  let dot =
    Tm_automaton.Explorer.to_dot ~state_label:string_of_int
      ~action_label:(function `Inc -> "+1" | `Dec -> "-1")
      e
  in
  Alcotest.(check bool) "digraph header" true
    (String.length dot > 20
    && String.sub dot 0 7 = "digraph");
  (* All three states and both action labels appear. *)
  List.iter
    (fun needle ->
      let contains s sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) ("contains " ^ needle) true (contains dot needle))
    [ "s1"; "s2"; "s3"; "+1"; "-1" ]

(* ------------------------------------------------------------------ *)
(* The codec (trace serialization), round-tripped on the figures and on
   generated histories. *)

open Tm_history

let test_codec_roundtrip_figures () =
  List.iter
    (fun (name, h) ->
      match Codec.history_of_string (Codec.history_to_string h) with
      | Ok h' ->
          Alcotest.(check bool) (name ^ " round-trips") true (History.equal h h')
      | Error m -> Alcotest.failf "%s: %s" name m)
    Figures.all_finite;
  List.iter
    (fun (name, l) ->
      match Codec.lasso_of_string (Codec.lasso_to_string l) with
      | Ok l' ->
          Alcotest.(check bool)
            (name ^ " lasso round-trips")
            true
            (l.Lasso.stem = l'.Lasso.stem && l.Lasso.cycle = l'.Lasso.cycle)
      | Error m -> Alcotest.failf "%s: %s" name m)
    Figures.all_lassos

let test_codec_rejects_garbage () =
  (match Codec.event_of_string "inv one read 0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-numeric process accepted");
  (match Codec.history_of_string "res 1 value 0\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ill-formed history accepted");
  match Codec.lasso_of_string "inv 1 read 0\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "lasso without cycle separator accepted"

let test_codec_comments_and_blanks () =
  let text = "# a comment\n\ninv 1 read 0\nres 1 value 0\n\n" in
  match Codec.history_of_string text with
  | Ok h -> Alcotest.(check int) "two events" 2 (History.length h)
  | Error m -> Alcotest.fail m

let prop_codec_roundtrip =
  let gen_event =
    QCheck2.Gen.(
      let* p = int_range 1 5 in
      oneof
        [
          map (fun x -> Event.Inv (p, Event.Read x)) (int_bound 10);
          map2
            (fun x v -> Event.Inv (p, Event.Write (x, v)))
            (int_bound 10) (int_bound 100);
          return (Event.Inv (p, Event.Try_commit));
          map (fun v -> Event.Res (p, Event.Value v)) (int_bound 100);
          return (Event.Res (p, Event.Ok_written));
          return (Event.Res (p, Event.Committed));
          return (Event.Res (p, Event.Aborted));
        ])
  in
  QCheck2.Test.make ~count:500 ~name:"event codec round-trips" gen_event
    (fun e ->
      match Codec.event_of_string (Codec.event_to_string e) with
      | Ok e' -> Event.equal e e'
      | Error _ -> false)

let () =
  Alcotest.run "tm_automaton"
    [
      ( "explorer",
        [
          Alcotest.test_case "reachable counts" `Quick test_reachable_counts;
          Alcotest.test_case "BFS shortest witnesses" `Quick
            test_bfs_witnesses_shortest;
          Alcotest.test_case "max_states cutoff" `Quick test_max_states_cutoff;
          Alcotest.test_case "invariants" `Quick test_invariant;
          Alcotest.test_case "DOT export" `Quick test_to_dot;
        ] );
      ( "codec",
        [
          Alcotest.test_case "figures round-trip" `Quick
            test_codec_roundtrip_figures;
          Alcotest.test_case "garbage rejected" `Quick
            test_codec_rejects_garbage;
          Alcotest.test_case "comments and blanks" `Quick
            test_codec_comments_and_blanks;
          QCheck_alcotest.to_alcotest prop_codec_roundtrip;
        ] );
    ]
