(* Tests for the impossibility-proof adversary (Theorem 1, Lemma 1).

   Against every TM in the zoo, the adversary must win: either the TM
   blocks (global lock — it escapes the theorem by failing responsiveness),
   or p1 starves while p2 commits round after round.  If a TM ever lets p1
   commit, its history must be non-opaque — checked with a deliberately
   bogus always-commit TM. *)

open Tm_history
module Reg = Tm_impl.Registry

(* ------------------------------------------------------------------ *)
(* A deliberately unsafe TM: never aborts, never blocks, always commits.
   The adversary must defeat it by making it produce a non-opaque
   history — exactly the paper's argument that a terminating execution of
   Algorithm 1 ends in Figure 8's forbidden suffix. *)
module Bogus : Tm_impl.Tm_intf.S = struct
  type t = {
    mail : Tm_impl.Tm_intf.Mailbox.t;
    store : int array;
    cfg : Tm_impl.Tm_intf.config;
  }

  let name = "bogus-always-commit"
  let describe = "unsafe strawman: applies writes immediately, always commits"

  let create cfg =
    {
      mail = Tm_impl.Tm_intf.Mailbox.create cfg;
      store = Array.make cfg.ntvars 0;
      cfg;
    }

  let invoke t p inv =
    Tm_impl.Tm_intf.Mailbox.check_range t.cfg p inv;
    Tm_impl.Tm_intf.Mailbox.put t.mail p inv

  let poll t p =
    match Tm_impl.Tm_intf.Mailbox.get t.mail p with
    | None -> None
    | Some inv ->
        let resp =
          match inv with
          | Event.Read x -> Event.Value t.store.(x)
          | Event.Write (x, v) ->
              t.store.(x) <- v;
              Event.Ok_written
          | Event.Try_commit -> Event.Committed
        in
        Tm_impl.Tm_intf.Mailbox.clear t.mail p;
        Some resp

  let pending t p = Tm_impl.Tm_intf.Mailbox.get t.mail p
end

let bogus_entry =
  {
    Reg.entry_name = "bogus-always-commit";
    entry_describe = "unsafe strawman";
    impl = (module Bogus);
    responsive = true;
  }

(* ------------------------------------------------------------------ *)
(* Theorem 1 against the zoo. *)

let algorithms =
  [ ("algorithm-1", Tm_adversary.Adversary.Algorithm_1);
    ("algorithm-2", Tm_adversary.Adversary.Algorithm_2) ]

let test_starves_or_blocks entry alg () =
  let r = Tm_adversary.Adversary.run ~rounds:40 entry alg in
  Alcotest.(check bool)
    (entry.Reg.entry_name ^ " never lets p1 commit")
    false r.Tm_adversary.Adversary.terminated;
  Alcotest.(check int)
    (entry.Reg.entry_name ^ " p1 commits zero times")
    0 r.Tm_adversary.Adversary.victim_commits;
  if r.Tm_adversary.Adversary.blocked then
    (* Only the blocking TMs may escape this way. *)
    Alcotest.(check bool)
      (entry.Reg.entry_name ^ " may block")
      false entry.Reg.responsive
  else if r.Tm_adversary.Adversary.winner_starved then
    (* Only TMs without global progress starve the winner: the quiescent
       strawman (Figures 9 and 12), and the priority variant of Fgp when
       the suspended victim happens to be the top-priority process —
       exactly the cost of a priority property that Theorem 1 predicts. *)
    Alcotest.(check bool)
      (entry.Reg.entry_name ^ " may starve the winner")
      true
      (List.mem entry.Reg.entry_name [ "quiescent"; "fgp-priority" ])
  else begin
    Alcotest.(check bool)
      (entry.Reg.entry_name ^ " p2 commits every round")
      true
      (r.Tm_adversary.Adversary.winner_commits >= 40);
    (* The suffix shape of Figures 10/13: p1 is aborted over and over, so
       it is correct and starving. *)
    Alcotest.(check bool)
      (entry.Reg.entry_name ^ " p1 aborted repeatedly")
      true
      (r.Tm_adversary.Adversary.victim_aborts >= 39)
  end

let zoo_adversary_tests =
  List.concat_map
    (fun entry ->
      List.map
        (fun (alg_name, alg) ->
          Alcotest.test_case
            (Fmt.str "%s vs %s" entry.Reg.entry_name alg_name)
            `Quick
            (test_starves_or_blocks entry alg))
        algorithms)
    Reg.all

(* Adversary histories are opaque for every real TM (small round count so
   the checker search stays instantaneous). *)
let test_adversary_history_opaque entry alg () =
  let r = Tm_adversary.Adversary.run ~rounds:6 entry alg in
  if not r.Tm_adversary.Adversary.blocked then
    Alcotest.(check bool)
      (entry.Reg.entry_name ^ " adversary history opaque")
      true
      (Tm_safety.Opacity.is_opaque r.Tm_adversary.Adversary.history)

let zoo_opacity_tests =
  List.concat_map
    (fun entry ->
      List.map
        (fun (alg_name, alg) ->
          Alcotest.test_case
            (Fmt.str "%s vs %s: opaque" entry.Reg.entry_name alg_name)
            `Quick
            (test_adversary_history_opaque entry alg))
        algorithms)
    Reg.all

(* ------------------------------------------------------------------ *)
(* The contrapositive: an always-commit TM terminates the game, and the
   resulting history is not opaque (it ends in Figure 8's suffix). *)

let test_bogus_tm_defeated alg () =
  let r = Tm_adversary.Adversary.run ~rounds:40 bogus_entry alg in
  Alcotest.(check bool) "game terminates" true
    r.Tm_adversary.Adversary.terminated;
  Alcotest.(check bool) "history is NOT opaque" false
    (Tm_safety.Opacity.is_opaque r.Tm_adversary.Adversary.history);
  Alcotest.(check bool) "history is not strictly serializable either" false
    (Tm_safety.Serializability.is_strictly_serializable
       r.Tm_adversary.Adversary.history)

(* ------------------------------------------------------------------ *)
(* The remaining proof-case figures, realized by the quiescent strawman:
   Algorithm 1 yields the Figure 9 suffix (p1 "crashes" after one read, p2
   is aborted forever), Algorithm 2 the Figure 12 suffix (p1 reads forever
   without ever being aborted or invoking tryC — a parasitic process —
   while p2 is aborted forever). *)

let quiescent = Option.get (Reg.find "quiescent")

let test_fig9_realized () =
  let r =
    Tm_adversary.Adversary.run ~patience:100 ~rounds:10 quiescent
      Tm_adversary.Adversary.Algorithm_1
  in
  let h = r.Tm_adversary.Adversary.history in
  Alcotest.(check bool) "winner starved" true
    r.Tm_adversary.Adversary.winner_starved;
  Alcotest.(check int) "p2 never commits" 0
    r.Tm_adversary.Adversary.winner_commits;
  (* p1 read once and was never heard from again. *)
  Alcotest.(check int) "p1 has exactly one completed read" 2
    (History.event_count h 1);
  Alcotest.(check bool) "p2 aborted over and over" true
    (History.abort_count h 2 >= 100);
  Alcotest.(check bool) "history is opaque" true (Tm_safety.Opacity.is_opaque h)

let test_fig12_realized () =
  let r =
    Tm_adversary.Adversary.run ~patience:40 ~rounds:3 quiescent
      Tm_adversary.Adversary.Algorithm_2
  in
  let h = r.Tm_adversary.Adversary.history in
  Alcotest.(check bool) "winner starved" true
    r.Tm_adversary.Adversary.winner_starved;
  (* The parasitic shape: p1 keeps executing reads, is never aborted, and
     never invokes tryC. *)
  Alcotest.(check bool) "p1 executes many operations" true
    (History.event_count h 1 > 50);
  Alcotest.(check int) "p1 is never aborted" 0 (History.abort_count h 1);
  Alcotest.(check int) "p1 never attempts to commit" 0
    (History.try_commit_count h 1);
  Alcotest.(check bool) "p2 aborted over and over" true
    (History.abort_count h 2 >= 40);
  Alcotest.(check int) "p2 never commits" 0 (History.commit_count h 2)

(* ------------------------------------------------------------------ *)
(* Lemma 1 / Theorem 2: the n-process generalization. *)

let test_general nprocs tm_name () =
  let entry = Option.get (Reg.find tm_name) in
  let r = Tm_adversary.Adversary.General.run ~rounds:20 ~nprocs entry in
  Alcotest.(check bool) "not blocked" false r.Tm_adversary.Adversary.General.blocked;
  Alcotest.(check bool)
    "no victim ever commits" false
    r.Tm_adversary.Adversary.General.any_victim_committed;
  Alcotest.(check bool)
    "winner commits every round" true
    (r.Tm_adversary.Adversary.General.commits.(nprocs) >= 20);
  (* At least two processes are correct (every victim keeps aborting), yet
     at most one makes progress — the Lemma-1 situation. *)
  for p = 1 to nprocs - 1 do
    Alcotest.(check int)
      (Fmt.str "victim p%d never commits" p)
      0
      r.Tm_adversary.Adversary.General.commits.(p);
    Alcotest.(check bool)
      (Fmt.str "victim p%d aborted repeatedly" p)
      true
      (r.Tm_adversary.Adversary.General.aborts.(p) >= 19)
  done

let general_tests =
  List.concat_map
    (fun nprocs ->
      List.map
        (fun tm_name ->
          Alcotest.test_case
            (Fmt.str "lemma-1 n=%d vs %s" nprocs tm_name)
            `Quick (test_general nprocs tm_name))
        [ "fgp"; "tl2"; "ostm"; "dstm-aggressive" ])
    [ 2; 3; 5; 8 ]

let test_general_history_opaque () =
  let entry = Option.get (Reg.find "fgp") in
  let r = Tm_adversary.Adversary.General.run ~rounds:4 ~nprocs:3 entry in
  Alcotest.(check bool) "n-process adversary history opaque" true
    (Tm_safety.Opacity.is_opaque r.Tm_adversary.Adversary.General.history)

(* ------------------------------------------------------------------ *)
(* The adversary histories realize the Figure 1 scenario: its first round
   against Fgp reproduces Figure 1's prefix exactly (modulo values). *)

let test_fig1_realized () =
  let entry = Option.get (Reg.find "fgp") in
  let r =
    Tm_adversary.Adversary.run ~rounds:1 entry Tm_adversary.Adversary.Algorithm_1
  in
  let h = r.Tm_adversary.Adversary.history in
  (* Figure 1 prefix: p1 reads 0; p2 reads 0, writes 1, commits; p1's write
     attempt is aborted. *)
  let expected =
    History.steps
      [
        History.read 1 0 0;
        History.read 2 0 0;
        History.write 2 0 1;
        History.commit 2;
        History.write_aborted 1 0 1;
      ]
  in
  let prefix n hh =
    History.of_events
      (List.filteri (fun i _ -> i < n) (History.events hh))
  in
  Alcotest.(check bool)
    "first round against Fgp is exactly Figure 1" true
    (History.equal (prefix (History.length expected) h) expected)

let () =
  Alcotest.run "tm_adversary"
    [
      ("theorem 1 vs the zoo", zoo_adversary_tests);
      ("adversary histories are opaque", zoo_opacity_tests);
      ( "contrapositive",
        List.map
          (fun (alg_name, alg) ->
            Alcotest.test_case
              ("bogus TM defeated by " ^ alg_name)
              `Quick (test_bogus_tm_defeated alg))
          algorithms );
      ( "lemma 1 generalization",
        general_tests
        @ [
            Alcotest.test_case "n-process history opaque" `Quick
              test_general_history_opaque;
          ] );
      ( "figure 1",
        [ Alcotest.test_case "realized by round 1" `Quick test_fig1_realized ]
      );
      ( "figures 9 and 12 (quiescent strawman)",
        [
          Alcotest.test_case "figure 9 realized" `Quick test_fig9_realized;
          Alcotest.test_case "figure 12 realized" `Quick test_fig12_realized;
        ] );
    ]
