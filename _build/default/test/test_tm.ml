(* Tests for the TM zoo: per-implementation semantics, the Figure 15/16
   reproductions for Fgp, opacity of simulated histories (with and without
   fault injection), and the Section-3.2.3 solo-progress matrix. *)

open Tm_history
module Reg = Tm_impl.Registry
module Intf = Tm_impl.Tm_intf

(* ------------------------------------------------------------------ *)
(* Helpers: drive a packed instance synchronously. *)

let op ?(patience = 500) (inst : Intf.instance) p inv =
  inst.Intf.invoke p inv;
  let rec go n =
    if n > patience then Alcotest.failf "operation blocked: %s" inst.Intf.name
    else
      match inst.Intf.poll p with Some r -> r | None -> go (n + 1)
  in
  go 0

let expect_value name r =
  match (r : Event.response) with
  | Event.Value v -> v
  | _ -> Alcotest.failf "%s: expected a value" name

(* ------------------------------------------------------------------ *)
(* Per-TM semantics smoke tests. *)

let test_sequential_semantics entry () =
  let inst = Reg.instance entry (Intf.config ~nprocs:2 ~ntvars:2 ()) in
  let name = entry.Reg.entry_name in
  (* Initial reads. *)
  Alcotest.(check int) (name ^ " initial") 0 (expect_value name (op inst 1 (Event.Read 0)));
  (* Write and read back inside the transaction. *)
  (match op inst 1 (Event.Write (0, 7)) with
  | Event.Ok_written -> ()
  | _ -> Alcotest.failf "%s: write failed" name);
  Alcotest.(check int)
    (name ^ " reads own write") 7
    (expect_value name (op inst 1 (Event.Read 0)));
  Alcotest.(check int)
    (name ^ " other var untouched") 0
    (expect_value name (op inst 1 (Event.Read 1)));
  (match op inst 1 Event.Try_commit with
  | Event.Committed -> ()
  | _ -> Alcotest.failf "%s: solo commit failed" name);
  (* The committed value is visible to the other process. *)
  Alcotest.(check int)
    (name ^ " committed value visible") 7
    (expect_value name (op inst 2 (Event.Read 0)));
  match op inst 2 Event.Try_commit with
  | Event.Committed -> ()
  | _ -> Alcotest.failf "%s: read-only commit failed" name

let test_abort_discards entry () =
  (* p1 writes but does not commit; p2 conflicts.  Whatever happens, no
     uncommitted value may ever be read by a committed transaction.  We
     check the weaker deterministic core: after p1's transaction aborts (we
     force an abort via conflict where possible), p2 reads the old value. *)
  let inst = Reg.instance entry (Intf.config ~nprocs:2 ~ntvars:1 ()) in
  let name = entry.Reg.entry_name in
  ignore (op inst 1 (Event.Read 0));
  (match op inst 1 (Event.Write (0, 5)) with
  | Event.Ok_written | Event.Aborted -> ()
  | _ -> Alcotest.failf "%s: unexpected write response" name);
  (* p1 commits; p2 then reads the committed value, whatever the TM decided. *)
  (match op inst 1 Event.Try_commit with
  | Event.Committed | Event.Aborted -> ()
  | _ -> Alcotest.failf "%s: unexpected commit response" name);
  let v = expect_value name (op inst 2 (Event.Read 0)) in
  Alcotest.(check bool)
    (name ^ " committed-or-initial value")
    true
    (v = 0 || v = 5)

let zoo_semantics_tests =
  List.concat_map
    (fun entry ->
      [
        Alcotest.test_case
          (entry.Reg.entry_name ^ " sequential semantics")
          `Quick
          (test_sequential_semantics entry);
        Alcotest.test_case
          (entry.Reg.entry_name ^ " visibility")
          `Quick (test_abort_discards entry);
      ])
    Reg.all

(* ------------------------------------------------------------------ *)
(* Figure 16: exact replay on Fgp. *)

let test_fig16_replay () =
  let cfg = Intf.config ~nprocs:3 ~ntvars:2 () in
  let t = Tm_impl.Fgp.create cfg in
  let h = ref History.empty in
  let invoke p inv =
    Tm_impl.Fgp.invoke t p inv;
    h := History.append !h (Event.Inv (p, inv))
  in
  let poll p =
    match Tm_impl.Fgp.poll t p with
    | Some r -> h := History.append !h (Event.Res (p, r))
    | None -> Alcotest.fail "Fgp must always respond"
  in
  let x = 0 and y = 1 in
  invoke 1 (Event.Read x);
  poll 1;
  invoke 2 (Event.Write (y, 1));
  invoke 1 (Event.Write (x, 1));
  poll 1;
  invoke 1 Event.Try_commit;
  poll 1;
  poll 2;
  invoke 3 (Event.Read y);
  poll 3;
  invoke 3 (Event.Write (y, 1));
  poll 3;
  invoke 1 (Event.Read y);
  poll 1;
  invoke 3 Event.Try_commit;
  poll 3;
  invoke 1 Event.Try_commit;
  poll 1;
  invoke 2 (Event.Read y);
  poll 2;
  invoke 2 (Event.Read x);
  poll 2;
  invoke 2 Event.Try_commit;
  poll 2;
  Alcotest.(check bool)
    "replayed history equals Figure 16" true
    (History.equal !h Figures.fig16);
  Alcotest.(check bool)
    "Figure 16 history is opaque" true
    (Tm_safety.Opacity.is_opaque !h)

(* ------------------------------------------------------------------ *)
(* Figure 15: exhaustive enumeration of Fgp with one process and one
   binary t-variable yields exactly the paper's 10 states. *)

type fgp_action = A_invoke of Event.invocation | A_poll

let test_fig15_enumeration () =
  let cfg = Intf.config ~nprocs:1 ~ntvars:1 () in
  let exploration =
    Tm_automaton.Explorer.reachable
      ~make:(fun () -> Tm_impl.Fgp.create cfg)
      ~snapshot:Tm_impl.Fgp.state
      ~actions:(fun t ->
        match Tm_impl.Fgp.pending t 1 with
        | Some _ -> [ A_poll ]
        | None ->
            [
              A_invoke (Event.Read 0);
              A_invoke (Event.Write (0, 0));
              A_invoke (Event.Write (0, 1));
              A_invoke Event.Try_commit;
            ])
      ~apply:(fun t a ->
        match a with
        | A_invoke inv -> Tm_impl.Fgp.invoke t 1 inv
        | A_poll -> ignore (Tm_impl.Fgp.poll t 1))
      ()
  in
  Alcotest.(check bool) "exploration complete" true
    exploration.Tm_automaton.Explorer.complete;
  Alcotest.(check int)
    "exactly the 10 states of Figure 15" 10
    (List.length exploration.Tm_automaton.Explorer.states);
  (* No abort event is ever delivered (the paper: the single-process
     automaton has no abort transitions). *)
  let has_abort =
    List.exists
      (fun (_, a, _) ->
        match a with
        | A_poll -> false
        | A_invoke _ -> false)
      exploration.Tm_automaton.Explorer.transitions
  in
  Alcotest.(check bool) "no abort transitions" false has_abort

let test_fgp_never_aborts_solo () =
  (* Stronger form of the Figure-15 claim: a single process never receives
     an abort from Fgp, whatever it does. *)
  let cfg = Intf.config ~nprocs:1 ~ntvars:2 () in
  let t = Tm_impl.Fgp.create cfg in
  let seen_abort = ref false in
  let g = Tm_sim.Prng.create 7 in
  for _ = 1 to 500 do
    (match Tm_impl.Fgp.pending t 1 with
    | Some _ -> (
        match Tm_impl.Fgp.poll t 1 with
        | Some Event.Aborted -> seen_abort := true
        | _ -> ())
    | None ->
        let inv =
          match Tm_sim.Prng.int g 4 with
          | 0 -> Event.Read (Tm_sim.Prng.int g 2)
          | 1 | 2 -> Event.Write (Tm_sim.Prng.int g 2, Tm_sim.Prng.int g 3)
          | _ -> Event.Try_commit
        in
        Tm_impl.Fgp.invoke t 1 inv)
  done;
  Alcotest.(check bool) "no abort ever" false !seen_abort

(* ------------------------------------------------------------------ *)
(* The two documented repairs to the paper's formal Fgp rules, validated:
   implementing the rules *literally* misbehaves exactly as predicted in
   lib/tm/fgp.mli and DESIGN.md. *)

(* A literal-rules Fgp: (1) on commit of pk, *every* other process gets
   status a (the formal rule), not just the concurrent group (the prose);
   (2) abort delivery does not reset the process's Val row (no committed
   snapshot is kept). *)
module Fgp_literal = struct
  type t = {
    nprocs : int;
    ntvars : int;
    mail : Event.invocation option array;
    status : [ `C | `A ] array;
    cp : bool array;
    vals : int array array;
  }

  let create ~nprocs ~ntvars =
    {
      nprocs;
      ntvars;
      mail = Array.make (nprocs + 1) None;
      status = Array.make (nprocs + 1) `C;
      cp = Array.make (nprocs + 1) false;
      vals = Array.make_matrix (nprocs + 1) ntvars 0;
    }

  let invoke t p inv =
    assert (t.mail.(p) = None);
    t.mail.(p) <- Some inv;
    t.cp.(p) <- true;
    match inv with
    | Event.Write (x, v) -> t.vals.(p).(x) <- v
    | Event.Read _ | Event.Try_commit -> ()

  let poll t p =
    match t.mail.(p) with
    | None -> None
    | Some inv ->
        t.mail.(p) <- None;
        Some
          (match t.status.(p) with
          | `A ->
              t.status.(p) <- `C;
              (* Literal rule: Val' = Val — the aborted writes linger. *)
              Event.Aborted
          | `C -> (
              match inv with
              | Event.Read x -> Event.Value t.vals.(p).(x)
              | Event.Write _ -> Event.Ok_written
              | Event.Try_commit ->
                  (* Literal rule: every other process gets status a. *)
                  for k = 1 to t.nprocs do
                    if k <> p then t.status.(k) <- `A;
                    Array.blit t.vals.(p) 0 t.vals.(k) 0 t.ntvars
                  done;
                  Array.fill t.cp 0 (Array.length t.cp) false;
                  Event.Committed))
end

let test_literal_fgp_breaks_fig16 () =
  (* Under the literal every-other-process rule, p2 — which was *not*
     concurrent to p3's transaction — gets spuriously aborted, so the
     Figure 16 history cannot be produced: the paper's own example agrees
     with the prose, not with the formal rule. *)
  let t = Fgp_literal.create ~nprocs:3 ~ntvars:2 in
  let x = 0 and y = 1 in
  let run p inv =
    Fgp_literal.invoke t p inv;
    Option.get (Fgp_literal.poll t p)
  in
  (* Prefix of the Figure-16 schedule. *)
  Fgp_literal.invoke t 2 (Event.Write (y, 1));
  ignore (run 1 (Event.Read x));
  ignore (run 1 (Event.Write (x, 1)));
  ignore (run 1 Event.Try_commit);
  ignore (Option.get (Fgp_literal.poll t 2)) (* p2's A, as in the figure *);
  ignore (run 3 (Event.Read y));
  ignore (run 3 (Event.Write (y, 1)));
  ignore (run 1 (Event.Read y));
  ignore (run 3 Event.Try_commit);
  ignore (run 1 Event.Try_commit) (* p1's A, as in the figure *);
  (* Figure 16 now has p2 reading y -> 1; the literal rule delivers A
     instead (p3's commit doomed p2 even though p2 had no transaction). *)
  let r = run 2 (Event.Read y) in
  Alcotest.(check bool)
    "literal rule spuriously aborts p2 (Figure 16 impossible)" true
    (r = Event.Aborted);
  (* Our implementation produces the figure exactly (checked in
     test_fig16_replay). *)
  let cfg = Intf.config ~nprocs:3 ~ntvars:2 () in
  let good = Tm_impl.Fgp.create cfg in
  Tm_impl.Fgp.invoke good 2 (Event.Write (y, 1));
  let run_good p inv =
    Tm_impl.Fgp.invoke good p inv;
    Option.get (Tm_impl.Fgp.poll good p)
  in
  ignore (run_good 1 (Event.Read x));
  ignore (run_good 1 (Event.Write (x, 1)));
  ignore (run_good 1 Event.Try_commit);
  ignore (Option.get (Tm_impl.Fgp.poll good 2));
  ignore (run_good 3 (Event.Read y));
  ignore (run_good 3 (Event.Write (y, 1)));
  ignore (run_good 1 (Event.Read y));
  ignore (run_good 3 Event.Try_commit);
  ignore (run_good 1 Event.Try_commit);
  Alcotest.(check bool) "prose rule lets p2 proceed" true
    (run_good 2 (Event.Read y) = Event.Value 1)

let test_literal_fgp_not_opaque () =
  (* Without the Val-reset-on-abort repair, a doomed process's buffered
     write survives its abort and is read back by its next transaction —
     a violation of opacity.  The sequence: p2 starts a transaction (so it
     is in the concurrent group), p1 commits (dooming p2), p2 invokes a
     write — which the literal write rule applies to Val unguarded — and
     receives the abort for it; p2's *next* transaction then reads its own
     aborted write. *)
  let t = Fgp_literal.create ~nprocs:2 ~ntvars:1 in
  let h = ref History.empty in
  let record e = h := History.append !h e in
  let run p inv =
    Fgp_literal.invoke t p inv;
    record (Event.Inv (p, inv));
    let r = Option.get (Fgp_literal.poll t p) in
    record (Event.Res (p, r));
    r
  in
  ignore (run 2 (Event.Read 0)) (* p2 joins the concurrent group *);
  ignore (run 1 (Event.Read 0));
  ignore (run 1 (Event.Write (0, 1)));
  ignore (run 1 Event.Try_commit) (* p1 commits; p2 doomed *);
  let r1 = run 2 (Event.Write (0, 9)) in
  Alcotest.(check bool) "p2's write is aborted" true (r1 = Event.Aborted);
  let r2 = run 2 (Event.Read 0) in
  Alcotest.(check bool) "p2 reads its own aborted write" true
    (r2 = Event.Value 9);
  Alcotest.(check bool) "the history is NOT opaque" false
    (Tm_safety.Opacity.is_opaque !h);
  (* Our repaired Fgp returns the committed value instead. *)
  let cfg = Intf.config ~nprocs:2 ~ntvars:1 () in
  let good = Tm_impl.Fgp.create cfg in
  let run_good p inv =
    Tm_impl.Fgp.invoke good p inv;
    Option.get (Tm_impl.Fgp.poll good p)
  in
  ignore (run_good 2 (Event.Read 0));
  ignore (run_good 1 (Event.Read 0));
  ignore (run_good 1 (Event.Write (0, 1)));
  ignore (run_good 1 Event.Try_commit);
  ignore (run_good 2 (Event.Write (0, 9)));
  Alcotest.(check bool) "repaired Fgp reads the committed value" true
    (run_good 2 (Event.Read 0) = Event.Value 1)

(* ------------------------------------------------------------------ *)
(* Simulated runs: opacity, determinism, progress. *)

let run_spec entry spec = Tm_sim.Runner.run entry spec

let test_run_opaque_faultfree entry () =
  let spec =
    Tm_sim.Runner.spec ~nprocs:3 ~ntvars:2 ~steps:240 ~seed:42
      ~sched:Tm_sim.Runner.Uniform ()
  in
  let o = run_spec entry spec in
  Alcotest.(check bool)
    (entry.Reg.entry_name ^ " history well-formed")
    true
    (History.is_well_formed o.Tm_sim.Runner.history);
  Alcotest.(check bool)
    (entry.Reg.entry_name ^ " history opaque")
    true
    (Tm_safety.Opacity.is_opaque o.Tm_sim.Runner.history)

let test_run_opaque_faulty entry () =
  let spec =
    Tm_sim.Runner.spec ~nprocs:3 ~ntvars:2 ~steps:240 ~seed:11
      ~sched:Tm_sim.Runner.Uniform
      ~fates:
        [
          (1, Tm_sim.Runner.Crash_after_write 1);
          (2, Tm_sim.Runner.Parasitic_from 60);
        ]
      ()
  in
  let o = run_spec entry spec in
  Alcotest.(check bool)
    (entry.Reg.entry_name ^ " faulty history opaque")
    true
    (Tm_safety.Opacity.is_opaque o.Tm_sim.Runner.history)

let zoo_opacity_tests =
  List.concat_map
    (fun entry ->
      [
        Alcotest.test_case
          (entry.Reg.entry_name ^ " fault-free run opaque")
          `Quick
          (test_run_opaque_faultfree entry);
        Alcotest.test_case
          (entry.Reg.entry_name ^ " faulty run opaque")
          `Quick
          (test_run_opaque_faulty entry);
      ])
    Reg.all

let test_zoo_strict_serializability () =
  (* Opacity implies strict serializability; check the implication holds
     through the actual checkers on real zoo runs (committed projections
     also stay well-formed). *)
  List.iter
    (fun name ->
      let entry = Option.get (Reg.find name) in
      let spec =
        Tm_sim.Runner.spec ~nprocs:3 ~ntvars:2 ~steps:200 ~seed:21
          ~sched:Tm_sim.Runner.Uniform ()
      in
      let o = run_spec entry spec in
      let h = o.Tm_sim.Runner.history in
      Alcotest.(check bool)
        (name ^ " run strictly serializable")
        true
        (Tm_safety.Serializability.is_strictly_serializable h);
      Alcotest.(check bool)
        (name ^ " committed projection well-formed")
        true
        (History.is_well_formed
           (Tm_safety.Serializability.committed_projection h)))
    [ "fgp"; "tl2"; "tinystm"; "swisstm"; "mvstm"; "ostm" ]

let test_determinism () =
  let spec =
    Tm_sim.Runner.spec ~nprocs:3 ~ntvars:3 ~steps:500 ~seed:5
      ~sched:Tm_sim.Runner.Uniform ()
  in
  let entry = Option.get (Reg.find "tl2") in
  let o1 = run_spec entry spec in
  let o2 = run_spec entry spec in
  Alcotest.(check bool)
    "same spec, same history" true
    (History.equal o1.Tm_sim.Runner.history o2.Tm_sim.Runner.history)

let test_faultfree_everyone_commits entry () =
  let spec =
    Tm_sim.Runner.spec ~nprocs:3 ~ntvars:4 ~steps:3000 ~seed:3
      ~sched:Tm_sim.Runner.Uniform ()
  in
  let o = run_spec entry spec in
  for p = 1 to 3 do
    Alcotest.(check bool)
      (Fmt.str "%s: p%d commits in a fault-free run" entry.Reg.entry_name p)
      true
      (o.Tm_sim.Runner.commits.(p) > 0)
  done

let zoo_progress_tests =
  (* fgp-priority deliberately lets low-priority processes starve under an
     unfair scheduler (only the top priority has unconditional progress),
     so it gets its own dedicated tests below instead of this one. *)
  List.filter_map
    (fun entry ->
      if entry.Reg.entry_name = "fgp-priority" then None
      else
        Some
          (Alcotest.test_case
             (entry.Reg.entry_name ^ " fault-free progress")
             `Quick
             (test_faultfree_everyone_commits entry)))
    Reg.all

let test_fgp_priority_faultfree () =
  (* The guarantee is exactly priority progress: the top-priority process
     is never aborted and commits every transaction; under round-robin
     lockstep (everyone reaches tryC in the same round) the lower ranks
     are doomed by p1's commit every single round — priority progress is
     all you get, which is the Theorem-1-consistent price of the
     future-work property. *)
  let entry = Option.get (Reg.find "fgp-priority") in
  let spec =
    Tm_sim.Runner.spec ~nprocs:3 ~ntvars:1 ~steps:4000 ~seed:1
      ~sched:Tm_sim.Runner.Round_robin ()
  in
  let o = run_spec entry spec in
  Alcotest.(check int) "p1 never aborted" 0 o.Tm_sim.Runner.aborts.(1);
  Alcotest.(check bool) "p1 commits unboundedly" true
    (o.Tm_sim.Runner.commits.(1) >= 100);
  Alcotest.(check int) "p2 starves under lockstep" 0
    o.Tm_sim.Runner.commits.(2);
  Alcotest.(check int) "p3 starves under lockstep" 0
    o.Tm_sim.Runner.commits.(3);
  (* Under a random scheduler p1's idle gaps let p2 trickle through —
     progress at a much lower rate, never zero — while p1 still never
     aborts. *)
  let spec_uniform =
    Tm_sim.Runner.spec ~nprocs:2 ~ntvars:1 ~steps:4000 ~seed:1
      ~sched:Tm_sim.Runner.Uniform ()
  in
  let o2 = run_spec entry spec_uniform in
  Alcotest.(check int) "p1 never aborted (uniform)" 0
    o2.Tm_sim.Runner.aborts.(1);
  Alcotest.(check bool) "p1 commits unboundedly (uniform)" true
    (o2.Tm_sim.Runner.commits.(1) >= 100);
  Alcotest.(check bool) "p2 trickles through (uniform)" true
    (o2.Tm_sim.Runner.commits.(2) > 0
    && o2.Tm_sim.Runner.commits.(2) < o2.Tm_sim.Runner.commits.(1) / 10)

let test_fgp_priority_fault_rank () =
  let entry = Option.get (Reg.find "fgp-priority") in
  (* A fault *above* you in the priority order starves you forever... *)
  let spec_top_faulty =
    Tm_sim.Runner.spec ~nprocs:2 ~ntvars:1 ~steps:4000 ~seed:1
      ~sched:Tm_sim.Runner.Round_robin
      ~fates:[ (1, Tm_sim.Runner.Crash_after_write 1) ]
      ()
  in
  let o1 = run_spec entry spec_top_faulty in
  Alcotest.(check int) "p2 starves below a crashed p1" 0
    o1.Tm_sim.Runner.commits.(2);
  (* ... but a fault *below* you is harmless. *)
  let spec_bottom_faulty =
    Tm_sim.Runner.spec ~nprocs:2 ~ntvars:1 ~steps:4000 ~seed:1
      ~sched:Tm_sim.Runner.Round_robin
      ~fates:[ (2, Tm_sim.Runner.Crash_after_write 1) ]
      ()
  in
  let o2 = run_spec entry spec_bottom_faulty in
  Alcotest.(check bool) "p1 sails past a crashed p2" true
    (o2.Tm_sim.Runner.commits.(1) >= 10);
  Alcotest.(check int) "p1 never aborted" 0 o2.Tm_sim.Runner.aborts.(1)

(* ------------------------------------------------------------------ *)
(* Transfer workload: committed transactions preserve the total balance. *)

let test_transfer_invariant () =
  let entry = Option.get (Reg.find "tl2") in
  let ntvars = 4 in
  let spec =
    Tm_sim.Runner.spec ~nprocs:3 ~ntvars ~steps:400 ~seed:9
      ~sched:Tm_sim.Runner.Uniform
      ~workload:(Tm_sim.Workload.transfer ~ntvars)
      ()
  in
  let o = run_spec entry spec in
  match Tm_safety.Opacity.serialization o.Tm_sim.Runner.history with
  | None -> Alcotest.fail "transfer history should be opaque"
  | Some order ->
      let final =
        List.fold_left Tm_safety.Legality.commit_effect Tm_safety.Store.initial
          order
      in
      let sum =
        List.fold_left
          (fun acc x -> acc + Tm_safety.Store.get final x)
          0
          (List.init ntvars Fun.id)
      in
      Alcotest.(check int) "total balance preserved" 0 sum

(* ------------------------------------------------------------------ *)
(* The Section-3.2.3 solo-progress matrix (experiment Z1).

   Two processes on one t-variable; p1 suffers the given fate; p2 is the
   solo runner.  "Progress" = p2 commits at least [threshold] times within
   the budget. *)

let solo_run entry fate =
  let spec =
    Tm_sim.Runner.spec ~nprocs:2 ~ntvars:1 ~steps:4000 ~seed:1
      ~sched:Tm_sim.Runner.Round_robin
      ~fates:[ (1, fate) ]
      ()
  in
  run_spec entry spec

let check_solo name entry fate expected =
  let o = solo_run entry fate in
  let progressed = o.Tm_sim.Runner.commits.(2) >= 10 in
  Alcotest.(check bool)
    (Fmt.str "%s: runner progress under %s" entry.Reg.entry_name name)
    expected progressed

let matrix_case ~fate_name ~fate expectations =
  List.map
    (fun (tm_name, expected) ->
      let entry = Option.get (Reg.find tm_name) in
      Alcotest.test_case
        (Fmt.str "%s / %s" tm_name fate_name)
        `Quick
        (fun () -> check_solo fate_name entry fate expected))
    expectations

let crash_after_write_cases =
  matrix_case ~fate_name:"crash-after-write"
    ~fate:(Tm_sim.Runner.Crash_after_write 1)
    [
      ("global-lock", false);
      ("fgp", true);
      ("tl2", true);
      ("tinystm", false);
      ("tinystm-ext", false);
      ("swisstm", false);
      ("dstm-aggressive", true);
      ("dstm-polite-4", true);
      ("dstm-karma", true);
      ("dstm-greedy", false);
      ("ostm", true);
      ("norec", true);
      ("mvstm", true);
      ("quiescent", false) (* p1's live transaction freezes writers forever *);
      ("twopl", false) (* the crashed process's exclusive lock is never freed *);
      ("fgp-priority", false) (* the crashed p1 is the top priority *);
    ]

let parasite_cases =
  matrix_case ~fate_name:"parasite"
    ~fate:(Tm_sim.Runner.Parasitic_from 10)
    [
      ("global-lock", false);
      ("fgp", true);
      ("tl2", true);
      ("tinystm", false);
      ("tinystm-ext", false);
      ("swisstm", false);
      ("dstm-aggressive", false) (* mutual dooming livelock *);
      ("dstm-polite-4", true);
      ("dstm-karma", true)
      (* stealing dooms the parasite and resets its karma, converting it
         into an ever-aborted (hence correct) process *);
      ("ostm", true);
      ("norec", true);
      ("mvstm", true) (* the parasite's buffered writes disturb nobody *);
      ("quiescent", false);
      ("twopl", false) (* a parasite holding locks never waits, so no cycle *);
      ("fgp-priority", false);
    ]

(* The crash point inside the commit procedure is TM-specific: TMs whose
   commit answers in a single poll (fgp, tinystm, dstm) can only crash
   right after invoking tryC (depth 0); multi-poll commits (tl2, ostm,
   norec) crash two polls deep, i.e. holding locks / mid-descriptor. *)
let crash_mid_commit_cases =
  List.map
    (fun (tm_name, depth, expected) ->
      let entry = Option.get (Reg.find tm_name) in
      Alcotest.test_case
        (Fmt.str "%s / crash-mid-commit-%d" tm_name depth)
        `Quick
        (fun () ->
          check_solo
            (Fmt.str "crash-mid-commit-%d" depth)
            entry
            (Tm_sim.Runner.Crash_mid_commit depth)
            expected))
    [
      ("fgp", 0, true);
      ("dstm-aggressive", 0, true);
      ("tinystm", 0, false);
      ("tinystm-ext", 0, false);
      ("swisstm", 0, false);
      ("tl2", 2, false);
      ("ostm", 2, true) (* helping finishes the crashed commit *);
      ("norec", 2, false);
      ("mvstm", 2, false) (* commit-time locks strand like TL2's *);
      ("quiescent", 0, false);
      ("twopl", 0, false);
      ("fgp-priority", 0, false);
    ]

let test_mvstm_readers_never_abort () =
  (* The multiversion TM's distinctive property: a read-only process is
     never aborted, even under heavy write fire from the other processes —
     whereas under TL2 the same reader aborts constantly.  (This is also
     why multiversioning cannot beat Theorem 1: the victim's *writes*
     still lose.) *)
  let mixed_spec =
    Tm_sim.Runner.spec ~nprocs:3 ~ntvars:2 ~steps:3000 ~seed:4
      ~sched:Tm_sim.Runner.Uniform
      ~workload:(Tm_sim.Workload.counter ~ntvars:2)
      ~workload_overrides:
        [ (1, Tm_sim.Workload.read_only ~ntvars:2 ~reads:3) ]
      ()
  in
  let mv = Option.get (Reg.find "mvstm") in
  let o = Tm_sim.Runner.run mv mixed_spec in
  Alcotest.(check int) "mvstm: the reader is never aborted" 0
    o.Tm_sim.Runner.aborts.(1);
  Alcotest.(check bool) "mvstm: the reader commits constantly" true
    (o.Tm_sim.Runner.commits.(1) > 100);
  Alcotest.(check bool) "mvstm: writers also make progress" true
    (o.Tm_sim.Runner.commits.(2) + o.Tm_sim.Runner.commits.(3) > 20);
  (* Under TL2 the same reader aborts under the same write fire. *)
  let tl2 = Option.get (Reg.find "tl2") in
  let o2 = Tm_sim.Runner.run tl2 mixed_spec in
  Alcotest.(check bool) "tl2: the same reader aborts repeatedly" true
    (o2.Tm_sim.Runner.aborts.(1) > 20);
  (* The mixed mvstm run stays opaque (multiversion reads must be
     consistent). *)
  Alcotest.(check bool) "mvstm mixed run opaque (prefix)" true
    (Tm_safety.Opacity.is_opaque
       (History.of_events
          (List.filteri (fun i _ -> i < 400)
             (History.events o.Tm_sim.Runner.history))))

let test_ostm_helped_commit_opaque () =
  (* The crashed OSTM commit is finished by the helper; the resulting
     history has a commit-pending transaction whose effects are visible.
     The completion-aware opacity checker must accept it. *)
  let entry = Option.get (Reg.find "ostm") in
  let o = solo_run entry (Tm_sim.Runner.Crash_mid_commit 2) in
  Alcotest.(check bool)
    "helped-commit history is opaque" true
    (Tm_safety.Opacity.is_opaque o.Tm_sim.Runner.history)

let test_global_lock_blocks () =
  let entry = Option.get (Reg.find "global-lock") in
  let o = solo_run entry (Tm_sim.Runner.Crash_after_write 1) in
  Alcotest.(check bool)
    "runner is blocked, not aborted" true
    (List.mem 2 (Tm_sim.Runner.blocked_procs o));
  Alcotest.(check int) "runner never aborted" 0 o.Tm_sim.Runner.aborts.(2)

let test_global_lock_faultfree_local_progress () =
  (* Fault-free, the global lock aborts nobody and everybody commits:
     the paper's observation that local progress is possible in
     crash-free parasitic-free systems. *)
  let entry = Option.get (Reg.find "global-lock") in
  let spec =
    Tm_sim.Runner.spec ~nprocs:4 ~ntvars:1 ~steps:4000 ~seed:2
      ~sched:Tm_sim.Runner.Round_robin ()
  in
  let o = run_spec entry spec in
  Alcotest.(check int) "no aborts at all" 0 (Tm_sim.Runner.abort_total o);
  for p = 1 to 4 do
    Alcotest.(check bool)
      (Fmt.str "p%d commits" p)
      true
      (o.Tm_sim.Runner.commits.(p) >= 10)
  done

(* ------------------------------------------------------------------ *)
(* The contract table (Tm_impl.Contract) must agree with the measured
   solo-progress matrix: the declarative Section-3.2.3 classification
   cannot silently drift from the implementations. *)

let test_contracts_match_measurements () =
  Alcotest.(check (list string))
    "contracts cover exactly the registry"
    (List.sort String.compare Reg.names)
    (List.sort String.compare
       (List.map (fun c -> c.Tm_impl.Contract.tm_name) Tm_impl.Contract.all));
  List.iter
    (fun c ->
      let name = c.Tm_impl.Contract.tm_name in
      let entry = Option.get (Reg.find name) in
      let depth =
        match name with "tl2" | "ostm" | "norec" | "mvstm" -> 2 | _ -> 0
      in
      let crash_ok =
        (let o = solo_run entry (Tm_sim.Runner.Crash_after_write 1) in
         o.Tm_sim.Runner.commits.(2) >= 10)
        &&
        let o = solo_run entry (Tm_sim.Runner.Crash_mid_commit depth) in
        o.Tm_sim.Runner.commits.(2) >= 10
      in
      let para_ok =
        let o = solo_run entry (Tm_sim.Runner.Parasitic_from 10) in
        o.Tm_sim.Runner.commits.(2) >= 10
      in
      Alcotest.(check bool)
        (name ^ ": crash tolerance matches the contract")
        (not
           (List.mem Tm_impl.Contract.Crash_free
              c.Tm_impl.Contract.solo_requires))
        crash_ok;
      Alcotest.(check bool)
        (name ^ ": parasite tolerance matches the contract")
        (not
           (List.mem Tm_impl.Contract.Parasitic_free
              c.Tm_impl.Contract.solo_requires))
        para_ok;
      (* Render for coverage. *)
      ignore (Fmt.str "%a" Tm_impl.Contract.pp c))
    Tm_impl.Contract.all

(* ------------------------------------------------------------------ *)
(* Units: the registry, the mailbox, and contention-manager policies. *)

let test_registry () =
  let names = Reg.names in
  Alcotest.(check int) "distinct names" (List.length names)
    (List.length (List.sort_uniq String.compare names));
  List.iter
    (fun n ->
      match Reg.find n with
      | Some e -> Alcotest.(check string) "find by name" n e.Reg.entry_name
      | None -> Alcotest.failf "lookup of %s failed" n)
    names;
  Alcotest.(check (option string)) "unknown name" None
    (Option.map (fun e -> e.Reg.entry_name) (Reg.find "no-such-tm"));
  Alcotest.(check bool) "responsive subset" true
    (List.length Reg.responsive < List.length Reg.all)

let test_mailbox () =
  let cfg = Intf.config ~nprocs:2 ~ntvars:1 () in
  let m = Intf.Mailbox.create cfg in
  Alcotest.(check bool) "empty" true (Intf.Mailbox.get m 1 = None);
  Intf.Mailbox.put m 1 (Event.Read 0);
  Alcotest.(check bool) "stored" true (Intf.Mailbox.get m 1 = Some (Event.Read 0));
  Alcotest.check_raises "double invocation"
    (Invalid_argument "process p1 already has a pending invocation")
    (fun () -> Intf.Mailbox.put m 1 Event.Try_commit);
  Intf.Mailbox.clear m 1;
  Alcotest.(check bool) "cleared" true (Intf.Mailbox.get m 1 = None);
  Alcotest.check_raises "process out of range"
    (Invalid_argument "process p3 out of range") (fun () ->
      Intf.Mailbox.check_range cfg 3 (Event.Read 0));
  Alcotest.check_raises "t-variable out of range"
    (Invalid_argument "t-variable x5 out of range") (fun () ->
      Intf.Mailbox.check_range cfg 1 (Event.Read 5))

let test_contention_managers () =
  let view p ~ops ~waits ~ts =
    { Tm_impl.Cm.proc = p; ops_done = ops; waits; timestamp = ts }
  in
  let old = view 1 ~ops:5 ~waits:0 ~ts:1 in
  let young = view 2 ~ops:1 ~waits:0 ~ts:9 in
  Alcotest.(check bool) "aggressive steals" true
    (Tm_impl.Cm.aggressive.Tm_impl.Cm.decide ~attacker:young ~victim:old
    = Tm_impl.Cm.Steal);
  let polite = Tm_impl.Cm.polite 3 in
  Alcotest.(check bool) "polite waits early" true
    (polite.Tm_impl.Cm.decide ~attacker:young ~victim:old = Tm_impl.Cm.Wait);
  Alcotest.(check bool) "polite steals after the bound" true
    (polite.Tm_impl.Cm.decide
       ~attacker:(view 2 ~ops:1 ~waits:3 ~ts:9)
       ~victim:old
    = Tm_impl.Cm.Steal);
  Alcotest.(check bool) "karma respects work" true
    (Tm_impl.Cm.karma.Tm_impl.Cm.decide ~attacker:young ~victim:old
    = Tm_impl.Cm.Wait);
  Alcotest.(check bool) "karma steals once ahead" true
    (Tm_impl.Cm.karma.Tm_impl.Cm.decide
       ~attacker:(view 2 ~ops:3 ~waits:2 ~ts:9)
       ~victim:old
    = Tm_impl.Cm.Steal);
  Alcotest.(check bool) "greedy: older steals" true
    (Tm_impl.Cm.greedy.Tm_impl.Cm.decide ~attacker:old ~victim:young
    = Tm_impl.Cm.Steal);
  Alcotest.(check bool) "greedy: younger aborts itself" true
    (Tm_impl.Cm.greedy.Tm_impl.Cm.decide ~attacker:young ~victim:old
    = Tm_impl.Cm.Abort_self);
  Alcotest.(check (option string)) "lookup by name" (Some "karma")
    (Option.map
       (fun c -> c.Tm_impl.Cm.cm_name)
       (Tm_impl.Cm.by_name "karma"))

(* ------------------------------------------------------------------ *)
(* Property: opacity of random faulty runs across the zoo. *)

let prop_zoo_opacity =
  let gen =
    QCheck2.Gen.(
      let* seed = int_bound 10_000 in
      let* entry_idx = int_bound (List.length Reg.all - 1) in
      let* nprocs = int_range 2 3 in
      let* fate_choice = int_bound 3 in
      let fates =
        match fate_choice with
        | 0 -> []
        | 1 -> [ (1, Tm_sim.Runner.Crash_at 40) ]
        | 2 -> [ (1, Tm_sim.Runner.Parasitic_from 40) ]
        | _ ->
            [
              (1, Tm_sim.Runner.Crash_after_write 2);
              (2, Tm_sim.Runner.Crash_mid_commit 1);
            ]
      in
      return (seed, entry_idx, nprocs, fates))
  in
  QCheck2.Test.make ~count:60
    ~name:"every TM produces opaque histories under random faulty schedules"
    gen
    (fun (seed, entry_idx, nprocs, fates) ->
      let entry = List.nth Reg.all entry_idx in
      let spec =
        Tm_sim.Runner.spec ~nprocs ~ntvars:2 ~steps:200 ~seed
          ~sched:Tm_sim.Runner.Uniform ~fates ()
      in
      let o = run_spec entry spec in
      History.is_well_formed o.Tm_sim.Runner.history
      && Tm_safety.Opacity.is_opaque o.Tm_sim.Runner.history)

let properties = [ QCheck_alcotest.to_alcotest prop_zoo_opacity ]

let () =
  Alcotest.run "tm_impl"
    [
      ("semantics", zoo_semantics_tests);
      ( "fgp figures",
        [
          Alcotest.test_case "figure 16 replay" `Quick test_fig16_replay;
          Alcotest.test_case "figure 15 enumeration" `Quick
            test_fig15_enumeration;
          Alcotest.test_case "solo process never aborted" `Quick
            test_fgp_never_aborts_solo;
          Alcotest.test_case "literal formal rules contradict figure 16"
            `Quick test_literal_fgp_breaks_fig16;
          Alcotest.test_case "literal formal rules violate opacity" `Quick
            test_literal_fgp_not_opaque;
        ] );
      ("opacity of runs", zoo_opacity_tests);
      ( "runner",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "strict serializability of runs" `Quick
            test_zoo_strict_serializability;
          Alcotest.test_case "transfer invariant" `Quick
            test_transfer_invariant;
        ] );
      ( "fault-free progress",
        zoo_progress_tests
        @ [
            Alcotest.test_case "fgp-priority fault-free (round-robin)" `Quick
              test_fgp_priority_faultfree;
            Alcotest.test_case "fgp-priority fault rank" `Quick
              test_fgp_priority_fault_rank;
          ] );
      ( "solo-progress matrix",
        crash_after_write_cases @ parasite_cases @ crash_mid_commit_cases
        @ [
            Alcotest.test_case "mvstm readers never abort" `Quick
              test_mvstm_readers_never_abort;
            Alcotest.test_case "ostm helped commit opaque" `Quick
              test_ostm_helped_commit_opaque;
            Alcotest.test_case "global lock blocks" `Quick
              test_global_lock_blocks;
            Alcotest.test_case "global lock fault-free local progress" `Quick
              test_global_lock_faultfree_local_progress;
          ] );
      ( "contracts",
        [
          Alcotest.test_case "contracts match measurements" `Quick
            test_contracts_match_measurements;
        ] );
      ( "units",
        [
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "mailbox" `Quick test_mailbox;
          Alcotest.test_case "contention managers" `Quick
            test_contention_managers;
        ] );
      ("properties", properties);
    ]
